// Attack demo: play the untrusted foundry.
//
// The adversary holds (a) the hybrid netlist with LUT contents withheld and
// (b) a configured chip with scan access. This demo runs the three
// implemented attacks against an *independently* locked circuit — which
// falls — and then against a *parametric-aware* locked circuit, where the
// testing attack stalls exactly as the paper predicts.
#include <cstdio>

#include "attack/brute_force.hpp"
#include "attack/encode.hpp"
#include "attack/sat_attack.hpp"
#include "attack/sensitization.hpp"
#include "core/flow.hpp"
#include "synth/generator.hpp"

namespace {

using namespace stt;

void attack_suite(const Netlist& original, const Netlist& hybrid,
                  const char* label) {
  std::printf("== Attacking the %s lock (%zu unknown LUTs) ==\n", label,
              extract_key(hybrid).size());
  const Netlist view = foundry_view(hybrid);

  // 1. Testing attack: justify/propagate truth-table rows.
  ScanOracle o1(original);
  SensitizationOptions sopt;
  sopt.query_budget = 30000;
  const auto sens = run_sensitization_attack(view, o1, sopt);
  std::printf("  sensitization: %d/%d rows resolved with %llu patterns%s\n",
              sens.rows_resolved, sens.rows_total,
              static_cast<unsigned long long>(sens.queries),
              sens.success()       ? "  -> LOCK BROKEN"
              : sens.rows_resolved ? "  -> partial truth tables only"
                                   : "  -> fully blocked");

  // 2. Brute force over meaningful-gate candidates.
  ScanOracle o2(original);
  BruteForceOptions bfopt;
  bfopt.work_budget = 200'000;
  const auto bf = run_brute_force(view, o2, bfopt);
  std::printf("  brute force: search space %s, tried %llu -> %s\n",
              bf.search_space.to_string().c_str(),
              static_cast<unsigned long long>(bf.combinations_tried),
              bf.success() ? "LOCK BROKEN" : "budget exhausted");

  // 3. Oracle-guided SAT attack (assumes scan access — the reason the
  //    paper insists the scan chain be locked before release).
  SatAttackOptions satopt;
  satopt.time_limit_s = 30.0;
  const auto sat = run_sat_attack(view, original, satopt);
  if (sat.success()) {
    Netlist recovered = view;
    apply_key(recovered, sat.key);
    const bool equal = comb_equivalent(recovered, original, 2'000'000);
    std::printf("  SAT attack: %d DIPs, %lld conflicts -> key recovered, "
                "functionally %s\n",
                sat.iterations, static_cast<long long>(sat.conflicts),
                equal ? "CORRECT" : "incorrect?!");
  } else {
    std::printf("  SAT attack: stopped (%s) after %d DIPs, %.1fs\n",
                sat.timed_out() ? "timeout" : "budget", sat.iterations,
                sat.elapsed_s);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  using namespace stt;
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const CircuitProfile profile{"demo", 12, 10, 12, 600, 10};
  const Netlist original = generate_circuit(profile, 7);

  FlowOptions opt;
  opt.selection.seed = 7;
  // Security-demanding parametric config: enough timing paths that the
  // candidate space dwarfs the brute-force budget.
  opt.selection.para_num_paths = 8;

  opt.algorithm = SelectionAlgorithm::kIndependent;
  const FlowResult indep = run_secure_flow(original, lib, opt);
  attack_suite(original, indep.hybrid, "independent");

  opt.algorithm = SelectionAlgorithm::kParametric;
  const FlowResult para = run_secure_flow(original, lib, opt);
  attack_suite(original, para.hybrid, "parametric-aware");

  std::printf(
      "Estimates for the parametric lock (Eq. 3): %s required clocks,\n"
      "i.e. %s years at one billion patterns per second.\n",
      para.security.n_bf.to_string().c_str(),
      attack_years(para.security.n_bf).to_string().c_str());
  return 0;
}
