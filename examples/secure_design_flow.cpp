// The paper's Fig. 2 flow, end to end, on an s5378-class industrial
// circuit: synthesis replica -> CMOS gate selection and replacement ->
// timing/power/area sign-off -> physical-design hand-off (structural
// Verilog with STT_LUT macro blackboxes) -> post-fabrication configuration.
//
// Compares all three selection algorithms side by side, the way a designer
// choosing a security level would.
#include <cstdio>

#include "attack/encode.hpp"
#include "core/flow.hpp"
#include "io/verilog_writer.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace stt;
  const TechLibrary lib = TechLibrary::cmos90_stt();

  // -- "Circuit implementation + logic synthesis" (Fig. 2, upper half) -----
  const CircuitProfile profile = *find_profile("s5378a");
  const Netlist synthesized = generate_circuit(profile, 2016);
  std::printf("Synthesized netlist '%s': %d gates, %d FFs @ %s\n\n",
              profile.name.c_str(), profile.n_gates, profile.n_ff,
              lib.name().c_str());

  // -- "CMOS gate selection and replacement" at three security levels -----
  TextTable table({"Algorithm", "#LUT", "Perf%", "Pwr%", "Area%",
                   "required clocks", "selection s"});
  FlowResult chosen{};
  for (const auto alg :
       {SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
        SelectionAlgorithm::kParametric}) {
    FlowOptions opt;
    opt.algorithm = alg;
    opt.selection.seed = 2016;
    const FlowResult flow = run_secure_flow(synthesized, lib, opt);
    table.add_row({std::string(algorithm_name(alg)),
                   std::to_string(flow.selection.replaced.size()),
                   strformat("%.2f", flow.overhead.perf_degradation_pct()),
                   strformat("%.2f", flow.overhead.power_overhead_pct()),
                   strformat("%.2f", flow.overhead.area_overhead_pct()),
                   required_clocks(flow.security, alg).to_string(),
                   strformat("%.2f", flow.selection.selection_seconds)});
    if (alg == SelectionAlgorithm::kParametric) chosen = flow;
  }
  std::printf("%s\n", table.render().c_str());

  // -- Designer picks parametric-aware selection; sign off and hand off ----
  std::printf("Signing off the parametric-aware hybrid design:\n");
  std::printf("  clock period %.1f ps -> %.1f ps (budget met)\n",
              chosen.overhead.original_delay_ps,
              chosen.overhead.hybrid_delay_ps);
  std::printf("  key length: %zu configuration bits across %zu LUTs\n",
              key_bits(chosen.hybrid), chosen.selection.key.size());

  VerilogWriteOptions vopt;
  vopt.redact_luts = true;
  write_verilog_file(chosen.hybrid, "s5378a_foundry.v", vopt);
  std::printf("  wrote s5378a_foundry.v (STT_LUT macros, contents withheld)\n");

  // -- Post-fabrication: the design house programs the key ----------------
  Netlist fabricated = foundry_view(chosen.hybrid);
  apply_key(fabricated, chosen.selection.key);
  const bool ok = comb_equivalent(fabricated, synthesized, 2'000'000);
  std::printf("  configured chip equivalent to the original design: %s\n",
              ok ? "PROVEN (SAT)" : "FAILED");
  return ok ? 0 : 1;
}
