// Quickstart: lock a gate-level netlist against reverse engineering in a
// dozen lines.
//
//   ./quickstart [circuit.bench]
//
// Without an argument a seeded s641-class ISCAS'89 replica is used (tiny
// circuits like s27 have no slack for LUTs under a 5% timing margin —
// load them explicitly and raise FlowOptions::selection.timing_margin).
// The program runs the parametric-aware selection algorithm, prints the
// sign-off report (overhead + security), and writes three artifacts next to
// the working directory:
//   <name>_hybrid.bench    configured hybrid netlist (design-house view)
//   <name>_foundry.bench   the same netlist with LUT contents withheld
//   <name>.key             the configuration bitstream
#include <cstdio>
#include <string>

#include "core/flow.hpp"
#include "io/bench_io.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stt;

  // 1. Load a synthesized gate-level netlist (.bench).
  const Netlist original = argc > 1
                               ? read_bench_file(argv[1])
                               : generate_circuit(*find_profile("s641"), 1);
  const auto stats = original.stats();
  std::printf("Loaded '%s': %zu PIs, %zu POs, %zu FFs, %zu gates\n",
              original.name().c_str(), stats.inputs, stats.outputs,
              stats.dffs, stats.gates);

  // 2. Pick a technology library and run the security-driven flow.
  const TechLibrary lib = TechLibrary::cmos90_stt();
  FlowOptions options;
  options.algorithm = SelectionAlgorithm::kParametric;
  options.selection.seed = 1;          // any seed; selection is randomized
  options.selection.timing_margin = 0.05;  // allow +5% on the clock period
  const FlowResult flow = run_secure_flow(original, lib, options);

  // 3. Read the sign-off report.
  std::printf("\nReplaced %zu CMOS gates with STT-based LUTs (%d retries, "
              "%d via USL closure)\n",
              flow.selection.replaced.size(), flow.selection.timing_retries,
              flow.selection.usl_replacements);
  std::printf("Performance degradation: %.2f%%\n",
              flow.overhead.perf_degradation_pct());
  std::printf("Power overhead:          %.2f%%\n",
              flow.overhead.power_overhead_pct());
  std::printf("Area overhead:           %.2f%%\n",
              flow.overhead.area_overhead_pct());
  std::printf("Brute-force cost (Eq.3): %s test clocks (%s years @ 1G/s)\n",
              flow.security.n_bf.to_string().c_str(),
              attack_years(flow.security.n_bf).to_string().c_str());

  // 4. Export the artifacts.
  const std::string base = original.name();
  write_bench_file(flow.hybrid, base + "_hybrid.bench");
  BenchWriteOptions redact;
  redact.redact_luts = true;
  redact.header = "foundry view: LUT contents withheld";
  write_bench_file(flow.hybrid, base + "_foundry.bench", redact);
  FILE* key = std::fopen((base + ".key").c_str(), "w");
  if (key) {
    std::fputs(key_to_string(flow.selection.key).c_str(), key);
    std::fclose(key);
  }
  std::printf("\nWrote %s_hybrid.bench, %s_foundry.bench, %s.key\n",
              base.c_str(), base.c_str(), base.c_str());
  return 0;
}
