// Design-space exploration: security vs parametric cost.
//
// Sweeps the LUT budget of the independent selection and the path count of
// the parametric-aware selection on an s1488-class circuit and prints the
// Pareto view a designer would use to pick a security level: log10 of the
// required attack clocks against power/area overhead.
#include <cstdio>

#include "core/flow.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/table.hpp"

int main() {
  using namespace stt;
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Netlist original = generate_circuit(*find_profile("s1488"), 99);

  std::printf("Design space on %s (%zu gates)\n\n", original.name().c_str(),
              original.stats().gates);

  // Sweep 1: independent selection, LUT budget.
  TextTable indep({"#LUT budget", "log10 N_indep", "log10 N_bf", "Pwr%",
                   "Area%", "Perf%"});
  for (const int budget : {2, 5, 10, 20, 40, 80}) {
    FlowOptions opt;
    opt.algorithm = SelectionAlgorithm::kIndependent;
    opt.selection.seed = 99;
    opt.selection.indep_count = budget;
    const FlowResult flow = run_secure_flow(original, lib, opt);
    indep.add_row({std::to_string(budget),
                   strformat("%.1f", flow.security.n_indep.log10()),
                   strformat("%.1f", flow.security.n_bf.log10()),
                   strformat("%.2f", flow.overhead.power_overhead_pct()),
                   strformat("%.2f", flow.overhead.area_overhead_pct()),
                   strformat("%.2f", flow.overhead.perf_degradation_pct())});
  }
  std::printf("Independent selection, growing LUT budget:\n%s\n",
              indep.render().c_str());

  // Sweep 2: parametric-aware selection, number of targeted paths.
  TextTable para({"paths", "#LUT", "I", "log10 N_bf", "Pwr%", "Area%",
                  "Perf%"});
  for (const int paths : {1, 2, 3, 5, 8}) {
    FlowOptions opt;
    opt.algorithm = SelectionAlgorithm::kParametric;
    opt.selection.seed = 99;
    opt.selection.para_num_paths = paths;
    const FlowResult flow = run_secure_flow(original, lib, opt);
    para.add_row({std::to_string(paths),
                  std::to_string(flow.selection.replaced.size()),
                  std::to_string(flow.security.accessible_inputs),
                  strformat("%.1f", flow.security.n_bf.log10()),
                  strformat("%.2f", flow.overhead.power_overhead_pct()),
                  strformat("%.2f", flow.overhead.area_overhead_pct()),
                  strformat("%.2f", flow.overhead.perf_degradation_pct())});
  }
  std::printf("Parametric-aware selection, growing path count (timing "
              "margin fixed at +5%%):\n%s\n",
              para.render().c_str());

  std::printf(
      "Reading the tables: the parametric rows buy orders of magnitude more\n"
      "attack cost per percentage point of power than growing an\n"
      "independent budget — the paper's core design argument.\n");
  return 0;
}
