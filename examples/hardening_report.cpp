// Security datasheet: everything the library knows about one hardened
// design, in one report — the document a design-assurance reviewer would
// ask for before sign-off.
//
//   ./hardening_report [circuit.bench]
//
// Pipeline: optimize -> parametric-aware selection -> complex-function
// packing (timing-guarded) -> sign-off metrics (timing, power, area,
// variation yield) -> security metrics (Eqs. 1-3, SCOAP resolvability,
// DPA margin on the most exposed LUT).
#include <algorithm>
#include <cstdio>

#include "attack/dpa.hpp"
#include "core/flow.hpp"
#include "core/packing.hpp"
#include "graph/analysis.hpp"
#include "io/bench_io.hpp"
#include "power/activity_prop.hpp"
#include "power/power.hpp"
#include "sim/scoap.hpp"
#include "synth/generator.hpp"
#include "synth/optimize.hpp"
#include "timing/sta.hpp"
#include "timing/variation.hpp"
#include "util/strings.hpp"

int main(int argc, char** argv) {
  using namespace stt;
  const TechLibrary lib = TechLibrary::cmos90_stt();

  Netlist original = argc > 1 ? read_bench_file(argv[1])
                              : generate_circuit(*find_profile("s1238"), 42);
  std::printf("==== sttlock hardening report: %s ====\n\n",
              original.name().c_str());

  // -- 1. incoming-netlist cleanup -----------------------------------------
  OptimizeStats ostats;
  original = optimize_netlist(original, &ostats);
  std::printf("[synthesis cleanup] %zu -> %zu cells (%d consts folded, %d "
              "buffers swept, %d duplicates merged)\n",
              ostats.cells_before, ostats.cells_after,
              ostats.constants_folded, ostats.buffers_swept,
              ostats.duplicates_merged);

  // -- 2. selection + packing ----------------------------------------------
  FlowOptions fopt;
  fopt.algorithm = SelectionAlgorithm::kParametric;
  fopt.selection.seed = 42;
  FlowResult flow = run_secure_flow(original, lib, fopt);

  PackingOptions popt;
  popt.seed = 42;
  popt.lib = &lib;
  popt.max_delay_ps = flow.overhead.original_delay_ps *
                      (1.0 + fopt.selection.timing_margin);
  const auto packed = pack_complex_functions(flow.hybrid, popt);
  flow.hybrid = strip_dead_logic(flow.hybrid);
  flow.selection.key = extract_key(flow.hybrid);
  flow.overhead = compare_overhead(original, flow.hybrid, lib);
  flow.security = security_report(flow.hybrid, SimilarityModel::paper());

  std::printf("[lock] %zu STT LUTs (%d via USL closure), packing absorbed "
              "%d gates, %d dummy inputs\n",
              flow.selection.key.size(), flow.selection.usl_replacements,
              packed.absorbed_gates, packed.dummies_added);
  std::printf("[key]  %zu configuration bits\n\n", key_bits(flow.hybrid));

  // -- 3. parametric sign-off ----------------------------------------------
  std::printf("[timing] %.1f ps -> %.1f ps (%+.2f%%)\n",
              flow.overhead.original_delay_ps, flow.overhead.hybrid_delay_ps,
              flow.overhead.perf_degradation_pct());
  const auto activity = propagate_activity(flow.hybrid);
  const double freq = 1000.0 / flow.overhead.original_delay_ps;
  const auto analytic_power =
      estimate_power(flow.hybrid, lib, activity.toggle, freq);
  std::printf("[power]  %+.2f%% @ alpha=10%% (analytic-activity roll-up: "
              "%.1f uW)\n",
              flow.overhead.power_overhead_pct(), analytic_power.total_uw());
  std::printf("[area]   %+.2f%% (%.0f -> %.0f um^2)\n",
              flow.overhead.area_overhead_pct(),
              flow.overhead.original_area_um2, flow.overhead.hybrid_area_um2);
  VariationOptions vopt;
  vopt.samples = 300;
  const auto variation = variation_analysis(flow.hybrid, lib, vopt);
  std::printf("[yield]  %.1f%% at the +5%% period under process variation "
              "(p99 delay %.1f ps)\n\n",
              100.0 * variation.yield_at(flow.overhead.original_delay_ps *
                                         1.05),
              variation.p99_ps);

  // -- 4. security ----------------------------------------------------------
  std::printf("[attack cost] Eq.1 %s | Eq.2 %s | Eq.3 %s test clocks\n",
              flow.security.n_indep.to_string().c_str(),
              flow.security.n_dep.to_string().c_str(),
              flow.security.n_bf.to_string().c_str());
  std::printf("[attack cost] brute force at 1G patterns/s: %s years\n",
              attack_years(flow.security.n_bf).to_string().c_str());
  std::printf("[exposure] I = %d controllable support bits over M = %d "
              "missing gates, D = %d\n",
              flow.security.accessible_inputs, flow.security.missing_gates,
              flow.security.circuit_depth);

  // SCOAP resolvability of every missing gate under the attacker view.
  ScoapOptions sopt;
  sopt.attacker_view = true;
  const auto scoap = compute_scoap(flow.hybrid, sopt);
  double worst = 0;
  double best = 1e30;
  CellId most_exposed = kNullCell;
  for (const auto& [name, mask] : flow.selection.key) {
    const CellId id = flow.hybrid.find(name);
    const double r = scoap.resolvability(flow.hybrid, id);
    worst = std::max(worst, r);
    if (r < best) {
      best = r;
      most_exposed = id;
    }
  }
  std::printf("[testability] attacker-view resolvability: easiest LUT %.1f, "
              "hardest %.1f (>= %.0f means provably gated on other "
              "unknowns)\n",
              best, worst, sopt.unknown_lut_cost);

  // DPA margin on the most exposed LUT.
  if (most_exposed != kNullCell &&
      flow.hybrid.cell(most_exposed).fanin_count() <= 4) {
    TraceOptions topt;
    topt.cycles = 1024;
    const auto trace = simulate_power_trace(flow.hybrid, lib, topt);
    const auto dpa = run_dpa_attack(
        flow.hybrid, most_exposed, flow.hybrid.cell(most_exposed).lut_mask,
        trace, {});
    std::printf("[side channel] CPA margin on the most exposed LUT ('%s'): "
                "%.4f %s\n",
                std::string(flow.hybrid.cell(most_exposed).name).c_str(), dpa.margin(),
                dpa.margin() < 0.05
                    ? "(at-chance: content-independent MTJ read energy)"
                    : "(residual leakage via downstream CMOS toggles — "
                      "consider packing that cone)");
  }

  std::printf("\nVerdict: hybrid design meets the +5%% timing budget, and "
              "every implemented attack class is quantified above.\n");
  return 0;
}
