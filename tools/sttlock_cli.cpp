// sttlock — command-line front end for the hybrid STT-CMOS flow.
//
//   sttlock gen     --profile s641 --seed 1 --out s641.bench
//   sttlock info    --in s641.bench
//   sttlock lock    --in s641.bench --algorithm parametric --seed 7
//                   --out-hybrid h.bench --out-foundry f.bench --out-key k.key
//                   [--margin 0.05] [--pack] [--paths N]
//   sttlock defend  --in s641.bench --kind xor --seed 7 --tune count=16
//                   --out-locked l.bench --out-foundry f.bench
//                   --out-key k.key --out-annotations a.txt
//   sttlock defend  --list            (defense kinds + tuning knobs)
//   sttlock attack  --view f.bench --oracle h.bench
//                   --kind sat|seq|sens|gsens|bf|ml|dpa|static
//                   [--seed S --time-limit T --query-budget Q --work-budget W]
//                   [--tune k=v,... --portfolio K --jobs N --naive]
//                   [--trace t.json --metrics m.json]
//   sttlock attack  --list            (attack kinds + tuning knobs)
//   sttlock convert --in x.bench --out y.v     (format by extension:
//                                               .bench / .v / .blif)
//   sttlock program --in f.bench --key k.key --out chip.bench
//   sttlock campaign --jobs 8 --seeds 3 --algorithms parametric
//                    --benchmarks s641,s1238 --out-csv results.csv
//                    --out-json results.json [--attack sat] [--progress]
//                    [--trace t.json --metrics m.json]
//                    [--defense xor:count=16,latch --attack sat,seq]
//                    (--defense all --attack all = the full cross matrix)
//                    [--store run.store | --resume run.store] [--shard i/N]
//                    [--stable-json results.stable.json]
//   sttlock merge   --in a.store,b.store [--out-csv r.csv]
//                   [--out-json r.json] [--stable-json r.stable.json]
//                   (recombine shard / interrupted-run stores; output is
//                    byte-identical to the uninterrupted single run)
//   sttlock lint    --in h.bench [--json report.json] [--strict] [--no-audit]
//   sttlock lint    --gen s641,s820 --algorithms parametric --seed 7
//                   (generate + lock + lint each algorithm's output;
//                    --gen all covers the whole ISCAS'89 set)
//   sttlock analyze --in h.bench [--annotations a.txt] [--out report.json]
//   sttlock analyze --gen s641,s820 --defense xor:count=16,const --seed 7
//                   [--jobs 8] [--json] [--quiet]
//                   (key-dependency dataflow analysis, KEY001-KEY008;
//                    --gen all / --defense all sweep the full grid)
//
// Netlist files are read by extension as well.
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "attack/registry.hpp"
#include "cli/options.hpp"
#include "core/flow.hpp"
#include "core/bitstream.hpp"
#include "core/packing.hpp"
#include "defense/registry.hpp"
#include "graph/analysis.hpp"
#include "io/blif_io.hpp"
#include "obs/obs.hpp"
#include "io/bench_io.hpp"
#include "io/verilog_reader.hpp"
#include "io/verilog_writer.hpp"
#include "power/power.hpp"
#include "runtime/campaign.hpp"
#include "runtime/parallel.hpp"
#include "runtime/report.hpp"
#include "runtime/shard.hpp"
#include "runtime/store.hpp"
#include "runtime/thread_pool.hpp"
#include "synth/generator.hpp"
#include "timing/sta.hpp"
#include "util/args.hpp"
#include "util/strings.hpp"
#include "verify/keydep.hpp"
#include "verify/lint.hpp"

namespace {

using namespace stt;
using cli::ObsCapture;
using cli::write_text_file;

Netlist load_netlist(const std::string& path) {
  if (ends_with(path, ".bench")) return read_bench_file(path);
  if (ends_with(path, ".v")) return read_verilog_file(path);
  if (ends_with(path, ".blif")) return read_blif_file(path);
  throw std::runtime_error("unknown netlist extension: " + path);
}

void save_netlist(const Netlist& nl, const std::string& path,
                  bool redact_luts) {
  if (ends_with(path, ".bench")) {
    BenchWriteOptions opt;
    opt.redact_luts = redact_luts;
    write_bench_file(nl, path, opt);
    return;
  }
  if (ends_with(path, ".v")) {
    VerilogWriteOptions opt;
    opt.redact_luts = redact_luts;
    write_verilog_file(nl, path, opt);
    return;
  }
  if (ends_with(path, ".blif")) {
    if (redact_luts) {
      throw std::runtime_error("BLIF cannot express redacted LUTs");
    }
    write_blif_file(nl, path);
    return;
  }
  throw std::runtime_error("unknown netlist extension: " + path);
}


int cmd_gen(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--profile", "ISCAS'89 profile name (e.g. s641, s38584)");
  p.add_option("--seed", "generator seed", "1");
  p.add_option("--out", "output netlist path");
  p.parse(args);
  const auto profile = find_profile(p.get("--profile"));
  if (!profile) {
    std::fprintf(stderr, "unknown profile '%s'; available:",
                 p.get("--profile").c_str());
    for (const auto& pr : iscas89_profiles()) {
      std::fprintf(stderr, " %s", pr.name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }
  const Netlist nl = generate_circuit(
      *profile, static_cast<std::uint64_t>(p.get_int("--seed")));
  save_netlist(nl, p.get("--out"), false);
  std::printf("wrote %s (%zu gates, %zu FFs)\n", p.get("--out").c_str(),
              nl.stats().gates, nl.stats().dffs);
  return 0;
}

int cmd_info(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in", "input netlist");
  p.parse(args);
  const Netlist nl = load_netlist(p.get("--in"));
  const auto s = nl.stats();
  const TechLibrary lib = TechLibrary::cmos90_stt();
  const Sta sta(lib);
  const auto timing = sta.analyze(nl);
  const auto power = estimate_power_uniform(nl, lib, 0.10,
                                            1000.0 / timing.critical_delay_ps);
  std::printf("netlist:        %s\n", nl.name().c_str());
  std::printf("inputs/outputs: %zu / %zu\n", s.inputs, s.outputs);
  std::printf("flip-flops:     %zu\n", s.dffs);
  std::printf("logic gates:    %zu (of which %zu STT LUTs)\n", s.gates,
              s.luts);
  std::printf("max fan-in:     %d\n", s.max_fanin);
  std::printf("seq depth (D):  %d\n", circuit_seq_depth(nl));
  std::printf("critical path:  %.1f ps\n", timing.critical_delay_ps);
  std::printf("power @a=10%%:   %.2f uW\n", power.total_uw());
  std::printf("area:           %.1f um^2\n", total_area_um2(nl, lib));
  if (s.luts) std::printf("key bits:       %zu\n", key_bits(nl));
  return 0;
}

int cmd_lock(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in", "input netlist (pure CMOS)");
  p.add_option("--algorithm", "independent | dependent | parametric",
               "parametric");
  p.add_option("--seed", "selection seed", "1");
  p.add_option("--margin", "parametric timing margin", "0.05");
  p.add_option("--paths", "parametric timing-path count (0 = auto)", "0");
  p.add_option("--count", "independent gate count", "5");
  p.add_option("--out-hybrid", "configured hybrid netlist output", "");
  p.add_option("--out-foundry", "redacted netlist output", "");
  p.add_option("--out-key", "plain key-file output", "");
  p.add_option("--out-bitstream", "CRC-protected programming image output",
               "");
  p.add_flag("--pack", "apply complex-function packing + dummy inputs");
  p.parse(args);

  const Netlist original = load_netlist(p.get("--in"));
  const TechLibrary lib = TechLibrary::cmos90_stt();
  FlowOptions opt;
  const std::string alg = p.get("--algorithm");
  if (alg == "independent") {
    opt.algorithm = SelectionAlgorithm::kIndependent;
  } else if (alg == "dependent") {
    opt.algorithm = SelectionAlgorithm::kDependent;
  } else if (alg == "parametric") {
    opt.algorithm = SelectionAlgorithm::kParametric;
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", alg.c_str());
    return 1;
  }
  opt.selection.seed = static_cast<std::uint64_t>(p.get_int("--seed"));
  opt.selection.timing_margin = p.get_double("--margin");
  opt.selection.para_num_paths = static_cast<int>(p.get_int("--paths"));
  opt.selection.indep_count = static_cast<int>(p.get_int("--count"));

  FlowResult flow = run_secure_flow(original, lib, opt);
  if (p.flag("--pack")) {
    PackingOptions popt;
    popt.seed = opt.selection.seed;
    popt.lib = &lib;
    popt.max_delay_ps = flow.overhead.original_delay_ps *
                        (1.0 + opt.selection.timing_margin);
    const auto packed = pack_complex_functions(flow.hybrid, popt);
    flow.hybrid = strip_dead_logic(flow.hybrid);
    flow.selection.key = extract_key(flow.hybrid);
    flow.overhead = compare_overhead(original, flow.hybrid, lib);
    flow.security = security_report(flow.hybrid, SimilarityModel::paper());
    std::printf("packing: absorbed %d gates, added %d dummy inputs\n",
                packed.absorbed_gates, packed.dummies_added);
  }

  std::printf("%s: %zu LUTs | perf %+.2f%% | power %+.2f%% | area %+.2f%%\n",
              algorithm_name(opt.algorithm).c_str(),
              flow.selection.key.size(),
              flow.overhead.perf_degradation_pct(),
              flow.overhead.power_overhead_pct(),
              flow.overhead.area_overhead_pct());
  std::printf("attack cost: N_indep=%s  N_dep=%s  N_bf=%s test clocks\n",
              flow.security.n_indep.to_string().c_str(),
              flow.security.n_dep.to_string().c_str(),
              flow.security.n_bf.to_string().c_str());

  if (!p.get("--out-hybrid").empty()) {
    save_netlist(flow.hybrid, p.get("--out-hybrid"), false);
  }
  if (!p.get("--out-foundry").empty()) {
    save_netlist(flow.hybrid, p.get("--out-foundry"), true);
  }
  if (!p.get("--out-key").empty()) {
    std::ofstream key(p.get("--out-key"));
    key << key_to_string(flow.selection.key);
  }
  if (!p.get("--out-bitstream").empty()) {
    std::ofstream image(p.get("--out-bitstream"));
    image << write_bitstream(flow.hybrid);
  }
  return 0;
}

attack::Tuning parse_tuning_list(const std::string& list, char sep) {
  attack::Tuning tuning;
  for (const std::string& kv : split(list, sep)) {
    if (trim(kv).empty()) continue;
    const auto eq = kv.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("tuning entries must be key=value, got '" +
                               kv + "'");
    }
    tuning.emplace_back(std::string(trim(kv.substr(0, eq))),
                        std::string(trim(kv.substr(eq + 1))));
  }
  return tuning;
}

int list_attacks() {
  std::printf("registered attacks:\n");
  for (const attack::AttackInfo& info : attack::registry().catalogue()) {
    std::printf("  %-6s %s\n", info.name.c_str(), info.description.c_str());
    for (const attack::AttackKnob& knob : info.knobs) {
      std::printf("         --tune %s=<v> (default %s): %s\n",
                  knob.key.c_str(), knob.default_value.c_str(),
                  knob.help.c_str());
    }
  }
  return 0;
}

int list_defenses() {
  std::printf("registered defenses:\n");
  for (const std::string& name : defense::registry().names()) {
    const defense::DefenseBase& d = defense::registry().at(name);
    std::printf("  %-12s %s\n", name.c_str(),
                std::string(d.description()).c_str());
    for (const defense::TuningKnob& knob : d.knobs()) {
      std::printf("               --tune %s=<v> (default %s): %s\n",
                  knob.key.c_str(), knob.default_value.c_str(),
                  knob.help.c_str());
    }
  }
  return 0;
}

int cmd_attack(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_flag("--list", "print the registered attacks and their knobs");
  p.add_option("--view", "attacker's netlist (LUT contents ignored)");
  p.add_option("--oracle", "configured netlist standing in for the chip");
  p.add_option("--kind", "attack to run: sat|seq|sens|gsens|bf|ml|dpa|static", "");
  p.add_option("--method", "deprecated alias for --kind", "");
  p.add_option("--seed", "attack seed (empty = the attack's default)", "");
  p.add_option("--time-limit", "wall-clock cap in seconds (empty = default)",
               "");
  p.add_option("--query-budget", "oracle-query cap (empty = default)", "");
  p.add_option("--work-budget",
               "dominant-work cap: SAT conflicts / key combinations / "
               "annealing steps (empty = default)",
               "");
  p.add_option("--tune",
               "comma list of attack-specific key=value knobs, e.g. "
               "portfolio=4,frames=12",
               "");
  p.add_option("--portfolio", "sat solver portfolio size (sugar for --tune)",
               "1");
  p.add_flag("--naive", "legacy full-copy DIP encoding (sat baseline)");
  cli::CommonOptions common_opt(p, cli::kJobs | cli::kObs | cli::kSimIsa);
  p.parse(args);
  if (p.flag("--list")) return list_attacks();
  common_opt.load(p);

  const Netlist view = foundry_view(load_netlist(p.get("--view")));
  const Netlist chip = load_netlist(p.get("--oracle"));
  std::string kind = p.get("--kind");
  if (kind.empty()) kind = p.get("--method");
  if (kind.empty()) kind = "sat";
  if (!attack::registry().contains(kind)) {
    std::fprintf(stderr, "unknown attack '%s'; known:", kind.c_str());
    for (const std::string& name : attack::registry().names()) {
      std::fprintf(stderr, " %s", name.c_str());
    }
    std::fprintf(stderr, "\n");
    return 1;
  }

  attack::CommonAttackOptions common;
  if (!p.get("--seed").empty()) {
    common.seed = static_cast<std::uint64_t>(p.get_int("--seed"));
  }
  if (!p.get("--time-limit").empty()) {
    common.time_limit_s = p.get_double("--time-limit");
  }
  if (!p.get("--query-budget").empty()) {
    common.query_budget = static_cast<std::uint64_t>(p.get_int("--query-budget"));
  }
  if (!p.get("--work-budget").empty()) {
    common.work_budget = p.get_int("--work-budget");
  }

  attack::Tuning tuning = parse_tuning_list(p.get("--tune"), ',');
  if (p.get_int("--portfolio") != 1) {
    tuning.emplace_back("portfolio", p.get("--portfolio"));
  }
  if (p.flag("--naive")) tuning.emplace_back("naive", "1");

  const unsigned jobs = common_opt.jobs();
  ThreadPool pool(jobs == 0 ? 0u : jobs);
  ThreadPoolParallelFor par(pool);
  ParallelFor* const parallel = jobs != 1 ? &par : nullptr;

  ObsCapture capture(common_opt);
  const attack::UnifiedResult r =
      attack::registry().run(kind, view, chip, common, tuning, parallel);
  capture.finish();

  std::printf("%s attack: %s | %s | queries=%llu | %.2fs\n", kind.c_str(),
              r.success() ? "KEY RECOVERED" : attack::outcome_name(r.outcome),
              r.detail.c_str(), static_cast<unsigned long long>(r.queries),
              r.elapsed_s);
  if (kind == "sat") {
    std::printf(
        "  decisions %lld, propagations %lld, learned %lld, peak clauses "
        "%lld\n",
        static_cast<long long>(r.sat.decisions),
        static_cast<long long>(r.sat.propagations),
        static_cast<long long>(r.sat.learned),
        static_cast<long long>(r.sat.peak_clauses));
    std::printf(
        "  cnf: %lld initial + %lld dip clauses (%.1f/iter), "
        "%d key rows folded, portfolio %d%s\n",
        static_cast<long long>(r.sat.cnf_initial_clauses),
        static_cast<long long>(r.sat.cnf_dip_clauses),
        r.sat.cnf_clauses_per_iter, r.sat.key_rows_resolved, r.sat.portfolio,
        r.sat.unsat_winner > 0 ? " (helper won the UNSAT race)" : "");
  }
  if (r.success()) std::fputs(key_to_string(r.key).c_str(), stdout);
  return r.success() ? 0 : 2;
}

int cmd_defend(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_flag("--list", "print the registered defenses and their knobs");
  p.add_option("--in", "input netlist (pure CMOS)", "");
  p.add_option("--kind",
               "defense to apply: independent|dependent|parametric|xor|"
               "latch|const (see --list)",
               "parametric");
  p.add_option("--seed", "defense seed", "1");
  p.add_option("--margin", "paper-adapter timing margin", "0.05");
  p.add_option("--tune",
               "comma list of defense-specific key=value knobs, e.g. "
               "count=16,xnor=0.5",
               "");
  p.add_option("--out-locked", "locked (configured) netlist output", "");
  p.add_option("--out-foundry", "redacted netlist output", "");
  p.add_option("--out-key", "plain key-file output", "");
  p.add_option("--out-annotations",
               "defense-annotation file consumed by `sttlock lint`", "");
  cli::CommonOptions common_opt(p, cli::kSimIsa);
  p.parse(args);
  if (p.flag("--list")) return list_defenses();
  common_opt.load(p);
  if (p.get("--in").empty()) {
    std::fprintf(stderr, "defend: pass --in <netlist> (or --list)\n");
    return 1;
  }

  const Netlist original = load_netlist(p.get("--in"));
  const TechLibrary lib = TechLibrary::cmos90_stt();
  defense::DefenseOptions opt;
  opt.seed = static_cast<std::uint64_t>(p.get_int("--seed"));
  opt.timing_margin = p.get_double("--margin");
  const defense::DefenseResult r =
      defense::registry().apply(p.get("--kind"), original, lib, opt,
                                parse_tuning_list(p.get("--tune"), ','));

  std::printf("%s: %s | %d key cells (%d key bits) | +%d cells, %d replaced\n",
              r.defense.c_str(), r.detail.c_str(), r.key_cells, r.key_bits,
              r.cells_added, r.cells_replaced);
  std::printf("overhead: perf %+.2f%% | power %+.2f%% | area %+.2f%%\n",
              r.overhead.perf_degradation_pct(),
              r.overhead.power_overhead_pct(),
              r.overhead.area_overhead_pct());
  std::printf("attack cost: N_indep=%s  N_dep=%s  N_bf=%s test clocks\n",
              r.security.n_indep.to_string().c_str(),
              r.security.n_dep.to_string().c_str(),
              r.security.n_bf.to_string().c_str());

  if (!p.get("--out-locked").empty()) {
    save_netlist(r.locked, p.get("--out-locked"), false);
  }
  if (!p.get("--out-foundry").empty()) {
    save_netlist(r.locked, p.get("--out-foundry"), true);
  }
  if (!p.get("--out-key").empty()) {
    write_text_file(p.get("--out-key"), key_to_string(r.key));
  }
  if (!p.get("--out-annotations").empty()) {
    write_text_file(p.get("--out-annotations"),
                    annotations_to_string(r.annotations));
  }
  return 0;
}

int cmd_campaign(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--benchmarks",
               "comma-separated ISCAS'89 profile names (default: all 12)", "");
  p.add_option("--algorithms",
               "comma-separated subset of independent,dependent,parametric",
               "independent,dependent,parametric");
  p.add_option("--seeds", "trials per (benchmark, algorithm) grid point", "1");
  p.add_option("--master-seed", "campaign master seed", "20160605");
  p.add_option("--retries", "max attempts per grid point (seed backoff)", "3");
  p.add_option("--attack",
               "attack axis: comma list of none and registry names "
               "(sat|seq|sens|gsens|bf|ml|dpa|static), or 'all'",
               "none");
  p.add_option("--defense",
               "defense axis: comma list of kind[:k=v[:k=v...]] entries "
               "(see 'sttlock defend --list'), or 'all'; default is the "
               "--algorithms paper sweep",
               "");
  p.add_option("--margin", "parametric timing margin", "0.05");
  p.add_option("--out-csv", "deterministic result rows (CSV)", "");
  p.add_option("--out-times-csv", "measured per-job timing rows (CSV)", "");
  p.add_option("--out-json", "full JSON report (results+summary+runtime)", "");
  p.add_option("--stable-json",
               "deterministic JSON report (no runtime section; "
               "byte-comparable across runs, --jobs, resume and shards)",
               "");
  p.add_option("--store",
               "record every completed grid point into this append-only "
               "result store (refuses to clobber; continue with --resume)",
               "");
  p.add_option("--resume",
               "existing result store to resume: recorded grid points are "
               "skipped and replayed from disk (created if missing)",
               "");
  p.add_option("--shard",
               "run only shard i of N as i/N (requires --store/--resume; "
               "recombine the stores with 'sttlock merge')",
               "1/1");
  p.add_flag("--progress", "live progress line on stderr");
  cli::CommonOptions common_opt(
      p, cli::kJobs | cli::kObs | cli::kSimIsa | cli::kQuiet);
  p.parse(args);
  common_opt.load(p);

  CampaignSpec spec;
  if (!p.get("--benchmarks").empty()) {
    spec.benchmarks = split(p.get("--benchmarks"), ',');
  }
  spec.algorithms.clear();
  for (const std::string& name : split(p.get("--algorithms"), ',')) {
    if (name == "independent") {
      spec.algorithms.push_back(SelectionAlgorithm::kIndependent);
    } else if (name == "dependent") {
      spec.algorithms.push_back(SelectionAlgorithm::kDependent);
    } else if (name == "parametric") {
      spec.algorithms.push_back(SelectionAlgorithm::kParametric);
    } else {
      std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
      return 1;
    }
  }
  spec.trials = static_cast<int>(p.get_int("--seeds"));
  spec.master_seed = static_cast<std::uint64_t>(p.get_int("--master-seed"));
  spec.jobs = common_opt.jobs();
  spec.max_attempts = static_cast<int>(p.get_int("--retries"));
  spec.timing_margin = p.get_double("--margin");

  // Result store / resume / shard plumbing (runtime/store.hpp, shard.hpp).
  if (!p.get("--store").empty() && !p.get("--resume").empty()) {
    std::fprintf(stderr,
                 "campaign: pass --store (fresh) or --resume (continue), "
                 "not both\n");
    return 1;
  }
  spec.store_path = p.get("--store");
  if (!p.get("--resume").empty()) {
    spec.store_path = p.get("--resume");
    spec.resume = true;
  }
  const ShardSpec shard = parse_shard(p.get("--shard"));
  spec.shard_index = shard.index;
  spec.shard_count = shard.count;
  if (shard.count > 1 && spec.store_path.empty()) {
    std::fprintf(stderr,
                 "campaign: --shard needs --store/--resume so 'sttlock "
                 "merge' can recombine the results\n");
    return 1;
  }

  // Defense axis: explicit entries override the --algorithms paper sweep.
  const std::string defense_arg = p.get("--defense");
  if (defense_arg == "all") {
    for (const std::string& name : defense::registry().names()) {
      spec.defenses.push_back({name, {}});
    }
  } else {
    for (const std::string& entry : split(defense_arg, ',')) {
      if (trim(entry).empty()) continue;
      DefenseAxis axis;
      const auto colon = entry.find(':');
      axis.kind = std::string(trim(entry.substr(0, colon)));
      if (colon != std::string::npos) {
        axis.tuning = parse_tuning_list(entry.substr(colon + 1), ':');
      }
      spec.defenses.push_back(std::move(axis));
    }
  }
  // Attack axis; unknown names are rejected by run_campaign with the list
  // of valid kinds.
  const std::string attack_arg = p.get("--attack");
  if (attack_arg == "all") {
    spec.attacks = attack::registry().names();
  } else {
    for (const std::string& name : split(attack_arg, ',')) {
      if (trim(name).empty()) continue;
      spec.attacks.push_back(std::string(trim(name)));
    }
  }

  const std::size_t grid =
      (spec.benchmarks.empty() ? iscas89_profiles().size()
                               : spec.benchmarks.size()) *
      (spec.defenses.empty() ? spec.algorithms.size()
                             : spec.defenses.size()) *
      (spec.attacks.empty() ? 1 : spec.attacks.size()) *
      static_cast<std::size_t>(spec.trials);
  ProgressMeter meter(grid, p.flag("--progress"));
  spec.on_progress = [&meter](std::size_t done, std::size_t,
                              const std::string& label) {
    meter.tick(done, label);
  };

  ObsCapture capture(common_opt);
  const CampaignReport report = run_campaign(spec);
  meter.finish();
  capture.finish();

  if (!report.profile.store_note.empty()) {
    std::fprintf(stderr, "store: %s\n", report.profile.store_note.c_str());
  }
  if (!p.get("--out-csv").empty()) {
    write_text_file(p.get("--out-csv"), campaign_results_csv(report));
  }
  if (!p.get("--out-times-csv").empty()) {
    write_text_file(p.get("--out-times-csv"), campaign_timing_csv(report));
  }
  if (!p.get("--out-json").empty()) {
    write_text_file(p.get("--out-json"), campaign_json(report));
  }
  if (!p.get("--stable-json").empty()) {
    write_text_file(p.get("--stable-json"),
                    campaign_json(report, /*include_profile=*/false));
  }

  if (!common_opt.quiet()) {
    std::printf("%s\n", campaign_summary_text(report).c_str());
  }
  std::printf(
      "campaign: %zu rows (%zu failed) on %u threads in %.1fs "
      "(job cpu %.1fs, %llu tasks, %llu stolen)\n",
      report.rows.size(), report.profile.failed_rows, report.profile.threads,
      report.profile.wall_seconds, report.profile.job_cpu_seconds,
      static_cast<unsigned long long>(report.profile.executed),
      static_cast<unsigned long long>(report.profile.stolen));
  if (!spec.store_path.empty() || spec.shard_count > 1) {
    std::printf("store: %zu rows resumed, %zu executed (shard %u/%u)\n",
                report.profile.rows_resumed, report.profile.rows_executed,
                report.profile.shard_index, report.profile.shard_count);
  }
  if (report.profile.cache_builds > 0) {
    std::printf(
        "cache: %llu group lowerings built, %llu reuses, ~%.1f ms per-trial "
        "setup saved\n",
        static_cast<unsigned long long>(report.profile.cache_builds),
        static_cast<unsigned long long>(report.profile.cache_reuses),
        report.profile.cache_saved_ms);
  }
  return report.profile.failed_rows == 0 ? 0 : 2;
}

int cmd_merge(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in",
               "comma-separated result stores to merge (shards of one "
               "campaign, or an interrupted store plus its continuation)");
  p.add_option("--out-csv", "deterministic result rows (CSV)", "");
  p.add_option("--out-json", "full JSON report (results+summary+runtime)", "");
  p.add_option("--stable-json",
               "deterministic JSON report (no runtime section; "
               "byte-comparable across runs, --jobs, resume and shards)",
               "");
  cli::CommonOptions common_opt(p, cli::kQuiet);
  p.parse(args);
  common_opt.load(p);

  std::vector<std::string> paths;
  for (const std::string& path : split(p.get("--in"), ',')) {
    if (!trim(path).empty()) paths.push_back(std::string(trim(path)));
  }
  if (paths.empty()) {
    std::fprintf(stderr, "merge: pass --in <store>[,<store>...]\n");
    return 1;
  }

  MergeStats stats;
  const CampaignReport report = merge_stores(paths, &stats);

  if (!p.get("--out-csv").empty()) {
    write_text_file(p.get("--out-csv"), campaign_results_csv(report));
  }
  if (!p.get("--out-json").empty()) {
    write_text_file(p.get("--out-json"), campaign_json(report));
  }
  if (!p.get("--stable-json").empty()) {
    write_text_file(p.get("--stable-json"),
                    campaign_json(report, /*include_profile=*/false));
  }
  if (!common_opt.quiet()) {
    std::printf("%s\n", campaign_summary_text(report).c_str());
  }
  std::printf(
      "merge: %zu stores -> %zu rows (%zu stage deltas, %zu duplicate "
      "records, %zu failed rows)\n",
      stats.stores, report.rows.size(), stats.stages, stats.duplicates,
      report.profile.failed_rows);
  return report.profile.failed_rows == 0 ? 0 : 2;
}

int cmd_lint(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in", "comma-separated netlist files to lint", "");
  p.add_option("--gen",
               "comma-separated ISCAS'89 profiles to generate, lock and lint "
               "('all' = the whole set)",
               "");
  p.add_option("--algorithms",
               "with --gen: subset of independent,dependent,parametric",
               "independent,dependent,parametric");
  p.add_option("--seed", "with --gen: generation/selection seed", "1");
  p.add_option("--margin", "with --gen: parametric timing margin", "0.05");
  p.add_option("--scoap-threshold",
               "SEC004 resolvability bound (justify+observe cost)", "6.0");
  p.add_option("--annotations",
               "defense annotation file (sttlock defend --out-annotations): "
               "declared key gates / decoy latches / locked constants",
               "");
  p.add_option("--json", "machine-readable report output path", "");
  p.add_flag("--strict", "treat warnings as errors in the exit code");
  p.add_flag("--no-audit", "structural layer only (skip the security audit)");
  cli::CommonOptions common_opt(p, cli::kQuiet);
  p.parse(args);
  common_opt.load(p);

  LintOptions opt;
  opt.run_audit = !p.flag("--no-audit");
  opt.audit.resolvability_threshold = p.get_double("--scoap-threshold");
  if (!p.get("--annotations").empty()) {
    std::ifstream in(p.get("--annotations"));
    if (!in) throw std::runtime_error("cannot read " + p.get("--annotations"));
    std::ostringstream text;
    text << in.rdbuf();
    opt.defense = annotations_from_string(text.str());
  }

  std::vector<LintReport> reports;
  auto lint_one = [&](const Netlist& nl) {
    reports.push_back(run_lint(nl, opt));
    if (!common_opt.quiet()) {
      std::fputs(lint_text(reports.back()).c_str(), stdout);
    }
  };

  for (const std::string& path : split(p.get("--in"), ',')) {
    if (trim(path).empty()) continue;
    lint_one(load_netlist(std::string(trim(path))));
  }

  if (!p.get("--gen").empty()) {
    std::vector<std::string> names;
    if (p.get("--gen") == "all") {
      for (const auto& profile : iscas89_profiles()) {
        names.push_back(profile.name);
      }
    } else {
      names = split(p.get("--gen"), ',');
    }
    std::vector<SelectionAlgorithm> algorithms;
    for (const std::string& name : split(p.get("--algorithms"), ',')) {
      if (name == "independent") {
        algorithms.push_back(SelectionAlgorithm::kIndependent);
      } else if (name == "dependent") {
        algorithms.push_back(SelectionAlgorithm::kDependent);
      } else if (name == "parametric") {
        algorithms.push_back(SelectionAlgorithm::kParametric);
      } else {
        std::fprintf(stderr, "unknown algorithm '%s'\n", name.c_str());
        return 1;
      }
    }
    const TechLibrary lib = TechLibrary::cmos90_stt();
    const auto seed = static_cast<std::uint64_t>(p.get_int("--seed"));
    for (const std::string& name : names) {
      const auto profile = find_profile(name);
      if (!profile) {
        std::fprintf(stderr, "unknown profile '%s'\n", name.c_str());
        return 1;
      }
      const Netlist original = generate_circuit(*profile, seed);
      // The clean pre-lock netlist is part of the regression surface too.
      Netlist clean = original;
      clean.set_name(name + "/clean");
      lint_one(clean);
      for (const SelectionAlgorithm alg : algorithms) {
        FlowOptions fopt;
        fopt.algorithm = alg;
        fopt.selection.seed = seed;
        fopt.selection.timing_margin = p.get_double("--margin");
        FlowResult flow = run_secure_flow(original, lib, fopt);
        flow.hybrid.set_name(name + "/" + algorithm_name(alg));
        lint_one(flow.hybrid);
      }
    }
  }

  if (reports.empty()) {
    std::fprintf(stderr, "lint: nothing to do (pass --in or --gen)\n");
    return 1;
  }
  if (!p.get("--json").empty()) {
    std::ofstream out(p.get("--json"));
    if (!out) throw std::runtime_error("cannot write " + p.get("--json"));
    out << (reports.size() == 1 ? lint_json(reports.front())
                                : lint_json(reports));
  }

  int failed = 0;
  for (const LintReport& report : reports) {
    if (report.failed(p.flag("--strict"))) ++failed;
  }
  std::printf("lint: %zu netlist(s), %d failed%s\n", reports.size(), failed,
              p.flag("--strict") ? " (strict)" : "");
  return failed == 0 ? 0 : 2;
}

int cmd_analyze(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in", "comma-separated netlist files to analyze", "");
  p.add_option("--gen",
               "comma-separated ISCAS'89 profiles to generate, lock and "
               "analyze ('all' = the whole set)",
               "");
  p.add_option("--defense",
               "with --gen: comma list of kind[:k=v[:k=v...]] entries "
               "(see 'sttlock defend --list'), or 'all'",
               "parametric");
  p.add_option("--seed", "with --gen: generation/defense seed", "1");
  p.add_option("--margin", "with --gen: paper-adapter timing margin", "0.05");
  p.add_option("--annotations",
               "with --in: defense annotation file (sttlock defend "
               "--out-annotations); --gen feeds each defense's own "
               "annotations automatically",
               "");
  p.add_option("--out", "machine-readable report output path", "");
  p.add_flag("--no-support",
             "skip the support-function pass (KEY008 vacuousness)");
  cli::CommonOptions common_opt(p, cli::kJobs | cli::kQuiet | cli::kJson);
  p.parse(args);
  common_opt.load(p);

  struct AnalyzeTask {
    std::string name;
    Netlist nl;
    DefenseAnnotations annotations;
  };
  std::vector<AnalyzeTask> tasks;

  DefenseAnnotations file_annotations;
  if (!p.get("--annotations").empty()) {
    std::ifstream in(p.get("--annotations"));
    if (!in) throw std::runtime_error("cannot read " + p.get("--annotations"));
    std::ostringstream text;
    text << in.rdbuf();
    file_annotations = annotations_from_string(text.str());
  }
  for (const std::string& path : split(p.get("--in"), ',')) {
    if (trim(path).empty()) continue;
    const std::string file(trim(path));
    tasks.push_back({file, load_netlist(file), file_annotations});
  }

  if (!p.get("--gen").empty()) {
    std::vector<std::string> names;
    if (p.get("--gen") == "all") {
      for (const auto& profile : iscas89_profiles()) {
        names.push_back(profile.name);
      }
    } else {
      names = split(p.get("--gen"), ',');
    }
    std::vector<DefenseAxis> axes;
    if (p.get("--defense") == "all") {
      for (const std::string& kind : defense::registry().names()) {
        axes.push_back({kind, {}});
      }
    } else {
      for (const std::string& entry : split(p.get("--defense"), ',')) {
        if (trim(entry).empty()) continue;
        DefenseAxis axis;
        const auto colon = entry.find(':');
        axis.kind = std::string(trim(entry.substr(0, colon)));
        if (colon != std::string::npos) {
          axis.tuning = parse_tuning_list(entry.substr(colon + 1), ':');
        }
        axes.push_back(std::move(axis));
      }
    }
    const TechLibrary lib = TechLibrary::cmos90_stt();
    defense::DefenseOptions opt;
    opt.seed = static_cast<std::uint64_t>(p.get_int("--seed"));
    opt.timing_margin = p.get_double("--margin");
    for (const std::string& name : names) {
      const auto profile = find_profile(name);
      if (!profile) {
        std::fprintf(stderr, "unknown profile '%s'\n", name.c_str());
        return 1;
      }
      const Netlist original = generate_circuit(*profile, opt.seed);
      for (const DefenseAxis& axis : axes) {
        defense::DefenseResult r = defense::registry().apply(
            axis.kind, original, lib, opt, axis.tuning);
        r.locked.set_name(name + "/" + axis.kind);
        tasks.push_back({name + "/" + axis.kind, std::move(r.locked),
                         std::move(r.annotations)});
      }
    }
  }
  if (tasks.empty()) {
    std::fprintf(stderr, "analyze: nothing to do (pass --in or --gen)\n");
    return 1;
  }

  // Index-addressed result slots: the output is assembled in task order
  // after the pool drains, so the report is byte-identical across --jobs.
  std::vector<KeydepResult> results(tasks.size());
  std::vector<std::string> errors(tasks.size());
  const auto analyze_at = [&](std::size_t i) {
    KeydepOptions opt;
    opt.defense = tasks[i].annotations;
    opt.support_analysis = !p.flag("--no-support");
    try {
      results[i] = analyze_keydep(tasks[i].nl, opt);
    } catch (const std::exception& e) {
      errors[i] = e.what();
    }
  };
  const unsigned jobs = common_opt.jobs();
  if (jobs == 1) {
    for (std::size_t i = 0; i < tasks.size(); ++i) analyze_at(i);
  } else {
    ThreadPool pool(jobs == 0 ? 0u : jobs);
    ThreadPoolParallelFor par(pool);
    par.run(tasks.size(), analyze_at);
  }

  int failed = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (!errors[i].empty()) {
      std::fprintf(stderr, "analyze: %s: %s\n", tasks[i].name.c_str(),
                   errors[i].c_str());
      ++failed;
      continue;
    }
    const KeydepResult& r = results[i];
    if (!common_opt.quiet()) {
      std::printf(
          "%s: %s | key cells %d, bits %d nominal / %d static / %d "
          "effective | const %d removable %d mutable %d pairwise %d hard "
          "%d | %zu interference edges\n",
          tasks[i].name.c_str(), r.verdict().c_str(), r.key_cells,
          r.key_bits, r.key_bits_static, r.eff_key_bits, r.constant_cells,
          r.removable_cells, r.mutable_cells, r.pairwise_cells, r.hard_cells,
          r.edges.size());
    }
  }
  if (failed) return 1;

  if (!p.get("--out").empty() || common_opt.json()) {
    std::string doc;
    if (tasks.size() == 1) {
      doc = keydep_json(tasks[0].nl, results[0]);
    } else {
      doc = "[\n";
      for (std::size_t i = 0; i < tasks.size(); ++i) {
        std::string one = keydep_json(tasks[i].nl, results[i]);
        if (!one.empty() && one.back() == '\n') one.pop_back();
        doc += one;
        doc += i + 1 < tasks.size() ? ",\n" : "\n";
      }
      doc += "]\n";
    }
    if (!p.get("--out").empty()) write_text_file(p.get("--out"), doc);
    if (common_opt.json()) std::fputs(doc.c_str(), stdout);
  }
  return 0;
}

int cmd_convert(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in", "input netlist");
  p.add_option("--out", "output netlist");
  p.add_flag("--redact", "withhold LUT configurations in the output");
  p.parse(args);
  const Netlist nl = load_netlist(p.get("--in"));
  save_netlist(nl, p.get("--out"), p.flag("--redact"));
  std::printf("wrote %s\n", p.get("--out").c_str());
  return 0;
}

int cmd_program(const std::vector<std::string>& args) {
  ArgParser p;
  p.add_option("--in", "fabricated (redacted) netlist");
  p.add_option("--key", "key file or STTB programming image");
  p.add_option("--out", "configured netlist output");
  p.parse(args);
  Netlist nl = load_netlist(p.get("--in"));
  std::ifstream key_file(p.get("--key"));
  if (!key_file) {
    std::fprintf(stderr, "cannot open key file\n");
    return 1;
  }
  std::ostringstream buf;
  buf << key_file.rdbuf();
  const std::string content = buf.str();
  if (starts_with(content, "STTB")) {
    // CRC + fingerprint verified image.
    program_from_bitstream(nl, content);
  } else {
    apply_key(nl, key_from_string(content));
  }
  save_netlist(nl, p.get("--out"), false);
  std::printf("programmed %zu LUTs -> %s\n", extract_key(nl).size(),
              p.get("--out").c_str());
  return 0;
}

void usage() {
  std::fputs(
      "usage: sttlock <command> [options]\n"
      "commands: gen, info, lock, defend, attack, campaign, merge, lint, "
      "analyze, convert, program\n"
      "run 'sttlock <command> --help' is not needed — errors list options.\n",
      stderr);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    usage();
    return 1;
  }
  const std::string cmd = argv[1];
  const std::vector<std::string> args(argv + 2, argv + argc);
  try {
    if (cmd == "gen") return cmd_gen(args);
    if (cmd == "info") return cmd_info(args);
    if (cmd == "lock") return cmd_lock(args);
    if (cmd == "defend") return cmd_defend(args);
    if (cmd == "attack") return cmd_attack(args);
    if (cmd == "campaign") return cmd_campaign(args);
    if (cmd == "merge") return cmd_merge(args);
    if (cmd == "lint") return cmd_lint(args);
    if (cmd == "analyze") return cmd_analyze(args);
    if (cmd == "convert") return cmd_convert(args);
    if (cmd == "program") return cmd_program(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  usage();
  return 1;
}
