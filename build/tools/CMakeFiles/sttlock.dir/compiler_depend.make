# Empty compiler generated dependencies file for sttlock.
# This may be replaced when dependencies are built.
