file(REMOVE_RECURSE
  "CMakeFiles/sttlock.dir/sttlock_cli.cpp.o"
  "CMakeFiles/sttlock.dir/sttlock_cli.cpp.o.d"
  "sttlock"
  "sttlock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sttlock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
