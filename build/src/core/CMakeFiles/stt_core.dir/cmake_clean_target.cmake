file(REMOVE_RECURSE
  "libstt_core.a"
)
