# Empty dependencies file for stt_core.
# This may be replaced when dependencies are built.
