file(REMOVE_RECURSE
  "CMakeFiles/stt_core.dir/bitstream.cpp.o"
  "CMakeFiles/stt_core.dir/bitstream.cpp.o.d"
  "CMakeFiles/stt_core.dir/camouflage.cpp.o"
  "CMakeFiles/stt_core.dir/camouflage.cpp.o.d"
  "CMakeFiles/stt_core.dir/flow.cpp.o"
  "CMakeFiles/stt_core.dir/flow.cpp.o.d"
  "CMakeFiles/stt_core.dir/hybrid.cpp.o"
  "CMakeFiles/stt_core.dir/hybrid.cpp.o.d"
  "CMakeFiles/stt_core.dir/overhead.cpp.o"
  "CMakeFiles/stt_core.dir/overhead.cpp.o.d"
  "CMakeFiles/stt_core.dir/packing.cpp.o"
  "CMakeFiles/stt_core.dir/packing.cpp.o.d"
  "CMakeFiles/stt_core.dir/security.cpp.o"
  "CMakeFiles/stt_core.dir/security.cpp.o.d"
  "CMakeFiles/stt_core.dir/selection.cpp.o"
  "CMakeFiles/stt_core.dir/selection.cpp.o.d"
  "CMakeFiles/stt_core.dir/similarity.cpp.o"
  "CMakeFiles/stt_core.dir/similarity.cpp.o.d"
  "libstt_core.a"
  "libstt_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
