
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/bitstream.cpp" "src/core/CMakeFiles/stt_core.dir/bitstream.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/bitstream.cpp.o.d"
  "/root/repo/src/core/camouflage.cpp" "src/core/CMakeFiles/stt_core.dir/camouflage.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/camouflage.cpp.o.d"
  "/root/repo/src/core/flow.cpp" "src/core/CMakeFiles/stt_core.dir/flow.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/flow.cpp.o.d"
  "/root/repo/src/core/hybrid.cpp" "src/core/CMakeFiles/stt_core.dir/hybrid.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/hybrid.cpp.o.d"
  "/root/repo/src/core/overhead.cpp" "src/core/CMakeFiles/stt_core.dir/overhead.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/overhead.cpp.o.d"
  "/root/repo/src/core/packing.cpp" "src/core/CMakeFiles/stt_core.dir/packing.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/packing.cpp.o.d"
  "/root/repo/src/core/security.cpp" "src/core/CMakeFiles/stt_core.dir/security.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/security.cpp.o.d"
  "/root/repo/src/core/selection.cpp" "src/core/CMakeFiles/stt_core.dir/selection.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/selection.cpp.o.d"
  "/root/repo/src/core/similarity.cpp" "src/core/CMakeFiles/stt_core.dir/similarity.cpp.o" "gcc" "src/core/CMakeFiles/stt_core.dir/similarity.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/stt_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/stt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/stt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stt_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
