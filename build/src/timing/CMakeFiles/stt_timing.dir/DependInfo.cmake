
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/timing/sta.cpp" "src/timing/CMakeFiles/stt_timing.dir/sta.cpp.o" "gcc" "src/timing/CMakeFiles/stt_timing.dir/sta.cpp.o.d"
  "/root/repo/src/timing/variation.cpp" "src/timing/CMakeFiles/stt_timing.dir/variation.cpp.o" "gcc" "src/timing/CMakeFiles/stt_timing.dir/variation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/stt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
