# Empty dependencies file for stt_timing.
# This may be replaced when dependencies are built.
