file(REMOVE_RECURSE
  "libstt_timing.a"
)
