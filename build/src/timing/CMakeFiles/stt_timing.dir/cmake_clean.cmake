file(REMOVE_RECURSE
  "CMakeFiles/stt_timing.dir/sta.cpp.o"
  "CMakeFiles/stt_timing.dir/sta.cpp.o.d"
  "CMakeFiles/stt_timing.dir/variation.cpp.o"
  "CMakeFiles/stt_timing.dir/variation.cpp.o.d"
  "libstt_timing.a"
  "libstt_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
