file(REMOVE_RECURSE
  "libstt_netlist.a"
)
