# Empty dependencies file for stt_netlist.
# This may be replaced when dependencies are built.
