file(REMOVE_RECURSE
  "CMakeFiles/stt_netlist.dir/celltype.cpp.o"
  "CMakeFiles/stt_netlist.dir/celltype.cpp.o.d"
  "CMakeFiles/stt_netlist.dir/cleanup.cpp.o"
  "CMakeFiles/stt_netlist.dir/cleanup.cpp.o.d"
  "CMakeFiles/stt_netlist.dir/netlist.cpp.o"
  "CMakeFiles/stt_netlist.dir/netlist.cpp.o.d"
  "libstt_netlist.a"
  "libstt_netlist.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_netlist.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
