
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/netlist/celltype.cpp" "src/netlist/CMakeFiles/stt_netlist.dir/celltype.cpp.o" "gcc" "src/netlist/CMakeFiles/stt_netlist.dir/celltype.cpp.o.d"
  "/root/repo/src/netlist/cleanup.cpp" "src/netlist/CMakeFiles/stt_netlist.dir/cleanup.cpp.o" "gcc" "src/netlist/CMakeFiles/stt_netlist.dir/cleanup.cpp.o.d"
  "/root/repo/src/netlist/netlist.cpp" "src/netlist/CMakeFiles/stt_netlist.dir/netlist.cpp.o" "gcc" "src/netlist/CMakeFiles/stt_netlist.dir/netlist.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
