file(REMOVE_RECURSE
  "libstt_sim.a"
)
