
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/activity.cpp" "src/sim/CMakeFiles/stt_sim.dir/activity.cpp.o" "gcc" "src/sim/CMakeFiles/stt_sim.dir/activity.cpp.o.d"
  "/root/repo/src/sim/scoap.cpp" "src/sim/CMakeFiles/stt_sim.dir/scoap.cpp.o" "gcc" "src/sim/CMakeFiles/stt_sim.dir/scoap.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/sim/CMakeFiles/stt_sim.dir/simulator.cpp.o" "gcc" "src/sim/CMakeFiles/stt_sim.dir/simulator.cpp.o.d"
  "/root/repo/src/sim/ternary.cpp" "src/sim/CMakeFiles/stt_sim.dir/ternary.cpp.o" "gcc" "src/sim/CMakeFiles/stt_sim.dir/ternary.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
