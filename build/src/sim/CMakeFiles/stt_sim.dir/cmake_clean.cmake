file(REMOVE_RECURSE
  "CMakeFiles/stt_sim.dir/activity.cpp.o"
  "CMakeFiles/stt_sim.dir/activity.cpp.o.d"
  "CMakeFiles/stt_sim.dir/scoap.cpp.o"
  "CMakeFiles/stt_sim.dir/scoap.cpp.o.d"
  "CMakeFiles/stt_sim.dir/simulator.cpp.o"
  "CMakeFiles/stt_sim.dir/simulator.cpp.o.d"
  "CMakeFiles/stt_sim.dir/ternary.cpp.o"
  "CMakeFiles/stt_sim.dir/ternary.cpp.o.d"
  "libstt_sim.a"
  "libstt_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
