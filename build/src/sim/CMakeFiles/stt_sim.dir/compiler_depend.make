# Empty compiler generated dependencies file for stt_sim.
# This may be replaced when dependencies are built.
