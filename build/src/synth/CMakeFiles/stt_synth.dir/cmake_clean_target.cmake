file(REMOVE_RECURSE
  "libstt_synth.a"
)
