# Empty compiler generated dependencies file for stt_synth.
# This may be replaced when dependencies are built.
