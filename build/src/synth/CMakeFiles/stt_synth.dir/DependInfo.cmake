
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/generator.cpp" "src/synth/CMakeFiles/stt_synth.dir/generator.cpp.o" "gcc" "src/synth/CMakeFiles/stt_synth.dir/generator.cpp.o.d"
  "/root/repo/src/synth/optimize.cpp" "src/synth/CMakeFiles/stt_synth.dir/optimize.cpp.o" "gcc" "src/synth/CMakeFiles/stt_synth.dir/optimize.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/stt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
