file(REMOVE_RECURSE
  "CMakeFiles/stt_synth.dir/generator.cpp.o"
  "CMakeFiles/stt_synth.dir/generator.cpp.o.d"
  "CMakeFiles/stt_synth.dir/optimize.cpp.o"
  "CMakeFiles/stt_synth.dir/optimize.cpp.o.d"
  "libstt_synth.a"
  "libstt_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
