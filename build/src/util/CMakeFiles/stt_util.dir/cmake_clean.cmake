file(REMOVE_RECURSE
  "CMakeFiles/stt_util.dir/args.cpp.o"
  "CMakeFiles/stt_util.dir/args.cpp.o.d"
  "CMakeFiles/stt_util.dir/bignum.cpp.o"
  "CMakeFiles/stt_util.dir/bignum.cpp.o.d"
  "CMakeFiles/stt_util.dir/strings.cpp.o"
  "CMakeFiles/stt_util.dir/strings.cpp.o.d"
  "CMakeFiles/stt_util.dir/table.cpp.o"
  "CMakeFiles/stt_util.dir/table.cpp.o.d"
  "libstt_util.a"
  "libstt_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
