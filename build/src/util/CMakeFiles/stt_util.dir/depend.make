# Empty dependencies file for stt_util.
# This may be replaced when dependencies are built.
