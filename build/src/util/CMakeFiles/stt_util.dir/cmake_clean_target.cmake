file(REMOVE_RECURSE
  "libstt_util.a"
)
