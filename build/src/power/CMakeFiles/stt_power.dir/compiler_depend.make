# Empty compiler generated dependencies file for stt_power.
# This may be replaced when dependencies are built.
