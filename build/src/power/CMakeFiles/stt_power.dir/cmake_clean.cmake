file(REMOVE_RECURSE
  "CMakeFiles/stt_power.dir/activity_prop.cpp.o"
  "CMakeFiles/stt_power.dir/activity_prop.cpp.o.d"
  "CMakeFiles/stt_power.dir/power.cpp.o"
  "CMakeFiles/stt_power.dir/power.cpp.o.d"
  "CMakeFiles/stt_power.dir/trace.cpp.o"
  "CMakeFiles/stt_power.dir/trace.cpp.o.d"
  "libstt_power.a"
  "libstt_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
