
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/activity_prop.cpp" "src/power/CMakeFiles/stt_power.dir/activity_prop.cpp.o" "gcc" "src/power/CMakeFiles/stt_power.dir/activity_prop.cpp.o.d"
  "/root/repo/src/power/power.cpp" "src/power/CMakeFiles/stt_power.dir/power.cpp.o" "gcc" "src/power/CMakeFiles/stt_power.dir/power.cpp.o.d"
  "/root/repo/src/power/trace.cpp" "src/power/CMakeFiles/stt_power.dir/trace.cpp.o" "gcc" "src/power/CMakeFiles/stt_power.dir/trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/stt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
