file(REMOVE_RECURSE
  "libstt_power.a"
)
