file(REMOVE_RECURSE
  "libstt_io.a"
)
