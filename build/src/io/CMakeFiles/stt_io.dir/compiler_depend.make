# Empty compiler generated dependencies file for stt_io.
# This may be replaced when dependencies are built.
