
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/io/bench_io.cpp" "src/io/CMakeFiles/stt_io.dir/bench_io.cpp.o" "gcc" "src/io/CMakeFiles/stt_io.dir/bench_io.cpp.o.d"
  "/root/repo/src/io/blif_io.cpp" "src/io/CMakeFiles/stt_io.dir/blif_io.cpp.o" "gcc" "src/io/CMakeFiles/stt_io.dir/blif_io.cpp.o.d"
  "/root/repo/src/io/verilog_reader.cpp" "src/io/CMakeFiles/stt_io.dir/verilog_reader.cpp.o" "gcc" "src/io/CMakeFiles/stt_io.dir/verilog_reader.cpp.o.d"
  "/root/repo/src/io/verilog_writer.cpp" "src/io/CMakeFiles/stt_io.dir/verilog_writer.cpp.o" "gcc" "src/io/CMakeFiles/stt_io.dir/verilog_writer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
