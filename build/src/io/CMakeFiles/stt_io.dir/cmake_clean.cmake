file(REMOVE_RECURSE
  "CMakeFiles/stt_io.dir/bench_io.cpp.o"
  "CMakeFiles/stt_io.dir/bench_io.cpp.o.d"
  "CMakeFiles/stt_io.dir/blif_io.cpp.o"
  "CMakeFiles/stt_io.dir/blif_io.cpp.o.d"
  "CMakeFiles/stt_io.dir/verilog_reader.cpp.o"
  "CMakeFiles/stt_io.dir/verilog_reader.cpp.o.d"
  "CMakeFiles/stt_io.dir/verilog_writer.cpp.o"
  "CMakeFiles/stt_io.dir/verilog_writer.cpp.o.d"
  "libstt_io.a"
  "libstt_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
