file(REMOVE_RECURSE
  "libstt_tech.a"
)
