
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tech/device_model.cpp" "src/tech/CMakeFiles/stt_tech.dir/device_model.cpp.o" "gcc" "src/tech/CMakeFiles/stt_tech.dir/device_model.cpp.o.d"
  "/root/repo/src/tech/tech_library.cpp" "src/tech/CMakeFiles/stt_tech.dir/tech_library.cpp.o" "gcc" "src/tech/CMakeFiles/stt_tech.dir/tech_library.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
