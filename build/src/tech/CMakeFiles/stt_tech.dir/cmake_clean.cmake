file(REMOVE_RECURSE
  "CMakeFiles/stt_tech.dir/device_model.cpp.o"
  "CMakeFiles/stt_tech.dir/device_model.cpp.o.d"
  "CMakeFiles/stt_tech.dir/tech_library.cpp.o"
  "CMakeFiles/stt_tech.dir/tech_library.cpp.o.d"
  "libstt_tech.a"
  "libstt_tech.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_tech.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
