# Empty dependencies file for stt_tech.
# This may be replaced when dependencies are built.
