file(REMOVE_RECURSE
  "CMakeFiles/stt_attack.dir/brute_force.cpp.o"
  "CMakeFiles/stt_attack.dir/brute_force.cpp.o.d"
  "CMakeFiles/stt_attack.dir/dpa.cpp.o"
  "CMakeFiles/stt_attack.dir/dpa.cpp.o.d"
  "CMakeFiles/stt_attack.dir/encode.cpp.o"
  "CMakeFiles/stt_attack.dir/encode.cpp.o.d"
  "CMakeFiles/stt_attack.dir/guided_sens.cpp.o"
  "CMakeFiles/stt_attack.dir/guided_sens.cpp.o.d"
  "CMakeFiles/stt_attack.dir/ml_attack.cpp.o"
  "CMakeFiles/stt_attack.dir/ml_attack.cpp.o.d"
  "CMakeFiles/stt_attack.dir/oracle.cpp.o"
  "CMakeFiles/stt_attack.dir/oracle.cpp.o.d"
  "CMakeFiles/stt_attack.dir/partial_eval.cpp.o"
  "CMakeFiles/stt_attack.dir/partial_eval.cpp.o.d"
  "CMakeFiles/stt_attack.dir/sat.cpp.o"
  "CMakeFiles/stt_attack.dir/sat.cpp.o.d"
  "CMakeFiles/stt_attack.dir/sat_attack.cpp.o"
  "CMakeFiles/stt_attack.dir/sat_attack.cpp.o.d"
  "CMakeFiles/stt_attack.dir/sensitization.cpp.o"
  "CMakeFiles/stt_attack.dir/sensitization.cpp.o.d"
  "CMakeFiles/stt_attack.dir/seq_attack.cpp.o"
  "CMakeFiles/stt_attack.dir/seq_attack.cpp.o.d"
  "libstt_attack.a"
  "libstt_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
