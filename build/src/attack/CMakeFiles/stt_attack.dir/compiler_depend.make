# Empty compiler generated dependencies file for stt_attack.
# This may be replaced when dependencies are built.
