file(REMOVE_RECURSE
  "libstt_attack.a"
)
