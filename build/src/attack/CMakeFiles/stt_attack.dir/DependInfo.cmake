
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/attack/brute_force.cpp" "src/attack/CMakeFiles/stt_attack.dir/brute_force.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/brute_force.cpp.o.d"
  "/root/repo/src/attack/dpa.cpp" "src/attack/CMakeFiles/stt_attack.dir/dpa.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/dpa.cpp.o.d"
  "/root/repo/src/attack/encode.cpp" "src/attack/CMakeFiles/stt_attack.dir/encode.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/encode.cpp.o.d"
  "/root/repo/src/attack/guided_sens.cpp" "src/attack/CMakeFiles/stt_attack.dir/guided_sens.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/guided_sens.cpp.o.d"
  "/root/repo/src/attack/ml_attack.cpp" "src/attack/CMakeFiles/stt_attack.dir/ml_attack.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/ml_attack.cpp.o.d"
  "/root/repo/src/attack/oracle.cpp" "src/attack/CMakeFiles/stt_attack.dir/oracle.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/oracle.cpp.o.d"
  "/root/repo/src/attack/partial_eval.cpp" "src/attack/CMakeFiles/stt_attack.dir/partial_eval.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/partial_eval.cpp.o.d"
  "/root/repo/src/attack/sat.cpp" "src/attack/CMakeFiles/stt_attack.dir/sat.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/sat.cpp.o.d"
  "/root/repo/src/attack/sat_attack.cpp" "src/attack/CMakeFiles/stt_attack.dir/sat_attack.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/sat_attack.cpp.o.d"
  "/root/repo/src/attack/sensitization.cpp" "src/attack/CMakeFiles/stt_attack.dir/sensitization.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/sensitization.cpp.o.d"
  "/root/repo/src/attack/seq_attack.cpp" "src/attack/CMakeFiles/stt_attack.dir/seq_attack.cpp.o" "gcc" "src/attack/CMakeFiles/stt_attack.dir/seq_attack.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/stt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/stt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/stt_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/stt_tech.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
