file(REMOVE_RECURSE
  "libstt_graph.a"
)
