file(REMOVE_RECURSE
  "CMakeFiles/stt_graph.dir/analysis.cpp.o"
  "CMakeFiles/stt_graph.dir/analysis.cpp.o.d"
  "CMakeFiles/stt_graph.dir/paths.cpp.o"
  "CMakeFiles/stt_graph.dir/paths.cpp.o.d"
  "libstt_graph.a"
  "libstt_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/stt_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
