# Empty dependencies file for stt_graph.
# This may be replaced when dependencies are built.
