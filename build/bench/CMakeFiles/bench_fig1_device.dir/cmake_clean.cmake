file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_device.dir/bench_fig1_device.cpp.o"
  "CMakeFiles/bench_fig1_device.dir/bench_fig1_device.cpp.o.d"
  "bench_fig1_device"
  "bench_fig1_device.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_device.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
