# Empty compiler generated dependencies file for bench_attack_validation.
# This may be replaced when dependencies are built.
