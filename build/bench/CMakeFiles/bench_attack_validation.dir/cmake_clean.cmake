file(REMOVE_RECURSE
  "CMakeFiles/bench_attack_validation.dir/bench_attack_validation.cpp.o"
  "CMakeFiles/bench_attack_validation.dir/bench_attack_validation.cpp.o.d"
  "bench_attack_validation"
  "bench_attack_validation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_attack_validation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
