file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_security.dir/bench_fig3_security.cpp.o"
  "CMakeFiles/bench_fig3_security.dir/bench_fig3_security.cpp.o.d"
  "bench_fig3_security"
  "bench_fig3_security.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_security.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
