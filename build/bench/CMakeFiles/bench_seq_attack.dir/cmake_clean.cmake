file(REMOVE_RECURSE
  "CMakeFiles/bench_seq_attack.dir/bench_seq_attack.cpp.o"
  "CMakeFiles/bench_seq_attack.dir/bench_seq_attack.cpp.o.d"
  "bench_seq_attack"
  "bench_seq_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_seq_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
