# Empty dependencies file for bench_seq_attack.
# This may be replaced when dependencies are built.
