file(REMOVE_RECURSE
  "CMakeFiles/bench_side_channel.dir/bench_side_channel.cpp.o"
  "CMakeFiles/bench_side_channel.dir/bench_side_channel.cpp.o.d"
  "bench_side_channel"
  "bench_side_channel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_side_channel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
