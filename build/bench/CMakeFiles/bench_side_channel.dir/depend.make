# Empty dependencies file for bench_side_channel.
# This may be replaced when dependencies are built.
