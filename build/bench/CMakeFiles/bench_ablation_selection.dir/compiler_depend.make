# Empty compiler generated dependencies file for bench_ablation_selection.
# This may be replaced when dependencies are built.
