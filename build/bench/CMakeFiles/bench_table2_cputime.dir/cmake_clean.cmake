file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_cputime.dir/bench_table2_cputime.cpp.o"
  "CMakeFiles/bench_table2_cputime.dir/bench_table2_cputime.cpp.o.d"
  "bench_table2_cputime"
  "bench_table2_cputime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cputime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
