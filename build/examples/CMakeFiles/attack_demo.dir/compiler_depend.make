# Empty compiler generated dependencies file for attack_demo.
# This may be replaced when dependencies are built.
