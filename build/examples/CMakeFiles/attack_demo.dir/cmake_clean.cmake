file(REMOVE_RECURSE
  "CMakeFiles/attack_demo.dir/attack_demo.cpp.o"
  "CMakeFiles/attack_demo.dir/attack_demo.cpp.o.d"
  "attack_demo"
  "attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
