# Empty compiler generated dependencies file for hardening_report.
# This may be replaced when dependencies are built.
