file(REMOVE_RECURSE
  "CMakeFiles/hardening_report.dir/hardening_report.cpp.o"
  "CMakeFiles/hardening_report.dir/hardening_report.cpp.o.d"
  "hardening_report"
  "hardening_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hardening_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
