# Empty dependencies file for secure_design_flow.
# This may be replaced when dependencies are built.
