file(REMOVE_RECURSE
  "CMakeFiles/secure_design_flow.dir/secure_design_flow.cpp.o"
  "CMakeFiles/secure_design_flow.dir/secure_design_flow.cpp.o.d"
  "secure_design_flow"
  "secure_design_flow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secure_design_flow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
