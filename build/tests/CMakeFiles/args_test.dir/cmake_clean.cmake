file(REMOVE_RECURSE
  "CMakeFiles/args_test.dir/args_test.cpp.o"
  "CMakeFiles/args_test.dir/args_test.cpp.o.d"
  "args_test"
  "args_test.pdb"
  "args_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/args_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
