# Empty dependencies file for reproducibility_test.
# This may be replaced when dependencies are built.
