file(REMOVE_RECURSE
  "CMakeFiles/reproducibility_test.dir/reproducibility_test.cpp.o"
  "CMakeFiles/reproducibility_test.dir/reproducibility_test.cpp.o.d"
  "reproducibility_test"
  "reproducibility_test.pdb"
  "reproducibility_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproducibility_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
