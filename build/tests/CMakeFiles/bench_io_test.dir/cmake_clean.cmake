file(REMOVE_RECURSE
  "CMakeFiles/bench_io_test.dir/bench_io_test.cpp.o"
  "CMakeFiles/bench_io_test.dir/bench_io_test.cpp.o.d"
  "bench_io_test"
  "bench_io_test.pdb"
  "bench_io_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
