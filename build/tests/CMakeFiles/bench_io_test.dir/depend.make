# Empty dependencies file for bench_io_test.
# This may be replaced when dependencies are built.
