# Empty dependencies file for scoap_test.
# This may be replaced when dependencies are built.
