file(REMOVE_RECURSE
  "CMakeFiles/scoap_test.dir/scoap_test.cpp.o"
  "CMakeFiles/scoap_test.dir/scoap_test.cpp.o.d"
  "scoap_test"
  "scoap_test.pdb"
  "scoap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scoap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
