# Empty compiler generated dependencies file for dpa_test.
# This may be replaced when dependencies are built.
