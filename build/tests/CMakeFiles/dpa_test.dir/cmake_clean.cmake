file(REMOVE_RECURSE
  "CMakeFiles/dpa_test.dir/dpa_test.cpp.o"
  "CMakeFiles/dpa_test.dir/dpa_test.cpp.o.d"
  "dpa_test"
  "dpa_test.pdb"
  "dpa_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dpa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
