file(REMOVE_RECURSE
  "CMakeFiles/optimize_test.dir/optimize_test.cpp.o"
  "CMakeFiles/optimize_test.dir/optimize_test.cpp.o.d"
  "optimize_test"
  "optimize_test.pdb"
  "optimize_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optimize_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
