# Empty compiler generated dependencies file for optimize_test.
# This may be replaced when dependencies are built.
