# Empty compiler generated dependencies file for seq_attack_test.
# This may be replaced when dependencies are built.
