file(REMOVE_RECURSE
  "CMakeFiles/seq_attack_test.dir/seq_attack_test.cpp.o"
  "CMakeFiles/seq_attack_test.dir/seq_attack_test.cpp.o.d"
  "seq_attack_test"
  "seq_attack_test.pdb"
  "seq_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/seq_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
