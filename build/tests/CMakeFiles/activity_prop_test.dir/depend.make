# Empty dependencies file for activity_prop_test.
# This may be replaced when dependencies are built.
