file(REMOVE_RECURSE
  "CMakeFiles/activity_prop_test.dir/activity_prop_test.cpp.o"
  "CMakeFiles/activity_prop_test.dir/activity_prop_test.cpp.o.d"
  "activity_prop_test"
  "activity_prop_test.pdb"
  "activity_prop_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/activity_prop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
