file(REMOVE_RECURSE
  "CMakeFiles/celltype_test.dir/celltype_test.cpp.o"
  "CMakeFiles/celltype_test.dir/celltype_test.cpp.o.d"
  "celltype_test"
  "celltype_test.pdb"
  "celltype_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/celltype_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
