# Empty compiler generated dependencies file for celltype_test.
# This may be replaced when dependencies are built.
