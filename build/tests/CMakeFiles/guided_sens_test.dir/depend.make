# Empty dependencies file for guided_sens_test.
# This may be replaced when dependencies are built.
