file(REMOVE_RECURSE
  "CMakeFiles/guided_sens_test.dir/guided_sens_test.cpp.o"
  "CMakeFiles/guided_sens_test.dir/guided_sens_test.cpp.o.d"
  "guided_sens_test"
  "guided_sens_test.pdb"
  "guided_sens_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guided_sens_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
