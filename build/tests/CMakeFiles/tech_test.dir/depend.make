# Empty dependencies file for tech_test.
# This may be replaced when dependencies are built.
