file(REMOVE_RECURSE
  "CMakeFiles/tech_test.dir/tech_test.cpp.o"
  "CMakeFiles/tech_test.dir/tech_test.cpp.o.d"
  "tech_test"
  "tech_test.pdb"
  "tech_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tech_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
