file(REMOVE_RECURSE
  "CMakeFiles/wide_gate_test.dir/wide_gate_test.cpp.o"
  "CMakeFiles/wide_gate_test.dir/wide_gate_test.cpp.o.d"
  "wide_gate_test"
  "wide_gate_test.pdb"
  "wide_gate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wide_gate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
