# Empty dependencies file for wide_gate_test.
# This may be replaced when dependencies are built.
