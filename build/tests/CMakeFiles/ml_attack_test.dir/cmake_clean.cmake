file(REMOVE_RECURSE
  "CMakeFiles/ml_attack_test.dir/ml_attack_test.cpp.o"
  "CMakeFiles/ml_attack_test.dir/ml_attack_test.cpp.o.d"
  "ml_attack_test"
  "ml_attack_test.pdb"
  "ml_attack_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_attack_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
