# Empty compiler generated dependencies file for ml_attack_test.
# This may be replaced when dependencies are built.
