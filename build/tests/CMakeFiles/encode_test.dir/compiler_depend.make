# Empty compiler generated dependencies file for encode_test.
# This may be replaced when dependencies are built.
