file(REMOVE_RECURSE
  "CMakeFiles/encode_test.dir/encode_test.cpp.o"
  "CMakeFiles/encode_test.dir/encode_test.cpp.o.d"
  "encode_test"
  "encode_test.pdb"
  "encode_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encode_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
