# Empty compiler generated dependencies file for variation_test.
# This may be replaced when dependencies are built.
