file(REMOVE_RECURSE
  "CMakeFiles/timing_test.dir/timing_test.cpp.o"
  "CMakeFiles/timing_test.dir/timing_test.cpp.o.d"
  "timing_test"
  "timing_test.pdb"
  "timing_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
