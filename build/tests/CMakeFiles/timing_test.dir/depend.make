# Empty dependencies file for timing_test.
# This may be replaced when dependencies are built.
