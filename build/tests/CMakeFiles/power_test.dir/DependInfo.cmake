
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/power_test.cpp" "tests/CMakeFiles/power_test.dir/power_test.cpp.o" "gcc" "tests/CMakeFiles/power_test.dir/power_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/attack/CMakeFiles/stt_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/stt_core.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/stt_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/stt_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/timing/CMakeFiles/stt_timing.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/stt_power.dir/DependInfo.cmake"
  "/root/repo/build/src/tech/CMakeFiles/stt_tech.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/stt_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/stt_io.dir/DependInfo.cmake"
  "/root/repo/build/src/netlist/CMakeFiles/stt_netlist.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/stt_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
