file(REMOVE_RECURSE
  "CMakeFiles/io_formats_test.dir/io_formats_test.cpp.o"
  "CMakeFiles/io_formats_test.dir/io_formats_test.cpp.o.d"
  "io_formats_test"
  "io_formats_test.pdb"
  "io_formats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/io_formats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
