# Empty compiler generated dependencies file for camouflage_test.
# This may be replaced when dependencies are built.
