file(REMOVE_RECURSE
  "CMakeFiles/camouflage_test.dir/camouflage_test.cpp.o"
  "CMakeFiles/camouflage_test.dir/camouflage_test.cpp.o.d"
  "camouflage_test"
  "camouflage_test.pdb"
  "camouflage_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/camouflage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
