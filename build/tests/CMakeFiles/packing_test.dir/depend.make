# Empty dependencies file for packing_test.
# This may be replaced when dependencies are built.
