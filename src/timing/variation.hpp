// Monte-Carlo process-variation timing analysis.
//
// Section III claims high thermal robustness and resilience for the STT
// cells; the practical sign-off question for a hybrid design is whether the
// inserted LUTs erode the circuit's *timing yield* under process variation.
// This module samples per-cell delay multipliers (lognormal around 1.0,
// with separate sigmas for CMOS cells and STT LUT macros — MTJ read timing
// varies less than transistor drive strength) and reports the critical-
// delay distribution and the yield at a target clock period.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"
#include "util/rng.hpp"

namespace stt {

struct VariationOptions {
  std::uint64_t seed = 1;
  int samples = 200;
  /// Lognormal sigma of the per-cell delay multiplier.
  double cmos_sigma = 0.08;
  double lut_sigma = 0.03;  ///< MTJ read path: tighter distribution
};

struct VariationResult {
  std::vector<double> critical_delays_ps;  ///< one per Monte-Carlo sample
  double mean_ps = 0;
  double stddev_ps = 0;
  double p99_ps = 0;  ///< 99th percentile critical delay

  /// Fraction of samples meeting the period.
  double yield_at(double period_ps) const;
};

VariationResult variation_analysis(const Netlist& nl, const TechLibrary& lib,
                                   const VariationOptions& opt = {});

}  // namespace stt
