#include "timing/variation.hpp"

#include <algorithm>
#include <cmath>

#include "timing/sta.hpp"
#include "util/stats.hpp"

namespace stt {

namespace {

// Box-Muller standard normal from two uniforms.
double standard_normal(Rng& rng) {
  const double u1 = std::max(rng.uniform(), 1e-12);
  const double u2 = rng.uniform();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

}  // namespace

double VariationResult::yield_at(double period_ps) const {
  if (critical_delays_ps.empty()) return 0;
  std::size_t pass = 0;
  for (const double d : critical_delays_ps) pass += (d <= period_ps);
  return static_cast<double>(pass) /
         static_cast<double>(critical_delays_ps.size());
}

VariationResult variation_analysis(const Netlist& nl, const TechLibrary& lib,
                                   const VariationOptions& opt) {
  const Sta sta(lib);
  // Nominal per-cell delays, computed once; samples scale them.
  std::vector<double> nominal(nl.size(), 0.0);
  for (CellId id = 0; id < nl.size(); ++id) {
    nominal[id] = sta.cell_delay_ps(nl, id);
  }
  const auto order = nl.topo_order();

  Rng rng(opt.seed ^ 0x5a5a1ab5ull);
  VariationResult result;
  result.critical_delays_ps.reserve(opt.samples);
  Accumulator acc;

  std::vector<double> arrival(nl.size());
  for (int s = 0; s < opt.samples; ++s) {
    double critical = 0;
    for (const CellId id : order) {
      const Cell& c = nl.cell(id);
      const double sigma =
          c.kind == CellKind::kLut ? opt.lut_sigma : opt.cmos_sigma;
      const double factor = std::exp(sigma * standard_normal(rng));
      double launch = 0;
      if (c.kind != CellKind::kInput && c.kind != CellKind::kDff) {
        for (const CellId f : c.fanins) launch = std::max(launch, arrival[f]);
      }
      arrival[id] = launch + nominal[id] * factor;
      if (c.is_output) critical = std::max(critical, arrival[id]);
    }
    for (const CellId id : nl.dffs()) {
      const Cell& c = nl.cell(id);
      if (!c.fanins.empty()) {
        critical = std::max(critical,
                            arrival[c.fanins[0]] + lib.dff_setup_ps());
      }
    }
    result.critical_delays_ps.push_back(critical);
    acc.add(critical);
  }

  result.mean_ps = acc.mean();
  result.stddev_ps = acc.stddev();
  std::vector<double> sorted = result.critical_delays_ps;
  std::sort(sorted.begin(), sorted.end());
  result.p99_ps =
      sorted[std::min(sorted.size() - 1,
                      static_cast<std::size_t>(0.99 * sorted.size()))];
  return result;
}

}  // namespace stt
