#include "timing/sta.hpp"

#include <algorithm>
#include <stdexcept>

namespace stt {

double Sta::cell_delay_ps(const Netlist& nl, CellId id) const {
  const Cell& c = nl.cell(id);
  const double load =
      lib_->load_delay_ps() * static_cast<double>(c.fanouts.size());
  switch (c.kind) {
    case CellKind::kInput:
      return 0.0;
    case CellKind::kConst0:
    case CellKind::kConst1:
      return 0.0;
    case CellKind::kDff:
      return lib_->dff_clk_to_q_ps() + load;
    case CellKind::kLut:
      return lib_->lut(c.fanin_count()).delay_ps + load;
    default:
      return lib_->gate(c.kind, c.fanin_count()).delay_ps + load;
  }
}

TimingResult Sta::analyze(const Netlist& nl) const {
  TimingResult result;
  result.arrival_ps.assign(nl.size(), 0.0);
  std::vector<CellId> worst_fanin(nl.size(), kNullCell);

  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    double launch = 0.0;
    if (c.kind == CellKind::kInput) {
      launch = 0.0;
    } else if (c.kind == CellKind::kDff) {
      launch = 0.0;  // cell_delay adds clk-to-Q below
    } else {
      for (const CellId f : c.fanins) {
        if (result.arrival_ps[f] > launch) {
          launch = result.arrival_ps[f];
          worst_fanin[id] = f;
        } else if (worst_fanin[id] == kNullCell) {
          worst_fanin[id] = f;
        }
      }
    }
    result.arrival_ps[id] = launch + cell_delay_ps(nl, id);
  }

  // Endpoints: PO arrivals and DFF D-pin arrivals + setup.
  auto consider = [&](CellId endpoint_cell, double t) {
    if (t > result.critical_delay_ps) {
      result.critical_delay_ps = t;
      result.worst_endpoint = endpoint_cell;
    }
  };
  for (const CellId id : nl.outputs()) consider(id, result.arrival_ps[id]);
  for (const CellId id : nl.dffs()) {
    const Cell& c = nl.cell(id);
    if (!c.fanins.empty()) {
      consider(c.fanins[0],
               result.arrival_ps[c.fanins[0]] + lib_->dff_setup_ps());
    }
  }

  // Trace the worst path backward through worst fan-ins.
  CellId cursor = result.worst_endpoint;
  while (cursor != kNullCell) {
    result.critical_path.push_back(cursor);
    cursor = worst_fanin[cursor];
  }
  std::reverse(result.critical_path.begin(), result.critical_path.end());
  return result;
}

std::vector<double> Sta::slacks(const Netlist& nl, const TimingResult& timing,
                                double period_ps) const {
  // required[id] = latest allowed arrival at id's output.
  std::vector<double> required(nl.size(), 1e300);
  const auto order = nl.topo_order();
  for (auto it = order.rbegin(); it != order.rend(); ++it) {
    const CellId id = *it;
    const Cell& c = nl.cell(id);
    double req = required[id];
    if (c.is_output) req = std::min(req, period_ps);
    for (const CellId reader : c.fanouts) {
      if (nl.cell(reader).kind == CellKind::kDff) {
        req = std::min(req, period_ps - lib_->dff_setup_ps());
      } else {
        req = std::min(req, required[reader] - cell_delay_ps(nl, reader));
      }
    }
    required[id] = req;
  }
  std::vector<double> slack(nl.size());
  for (CellId id = 0; id < nl.size(); ++id) {
    slack[id] = required[id] - timing.arrival_ps[id];
  }
  return slack;
}

}  // namespace stt
