// Static timing analysis over the combinational fabric.
//
// Timing graph: primary inputs launch at t=0; flip-flop outputs launch at
// clk-to-Q; gates add a library delay plus a linear fan-out load term;
// endpoints are primary outputs and flip-flop D pins (the latter charged a
// setup margin). The critical delay is the minimum feasible clock period.
//
// This is the timing engine behind: Table I's "performance degradation"
// column (critical delay of hybrid vs original), the critical-path filter in
// the path-pool construction, and the feasibility check inside parametric-
// aware selection.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"

namespace stt {

struct TimingResult {
  std::vector<double> arrival_ps;  ///< per cell-output, indexed by CellId
  double critical_delay_ps = 0;    ///< worst endpoint arrival (min period)
  CellId worst_endpoint = kNullCell;
  /// The worst path, source to endpoint (cells whose output lies on it).
  std::vector<CellId> critical_path;
};

class Sta {
 public:
  explicit Sta(const TechLibrary& lib) : lib_(&lib) {}

  /// Propagation delay of one cell including its fan-out load term.
  double cell_delay_ps(const Netlist& nl, CellId id) const;

  TimingResult analyze(const Netlist& nl) const;

  /// Per-cell slack against a target clock period. Negative slack means the
  /// cell lies on a path that violates the period.
  std::vector<double> slacks(const Netlist& nl, const TimingResult& timing,
                             double period_ps) const;

 private:
  const TechLibrary* lib_;
};

}  // namespace stt
