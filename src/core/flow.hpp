// The security-driven hybrid STT-CMOS design flow (the paper's Fig. 2),
// packaged as one call: synthesized netlist in, hybrid netlist + key +
// sign-off metrics out.
#pragma once

#include "core/overhead.hpp"
#include "core/security.hpp"
#include "core/selection.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"

namespace stt {

struct FlowResult {
  Netlist hybrid;             ///< configured hybrid netlist
  SelectionResult selection;  ///< replaced cells + configuration key
  OverheadReport overhead;    ///< Table I metrics vs the original
  SecurityReport security;    ///< Eq. (1)-(3) estimates
};

struct FlowOptions {
  SelectionAlgorithm algorithm = SelectionAlgorithm::kParametric;
  SelectionOptions selection;
  SimilarityModel similarity = SimilarityModel::paper();
  double activity = 0.10;  ///< nominal switching activity for power sign-off
};

/// Run selection-and-replacement on a copy of `original` and evaluate the
/// resulting hybrid design. The original netlist is left untouched.
///
/// Thread safety: safe to call concurrently from many threads, including
/// with a shared `original` and a shared `lib` (audited for the campaign
/// engine in src/runtime/). The flow owns all mutable state — the working
/// netlist copy, the selector's Rng (seeded from opt.selection.seed), and
/// the STA/power scratch — and TechLibrary, SimilarityModel and Netlist
/// expose only genuinely const reads (no lazy caches, no mutable members,
/// no global state anywhere in the flow's call tree).
FlowResult run_secure_flow(const Netlist& original, const TechLibrary& lib,
                           const FlowOptions& opt = {});

}  // namespace stt
