// The security-driven hybrid STT-CMOS design flow (the paper's Fig. 2),
// packaged as one call: synthesized netlist in, hybrid netlist + key +
// sign-off metrics out.
#pragma once

#include "core/overhead.hpp"
#include "core/security.hpp"
#include "core/selection.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"

namespace stt {

struct FlowResult {
  Netlist hybrid;             ///< configured hybrid netlist
  SelectionResult selection;  ///< replaced cells + configuration key
  OverheadReport overhead;    ///< Table I metrics vs the original
  SecurityReport security;    ///< Eq. (1)-(3) estimates
};

struct FlowOptions {
  SelectionAlgorithm algorithm = SelectionAlgorithm::kParametric;
  SelectionOptions selection;
  SimilarityModel similarity = SimilarityModel::paper();
  double activity = 0.10;  ///< nominal switching activity for power sign-off
};

/// Run selection-and-replacement on a copy of `original` and evaluate the
/// resulting hybrid design. The original netlist is left untouched.
FlowResult run_secure_flow(const Netlist& original, const TechLibrary& lib,
                           const FlowOptions& opt = {});

}  // namespace stt
