#include "core/security.hpp"

#include <unordered_set>

#include "graph/analysis.hpp"

namespace stt {

SecurityReport security_report(const Netlist& hybrid,
                               const SimilarityModel& model) {
  SecurityReport report;
  report.circuit_depth = circuit_seq_depth(hybrid);

  std::vector<CellId> luts;
  for (CellId id = 0; id < hybrid.size(); ++id) {
    if (hybrid.cell(id).kind == CellKind::kLut) luts.push_back(id);
  }
  report.missing_gates = static_cast<int>(luts.size());
  if (luts.empty()) return report;

  // I: accessible inputs driving the missing gates — the controllable
  // bits (primary inputs and scan/flip-flop state) in the combinational
  // support of the LUT fan-ins. A brute-force attacker must exercise this
  // input space (2^I of Eq. 3) to distinguish candidate functions.
  std::unordered_set<CellId> accessible;
  {
    std::vector<bool> seen(hybrid.size(), false);
    std::vector<CellId> work;
    for (const CellId id : luts) {
      for (const CellId f : hybrid.cell(id).fanins) work.push_back(f);
    }
    while (!work.empty()) {
      const CellId u = work.back();
      work.pop_back();
      if (seen[u]) continue;
      seen[u] = true;
      const Cell& c = hybrid.cell(u);
      if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) {
        accessible.insert(u);
        continue;  // controllable boundary: stop here
      }
      for (const CellId f : c.fanins) work.push_back(f);
    }
  }
  report.accessible_inputs = static_cast<int>(accessible.size());

  const std::vector<int> depth_to_po = seq_depth_to_po(hybrid);

  BigNum sum;                            // Eq. 1 accumulator
  BigNum product = BigNum::from_double(1.0);  // Eq. 2 accumulator
  BigNum bf_candidates = BigNum::from_double(1.0);  // prod P_i for Eq. 3
  double alpha_total = 0;
  double cand_total = 0;
  for (const CellId id : luts) {
    const int k = hybrid.cell(id).fanin_count();
    const double alpha = model.alpha_for(k);
    const double cand = model.candidates_for(k);
    // Observation latency: flip-flop distance to a PO plus the cycle that
    // applies the pattern. Unobservable LUTs cost the full circuit depth.
    const int d = depth_to_po[id] == kUnreachable
                      ? report.circuit_depth
                      : depth_to_po[id] + 1;
    alpha_total += alpha;
    cand_total += cand;
    sum += BigNum::from_double(alpha * static_cast<double>(d));
    product *= BigNum::from_double(alpha * cand * static_cast<double>(d));
    bf_candidates *= BigNum::from_double(cand);
  }
  report.mean_alpha = alpha_total / static_cast<double>(luts.size());
  report.mean_candidates = cand_total / static_cast<double>(luts.size());
  report.n_indep = sum;
  report.n_dep = product;
  report.n_bf = BigNum::pow2(static_cast<double>(report.accessible_inputs)) *
                bf_candidates *
                BigNum::from_double(static_cast<double>(report.circuit_depth));
  return report;
}

BigNum required_clocks(const SecurityReport& report, SelectionAlgorithm alg) {
  switch (alg) {
    case SelectionAlgorithm::kIndependent: return report.n_indep;
    case SelectionAlgorithm::kDependent: return report.n_dep;
    case SelectionAlgorithm::kParametric: return report.n_bf;
  }
  return {};
}

BigNum attack_years(const BigNum& clocks, double patterns_per_second) {
  if (clocks.is_zero()) return {};
  constexpr double kSecondsPerYear = 365.25 * 24 * 3600;
  return BigNum::from_mantissa_exp(
      1.0, clocks.log10() - std::log10(patterns_per_second) -
               std::log10(kSecondsPerYear));
}

}  // namespace stt
