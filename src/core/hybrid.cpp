#include "core/hybrid.hpp"

#include <sstream>
#include <stdexcept>

#include "util/strings.hpp"

namespace stt {

LutKey extract_key(const Netlist& nl) {
  LutKey key;
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kLut) key[std::string(c.name)] = c.lut_mask;
  }
  return key;
}

void apply_key(Netlist& nl, const LutKey& key) {
  for (const auto& [name, mask] : key) {
    const CellId id = nl.find(name);
    if (id == kNullCell) {
      throw std::invalid_argument("apply_key: no cell named '" + name + "'");
    }
    Cell& c = nl.cell(id);
    if (c.kind != CellKind::kLut) {
      throw std::invalid_argument("apply_key: cell '" + name +
                                  "' is not a LUT");
    }
    c.lut_mask = mask & full_mask(c.fanin_count());
  }
}

Netlist foundry_view(const Netlist& nl) {
  Netlist view = nl;
  for (CellId id = 0; id < view.size(); ++id) {
    Cell& c = view.cell(id);
    if (c.kind == CellKind::kLut) c.lut_mask = 0;
  }
  return view;
}

std::size_t key_bits(const Netlist& nl) {
  std::size_t bits = 0;
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kLut) bits += num_rows(c.fanin_count());
  }
  return bits;
}

std::string key_to_string(const LutKey& key) {
  std::ostringstream os;
  for (const auto& [name, mask] : key) {
    os << name << ' '
       << strformat("0x%llx", static_cast<unsigned long long>(mask)) << '\n';
  }
  return os.str();
}

LutKey key_from_string(const std::string& text) {
  LutKey key;
  for (const auto& line : split(text, '\n')) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields.size() != 2) {
      throw std::invalid_argument("key_from_string: malformed line '" + line +
                                  "'");
    }
    key[fields[0]] =
        static_cast<std::uint64_t>(std::stoull(fields[1], nullptr, 16));
  }
  return key;
}

}  // namespace stt
