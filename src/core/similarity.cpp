#include "core/similarity.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <stdexcept>
#include <unordered_set>

namespace stt {

double SimilarityModel::alpha_for(int fanin) const {
  if (fanin < 1 || fanin > kMaxLutInputs) {
    throw std::invalid_argument("SimilarityModel: fan-in out of range");
  }
  return alpha[fanin];
}

double SimilarityModel::candidates_for(int fanin) const {
  if (fanin < 1 || fanin > kMaxLutInputs) {
    throw std::invalid_argument("SimilarityModel: fan-in out of range");
  }
  return candidates[fanin];
}

SimilarityModel SimilarityModel::paper() {
  SimilarityModel m;
  // alpha: Section IV-A.1 — 2.45 / 4.2 / 7.4 for 2/3/4-input gates. The
  // 1-input value covers BUF/NOT-sized LUTs (one pattern distinguishes the
  // two candidates; +1 base as in the paper's convention). 5/6-input values
  // extrapolate the paper's ~1.75x-per-input growth.
  m.alpha[1] = 2.0;
  m.alpha[2] = 2.45;
  m.alpha[3] = 4.2;
  m.alpha[4] = 7.4;
  m.alpha[5] = 13.0;
  m.alpha[6] = 22.8;
  // P: Section IV-A.2 gives P = 2.5 for 2-input missing gates; Section
  // IV-A.3 counts 6 meaningful 2-input gates and "more than 12" for 3-/4-
  // input LUTs. We take the stated 2.5 for fan-in 2 and the meaningful-gate
  // counts as the attacker's candidate space for wider LUTs.
  m.candidates[1] = 2.0;
  m.candidates[2] = 2.5;
  m.candidates[3] = 12.0;
  m.candidates[4] = 12.0;
  m.candidates[5] = 18.0;
  m.candidates[6] = 24.0;
  return m;
}

SimilarityModel SimilarityModel::computed() {
  SimilarityModel m;
  for (int k = 1; k <= kMaxLutInputs; ++k) {
    if (k == 1) {
      m.alpha[k] = 2.0;  // BUF vs NOT: disagree everywhere, 1 pattern + base
      m.candidates[k] = 2.0;
      continue;
    }
    const auto candidates = standard_candidate_masks(k);
    m.alpha[k] = 1.0 + average_similarity(candidates, k);
    m.candidates[k] = k <= 4
                          ? static_cast<double>(meaningful_function_count(k))
                          : static_cast<double>(candidates.size()) * 4.0;
  }
  return m;
}

int gate_similarity(std::uint64_t mask_a, std::uint64_t mask_b, int fanin) {
  const std::uint64_t agree = ~(mask_a ^ mask_b) & full_mask(fanin);
  return std::popcount(agree);
}

std::vector<std::uint64_t> standard_candidate_masks(int fanin) {
  return {
      gate_truth_mask(CellKind::kAnd, fanin),
      gate_truth_mask(CellKind::kNand, fanin),
      gate_truth_mask(CellKind::kOr, fanin),
      gate_truth_mask(CellKind::kNor, fanin),
      gate_truth_mask(CellKind::kXor, fanin),
      gate_truth_mask(CellKind::kXnor, fanin),
  };
}

double average_similarity(const std::vector<std::uint64_t>& masks, int fanin) {
  if (masks.size() < 2) return 0.0;
  long long sum = 0;
  long long pairs = 0;
  for (std::size_t i = 0; i < masks.size(); ++i) {
    for (std::size_t j = i + 1; j < masks.size(); ++j) {
      sum += gate_similarity(masks[i], masks[j], fanin);
      ++pairs;
    }
  }
  return static_cast<double>(sum) / static_cast<double>(pairs);
}

namespace {

// Does the function depend on input position `pos`?
bool depends_on(std::uint64_t mask, int fanin, int pos) {
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    if (row & (1u << pos)) continue;
    const bool lo = (mask >> row) & 1ull;
    const bool hi = (mask >> (row | (1u << pos))) & 1ull;
    if (lo != hi) return true;
  }
  return false;
}

// Canonical representative of a function under input permutations.
std::uint64_t canonical_under_permutation(std::uint64_t mask, int fanin) {
  std::array<int, kMaxLutInputs> perm{};
  for (int i = 0; i < fanin; ++i) perm[i] = i;
  std::uint64_t best = ~0ull;
  do {
    std::uint64_t permuted = 0;
    for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
      std::uint32_t new_row = 0;
      for (int i = 0; i < fanin; ++i) {
        if (row & (1u << i)) new_row |= (1u << perm[i]);
      }
      if ((mask >> row) & 1ull) permuted |= (1ull << new_row);
    }
    best = std::min(best, permuted);
  } while (std::next_permutation(perm.begin(), perm.begin() + fanin));
  return best;
}

}  // namespace

std::size_t meaningful_function_count(int fanin) {
  if (fanin < 1 || fanin > 4) {
    throw std::invalid_argument(
        "meaningful_function_count: enumeration supported for fan-in 1..4");
  }
  std::unordered_set<std::uint64_t> classes;
  const std::uint64_t limit_mask = full_mask(fanin);
  // Enumerate all functions of `fanin` variables (2^16 at most for k=4).
  const std::uint64_t n_functions = 1ull << num_rows(fanin);
  for (std::uint64_t mask = 0; mask < n_functions; ++mask) {
    if (mask == 0 || mask == limit_mask) continue;  // constants
    bool full_support = true;
    for (int pos = 0; pos < fanin && full_support; ++pos) {
      full_support = depends_on(mask, fanin, pos);
    }
    if (!full_support) continue;
    classes.insert(canonical_under_permutation(mask, fanin));
  }
  return classes.size();
}

}  // namespace stt
