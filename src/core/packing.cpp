#include "core/packing.hpp"

#include "obs/obs.hpp"
#include "timing/sta.hpp"

#include <algorithm>
#include <functional>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

namespace stt {

namespace {

// Truth mask of any combinational cell with a function (gate or LUT).
std::uint64_t cell_mask(const Cell& c) {
  if (c.kind == CellKind::kLut) return c.lut_mask;
  return gate_truth_mask(c.kind, c.fanin_count());
}

bool absorbable(const Netlist& nl, CellId g) {
  const Cell& c = nl.cell(g);
  if (!is_replaceable_gate(c.kind) && c.kind != CellKind::kLut) return false;
  if (c.is_output) return false;
  return c.fanouts.size() == 1 ||
         (std::adjacent_find(c.fanouts.begin(), c.fanouts.end(),
                             std::not_equal_to<>()) == c.fanouts.end() &&
          !c.fanouts.empty());
  // (all fanout entries equal = the same reader on several pins)
}

// Combinational fan-out cone of `root` (exclusive of flip-flop frontiers):
// cells reachable through fan-out edges without crossing into a DFF.
std::vector<bool> comb_fanout_cone(const Netlist& nl, CellId root) {
  std::vector<bool> in_cone(nl.size(), false);
  std::vector<CellId> work{root};
  in_cone[root] = true;
  while (!work.empty()) {
    const CellId u = work.back();
    work.pop_back();
    for (const CellId v : nl.cell(u).fanouts) {
      if (nl.cell(v).kind == CellKind::kDff) continue;
      if (!in_cone[v]) {
        in_cone[v] = true;
        work.push_back(v);
      }
    }
  }
  return in_cone;
}

// Try to absorb one driver of LUT `lut`; returns true on success. `accept`
// is consulted after the tentative rewrite (timing guard); on rejection the
// rewrite is reverted.
bool absorb_one(Netlist& nl, CellId lut, int max_inputs, Rng& rng,
                const std::function<bool()>& accept) {
  Cell& l = nl.cell(lut);
  std::vector<int> slots(l.fanins.size());
  for (std::size_t i = 0; i < slots.size(); ++i) slots[i] = static_cast<int>(i);
  rng.shuffle(slots);

  for (const int slot : slots) {
    const CellId g = l.fanins[slot];
    if (g == lut || !absorbable(nl, g)) continue;
    const Cell& gc = nl.cell(g);

    // New fan-in list: L's fanins with every g occurrence dropped, then
    // g's fanins not already present.
    std::vector<CellId> fanins;
    for (const CellId f : l.fanins) {
      if (f != g && std::find(fanins.begin(), fanins.end(), f) == fanins.end()) {
        fanins.push_back(f);
      }
    }
    std::vector<int> outer_pos(l.fanins.size(), -1);  // L slot -> new index
    for (std::size_t i = 0; i < l.fanins.size(); ++i) {
      if (l.fanins[i] == g) continue;
      outer_pos[i] = static_cast<int>(
          std::find(fanins.begin(), fanins.end(), l.fanins[i]) -
          fanins.begin());
    }
    std::vector<int> inner_pos(gc.fanins.size(), -1);  // g slot -> new index
    for (std::size_t i = 0; i < gc.fanins.size(); ++i) {
      auto it = std::find(fanins.begin(), fanins.end(), gc.fanins[i]);
      if (it == fanins.end()) {
        fanins.push_back(gc.fanins[i]);
        it = fanins.end() - 1;
      }
      inner_pos[i] = static_cast<int>(it - fanins.begin());
    }
    if (static_cast<int>(fanins.size()) > max_inputs) continue;

    // Composed truth table over the merged fan-in list.
    const std::uint64_t g_mask = cell_mask(gc);
    const std::uint64_t l_mask = l.lut_mask;
    std::uint64_t mask = 0;
    const int k = static_cast<int>(fanins.size());
    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      std::uint32_t g_row = 0;
      for (std::size_t i = 0; i < gc.fanins.size(); ++i) {
        if (row & (1u << inner_pos[i])) g_row |= (1u << i);
      }
      const bool g_out = (g_mask >> g_row) & 1ull;
      std::uint32_t l_row = 0;
      for (std::size_t i = 0; i < l.fanins.size(); ++i) {
        const bool v = (l.fanins[i] == g)
                           ? g_out
                           : ((row & (1u << outer_pos[i])) != 0);
        if (v) l_row |= (1u << i);
      }
      if ((l_mask >> l_row) & 1ull) mask |= (1ull << row);
    }

    const std::vector<CellId> old_fanins(l.fanins.begin(), l.fanins.end());
    const std::uint64_t old_mask = l.lut_mask;
    nl.connect(lut, std::move(fanins));
    nl.cell(lut).lut_mask = mask;
    if (accept && !accept()) {
      nl.connect(lut, old_fanins);
      nl.cell(lut).lut_mask = old_mask;
      continue;
    }
    return true;
  }
  return false;
}

}  // namespace

std::uint64_t compose_masks(std::uint64_t outer_mask, int outer_fanin,
                            int slot, std::uint64_t inner_mask,
                            int inner_fanin) {
  if (slot < 0 || slot >= outer_fanin) {
    throw std::invalid_argument("compose_masks: bad slot");
  }
  const int k = outer_fanin - 1 + inner_fanin;
  if (k > kMaxLutInputs) {
    throw std::invalid_argument("compose_masks: result too wide");
  }
  std::uint64_t mask = 0;
  for (std::uint32_t row = 0; row < num_rows(k); ++row) {
    // Bits [0, outer_fanin-1) are the outer inputs minus `slot` (original
    // relative order); bits from outer_fanin-1 are the inner inputs.
    const std::uint32_t inner_row = row >> (outer_fanin - 1);
    const bool inner_out = (inner_mask >> inner_row) & 1ull;
    std::uint32_t outer_row = 0;
    int cursor = 0;
    for (int i = 0; i < outer_fanin; ++i) {
      bool v;
      if (i == slot) {
        v = inner_out;
      } else {
        v = (row >> cursor) & 1u;
        ++cursor;
      }
      if (v) outer_row |= (1u << i);
    }
    if ((outer_mask >> outer_row) & 1ull) mask |= (1ull << row);
  }
  return mask;
}

PackingResult pack_complex_functions(Netlist& nl, const PackingOptions& opt) {
  STTLOCK_SPAN("flow-stage", "packing");
  PackingResult result;
  Rng rng(opt.seed ^ 0x9ac4c09b1e5full);
  std::vector<CellId> luts;
  for (const CellId id : nl.topo_order()) {
    if (nl.cell(id).kind == CellKind::kLut) luts.push_back(id);
  }

  std::function<bool()> accept;
  if (opt.lib) {
    accept = [&nl, &opt] {
      const Sta sta(*opt.lib);
      return sta.analyze(nl).critical_delay_ps <= opt.max_delay_ps + 1e-9;
    };
  }

  for (int round = 0; round < opt.absorb_rounds; ++round) {
    for (const CellId lut : luts) {
      if (absorb_one(nl, lut, opt.max_inputs, rng, accept)) {
        ++result.absorbed_gates;
      }
    }
  }

  for (const CellId lut : luts) {
    for (int d = 0; d < opt.dummies_per_lut; ++d) {
      Cell& l = nl.cell(lut);
      const int k = l.fanin_count();
      if (k >= opt.max_inputs) break;
      const auto in_cone = comb_fanout_cone(nl, lut);
      CellId dummy = kNullCell;
      for (int attempt = 0; attempt < 64; ++attempt) {
        const auto candidate =
            static_cast<CellId>(rng.below(nl.size()));
        const Cell& cc = nl.cell(candidate);
        if (in_cone[candidate]) continue;
        if (candidate == lut) continue;
        if (std::find(l.fanins.begin(), l.fanins.end(), candidate) !=
            l.fanins.end()) {
          continue;
        }
        if (cc.kind == CellKind::kConst0 || cc.kind == CellKind::kConst1) {
          continue;  // a constant dummy would be obvious
        }
        dummy = candidate;
        break;
      }
      if (dummy == kNullCell) break;
      // Widen: the new (MSB) input is ignored by the function.
      const std::uint64_t base = l.lut_mask & full_mask(k);
      const std::vector<CellId> old_fanins(l.fanins.begin(), l.fanins.end());
      std::vector<CellId> fanins = old_fanins;
      fanins.push_back(dummy);
      nl.connect(lut, fanins);
      nl.cell(lut).lut_mask = base | (base << num_rows(k));
      if (accept && !accept()) {
        nl.connect(lut, old_fanins);
        nl.cell(lut).lut_mask = base;
        break;  // no slack for wider LUTs here
      }
      ++result.dummies_added;
    }
  }
  return result;
}


}  // namespace stt
