#include "core/flow.hpp"

#include "obs/obs.hpp"

namespace stt {

FlowResult run_secure_flow(const Netlist& original, const TechLibrary& lib,
                           const FlowOptions& opt) {
  STTLOCK_SPAN("flow-stage", "secure_flow");
  static obs::Counter& runs = obs::Metrics::global().counter("flow.runs");
  static obs::Histogram& luts =
      obs::Metrics::global().histogram("flow.selected_luts");
  runs.add(1);
  FlowResult result{.hybrid = original,
                    .selection = {},
                    .overhead = {},
                    .security = {}};
  GateSelector selector(lib);
  {
    STTLOCK_SPAN("flow-stage", "selection");
    result.selection =
        selector.run(result.hybrid, opt.algorithm, opt.selection);
  }
  luts.record(result.selection.replaced.size());
  {
    STTLOCK_SPAN("flow-stage", "overhead");
    result.overhead =
        compare_overhead(original, result.hybrid, lib, opt.activity);
  }
  {
    STTLOCK_SPAN("flow-stage", "security");
    result.security = security_report(result.hybrid, opt.similarity);
  }
  return result;
}

}  // namespace stt
