#include "core/flow.hpp"

namespace stt {

FlowResult run_secure_flow(const Netlist& original, const TechLibrary& lib,
                           const FlowOptions& opt) {
  FlowResult result{.hybrid = original,
                    .selection = {},
                    .overhead = {},
                    .security = {}};
  GateSelector selector(lib);
  result.selection = selector.run(result.hybrid, opt.algorithm, opt.selection);
  result.overhead =
      compare_overhead(original, result.hybrid, lib, opt.activity);
  result.security = security_report(result.hybrid, opt.similarity);
  return result;
}

}  // namespace stt
