// Configuration-bitstream container: the programming image the design house
// ships to the trusted configuration facility (the paper's Fig. 2 hand-off
// after fabrication).
//
// A `LutKey` is the logical secret; the bitstream is its transport format:
//
//   magic "STTB" | version | netlist name | netlist fingerprint |
//   record count | records (name, fan-in, mask) ... | CRC-32
//
// The fingerprint ties an image to the exact hybrid netlist structure so a
// key cannot be programmed into the wrong (or tampered) die image, and the
// CRC catches corruption in transport. Encoding is a printable hex format
// (programming equipment consumes text fine and it diffs cleanly).
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>

#include "core/hybrid.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct BitstreamError : std::runtime_error {
  explicit BitstreamError(const std::string& msg)
      : std::runtime_error("bitstream: " + msg) {}
};

/// CRC-32 (IEEE 802.3, reflected) over a byte string.
std::uint32_t crc32(std::string_view bytes);

/// Structural fingerprint of a netlist: stable across runs, sensitive to
/// any change in cells, connectivity, interface order, or LUT *placement*
/// (not LUT contents — the foundry view and the configured view of the
/// same design fingerprint identically, by design).
std::uint64_t netlist_fingerprint(const Netlist& nl);

/// Serialize the key of `hybrid` into a programming image.
std::string write_bitstream(const Netlist& hybrid);

/// Parse and verify an image (magic, version, CRC), returning the key.
/// `expected_fingerprint` of 0 skips the structure check.
LutKey read_bitstream(const std::string& image,
                      std::uint64_t expected_fingerprint = 0);

/// Program a fabricated netlist from an image, verifying the CRC and the
/// structural fingerprint, then applying the key.
void program_from_bitstream(Netlist& fabricated, const std::string& image);

}  // namespace stt
