// Complex-function packing and search-space widening (Section IV-A.3).
//
// The paper's countermeasures against machine-learning attacks:
//
//   "a 4-input STT-based LUT and a 3-input STT-based LUT can be also used
//    to implement 3-/2-input gates ... with connecting unused inputs of
//    STT-based LUTs to some signals in the circuit to expand search space"
//   "Furthermore, we can realize complex functions, such as (A.(B^C))+D,
//    using a STT-based LUT instead of implementing only one simple gate."
//
// Two transformations, applied to an already-selected hybrid netlist:
//
//  * absorb(): merge a LUT with a single-fanout CMOS fan-in gate into one
//    wider LUT computing the composed function — the absorbed gate
//    disappears from the die, and the LUT's candidate space jumps from the
//    ~6 "meaningful gates" to the full function space of its new fan-in.
//  * add_dummy_inputs(): grow a LUT's fan-in with signals the function
//    ignores. The attacker cannot know which inputs are real; each dummy
//    doubles the apparent truth-table (and squares nothing — the function
//    space an attacker must consider grows by the "depends on all inputs"
//    count at the wider fan-in).
//
// Both preserve functionality exactly; `strip_dead_logic` afterwards
// removes gates orphaned by absorption.
#pragma once

#include <cstdint>

#include "netlist/cleanup.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"
#include "util/rng.hpp"

namespace stt {

struct PackingOptions {
  std::uint64_t seed = 1;
  /// Upper bound on LUT fan-in after absorption / dummy insertion.
  int max_inputs = kMaxLutInputs;
  /// Absorption rounds: each round scans all LUTs once (a LUT can absorb
  /// one driver per round, so deeper cones need several rounds).
  int absorb_rounds = 2;
  /// Dummy inputs to try to add per LUT (capacity permitting).
  int dummies_per_lut = 1;
  /// Timing guard: when `lib` is set, a transformation is kept only if the
  /// critical delay stays within `max_delay_ps` (wider LUTs are slower, so
  /// unguarded packing can undo the parametric selection's timing care).
  const TechLibrary* lib = nullptr;
  double max_delay_ps = 0;
};

struct PackingResult {
  int absorbed_gates = 0;  ///< CMOS gates folded into LUT functions
  int dummies_added = 0;   ///< ignored inputs connected
};

/// Apply absorption then dummy-input widening to every LUT cell of `nl`,
/// in place. Deterministic for a fixed seed.
PackingResult pack_complex_functions(Netlist& nl,
                                     const PackingOptions& opt = {});

/// The composed truth mask of lut(mask_outer) when input `slot` is driven
/// by a gate with `inner_mask` over `inner_fanin` fresh inputs appended
/// after the outer LUT's remaining inputs. Exposed for tests.
std::uint64_t compose_masks(std::uint64_t outer_mask, int outer_fanin,
                            int slot, std::uint64_t inner_mask,
                            int inner_fanin);

}  // namespace stt
