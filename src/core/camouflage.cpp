#include "core/camouflage.hpp"

#include <algorithm>

namespace stt {

std::vector<std::uint64_t> camouflage_candidate_masks() {
  return {
      gate_truth_mask(CellKind::kNand, 2),
      gate_truth_mask(CellKind::kNor, 2),
      gate_truth_mask(CellKind::kXnor, 2),
  };
}

CamouflageResult apply_camouflage(Netlist& nl, const CamouflageOptions& opt) {
  CamouflageResult result;
  Rng rng(opt.seed ^ 0xca3000f1a6e5ull);

  const auto candidates = camouflage_candidate_masks();
  std::vector<CellId> eligible;
  for (const CellId id : nl.logic_cells()) {
    const Cell& c = nl.cell(id);
    if (c.fanin_count() != 2 || !is_replaceable_gate(c.kind)) continue;
    const std::uint64_t mask = gate_truth_mask(c.kind, 2);
    if (std::find(candidates.begin(), candidates.end(), mask) !=
        candidates.end()) {
      eligible.push_back(id);
    }
  }
  rng.shuffle(eligible);
  for (const CellId id : eligible) {
    if (static_cast<int>(result.camouflaged.size()) >= opt.count) break;
    nl.replace_with_lut(id);  // mask = the original function (the secret)
    result.camouflaged.push_back(id);
    result.key[std::string(nl.cell(id).name)] = nl.cell(id).lut_mask;
  }
  return result;
}

BigNum camouflage_search_space(std::size_t camouflaged_gates) {
  return BigNum::pow(3.0, static_cast<double>(camouflaged_gates));
}

SimilarityModel camouflage_similarity_model() {
  SimilarityModel m = SimilarityModel::paper();
  // Candidate space per camouflaged cell: the 3 camouflage functions.
  // Average distinguishing-pattern count over {NAND, NOR, XNOR}: pairwise
  // similarities are NAND/NOR=2, NAND/XNOR=1, NOR/XNOR=3 -> mean 2, so
  // alpha = 3 under the paper's 1 + mean-similarity convention.
  const auto masks = camouflage_candidate_masks();
  m.alpha[2] = 1.0 + average_similarity(masks, 2);
  m.candidates[2] = static_cast<double>(masks.size());
  return m;
}

}  // namespace stt
