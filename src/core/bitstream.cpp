#include "core/bitstream.hpp"

#include <algorithm>
#include <array>
#include <sstream>

#include "util/strings.hpp"

namespace stt {

namespace {

constexpr std::string_view kMagic = "STTB";
constexpr int kVersion = 1;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(std::string_view bytes) {
  static const auto kTable = make_crc_table();
  std::uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : bytes) {
    crc = kTable[(crc ^ static_cast<unsigned char>(ch)) & 0xFFu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

std::uint64_t netlist_fingerprint(const Netlist& nl) {
  // FNV-1a over a canonical structural rendering: interface orders (which
  // are semantic for the scan view) followed by all cells sorted by net
  // name, so the fingerprint is invariant to cell-creation order and to
  // the netlist's display name (both change across file round trips).
  // LUT masks are *excluded* so the foundry view matches the configured
  // view.
  std::uint64_t h = 0xcbf29ce484222325ull;
  auto mix = [&h](std::string_view s) {
    for (const char c : s) {
      h ^= static_cast<unsigned char>(c);
      h *= 0x100000001b3ull;
    }
    h ^= 0x1f;
    h *= 0x100000001b3ull;
  };
  for (const CellId id : nl.inputs()) mix(nl.cell(id).name);
  for (const CellId id : nl.outputs()) mix(nl.cell(id).name);
  for (const CellId id : nl.dffs()) mix(nl.cell(id).name);
  std::vector<CellId> order(nl.size());
  for (CellId id = 0; id < nl.size(); ++id) order[id] = id;
  std::sort(order.begin(), order.end(), [&nl](CellId a, CellId b) {
    return nl.cell(a).name < nl.cell(b).name;
  });
  for (const CellId id : order) {
    const Cell& c = nl.cell(id);
    mix(c.name);
    mix(kind_name(c.kind));
    for (const CellId f : c.fanins) mix(nl.cell(f).name);
  }
  return h;
}

std::string write_bitstream(const Netlist& hybrid) {
  const LutKey key = extract_key(hybrid);
  std::ostringstream body;
  body << kMagic << " v" << kVersion << '\n';
  body << "design " << hybrid.name() << '\n';
  body << strformat("fingerprint %016llx\n",
                    static_cast<unsigned long long>(
                        netlist_fingerprint(hybrid)));
  body << "records " << key.size() << '\n';
  for (const auto& [name, mask] : key) {
    const CellId id = hybrid.find(name);
    body << "lut " << name << ' ' << hybrid.cell(id).fanin_count() << ' '
         << strformat("%llx", static_cast<unsigned long long>(mask)) << '\n';
  }
  std::string text = body.str();
  text += strformat("crc %08x\n", crc32(text));
  return text;
}

LutKey read_bitstream(const std::string& image,
                      std::uint64_t expected_fingerprint) {
  // Split off the trailing CRC line first.
  const auto crc_pos = image.rfind("crc ");
  if (crc_pos == std::string::npos) throw BitstreamError("missing CRC line");
  const std::string body = image.substr(0, crc_pos);
  const auto crc_fields = split_ws(image.substr(crc_pos));
  if (crc_fields.size() != 2) throw BitstreamError("malformed CRC line");
  const auto stored = static_cast<std::uint32_t>(
      std::stoul(crc_fields[1], nullptr, 16));
  if (stored != crc32(body)) throw BitstreamError("CRC mismatch");

  LutKey key;
  std::uint64_t fingerprint = 0;
  std::size_t expected_records = 0;
  bool header_seen = false;
  for (const auto& line : split(body, '\n')) {
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    if (fields[0] == std::string(kMagic)) {
      if (fields.size() != 2 || fields[1] != "v" + std::to_string(kVersion)) {
        throw BitstreamError("unsupported version");
      }
      header_seen = true;
    } else if (fields[0] == "design") {
      // informational
    } else if (fields[0] == "fingerprint") {
      if (fields.size() != 2) throw BitstreamError("malformed fingerprint");
      fingerprint = std::stoull(fields[1], nullptr, 16);
    } else if (fields[0] == "records") {
      if (fields.size() != 2) throw BitstreamError("malformed record count");
      expected_records = std::stoull(fields[1]);
    } else if (fields[0] == "lut") {
      if (fields.size() != 4) throw BitstreamError("malformed LUT record");
      const int fanin = std::stoi(fields[2]);
      if (fanin < 1 || fanin > kMaxLutInputs) {
        throw BitstreamError("LUT record fan-in out of range");
      }
      key[fields[1]] =
          std::stoull(fields[3], nullptr, 16) & full_mask(fanin);
    } else {
      throw BitstreamError("unknown line '" + line + "'");
    }
  }
  if (!header_seen) throw BitstreamError("missing magic header");
  if (key.size() != expected_records) {
    throw BitstreamError("record count mismatch");
  }
  if (expected_fingerprint != 0 && fingerprint != expected_fingerprint) {
    throw BitstreamError("netlist fingerprint mismatch: image is for a "
                         "different design");
  }
  return key;
}

void program_from_bitstream(Netlist& fabricated, const std::string& image) {
  const LutKey key =
      read_bitstream(image, netlist_fingerprint(fabricated));
  apply_key(fabricated, key);
}

}  // namespace stt
