#include "core/overhead.hpp"

#include "power/power.hpp"
#include "timing/sta.hpp"

namespace stt {

namespace {

double pct(double base, double now) {
  if (base <= 0) return 0;
  return (now - base) / base * 100.0;
}

}  // namespace

double OverheadReport::perf_degradation_pct() const {
  return pct(original_delay_ps, hybrid_delay_ps);
}
double OverheadReport::power_overhead_pct() const {
  return pct(original_power_uw, hybrid_power_uw);
}
double OverheadReport::area_overhead_pct() const {
  return pct(original_area_um2, hybrid_area_um2);
}

OverheadReport compare_overhead(const Netlist& original, const Netlist& hybrid,
                                const TechLibrary& lib, double activity) {
  OverheadReport report;
  Sta sta(lib);
  report.original_delay_ps = sta.analyze(original).critical_delay_ps;
  report.hybrid_delay_ps = sta.analyze(hybrid).critical_delay_ps;

  // Both designs run at the original clock; the hybrid's longest path may
  // exceed it (that is exactly the "performance degradation" column).
  const double freq_ghz =
      report.original_delay_ps > 0 ? 1000.0 / report.original_delay_ps : 1.0;
  report.original_power_uw =
      estimate_power_uniform(original, lib, activity, freq_ghz).total_uw();
  report.hybrid_power_uw =
      estimate_power_uniform(hybrid, lib, activity, freq_ghz).total_uw();

  report.original_area_um2 = total_area_um2(original, lib);
  report.hybrid_area_um2 = total_area_um2(hybrid, lib);
  report.num_stt_luts = static_cast<int>(hybrid.stats().luts);
  return report;
}

}  // namespace stt
