// Hybrid-netlist key management.
//
// After selection-and-replacement, a netlist contains reconfigurable LUT
// cells. The truth-table masks of those LUTs are the *configuration
// bitstream* — the secret the design house withholds from the untrusted
// foundry and programs into the non-volatile STT cells after fabrication.
//
// This header provides the three views of the paper's threat model:
//  * configured netlist (design house / deployed chip): LUT masks present;
//  * foundry view: same structure, masks stripped;
//  * the key itself: an ordered (cell name -> mask) map that can be
//    serialized, applied, and compared.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "netlist/netlist.hpp"

namespace stt {

/// Configuration bitstream: net name of each LUT -> truth mask. Ordered so
/// that serialization is deterministic.
using LutKey = std::map<std::string, std::uint64_t>;

/// Collect the configuration of every LUT cell in the netlist.
LutKey extract_key(const Netlist& nl);

/// Program a key into matching LUT cells. Throws if a key entry names a
/// missing cell or a non-LUT; LUTs absent from the key are left untouched.
void apply_key(Netlist& nl, const LutKey& key);

/// Copy of the netlist with every LUT mask zeroed — what the foundry sees.
Netlist foundry_view(const Netlist& nl);

/// Total key length in bits (sum of 2^fanin over LUTs) — the raw search
/// space exponent for a brute-force attacker without candidate pruning.
std::size_t key_bits(const Netlist& nl);

/// Serialize as "name hexmask" lines / parse it back.
std::string key_to_string(const LutKey& key);
LutKey key_from_string(const std::string& text);

}  // namespace stt
