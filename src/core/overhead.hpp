// Parametric overhead comparison (Table I's metrics).
//
// Performance: critical delay of the hybrid vs the original netlist.
// Power: total (dynamic + leakage) at the original clock and a nominal
// uniform activity (the paper reports power at fixed conditions).
// Area: cell footprint sum.
#pragma once

#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"

namespace stt {

struct OverheadReport {
  double original_delay_ps = 0;
  double hybrid_delay_ps = 0;
  double original_power_uw = 0;
  double hybrid_power_uw = 0;
  double original_area_um2 = 0;
  double hybrid_area_um2 = 0;
  int num_stt_luts = 0;

  double perf_degradation_pct() const;
  double power_overhead_pct() const;
  double area_overhead_pct() const;
};

/// `activity` is the nominal per-cell output switching activity used for
/// both designs (Fig. 1 characterizes alpha = 10%, the flow's default).
OverheadReport compare_overhead(const Netlist& original, const Netlist& hybrid,
                                const TechLibrary& lib, double activity = 0.10);

}  // namespace stt
