// Camouflaged-gate baseline (Rajendran et al., CCS'13 — the paper's
// Section IV-A.3 comparison point).
//
//   "Contrary to similar works such as camouflaging [12], the possible
//    candidates per STT-based LUT is not limited to a small number of
//    gates."
//
// A camouflaged cell looks identical under delayering for a small fixed
// set of functions — classically {NAND, NOR, XNOR}. We model camouflaging
// in the same machinery as the hybrid flow: selected 2-input gates become
// LUT cells (their mask is the secret) but the *declared candidate space*
// is the camouflage set, which is what attacks and estimators consume.
// This gives an apples-to-apples comparison of candidate-space size: the
// per-gate factor is 3 for camouflaging vs 6+ ("meaningful gates") or
// 2^2^k (packed complex functions) for STT LUTs.
#pragma once

#include <cstdint>
#include <vector>

#include "core/hybrid.hpp"
#include "core/similarity.hpp"
#include "netlist/netlist.hpp"
#include "util/bignum.hpp"
#include "util/rng.hpp"

namespace stt {

/// The classic camouflage candidate set at fan-in 2: NAND, NOR, XNOR.
std::vector<std::uint64_t> camouflage_candidate_masks();

struct CamouflageOptions {
  std::uint64_t seed = 1;
  int count = 5;  ///< gates to camouflage (comparable to indep_count)
};

struct CamouflageResult {
  std::vector<CellId> camouflaged;
  LutKey key;
};

/// Replace `count` randomly chosen 2-input gates whose function lies in the
/// camouflage set (gates outside the set cannot be camouflaged — a real
/// layout constraint). Functionality is preserved.
CamouflageResult apply_camouflage(Netlist& nl, const CamouflageOptions& opt);

/// Brute-force search space of a camouflaged netlist: 3^M.
BigNum camouflage_search_space(std::size_t camouflaged_gates);

/// A similarity model whose candidate counts reflect the camouflage set
/// (P = 3 at fan-in 2), for plugging into the Eq. (1)-(3) estimators.
SimilarityModel camouflage_similarity_model();

}  // namespace stt
