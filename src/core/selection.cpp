#include "core/selection.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

#include "timing/sta.hpp"
#include "util/timer.hpp"

namespace stt {

std::string algorithm_name(SelectionAlgorithm alg) {
  switch (alg) {
    case SelectionAlgorithm::kIndependent: return "independent";
    case SelectionAlgorithm::kDependent: return "dependent";
    case SelectionAlgorithm::kParametric: return "parametric";
  }
  return "?";
}

namespace {

bool lut_replaceable(const Netlist& nl, CellId id) {
  const Cell& c = nl.cell(id);
  return is_replaceable_gate(c.kind) && c.fanin_count() <= kMaxLutInputs;
}

// Tracks replacements so a timing-violating draw can be reverted.
class ReplacementJournal {
 public:
  explicit ReplacementJournal(Netlist& nl) : nl_(&nl) {}

  bool replace(CellId id) {
    if (!lut_replaceable(*nl_, id)) return false;
    entries_.push_back({id, nl_->cell(id).kind});
    nl_->replace_with_lut(id);
    return true;
  }

  void undo_last() {
    const Entry e = entries_.back();
    entries_.pop_back();
    Cell& c = nl_->cell(e.id);
    c.kind = e.original;
    c.lut_mask = 0;
  }

  void undo_all() {
    while (!entries_.empty()) undo_last();
  }

  void commit_into(SelectionResult& result) {
    for (const auto& e : entries_) {
      result.replaced.push_back(e.id);
      result.key[std::string(nl_->cell(e.id).name)] = nl_->cell(e.id).lut_mask;
    }
    entries_.clear();
  }

  std::size_t size() const { return entries_.size(); }
  CellId id_at(std::size_t i) const { return entries_[i].id; }

 private:
  struct Entry {
    CellId id;
    CellKind original;
  };
  Netlist* nl_;
  std::vector<Entry> entries_;
};

}  // namespace

SelectionResult GateSelector::run(Netlist& nl, SelectionAlgorithm alg,
                                  const SelectionOptions& opt) const {
  if (nl.stats().luts != 0) {
    throw std::invalid_argument("GateSelector: netlist already hybrid");
  }
  Rng rng(opt.seed ^ (static_cast<std::uint64_t>(alg) << 56));
  const Timer timer;

  // Critical-path filter: the pool must not contain the timing-critical
  // path, so replacements start from slack-rich regions.
  Sta sta(*lib_);
  const TimingResult timing0 = sta.analyze(nl);
  std::unordered_set<CellId> critical(timing0.critical_path.begin(),
                                      timing0.critical_path.end());
  const auto exclude = [&critical](const IoPath& path) {
    for (const CellId id : path.cells) {
      if (critical.count(id)) return true;
    }
    return false;
  };
  const std::vector<IoPath> pool = build_path_pool(nl, rng, opt.pool, exclude);

  SelectionResult result;
  switch (alg) {
    case SelectionAlgorithm::kIndependent:
      result = run_independent(nl, opt, rng, pool);
      break;
    case SelectionAlgorithm::kDependent:
      result = run_dependent(nl, opt, rng, pool);
      break;
    case SelectionAlgorithm::kParametric:
      result = run_parametric(nl, opt, rng, pool);
      break;
  }
  result.algorithm = alg;
  result.paths_considered = static_cast<int>(pool.size());
  result.selection_seconds = timer.seconds();
  return result;
}

SelectionResult GateSelector::run_independent(
    Netlist& nl, const SelectionOptions& opt, Rng& rng,
    const std::vector<IoPath>& pool) const {
  SelectionResult result;
  // Candidate set: replaceable gates on the pooled paths; if the pool is
  // degenerate (tiny or combinational circuits), fall back to all gates.
  std::unordered_set<CellId> seen;
  std::vector<CellId> candidates;
  for (const IoPath& path : pool) {
    for (const CellId id : path.cells) {
      if (lut_replaceable(nl, id) && seen.insert(id).second) {
        candidates.push_back(id);
      }
    }
  }
  if (static_cast<int>(candidates.size()) < opt.indep_count) {
    for (const CellId id : nl.logic_cells()) {
      if (lut_replaceable(nl, id) && seen.insert(id).second) {
        candidates.push_back(id);
      }
    }
  }
  rng.shuffle(candidates);
  ReplacementJournal journal(nl);
  for (const CellId id : candidates) {
    if (static_cast<int>(journal.size()) >= opt.indep_count) break;
    journal.replace(id);
  }
  journal.commit_into(result);
  return result;
}

SelectionResult GateSelector::run_dependent(
    Netlist& nl, const SelectionOptions& opt, Rng& rng,
    const std::vector<IoPath>& pool) const {
  SelectionResult result;
  if (pool.empty()) return result;

  // Algorithm 1: iterate over selected longest I/O paths and replace every
  // gate on their composing timing paths. Paths are drawn from the deepest
  // quartile so the chain of dependent LUTs is as long as possible.
  const std::size_t top =
      std::max<std::size_t>(1, (pool.size() + 3) / 4);
  std::vector<std::size_t> indices(top);
  for (std::size_t i = 0; i < top; ++i) indices[i] = i;
  rng.shuffle(indices);

  ReplacementJournal journal(nl);
  const int n_paths = std::min<int>(opt.dep_num_paths,
                                    static_cast<int>(indices.size()));
  for (int p = 0; p < n_paths; ++p) {
    const IoPath& path = pool[indices[p]];
    for (const auto& segment : path.segments(nl)) {
      for (const CellId id : segment) {
        if (nl.cell(id).kind != CellKind::kLut) journal.replace(id);
      }
    }
  }
  journal.commit_into(result);
  return result;
}

SelectionResult GateSelector::run_parametric(
    Netlist& nl, const SelectionOptions& opt, Rng& rng,
    const std::vector<IoPath>& pool) const {
  SelectionResult result;
  if (pool.empty()) return result;

  Sta sta(*lib_);
  const double t0 = sta.analyze(nl).critical_delay_ps;
  const double budget_ps = t0 * (1.0 + opt.timing_margin);
  const auto meets_timing = [&] {
    return sta.analyze(nl).critical_delay_ps <= budget_ps + 1e-9;
  };

  // The selection unit is the *timing path* (a PI/FF -> FF/PO combinational
  // segment): gather the segments of the pooled I/O paths and randomly pick
  // the predetermined number of them.
  std::vector<std::vector<CellId>> segments;
  for (const IoPath& path : pool) {
    for (auto& segment : path.segments(nl)) {
      if (!segment.empty()) segments.push_back(std::move(segment));
    }
  }
  rng.shuffle(segments);
  int want_paths = opt.para_num_paths;
  if (want_paths <= 0) {
    const auto gates = static_cast<long long>(nl.stats().gates);
    want_paths = static_cast<int>(std::clamp(gates / 400ll, 2ll, 16ll));
  }
  const int n_paths =
      std::min<int>(want_paths, static_cast<int>(segments.size()));

  ReplacementJournal journal(nl);
  std::unordered_set<CellId> on_targeted_path;
  std::vector<CellId> usl;

  for (int p = 0; p < n_paths; ++p) {
    const std::vector<CellId>& segment = segments[p];
    for (const CellId id : segment) on_targeted_path.insert(id);

    // Candidates on this timing path: replaceable, >= para_min_fanin inputs.
    std::vector<CellId> candidates;
    for (const CellId id : segment) {
      if (nl.cell(id).kind != CellKind::kLut && lut_replaceable(nl, id) &&
          nl.cell(id).fanin_count() >= opt.para_min_fanin) {
        candidates.push_back(id);
      }
    }
    if (candidates.empty()) continue;

    // L1: random subset, re-drawn (with a shrinking fraction, so the loop
    // terminates) until the design timing constraint holds.
    double fraction = opt.para_gate_fraction;
    std::vector<CellId> selected;
    for (int attempt = 0; attempt <= opt.para_max_retries; ++attempt) {
      const auto want = std::max<std::size_t>(
          1, static_cast<std::size_t>(
                 std::lround(fraction * static_cast<double>(candidates.size()))));
      rng.shuffle(candidates);
      selected.assign(candidates.begin(),
                      candidates.begin() +
                          std::min(want, candidates.size()));
      const std::size_t before = journal.size();
      for (const CellId id : selected) journal.replace(id);
      if (meets_timing()) break;
      while (journal.size() > before) journal.undo_last();
      selected.clear();
      ++result.timing_retries;
      fraction *= 0.75;
    }

    // Unselected path gates feed the USL.
    std::unordered_set<CellId> chosen(selected.begin(), selected.end());
    for (const CellId id : candidates) {
      if (!chosen.count(id)) usl.push_back(id);
    }
  }

  // USL closure: replace the immediate off-path drivers and readers of every
  // unselected gate, preventing partial truth tables through them. Each
  // neighbour is accepted only if the design still meets timing, so the
  // closure harvests as many gates as the slack allows.
  if (opt.usl_closure) {
    const std::size_t before_usl = journal.size();
    for (const CellId gate : usl) {
      const Cell& c = nl.cell(gate);
      std::vector<CellId> neighbours(c.fanins.begin(), c.fanins.end());
      neighbours.insert(neighbours.end(), c.fanouts.begin(), c.fanouts.end());
      for (const CellId n : neighbours) {
        if (on_targeted_path.count(n)) continue;
        if (nl.cell(n).kind == CellKind::kLut) continue;
        if (!journal.replace(n)) continue;
        if (meets_timing()) {
          ++result.usl_replacements;
        } else {
          journal.undo_last();
        }
      }
    }
    (void)before_usl;
  }

  journal.commit_into(result);
  return result;
}

}  // namespace stt
