// CMOS gate selection and replacement (Section IV-A): the paper's primary
// contribution.
//
// All three algorithms share the path-pool front end (Section IV-A,
// implementation paragraph): sample ~2% of logic cells, DFS each seed to a
// PI -> PO path crossing >= 2 flip-flops, drop paths that touch the timing-
// critical path, and sort by flip-flop depth.
//
//  * Independent selection (IV-A.1): a predetermined number of gates chosen
//    at random from the pooled paths — no connectivity requirement. Cheap,
//    weakest security (Eq. 1 additive cost).
//  * Dependent selection (IV-A.2, Algorithm 1): every gate on the timing
//    paths composing a selected longest I/O path is replaced, so missing
//    gates feed missing gates (Eq. 2 multiplicative cost). No timing
//    awareness — this is the algorithm with the large Table I overheads.
//  * Parametric-aware dependent selection (IV-A.3, Algorithm 2): per
//    selected path, a random subset of gates with >= 2 inputs is replaced,
//    re-drawn until the timing constraint holds; gates left unselected go
//    to the USL, and every gate driving or driven by a USL gate (off-path)
//    is replaced too, destroying partial-truth-table attacks while keeping
//    the critical path clean (Eq. 3 exponential cost).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "core/hybrid.hpp"
#include "graph/paths.hpp"
#include "netlist/netlist.hpp"
#include "tech/tech_library.hpp"

namespace stt {

enum class SelectionAlgorithm { kIndependent, kDependent, kParametric };

std::string algorithm_name(SelectionAlgorithm alg);

struct SelectionOptions {
  std::uint64_t seed = 1;
  PathPoolOptions pool;

  /// Independent: number of gates to replace (the paper always uses 5).
  int indep_count = 5;

  /// Dependent: number of longest I/O paths whose timing paths are fully
  /// replaced (Algorithm 1 iterates over a list; 1 reproduces the paper's
  /// small-benchmark counts).
  int dep_num_paths = 1;

  /// Parametric: predetermined number of *timing paths* (PI/FF -> FF/PO
  /// segments drawn from the pooled I/O paths) and the per-path selection
  /// fraction; retries re-draw the random subset after a timing violation.
  /// 0 = auto: scale with circuit size (gates/400, clamped to [2, 16]),
  /// which reproduces Table I's size-dependent parametric counts.
  int para_num_paths = 0;
  double para_gate_fraction = 0.35;
  int para_max_retries = 30;
  /// Only gates with at least this many inputs are selected on-path
  /// ("only gates with two or more inputs are considered").
  int para_min_fanin = 2;
  /// Enable the USL neighbour-closure step (ablation knob).
  bool usl_closure = true;

  /// Allowed critical-delay degradation for the parametric timing check,
  /// relative to the original circuit (0.05 = +5%).
  double timing_margin = 0.05;
};

struct SelectionResult {
  SelectionAlgorithm algorithm = SelectionAlgorithm::kIndependent;
  std::vector<CellId> replaced;  ///< cells now implemented as STT LUTs
  LutKey key;                    ///< their configuration bitstream
  int paths_considered = 0;      ///< path-pool size after filtering
  int timing_retries = 0;        ///< parametric L1 re-draws
  int usl_replacements = 0;      ///< LUTs added by the USL closure
  double selection_seconds = 0;  ///< wall-clock of selection itself
};

class GateSelector {
 public:
  explicit GateSelector(const TechLibrary& lib) : lib_(&lib) {}

  /// Run one algorithm, mutating `nl` into the hybrid netlist (LUTs
  /// configured to preserve functionality). The netlist must be a pure-CMOS
  /// design (no pre-existing LUTs).
  SelectionResult run(Netlist& nl, SelectionAlgorithm alg,
                      const SelectionOptions& opt) const;

 private:
  SelectionResult run_independent(Netlist& nl, const SelectionOptions& opt,
                                  Rng& rng,
                                  const std::vector<IoPath>& pool) const;
  SelectionResult run_dependent(Netlist& nl, const SelectionOptions& opt,
                                Rng& rng,
                                const std::vector<IoPath>& pool) const;
  SelectionResult run_parametric(Netlist& nl, const SelectionOptions& opt,
                                 Rng& rng,
                                 const std::vector<IoPath>& pool) const;

  const TechLibrary* lib_;
};

}  // namespace stt
