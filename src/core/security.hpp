// Security estimators: Eqs. (1)-(3) of the paper.
//
//   N_indep = sum_i  alpha_i * D_i                                 (Eq. 1)
//   N_dep   = prod_i alpha_i * P_i * D_i                           (Eq. 2)
//   N_bf    = 2^I * P^M * D                                        (Eq. 3)
//
// where, for missing gate i: alpha_i is the pattern count from the
// similarity model, P_i the candidate-function count, D_i the number of
// clock cycles to propagate its output to an observation point (its
// flip-flop distance to a primary output, plus the observation cycle);
// I is the number of accessible (non-missing) signals driving missing
// gates, M the number of missing gates and D the circuit sequential depth.
//
// Values reach 1e220 for the larger benchmarks, hence BigNum.
#pragma once

#include "core/selection.hpp"
#include "core/similarity.hpp"
#include "netlist/netlist.hpp"
#include "util/bignum.hpp"

namespace stt {

struct SecurityReport {
  int missing_gates = 0;      ///< M
  int accessible_inputs = 0;  ///< I: PIs/scan bits in the LUT fan-in support
  int circuit_depth = 1;      ///< D (SCC-condensed max FF chain, >= 1)
  double mean_alpha = 0;
  double mean_candidates = 0;  ///< arithmetic mean of P_i
  BigNum n_indep;              ///< Eq. 1
  BigNum n_dep;                ///< Eq. 2
  BigNum n_bf;                 ///< Eq. 3
};

/// Evaluate all three equations on a hybrid netlist (cells of kind kLut are
/// the missing gates). A pure-CMOS netlist yields a zeroed report.
SecurityReport security_report(const Netlist& hybrid,
                               const SimilarityModel& model);

/// The paper's applicability mapping: testing attack (Eq. 1) against
/// independent selection, dependent testing attack (Eq. 2) against
/// dependent selection, brute force / ML (Eq. 3) against parametric-aware
/// selection.
BigNum required_clocks(const SecurityReport& report, SelectionAlgorithm alg);

/// Attack wall-clock in years at a given pattern application rate (the
/// paper quotes one billion patterns per second).
BigNum attack_years(const BigNum& clocks, double patterns_per_second = 1e9);

}  // namespace stt
