// Gate-similarity model: the alpha and P constants of Eqs. (1)-(3).
//
// The paper defines the similarity of two k-input gates as the number of
// input assignments on which they agree (AND2 vs NOR2 -> 2; AND2 vs NAND2
// -> 0), and derives alpha — the average number of test patterns needed to
// pin down one independent missing gate — as 1 + the average pairwise
// similarity over the candidate set. P is the number of candidate functions
// an attacker must consider per missing gate.
//
// Two parameterizations are provided:
//  * `paper()` — the constants the paper states (alpha = 2.45 / 4.2 / 7.4
//    for 2/3/4-input gates, P = 2.5 for 2-input, and 6 / "more than 12"
//    meaningful functions for 2- / 3-4-input LUTs);
//  * `computed()` — the same quantities recomputed from first principles
//    over an explicit candidate set. With the six standard 2-input gates
//    the average similarity evaluates to 1.6 (alpha = 2.6), bracketing the
//    paper's 2.45; the Fig. 3 reproduction uses `paper()` so the magnitudes
//    are comparable, and tests cross-check `computed()` against it.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/celltype.hpp"

namespace stt {

struct SimilarityModel {
  /// alpha by fan-in (index 0 unused; [1] covers BUF/NOT-sized LUTs).
  double alpha[kMaxLutInputs + 1] = {};
  /// candidate-function count P by fan-in.
  double candidates[kMaxLutInputs + 1] = {};

  double alpha_for(int fanin) const;
  double candidates_for(int fanin) const;

  static SimilarityModel paper();
  static SimilarityModel computed();
};

/// Number of agreeing truth-table rows between two k-input functions.
int gate_similarity(std::uint64_t mask_a, std::uint64_t mask_b, int fanin);

/// The standard candidate gate set at a fan-in (AND/NAND/OR/NOR/XOR/XNOR),
/// as truth masks.
std::vector<std::uint64_t> standard_candidate_masks(int fanin);

/// Mean pairwise similarity over a candidate set (unordered distinct pairs).
double average_similarity(const std::vector<std::uint64_t>& masks, int fanin);

/// "Meaningful" k-input functions: non-constant functions that depend on
/// every input, counted up to input-order (the LUT can permute its pins).
/// For k=2 this is 10; restricted to the symmetric standard set it is 6,
/// matching the paper's count.
std::size_t meaningful_function_count(int fanin);

}  // namespace stt
