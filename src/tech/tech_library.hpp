// Technology models: a 90 nm-class CMOS standard-cell library and the
// non-volatile STT-based LUT macro model.
//
// Calibration. The paper gives STT-LUT-vs-CMOS ratios (its Fig. 1, predictive
// 32 nm SPICE) and evaluates the flow on 90 nm syntheses. We choose absolute
// CMOS anchor values typical of a 90 nm process (NAND2 ~ 40 ps, ~1 fJ/switch,
// ~2 nW leakage, ~4.7 um^2) and then *derive* the remaining CMOS cells and
// all LUT parameters so that every ratio of the paper's Fig. 1 is reproduced
// exactly:
//
//  * LUT delay depends only on fan-in (paper, Sec. III):
//      d_LUT(2) = 6.46 x d_NAND2, and d_NOR2 = d_LUT(2)/4.85, etc.
//  * LUT dynamic power is activity-independent (dynamic circuit style):
//      P_dyn_LUT(k) = E_cycle(k) x f. E_cycle(2) is set from the NAND2
//      "Active Power (alpha=10%)" ratio of 90.35; the alpha=30% column then
//      reproduces automatically (90.35/3 = 30.12), exactly as in Fig. 1.
//  * CMOS gate dynamic power is alpha x E_active x f; per-gate E_active is
//    derived from the alpha=10% column.
//  * "Energy per switching" is a separate per-event measurement in the
//    paper's SPICE table (it includes different loading than the average-
//    power run), so cells carry an independent E_switch used only for that
//    characterization metric.
//  * Leakage ("standby power") per gate derives from the standby columns.
//  * LUT area is set at ~2.5x the average gate footprint, the value implied
//    by Table I's area overheads (e.g. s641: five 2-input LUTs -> +2.64% of
//    a 287-gate circuit).
#pragma once

#include <string>

#include "netlist/celltype.hpp"

namespace stt {

/// Parameters of one CMOS standard cell at a specific fan-in.
struct CmosCellParams {
  double delay_ps = 0;     ///< pin-to-pin delay, unloaded
  double e_active_fj = 0;  ///< energy per cycle at alpha=1 (power model)
  double e_switch_fj = 0;  ///< energy per output switching event (Fig. 1)
  double leak_nw = 0;      ///< standby leakage power
  double area_um2 = 0;
};

/// Parameters of an STT-based LUT macro at fan-in k.
struct LutParams {
  double delay_ps = 0;
  double e_cycle_fj = 0;   ///< dynamic energy per clock, activity-independent
  double e_switch_fj = 0;  ///< per output switching event (Fig. 1 metric)
  double leak_nw = 0;
  double area_um2 = 0;
};

class TechLibrary {
 public:
  /// The default calibrated 90 nm-class CMOS + STT library (see file
  /// comment). This is the library used for the Table I / Fig. 3 flows.
  static TechLibrary cmos90_stt();

  /// The same ratio calibration scaled to a predictive-32 nm-class anchor
  /// (NAND2 = 14 ps, 0.25 fJ) — used by the Fig. 1 characterization bench.
  static TechLibrary predictive32_stt();

  const std::string& name() const { return name_; }

  /// CMOS cell parameters; supports BUF/NOT at fan-in 1, standard gates at
  /// fan-in 2..kMaxLutInputs (5/6-input cells are extrapolated), DFF.
  CmosCellParams gate(CellKind kind, int fanin) const;

  /// STT LUT macro parameters for fan-in 1..kMaxLutInputs.
  LutParams lut(int fanin) const;

  /// Incremental delay per fan-out load on any cell output.
  double load_delay_ps() const { return load_delay_ps_; }

  /// DFF clock-to-Q + setup margin charged on register-bounded paths.
  double dff_clk_to_q_ps() const { return dff_clk_to_q_ps_; }
  double dff_setup_ps() const { return dff_setup_ps_; }

 private:
  TechLibrary() = default;

  std::string name_;
  // Anchor scale factors applied to the built-in calibration tables.
  double delay_scale_ = 1.0;
  double energy_scale_ = 1.0;
  double leak_scale_ = 1.0;
  double area_scale_ = 1.0;
  double load_delay_ps_ = 2.0;
  double dff_clk_to_q_ps_ = 120.0;
  double dff_setup_ps_ = 60.0;
};

}  // namespace stt
