// Fig. 1 device characterization: STT-based LUT vs static CMOS, normalized.
//
// Produces the five metrics of the paper's Fig. 1 for a gate implemented
// either as a static CMOS cell or as an STT-based LUT of the same fan-in:
// delay, active power at a given output switching activity, standby power,
// and energy per switching event — each as LUT/CMOS ratios.
#pragma once

#include "tech/tech_library.hpp"

namespace stt {

struct DeviceComparison {
  double delay_ratio = 0;
  double active_power_ratio_a10 = 0;  ///< at alpha = 10%
  double active_power_ratio_a30 = 0;  ///< at alpha = 30%
  double standby_power_ratio = 0;
  double energy_per_switch_ratio = 0;
};

/// Ratio of LUT active power (activity-independent, = E_cycle * f) to CMOS
/// active power (= alpha * E_active * f) — frequency cancels.
double active_power_ratio(const TechLibrary& lib, CellKind kind, int fanin,
                          double alpha);

DeviceComparison compare_lut_vs_cmos(const TechLibrary& lib, CellKind kind,
                                     int fanin);

}  // namespace stt
