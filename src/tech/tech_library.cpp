#include "tech/tech_library.hpp"

#include <cmath>
#include <stdexcept>

namespace stt {

namespace {

// Built-in 90 nm-class calibration (see header). Values for NOR/XOR cells
// are *derived* from the NAND anchors and the paper's Fig. 1 ratios:
//   d_NOR2 = d_LUT2 / 4.85 with d_LUT2 = 6.46 * d_NAND2, etc.
// The literal constants below are those closed-form results.
constexpr CmosCellParams kInv{14.0, 0.45, 0.45, 1.2, 2.82};
constexpr CmosCellParams kBuf{30.0, 0.90, 0.90, 1.8, 3.76};
constexpr CmosCellParams kDffCell{120.0, 4.0, 4.0, 8.0, 18.8};

// index 0 -> fan-in 2, 1 -> fan-in 3, 2 -> fan-in 4
constexpr CmosCellParams kNand[3] = {
    {40.0, 1.0, 1.0, 2.0, 4.70},
    {55.0, 1.4, 1.4, 2.6, 5.64},
    {72.0, 1.8, 1.8, 3.1, 7.52},
};
constexpr CmosCellParams kNor[3] = {
    {258.4 / 4.85, 9.035 / 8.02, 58.36 / 38.89, 0.96 / 0.51, 4.70},
    {78.0, 3.2, 4.5, 2.3, 5.64},
    {323.28 / 3.06, 13.8114 / 2.425, 62.01 / 7.42, 2.976 / 1.06, 7.52},
};
constexpr CmosCellParams kXor[3] = {
    {258.4 / 4.95, 9.035 / 2.245, 58.36 / 11.11, 0.96 / 0.13, 7.52},
    {65.0, 2.6, 3.2, 20.0, 11.28},
    {323.28 / 4.18, 13.8114 / 9.006, 62.01 / 37.64, 2.976 / 0.04, 15.04},
};
constexpr CmosCellParams kAnd[3] = {
    {54.0, 1.45, 1.45, 3.2, 5.64},
    {69.0, 1.85, 1.85, 3.8, 6.58},
    {86.0, 2.25, 2.25, 4.3, 8.46},
};
constexpr CmosCellParams kOr[3] = {
    {67.0, 1.57, 1.95, 3.08, 5.64},
    {92.0, 3.65, 5.00, 3.50, 6.58},
    {120.0, 6.14, 8.80, 4.00, 8.46},
};

// STT LUT macro calibration, index = fan-in - 1.
// E_cycle(2) = 90.35 * 0.1 * E_active(NAND2); E_cycle(4) likewise from NAND4;
// leak(2) = 0.48 * leak(NAND2); leak(4) = 0.96 * leak(NAND4);
// delay(2) = 6.46 * d(NAND2); delay(4) = 4.49 * d(NAND4).
constexpr LutParams kLut[kMaxLutInputs] = {
    {200.0, 7.00, 45.00, 0.70, 9.0},    // LUT1
    {258.4, 9.035, 58.36, 0.96, 12.0},  // LUT2
    {290.0, 11.30, 60.00, 1.90, 16.5},  // LUT3 (interpolated)
    {323.28, 13.8114, 62.01, 2.976, 22.0},  // LUT4
    {380.0, 17.50, 75.00, 4.40, 32.0},  // LUT5 (extrapolated)
    {450.0, 22.00, 90.00, 6.40, 45.0},  // LUT6 (extrapolated)
};

CmosCellParams scale(const CmosCellParams& p, double d, double e, double l,
                     double a) {
  return {p.delay_ps * d, p.e_active_fj * e, p.e_switch_fj * e, p.leak_nw * l,
          p.area_um2 * a};
}

// Standard gates beyond the fan-in-4 table: compose as a tree of smaller
// gates would in synthesis; modelled as geometric growth per extra input.
CmosCellParams extrapolate(const CmosCellParams& base4, int fanin) {
  const int extra = fanin - 4;
  const double grow = std::pow(1.3, extra);
  const double area_grow = std::pow(1.2, extra);
  return {base4.delay_ps * grow, base4.e_active_fj * grow,
          base4.e_switch_fj * grow, base4.leak_nw * grow,
          base4.area_um2 * area_grow};
}

}  // namespace

TechLibrary TechLibrary::cmos90_stt() {
  TechLibrary lib;
  lib.name_ = "cmos90+stt";
  return lib;
}

TechLibrary TechLibrary::predictive32_stt() {
  TechLibrary lib;
  lib.name_ = "predictive32+stt";
  lib.delay_scale_ = 0.35;
  lib.energy_scale_ = 0.25;
  lib.leak_scale_ = 0.50;
  lib.area_scale_ = 0.126;
  lib.load_delay_ps_ = 0.8;
  lib.dff_clk_to_q_ps_ = 45.0;
  lib.dff_setup_ps_ = 22.0;
  return lib;
}

CmosCellParams TechLibrary::gate(CellKind kind, int fanin) const {
  const CmosCellParams* table = nullptr;
  switch (kind) {
    case CellKind::kNot:
      if (fanin != 1) throw std::invalid_argument("tech: NOT fan-in != 1");
      return scale(kInv, delay_scale_, energy_scale_, leak_scale_, area_scale_);
    case CellKind::kBuf:
      if (fanin != 1) throw std::invalid_argument("tech: BUF fan-in != 1");
      return scale(kBuf, delay_scale_, energy_scale_, leak_scale_, area_scale_);
    case CellKind::kDff:
      return scale(kDffCell, delay_scale_, energy_scale_, leak_scale_,
                   area_scale_);
    case CellKind::kConst0:
    case CellKind::kConst1:
      return {};  // tie cells: negligible
    case CellKind::kAnd: table = kAnd; break;
    case CellKind::kNand: table = kNand; break;
    case CellKind::kOr: table = kOr; break;
    case CellKind::kNor: table = kNor; break;
    case CellKind::kXor:
    case CellKind::kXnor: table = kXor; break;
    default:
      throw std::invalid_argument("tech: no CMOS cell for kind");
  }
  if (fanin < 2) throw std::invalid_argument("tech: gate fan-in < 2");
  CmosCellParams p = (fanin <= 4) ? table[fanin - 2]
                                  : extrapolate(table[2], fanin);
  if (kind == CellKind::kXnor) p.delay_ps *= 1.05;
  return scale(p, delay_scale_, energy_scale_, leak_scale_, area_scale_);
}

LutParams TechLibrary::lut(int fanin) const {
  if (fanin < 1 || fanin > kMaxLutInputs) {
    throw std::invalid_argument("tech: LUT fan-in out of range");
  }
  const LutParams& p = kLut[fanin - 1];
  return {p.delay_ps * delay_scale_, p.e_cycle_fj * energy_scale_,
          p.e_switch_fj * energy_scale_, p.leak_nw * leak_scale_,
          p.area_um2 * area_scale_};
}

}  // namespace stt
