#include "tech/device_model.hpp"

#include <stdexcept>

namespace stt {

double active_power_ratio(const TechLibrary& lib, CellKind kind, int fanin,
                          double alpha) {
  if (alpha <= 0) throw std::invalid_argument("active_power_ratio: alpha <= 0");
  const auto cmos = lib.gate(kind, fanin);
  const auto lut = lib.lut(fanin);
  return lut.e_cycle_fj / (alpha * cmos.e_active_fj);
}

DeviceComparison compare_lut_vs_cmos(const TechLibrary& lib, CellKind kind,
                                     int fanin) {
  const auto cmos = lib.gate(kind, fanin);
  const auto lut = lib.lut(fanin);
  DeviceComparison cmp;
  cmp.delay_ratio = lut.delay_ps / cmos.delay_ps;
  cmp.active_power_ratio_a10 = active_power_ratio(lib, kind, fanin, 0.10);
  cmp.active_power_ratio_a30 = active_power_ratio(lib, kind, fanin, 0.30);
  cmp.standby_power_ratio = lut.leak_nw / cmos.leak_nw;
  cmp.energy_per_switch_ratio = lut.e_switch_fj / cmos.e_switch_fj;
  return cmp;
}

}  // namespace stt
