#include "util/table.hpp"

#include <algorithm>
#include <cctype>
#include <sstream>
#include <stdexcept>

namespace stt {

namespace {

bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  bool digit = false;
  for (char c : s) {
    if (std::isdigit(static_cast<unsigned char>(c))) {
      digit = true;
    } else if (c != '.' && c != '-' && c != '+' && c != 'e' && c != 'E' &&
               c != '%' && c != ':') {
      return false;
    }
  }
  return digit;
}

std::string csv_escape(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += '"';
    out += c;
  }
  out += '"';
  return out;
}

}  // namespace

TextTable::TextTable(std::vector<std::string> header)
    : header_(std::move(header)) {
  if (header_.empty()) throw std::invalid_argument("TextTable: empty header");
}

void TextTable::add_row(std::vector<std::string> row) {
  if (row.size() != header_.size()) {
    throw std::invalid_argument("TextTable: row width mismatch");
  }
  rows_.push_back(std::move(row));
}

std::string TextTable::render() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream os;
  auto emit_sep = [&] {
    for (std::size_t c = 0; c < width.size(); ++c) {
      os << '+' << std::string(width[c] + 2, '-');
    }
    os << "+\n";
  };
  auto emit_row = [&](const std::vector<std::string>& row, bool align_right) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      const bool right = align_right && looks_numeric(row[c]);
      const std::size_t pad = width[c] - row[c].size();
      os << "| ";
      if (right) os << std::string(pad, ' ');
      os << row[c];
      if (!right) os << std::string(pad, ' ');
      os << ' ';
    }
    os << "|\n";
  };

  emit_sep();
  emit_row(header_, false);
  emit_sep();
  for (const auto& row : rows_) emit_row(row, true);
  emit_sep();
  return os.str();
}

std::string TextTable::to_csv() const {
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      os << csv_escape(row[c]);
    }
    os << '\n';
  };
  emit(header_);
  for (const auto& row : rows_) emit(row);
  return os.str();
}

}  // namespace stt
