#include "util/strings.hpp"

#include <cctype>
#include <cstdarg>
#include <cstdio>

namespace stt {

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  std::size_t e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::vector<std::string> split(std::string_view s, char delim) {
  std::vector<std::string> out;
  std::size_t start = 0;
  while (true) {
    const std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::vector<std::string> split_ws(std::string_view s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.emplace_back(s.substr(i, j - i));
    i = j;
  }
  return out;
}

void split_ws_views(std::string_view s, std::vector<std::string_view>& out) {
  out.clear();
  std::size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
    std::size_t j = i;
    while (j < s.size() && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
    if (j > i) out.push_back(s.substr(i, j - i));
    i = j;
  }
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (char& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string strformat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args2;
  va_copy(args2, args);
  const int n = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out(n > 0 ? static_cast<std::size_t>(n) : 0, '\0');
  if (n > 0) std::vsnprintf(out.data(), out.size() + 1, fmt, args2);
  va_end(args2);
  return out;
}

}  // namespace stt
