// Small string helpers shared by the parsers and report writers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace stt {

/// Strip leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// Split on a single delimiter character; empty fields are preserved.
std::vector<std::string> split(std::string_view s, char delim);

/// Split on any run of whitespace; empty fields are dropped.
std::vector<std::string> split_ws(std::string_view s);

/// Zero-copy split_ws: appends views into `s` onto `out` (which is cleared
/// first). The views alias `s`; callers own the backing buffer's lifetime.
/// Reusing one `out` across calls makes tokenizing allocation-free.
void split_ws_views(std::string_view s, std::vector<std::string_view>& out);

/// ASCII lower-case copy.
std::string to_lower(std::string_view s);

/// ASCII upper-case copy.
std::string to_upper(std::string_view s);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive equality (ASCII).
bool iequals(std::string_view a, std::string_view b);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace stt
