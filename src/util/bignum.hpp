// Log-domain arbitrary-magnitude positive numbers.
//
// The paper's security metrics (Eqs. 1-3) produce values such as 6.07E+219
// test clocks, far beyond double range for large benchmarks. BigNum keeps
// log10(value) as the representation, which supports the multiply/power
// chains of Eq. (2) and Eq. (3) exactly in the operations that matter, plus
// a log-sum-exp addition for Eq. (1).
#pragma once

#include <cmath>
#include <compare>
#include <cstdint>
#include <string>

namespace stt {

class BigNum {
 public:
  /// Zero value.
  BigNum() : log10_(-kInfLog), zero_(true) {}

  /// From a non-negative double.
  static BigNum from_double(double v);

  /// From an explicit decimal exponent: value = mantissa * 10^exp10.
  static BigNum from_mantissa_exp(double mantissa, double exp10);

  /// 2^e for large e.
  static BigNum pow2(double e);

  /// base^e for base > 0.
  static BigNum pow(double base, double e);

  bool is_zero() const { return zero_; }

  /// log10 of the value (meaningless for zero; returns a large negative).
  double log10() const { return zero_ ? -kInfLog : log10_; }

  /// Best-effort conversion; +inf when out of double range.
  double to_double() const;

  BigNum operator*(const BigNum& o) const;
  BigNum operator+(const BigNum& o) const;
  BigNum& operator*=(const BigNum& o) { return *this = *this * o; }
  BigNum& operator+=(const BigNum& o) { return *this = *this + o; }

  /// Raise to an integer power (for P^M style terms).
  BigNum powi(std::uint64_t e) const;

  std::partial_ordering operator<=>(const BigNum& o) const;
  bool operator==(const BigNum& o) const;

  /// Scientific notation like "6.07E+219" (matching the paper's style).
  std::string to_string(int digits = 2) const;

 private:
  static constexpr double kInfLog = 1e300;

  explicit BigNum(double lg) : log10_(lg), zero_(false) {}

  double log10_;
  bool zero_;
};

}  // namespace stt
