// Streaming statistics accumulator (Welford) used by the overhead reports,
// the attack-cost measurements, and the campaign engine's cross-thread
// metric aggregation.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>
#include <vector>

namespace stt {

class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

  /// Fold another accumulator into this one (Chan et al.'s parallel
  /// variance combination), so per-thread accumulators can be reduced
  /// after a parallel campaign without losing the exact mean/variance.
  void merge(const Accumulator& other) {
    if (other.n_ == 0) return;
    if (n_ == 0) {
      *this = other;
      return;
    }
    const double total = static_cast<double>(n_ + other.n_);
    const double delta = other.mean_ - mean_;
    m2_ += other.m2_ + delta * delta * static_cast<double>(n_) *
                           static_cast<double>(other.n_) / total;
    mean_ += delta * static_cast<double>(other.n_) / total;
    n_ += other.n_;
    sum_ += other.sum_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// One Accumulator shard per worker thread, padded to a cache line so
/// concurrent add() calls from different shards never false-share.
/// Each shard is single-writer (the owning worker); combined() is called
/// after the workers have finished.
class ShardedAccumulator {
 public:
  explicit ShardedAccumulator(std::size_t shards)
      : shards_(shards ? shards : 1) {}

  std::size_t shards() const { return shards_.size(); }

  /// The shard index must identify the calling thread (e.g. the pool's
  /// worker index); two threads must not share a shard concurrently.
  void add(std::size_t shard, double x) { shards_.at(shard).acc.add(x); }

  Accumulator& shard(std::size_t index) { return shards_.at(index).acc; }

  /// Exact reduction across shards (order-independent counts/means).
  Accumulator combined() const {
    Accumulator total;
    for (const Padded& p : shards_) total.merge(p.acc);
    return total;
  }

 private:
  struct alignas(64) Padded {
    Accumulator acc;
  };
  std::vector<Padded> shards_;
};

}  // namespace stt
