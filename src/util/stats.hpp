// Streaming statistics accumulator (Welford) used by the overhead reports
// and the attack-cost measurements.
#pragma once

#include <cmath>
#include <cstddef>
#include <limits>

namespace stt {

class Accumulator {
 public:
  void add(double x) {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
    sum_ += x;
  }

  std::size_t count() const { return n_; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  double variance() const {
    return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
  }
  double stddev() const { return std::sqrt(variance()); }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

}  // namespace stt
