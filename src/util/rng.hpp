// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every stochastic step in the flow (benchmark-replica generation, the 2%
// component sample, random gate selection, random stimulus) draws from an
// explicitly seeded Rng so that each table row in the paper reproduction is
// bit-for-bit repeatable.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <stdexcept>
#include <vector>

namespace stt {

/// xoshiro256** by Blackman & Vigna: fast, high-quality, 2^256-1 period.
/// Seeded through SplitMix64 so that any 64-bit seed yields a well-mixed
/// initial state (including zero).
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    // SplitMix64 state expansion.
    auto next_sm = [&seed]() {
      seed += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = seed;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      return z ^ (z >> 31);
    };
    for (auto& word : state_) word = next_sm();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Uses Lemire's multiply-shift rejection
  /// method to avoid modulo bias.
  std::uint64_t below(std::uint64_t bound) {
    if (bound == 0) throw std::invalid_argument("Rng::below: bound == 0");
    std::uint64_t x = (*this)();
    __uint128_t m = static_cast<__uint128_t>(x) * bound;
    auto low = static_cast<std::uint64_t>(m);
    if (low < bound) {
      const std::uint64_t threshold = -bound % bound;
      while (low < threshold) {
        x = (*this)();
        m = static_cast<__uint128_t>(x) * bound;
        low = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in the inclusive range [lo, hi].
  std::int64_t range(std::int64_t lo, std::int64_t hi) {
    if (lo > hi) throw std::invalid_argument("Rng::range: lo > hi");
    const auto span =
        static_cast<std::uint64_t>(hi) - static_cast<std::uint64_t>(lo) + 1;
    return lo + static_cast<std::int64_t>(below(span));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability p of returning true.
  bool chance(double p) { return uniform() < p; }

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& items) {
    for (std::size_t i = items.size(); i > 1; --i) {
      std::swap(items[i - 1], items[below(i)]);
    }
  }

  /// Uniformly pick one element (container must be non-empty).
  template <typename T>
  const T& pick(const std::vector<T>& items) {
    if (items.empty()) throw std::invalid_argument("Rng::pick: empty");
    return items[below(items.size())];
  }

  /// Sample k distinct elements without replacement (k may exceed size, in
  /// which case all elements are returned, shuffled).
  template <typename T>
  std::vector<T> sample(std::span<const T> items, std::size_t k) {
    std::vector<T> pool(items.begin(), items.end());
    shuffle(pool);
    if (k < pool.size()) pool.resize(k);
    return pool;
  }

  /// Derive an independent child generator (for parallel or per-phase use).
  Rng split() { return Rng((*this)() ^ 0xd1b54a32d192ed03ull); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace stt
