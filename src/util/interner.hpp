// Arena-backed string interner: the name store of the netlist core.
//
// A million-gate netlist carries a million net names. Storing each as a
// heap `std::string` plus an `std::unordered_map<std::string, CellId>`
// costs two allocations and a hash-node per cell and scatters the bytes
// across the heap. The interner replaces both: names live back to back in
// bump-allocated chunks (stable addresses — a chunk is never reallocated,
// so the `std::string_view`s handed out stay valid for the interner's
// lifetime), and an open-addressing hash table over (hash, symbol) pairs
// maps text to a dense `Sym` id with zero allocations per lookup.
//
// Symbols are dense: the N-th distinct string interned gets id N-1. The
// netlist exploits this — it interns exactly one name per cell, in cell
// order, so Sym and CellId coincide and no side table is needed.
//
// Copying an interner deep-copies the chunks; views into the copy are
// re-derived via `view(sym)`, never by pointer arithmetic on the source.
#pragma once

#include <cstdint>
#include <memory>
#include <string_view>
#include <vector>

namespace stt {

class StringInterner {
 public:
  using Sym = std::uint32_t;
  static constexpr Sym kNoSym = static_cast<Sym>(-1);

  StringInterner() = default;
  StringInterner(const StringInterner& other) { copy_from(other); }
  StringInterner& operator=(const StringInterner& other) {
    if (this != &other) {
      clear();
      copy_from(other);
    }
    return *this;
  }
  StringInterner(StringInterner&&) noexcept = default;
  StringInterner& operator=(StringInterner&&) noexcept = default;

  /// Intern `s`: returns its symbol, setting `inserted` to whether this
  /// call created it. New text is copied into the arena; existing text
  /// costs one probe sequence and no allocation.
  Sym intern(std::string_view s, bool& inserted);

  /// Lookup without inserting; kNoSym if absent. Allocation-free.
  Sym lookup(std::string_view s) const;

  /// The stable text of a symbol. Valid for the interner's lifetime.
  std::string_view view(Sym sym) const {
    const Entry& e = entries_[sym];
    return {e.data, e.length};
  }

  std::size_t size() const { return entries_.size(); }

  /// Pre-size for `count` strings totalling ~`bytes` of text (bulk build).
  void reserve(std::size_t count, std::size_t bytes);

  /// Total arena bytes in use (diagnostics / bench reporting).
  std::size_t arena_bytes() const { return arena_bytes_; }

  void clear();

 private:
  struct Entry {
    const char* data = nullptr;  ///< into a chunk; chunks never reallocate
    std::uint32_t length = 0;
  };
  // 8-byte slots: the probe table is the random-access hot path of every
  // lookup, and halving it doubles how much of a million-name table the
  // cache holds. The stored hash is the avalanched low word — enough to
  // place (tables are far below 2^32 slots) and to reject mismatches
  // before the string compare.
  struct Slot {
    std::uint32_t hash = 0;
    Sym sym = kNoSym;  ///< kNoSym marks an empty slot
  };

  static std::uint64_t hash_bytes(std::string_view s);
  const char* append_to_arena(std::string_view s, Entry& entry);
  void grow_table(std::size_t min_slots);
  void copy_from(const StringInterner& other);

  static constexpr std::size_t kChunkBytes = 1u << 16;

  std::vector<std::unique_ptr<char[]>> chunks_;
  std::size_t chunk_used_ = kChunkBytes;  ///< bytes used in the last chunk
  std::size_t chunk_cap_ = 0;             ///< capacity of the last chunk
  std::size_t arena_bytes_ = 0;
  std::vector<Entry> entries_;  ///< indexed by Sym
  std::vector<Slot> table_;     ///< open addressing, power-of-two size
};

}  // namespace stt
