// Monotonic timing used for the Table II CPU-time reproduction and the
// campaign engine's per-job accounting.
//
// Everything here is std::chrono::steady_clock on purpose: campaign jobs
// time themselves concurrently and must never observe wall-clock
// adjustments (NTP slew, suspend) as negative or inflated durations.
#pragma once

#include <chrono>
#include <string>

namespace stt {

class Timer {
 public:
  Timer() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }
  double millis() const { return seconds() * 1e3; }

  /// Monotonic "now" in seconds since an arbitrary epoch — for stamping
  /// events (e.g. job ready/start times) that are later subtracted.
  static double now_seconds() {
    return std::chrono::duration<double>(clock::now().time_since_epoch())
        .count();
  }

  /// Format as the paper's "MM:SS.t" style (Table II).
  static std::string format_mmss(double seconds);

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

inline std::string Timer::format_mmss(double seconds) {
  if (seconds < 0) seconds = 0;
  const int minutes = static_cast<int>(seconds / 60.0);
  const double rem = seconds - minutes * 60.0;
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%02d:%04.1f", minutes, rem);
  return buf;
}

}  // namespace stt
