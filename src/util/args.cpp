#include "util/args.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace stt {

void ArgParser::add_option(const std::string& name, const std::string& doc,
                           std::optional<std::string> default_value) {
  if (!starts_with(name, "--")) throw ArgError("option must start with --");
  specs_[name] = Spec{doc, false, std::move(default_value)};
}

void ArgParser::add_flag(const std::string& name, const std::string& doc) {
  if (!starts_with(name, "--")) throw ArgError("flag must start with --");
  specs_[name] = Spec{doc, true, std::nullopt};
}

void ArgParser::parse(const std::vector<std::string>& args) {
  for (std::size_t i = 0; i < args.size(); ++i) {
    const std::string& arg = args[i];
    if (!starts_with(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string name = arg;
    std::optional<std::string> inline_value;
    if (const auto eq = arg.find('='); eq != std::string::npos) {
      name = arg.substr(0, eq);
      inline_value = arg.substr(eq + 1);
    }
    const auto it = specs_.find(name);
    if (it == specs_.end()) throw ArgError("unknown option '" + name + "'");
    if (it->second.is_flag) {
      if (inline_value) throw ArgError("flag '" + name + "' takes no value");
      values_[name] = "1";
      continue;
    }
    if (inline_value) {
      values_[name] = *inline_value;
    } else {
      if (i + 1 >= args.size()) {
        throw ArgError("option '" + name + "' needs a value");
      }
      values_[name] = args[++i];
    }
  }
}

bool ArgParser::has(const std::string& name) const {
  if (values_.count(name)) return true;
  const auto it = specs_.find(name);
  return it != specs_.end() && it->second.default_value.has_value();
}

std::string ArgParser::get(const std::string& name) const {
  if (const auto it = values_.find(name); it != values_.end()) {
    return it->second;
  }
  const auto spec = specs_.find(name);
  if (spec != specs_.end() && spec->second.default_value) {
    return *spec->second.default_value;
  }
  throw ArgError("missing required option '" + name + "'");
}

std::string ArgParser::get_or(const std::string& name,
                              const std::string& fallback) const {
  return has(name) ? get(name) : fallback;
}

std::int64_t ArgParser::get_int(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const std::int64_t out = std::stoll(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw ArgError("option '" + name + "' expects an integer, got '" + v +
                   "'");
  }
}

double ArgParser::get_double(const std::string& name) const {
  const std::string v = get(name);
  try {
    std::size_t pos = 0;
    const double out = std::stod(v, &pos);
    if (pos != v.size()) throw std::invalid_argument(v);
    return out;
  } catch (const std::exception&) {
    throw ArgError("option '" + name + "' expects a number, got '" + v + "'");
  }
}

bool ArgParser::flag(const std::string& name) const {
  return values_.count(name) != 0;
}

std::string ArgParser::help() const {
  std::ostringstream os;
  for (const auto& [name, spec] : specs_) {
    os << "  " << name;
    if (!spec.is_flag) {
      os << " <value>";
      if (spec.default_value) os << " (default: " << *spec.default_value << ")";
    }
    os << "\n      " << spec.doc << '\n';
  }
  return os.str();
}

}  // namespace stt
