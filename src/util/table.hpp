// Text-table and CSV rendering for the benchmark harnesses.
//
// Every bench binary regenerating a paper table/figure prints its result via
// TextTable so that rows visually line up with the paper's layout, and can
// additionally dump machine-readable CSV.
#pragma once

#include <string>
#include <vector>

namespace stt {

class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Render with column alignment; numeric-looking cells are right-aligned.
  std::string render() const;

  /// Comma-separated rendering, header first. Cells containing commas or
  /// quotes are quoted per RFC 4180.
  std::string to_csv() const;

  std::size_t rows() const { return rows_.size(); }
  std::size_t columns() const { return header_.size(); }

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace stt
