#include "util/interner.hpp"

#include <cstring>

namespace stt {

std::uint64_t StringInterner::hash_bytes(std::string_view s) {
  // FNV-1a, folded once; cheap, stateless, and good enough for net names.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  h ^= h >> 32;
  // Reserve 0 as "never used" is unnecessary (slots track emptiness by
  // sym), but avalanche the low bits the table indexes with.
  h *= 0x9e3779b97f4a7c15ull;
  return h;
}

const char* StringInterner::append_to_arena(std::string_view s, Entry& entry) {
  if (chunk_used_ + s.size() > chunk_cap_) {
    const std::size_t cap = s.size() > kChunkBytes ? s.size() : kChunkBytes;
    chunks_.push_back(std::make_unique<char[]>(cap));
    chunk_used_ = 0;
    chunk_cap_ = cap;
  }
  char* dst = chunks_.back().get() + chunk_used_;
  std::memcpy(dst, s.data(), s.size());
  entry.data = dst;
  entry.length = static_cast<std::uint32_t>(s.size());
  chunk_used_ += s.size();
  arena_bytes_ += s.size();
  return dst;
}

void StringInterner::grow_table(std::size_t min_slots) {
  std::size_t cap = table_.empty() ? 64 : table_.size() * 2;
  while (cap < min_slots) cap *= 2;
  std::vector<Slot> fresh(cap);
  const std::size_t mask = cap - 1;
  for (const Slot& slot : table_) {
    if (slot.sym == kNoSym) continue;
    std::size_t i = slot.hash & mask;
    while (fresh[i].sym != kNoSym) i = (i + 1) & mask;
    fresh[i] = slot;
  }
  table_ = std::move(fresh);
}

StringInterner::Sym StringInterner::intern(std::string_view s,
                                           bool& inserted) {
  // Keep load factor under 0.7.
  if ((entries_.size() + 1) * 10 >= table_.size() * 7) {
    grow_table((entries_.size() + 1) * 2);
  }
  const auto h = static_cast<std::uint32_t>(hash_bytes(s));
  const std::size_t mask = table_.size() - 1;
  std::size_t i = h & mask;
  while (table_[i].sym != kNoSym) {
    if (table_[i].hash == h && view(table_[i].sym) == s) {
      inserted = false;
      return table_[i].sym;
    }
    i = (i + 1) & mask;
  }
  Entry entry;
  append_to_arena(s, entry);
  const Sym sym = static_cast<Sym>(entries_.size());
  entries_.push_back(entry);
  table_[i] = {h, sym};
  inserted = true;
  return sym;
}

StringInterner::Sym StringInterner::lookup(std::string_view s) const {
  if (table_.empty()) return kNoSym;
  const auto h = static_cast<std::uint32_t>(hash_bytes(s));
  const std::size_t mask = table_.size() - 1;
  std::size_t i = h & mask;
  while (table_[i].sym != kNoSym) {
    if (table_[i].hash == h && view(table_[i].sym) == s) {
      return table_[i].sym;
    }
    i = (i + 1) & mask;
  }
  return kNoSym;
}

void StringInterner::reserve(std::size_t count, std::size_t bytes) {
  entries_.reserve(count);
  if (count * 10 >= table_.size() * 7) grow_table(count * 2);
  if (bytes > chunk_cap_ - chunk_used_ && bytes > kChunkBytes) {
    // One dedicated chunk sized for the whole bulk build.
    chunks_.push_back(std::make_unique<char[]>(bytes));
    chunk_used_ = 0;
    chunk_cap_ = bytes;
  }
}

void StringInterner::clear() {
  chunks_.clear();
  chunk_used_ = kChunkBytes;
  chunk_cap_ = 0;
  arena_bytes_ = 0;
  entries_.clear();
  table_.clear();
}

void StringInterner::copy_from(const StringInterner& other) {
  // Rebuild by re-appending each symbol in order: symbols and hashes are
  // preserved, the arena is compacted, and no pointer translation is
  // needed.
  entries_.reserve(other.entries_.size());
  if (!other.entries_.empty()) {
    reserve(other.entries_.size(), other.arena_bytes_);
  }
  table_.resize(table_.empty() ? 64 : table_.size());
  const std::size_t mask = table_.size() - 1;
  for (Sym sym = 0; sym < other.entries_.size(); ++sym) {
    const std::string_view s = other.view(sym);
    Entry entry;
    append_to_arena(s, entry);
    entries_.push_back(entry);
    const auto h = static_cast<std::uint32_t>(hash_bytes(s));
    std::size_t i = h & mask;
    while (table_[i].sym != kNoSym) i = (i + 1) & mask;
    table_[i] = {h, sym};
  }
}

}  // namespace stt
