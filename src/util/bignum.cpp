#include "util/bignum.hpp"

#include <cstdio>
#include <stdexcept>

namespace stt {

BigNum BigNum::from_double(double v) {
  if (v < 0) throw std::invalid_argument("BigNum: negative value");
  if (v == 0) return BigNum();
  return BigNum(std::log10(v));
}

BigNum BigNum::from_mantissa_exp(double mantissa, double exp10) {
  if (mantissa < 0) throw std::invalid_argument("BigNum: negative mantissa");
  if (mantissa == 0) return BigNum();
  return BigNum(std::log10(mantissa) + exp10);
}

BigNum BigNum::pow2(double e) { return BigNum(e * std::log10(2.0)); }

BigNum BigNum::pow(double base, double e) {
  if (base <= 0) throw std::invalid_argument("BigNum::pow: base <= 0");
  return BigNum(e * std::log10(base));
}

double BigNum::to_double() const {
  if (zero_) return 0.0;
  if (log10_ > 308.0) return HUGE_VAL;
  return std::pow(10.0, log10_);
}

BigNum BigNum::operator*(const BigNum& o) const {
  if (zero_ || o.zero_) return BigNum();
  return BigNum(log10_ + o.log10_);
}

BigNum BigNum::operator+(const BigNum& o) const {
  if (zero_) return o;
  if (o.zero_) return *this;
  // log10(a + b) = max + log10(1 + 10^(min - max))
  const double hi = std::max(log10_, o.log10_);
  const double lo = std::min(log10_, o.log10_);
  const double delta = lo - hi;  // <= 0
  // Below ~16 decimal digits of separation the smaller term vanishes.
  if (delta < -18.0) return BigNum(hi);
  return BigNum(hi + std::log10(1.0 + std::pow(10.0, delta)));
}

BigNum BigNum::powi(std::uint64_t e) const {
  if (zero_) return e == 0 ? from_double(1.0) : BigNum();
  return BigNum(log10_ * static_cast<double>(e));
}

std::partial_ordering BigNum::operator<=>(const BigNum& o) const {
  if (zero_ && o.zero_) return std::partial_ordering::equivalent;
  if (zero_) return std::partial_ordering::less;
  if (o.zero_) return std::partial_ordering::greater;
  return log10_ <=> o.log10_;
}

bool BigNum::operator==(const BigNum& o) const {
  return (*this <=> o) == std::partial_ordering::equivalent;
}

std::string BigNum::to_string(int digits) const {
  if (zero_) return "0";
  const double floor_exp = std::floor(log10_);
  double mantissa = std::pow(10.0, log10_ - floor_exp);
  auto exp = static_cast<long long>(floor_exp);
  // Rounding the mantissa can push it to 10.0; renormalize.
  char fmt[16];
  std::snprintf(fmt, sizeof(fmt), "%%.%df", digits);
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, mantissa);
  if (std::string(buf).substr(0, 2) == "10") {
    mantissa /= 10.0;
    exp += 1;
    std::snprintf(buf, sizeof(buf), fmt, mantissa);
  }
  char out[96];
  std::snprintf(out, sizeof(out), "%sE%+lld", buf, exp);
  return out;
}

}  // namespace stt
