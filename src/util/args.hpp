// Minimal command-line argument parser for the sttlock CLI tool.
//
// Supports `--name value`, `--name=value`, boolean `--flag`, and positional
// arguments. Unknown options raise; every option must be declared first so
// typos fail loudly.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <stdexcept>
#include <string>
#include <vector>

namespace stt {

struct ArgError : std::runtime_error {
  explicit ArgError(const std::string& msg) : std::runtime_error(msg) {}
};

class ArgParser {
 public:
  /// Declare a value option (e.g. "--seed"). `doc` feeds help().
  void add_option(const std::string& name, const std::string& doc,
                  std::optional<std::string> default_value = std::nullopt);
  /// Declare a boolean flag (e.g. "--pack").
  void add_flag(const std::string& name, const std::string& doc);

  /// Parse argv-style input (not including the program/subcommand name).
  void parse(const std::vector<std::string>& args);

  bool has(const std::string& name) const;
  std::string get(const std::string& name) const;
  std::string get_or(const std::string& name, const std::string& fallback) const;
  std::int64_t get_int(const std::string& name) const;
  double get_double(const std::string& name) const;
  bool flag(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }

  /// One line per declared option/flag.
  std::string help() const;

 private:
  struct Spec {
    std::string doc;
    bool is_flag = false;
    std::optional<std::string> default_value;
  };
  std::map<std::string, Spec> specs_;
  std::map<std::string, std::string> values_;
  std::vector<std::string> positional_;
};

}  // namespace stt
