#include "obs/obs.hpp"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <sstream>
#include <thread>

namespace stt::obs {

// ---------------------------------------------------------------------------
// Snapshot algebra + JSON (both build modes)
// ---------------------------------------------------------------------------

MetricsSnapshot snapshot_diff(const MetricsSnapshot& after,
                              const MetricsSnapshot& before) {
  MetricsSnapshot out = after;
  for (const auto& [name, v] : before.counters) {
    auto it = out.counters.find(name);
    if (it != out.counters.end()) it->second -= std::min(it->second, v);
  }
  for (const auto& [name, v] : before.gauges) {
    auto it = out.gauges.find(name);
    if (it != out.gauges.end()) it->second -= v;
  }
  for (const auto& [name, h] : before.histograms) {
    auto it = out.histograms.find(name);
    if (it == out.histograms.end()) continue;
    it->second.count -= std::min(it->second.count, h.count);
    it->second.sum -= std::min(it->second.sum, h.sum);
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b)
      it->second.buckets[b] -= std::min(it->second.buckets[b], h.buckets[b]);
  }
  return out;
}

void snapshot_merge(MetricsSnapshot& into, const MetricsSnapshot& from) {
  for (const auto& [name, v] : from.counters) into.counters[name] += v;
  for (const auto& [name, v] : from.gauges) into.gauges[name] += v;
  for (const auto& [name, h] : from.histograms) {
    HistogramSnapshot& dst = into.histograms[name];
    dst.count += h.count;
    dst.sum += h.sum;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b)
      dst.buckets[b] += h.buckets[b];
  }
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string metrics_json(const MetricsSnapshot& snap, int indent) {
  const std::string pad(static_cast<std::size_t>(std::max(indent, 0)), ' ');
  std::ostringstream os;
  os << pad << "{\n";
  os << pad << "  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "},\n";
  os << pad << "  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    int last = -1;
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b)
      if (h.buckets[b] != 0) last = b;
    os << (first ? "" : ",") << "\n"
       << pad << "    \"" << json_escape(name) << "\": {\"count\": " << h.count
       << ", \"sum\": " << h.sum << ", \"buckets\": [";
    for (int b = 0; b <= last; ++b) os << (b ? "," : "") << h.buckets[b];
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n" + pad + "  ") << "}\n";
  os << pad << "}";
  return os.str();
}

#if !defined(STTLOCK_OBS_DISABLED)

// ---------------------------------------------------------------------------
// Metrics
// ---------------------------------------------------------------------------

namespace detail {
unsigned shard_index() noexcept {
  static std::atomic<unsigned> next{0};
  thread_local const unsigned idx = next.fetch_add(1, std::memory_order_relaxed);
  return idx;
}

thread_local CaptureFrame* t_capture = nullptr;

void capture_add(const Counter* c, std::uint64_t v) {
  t_capture->counters[c] += v;
}

void capture_record(const Histogram* h, std::uint64_t v) {
  HistogramSnapshot& s = t_capture->histograms[h];
  s.count += 1;
  s.sum += v;
  s.buckets[static_cast<std::size_t>(std::bit_width(v))] += 1;
}
}  // namespace detail

void Histogram::record(std::uint64_t v) noexcept {
  Shard& s = shards_[detail::shard_index() % kShards];
  s.count.fetch_add(1, std::memory_order_relaxed);
  s.sum.fetch_add(v, std::memory_order_relaxed);
  s.buckets[static_cast<std::size_t>(std::bit_width(v))].fetch_add(
      1, std::memory_order_relaxed);
  if (detail::t_capture != nullptr) detail::capture_record(this, v);
}

ScopedCapture::ScopedCapture() : prev_(detail::t_capture), active_(true) {
  detail::t_capture = &frame_;
}

ScopedCapture::~ScopedCapture() {
  if (active_) detail::t_capture = prev_;
}

MetricsSnapshot ScopedCapture::stable_delta() {
  if (active_) {
    detail::t_capture = prev_;
    active_ = false;
  }
  return Metrics::global().attribute_stable(frame_);
}

HistogramSnapshot Histogram::snapshot() const noexcept {
  HistogramSnapshot out;
  for (const auto& s : shards_) {
    out.count += s.count.load(std::memory_order_relaxed);
    out.sum += s.sum.load(std::memory_order_relaxed);
    for (int b = 0; b < HistogramSnapshot::kBuckets; ++b)
      out.buckets[b] += s.buckets[b].load(std::memory_order_relaxed);
  }
  return out;
}

void Histogram::reset() noexcept {
  for (auto& s : shards_) {
    s.count.store(0, std::memory_order_relaxed);
    s.sum.store(0, std::memory_order_relaxed);
    for (auto& b : s.buckets) b.store(0, std::memory_order_relaxed);
  }
}

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

Counter& Metrics::counter(std::string_view name, bool stable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name),
                           Entry<Counter>{std::make_unique<Counter>(), stable})
             .first;
  }
  return *it->second.instrument;
}

Gauge& Metrics::gauge(std::string_view name, bool stable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name),
                         Entry<Gauge>{std::make_unique<Gauge>(), stable})
             .first;
  }
  return *it->second.instrument;
}

Histogram& Metrics::histogram(std::string_view name, bool stable) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      Entry<Histogram>{std::make_unique<Histogram>(), stable})
             .first;
  }
  return *it->second.instrument;
}

std::uint64_t Metrics::counter_value(std::string_view name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second.instrument->value();
}

MetricsSnapshot Metrics::snapshot(bool include_runtime) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, e] : counters_)
    if (e.stable || include_runtime) out.counters[name] = e.instrument->value();
  for (const auto& [name, e] : gauges_)
    if (e.stable || include_runtime) out.gauges[name] = e.instrument->value();
  for (const auto& [name, e] : histograms_)
    if (e.stable || include_runtime)
      out.histograms[name] = e.instrument->snapshot();
  return out;
}

MetricsSnapshot Metrics::attribute_stable(
    const detail::CaptureFrame& frame) const {
  std::lock_guard<std::mutex> lock(mu_);
  MetricsSnapshot out;
  for (const auto& [name, e] : counters_) {
    if (!e.stable) continue;
    auto it = frame.counters.find(e.instrument.get());
    if (it != frame.counters.end() && it->second != 0)
      out.counters[name] = it->second;
  }
  for (const auto& [name, e] : histograms_) {
    if (!e.stable) continue;
    auto it = frame.histograms.find(e.instrument.get());
    if (it != frame.histograms.end() && it->second.count != 0)
      out.histograms[name] = it->second;
  }
  return out;
}

void Metrics::reset() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [name, e] : counters_) e.instrument->reset();
  for (auto& [name, e] : gauges_) e.instrument->reset();
  for (auto& [name, e] : histograms_) e.instrument->reset();
}

// ---------------------------------------------------------------------------
// Tracing
// ---------------------------------------------------------------------------

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder r;
  return r;
}

void TraceRecorder::start() {
  std::lock_guard<std::mutex> lock(registry_mu_);
  // Open a new epoch: previously buffered events become stale and are
  // dropped lazily (buffers carry the epoch they were cleared for).
  epoch_.fetch_add(1, std::memory_order_relaxed);
  epoch_start_ns_.store(std::chrono::duration_cast<std::chrono::nanoseconds>(
                            std::chrono::steady_clock::now().time_since_epoch())
                            .count(),
                        std::memory_order_relaxed);
  for (auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->mu);
    buf->events.clear();
    buf->epoch = epoch_.load(std::memory_order_relaxed);
  }
  active_.store(true, std::memory_order_relaxed);
}

std::int64_t TraceRecorder::now_us() const {
  const std::int64_t now_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count();
  return (now_ns - epoch_start_ns_.load(std::memory_order_relaxed)) / 1000;
}

TraceRecorder::Buffer& TraceRecorder::local_buffer() {
  thread_local std::shared_ptr<Buffer> local;
  if (!local) {
    local = std::make_shared<Buffer>();
    std::lock_guard<std::mutex> lock(registry_mu_);
    local->tid = next_tid_++;
    local->epoch = epoch_.load(std::memory_order_relaxed);
    buffers_.push_back(local);
  }
  return *local;
}

std::size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(registry_mu_);
  const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
  std::size_t n = 0;
  for (const auto& buf : buffers_) {
    std::lock_guard<std::mutex> blk(buf->mu);
    if (buf->epoch == epoch) n += buf->events.size();
  }
  return n;
}

std::string TraceRecorder::chrome_json() const {
  std::vector<Event> events;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    const std::uint64_t epoch = epoch_.load(std::memory_order_relaxed);
    for (const auto& buf : buffers_) {
      std::lock_guard<std::mutex> blk(buf->mu);
      if (buf->epoch != epoch) continue;
      events.insert(events.end(), buf->events.begin(), buf->events.end());
    }
  }
  std::sort(events.begin(), events.end(), [](const Event& a, const Event& b) {
    if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
    if (a.tid != b.tid) return a.tid < b.tid;
    return a.id < b.id;
  });
  std::ostringstream os;
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const Event& e : events) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "{\"name\":\"" << json_escape(e.name) << "\",\"cat\":\"" << e.cat
       << "\",\"ph\":\"X\",\"ts\":" << e.ts_us << ",\"dur\":" << e.dur_us
       << ",\"pid\":1,\"tid\":" << e.tid << ",\"args\":{\"id\":" << e.id
       << "}}";
  }
  os << (first ? "" : "\n") << "],\"displayTimeUnit\":\"ms\"}\n";
  return os.str();
}

// ---------------------------------------------------------------------------
// Span
// ---------------------------------------------------------------------------

namespace {
std::atomic<std::uint64_t> g_next_span_id{1};
}  // namespace

Span::Span(const char* cat, const char* lit, const std::string* dyn) {
  TraceRecorder& rec = TraceRecorder::global();
  if (!rec.active()) return;  // the idle-path cost: one relaxed load
  cat_ = cat;
  name_ = dyn ? *dyn : std::string(lit);
  id_ = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  epoch_ = rec.epoch_.load(std::memory_order_relaxed);
  start_us_ = rec.now_us();
}

Span::~Span() {
  if (start_us_ < 0) return;
  TraceRecorder& rec = TraceRecorder::global();
  const std::int64_t end_us = rec.now_us();
  TraceRecorder::Buffer& buf = rec.local_buffer();
  std::lock_guard<std::mutex> lock(buf.mu);
  if (buf.epoch != epoch_) return;  // recorder restarted mid-span
  buf.events.push_back(
      TraceRecorder::Event{std::move(name_), cat_, id_, start_us_,
                           std::max<std::int64_t>(end_us - start_us_, 0),
                           buf.tid});
}

#else  // STTLOCK_OBS_DISABLED

Metrics& Metrics::global() {
  static Metrics m;
  return m;
}

TraceRecorder& TraceRecorder::global() {
  static TraceRecorder r;
  return r;
}

#endif  // STTLOCK_OBS_DISABLED

}  // namespace stt::obs
