// Observability: tracing spans, metrics, and profiling hooks.
//
// Two independent facilities share this header:
//
//  * Tracing. `Span` is a scoped RAII timer; when the global
//    `TraceRecorder` is active, the span's lifetime is recorded into a
//    thread-local buffer and can be exported as Chrome `chrome://tracing`
//    JSON (load the file via chrome://tracing or https://ui.perfetto.dev).
//    When the recorder is idle a span costs one relaxed atomic load, so
//    the `STTLOCK_SPAN(...)` hooks stay in release builds.
//
//  * Metrics. `Metrics` is a registry of named counters/gauges/histograms.
//    Counters are sharded across cache lines so hot paths (simulation
//    words, oracle queries) can bump them from many threads without
//    contention. A snapshot is a plain sorted map; snapshots of *stable*
//    instruments are byte-identical across `--jobs` counts, mirroring the
//    campaign determinism contract, while *runtime* instruments (steal
//    counts, queue waits) are scheduling-dependent and are kept out of
//    deterministic output.
//
// Configure with -DENABLE_OBS=OFF to compile the whole subsystem down to
// no-ops: `STTLOCK_SPAN` expands to nothing and the classes below become
// empty stubs with identical signatures, so call sites never #ifdef.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace stt::obs {

#if defined(STTLOCK_OBS_DISABLED)
inline constexpr bool kEnabled = false;
#else
inline constexpr bool kEnabled = true;
#endif

// ---------------------------------------------------------------------------
// Snapshot types. These are real in both build modes so reporting code and
// tests compile unchanged; with ENABLE_OBS=OFF every snapshot is empty.
// ---------------------------------------------------------------------------

/// Power-of-two bucketed histogram: bucket b counts values v with
/// bit_width(v) == b, i.e. bucket 0 holds zeros, bucket b>0 holds
/// [2^(b-1), 2^b). No min/max fields — everything here is additive, so
/// snapshots can be diffed and merged exactly.
struct HistogramSnapshot {
  static constexpr int kBuckets = 65;  // bit_width of a uint64 is 0..64
  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::array<std::uint64_t, kBuckets> buckets{};
};

struct MetricsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, std::int64_t> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  bool empty() const {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// after - before, element-wise; instruments absent from `before` pass
/// through. Gauges subtract too (they are deltas of a level, which is only
/// meaningful for monotone gauges — the campaign does not diff gauges).
MetricsSnapshot snapshot_diff(const MetricsSnapshot& after,
                              const MetricsSnapshot& before);

/// into += from, element-wise. Addition is commutative and associative, so
/// merging per-thread or per-process snapshots in any order yields the same
/// result — this is what makes stable metrics `--jobs`-independent.
void snapshot_merge(MetricsSnapshot& into, const MetricsSnapshot& from);

/// Deterministic JSON rendering (sorted keys, trimmed histogram buckets).
/// `indent` prefixes every line with that many spaces (for embedding).
std::string metrics_json(const MetricsSnapshot& snap, int indent = 0);

#if !defined(STTLOCK_OBS_DISABLED)

// ---------------------------------------------------------------------------
// Metrics (enabled build)
// ---------------------------------------------------------------------------

class Counter;
class Histogram;

namespace detail {
/// Small per-thread index used to spread writers across instrument shards;
/// assigned round-robin on first use, then a plain thread_local load.
unsigned shard_index() noexcept;

/// Accumulator behind `ScopedCapture`: per-instrument sums keyed by the
/// instrument's address (instruments are never deallocated, so the pointer
/// is a stable identity). Names are resolved only once at capture end, via
/// `Metrics::attribute_stable`, keeping the hot-path hook allocation-light
/// and lookup-free.
struct CaptureFrame {
  std::map<const Counter*, std::uint64_t> counters;
  std::map<const Histogram*, HistogramSnapshot> histograms;
};

/// Innermost active capture frame of this thread (nullptr = none). Checked
/// with a plain thread_local load on every Counter::add / Histogram::record,
/// so idle cost is one predictable branch.
extern thread_local CaptureFrame* t_capture;

void capture_add(const Counter* c, std::uint64_t v);
void capture_record(const Histogram* h, std::uint64_t v);
}  // namespace detail

/// Monotone event counter, sharded to keep concurrent writers off each
/// other's cache lines. `add` is a single relaxed fetch_add.
class Counter {
 public:
  void add(std::uint64_t v = 1) noexcept {
    shards_[detail::shard_index() % kShards].n.fetch_add(
        v, std::memory_order_relaxed);
    if (detail::t_capture != nullptr) detail::capture_add(this, v);
  }
  std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& s : shards_) total += s.n.load(std::memory_order_relaxed);
    return total;
  }

 private:
  static constexpr int kShards = 16;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> n{0};
  };
  friend class Metrics;
  void reset() noexcept {
    for (auto& s : shards_) s.n.store(0, std::memory_order_relaxed);
  }
  std::array<Shard, kShards> shards_{};
};

/// Instantaneous level (last-writer-wins `set`, plus relative `add`).
class Gauge {
 public:
  void set(std::int64_t v) noexcept { v_.store(v, std::memory_order_relaxed); }
  void add(std::int64_t v) noexcept { v_.fetch_add(v, std::memory_order_relaxed); }
  std::int64_t value() const noexcept { return v_.load(std::memory_order_relaxed); }

 private:
  friend class Metrics;
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }
  std::atomic<std::int64_t> v_{0};
};

/// Power-of-two bucketed histogram; `record` is two relaxed adds on a
/// thread-hashed shard.
class Histogram {
 public:
  void record(std::uint64_t v) noexcept;
  HistogramSnapshot snapshot() const noexcept;

 private:
  static constexpr int kShards = 8;
  struct alignas(64) Shard {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, HistogramSnapshot::kBuckets> buckets{};
  };
  friend class Metrics;
  void reset() noexcept;
  std::array<Shard, kShards> shards_{};
};

/// Registry of named instruments. Lookup takes a mutex, so hot call sites
/// should cache the returned reference (instruments are never deallocated
/// or invalidated; `reset()` zeroes them in place):
///
///   static obs::Counter& words = obs::Metrics::global().counter("sim.words");
///   words.add(64);
///
/// `stable` tags whether the instrument's value is deterministic across
/// `--jobs` counts; `snapshot(/*include_runtime=*/false)` returns only the
/// stable subset, which is what deterministic campaign output embeds.
class Metrics {
 public:
  static Metrics& global();

  Counter& counter(std::string_view name, bool stable = true);
  Gauge& gauge(std::string_view name, bool stable = false);
  Histogram& histogram(std::string_view name, bool stable = true);

  /// Current value of a counter, or 0 when no such counter exists yet.
  /// Non-creating, for read-side consumers such as ProgressMeter.
  std::uint64_t counter_value(std::string_view name) const;

  MetricsSnapshot snapshot(bool include_runtime = true) const;

  /// Resolve a capture frame's per-instrument sums to names, keeping only
  /// *stable* instruments with a nonzero delta. The result is exactly what
  /// the capturing thread added while the frame was installed — other
  /// threads' concurrent bumps never appear, which is what makes per-stage
  /// deltas deterministic for the campaign's single-threaded stage bodies.
  MetricsSnapshot attribute_stable(const detail::CaptureFrame& frame) const;

  /// Zero every registered instrument in place (references stay valid).
  void reset();

 private:
  template <typename T>
  struct Entry {
    std::unique_ptr<T> instrument;
    bool stable = false;
  };
  mutable std::mutex mu_;
  std::map<std::string, Entry<Counter>, std::less<>> counters_;
  std::map<std::string, Entry<Gauge>, std::less<>> gauges_;
  std::map<std::string, Entry<Histogram>, std::less<>> histograms_;
};

/// RAII capture of every stable-instrument bump made by *this thread* while
/// the object is alive. The campaign driver wraps each grid-stage body
/// (circuit generation, defense, attack) in one of these; the resulting
/// deltas are additive, so `report.obs` is their sum with each stage counted
/// exactly once — reproducible across --jobs, resume, and shard merges.
///
/// Captures shadow, not nest: while an inner capture is installed the outer
/// one sees nothing. Stage bodies never nest captures, so this never
/// matters in practice, and shadowing keeps the hook a single pointer test.
class ScopedCapture {
 public:
  ScopedCapture();
  ~ScopedCapture();
  ScopedCapture(const ScopedCapture&) = delete;
  ScopedCapture& operator=(const ScopedCapture&) = delete;

  /// Deactivate the capture and resolve the accumulated deltas against the
  /// global registry (stable instruments only, zero deltas omitted).
  /// Idempotent; call at most once per interesting stage.
  MetricsSnapshot stable_delta();

 private:
  detail::CaptureFrame frame_;
  detail::CaptureFrame* prev_ = nullptr;
  bool active_ = false;
};

// ---------------------------------------------------------------------------
// Tracing (enabled build)
// ---------------------------------------------------------------------------

/// Collects completed spans into per-thread buffers while active.
/// `start()` clears previous events and opens a new epoch; `stop()` freezes
/// collection; `chrome_json()` renders everything gathered so far as a
/// Chrome trace-event document (complete events, `"ph":"X"`).
class TraceRecorder {
 public:
  static TraceRecorder& global();

  void start();
  void stop() { active_.store(false, std::memory_order_relaxed); }
  bool active() const noexcept {
    return active_.load(std::memory_order_relaxed);
  }
  std::string chrome_json() const;
  std::size_t event_count() const;

 private:
  friend class Span;
  struct Event {
    std::string name;
    const char* cat;
    std::uint64_t id;
    std::int64_t ts_us;
    std::int64_t dur_us;
    int tid;
  };
  struct Buffer {
    std::mutex mu;
    std::vector<Event> events;
    int tid = 0;
    std::uint64_t epoch = 0;
  };
  Buffer& local_buffer();
  std::int64_t now_us() const;

  std::atomic<bool> active_{false};
  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::int64_t> epoch_start_ns_{0};
  mutable std::mutex registry_mu_;
  std::vector<std::shared_ptr<Buffer>> buffers_;
  int next_tid_ = 1;
};

/// Scoped trace span. Construction when the recorder is idle is a single
/// relaxed load (the name argument is not copied); when active, the span's
/// [start, end) interval lands in the current thread's buffer at
/// destruction. Spans carry a process-unique id so results can reference
/// their root span (`AttackBase::span_id`).
class Span {
 public:
  Span(const char* cat, const char* name) : Span(cat, name, nullptr) {}
  Span(const char* cat, const std::string& name) : Span(cat, nullptr, &name) {}
  ~Span();
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Unique id of this span, or 0 when the recorder was idle at creation.
  std::uint64_t id() const noexcept { return id_; }

 private:
  Span(const char* cat, const char* lit, const std::string* dyn);
  const char* cat_ = nullptr;
  std::string name_;
  std::int64_t start_us_ = -1;  // -1 = recorder idle, span inert
  std::uint64_t id_ = 0;
  std::uint64_t epoch_ = 0;
};

#else  // STTLOCK_OBS_DISABLED -------------------------------------------------

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void set(std::int64_t) noexcept {}
  void add(std::int64_t) noexcept {}
  std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  HistogramSnapshot snapshot() const noexcept { return {}; }
};

class Metrics {
 public:
  static Metrics& global();
  Counter& counter(std::string_view, bool = true) { return counter_; }
  Gauge& gauge(std::string_view, bool = false) { return gauge_; }
  Histogram& histogram(std::string_view, bool = true) { return histogram_; }
  std::uint64_t counter_value(std::string_view) const { return 0; }
  MetricsSnapshot snapshot(bool = true) const { return {}; }
  void reset() {}

 private:
  Counter counter_;
  Gauge gauge_;
  Histogram histogram_;
};

class ScopedCapture {
 public:
  MetricsSnapshot stable_delta() { return {}; }
};

class TraceRecorder {
 public:
  static TraceRecorder& global();
  void start() {}
  void stop() {}
  bool active() const noexcept { return false; }
  std::string chrome_json() const { return "{\"traceEvents\":[]}\n"; }
  std::size_t event_count() const { return 0; }
};

class Span {
 public:
  Span(const char*, const char*) {}
  Span(const char*, const std::string&) {}
  std::uint64_t id() const noexcept { return 0; }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
};

#endif  // STTLOCK_OBS_DISABLED

}  // namespace stt::obs

// Scoped-span statement macro. Usage:
//
//   STTLOCK_SPAN("flow-stage", "selection");          // literal name
//   STTLOCK_SPAN("job", record.name);                 // dynamic name
//
// Expands to a block-scoped obs::Span with a line-unique identifier; with
// ENABLE_OBS=OFF it expands to nothing (arguments are not evaluated).
#define STTLOCK_OBS_CAT2(a, b) a##b
#define STTLOCK_OBS_CAT(a, b) STTLOCK_OBS_CAT2(a, b)
#if defined(STTLOCK_OBS_DISABLED)
#define STTLOCK_SPAN(cat, name) \
  do {                          \
  } while (0)
#else
#define STTLOCK_SPAN(cat, name) \
  ::stt::obs::Span STTLOCK_OBS_CAT(stt_obs_span_, __LINE__)((cat), (name))
#endif
