// ISCAS'89 benchmark replicas.
//
// The paper evaluates on twelve ISCAS'89 netlists synthesized with a
// commercial tool we cannot ship. What the selection algorithms and the
// overhead/security trends actually consume is the circuits' *statistics*:
// PI/PO/flip-flop counts, logic-gate count (Table I's "size" column), gate
// mix, and logic depth. This module provides
//
//  * `iscas89_profiles()` — the published statistics of the twelve
//    benchmarks used in Table I (gate counts exactly as the paper reports
//    them, interface counts from the standard ISCAS'89 distribution);
//  * `generate_circuit()` — a seeded, deterministic generator producing a
//    connected sequential netlist matched to a profile: levelized DAG with
//    an ISCAS-like gate mix (NAND/NOR heavy, ~20% inverters), flip-flop
//    state loops, every cell live (reaches an output) and driven;
//  * `embedded_netlist()` — genuine small ISCAS'89 circuits (s27) carried
//    verbatim for exact-value unit tests.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace stt {

struct CircuitProfile {
  std::string name;
  int n_pi = 0;
  int n_po = 0;
  int n_ff = 0;
  int n_gates = 0;  ///< combinational logic cells, the paper's "size"
  int depth = 0;    ///< target combinational levels
  /// Fraction of multi-input gates emitted as configured LUT cells
  /// (ITC'99-class hybrid profiles). 0 keeps the generator's draw sequence
  /// exactly as it was for the pure-CMOS ISCAS'89 profiles.
  double lut_frac = 0.0;
};

/// The twelve benchmarks of Table I, in the paper's order.
const std::vector<CircuitProfile>& iscas89_profiles();

/// ITC'99-class scale profiles (b14..b19 statistics from the standard
/// distribution) plus the synthetic scale-up "b19_x4" (~1M gates), all
/// LUT-heavy via `lut_frac`. These feed the million-gate load/lint
/// throughput benches; they are far beyond the paper's Table I sizes.
const std::vector<CircuitProfile>& itc99_profiles();

/// Lookup by name ("s641", "b19_x4", ...) across both profile families;
/// nullopt if unknown.
std::optional<CircuitProfile> find_profile(const std::string& name);

/// Deterministically generate a replica circuit for the profile. The same
/// (profile, seed) pair always yields the same netlist.
Netlist generate_circuit(const CircuitProfile& profile, std::uint64_t seed);

/// Names of the genuine embedded circuits.
std::vector<std::string> embedded_names();

/// Parse an embedded genuine ISCAS'89 circuit; throws on unknown name.
Netlist embedded_netlist(const std::string& name);

}  // namespace stt
