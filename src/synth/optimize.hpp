// Netlist cleanup/optimization passes — the logic-synthesis half of the
// paper's Fig. 2 flow, in miniature.
//
// The passes run before gate selection (synthesized netlists from outside
// sources arrive with redundancy) and after complex-function packing
// (absorption orphans logic). All passes are functionality-preserving on
// the scan view:
//
//  * constant propagation: gates with constant inputs fold (AND(x,0)->0,
//    OR(x,0)->BUF(x), LUT cofactoring, constant-D flip-flops stay — state
//    semantics differ in the first cycle);
//  * buffer/double-inverter sweeping: BUF(x) readers rewire to x,
//    NOT(NOT(x)) readers rewire to x;
//  * structural hashing: combinational cells with identical kind, fan-ins
//    and (for LUTs) mask merge into one;
//  * dead-logic removal (core/packing's strip_dead_logic) as the final
//    compaction.
#pragma once

#include "netlist/netlist.hpp"

namespace stt {

struct OptimizeStats {
  int constants_folded = 0;
  int buffers_swept = 0;
  int inverter_pairs = 0;
  int duplicates_merged = 0;
  std::size_t cells_before = 0;
  std::size_t cells_after = 0;
};

/// Run all passes to a fixed point and return the compacted netlist.
Netlist optimize_netlist(const Netlist& nl, OptimizeStats* stats = nullptr);

}  // namespace stt
