#include "synth/optimize.hpp"

#include <map>
#include <tuple>

#include "netlist/cleanup.hpp"

namespace stt {

namespace {

// Truth mask of a combinational cell with a function.
std::uint64_t cell_mask(const Cell& c) {
  switch (c.kind) {
    case CellKind::kConst0: return 0;
    case CellKind::kConst1: return 1;
    case CellKind::kLut: return c.lut_mask & full_mask(c.fanin_count());
    default: return gate_truth_mask(c.kind, c.fanin_count());
  }
}

// Classify a mask back into a named cell kind where possible.
CellKind classify(std::uint64_t mask, int fanin) {
  if (fanin == 0) return mask ? CellKind::kConst1 : CellKind::kConst0;
  if (fanin == 1) {
    if ((mask & 0b11ull) == 0b10ull) return CellKind::kBuf;
    if ((mask & 0b11ull) == 0b01ull) return CellKind::kNot;
    return CellKind::kLut;  // constant-of-one-input: handled by cofactor
  }
  for (const CellKind kind :
       {CellKind::kAnd, CellKind::kNand, CellKind::kOr, CellKind::kNor,
        CellKind::kXor, CellKind::kXnor}) {
    if (gate_truth_mask(kind, fanin) == (mask & full_mask(fanin))) return kind;
  }
  return CellKind::kLut;
}

// Cofactor `mask` over `fanin` inputs with input `pos` fixed to `value`.
std::uint64_t cofactor(std::uint64_t mask, int fanin, int pos, bool value) {
  std::uint64_t out = 0;
  std::uint32_t new_row = 0;
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    if (((row >> pos) & 1u) != static_cast<std::uint32_t>(value)) continue;
    // Drop bit `pos` from the row index.
    if ((mask >> row) & 1ull) out |= (1ull << new_row);
    ++new_row;
  }
  return out;
}

// Drop input `pos` when the function ignores it.
bool ignores_input(std::uint64_t mask, int fanin, int pos) {
  return cofactor(mask, fanin, pos, false) == cofactor(mask, fanin, pos, true);
}

// Collapse duplicate inputs i == j (i < j): drop input j, keeping only the
// rows where the two bits agree.
std::uint64_t merge_equal_inputs(std::uint64_t mask, int fanin, int i,
                                 int j) {
  std::uint64_t out = 0;
  for (std::uint32_t new_row = 0; new_row < num_rows(fanin - 1); ++new_row) {
    // Insert bit j equal to bit i.
    const std::uint32_t low = new_row & ((1u << j) - 1u);
    const std::uint32_t high = (new_row >> j) << (j + 1);
    const std::uint32_t bit_i = (new_row >> i) & 1u;
    const std::uint32_t old_row = low | high | (bit_i << j);
    if ((mask >> old_row) & 1ull) out |= (1ull << new_row);
  }
  return out;
}

bool is_const_kind(CellKind k) {
  return k == CellKind::kConst0 || k == CellKind::kConst1;
}

// One constant-propagation / function-simplification sweep.
int fold_constants(Netlist& nl) {
  int folded = 0;
  for (const CellId id : nl.topo_order()) {
    Cell& c = nl.cell(id);
    if (!is_combinational(c.kind) || is_const_kind(c.kind)) continue;
    if (c.fanin_count() == 0 || c.fanin_count() > kMaxLutInputs) continue;

    std::uint64_t mask = cell_mask(c);
    std::vector<CellId> fanins(c.fanins.begin(), c.fanins.end());
    bool changed = false;

    // Collapse duplicate fan-ins first (XOR(x, x) etc.), then cofactor out
    // constant and ignored inputs (right-to-left so positions stay valid).
    for (int j = static_cast<int>(fanins.size()) - 1; j >= 1; --j) {
      for (int i = 0; i < j; ++i) {
        if (fanins[i] == fanins[j]) {
          mask = merge_equal_inputs(mask, static_cast<int>(fanins.size()),
                                    i, j);
          fanins.erase(fanins.begin() + j);
          changed = true;
          break;
        }
      }
    }
    for (int i = static_cast<int>(fanins.size()) - 1; i >= 0; --i) {
      const CellKind dk = nl.cell(fanins[i]).kind;
      const int k = static_cast<int>(fanins.size());
      if (is_const_kind(dk)) {
        mask = cofactor(mask, k, i, dk == CellKind::kConst1);
        fanins.erase(fanins.begin() + i);
        changed = true;
      } else if (ignores_input(mask, k, i)) {
        mask = cofactor(mask, k, i, false);
        fanins.erase(fanins.begin() + i);
        changed = true;
      }
    }
    if (!changed) continue;
    ++folded;

    const int k = static_cast<int>(fanins.size());
    if (k == 0) {
      nl.connect(id, {});
      c.kind = (mask & 1ull) ? CellKind::kConst1 : CellKind::kConst0;
      c.lut_mask = 0;
      continue;
    }
    const CellKind kind = classify(mask, k);
    nl.connect(id, std::move(fanins));
    c.kind = kind;
    c.lut_mask = (kind == CellKind::kLut) ? (mask & full_mask(k)) : 0;
  }
  return folded;
}

// Rewire readers of buffers (and of double inverters) to the source signal.
void sweep_buffers(Netlist& nl, int* buffers, int* inv_pairs) {
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (c.fanouts.empty()) continue;  // nothing to rewire (or already dead)
    CellId target = kNullCell;
    if (c.kind == CellKind::kBuf) {
      target = c.fanins[0];
      ++*buffers;
    } else if (c.kind == CellKind::kNot &&
               nl.cell(c.fanins[0]).kind == CellKind::kNot) {
      target = nl.cell(c.fanins[0]).fanins[0];
      ++*inv_pairs;
    }
    if (target == kNullCell) continue;
    // Rewire every reader slot that consumes `id`.
    const std::vector<CellId> readers(c.fanouts.begin(),
                                      c.fanouts.end());  // copy: mutation below
    for (const CellId reader : readers) {
      Cell& rc = nl.cell(reader);
      for (int slot = 0; slot < rc.fanin_count(); ++slot) {
        if (rc.fanins[slot] == id) nl.replace_fanin(reader, slot, target);
      }
    }
    // If it drove an output, it must survive; the counter still reflects
    // the rewiring of its readers.
  }
}

// Merge structurally identical combinational cells.
int merge_duplicates(Netlist& nl) {
  int merged = 0;
  std::map<std::tuple<CellKind, std::vector<CellId>, std::uint64_t>, CellId>
      canon;
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (!is_combinational(c.kind) || is_const_kind(c.kind)) continue;
    if (c.is_output) continue;  // keep named outputs stable
    if (c.fanouts.empty()) continue;  // dead: nothing to merge
    const auto key = std::make_tuple(
        c.kind, std::vector<CellId>(c.fanins.begin(), c.fanins.end()),
        c.kind == CellKind::kLut ? c.lut_mask : 0ull);
    const auto [it, inserted] = canon.emplace(key, id);
    if (inserted) continue;
    const CellId rep = it->second;
    const std::vector<CellId> readers(c.fanouts.begin(), c.fanouts.end());
    for (const CellId reader : readers) {
      Cell& rc = nl.cell(reader);
      for (int slot = 0; slot < rc.fanin_count(); ++slot) {
        if (rc.fanins[slot] == id) nl.replace_fanin(reader, slot, rep);
      }
    }
    ++merged;
  }
  return merged;
}

}  // namespace

Netlist optimize_netlist(const Netlist& input, OptimizeStats* stats) {
  OptimizeStats local;
  local.cells_before = input.size();
  Netlist nl = input;

  for (int iteration = 0; iteration < 8; ++iteration) {
    const int folded = fold_constants(nl);
    int buffers = 0;
    int pairs = 0;
    sweep_buffers(nl, &buffers, &pairs);
    const int merged = merge_duplicates(nl);
    local.constants_folded += folded;
    local.buffers_swept += buffers;
    local.inverter_pairs += pairs;
    local.duplicates_merged += merged;
    if (folded + buffers + pairs + merged == 0) break;
  }

  Netlist out = strip_dead_logic(nl);
  local.cells_after = out.size();
  if (stats) *stats = local;
  return out;
}

}  // namespace stt
