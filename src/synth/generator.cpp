#include "synth/generator.hpp"

#include <algorithm>
#include <charconv>
#include <stdexcept>

#include "io/bench_io.hpp"
#include "util/rng.hpp"

namespace stt {

const std::vector<CircuitProfile>& iscas89_profiles() {
  // Gate counts ("size") exactly as in the paper's Table I; interface and
  // flip-flop counts from the standard ISCAS'89 distribution; depth targets
  // chosen in the 15-40 level range typical for these circuits.
  static const std::vector<CircuitProfile> kProfiles = {
      {"s641", 35, 24, 19, 287, 30},
      {"s820", 18, 19, 5, 289, 15},
      {"s832", 18, 19, 5, 379, 15},
      {"s953", 16, 23, 29, 395, 18},
      {"s1196", 14, 14, 18, 508, 24},
      {"s1238", 14, 14, 18, 529, 22},
      {"s1488", 8, 19, 6, 657, 17},
      {"s5378a", 35, 49, 179, 2779, 25},
      {"s9234a", 36, 39, 211, 5597, 38},
      {"s13207", 62, 152, 638, 7951, 32},
      {"s15850a", 77, 150, 534, 9772, 40},
      {"s38584", 38, 304, 1426, 19253, 35},
  };
  return kProfiles;
}

const std::vector<CircuitProfile>& itc99_profiles() {
  // Interface/flip-flop/gate statistics approximating the standard ITC'99
  // distribution (b14..b19), plus "b19_x4", a synthetic 4x scale-up of b19
  // sized at 2^20 logic cells for the million-gate load/lint throughput
  // benches. All carry a nonzero `lut_frac` so the generated fabric is
  // LUT-heavy, exercising the hybrid STT-CMOS cell paths at scale.
  static const std::vector<CircuitProfile> kProfiles = {
      {"b14", 32, 54, 245, 9767, 40, 0.10},
      {"b15", 36, 70, 449, 8367, 40, 0.10},
      {"b17", 37, 97, 1415, 30777, 45, 0.10},
      {"b18", 36, 23, 3320, 111241, 50, 0.10},
      {"b19", 24, 30, 6642, 224624, 55, 0.10},
      {"b19_x4", 48, 60, 13284, 1048576, 60, 0.12},
  };
  return kProfiles;
}

std::optional<CircuitProfile> find_profile(const std::string& name) {
  for (const auto& p : iscas89_profiles()) {
    if (p.name == name) return p;
  }
  for (const auto& p : itc99_profiles()) {
    if (p.name == name) return p;
  }
  return std::nullopt;
}

namespace {

CellKind pick_gate_kind(Rng& rng) {
  // NAND/NOR-heavy mix, matching synthesized ISCAS'89 netlists.
  const double r = rng.uniform();
  if (r < 0.28) return CellKind::kNand;
  if (r < 0.54) return CellKind::kNor;
  if (r < 0.72) return CellKind::kAnd;
  if (r < 0.86) return CellKind::kOr;
  if (r < 0.94) return CellKind::kXor;
  return CellKind::kXnor;
}

int pick_fanin_count(Rng& rng) {
  const double r = rng.uniform();
  if (r < 0.22) return 1;
  if (r < 0.80) return 2;
  if (r < 0.93) return 3;
  return 4;
}

}  // namespace

Netlist generate_circuit(const CircuitProfile& profile, std::uint64_t seed) {
  if (profile.n_pi < 1 || profile.n_gates < 4 || profile.depth < 2) {
    throw std::invalid_argument("generate_circuit: degenerate profile");
  }
  Rng rng(seed ^ 0x5717c0de00000000ull);
  Netlist nl(profile.name);
  {
    // Bulk-build hint: one arena chunk for names, exact-ish pools for edges.
    const std::size_t cells = static_cast<std::size_t>(profile.n_pi) +
                              static_cast<std::size_t>(profile.n_ff) +
                              static_cast<std::size_t>(profile.n_gates);
    nl.reserve(cells, 3 * static_cast<std::size_t>(profile.n_gates) +
                          static_cast<std::size_t>(profile.n_ff),
               12 * cells);
  }
  // Allocation-free cell naming ("I<i>" / "R<i>" / "G<i>"); the interner
  // copies the bytes, so one scratch buffer serves every cell.
  char name_buf[16];
  const auto tag = [&name_buf](char prefix, int idx) {
    name_buf[0] = prefix;
    const auto [ptr, ec] =
        std::to_chars(name_buf + 1, name_buf + sizeof(name_buf), idx);
    (void)ec;
    return std::string_view(name_buf,
                            static_cast<std::size_t>(ptr - name_buf));
  };

  // Level 0 sources: primary inputs and flip-flop outputs.
  std::vector<std::vector<CellId>> by_level(profile.depth + 1);
  std::vector<CellId> ffs;
  for (int i = 0; i < profile.n_pi; ++i) {
    by_level[0].push_back(nl.add_input(tag('I', i)));
  }
  for (int i = 0; i < profile.n_ff; ++i) {
    const CellId ff = nl.add_cell(CellKind::kDff, tag('R', i));
    ffs.push_back(ff);
    by_level[0].push_back(ff);
  }

  // Gates, level by level; creation order guarantees acyclicity.
  std::vector<CellId> all_lower;  // everything at a strictly lower level
  std::vector<int> fanout_count(static_cast<std::size_t>(profile.n_gates) +
                                    by_level[0].size() + 16,
                                0);
  auto grow_counts = [&](CellId id) {
    if (id >= fanout_count.size()) fanout_count.resize(id + 1, 0);
  };

  all_lower = by_level[0];
  std::vector<CellId> gates;
  gates.reserve(profile.n_gates);

  int created = 0;
  std::vector<CellId> fanins;  // reused across gates
  for (int level = 1; level <= profile.depth && created < profile.n_gates;
       ++level) {
    // Spread gates across levels, giving lower levels slightly more cells
    // (circuits narrow toward the outputs).
    const int remaining_levels = profile.depth - level + 1;
    const int remaining_gates = profile.n_gates - created;
    int quota = remaining_gates / remaining_levels;
    if (level < profile.depth / 3) quota = quota + quota / 3;
    quota = std::max(1, std::min(quota, remaining_gates));
    if (level == profile.depth) quota = remaining_gates;

    for (int g = 0; g < quota; ++g) {
      const int want_fanin = pick_fanin_count(rng);
      const CellKind kind =
          want_fanin == 1
              ? (rng.chance(0.78) ? CellKind::kNot : CellKind::kBuf)
              : pick_gate_kind(rng);

      // Choose distinct fan-ins from lower levels: prefer the previous
      // level (locality) and starved cells (keeps the graph connected).
      fanins.clear();
      int guard = 0;
      while (static_cast<int>(fanins.size()) < want_fanin && guard++ < 64) {
        CellId cand;
        const double r = rng.uniform();
        if (r < 0.45 && !by_level[level - 1].empty()) {
          cand = rng.pick(by_level[level - 1]);
        } else {
          cand = rng.pick(all_lower);
        }
        if (r >= 0.45 && r < 0.75) {
          // Try to re-aim at a zero-fanout cell for liveness.
          for (int probe = 0; probe < 4; ++probe) {
            const CellId alt = rng.pick(all_lower);
            if (fanout_count[alt] == 0) {
              cand = alt;
              break;
            }
          }
        }
        if (std::find(fanins.begin(), fanins.end(), cand) == fanins.end()) {
          fanins.push_back(cand);
        }
      }
      if (static_cast<int>(fanins.size()) < want_fanin) {
        // Tiny level-0 pools can exhaust distinct candidates; shrink.
        if (fanins.empty()) fanins.push_back(rng.pick(all_lower));
      }
      const CellKind final_kind =
          fanins.size() == 1 && is_standard_gate(kind)
              ? (rng.chance(0.78) ? CellKind::kNot : CellKind::kBuf)
              : kind;

      // ITC'99-class profiles emit a slice of the multi-input gates as
      // configured LUTs: the drawn gate's truth table with one row flipped,
      // so the cell is a genuine LUT rather than a CMOS gate in disguise.
      // Guarded by `lut_frac > 0` short-circuit so pure-CMOS profiles keep
      // the exact historical draw sequence.
      CellId id;
      if (profile.lut_frac > 0 && fanins.size() >= 2 &&
          static_cast<int>(fanins.size()) <= kMaxLutInputs &&
          rng.chance(profile.lut_frac)) {
        const int k = static_cast<int>(fanins.size());
        const std::uint64_t mask =
            gate_truth_mask(final_kind, k) ^
            (std::uint64_t{1} << rng.below(
                 static_cast<std::uint64_t>(num_rows(k))));
        id = nl.add_lut(tag('G', created), fanins, mask);
      } else {
        id = nl.add_gate(final_kind, tag('G', created), fanins);
      }
      grow_counts(id);
      for (const CellId f : fanins) ++fanout_count[f];
      by_level[level].push_back(id);
      gates.push_back(id);
      ++created;
    }
    all_lower.insert(all_lower.end(), by_level[level].begin(),
                     by_level[level].end());
  }

  // Flip-flop D pins: state-update logic in real ISCAS circuits is mostly
  // shallow (next-state functions a few levels deep), with a tail of deep
  // updates — sample accordingly. Shallow D pins keep FF-to-FF timing
  // segments short, which is what lets the dependent selection replace
  // whole paths at a bounded delay cost (paper Table I).
  std::vector<CellId> shallow_gates;
  for (int level = 1; level <= std::max(2, profile.depth / 3); ++level) {
    shallow_gates.insert(shallow_gates.end(), by_level[level].begin(),
                         by_level[level].end());
  }
  if (shallow_gates.empty()) shallow_gates = gates;
  for (const CellId ff : ffs) {
    const CellId d =
        rng.chance(0.6) ? rng.pick(shallow_gates) : rng.pick(gates);
    nl.connect(ff, {d});
    grow_counts(d);
    ++fanout_count[d];
  }
  // Primary outputs stay biased toward the deep levels below.
  std::vector<CellId> deep_gates;
  for (int level = std::max(1, 2 * profile.depth / 3);
       level <= profile.depth; ++level) {
    deep_gates.insert(deep_gates.end(), by_level[level].begin(),
                      by_level[level].end());
  }
  if (deep_gates.empty()) deep_gates = gates;

  // Primary outputs: distinct gates, biased toward deep levels.
  {
    std::vector<CellId> candidates = deep_gates;
    rng.shuffle(candidates);
    for (const CellId g : gates) {
      if (static_cast<int>(candidates.size()) >= profile.n_po * 3) break;
      if (std::find(candidates.begin(), candidates.end(), g) ==
          candidates.end()) {
        candidates.push_back(g);
      }
    }
    int marked = 0;
    for (const CellId id : candidates) {
      if (marked >= profile.n_po) break;
      if (!nl.cell(id).is_output) {
        nl.mark_output(id);
        ++marked;
      }
    }
  }

  // Liveness pass: any cell with no reader and no PO marking gets stitched
  // into the fabric. PIs and flip-flop outputs are attached as extra inputs
  // of a standard gate; orphan top-level gates become additional fan-ins of
  // a gate with spare capacity, or replace a redundant fan-in.
  std::vector<int> level_of(nl.size(), 0);
  for (int level = 0; level <= profile.depth; ++level) {
    for (const CellId id : by_level[level]) level_of[id] = level;
  }
  auto try_attach = [&](CellId orphan) {
    // A gate strictly above the orphan's level with spare input capacity.
    for (int attempt = 0; attempt < 200; ++attempt) {
      const CellId host = rng.pick(gates);
      const Cell& hc = nl.cell(host);
      if (level_of[host] <= level_of[orphan]) continue;
      if (!is_standard_gate(hc.kind)) continue;
      if (hc.fanin_count() >= kMaxLutInputs) continue;
      if (std::find(hc.fanins.begin(), hc.fanins.end(), orphan) !=
          hc.fanins.end()) {
        continue;
      }
      std::vector<CellId> fanins(hc.fanins.begin(), hc.fanins.end());
      fanins.push_back(orphan);
      nl.connect(host, fanins);
      return true;
    }
    // Fallback: replace a fan-in whose driver has other readers.
    for (int attempt = 0; attempt < 400; ++attempt) {
      const CellId host = rng.pick(gates);
      Cell& hc = nl.cell(host);
      if (level_of[host] <= level_of[orphan]) continue;
      for (int slot = 0; slot < hc.fanin_count(); ++slot) {
        const CellId victim = hc.fanins[slot];
        if (victim != orphan && nl.cell(victim).fanouts.size() > 1 &&
            std::find(hc.fanins.begin(), hc.fanins.end(), orphan) ==
                hc.fanins.end()) {
          nl.replace_fanin(host, slot, orphan);
          return true;
        }
      }
    }
    return false;
  };
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.fanouts.empty() && !c.is_output) {
      if (!try_attach(id)) nl.mark_output(id);  // last resort: observe it
    }
  }

  nl.finalize();
  return nl;
}

namespace {

constexpr const char* kS27 = R"(# s27, genuine ISCAS'89 circuit
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G17 = NOT(G11)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
)";

// A compact two-bit counter with enable/clear — not an ISCAS circuit, but a
// handy genuine sequential testbed with known behaviour.
constexpr const char* kCount2 = R"(# 2-bit counter with enable and clear
INPUT(en)
INPUT(clr)
OUTPUT(q0)
OUTPUT(q1)
q0 = DFF(d0)
q1 = DFF(d1)
nclr = NOT(clr)
t0 = XOR(q0, en)
d0 = AND(t0, nclr)
carry = AND(q0, en)
t1 = XOR(q1, carry)
d1 = AND(t1, nclr)
)";

}  // namespace

std::vector<std::string> embedded_names() { return {"s27", "count2"}; }

Netlist embedded_netlist(const std::string& name) {
  if (name == "s27") return read_bench(kS27, "s27");
  if (name == "count2") return read_bench(kCount2, "count2");
  throw std::invalid_argument("embedded_netlist: unknown circuit '" + name +
                              "'");
}

}  // namespace stt
