// Whole-file slurp shared by the netlist readers.
//
// The readers are single-pass zero-copy tokenizers: they keep
// `std::string_view` tokens into one contiguous buffer for the whole parse,
// so the file must be read in one shot (an ostringstream slurp would copy
// the text twice and fragment the heap at million-gate scale).
#pragma once

#include <cstdio>
#include <memory>
#include <stdexcept>
#include <string>

namespace stt {

/// Read the entire file into a string. Throws std::runtime_error
/// ("cannot open '<path>'") on any failure to open or read.
inline std::string slurp_file(const std::string& path) {
  struct Closer {
    void operator()(std::FILE* f) const { std::fclose(f); }
  };
  const std::unique_ptr<std::FILE, Closer> f(std::fopen(path.c_str(), "rb"));
  if (!f) throw std::runtime_error("cannot open '" + path + "'");
  std::string text;
  if (std::fseek(f.get(), 0, SEEK_END) == 0) {
    const long size = std::ftell(f.get());
    if (size > 0) text.reserve(static_cast<std::size_t>(size));
    std::rewind(f.get());
  }
  char buf[1 << 16];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f.get())) > 0) {
    text.append(buf, n);
  }
  if (std::ferror(f.get())) {
    throw std::runtime_error("cannot open '" + path + "'");
  }
  return text;
}

/// The file stem ("dir/s27.bench" -> "s27"): default netlist name for
/// file-based readers.
inline std::string file_stem(const std::string& path) {
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return stem;
}

}  // namespace stt
