// Structural Verilog reader.
//
// Supports the gate-level subset that synthesis hand-offs (and this
// library's own writer) use:
//
//   module top (clk, a, b, y);
//     input clk; input a, b; output y;
//     wire w; reg q;
//     nand g0 (w, a, b);                      // gate primitives
//     always @(posedge clk) q <= w;           // DFF
//     assign y = 1'b0;  assign y = w;         // constants / buffers
//     assign y = 4'h8[{b, a}];                // configured LUT (writer form)
//     STT_LUT2 u0 (.y(y), .a({b, a}));        // redacted LUT macro
//   endmodule
//
// Line and block comments are handled; `module STT_LUTk ... endmodule`
// blackbox declarations are skipped. Diagnostics carry the token position.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace stt {

struct VerilogParseError : std::runtime_error {
  explicit VerilogParseError(const std::string& msg)
      : std::runtime_error("verilog: " + msg) {}
};

Netlist read_verilog(std::string_view text, std::string fallback_name = "top");

Netlist read_verilog_file(const std::string& path);

}  // namespace stt
