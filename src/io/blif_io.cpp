#include "io/blif_io.hpp"

#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace stt {

BlifParseError::BlifParseError(const std::string& msg, int line_no,
                               const std::string& src)
    : std::runtime_error(src + ":" + std::to_string(line_no) + ": " + msg),
      message(msg),
      source(src),
      line(line_no) {}

namespace {

// Recognize a truth mask as a standard cell so CMOS netlists survive a
// BLIF round trip as CMOS (not as LUT soup).
CellKind classify_mask(std::uint64_t mask, int fanin) {
  if (fanin == 0) return mask ? CellKind::kConst1 : CellKind::kConst0;
  if (fanin == 1) {
    if (mask == 0b10ull) return CellKind::kBuf;
    if (mask == 0b01ull) return CellKind::kNot;
    return CellKind::kLut;
  }
  for (const CellKind kind :
       {CellKind::kAnd, CellKind::kNand, CellKind::kOr, CellKind::kNor,
        CellKind::kXor, CellKind::kXnor}) {
    if (gate_truth_mask(kind, fanin) == (mask & full_mask(fanin))) return kind;
  }
  return CellKind::kLut;
}

struct NamesBlock {
  std::vector<std::string> nets;  ///< inputs then the output net
  std::vector<std::string> cubes;
  int line = 0;
};

std::uint64_t cubes_to_mask(const NamesBlock& block) {
  const int k = static_cast<int>(block.nets.size()) - 1;
  if (k > kMaxLutInputs) {
    throw BlifParseError(".names with more than " +
                             std::to_string(kMaxLutInputs) + " inputs",
                         block.line);
  }
  std::uint64_t on_cover = 0;
  bool cover_is_offset = false;
  bool first = true;
  for (const auto& cube : block.cubes) {
    const auto fields = split_ws(cube);
    std::string bits;
    std::string out;
    if (k == 0) {
      if (fields.size() != 1) {
        throw BlifParseError("bad constant row '" + cube + "'", block.line);
      }
      out = fields[0];
    } else {
      if (fields.size() != 2 ||
          fields[0].size() != static_cast<std::size_t>(k)) {
        throw BlifParseError("bad cube '" + cube + "'", block.line);
      }
      bits = fields[0];
      out = fields[1];
    }
    if (out != "0" && out != "1") {
      throw BlifParseError("bad cube output '" + out + "'", block.line);
    }
    const bool off = (out == "0");
    if (first) {
      cover_is_offset = off;
      first = false;
    } else if (off != cover_is_offset) {
      throw BlifParseError("mixed on-set/off-set cover", block.line);
    }
    // Expand don't-cares.
    std::vector<std::uint32_t> rows{0};
    for (int i = 0; i < k; ++i) {
      const char c = bits[i];
      if (c != '0' && c != '1' && c != '-') {
        throw BlifParseError("bad cube character '" + std::string(1, c) + "'",
                             block.line);
      }
      const std::size_t count = rows.size();
      for (std::size_t r = 0; r < count; ++r) {
        if (c == '1') {
          rows[r] |= (1u << i);
        } else if (c == '-') {
          rows.push_back(rows[r] | (1u << i));
        }
      }
    }
    if (k == 0) rows = {0};
    for (const std::uint32_t row : rows) on_cover |= (1ull << row);
  }
  if (block.cubes.empty()) return 0;  // empty cover = constant 0
  return cover_is_offset ? (~on_cover & full_mask(k)) : on_cover;
}

}  // namespace

Netlist read_blif(std::string_view text, std::string fallback_name) {
  STTLOCK_SPAN("io", "read_blif");
  {
    static obs::Counter& parses = obs::Metrics::global().counter("io.blif_parses");
    parses.add(1);
  }
  // Join continuation lines, strip comments.
  std::vector<std::pair<std::string, int>> lines;
  {
    int line_no = 0;
    std::string pending;
    int pending_line = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      std::string raw(text.substr(
          pos, eol == std::string_view::npos ? text.size() - pos : eol - pos));
      pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
      ++line_no;
      if (const auto hash = raw.find('#'); hash != std::string::npos) {
        raw = raw.substr(0, hash);
      }
      std::string trimmed(trim(raw));
      const bool continues = ends_with(trimmed, "\\");
      if (continues) trimmed = std::string(trim(
          std::string_view(trimmed).substr(0, trimmed.size() - 1)));
      if (pending.empty()) pending_line = line_no;
      pending += (pending.empty() ? "" : " ") + trimmed;
      if (!continues) {
        if (!trim(pending).empty()) {
          lines.emplace_back(std::string(trim(pending)), pending_line);
        }
        pending.clear();
      }
    }
  }

  struct Latch {
    std::string d, q;
    int line = 0;
  };
  std::string model_name = std::move(fallback_name);
  std::vector<std::string> input_names;
  std::vector<std::pair<std::string, int>> output_names;  // net, decl line
  std::vector<Latch> latches;
  std::vector<NamesBlock> blocks;
  std::unordered_set<std::string> defined;  // driver names, for dup checks
  const auto define = [&defined](const std::string& net, int line_no) {
    if (!defined.insert(net).second) {
      throw BlifParseError("net '" + net + "' defined twice", line_no);
    }
  };

  for (std::size_t li = 0; li < lines.size(); ++li) {
    const auto& [line, line_no] = lines[li];
    const auto fields = split_ws(line);
    if (fields.empty()) continue;
    const std::string& head = fields[0];
    if (head == ".model") {
      if (fields.size() < 2) {
        throw BlifParseError(".model needs a name", line_no);
      }
      model_name = fields[1];
    } else if (head == ".inputs") {
      for (auto it = fields.begin() + 1; it != fields.end(); ++it) {
        define(*it, line_no);
        input_names.push_back(*it);
      }
    } else if (head == ".outputs") {
      for (auto it = fields.begin() + 1; it != fields.end(); ++it) {
        output_names.emplace_back(*it, line_no);
      }
    } else if (head == ".latch") {
      if (fields.size() < 3) {
        throw BlifParseError(".latch needs input and output", line_no);
      }
      define(fields[2], line_no);
      latches.push_back({fields[1], fields[2], line_no});
    } else if (head == ".names") {
      if (fields.size() < 2) {
        throw BlifParseError(".names needs an output net", line_no);
      }
      define(fields.back(), line_no);
      NamesBlock block;
      block.nets.assign(fields.begin() + 1, fields.end());
      block.line = line_no;
      while (li + 1 < lines.size() && lines[li + 1].first[0] != '.') {
        block.cubes.push_back(lines[++li].first);
      }
      blocks.push_back(std::move(block));
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Unknown directive (timing annotations etc.): ignore.
    } else {
      throw BlifParseError("unexpected line '" + line + "'", line_no);
    }
  }

  Netlist nl(std::move(model_name));
  for (const auto& name : input_names) nl.add_input(name);
  for (const auto& latch : latches) nl.add_cell(CellKind::kDff, latch.q);
  std::vector<CellId> block_cells;
  for (const auto& block : blocks) {
    const int k = static_cast<int>(block.nets.size()) - 1;
    if (k > kMaxLutInputs) {
      // Wide covers: accept the compact monotone single-cube forms.
      if (block.cubes.size() != 1) {
        throw BlifParseError("wide .names must be a single cube", block.line);
      }
      const auto fields = split_ws(block.cubes[0]);
      if (fields.size() != 2 ||
          fields[0].size() != static_cast<std::size_t>(k)) {
        throw BlifParseError("bad wide cube", block.line);
      }
      const bool all1 = fields[0] == std::string(k, '1');
      const bool all0 = fields[0] == std::string(k, '0');
      const bool out1 = fields[1] == "1";
      CellKind kind;
      if (all1 && out1) {
        kind = CellKind::kAnd;
      } else if (all1) {
        kind = CellKind::kNand;
      } else if (all0 && out1) {
        kind = CellKind::kNor;
      } else if (all0) {
        kind = CellKind::kOr;
      } else {
        throw BlifParseError("unsupported wide cover", block.line);
      }
      block_cells.push_back(nl.add_cell(kind, block.nets.back()));
      continue;
    }
    const std::uint64_t mask = cubes_to_mask(block);
    const CellKind kind = classify_mask(mask, k);
    const CellId id = nl.add_cell(kind, block.nets.back());
    if (kind == CellKind::kLut) nl.cell(id).lut_mask = mask & full_mask(k);
    block_cells.push_back(id);
  }
  auto resolve = [&](const std::string& name, int line_no) {
    const CellId id = nl.find(name);
    if (id == kNullCell) {
      throw BlifParseError("undefined net '" + name + "'", line_no);
    }
    return id;
  };
  for (const Latch& latch : latches) {
    nl.connect(nl.find(latch.q), {resolve(latch.d, latch.line)});
  }
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const CellKind kind = nl.cell(block_cells[i]).kind;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) continue;
    std::vector<CellId> fanins;
    for (std::size_t j = 0; j + 1 < blocks[i].nets.size(); ++j) {
      fanins.push_back(resolve(blocks[i].nets[j], blocks[i].line));
    }
    try {
      nl.connect(block_cells[i], std::move(fanins));
    } catch (const std::exception& e) {
      throw BlifParseError(e.what(), blocks[i].line);
    }
  }
  for (const auto& [name, decl_line] : output_names) {
    nl.mark_output(resolve(name, decl_line));
  }
  try {
    nl.finalize();
  } catch (const std::exception& e) {
    throw BlifParseError(e.what(), 0);
  }
  return nl;
}

Netlist read_blif_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  try {
    return read_blif(buf.str(), stem);
  } catch (const BlifParseError& e) {
    // Re-tag in-memory diagnostics with the actual file path.
    throw BlifParseError(e.message, e.line, path);
  }
}

std::string write_blif(const Netlist& nl) {
  std::ostringstream os;
  os << ".model " << nl.name() << '\n';
  os << ".inputs";
  for (const CellId id : nl.inputs()) os << ' ' << nl.cell(id).name;
  os << '\n';
  os << ".outputs";
  for (const CellId id : nl.outputs()) os << ' ' << nl.cell(id).name;
  os << '\n';
  for (const CellId id : nl.dffs()) {
    const Cell& c = nl.cell(id);
    os << ".latch " << nl.cell(c.fanins.at(0)).name << ' ' << c.name
       << " re clk 0\n";
  }
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    os << ".names";
    for (const CellId f : c.fanins) os << ' ' << nl.cell(f).name;
    os << ' ' << c.name << '\n';
    const int k = c.fanin_count();
    if (k > kMaxLutInputs) {
      // Wide gates: compact single-cube covers for the monotone gates.
      switch (c.kind) {
        case CellKind::kAnd:
          os << std::string(k, '1') << " 1\n";
          break;
        case CellKind::kNand:
          os << std::string(k, '1') << " 0\n";
          break;
        case CellKind::kOr:
          os << std::string(k, '0') << " 0\n";
          break;
        case CellKind::kNor:
          os << std::string(k, '0') << " 1\n";
          break;
        default:
          // A 2^(k-1)-cube parity cover is not worth emitting.
          throw std::runtime_error(
              "write_blif: wide XOR/XNOR not representable compactly; "
              "decompose '" + c.name + "' first");
      }
      continue;
    }
    const std::uint64_t mask =
        c.kind == CellKind::kLut ? c.lut_mask : (c.kind == CellKind::kConst0
                ? 0ull
                : c.kind == CellKind::kConst1
                      ? 1ull
                      : gate_truth_mask(c.kind, k));
    if (k == 0) {
      if (mask & 1ull) os << "1\n";
      continue;
    }
    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      if (!((mask >> row) & 1ull)) continue;
      for (int i = 0; i < k; ++i) os << ((row & (1u << i)) ? '1' : '0');
      os << " 1\n";
    }
  }
  os << ".end\n";
  return os.str();
}

void write_blif_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << write_blif(nl);
}

}  // namespace stt
