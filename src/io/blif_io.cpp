#include "io/blif_io.hpp"

#include <deque>
#include <fstream>
#include <span>
#include <sstream>

#include "io/slurp.hpp"
#include "obs/obs.hpp"
#include "util/interner.hpp"
#include "util/strings.hpp"

namespace stt {

BlifParseError::BlifParseError(const std::string& msg, int line_no,
                               const std::string& src)
    : std::runtime_error(src + ":" + std::to_string(line_no) + ": " + msg),
      message(msg),
      source(src),
      line(line_no) {}

namespace {

// Recognize a truth mask as a standard cell so CMOS netlists survive a
// BLIF round trip as CMOS (not as LUT soup).
CellKind classify_mask(std::uint64_t mask, int fanin) {
  if (fanin == 0) return mask ? CellKind::kConst1 : CellKind::kConst0;
  if (fanin == 1) {
    if (mask == 0b10ull) return CellKind::kBuf;
    if (mask == 0b01ull) return CellKind::kNot;
    return CellKind::kLut;
  }
  for (const CellKind kind :
       {CellKind::kAnd, CellKind::kNand, CellKind::kOr, CellKind::kNor,
        CellKind::kXor, CellKind::kXnor}) {
    if (gate_truth_mask(kind, fanin) == (mask & full_mask(fanin))) return kind;
  }
  return CellKind::kLut;
}

// A `.names` block. All views alias the parse buffer (or the continuation-
// join storage); nets and cubes live in flat arrays shared by all blocks.
struct NamesBlock {
  std::uint32_t nets_begin = 0;   ///< into net_refs: inputs then output net
  std::uint32_t nets_count = 0;
  std::uint32_t cubes_begin = 0;  ///< into cube_refs
  std::uint32_t cubes_count = 0;
  int line = 0;
};

std::uint64_t cubes_to_mask(int k, std::span<const std::string_view> cubes,
                            int block_line,
                            std::vector<std::string_view>& fields) {
  if (k > kMaxLutInputs) {
    throw BlifParseError(".names with more than " +
                             std::to_string(kMaxLutInputs) + " inputs",
                         block_line);
  }
  std::uint64_t on_cover = 0;
  bool cover_is_offset = false;
  bool first = true;
  for (const std::string_view cube : cubes) {
    split_ws_views(cube, fields);
    std::string_view bits;
    std::string_view out;
    if (k == 0) {
      if (fields.size() != 1) {
        throw BlifParseError("bad constant row '" + std::string(cube) + "'",
                             block_line);
      }
      out = fields[0];
    } else {
      if (fields.size() != 2 ||
          fields[0].size() != static_cast<std::size_t>(k)) {
        throw BlifParseError("bad cube '" + std::string(cube) + "'",
                             block_line);
      }
      bits = fields[0];
      out = fields[1];
    }
    if (out != "0" && out != "1") {
      throw BlifParseError("bad cube output '" + std::string(out) + "'",
                           block_line);
    }
    const bool off = (out == "0");
    if (first) {
      cover_is_offset = off;
      first = false;
    } else if (off != cover_is_offset) {
      throw BlifParseError("mixed on-set/off-set cover", block_line);
    }
    // Expand don't-cares.
    std::vector<std::uint32_t> rows{0};
    for (int i = 0; i < k; ++i) {
      const char c = bits[i];
      if (c != '0' && c != '1' && c != '-') {
        throw BlifParseError("bad cube character '" + std::string(1, c) + "'",
                             block_line);
      }
      const std::size_t count = rows.size();
      for (std::size_t r = 0; r < count; ++r) {
        if (c == '1') {
          rows[r] |= (1u << i);
        } else if (c == '-') {
          rows.push_back(rows[r] | (1u << i));
        }
      }
    }
    if (k == 0) rows = {0};
    for (const std::uint32_t row : rows) on_cover |= (1ull << row);
  }
  if (cubes.empty()) return 0;  // empty cover = constant 0
  return cover_is_offset ? (~on_cover & full_mask(k)) : on_cover;
}

}  // namespace

Netlist read_blif(std::string_view text, std::string fallback_name) {
  STTLOCK_SPAN("io", "read_blif");
  {
    static obs::Counter& parses = obs::Metrics::global().counter("io.blif_parses");
    parses.add(1);
  }
  // Logical lines: comments stripped, continuations joined. Unbroken lines
  // stay views into `text`; the rare continuation-joined line is owned by
  // `joined` (a deque, so its elements never move and views stay valid).
  struct LineRec {
    std::string_view text;
    int line = 0;
  };
  std::vector<LineRec> lines;
  std::deque<std::string> joined;
  {
    int line_no = 0;
    std::string pending;
    int pending_line = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
      const std::size_t eol = text.find('\n', pos);
      std::string_view raw = text.substr(
          pos, eol == std::string_view::npos ? text.size() - pos : eol - pos);
      pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
      ++line_no;
      if (const auto hash = raw.find('#'); hash != std::string_view::npos) {
        raw = raw.substr(0, hash);
      }
      std::string_view trimmed = trim(raw);
      const bool continues = ends_with(trimmed, "\\");
      if (continues) trimmed = trim(trimmed.substr(0, trimmed.size() - 1));
      if (!continues && pending.empty()) {
        // Common case: a plain line stays a view into `text`.
        if (!trimmed.empty()) lines.push_back({trimmed, line_no});
        continue;
      }
      if (pending.empty()) pending_line = line_no;
      if (!pending.empty()) pending += ' ';
      pending += trimmed;
      if (!continues) {
        const std::string_view flat = trim(pending);
        if (!flat.empty()) {
          joined.emplace_back(flat);
          lines.push_back({joined.back(), pending_line});
        }
        pending.clear();
      }
    }
  }

  struct Latch {
    std::string_view d, q;
    int line = 0;
  };
  std::string model_name = std::move(fallback_name);
  std::vector<std::string_view> input_names;
  std::vector<std::pair<std::string_view, int>> output_names;  // net, line
  std::vector<Latch> latches;
  std::vector<NamesBlock> blocks;
  std::vector<std::string_view> net_refs;    // flat, per NamesBlock
  std::vector<std::string_view> cube_refs;   // flat, per NamesBlock
  StringInterner defined;  // driver names, for dup checks
  std::size_t name_bytes = 0;
  std::size_t edge_count = 0;
  const auto define = [&defined, &name_bytes](std::string_view net,
                                              int line_no) {
    bool inserted = false;
    defined.intern(net, inserted);
    if (!inserted) {
      throw BlifParseError("net '" + std::string(net) + "' defined twice",
                           line_no);
    }
    name_bytes += net.size();
  };

  std::vector<std::string_view> fields;
  for (std::size_t li = 0; li < lines.size(); ++li) {
    const auto [line, line_no] = lines[li];
    split_ws_views(line, fields);
    if (fields.empty()) continue;
    const std::string_view head = fields[0];
    if (head == ".model") {
      if (fields.size() < 2) {
        throw BlifParseError(".model needs a name", line_no);
      }
      model_name = fields[1];
    } else if (head == ".inputs") {
      for (auto it = fields.begin() + 1; it != fields.end(); ++it) {
        define(*it, line_no);
        input_names.push_back(*it);
      }
    } else if (head == ".outputs") {
      for (auto it = fields.begin() + 1; it != fields.end(); ++it) {
        output_names.emplace_back(*it, line_no);
      }
    } else if (head == ".latch") {
      if (fields.size() < 3) {
        throw BlifParseError(".latch needs input and output", line_no);
      }
      define(fields[2], line_no);
      latches.push_back({fields[1], fields[2], line_no});
      ++edge_count;
    } else if (head == ".names") {
      if (fields.size() < 2) {
        throw BlifParseError(".names needs an output net", line_no);
      }
      define(fields.back(), line_no);
      NamesBlock block;
      block.nets_begin = static_cast<std::uint32_t>(net_refs.size());
      net_refs.insert(net_refs.end(), fields.begin() + 1, fields.end());
      block.nets_count =
          static_cast<std::uint32_t>(net_refs.size()) - block.nets_begin;
      block.line = line_no;
      block.cubes_begin = static_cast<std::uint32_t>(cube_refs.size());
      while (li + 1 < lines.size() && lines[li + 1].text[0] != '.') {
        cube_refs.push_back(lines[++li].text);
      }
      block.cubes_count =
          static_cast<std::uint32_t>(cube_refs.size()) - block.cubes_begin;
      edge_count += block.nets_count - 1;
      blocks.push_back(block);
    } else if (head == ".end") {
      break;
    } else if (head[0] == '.') {
      // Unknown directive (timing annotations etc.): ignore.
    } else {
      throw BlifParseError("unexpected line '" + std::string(line) + "'",
                           line_no);
    }
  }

  Netlist nl(std::move(model_name));
  nl.reserve(input_names.size() + latches.size() + blocks.size(), edge_count,
             name_bytes);
  for (const std::string_view name : input_names) nl.add_input(name);
  for (const Latch& latch : latches) nl.add_cell(CellKind::kDff, latch.q);
  std::vector<CellId> block_cells;
  block_cells.reserve(blocks.size());
  for (const NamesBlock& block : blocks) {
    const int k = static_cast<int>(block.nets_count) - 1;
    const std::string_view out_net =
        net_refs[block.nets_begin + block.nets_count - 1];
    const std::span<const std::string_view> cubes(
        cube_refs.data() + block.cubes_begin, block.cubes_count);
    if (k > kMaxLutInputs) {
      // Wide covers: accept the compact monotone single-cube forms.
      if (cubes.size() != 1) {
        throw BlifParseError("wide .names must be a single cube", block.line);
      }
      split_ws_views(cubes[0], fields);
      if (fields.size() != 2 ||
          fields[0].size() != static_cast<std::size_t>(k)) {
        throw BlifParseError("bad wide cube", block.line);
      }
      const bool all1 = fields[0] == std::string(k, '1');
      const bool all0 = fields[0] == std::string(k, '0');
      const bool out1 = fields[1] == "1";
      CellKind kind;
      if (all1 && out1) {
        kind = CellKind::kAnd;
      } else if (all1) {
        kind = CellKind::kNand;
      } else if (all0 && out1) {
        kind = CellKind::kNor;
      } else if (all0) {
        kind = CellKind::kOr;
      } else {
        throw BlifParseError("unsupported wide cover", block.line);
      }
      block_cells.push_back(nl.add_cell(kind, out_net));
      continue;
    }
    const std::uint64_t mask = cubes_to_mask(k, cubes, block.line, fields);
    const CellKind kind = classify_mask(mask, k);
    const CellId id = nl.add_cell(kind, out_net);
    if (kind == CellKind::kLut) nl.cell(id).lut_mask = mask & full_mask(k);
    block_cells.push_back(id);
  }
  auto resolve = [&](std::string_view name, int line_no) {
    const CellId id = nl.find(name);
    if (id == kNullCell) {
      throw BlifParseError("undefined net '" + std::string(name) + "'",
                           line_no);
    }
    return id;
  };
  for (const Latch& latch : latches) {
    nl.connect(nl.find(latch.q), {resolve(latch.d, latch.line)});
  }
  std::vector<CellId> fanins;
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const CellKind kind = nl.cell(block_cells[i]).kind;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) continue;
    fanins.clear();
    const NamesBlock& block = blocks[i];
    for (std::uint32_t j = 0; j + 1 < block.nets_count; ++j) {
      fanins.push_back(resolve(net_refs[block.nets_begin + j], block.line));
    }
    try {
      nl.connect(block_cells[i], fanins);
    } catch (const std::exception& e) {
      throw BlifParseError(e.what(), block.line);
    }
  }
  for (const auto& [name, decl_line] : output_names) {
    nl.mark_output(resolve(name, decl_line));
  }
  try {
    nl.finalize();
  } catch (const std::exception& e) {
    throw BlifParseError(e.what(), 0);
  }
  return nl;
}

Netlist read_blif_file(const std::string& path) {
  const std::string text = slurp_file(path);
  try {
    return read_blif(text, file_stem(path));
  } catch (const BlifParseError& e) {
    // Re-tag in-memory diagnostics with the actual file path.
    throw BlifParseError(e.message, e.line, path);
  }
}

std::string write_blif(const Netlist& nl) {
  std::ostringstream os;
  os << ".model " << nl.name() << '\n';
  os << ".inputs";
  for (const CellId id : nl.inputs()) os << ' ' << nl.cell(id).name;
  os << '\n';
  os << ".outputs";
  for (const CellId id : nl.outputs()) os << ' ' << nl.cell(id).name;
  os << '\n';
  for (const CellId id : nl.dffs()) {
    const Cell& c = nl.cell(id);
    os << ".latch " << nl.cell(c.fanins.at(0)).name << ' ' << c.name
       << " re clk 0\n";
  }
  // Gates in id order (forward references are fine — the reader resolves
  // names after scanning every block): the re-read netlist numbers cells in
  // file order, so writing it again reproduces these bytes exactly.
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    os << ".names";
    for (const CellId f : c.fanins) os << ' ' << nl.cell(f).name;
    os << ' ' << c.name << '\n';
    const int k = c.fanin_count();
    if (k > kMaxLutInputs) {
      // Wide gates: compact single-cube covers for the monotone gates.
      switch (c.kind) {
        case CellKind::kAnd:
          os << std::string(k, '1') << " 1\n";
          break;
        case CellKind::kNand:
          os << std::string(k, '1') << " 0\n";
          break;
        case CellKind::kOr:
          os << std::string(k, '0') << " 0\n";
          break;
        case CellKind::kNor:
          os << std::string(k, '0') << " 1\n";
          break;
        default:
          // A 2^(k-1)-cube parity cover is not worth emitting.
          throw std::runtime_error(
              "write_blif: wide XOR/XNOR not representable compactly; "
              "decompose '" + std::string(c.name) + "' first");
      }
      continue;
    }
    const std::uint64_t mask =
        c.kind == CellKind::kLut ? c.lut_mask : (c.kind == CellKind::kConst0
                ? 0ull
                : c.kind == CellKind::kConst1
                      ? 1ull
                      : gate_truth_mask(c.kind, k));
    if (k == 0) {
      if (mask & 1ull) os << "1\n";
      continue;
    }
    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      if (!((mask >> row) & 1ull)) continue;
      for (int i = 0; i < k; ++i) os << ((row & (1u << i)) ? '1' : '0');
      os << " 1\n";
    }
  }
  os << ".end\n";
  return os.str();
}

void write_blif_file(const Netlist& nl, const std::string& path) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << write_blif(nl);
}

}  // namespace stt
