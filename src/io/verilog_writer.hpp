// Structural Verilog export of (hybrid) netlists — the hand-off artifact of
// the paper's flow into physical design (Fig. 2).
//
// CMOS gates map to Verilog gate primitives; flip-flops become a positive-
// edge always block with an added `clk` port; configured LUTs become indexed
// localparam truth tables, and redacted LUTs instantiate an opaque
// `STT_LUT<k>` macro cell whose contents are programmed post-fabrication.
#pragma once

#include <string>

#include "netlist/netlist.hpp"

namespace stt {

struct VerilogWriteOptions {
  /// Emit STT_LUT<k> blackbox instances instead of truth tables (the
  /// foundry-facing view).
  bool redact_luts = false;
  /// Also emit empty `module STT_LUT<k> ...` blackbox declarations.
  bool emit_lut_blackboxes = true;
  std::string clock_name = "clk";
};

std::string write_verilog(const Netlist& nl,
                          const VerilogWriteOptions& opt = {});

void write_verilog_file(const Netlist& nl, const std::string& path,
                        const VerilogWriteOptions& opt = {});

}  // namespace stt
