#include "io/verilog_reader.hpp"

#include <cctype>
#include <charconv>
#include <fstream>
#include <optional>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "util/strings.hpp"

namespace stt {

namespace {

struct Token {
  std::string text;
  bool is_identifier = false;
};

class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) { tokenize(text); }

  bool done() const { return pos_ >= tokens_.size(); }
  const Token& peek() const {
    static const Token kEof{"<eof>", false};
    return done() ? kEof : tokens_[pos_];
  }
  Token next() {
    if (done()) throw VerilogParseError("unexpected end of input");
    return tokens_[pos_++];
  }
  void expect(std::string_view text) {
    const Token t = next();
    if (t.text != text) {
      throw VerilogParseError("expected '" + std::string(text) + "', got '" +
                              t.text + "'");
    }
  }
  bool accept(std::string_view text) {
    if (!done() && tokens_[pos_].text == text) {
      ++pos_;
      return true;
    }
    return false;
  }
  std::string identifier() {
    const Token t = next();
    if (!t.is_identifier) {
      throw VerilogParseError("expected identifier, got '" + t.text + "'");
    }
    return t.text;
  }
  /// Skip tokens until (and including) `text`.
  void skip_past(std::string_view text) {
    while (next().text != text) {
    }
  }

 private:
  void tokenize(std::string_view s) {
    std::size_t i = 0;
    const std::size_t n = s.size();
    auto is_ident = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '$';
    };
    while (i < n) {
      const char c = s[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < n && s[i + 1] == '/') {
        while (i < n && s[i] != '\n') ++i;
        continue;
      }
      if (c == '/' && i + 1 < n && s[i + 1] == '*') {
        const std::size_t end = s.find("*/", i + 2);
        if (end == std::string_view::npos) {
          throw VerilogParseError("unterminated block comment");
        }
        i = end + 2;
        continue;
      }
      if (c == '\\') {  // escaped identifier: up to whitespace
        std::size_t j = i + 1;
        while (j < n && !std::isspace(static_cast<unsigned char>(s[j]))) ++j;
        tokens_.push_back({std::string(s.substr(i + 1, j - i - 1)), true});
        i = j;
        continue;
      }
      if (is_ident(c) || c == '\'') {
        // Identifier, number, or based literal like 16'hcafe (the quote
        // glues the width to the base/value).
        std::size_t j = i;
        while (j < n && (is_ident(s[j]) || s[j] == '\'')) ++j;
        const std::string text(s.substr(i, j - i));
        const bool ident =
            !std::isdigit(static_cast<unsigned char>(text[0])) &&
            text.find('\'') == std::string::npos;
        tokens_.push_back({text, ident});
        i = j;
        continue;
      }
      if (c == '<' && i + 1 < n && s[i + 1] == '=') {
        tokens_.push_back({"<=", false});
        i += 2;
        continue;
      }
      tokens_.push_back({std::string(1, c), false});
      ++i;
    }
  }

  std::vector<Token> tokens_;
  std::size_t pos_ = 0;
};

// 4'h8 / 1'b0 / 16'hCAFE -> (width, value)
std::optional<std::pair<int, std::uint64_t>> parse_based_literal(
    const std::string& text) {
  const auto quote = text.find('\'');
  if (quote == std::string::npos || quote + 1 >= text.size()) {
    return std::nullopt;
  }
  int width = 0;
  if (quote > 0) {
    width = std::stoi(text.substr(0, quote));
  }
  const char base = static_cast<char>(
      std::tolower(static_cast<unsigned char>(text[quote + 1])));
  const std::string digits = text.substr(quote + 2);
  int radix = 0;
  switch (base) {
    case 'b': radix = 2; break;
    case 'o': radix = 8; break;
    case 'd': radix = 10; break;
    case 'h': radix = 16; break;
    default: return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      digits.data(), digits.data() + digits.size(), value, radix);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return std::make_pair(width, value);
}

struct PendingDef {
  enum Kind { kGate, kDff, kAliasOrBuf, kConst, kLut, kLutMacro } kind;
  CellKind gate_kind = CellKind::kBuf;
  std::string name;                     ///< driven net
  std::vector<std::string> fanins;      ///< LSB-first for LUTs
  std::uint64_t mask = 0;               ///< LUT mask / const value
};

}  // namespace

Netlist read_verilog(std::string_view text, std::string fallback_name) {
  Tokenizer tok(text);

  std::string module_name = fallback_name;
  std::vector<std::string> input_names;
  std::vector<std::string> output_names;
  std::unordered_set<std::string> clocks;
  std::vector<PendingDef> defs;

  // Find the first non-blackbox module.
  bool in_module = false;
  while (!tok.done() && !in_module) {
    if (tok.next().text != "module") continue;
    const std::string name = tok.identifier();
    if (starts_with(name, "STT_LUT")) {
      tok.skip_past("endmodule");
      continue;
    }
    module_name = name;
    in_module = true;
    // Port list (names repeated in body declarations): skip it.
    if (tok.accept("(")) tok.skip_past(")");
    tok.expect(";");
  }
  if (!in_module) throw VerilogParseError("no module found");

  auto parse_signal_list = [&](std::vector<std::string>* into) {
    // Optional range, then comma-separated identifiers, semicolon.
    if (tok.accept("[")) tok.skip_past("]");
    do {
      const std::string name = tok.identifier();
      if (into) into->push_back(name);
    } while (tok.accept(","));
    tok.expect(";");
  };

  auto parse_concat_lsb_first = [&]() {
    // {msb, ..., lsb} or a single identifier; returns LSB-first order.
    std::vector<std::string> msb_first;
    if (tok.accept("{")) {
      do {
        msb_first.push_back(tok.identifier());
      } while (tok.accept(","));
      tok.expect("}");
    } else {
      msb_first.push_back(tok.identifier());
    }
    return std::vector<std::string>(msb_first.rbegin(), msb_first.rend());
  };

  while (!tok.done()) {
    const Token head = tok.next();
    if (head.text == "endmodule") break;
    if (head.text == "input") {
      parse_signal_list(&input_names);
      continue;
    }
    if (head.text == "output") {
      parse_signal_list(&output_names);
      continue;
    }
    if (head.text == "wire" || head.text == "reg") {
      parse_signal_list(nullptr);
      continue;
    }
    if (head.text == "assign") {
      PendingDef def;
      def.name = tok.identifier();
      tok.expect("=");
      const Token rhs = tok.next();
      if (const auto lit = parse_based_literal(rhs.text)) {
        if (tok.accept("[")) {
          // Configured LUT: mask[{index vector}].
          def.kind = PendingDef::kLut;
          def.mask = lit->second;
          def.fanins = parse_concat_lsb_first();
          tok.expect("]");
        } else {
          def.kind = PendingDef::kConst;
          def.mask = lit->second & 1ull;
        }
      } else if (rhs.is_identifier) {
        def.kind = PendingDef::kAliasOrBuf;
        def.fanins = {rhs.text};
      } else {
        throw VerilogParseError("unsupported assign RHS near '" + rhs.text +
                                "'");
      }
      tok.expect(";");
      defs.push_back(std::move(def));
      continue;
    }
    if (head.text == "always") {
      // always @(posedge clk) q <= d;
      tok.expect("@");
      tok.expect("(");
      tok.expect("posedge");
      clocks.insert(tok.identifier());
      tok.expect(")");
      PendingDef def;
      def.kind = PendingDef::kDff;
      def.name = tok.identifier();
      tok.expect("<=");
      def.fanins = {tok.identifier()};
      tok.expect(";");
      defs.push_back(std::move(def));
      continue;
    }
    if (head.is_identifier) {
      const auto kind = kind_from_name(head.text);
      if (kind && is_replaceable_gate(*kind)) {
        // Gate primitive: kind inst (out, in...);
        PendingDef def;
        def.kind = PendingDef::kGate;
        def.gate_kind = *kind;
        (void)tok.identifier();  // instance name
        tok.expect("(");
        def.name = tok.identifier();
        while (tok.accept(",")) def.fanins.push_back(tok.identifier());
        tok.expect(")");
        tok.expect(";");
        defs.push_back(std::move(def));
        continue;
      }
      if (starts_with(head.text, "STT_LUT")) {
        // STT_LUTk inst (.y(net), .a({...}));
        PendingDef def;
        def.kind = PendingDef::kLutMacro;
        (void)tok.identifier();
        tok.expect("(");
        do {
          tok.expect(".");
          const std::string port = tok.identifier();
          tok.expect("(");
          if (port == "y") {
            def.name = tok.identifier();
          } else if (port == "a") {
            def.fanins = parse_concat_lsb_first();
          } else {
            throw VerilogParseError("unknown STT_LUT port '." + port + "'");
          }
          tok.expect(")");
        } while (tok.accept(","));
        tok.expect(")");
        tok.expect(";");
        defs.push_back(std::move(def));
        continue;
      }
      throw VerilogParseError("unsupported statement near '" + head.text +
                              "'");
    }
    throw VerilogParseError("unsupported token '" + head.text + "'");
  }

  // Reference counts decide whether an `assign x = y` is a pure output
  // alias (droppable) or a real buffer.
  std::unordered_map<std::string, int> referenced;
  for (const auto& def : defs) {
    for (const auto& f : def.fanins) ++referenced[f];
  }

  Netlist nl(std::move(module_name));
  std::unordered_map<std::string, std::string> alias;  // lhs -> rhs
  for (const auto& name : input_names) {
    if (!clocks.count(name)) nl.add_input(name);
  }
  // First pass: create cells (aliases resolved later).
  for (const auto& def : defs) {
    switch (def.kind) {
      case PendingDef::kAliasOrBuf:
        if (referenced[def.name] == 0) {
          alias[def.name] = def.fanins[0];
          continue;  // pure fan-out alias, e.g. the writer's po_N nets
        }
        nl.add_cell(CellKind::kBuf, def.name);
        break;
      case PendingDef::kConst:
        nl.add_cell(def.mask ? CellKind::kConst1 : CellKind::kConst0,
                    def.name);
        break;
      case PendingDef::kDff:
        nl.add_cell(CellKind::kDff, def.name);
        break;
      case PendingDef::kGate:
        nl.add_cell(def.gate_kind, def.name);
        break;
      case PendingDef::kLut:
      case PendingDef::kLutMacro: {
        const CellId id = nl.add_cell(CellKind::kLut, def.name);
        nl.cell(id).lut_mask =
            def.mask & full_mask(static_cast<int>(def.fanins.size()));
        break;
      }
    }
  }
  // Second pass: connect.
  auto resolve = [&](const std::string& name) {
    std::string cursor = name;
    for (int hops = 0; hops < 64; ++hops) {
      const CellId id = nl.find(cursor);
      if (id != kNullCell) return id;
      const auto it = alias.find(cursor);
      if (it == alias.end()) break;
      cursor = it->second;
    }
    throw VerilogParseError("undefined net '" + name + "'");
  };
  for (const auto& def : defs) {
    if (def.kind == PendingDef::kAliasOrBuf && alias.count(def.name)) continue;
    const CellId id = nl.find(def.name);
    std::vector<CellId> fanins;
    for (const auto& f : def.fanins) fanins.push_back(resolve(f));
    nl.connect(id, std::move(fanins));
  }
  for (const auto& name : output_names) nl.mark_output(resolve(name));
  nl.finalize();
  return nl;
}

Netlist read_verilog_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  return read_verilog(buf.str(), stem);
}

}  // namespace stt
