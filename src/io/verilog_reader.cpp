#include "io/verilog_reader.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <unordered_map>
#include <unordered_set>

#include "io/slurp.hpp"
#include "util/strings.hpp"

namespace stt {

namespace {

struct Token {
  std::string_view text;
  bool is_identifier = false;
};

// Streaming lexer: tokens are produced on demand as views into the source
// buffer (escaped identifiers, literals and punctuation alike), so parsing
// allocates nothing per token.
class Tokenizer {
 public:
  explicit Tokenizer(std::string_view text) : s_(text) {}

  bool done() { return !ensure(); }
  const Token& peek() {
    static const Token kEof{"<eof>", false};
    return ensure() ? cur_ : kEof;
  }
  Token next() {
    if (!ensure()) throw VerilogParseError("unexpected end of input");
    has_ = false;
    return cur_;
  }
  void expect(std::string_view text) {
    const Token t = next();
    if (t.text != text) {
      throw VerilogParseError("expected '" + std::string(text) + "', got '" +
                              std::string(t.text) + "'");
    }
  }
  bool accept(std::string_view text) {
    if (ensure() && cur_.text == text) {
      has_ = false;
      return true;
    }
    return false;
  }
  std::string_view identifier() {
    const Token t = next();
    if (!t.is_identifier) {
      throw VerilogParseError("expected identifier, got '" +
                              std::string(t.text) + "'");
    }
    return t.text;
  }
  /// Skip tokens until (and including) `text`.
  void skip_past(std::string_view text) {
    while (next().text != text) {
    }
  }

 private:
  bool ensure() {
    if (!has_) has_ = lex();
    return has_;
  }

  // Scan the next token from i_ into cur_; false at end of input.
  bool lex() {
    const std::size_t n = s_.size();
    auto is_ident = [](char c) {
      return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
             c == '$';
    };
    while (i_ < n) {
      const char c = s_[i_];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i_;
        continue;
      }
      if (c == '/' && i_ + 1 < n && s_[i_ + 1] == '/') {
        while (i_ < n && s_[i_] != '\n') ++i_;
        continue;
      }
      if (c == '/' && i_ + 1 < n && s_[i_ + 1] == '*') {
        const std::size_t end = s_.find("*/", i_ + 2);
        if (end == std::string_view::npos) {
          throw VerilogParseError("unterminated block comment");
        }
        i_ = end + 2;
        continue;
      }
      if (c == '\\') {  // escaped identifier: up to whitespace
        std::size_t j = i_ + 1;
        while (j < n && !std::isspace(static_cast<unsigned char>(s_[j]))) ++j;
        cur_ = {s_.substr(i_ + 1, j - i_ - 1), true};
        i_ = j;
        return true;
      }
      if (is_ident(c) || c == '\'') {
        // Identifier, number, or based literal like 16'hcafe (the quote
        // glues the width to the base/value).
        std::size_t j = i_;
        while (j < n && (is_ident(s_[j]) || s_[j] == '\'')) ++j;
        const std::string_view text = s_.substr(i_, j - i_);
        const bool ident =
            !std::isdigit(static_cast<unsigned char>(text[0])) &&
            text.find('\'') == std::string_view::npos;
        cur_ = {text, ident};
        i_ = j;
        return true;
      }
      if (c == '<' && i_ + 1 < n && s_[i_ + 1] == '=') {
        cur_ = {s_.substr(i_, 2), false};
        i_ += 2;
        return true;
      }
      cur_ = {s_.substr(i_, 1), false};
      ++i_;
      return true;
    }
    return false;
  }

  std::string_view s_;
  std::size_t i_ = 0;
  Token cur_;
  bool has_ = false;
};

// 4'h8 / 1'b0 / 16'hCAFE -> (width, value)
std::optional<std::pair<int, std::uint64_t>> parse_based_literal(
    std::string_view text) {
  const auto quote = text.find('\'');
  if (quote == std::string_view::npos || quote + 1 >= text.size()) {
    return std::nullopt;
  }
  int width = 0;
  if (quote > 0) {
    const std::string_view head = text.substr(0, quote);
    const auto [ptr, ec] =
        std::from_chars(head.data(), head.data() + head.size(), width);
    if (ec != std::errc()) return std::nullopt;
    (void)ptr;  // trailing junk before the quote tolerated, as stoi did
  }
  const char base = static_cast<char>(
      std::tolower(static_cast<unsigned char>(text[quote + 1])));
  const std::string_view digits = text.substr(quote + 2);
  int radix = 0;
  switch (base) {
    case 'b': radix = 2; break;
    case 'o': radix = 8; break;
    case 'd': radix = 10; break;
    case 'h': radix = 16; break;
    default: return std::nullopt;
  }
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(
      digits.data(), digits.data() + digits.size(), value, radix);
  if (ec != std::errc() || ptr != digits.data() + digits.size()) {
    return std::nullopt;
  }
  return std::make_pair(width, value);
}

// Statement recorded during the declaration pass. Name and fan-in views
// alias the source buffer; fan-ins live in one flat array (LSB-first for
// LUTs) shared by all defs.
struct PendingDef {
  enum Kind { kGate, kDff, kAliasOrBuf, kConst, kLut, kLutMacro } kind;
  CellKind gate_kind = CellKind::kBuf;
  std::string_view name;            ///< driven net
  std::uint32_t fanin_begin = 0;    ///< into fanin_refs
  std::uint32_t fanin_count = 0;
  std::uint64_t mask = 0;           ///< LUT mask / const value
};

}  // namespace

Netlist read_verilog(std::string_view text, std::string fallback_name) {
  Tokenizer tok(text);

  std::string module_name = fallback_name;
  std::vector<std::string_view> input_names;
  std::vector<std::string_view> output_names;
  std::unordered_set<std::string_view> clocks;
  std::vector<PendingDef> defs;
  std::vector<std::string_view> fanin_refs;  // flat, indexed by PendingDef

  // Find the first non-blackbox module.
  bool in_module = false;
  while (!tok.done() && !in_module) {
    if (tok.next().text != "module") continue;
    const std::string_view name = tok.identifier();
    if (starts_with(name, "STT_LUT")) {
      tok.skip_past("endmodule");
      continue;
    }
    module_name = name;
    in_module = true;
    // Port list (names repeated in body declarations): skip it.
    if (tok.accept("(")) tok.skip_past(")");
    tok.expect(";");
  }
  if (!in_module) throw VerilogParseError("no module found");

  auto parse_signal_list = [&](std::vector<std::string_view>* into) {
    // Optional range, then comma-separated identifiers, semicolon.
    if (tok.accept("[")) tok.skip_past("]");
    do {
      const std::string_view name = tok.identifier();
      if (into) into->push_back(name);
    } while (tok.accept(","));
    tok.expect(";");
  };

  std::vector<std::string_view> concat_scratch;
  auto parse_concat_into_refs = [&]() {
    // {msb, ..., lsb} or a single identifier; appended LSB-first.
    concat_scratch.clear();
    if (tok.accept("{")) {
      do {
        concat_scratch.push_back(tok.identifier());
      } while (tok.accept(","));
      tok.expect("}");
    } else {
      concat_scratch.push_back(tok.identifier());
    }
    fanin_refs.insert(fanin_refs.end(), concat_scratch.rbegin(),
                      concat_scratch.rend());
  };
  auto seal_fanins = [&](PendingDef& def) {
    def.fanin_count =
        static_cast<std::uint32_t>(fanin_refs.size()) - def.fanin_begin;
  };

  while (!tok.done()) {
    const Token head = tok.next();
    if (head.text == "endmodule") break;
    if (head.text == "input") {
      parse_signal_list(&input_names);
      continue;
    }
    if (head.text == "output") {
      parse_signal_list(&output_names);
      continue;
    }
    if (head.text == "wire" || head.text == "reg") {
      parse_signal_list(nullptr);
      continue;
    }
    if (head.text == "assign") {
      PendingDef def;
      def.fanin_begin = static_cast<std::uint32_t>(fanin_refs.size());
      def.name = tok.identifier();
      tok.expect("=");
      const Token rhs = tok.next();
      if (const auto lit = parse_based_literal(rhs.text)) {
        if (tok.accept("[")) {
          // Configured LUT: mask[{index vector}].
          def.kind = PendingDef::kLut;
          def.mask = lit->second;
          parse_concat_into_refs();
          tok.expect("]");
        } else {
          def.kind = PendingDef::kConst;
          def.mask = lit->second & 1ull;
        }
      } else if (rhs.is_identifier) {
        def.kind = PendingDef::kAliasOrBuf;
        fanin_refs.push_back(rhs.text);
      } else {
        throw VerilogParseError("unsupported assign RHS near '" +
                                std::string(rhs.text) + "'");
      }
      tok.expect(";");
      seal_fanins(def);
      defs.push_back(def);
      continue;
    }
    if (head.text == "always") {
      // always @(posedge clk) q <= d;
      tok.expect("@");
      tok.expect("(");
      tok.expect("posedge");
      clocks.insert(tok.identifier());
      tok.expect(")");
      PendingDef def;
      def.fanin_begin = static_cast<std::uint32_t>(fanin_refs.size());
      def.kind = PendingDef::kDff;
      def.name = tok.identifier();
      tok.expect("<=");
      fanin_refs.push_back(tok.identifier());
      tok.expect(";");
      seal_fanins(def);
      defs.push_back(def);
      continue;
    }
    if (head.is_identifier) {
      const auto kind = kind_from_name(head.text);
      if (kind && is_replaceable_gate(*kind)) {
        // Gate primitive: kind inst (out, in...);
        PendingDef def;
        def.fanin_begin = static_cast<std::uint32_t>(fanin_refs.size());
        def.kind = PendingDef::kGate;
        def.gate_kind = *kind;
        (void)tok.identifier();  // instance name
        tok.expect("(");
        def.name = tok.identifier();
        while (tok.accept(",")) fanin_refs.push_back(tok.identifier());
        tok.expect(")");
        tok.expect(";");
        seal_fanins(def);
        defs.push_back(def);
        continue;
      }
      if (starts_with(head.text, "STT_LUT")) {
        // STT_LUTk inst (.y(net), .a({...}));
        PendingDef def;
        def.fanin_begin = static_cast<std::uint32_t>(fanin_refs.size());
        def.kind = PendingDef::kLutMacro;
        (void)tok.identifier();
        tok.expect("(");
        do {
          tok.expect(".");
          const std::string_view port = tok.identifier();
          tok.expect("(");
          if (port == "y") {
            def.name = tok.identifier();
          } else if (port == "a") {
            parse_concat_into_refs();
          } else {
            throw VerilogParseError("unknown STT_LUT port '." +
                                    std::string(port) + "'");
          }
          tok.expect(")");
        } while (tok.accept(","));
        tok.expect(")");
        tok.expect(";");
        seal_fanins(def);
        defs.push_back(def);
        continue;
      }
      throw VerilogParseError("unsupported statement near '" +
                              std::string(head.text) + "'");
    }
    throw VerilogParseError("unsupported token '" + std::string(head.text) +
                            "'");
  }

  const auto def_fanins = [&](const PendingDef& def) {
    return std::span<const std::string_view>(fanin_refs.data() +
                                                 def.fanin_begin,
                                             def.fanin_count);
  };

  // Reference counts decide whether an `assign x = y` is a pure output
  // alias (droppable) or a real buffer.
  std::unordered_map<std::string_view, int> referenced;
  for (const std::string_view f : fanin_refs) ++referenced[f];

  Netlist nl(std::move(module_name));
  std::size_t name_bytes = 0;
  for (const std::string_view name : input_names) name_bytes += name.size();
  for (const PendingDef& def : defs) name_bytes += def.name.size();
  nl.reserve(input_names.size() + defs.size(), fanin_refs.size(), name_bytes);
  std::unordered_map<std::string_view, std::string_view> alias;  // lhs -> rhs
  for (const std::string_view name : input_names) {
    if (!clocks.count(name)) nl.add_input(name);
  }
  // First pass: create cells (aliases resolved later).
  for (const PendingDef& def : defs) {
    switch (def.kind) {
      case PendingDef::kAliasOrBuf:
        if (referenced[def.name] == 0) {
          alias[def.name] = def_fanins(def)[0];
          continue;  // pure fan-out alias, e.g. the writer's po_N nets
        }
        nl.add_cell(CellKind::kBuf, def.name);
        break;
      case PendingDef::kConst:
        nl.add_cell(def.mask ? CellKind::kConst1 : CellKind::kConst0,
                    def.name);
        break;
      case PendingDef::kDff:
        nl.add_cell(CellKind::kDff, def.name);
        break;
      case PendingDef::kGate:
        nl.add_cell(def.gate_kind, def.name);
        break;
      case PendingDef::kLut:
      case PendingDef::kLutMacro: {
        const CellId id = nl.add_cell(CellKind::kLut, def.name);
        nl.cell(id).lut_mask =
            def.mask & full_mask(static_cast<int>(def.fanin_count));
        break;
      }
    }
  }
  // Second pass: connect.
  auto resolve = [&](std::string_view name) {
    std::string_view cursor = name;
    for (int hops = 0; hops < 64; ++hops) {
      const CellId id = nl.find(cursor);
      if (id != kNullCell) return id;
      const auto it = alias.find(cursor);
      if (it == alias.end()) break;
      cursor = it->second;
    }
    throw VerilogParseError("undefined net '" + std::string(name) + "'");
  };
  std::vector<CellId> fanins;
  for (const PendingDef& def : defs) {
    if (def.kind == PendingDef::kAliasOrBuf && alias.count(def.name)) continue;
    const CellId id = nl.find(def.name);
    fanins.clear();
    for (const std::string_view f : def_fanins(def)) {
      fanins.push_back(resolve(f));
    }
    nl.connect(id, fanins);
  }
  for (const std::string_view name : output_names) nl.mark_output(resolve(name));
  nl.finalize();
  return nl;
}

Netlist read_verilog_file(const std::string& path) {
  const std::string text = slurp_file(path);
  return read_verilog(text, file_stem(path));
}

}  // namespace stt
