#include "io/bench_io.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace stt {

BenchParseError::BenchParseError(const std::string& msg, int line_no,
                                 const std::string& src)
    : std::runtime_error(src + ":" + std::to_string(line_no) + ": " + msg),
      message(msg),
      source(src),
      line(line_no) {}

namespace {

struct PendingCell {
  CellKind kind;
  std::string name;
  std::vector<std::string> fanin_names;
  std::uint64_t lut_mask = 0;
  int line = 0;
};

// "LUT_0x8" / "LUT_X" / plain operator name -> kind (+ mask for LUTs).
CellKind parse_operator(std::string_view op, std::uint64_t& mask, int line) {
  const std::string up = to_upper(op);
  if (starts_with(up, "LUT_")) {
    const std::string_view arg = std::string_view(up).substr(4);
    if (arg == "X") {
      mask = 0;
      return CellKind::kLut;
    }
    std::string_view digits = arg;
    if (starts_with(digits, "0X")) digits = digits.substr(2);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value, 16);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      throw BenchParseError("bad LUT mask '" + std::string(op) + "'", line);
    }
    mask = value;
    return CellKind::kLut;
  }
  const auto kind = kind_from_name(up);
  if (!kind || *kind == CellKind::kInput) {
    throw BenchParseError("unknown operator '" + std::string(op) + "'", line);
  }
  return *kind;
}

}  // namespace

Netlist read_bench(std::string_view text, std::string name) {
  STTLOCK_SPAN("io", "read_bench");
  {
    static obs::Counter& parses = obs::Metrics::global().counter("io.bench_parses");
    parses.add(1);
  }
  std::vector<std::string> input_names;
  std::vector<std::pair<std::string, int>> output_names;  // net, decl line
  std::vector<PendingCell> pending;
  std::unordered_set<std::string> defined;

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    std::string_view raw =
        text.substr(pos, eol == std::string_view::npos ? text.size() - pos
                                                       : eol - pos);
    pos = (eol == std::string_view::npos) ? text.size() + 1 : eol + 1;
    ++line_no;

    // Strip comments and whitespace.
    const std::size_t hash = raw.find('#');
    if (hash != std::string_view::npos) raw = raw.substr(0, hash);
    const std::string_view line = trim(raw);
    if (line.empty()) continue;

    const std::size_t eq = line.find('=');
    if (eq == std::string_view::npos) {
      // INPUT(x) / OUTPUT(x)
      const std::size_t lp = line.find('(');
      const std::size_t rp = line.rfind(')');
      if (lp == std::string_view::npos || rp == std::string_view::npos ||
          rp < lp) {
        throw BenchParseError("malformed declaration", line_no);
      }
      const std::string keyword = to_upper(trim(line.substr(0, lp)));
      const std::string net(trim(line.substr(lp + 1, rp - lp - 1)));
      if (net.empty()) throw BenchParseError("empty net name", line_no);
      if (keyword == "INPUT") {
        if (!defined.insert(net).second) {
          throw BenchParseError("net '" + net + "' defined twice", line_no);
        }
        input_names.push_back(net);
      } else if (keyword == "OUTPUT") {
        output_names.emplace_back(net, line_no);
      } else {
        throw BenchParseError("unknown keyword '" + keyword + "'", line_no);
      }
      continue;
    }

    // name = OP(a, b, ...)
    PendingCell cell;
    cell.name = std::string(trim(line.substr(0, eq)));
    cell.line = line_no;
    if (cell.name.empty()) throw BenchParseError("empty cell name", line_no);
    const std::string_view rhs = trim(line.substr(eq + 1));
    const std::size_t lp = rhs.find('(');
    const std::size_t rp = rhs.rfind(')');
    if (lp == std::string_view::npos || rp == std::string_view::npos ||
        rp < lp) {
      throw BenchParseError("malformed cell definition", line_no);
    }
    cell.kind = parse_operator(trim(rhs.substr(0, lp)), cell.lut_mask, line_no);
    const std::string_view args = rhs.substr(lp + 1, rp - lp - 1);
    if (!trim(args).empty()) {
      for (const auto& arg : split(args, ',')) {
        const std::string net(trim(arg));
        if (net.empty()) throw BenchParseError("empty fan-in name", line_no);
        cell.fanin_names.push_back(net);
      }
    }
    if (!defined.insert(cell.name).second) {
      throw BenchParseError("net '" + cell.name + "' defined twice", line_no);
    }
    pending.push_back(std::move(cell));
  }

  // Materialize: inputs first, then cells in file order, then wire fan-ins.
  Netlist nl(std::move(name));
  for (auto& in : input_names) nl.add_input(std::move(in));
  std::vector<CellId> ids;
  ids.reserve(pending.size());
  for (const auto& cell : pending) {
    const CellId id = nl.add_cell(cell.kind, cell.name);
    if (cell.kind == CellKind::kLut) {
      nl.cell(id).lut_mask =
          cell.lut_mask & full_mask(static_cast<int>(cell.fanin_names.size()));
    }
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    std::vector<CellId> fanins;
    fanins.reserve(pending[i].fanin_names.size());
    for (const auto& net : pending[i].fanin_names) {
      const CellId driver = nl.find(net);
      if (driver == kNullCell) {
        throw BenchParseError("undefined net '" + net + "'", pending[i].line);
      }
      fanins.push_back(driver);
    }
    try {
      nl.connect(ids[i], std::move(fanins));
    } catch (const std::exception& e) {
      throw BenchParseError(e.what(), pending[i].line);
    }
  }
  for (const auto& [net, decl_line] : output_names) {
    const CellId id = nl.find(net);
    if (id == kNullCell) {
      throw BenchParseError("OUTPUT references undefined net '" + net + "'",
                            decl_line);
    }
    nl.mark_output(id);
  }
  try {
    nl.finalize();
  } catch (const std::exception& e) {
    throw BenchParseError(e.what(), 0);
  }
  return nl;
}

Netlist read_bench_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open '" + path + "'");
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string stem = path;
  if (const auto slash = stem.find_last_of('/'); slash != std::string::npos) {
    stem = stem.substr(slash + 1);
  }
  if (const auto dot = stem.find_last_of('.'); dot != std::string::npos) {
    stem = stem.substr(0, dot);
  }
  try {
    return read_bench(buf.str(), stem);
  } catch (const BenchParseError& e) {
    // Re-tag in-memory diagnostics with the actual file path.
    throw BenchParseError(e.message, e.line, path);
  }
}

std::string write_bench(const Netlist& nl, const BenchWriteOptions& opt) {
  std::ostringstream os;
  if (!opt.header.empty()) {
    for (const auto& line : split(opt.header, '\n')) os << "# " << line << '\n';
  }
  os << "# " << nl.name() << '\n';
  for (const CellId id : nl.inputs()) os << "INPUT(" << nl.cell(id).name << ")\n";
  for (const CellId id : nl.outputs()) os << "OUTPUT(" << nl.cell(id).name << ")\n";
  os << '\n';

  // Flip-flops first, in interface order, so a write/read roundtrip
  // preserves the state-bit ordering (scan-view positional equivalence);
  // forward references are legal in .bench. Then everything else in
  // topological order.
  std::vector<CellId> emit_order(nl.dffs().begin(), nl.dffs().end());
  for (const CellId id : nl.topo_order()) {
    if (nl.cell(id).kind != CellKind::kDff) emit_order.push_back(id);
  }
  for (const CellId id : emit_order) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput) continue;
    os << c.name << " = ";
    if (c.kind == CellKind::kLut) {
      if (opt.redact_luts) {
        os << "LUT_X";
      } else {
        os << strformat("LUT_0x%llx",
                        static_cast<unsigned long long>(c.lut_mask));
      }
    } else if (c.kind == CellKind::kConst0) {
      os << "CONST0";
    } else if (c.kind == CellKind::kConst1) {
      os << "CONST1";
    } else {
      os << kind_name(c.kind);
    }
    os << '(';
    for (int i = 0; i < c.fanin_count(); ++i) {
      if (i) os << ", ";
      os << nl.cell(c.fanins[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

void write_bench_file(const Netlist& nl, const std::string& path,
                      const BenchWriteOptions& opt) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << write_bench(nl, opt);
}

}  // namespace stt
