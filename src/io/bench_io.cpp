#include "io/bench_io.hpp"

#include <algorithm>
#include <charconv>
#include <climits>
#include <fstream>
#include <sstream>

#include "io/slurp.hpp"
#include "obs/obs.hpp"
#include "util/strings.hpp"

namespace stt {

BenchParseError::BenchParseError(const std::string& msg, int line_no,
                                 const std::string& src)
    : std::runtime_error(src + ":" + std::to_string(line_no) + ": " + msg),
      message(msg),
      source(src),
      line(line_no) {}

namespace {

// Cell recorded during the declaration pass. All views alias the input
// text; fan-in names live in one flat array shared by all pending cells.
struct PendingCell {
  CellKind kind;
  std::string_view name;
  std::uint32_t fanin_begin = 0;
  std::uint32_t fanin_count = 0;
  std::uint64_t lut_mask = 0;
  int line = 0;
};

bool istarts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && iequals(s.substr(0, prefix.size()), prefix);
}

// "LUT_0x8" / "LUT_X" / plain operator name -> kind (+ mask for LUTs).
// Case-insensitive and allocation-free on the accepting paths.
CellKind parse_operator(std::string_view op, std::uint64_t& mask, int line) {
  if (istarts_with(op, "LUT_")) {
    const std::string_view arg = op.substr(4);
    if (iequals(arg, "X")) {
      mask = 0;
      return CellKind::kLut;
    }
    std::string_view digits = arg;
    if (istarts_with(digits, "0X")) digits = digits.substr(2);
    std::uint64_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(digits.data(), digits.data() + digits.size(), value, 16);
    if (ec != std::errc() || ptr != digits.data() + digits.size()) {
      throw BenchParseError("bad LUT mask '" + std::string(op) + "'", line);
    }
    mask = value;
    return CellKind::kLut;
  }
  const auto kind = kind_from_name(op);
  if (!kind || *kind == CellKind::kInput) {
    throw BenchParseError("unknown operator '" + std::string(op) + "'", line);
  }
  return *kind;
}

}  // namespace

Netlist read_bench(std::string_view text, std::string name) {
  STTLOCK_SPAN("io", "read_bench");
  {
    static obs::Counter& parses = obs::Metrics::global().counter("io.bench_parses");
    parses.add(1);
  }
  std::vector<std::pair<std::string_view, int>> input_names;   // net, decl line
  std::vector<std::pair<std::string_view, int>> output_names;  // net, decl line
  std::vector<PendingCell> pending;
  std::vector<std::string_view> fanin_refs;  // flat, indexed by PendingCell
  std::size_t name_bytes = 0;
  {
    // Pre-size for the common one-definition-per-line shape so the pending
    // arrays never re-grow on million-gate inputs.
    const auto lines = static_cast<std::size_t>(
        std::count(text.begin(), text.end(), '\n')) + 1;
    input_names.reserve(64);
    pending.reserve(lines);
    fanin_refs.reserve(2 * lines);
  }

  // Duplicate definitions surface as register_name failures during
  // materialization; recover the seed diagnostic — the line of the second
  // occurrence in file order — with an error-path-only scan.
  const auto fail_duplicate = [&](std::string_view net) -> void {
    int first = INT_MAX;
    int second = INT_MAX;
    const auto visit = [&](int line) {
      if (line < first) {
        second = first;
        first = line;
      } else if (line < second) {
        second = line;
      }
    };
    for (const auto& [name, line] : input_names) {
      if (name == net) visit(line);
    }
    for (const PendingCell& cell : pending) {
      if (cell.name == net) visit(cell.line);
    }
    throw BenchParseError("net '" + std::string(net) + "' defined twice",
                          second == INT_MAX ? first : second);
  };

  // Local inline copies of trim()'s semantics: the out-of-line helper costs a
  // call per use, and the scan makes several per line on million-line inputs.
  constexpr std::size_t npos = std::string_view::npos;
  const auto is_ws = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\v' || c == '\f' ||
           c == '\r';
  };
  const auto fast_trim = [&is_ws](std::string_view s) {
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_ws(s[b])) ++b;
    while (e > b && is_ws(s[e - 1])) --e;
    return s.substr(b, e - b);
  };

  int line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == npos) eol = text.size();
    const std::string_view raw = text.substr(pos, eol - pos);
    pos = eol + 1;
    ++line_no;

    // Fused scan: comment start and first '=' in one pass. An '=' after a
    // '#' is commented out, exactly as the strip-then-find sequence saw it.
    std::size_t eq = npos;
    std::size_t len = raw.size();
    for (std::size_t i = 0; i < raw.size(); ++i) {
      const char ch = raw[i];
      if (ch == '#') {
        len = i;
        break;
      }
      if (ch == '=' && eq == npos) eq = i;
    }
    const std::string_view line = fast_trim(raw.substr(0, len));
    if (line.empty()) continue;

    if (eq == npos) {
      // INPUT(x) / OUTPUT(x)
      std::size_t lp = npos;
      std::size_t rp = npos;
      for (std::size_t i = 0; i < line.size(); ++i) {
        const char ch = line[i];
        if (ch == '(') {
          if (lp == npos) lp = i;
        } else if (ch == ')') {
          rp = i;
        }
      }
      if (lp == npos || rp == npos || rp < lp) {
        throw BenchParseError("malformed declaration", line_no);
      }
      const std::string_view keyword = fast_trim(line.substr(0, lp));
      const std::string_view net = fast_trim(line.substr(lp + 1, rp - lp - 1));
      if (net.empty()) throw BenchParseError("empty net name", line_no);
      if (iequals(keyword, "INPUT")) {
        input_names.emplace_back(net, line_no);
        name_bytes += net.size();
      } else if (iequals(keyword, "OUTPUT")) {
        output_names.emplace_back(net, line_no);
      } else {
        throw BenchParseError("unknown keyword '" + to_upper(keyword) + "'",
                              line_no);
      }
      continue;
    }

    // name = OP(a, b, ...). `eq` indexes into `raw`; trimming only strips
    // edge whitespace, so the non-space '=' sits inside `line`.
    const std::size_t eq_line =
        eq - static_cast<std::size_t>(line.data() - raw.data());
    PendingCell cell;
    cell.name = fast_trim(line.substr(0, eq_line));
    cell.line = line_no;
    if (cell.name.empty()) throw BenchParseError("empty cell name", line_no);
    const std::string_view rhs = fast_trim(line.substr(eq_line + 1));
    std::size_t lp = npos;
    std::size_t rp = npos;
    for (std::size_t i = 0; i < rhs.size(); ++i) {
      const char ch = rhs[i];
      if (ch == '(') {
        if (lp == npos) lp = i;
      } else if (ch == ')') {
        rp = i;
      }
    }
    if (lp == npos || rp == npos || rp < lp) {
      throw BenchParseError("malformed cell definition", line_no);
    }
    cell.kind =
        parse_operator(fast_trim(rhs.substr(0, lp)), cell.lut_mask, line_no);
    const std::string_view args = rhs.substr(lp + 1, rp - lp - 1);
    cell.fanin_begin = static_cast<std::uint32_t>(fanin_refs.size());
    if (!fast_trim(args).empty()) {
      // Comma-split in place; empty fields (",," / trailing ",") are errors
      // exactly as they were for the split()-based parser.
      std::size_t start = 0;
      while (true) {
        std::size_t comma = npos;
        for (std::size_t i = start; i < args.size(); ++i) {
          if (args[i] == ',') {
            comma = i;
            break;
          }
        }
        const std::string_view net = fast_trim(
            comma == npos ? args.substr(start) : args.substr(start, comma - start));
        if (net.empty()) throw BenchParseError("empty fan-in name", line_no);
        fanin_refs.push_back(net);
        if (comma == npos) break;
        start = comma + 1;
      }
    }
    cell.fanin_count =
        static_cast<std::uint32_t>(fanin_refs.size()) - cell.fanin_begin;
    name_bytes += cell.name.size();
    pending.push_back(cell);
  }

  // Materialize: inputs first, then cells in file order, then wire fan-ins.
  Netlist nl(std::move(name));
  nl.reserve(input_names.size() + pending.size(), fanin_refs.size(),
             name_bytes);
  for (const auto& [in, decl_line] : input_names) {
    try {
      nl.add_input(in);
    } catch (const std::exception&) {
      fail_duplicate(in);
    }
  }
  std::vector<CellId> ids;
  ids.reserve(pending.size());
  for (const PendingCell& cell : pending) {
    CellId id = kNullCell;
    try {
      id = nl.add_cell(cell.kind, cell.name);
    } catch (const std::exception&) {
      fail_duplicate(cell.name);
    }
    if (cell.kind == CellKind::kLut) {
      nl.cell(id).lut_mask =
          cell.lut_mask & full_mask(static_cast<int>(cell.fanin_count));
    }
    ids.push_back(id);
  }
  for (std::size_t i = 0; i < pending.size(); ++i) {
    const PendingCell& cell = pending[i];
    for (std::uint32_t k = 0; k < cell.fanin_count; ++k) {
      const std::string_view net = fanin_refs[cell.fanin_begin + k];
      const CellId driver = nl.find(net);
      if (driver == kNullCell) {
        throw BenchParseError("undefined net '" + std::string(net) + "'",
                              cell.line);
      }
      // Fan-out lists are rebuilt wholesale by finalize(); appending the
      // resolved slot directly skips the incremental fan-out bookkeeping
      // connect() would redo for every edge.
      nl.append_fanin(ids[i], driver);
    }
  }
  for (const auto& [net, decl_line] : output_names) {
    const CellId id = nl.find(net);
    if (id == kNullCell) {
      throw BenchParseError(
          "OUTPUT references undefined net '" + std::string(net) + "'",
          decl_line);
    }
    nl.mark_output(id);
  }
  try {
    nl.finalize();
  } catch (const std::exception& e) {
    throw BenchParseError(e.what(), 0);
  }
  return nl;
}

Netlist read_bench_file(const std::string& path) {
  const std::string text = slurp_file(path);
  try {
    return read_bench(text, file_stem(path));
  } catch (const BenchParseError& e) {
    // Re-tag in-memory diagnostics with the actual file path.
    throw BenchParseError(e.message, e.line, path);
  }
}

std::string write_bench(const Netlist& nl, const BenchWriteOptions& opt) {
  std::ostringstream os;
  if (!opt.header.empty()) {
    for (const auto& line : split(opt.header, '\n')) os << "# " << line << '\n';
  }
  os << "# " << nl.name() << '\n';
  for (const CellId id : nl.inputs()) os << "INPUT(" << nl.cell(id).name << ")\n";
  for (const CellId id : nl.outputs()) os << "OUTPUT(" << nl.cell(id).name << ")\n";
  os << '\n';

  // Cells in id order; forward references are legal in .bench and the
  // reader materializes in two passes. Id order makes the writer a byte
  // fixed point under read_bench (the re-read netlist numbers cells in file
  // order, so a second write reproduces the text exactly), keeps the
  // flip-flop interface order (dffs() ascends by id — scan-view positional
  // equivalence survives the round trip), and needs no topo sort.
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput) continue;
    os << c.name << " = ";
    if (c.kind == CellKind::kLut) {
      if (opt.redact_luts) {
        os << "LUT_X";
      } else {
        os << strformat("LUT_0x%llx",
                        static_cast<unsigned long long>(c.lut_mask));
      }
    } else if (c.kind == CellKind::kConst0) {
      os << "CONST0";
    } else if (c.kind == CellKind::kConst1) {
      os << "CONST1";
    } else {
      os << kind_name(c.kind);
    }
    os << '(';
    for (int i = 0; i < c.fanin_count(); ++i) {
      if (i) os << ", ";
      os << nl.cell(c.fanins[i]).name;
    }
    os << ")\n";
  }
  return os.str();
}

void write_bench_file(const Netlist& nl, const std::string& path,
                      const BenchWriteOptions& opt) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write '" + path + "'");
  out << write_bench(nl, opt);
}

}  // namespace stt
