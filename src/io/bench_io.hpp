// ISCAS'89 .bench reader/writer.
//
// The classic format:
//
//   # comment
//   INPUT(G0)
//   OUTPUT(G17)
//   G10 = DFF(G14)
//   G11 = NAND(G0, G10)
//
// Hybrid-netlist extension (ours): reconfigurable LUT cells are written as
//
//   G11 = LUT_0x8(G0, G10)     # configured: mask in hex, row 0 = LSB
//   G11 = LUT_X(G0, G10)       # unconfigured: contents withheld (what the
//                              # untrusted foundry sees)
//
// An unconfigured LUT parses with mask 0; consumers that need the real
// function must obtain the configuration (the key) out of band, mirroring
// the paper's threat model.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace stt {

struct BenchParseError : std::runtime_error {
  /// what() renders as "<source>:<line>: <msg>".
  BenchParseError(const std::string& msg, int line,
                  const std::string& source = "bench");
  std::string message;  ///< diagnostic without the source:line prefix
  std::string source;   ///< "bench" for in-memory text, file path otherwise
  int line;             ///< 1-based; 0 = whole-file (no single culprit line)
};

/// Parse a .bench document. `name` becomes the netlist name.
Netlist read_bench(std::string_view text, std::string name = "bench");

/// Parse from a file path; the file stem becomes the netlist name.
Netlist read_bench_file(const std::string& path);

struct BenchWriteOptions {
  /// Write LUT cells as LUT_X(...) with their configuration withheld — the
  /// foundry-facing view of a hybrid netlist.
  bool redact_luts = false;
  /// Leading comment block (each line is prefixed with "# ").
  std::string header;
};

/// Serialize to .bench text (cells in topological order).
std::string write_bench(const Netlist& nl, const BenchWriteOptions& opt = {});

void write_bench_file(const Netlist& nl, const std::string& path,
                      const BenchWriteOptions& opt = {});

}  // namespace stt
