// Berkeley Logic Interchange Format (BLIF) reader/writer.
//
// BLIF is the natural exchange format for LUT-bearing netlists: `.names`
// blocks carry arbitrary single-output truth tables (exactly a LUT) and
// `.latch` carries state. The flow uses it to interoperate with academic
// tooling (ABC, VTR):
//
//   .model s27
//   .inputs G0 G1
//   .outputs G17
//   .latch G10 G5 re clk 0
//   .names G0 G5 G9     # rows with output 1
//   01 1
//   11 1
//   .end
//
// Reading maps `.names` blocks to LUT cells when the function is not a
// recognizable standard gate, and to plain gates when it is (so a BLIF
// round trip of a CMOS netlist reproduces CMOS cells). Writing emits gates
// and LUTs as `.names` and flip-flops as `.latch`.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "netlist/netlist.hpp"

namespace stt {

struct BlifParseError : std::runtime_error {
  /// what() renders as "<source>:<line>: <msg>".
  BlifParseError(const std::string& msg, int line,
                 const std::string& source = "blif");
  std::string message;  ///< diagnostic without the source:line prefix
  std::string source;   ///< "blif" for in-memory text, file path otherwise
  int line;             ///< 1-based; 0 = whole-file (no single culprit line)
};

Netlist read_blif(std::string_view text, std::string fallback_name = "blif");
Netlist read_blif_file(const std::string& path);

/// Note: BLIF has no gate/LUT distinction — every logic cell becomes a
/// `.names` cover, and reading classifies covers back into standard cells
/// where possible. A LUT configured as a standard gate therefore reads
/// back as that gate; key extraction must happen before a BLIF round trip.
std::string write_blif(const Netlist& nl);
void write_blif_file(const Netlist& nl, const std::string& path);

}  // namespace stt
