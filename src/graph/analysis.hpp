// Structural graph analyses over netlists.
//
// The selection algorithms and the security estimators need several graph
// quantities:
//  * combinational levels (for levelized simulation and STA ordering);
//  * per-cell sequential depth — the minimum number of flip-flops between a
//    cell and any primary output (the D_i of Eqs. 1-2);
//  * the circuit sequential depth D — the maximum number of flip-flops on
//    any PI -> PO path (Eq. 3). Sequential loops make the naive definition
//    unbounded, so D is computed on the SCC condensation of the flip-flop
//    dependency graph: each strongly connected component contributes its
//    flip-flop count once, which is the natural acyclic reading of the
//    paper's definition;
//  * transitive fan-in/fan-out cones (attack cone extraction).
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "netlist/netlist.hpp"

namespace stt {

inline constexpr int kUnreachable = std::numeric_limits<int>::max();

/// Combinational level per cell: PIs, constants and DFF outputs are level 0;
/// a gate is 1 + max(level of fan-ins). Indexed by CellId.
std::vector<int> combinational_levels(const Netlist& nl);

/// Minimum number of flip-flops on any path from each cell to a primary
/// output (crossing a DFF costs 1). kUnreachable if no PO is reachable.
std::vector<int> seq_depth_to_po(const Netlist& nl);

/// Minimum number of flip-flops on any path from a primary input to each
/// cell. kUnreachable if no PI reaches it.
std::vector<int> seq_depth_from_pi(const Netlist& nl);

/// The circuit sequential depth D of Eq. (3): the longest flip-flop chain on
/// a PI -> PO path, evaluated on the SCC condensation (see file comment).
/// Returns at least 1 for sequential circuits, 1 for pure combinational
/// (the paper's equations multiply by D, so D >= 1 keeps them meaningful).
int circuit_seq_depth(const Netlist& nl);

/// Transitive fan-in cone of `roots` (inclusive), as a CellId set in no
/// particular order. Stops at nothing: crosses DFFs.
std::vector<CellId> fanin_cone(const Netlist& nl, std::span<const CellId> roots);

/// Transitive fan-out cone of `roots` (inclusive), crossing DFFs.
std::vector<CellId> fanout_cone(const Netlist& nl,
                                std::span<const CellId> roots);

/// Tarjan strongly-connected components over an arbitrary adjacency list.
/// Returns component index per node, components numbered in reverse
/// topological order (a component only points to lower-numbered ones).
std::vector<int> tarjan_scc(const std::vector<std::vector<std::uint32_t>>& adj,
                            int& num_components);

/// Same algorithm over a CSR adjacency (node u's targets are
/// targets[offsets[u] .. offsets[u+1])): identical numbering for the same
/// edge order, but no per-node vector allocations — the form the
/// million-gate lint scan builds in one counting pass.
std::vector<int> tarjan_scc_csr(std::span<const std::uint32_t> offsets,
                                std::span<const std::uint32_t> targets,
                                int& num_components);

}  // namespace stt
