#include "graph/paths.hpp"

#include <algorithm>
#include <unordered_set>

namespace stt {

std::vector<std::vector<CellId>> IoPath::segments(const Netlist& nl) const {
  std::vector<std::vector<CellId>> segs;
  std::vector<CellId> current;
  for (const CellId id : cells) {
    const CellKind kind = nl.cell(id).kind;
    if (kind == CellKind::kInput || kind == CellKind::kDff) {
      if (!current.empty()) segs.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(id);
    }
  }
  if (!current.empty()) segs.push_back(std::move(current));
  return segs;
}

namespace {

// Randomized DFS from `start` following fanins (backward=true) or fanouts,
// until the `accept` predicate holds. Returns the walk start..goal, or empty.
std::vector<CellId> directed_walk(const Netlist& nl, CellId start,
                                  bool backward, Rng& rng,
                                  std::size_t max_depth,
                                  const std::function<bool(CellId)>& accept) {
  struct Frame {
    CellId cell;
    std::vector<CellId> order;  // randomized neighbour order
    std::size_t next = 0;
  };
  std::vector<bool> visited(nl.size(), false);
  std::vector<Frame> stack;

  auto neighbours = [&](CellId id) {
    const Cell& c = nl.cell(id);
    const ConnList& nb = backward ? c.fanins : c.fanouts;
    std::vector<CellId> order(nb.begin(), nb.end());
    rng.shuffle(order);
    // Mild bias toward flip-flop neighbours, so walks tend to cross the
    // >= 2 flip-flops the pool requires without meandering through the
    // whole register file.
    std::stable_partition(order.begin(), order.end(), [&](CellId v) {
      return nl.cell(v).kind == CellKind::kDff && rng.chance(0.4);
    });
    return order;
  };

  visited[start] = true;
  stack.push_back({start, neighbours(start), 0});
  if (accept(start)) return {start};

  while (!stack.empty()) {
    Frame& top = stack.back();
    if (top.next >= top.order.size() || stack.size() >= max_depth) {
      stack.pop_back();
      continue;
    }
    const CellId v = top.order[top.next++];
    if (visited[v]) continue;
    visited[v] = true;
    if (accept(v)) {
      std::vector<CellId> walk;
      walk.reserve(stack.size() + 1);
      for (const Frame& f : stack) walk.push_back(f.cell);
      walk.push_back(v);
      return walk;
    }
    stack.push_back({v, neighbours(v), 0});
  }
  return {};
}

std::uint64_t path_hash(const std::vector<CellId>& cells) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const CellId id : cells) {
    h ^= id;
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

IoPath sample_io_path(const Netlist& nl, CellId seed, Rng& rng,
                      std::size_t max_cells) {
  const std::size_t half = std::max<std::size_t>(4, max_cells / 2);
  const auto to_pi = directed_walk(nl, seed, /*backward=*/true, rng, half,
                                   [&](CellId id) {
                                     return nl.cell(id).kind == CellKind::kInput;
                                   });
  if (to_pi.empty()) return {};
  const auto to_po = directed_walk(nl, seed, /*backward=*/false, rng, half,
                                   [&](CellId id) {
                                     return nl.cell(id).is_output;
                                   });
  if (to_po.empty()) return {};

  IoPath path;
  path.cells.assign(to_pi.rbegin(), to_pi.rend());  // PI ... seed
  path.cells.insert(path.cells.end(), to_po.begin() + 1, to_po.end());
  for (const CellId id : path.cells) {
    if (nl.cell(id).kind == CellKind::kDff) ++path.ff_count;
  }
  return path;
}

std::vector<IoPath> build_path_pool(
    const Netlist& nl, Rng& rng, const PathPoolOptions& opt,
    const std::function<bool(const IoPath&)>& exclude) {
  const std::vector<CellId> logic = nl.logic_cells();
  if (logic.empty()) return {};

  auto n_seeds = static_cast<std::size_t>(
      static_cast<double>(logic.size()) * opt.sample_fraction + 0.5);
  n_seeds = std::max(n_seeds, std::min(opt.min_seeds, logic.size()));

  const std::vector<CellId> seeds =
      rng.sample(std::span<const CellId>(logic), n_seeds);

  std::vector<IoPath> pool;
  std::vector<IoPath> fallback;  // best paths below the flip-flop threshold
  std::unordered_set<std::uint64_t> seen;
  int best_ffs = 0;

  for (const CellId seed : seeds) {
    for (int attempt = 0; attempt < opt.attempts_per_seed; ++attempt) {
      IoPath path = sample_io_path(nl, seed, rng, opt.max_cells);
      if (path.cells.empty()) break;  // seed disconnected; retries won't help
      if (!seen.insert(path_hash(path.cells)).second) continue;
      if (exclude && exclude(path)) continue;
      if (path.ff_count >= opt.min_ffs) {
        pool.push_back(std::move(path));
        break;
      }
      best_ffs = std::max(best_ffs, path.ff_count);
      fallback.push_back(std::move(path));
    }
  }

  if (pool.empty()) {
    // Relax the flip-flop requirement to what the circuit actually offers.
    for (auto& path : fallback) {
      if (path.ff_count == best_ffs) pool.push_back(std::move(path));
    }
  }

  std::stable_sort(pool.begin(), pool.end(),
                   [](const IoPath& a, const IoPath& b) {
                     if (a.ff_count != b.ff_count) return a.ff_count > b.ff_count;
                     return a.cells.size() > b.cells.size();
                   });
  return pool;
}

}  // namespace stt
