// The paper's I/O-path pool (Section IV-A, implementation paragraph):
//
//   "we randomly select a sample of 2% of the components within the circuit
//    and perform a depth-first search in the graph to find the path to a
//    primary input and a primary output of the circuit containing at least
//    two flip-flops. Once all of the unique paths have been collected, we
//    remove any paths that contain the critical path and sort the remaining
//    paths by depth (e.g., the number of flip-flops between the primary
//    input and primary output)."
//
// An IoPath is a concrete PI -> PO walk through the cell graph; its
// `segments()` decomposition yields the constituent *timing paths* — maximal
// combinational stretches between sequential endpoints (PI/DFF -> DFF/PO) —
// which are the units the dependent and parametric-aware selections operate
// on.
#pragma once

#include <functional>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace stt {

struct IoPath {
  std::vector<CellId> cells;  ///< PI first, PO-driving cell last
  int ff_count = 0;           ///< flip-flops on the walk (its "depth")

  /// Combinational timing-path segments (PI/DFF -> DFF/PO stretches),
  /// excluding the sequential endpoints themselves. Segments may be empty
  /// when two flip-flops are back to back; empty segments are dropped.
  std::vector<std::vector<CellId>> segments(const Netlist& nl) const;
};

struct PathPoolOptions {
  /// Fraction of logic cells used as DFS seeds (the paper's 2%).
  double sample_fraction = 0.02;
  /// Minimum seeds regardless of circuit size, so tiny circuits still yield
  /// a usable pool.
  std::size_t min_seeds = 8;
  /// Required flip-flop count on a path (the paper's "at least two").
  int min_ffs = 2;
  /// Randomized-DFS retries per seed before giving up on it.
  int attempts_per_seed = 6;
  /// Cap on the cell count of a sampled path. Unbounded random walks in
  /// large sequential circuits meander through hundreds of flip-flops,
  /// which would make the dependent selection replace far more gates than
  /// any real I/O path contains (the paper's dependent counts top out
  /// around 256 on s9234a). The walk backtracks when it exceeds the cap.
  std::size_t max_cells = 320;
};

/// Build the pool: seed-sampled randomized DFS walks, deduplicated, filtered
/// through `exclude` (used to drop paths that contain critical-path cells),
/// sorted by flip-flop depth, deepest first.
///
/// If no seed yields a path meeting `min_ffs`, the constraint is relaxed to
/// the best flip-flop count actually found (small/combinational-heavy
/// circuits), so the pool is never empty for a connected circuit.
std::vector<IoPath> build_path_pool(
    const Netlist& nl, Rng& rng, const PathPoolOptions& opt = {},
    const std::function<bool(const IoPath&)>& exclude = {});

/// One randomized backward+forward DFS walk through `seed`; empty result if
/// the seed cannot reach both a PI and a PO within the length cap.
IoPath sample_io_path(const Netlist& nl, CellId seed, Rng& rng,
                      std::size_t max_cells = 320);

}  // namespace stt
