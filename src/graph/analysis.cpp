#include "graph/analysis.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>

namespace stt {

std::vector<int> combinational_levels(const Netlist& nl) {
  std::vector<int> level(nl.size(), 0);
  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    int lvl = 0;
    for (const CellId f : c.fanins) lvl = std::max(lvl, level[f] + 1);
    level[id] = lvl;
  }
  return level;
}

namespace {

// 0-1 BFS where crossing into (or out of) a DFF costs 1, everything else 0.
// `forward` selects the edge direction: forward = PI->PO orientation.
std::vector<int> zero_one_bfs(const Netlist& nl,
                              const std::vector<CellId>& sources,
                              bool forward) {
  std::vector<int> dist(nl.size(), kUnreachable);
  std::deque<CellId> queue;
  for (const CellId s : sources) {
    if (dist[s] != 0) {
      dist[s] = 0;
      queue.push_front(s);
    }
  }
  while (!queue.empty()) {
    const CellId u = queue.front();
    queue.pop_front();
    const int du = dist[u];
    auto relax = [&](CellId v, int w) {
      if (du + w < dist[v]) {
        dist[v] = du + w;
        if (w == 0) {
          queue.push_front(v);
        } else {
          queue.push_back(v);
        }
      }
    };
    if (forward) {
      for (const CellId v : nl.cell(u).fanouts) {
        relax(v, nl.cell(v).kind == CellKind::kDff ? 1 : 0);
      }
    } else {
      // Walking backward from u to its driver v: if u itself is a DFF, the
      // step crosses one flip-flop.
      const int w = nl.cell(u).kind == CellKind::kDff ? 1 : 0;
      for (const CellId v : nl.cell(u).fanins) relax(v, w);
    }
  }
  return dist;
}

}  // namespace

std::vector<int> seq_depth_to_po(const Netlist& nl) {
  std::vector<CellId> sources(nl.outputs().begin(), nl.outputs().end());
  return zero_one_bfs(nl, sources, /*forward=*/false);
}

std::vector<int> seq_depth_from_pi(const Netlist& nl) {
  std::vector<CellId> sources(nl.inputs().begin(), nl.inputs().end());
  return zero_one_bfs(nl, sources, /*forward=*/true);
}

std::vector<int> tarjan_scc(const std::vector<std::vector<std::uint32_t>>& adj,
                            int& num_components) {
  // Flatten to CSR preserving edge order, then run the CSR core — the
  // numbering only depends on edge order, so both entry points agree.
  std::vector<std::uint32_t> offsets(adj.size() + 1, 0);
  std::size_t total = 0;
  for (std::size_t u = 0; u < adj.size(); ++u) {
    total += adj[u].size();
    offsets[u + 1] = static_cast<std::uint32_t>(total);
  }
  std::vector<std::uint32_t> targets;
  targets.reserve(total);
  for (const auto& row : adj) {
    targets.insert(targets.end(), row.begin(), row.end());
  }
  return tarjan_scc_csr(offsets, targets, num_components);
}

std::vector<int> tarjan_scc_csr(std::span<const std::uint32_t> offsets,
                                std::span<const std::uint32_t> targets,
                                int& num_components) {
  const std::size_t n = offsets.empty() ? 0 : offsets.size() - 1;
  std::vector<int> comp(n, -1), low(n, 0), index(n, -1);
  std::vector<std::uint32_t> stack;
  std::vector<bool> on_stack(n, false);
  int next_index = 0;
  num_components = 0;

  // Iterative Tarjan to survive deep graphs.
  struct Frame {
    std::uint32_t node;
    std::uint32_t edge;  // cursor relative to offsets[node]
  };
  std::vector<Frame> call;
  for (std::uint32_t root = 0; root < n; ++root) {
    if (index[root] != -1) continue;
    call.push_back({root, 0});
    while (!call.empty()) {
      auto& [u, edge] = call.back();
      if (edge == 0) {
        index[u] = low[u] = next_index++;
        stack.push_back(u);
        on_stack[u] = true;
      }
      bool descended = false;
      while (offsets[u] + edge < offsets[u + 1]) {
        const std::uint32_t v = targets[offsets[u] + edge++];
        if (index[v] == -1) {
          call.push_back({v, 0});
          descended = true;
          break;
        }
        if (on_stack[v]) low[u] = std::min(low[u], index[v]);
      }
      if (descended) continue;
      if (low[u] == index[u]) {
        while (true) {
          const std::uint32_t w = stack.back();
          stack.pop_back();
          on_stack[w] = false;
          comp[w] = num_components;
          if (w == u) break;
        }
        ++num_components;
      }
      const std::uint32_t finished = u;
      call.pop_back();
      if (!call.empty()) {
        const std::uint32_t parent = call.back().node;
        low[parent] = std::min(low[parent], low[finished]);
      }
    }
  }
  return comp;
}

namespace {

// Sequential sources (DFF outputs / any PI) combinationally reaching `start`
// walking backward. Returns DFF ids; sets `from_pi` if a PI is reached.
std::vector<CellId> comb_seq_sources(const Netlist& nl, CellId start,
                                     bool& from_pi, std::vector<int>& mark,
                                     int stamp) {
  std::vector<CellId> result;
  from_pi = false;
  std::vector<CellId> work{start};
  while (!work.empty()) {
    const CellId u = work.back();
    work.pop_back();
    if (mark[u] == stamp) continue;
    mark[u] = stamp;
    const Cell& c = nl.cell(u);
    if (c.kind == CellKind::kDff) {
      result.push_back(u);
      continue;  // do not cross the flip-flop
    }
    if (c.kind == CellKind::kInput) {
      from_pi = true;
      continue;
    }
    for (const CellId f : c.fanins) work.push_back(f);
  }
  return result;
}

}  // namespace

int circuit_seq_depth(const Netlist& nl) {
  const auto dffs = nl.dffs();
  const auto n_ff = dffs.size();
  // FF-graph nodes: [0, n_ff) = flip-flops, n_ff = SRC (PIs), n_ff+1 = SNK.
  const std::uint32_t kSrc = static_cast<std::uint32_t>(n_ff);
  const std::uint32_t kSnk = kSrc + 1;
  std::vector<std::vector<std::uint32_t>> adj(n_ff + 2);

  std::vector<std::uint32_t> ff_index(nl.size(), 0);
  for (std::uint32_t i = 0; i < n_ff; ++i) ff_index[dffs[i]] = i;

  std::vector<int> mark(nl.size(), -1);
  int stamp = 0;
  for (std::uint32_t i = 0; i < n_ff; ++i) {
    bool from_pi = false;
    const CellId d_pin = nl.cell(dffs[i]).fanins.empty()
                             ? kNullCell
                             : nl.cell(dffs[i]).fanins[0];
    if (d_pin == kNullCell) continue;
    for (const CellId src : comb_seq_sources(nl, d_pin, from_pi, mark, stamp++)) {
      adj[ff_index[src]].push_back(i);
    }
    if (from_pi) adj[kSrc].push_back(i);
  }
  for (const CellId po : nl.outputs()) {
    bool from_pi = false;
    for (const CellId src : comb_seq_sources(nl, po, from_pi, mark, stamp++)) {
      adj[ff_index[src]].push_back(kSnk);
    }
    if (from_pi) adj[kSrc].push_back(kSnk);
  }

  int num_comp = 0;
  const std::vector<int> comp = tarjan_scc(adj, num_comp);

  // Component weights: number of flip-flops (SRC/SNK weigh 0).
  std::vector<int> weight(num_comp, 0);
  for (std::uint32_t i = 0; i < n_ff; ++i) ++weight[comp[i]];

  // Condensation edges; components numbered in reverse topological order, so
  // an edge goes from a higher comp index to a lower (or equal, intra-SCC).
  std::vector<std::vector<int>> cadj(num_comp);
  for (std::uint32_t u = 0; u < adj.size(); ++u) {
    for (const std::uint32_t v : adj[u]) {
      if (comp[u] != comp[v]) cadj[comp[u]].push_back(comp[v]);
    }
  }

  // best[c] = heaviest FF chain starting in c and ending at SNK's component.
  const int snk_comp = comp[kSnk];
  std::vector<long long> best(num_comp, -1);
  best[snk_comp] = weight[snk_comp];
  for (int c = 0; c < num_comp; ++c) {  // children (lower index) first
    long long reach = -1;
    for (const int child : cadj[c]) reach = std::max(reach, best[child]);
    if (reach >= 0) best[c] = std::max(best[c], weight[c] + reach);
  }
  const long long d = best[comp[kSrc]];
  return d <= 0 ? 1 : static_cast<int>(d);
}

namespace {

std::vector<CellId> cone(const Netlist& nl, std::span<const CellId> roots,
                         bool forward) {
  std::vector<bool> seen(nl.size(), false);
  std::vector<CellId> work(roots.begin(), roots.end());
  std::vector<CellId> out;
  while (!work.empty()) {
    const CellId u = work.back();
    work.pop_back();
    if (u == kNullCell || seen[u]) continue;
    seen[u] = true;
    out.push_back(u);
    const Cell& c = nl.cell(u);
    const auto& next = forward ? c.fanouts : c.fanins;
    for (const CellId v : next) work.push_back(v);
  }
  return out;
}

}  // namespace

std::vector<CellId> fanin_cone(const Netlist& nl,
                               std::span<const CellId> roots) {
  return cone(nl, roots, /*forward=*/false);
}

std::vector<CellId> fanout_cone(const Netlist& nl,
                                std::span<const CellId> roots) {
  return cone(nl, roots, /*forward=*/true);
}

}  // namespace stt
