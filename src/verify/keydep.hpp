// Key-dependency analysis: a static attack-resilience verdict per key cell,
// built on the dataflow framework (verify/dataflow).
//
// The paper's Eqs. (1)-(3) assume every missing gate contributes independent
// key entropy; the obfuscation literature (Rajendran et al., DAC'12;
// ASSURE) shows that is only true when no key bit is unit-propagatable,
// removable, or mutually redundant with another. This pass classifies every
// key cell of the *foundry view* — it never reads a LUT mask, so it computes
// the same answer on the configured and the redacted netlist, which is what
// makes the oracle-free `static` attack (attack/registry) and the campaign's
// predicted-resilience columns deterministic by construction:
//
//   constant         the secret is unit-propagatable. The `const` defense's
//                    injected-constant template (a 1-input LUT `lc` whose
//                    sole fanout is XOR(driver, lc) on the same driver) is
//                    value-preserving by construction, which forces
//                    lc == const0 — recoverable with zero oracle queries.
//   removable        the cell's output provably never reaches an
//                    observation point (ternary masking or support-function
//                    vacuousness): any key value works.
//   mutable          a declared key construct whose fanout cone touches no
//                    other key cell's cone — resolvable independently of
//                    every other key bit (Rajendran's "mutable" gates).
//   pairwise-secure  a declared construct whose cone converges with another
//                    key cell's cone before an observation point.
//   hard             everything else (a camouflaged multi-row LUT the
//                    static layer cannot collapse).
//
// Effective entropy per cell: 0 bits when constant/removable, 1 bit for a
// declared construct (the scheme is public — an XOR key gate is BUF or NOT,
// a decoy latch transparent or latched, a locked constant 0 or 1), one
// composite bit for a whole series chain of key gates, and one bit per
// *reachable* truth-table row otherwise. `eff_key_bits` (the predicted
// log2 effective key space) sums these; `key_bits_static` counts the
// nominal bits of constant/removable cells — what an attacker gets for free.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "verify/annotations.hpp"
#include "verify/finding.hpp"

namespace stt {

enum class KeyVerdict {
  kConstant,
  kRemovable,
  kMutable,
  kPairwiseSecure,
  kHard,
};

std::string_view key_verdict_name(KeyVerdict v);

/// How the key cell got into the netlist, from annotations plus structure.
enum class KeyConstruct {
  kCamouflaged,       ///< converted gate (paper flow); no template known
  kKeyGate,           ///< declared XOR/XNOR key gate (BUF/NOT LUT1)
  kDecoyLatch,        ///< declared decoy-latch mux (LUT2)
  kLockedConstant,    ///< declared constant LUT (ASSURE convert mode)
  kInjectedConstant,  ///< structural injected-constant template (XOR companion)
};

std::string_view key_construct_name(KeyConstruct c);

struct KeyCellReport {
  CellId cell = kNullCell;
  std::string name;
  int fanin = 0;
  int nominal_bits = 0;  ///< 2^fanin truth-table rows = key bits held
  std::uint64_t reachable_rows = 0;
  int reachable_count = 0;
  bool masked = false;   ///< ternary force-probe: blocked from every obs point
  bool vacuous = false;  ///< support pass: variable absent from every obs fn
  bool unit_propagated = false;
  std::uint64_t propagated_mask = 0;  ///< meaningful iff unit_propagated
  KeyConstruct construct = KeyConstruct::kCamouflaged;
  KeyVerdict verdict = KeyVerdict::kHard;
  int interference_degree = 0;  ///< key cells whose fanout cone meets ours
  int cone_size = 0;            ///< combinational fanout cone incl. self
  int chain = -1;               ///< series key-gate chain index; -1 if none
  int effective_bits = 0;       ///< entropy contribution after analysis
};

/// One edge of the key-interference graph: the fanout cones of two key
/// cells share at least one cell before an observation point.
struct KeyInterferenceEdge {
  CellId a = kNullCell;  ///< a < b
  CellId b = kNullCell;
  CellId converge = kNullCell;  ///< earliest shared cone cell (topo order)
  bool series = false;          ///< one cell lies inside the other's cone
};

struct KeydepOptions {
  /// Declared defense constructs. Empty is the pure attacker view: template
  /// collapse of declared constructs is off, but the structural
  /// injected-constant detection and the removability proofs still apply
  /// (they need no declarations).
  DefenseAnnotations defense;
  /// Run the support-function pass (KEY008 vacuousness). The ternary layer
  /// alone already proves masking; this adds the finer functional check.
  bool support_analysis = true;
};

struct KeydepResult {
  std::vector<KeyCellReport> cells;        ///< ascending CellId
  std::vector<KeyInterferenceEdge> edges;  ///< sorted by (a, b)
  int key_cells = 0;
  int key_bits = 0;         ///< nominal: sum of 2^fanin
  int key_bits_static = 0;  ///< statically recovered (constant + removable)
  int eff_key_bits = 0;     ///< predicted log2 effective key space
  int constant_cells = 0;
  int removable_cells = 0;
  int mutable_cells = 0;
  int pairwise_cells = 0;
  int hard_cells = 0;
  /// KEY001-KEY008, sorted by (rule, cell name, message).
  std::vector<LintFinding> findings;

  /// "empty" (no key cells), "broken" (no effective entropy left),
  /// "degraded" (eff_key_bits < key_bits), or "secure".
  std::string verdict() const;
};

/// Analyze every LUT (key cell) of `nl`. Requires an evaluable netlist
/// (legal arities, resolved fan-ins); throws std::runtime_error otherwise.
KeydepResult analyze_keydep(const Netlist& nl, const KeydepOptions& opt = {});

/// The `sttlock analyze` JSON document: summary counters, per-cell records,
/// and the interference graph (schema documented in EXPERIMENTS.md).
std::string keydep_json(const Netlist& nl, const KeydepResult& r);

}  // namespace stt
