// Layer 2 of `sttlock lint`: the static-deobfuscation security audit.
//
// Without issuing a single oracle query, an attacker armed with constant
// propagation and testability analysis can already shrink the paper's
// security figures: a missing gate whose input is tied to a static constant
// only exposes half of its truth-table rows per tied input; a missing gate
// whose reachable rows all agree has a fully inferable (constant) function;
// a missing gate whose output is statically blocked from every observation
// point never influences the chip at all. Each case collapses the candidate
// set P_i (or removes gate i from M entirely), so Eqs. (1)-(3) computed from
// the optimistic per-gate (alpha, P, D) overstate the attack cost.
//
// This pass runs the attacker-view ternary propagation (sim/ternary via
// attack/partial_eval: every LUT output is X), audits each missing gate,
// then recomputes Eqs. (1)-(3) from the audited alpha/P/D/I/M and reports
// the delta against core/security.cpp's optimistic figures. On a netlist
// where nothing collapses the audited report matches the optimistic one
// bit-for-bit (identical arithmetic in identical order) — a property the
// test suite pins down.
#pragma once

#include <vector>

#include "core/security.hpp"
#include "core/similarity.hpp"
#include "sim/ternary.hpp"
#include "verify/annotations.hpp"
#include "verify/finding.hpp"

namespace stt {

struct StaticAuditOptions {
  SimilarityModel model = SimilarityModel::paper();
  /// Declared defense constructs. Findings such a construct triggers *by
  /// design* are not emitted: SEC002 for locked constants (the configured
  /// function being constant is the defense, not a leak) and SEC003 for
  /// decoy latches (the transparent mux ignores its decoy input on
  /// purpose). Only the diagnostics are suppressed — the audited security
  /// arithmetic (M, alpha/P/D, Eqs. 1-3) is computed exactly as without
  /// annotations, so the attack-cost figures stay honest.
  DefenseAnnotations defense;
  /// SEC004 fires when the SCOAP attacker-view resolvability of a missing
  /// gate (cheapest row justification + observation cost) is at or below
  /// this; the default only catches PI-adjacent gates observable without
  /// crossing a flip-flop.
  double resolvability_threshold = 6.0;
  /// Disable the SCOAP pass (it dominates audit cost on large netlists).
  bool scoap = true;
};

/// Per-missing-gate audit record.
struct LutAudit {
  CellId cell = kNullCell;
  int fanin = 0;
  /// Per input slot: kZero/kOne when the driver is a static constant under
  /// the attacker-view propagation, kX otherwise.
  std::vector<Tri> input_values;
  int constant_inputs = 0;
  /// Truth-table rows consistent with the constant inputs.
  std::uint64_t reachable_rows = 0;
  /// Free inputs the mask (restricted to reachable rows) depends on.
  int effective_support = 0;
  bool inferable = false;  ///< restricted function is constant
  bool masked = false;     ///< output blocked from every observation point
  double resolvability = 0;  ///< SCOAP proxy (0 when the pass is disabled)
};

struct StaticAuditResult {
  std::vector<LintFinding> findings;
  std::vector<LutAudit> luts;  ///< ascending CellId, one entry per LUT
  SecurityReport optimistic;   ///< core/security.cpp verbatim
  SecurityReport audited;      ///< recomputed from audited alpha/P/D/I/M
  /// log10(optimistic) - log10(audited) per equation; 0 when nothing
  /// collapsed, positive when the audit shrank the attack cost.
  double log10_drop_indep = 0;
  double log10_drop_dep = 0;
  double log10_drop_bf = 0;
};

/// Run the audit. The netlist must be structurally evaluable (layer 1's
/// `evaluable` flag); throws std::runtime_error otherwise.
StaticAuditResult run_static_audit(const Netlist& nl,
                                   const StaticAuditOptions& opt = {});

}  // namespace stt
