#include "verify/annotations.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "util/strings.hpp"

namespace stt {

void DefenseAnnotations::merge(const DefenseAnnotations& other) {
  key_gates.insert(other.key_gates.begin(), other.key_gates.end());
  decoy_latches.insert(other.decoy_latches.begin(),
                       other.decoy_latches.end());
  locked_constants.insert(other.locked_constants.begin(),
                          other.locked_constants.end());
}

std::string annotations_to_string(const DefenseAnnotations& a) {
  std::string out;
  const auto emit = [&out](const char* tag,
                           const std::unordered_set<std::string>& names) {
    std::vector<std::string> sorted(names.begin(), names.end());
    std::sort(sorted.begin(), sorted.end());
    for (const std::string& name : sorted) {
      out += tag;
      out += ' ';
      out += name;
      out += '\n';
    }
  };
  emit("keygate", a.key_gates);
  emit("latch", a.decoy_latches);
  emit("const", a.locked_constants);
  return out;
}

DefenseAnnotations annotations_from_string(const std::string& text) {
  DefenseAnnotations a;
  for (const std::string& raw : split(text, '\n')) {
    const std::string line{trim(raw)};
    if (line.empty() || line[0] == '#') continue;
    const auto fields = split_ws(line);
    if (fields.size() != 2) {
      throw std::runtime_error("annotations: expected '<class> <name>', got '" +
                               line + "'");
    }
    if (fields[0] == "keygate") {
      a.key_gates.insert(fields[1]);
    } else if (fields[0] == "latch") {
      a.decoy_latches.insert(fields[1]);
    } else if (fields[0] == "const") {
      a.locked_constants.insert(fields[1]);
    } else {
      throw std::runtime_error("annotations: unknown class '" + fields[0] +
                               "' (expected keygate|latch|const)");
    }
  }
  return a;
}

}  // namespace stt
