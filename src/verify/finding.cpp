#include "verify/finding.hpp"

namespace stt {

std::string_view severity_name(LintSeverity severity) {
  switch (severity) {
    case LintSeverity::kInfo: return "info";
    case LintSeverity::kWarning: return "warning";
    case LintSeverity::kError: return "error";
  }
  return "?";
}

std::string_view rule_id(LintRule rule) {
  switch (rule) {
    case LintRule::kCombinationalCycle: return "STR001";
    case LintRule::kUnresolvedFanin: return "STR002";
    case LintRule::kArityMismatch: return "STR003";
    case LintRule::kFanoutDesync: return "STR004";
    case LintRule::kNoPrimaryOutputs: return "STR005";
    case LintRule::kConstantOutput: return "STR006";
    case LintRule::kDeadGate: return "STR007";
    case LintRule::kDuplicateFanin: return "STR008";
    case LintRule::kLutMaskWidth: return "STR009";
    case LintRule::kSingleInputLut: return "HYB001";
    case LintRule::kCamouflagedCmos: return "HYB002";
    case LintRule::kCamouflageMask: return "HYB003";
    case LintRule::kKeyGate: return "HYB004";
    case LintRule::kDecoyLatch: return "HYB005";
    case LintRule::kLockedConstant: return "HYB006";
    case LintRule::kConstantFedLut: return "SEC001";
    case LintRule::kInferableLut: return "SEC002";
    case LintRule::kVacuousLutInput: return "SEC003";
    case LintRule::kResolvableLut: return "SEC004";
    case LintRule::kMaskedLut: return "SEC005";
    case LintRule::kAuditSkipped: return "SEC000";
    case LintRule::kKeyConstant: return "KEY001";
    case LintRule::kKeyRemovable: return "KEY002";
    case LintRule::kKeyMutable: return "KEY003";
    case LintRule::kKeyChain: return "KEY004";
    case LintRule::kKeyPairwise: return "KEY005";
    case LintRule::kKeyDeadRows: return "KEY006";
    case LintRule::kKeySpace: return "KEY007";
    case LintRule::kKeyVacuous: return "KEY008";
  }
  return "???";
}

std::string_view rule_summary(LintRule rule) {
  switch (rule) {
    case LintRule::kCombinationalCycle:
      return "cell lies on a combinational cycle";
    case LintRule::kUnresolvedFanin:
      return "fan-in slot references no cell";
    case LintRule::kArityMismatch:
      return "fan-in count is illegal for the cell kind";
    case LintRule::kFanoutDesync:
      return "fanout list disagrees with fan-in lists";
    case LintRule::kNoPrimaryOutputs:
      return "netlist declares no primary outputs";
    case LintRule::kConstantOutput:
      return "primary output driven by a constant";
    case LintRule::kDeadGate:
      return "gate drives nothing (no reader, not an output)";
    case LintRule::kDuplicateFanin:
      return "same driver wired to multiple fan-in slots";
    case LintRule::kLutMaskWidth:
      return "LUT mask has bits beyond its 2^k truth-table rows";
    case LintRule::kSingleInputLut:
      return "single-input missing gate (candidate set is only BUF/NOT)";
    case LintRule::kCamouflagedCmos:
      return "cell declared camouflaged but still a plain CMOS gate";
    case LintRule::kCamouflageMask:
      return "camouflaged cell configured outside the camouflage set";
    case LintRule::kKeyGate:
      return "cell declared a key gate but is not a BUF/NOT-configured "
             "1-input LUT";
    case LintRule::kDecoyLatch:
      return "cell declared a decoy latch but is not a transparent LUT mux "
             "over a decoy flip-flop";
    case LintRule::kLockedConstant:
      return "cell declared a locked constant but is not a "
             "constant-configured LUT";
    case LintRule::kConstantFedLut:
      return "missing-gate input tied to a static constant";
    case LintRule::kInferableLut:
      return "missing gate's function statically inferable (constant output)";
    case LintRule::kVacuousLutInput:
      return "missing gate's function ignores one of its inputs";
    case LintRule::kResolvableLut:
      return "missing gate trivially controllable/observable (SCOAP)";
    case LintRule::kMaskedLut:
      return "missing-gate output statically blocked from every observation "
             "point";
    case LintRule::kAuditSkipped:
      return "security audit skipped (structural errors present)";
    case LintRule::kKeyConstant:
      return "key cell unit-propagates to a constant (zero-query recovery)";
    case LintRule::kKeyRemovable:
      return "key cell statically blocked from every observation point";
    case LintRule::kKeyMutable:
      return "key construct interferes with no other key cell (mutable)";
    case LintRule::kKeyChain:
      return "series key-gate chain collapses to one composite bit";
    case LintRule::kKeyPairwise:
      return "key construct pairwise-interferes with another key cell";
    case LintRule::kKeyDeadRows:
      return "key cell's unreachable truth-table rows carry no entropy";
    case LintRule::kKeySpace:
      return "effective key space below the nominal key bits";
    case LintRule::kKeyVacuous:
      return "key cell absent from every observation support function";
  }
  return "";
}

LintSeverity rule_severity(LintRule rule) {
  switch (rule) {
    case LintRule::kCombinationalCycle:
    case LintRule::kUnresolvedFanin:
    case LintRule::kArityMismatch:
    case LintRule::kFanoutDesync:
    case LintRule::kLutMaskWidth:
    case LintRule::kCamouflagedCmos:
    case LintRule::kCamouflageMask:
    case LintRule::kKeyGate:
    case LintRule::kDecoyLatch:
    case LintRule::kLockedConstant:
    case LintRule::kConstantFedLut:
    case LintRule::kInferableLut:
    case LintRule::kMaskedLut:
      return LintSeverity::kError;
    case LintRule::kNoPrimaryOutputs:
    case LintRule::kConstantOutput:
    case LintRule::kDeadGate:
    case LintRule::kDuplicateFanin:
    case LintRule::kVacuousLutInput:
    case LintRule::kKeyConstant:
    case LintRule::kKeyRemovable:
    case LintRule::kKeyChain:
      return LintSeverity::kWarning;
    case LintRule::kSingleInputLut:
    case LintRule::kResolvableLut:
    case LintRule::kAuditSkipped:
    case LintRule::kKeyMutable:
    case LintRule::kKeyPairwise:
    case LintRule::kKeyDeadRows:
    case LintRule::kKeySpace:
    case LintRule::kKeyVacuous:
      return LintSeverity::kInfo;
  }
  return LintSeverity::kInfo;
}

LintCounts count_findings(const std::vector<LintFinding>& findings) {
  LintCounts counts;
  for (const LintFinding& f : findings) {
    switch (f.severity) {
      case LintSeverity::kError: ++counts.errors; break;
      case LintSeverity::kWarning: ++counts.warnings; break;
      case LintSeverity::kInfo: ++counts.infos; break;
    }
  }
  return counts;
}

LintFinding make_finding(const Netlist& nl, LintRule rule, CellId cell,
                         std::string message) {
  return make_finding(nl, rule, cell, std::move(message),
                      rule_severity(rule));
}

LintFinding make_finding(const Netlist& nl, LintRule rule, CellId cell,
                         std::string message, LintSeverity severity) {
  LintFinding f;
  f.rule = rule;
  f.severity = severity;
  f.cell = cell;
  if (cell != kNullCell && cell < nl.size()) f.cell_name = nl.cell(cell).name;
  f.message = std::move(message);
  return f;
}

}  // namespace stt
