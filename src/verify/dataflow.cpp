#include "verify/dataflow.hpp"

#include <algorithm>
#include <stdexcept>

namespace stt {

// ---------------------------------------------------------------------------
// TernaryDomain
// ---------------------------------------------------------------------------

Tri TernaryDomain::source(const Netlist& /*nl*/, CellId id) const {
  if (id == force_cell) return force_value;
  return Tri::kX;
}

Tri TernaryDomain::transfer(const Netlist& nl, CellId id,
                            std::span<const Tri> fanins) const {
  if (id == force_cell) return force_value;
  const Cell& c = nl.cell(id);
  if (c.kind == CellKind::kConst0) return Tri::kZero;
  if (c.kind == CellKind::kConst1) return Tri::kOne;
  return eval_cell_tri(c, fanins, lut_unknown);
}

// ---------------------------------------------------------------------------
// IntervalDomain
// ---------------------------------------------------------------------------

BitInterval IntervalDomain::source(const Netlist& /*nl*/,
                                   CellId /*id*/) const {
  return BitInterval::top();
}

BitInterval IntervalDomain::transfer(const Netlist& nl, CellId id,
                                     std::span<const BitInterval> fanins)
    const {
  const Cell& c = nl.cell(id);
  if (c.kind == CellKind::kConst0) return BitInterval::constant(false);
  if (c.kind == CellKind::kConst1) return BitInterval::constant(true);
  if (c.kind == CellKind::kLut && lut_unknown) return BitInterval::top();

  const int n = static_cast<int>(fanins.size());

  // Corner enumeration over the non-constant inputs: the output interval is
  // [min, max] over every completion, exact for any single-output function.
  // Wide gates fall back to the ternary transfer (identical result, no
  // 2^free blowup) once the free-input count passes the mask width.
  int free_positions[kMaxLutInputs];
  int n_free = 0;
  std::uint32_t base_row = 0;
  bool too_wide = n > kMaxLutInputs;
  for (int i = 0; i < n && !too_wide; ++i) {
    const BitInterval& v = fanins[static_cast<std::size_t>(i)];
    if (v.is_constant()) {
      if (v.lo) base_row |= (1u << i);
    } else if (n_free < kMaxLutInputs) {
      free_positions[n_free++] = i;
    } else {
      too_wide = true;
    }
  }
  if (too_wide) {
    std::vector<Tri> tri(fanins.size());
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      tri[i] = fanins[i].to_tri();
    }
    const Tri out = eval_cell_tri(c, tri, lut_unknown);
    if (out == Tri::kX) return BitInterval::top();
    return BitInterval::constant(out == Tri::kOne);
  }

  const std::uint64_t mask = c.kind == CellKind::kLut
                                 ? c.lut_mask
                                 : gate_truth_mask(c.kind, n);
  std::uint8_t lo = 1;
  std::uint8_t hi = 0;
  for (std::uint32_t combo = 0; combo < (1u << n_free); ++combo) {
    std::uint32_t row = base_row;
    for (int j = 0; j < n_free; ++j) {
      if (combo & (1u << j)) row |= (1u << free_positions[j]);
    }
    const std::uint8_t bit = (mask >> row) & 1ull;
    lo = std::min(lo, bit);
    hi = std::max(hi, bit);
  }
  return {lo, hi};
}

// ---------------------------------------------------------------------------
// SupportFunction / SupportDomain
// ---------------------------------------------------------------------------

SupportFunction SupportFunction::constant(bool v) {
  SupportFunction f;
  f.mask = v ? 1ull : 0ull;
  return f;
}

SupportFunction SupportFunction::variable(CellId id) {
  SupportFunction f;
  f.vars = {id};
  f.mask = 0b10;  // row 0 -> 0, row 1 -> 1
  return f;
}

bool SupportFunction::depends_on(CellId v) const {
  return std::find(vars.begin(), vars.end(), v) != vars.end();
}

void SupportFunction::normalize() {
  for (int i = static_cast<int>(vars.size()) - 1; i >= 0; --i) {
    const int k = static_cast<int>(vars.size());
    bool depends = false;
    for (std::uint32_t row = 0; row < num_rows(k) && !depends; ++row) {
      if (row & (1u << i)) continue;
      const std::uint32_t partner = row | (1u << i);
      depends = ((mask >> row) & 1ull) != ((mask >> partner) & 1ull);
    }
    if (depends) continue;
    // Project variable i out: keep the rows where it is 0, repacked.
    std::uint64_t next = 0;
    std::uint32_t out_row = 0;
    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      if (row & (1u << i)) continue;
      if ((mask >> row) & 1ull) next |= (1ull << out_row);
      ++out_row;
    }
    mask = next;
    vars.erase(vars.begin() + i);
  }
}

SupportFunction SupportDomain::source(const Netlist& /*nl*/,
                                      CellId id) const {
  return SupportFunction::variable(id);
}

SupportFunction SupportDomain::transfer(
    const Netlist& nl, CellId id,
    std::span<const SupportFunction> fanins) const {
  const Cell& c = nl.cell(id);
  if (c.kind == CellKind::kConst0) return SupportFunction::constant(false);
  if (c.kind == CellKind::kConst1) return SupportFunction::constant(true);

  if (cut_state == nullptr) {
    throw std::logic_error("SupportDomain: cut_state not attached");
  }
  auto cut_here = [&](bool absorbs_fanins) {
    cut_state->cut[id] = 1;
    if (absorbs_fanins) {
      for (const SupportFunction& f : fanins) {
        for (const CellId v : f.vars) cut_state->absorbed[v] = 1;
      }
    }
    return SupportFunction::variable(id);
  };

  // An unknown LUT is a fresh variable by definition — the attacker does not
  // know its function — and conservatively absorbs its fan-in variables
  // (the secret mask may or may not depend on them).
  if (c.kind == CellKind::kLut && lut_unknown) return cut_here(true);

  // Merge the fan-in supports; overflow of the mask width cuts this cell.
  std::vector<CellId> merged;
  for (const SupportFunction& f : fanins) {
    for (const CellId v : f.vars) {
      const auto it = std::lower_bound(merged.begin(), merged.end(), v);
      if (it == merged.end() || *it != v) merged.insert(it, v);
    }
  }
  if (static_cast<int>(merged.size()) > kMaxLutInputs) return cut_here(true);

  const int n = c.fanin_count();
  const int k = static_cast<int>(merged.size());

  // Per fan-in: position of each of its variables inside the merged set.
  std::vector<std::vector<int>> positions(fanins.size());
  for (std::size_t i = 0; i < fanins.size(); ++i) {
    for (const CellId v : fanins[i].vars) {
      positions[i].push_back(static_cast<int>(
          std::lower_bound(merged.begin(), merged.end(), v) -
          merged.begin()));
    }
  }

  SupportFunction out;
  out.vars = std::move(merged);
  for (std::uint32_t row = 0; row < num_rows(k); ++row) {
    std::uint32_t packed = 0;
    for (std::size_t i = 0; i < fanins.size(); ++i) {
      std::uint32_t sub_row = 0;
      for (std::size_t j = 0; j < positions[i].size(); ++j) {
        if (row & (1u << positions[i][j])) sub_row |= (1u << j);
      }
      if ((fanins[i].mask >> sub_row) & 1ull) {
        packed |= (1u << i);
      }
    }
    // eval_gate is arity-generic (wide AND/OR trees included); only the LUT
    // needs its mask.
    const bool out_bit = c.kind == CellKind::kLut
                             ? ((c.lut_mask >> packed) & 1ull) != 0
                             : eval_gate(c.kind, packed, n);
    if (out_bit) out.mask |= (1ull << row);
  }
  out.normalize();
  return out;
}

}  // namespace stt
