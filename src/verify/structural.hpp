// Layer 1 of `sttlock lint`: structural well-formedness checks.
//
// Unlike Netlist::check(), which throws on the first violation, this pass
// tolerates arbitrarily malformed netlists (unresolved fan-ins, cycles,
// desynchronized fanout lists) and reports *every* violation as a finding —
// a netlist fresh out of a two-pass parser or an in-place editing bug must
// be fully diagnosable in one run.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "verify/finding.hpp"

namespace stt {

struct StructuralLintOptions {
  /// Cells declared camouflaged (e.g. CamouflageResult::camouflaged). The
  /// hybrid invariants HYB002/HYB003 check that each is a LUT configured
  /// within the camouflage candidate set; empty disables both rules.
  std::unordered_set<CellId> camouflaged;
};

struct StructuralLintResult {
  std::vector<LintFinding> findings;
  /// False when cycles / unresolved fan-ins / arity violations make the
  /// netlist unevaluable; layer 2 requires this to be true.
  bool evaluable = true;
};

StructuralLintResult run_structural_lint(
    const Netlist& nl, const StructuralLintOptions& opt = {});

}  // namespace stt
