// Layer 1 of `sttlock lint`: structural well-formedness checks.
//
// Unlike Netlist::check(), which throws on the first violation, this pass
// tolerates arbitrarily malformed netlists (unresolved fan-ins, cycles,
// desynchronized fanout lists) and reports *every* violation as a finding —
// a netlist fresh out of a two-pass parser or an in-place editing bug must
// be fully diagnosable in one run.
#pragma once

#include <optional>
#include <unordered_set>
#include <vector>

#include "verify/annotations.hpp"
#include "verify/finding.hpp"

namespace stt {

struct StructuralLintOptions {
  /// Cells declared camouflaged (e.g. CamouflageResult::camouflaged). The
  /// hybrid invariants HYB002/HYB003 check that each is a LUT configured
  /// within the camouflage candidate set; empty disables both rules.
  std::unordered_set<CellId> camouflaged;

  /// Constructs a defense declared it inserted (DefenseResult::annotations).
  /// Each declaration is validated (HYB004-006) and, in exchange, the
  /// finding the construct triggers *by design* is suppressed: HYB001 for
  /// key gates and locked constants (a 1-input LUT is the point, not a
  /// weakness the designer is unaware of).
  DefenseAnnotations defense;
};

struct StructuralLintResult {
  std::vector<LintFinding> findings;
  /// False when cycles / unresolved fan-ins / arity violations make the
  /// netlist unevaluable; layer 2 requires this to be true.
  bool evaluable = true;
};

StructuralLintResult run_structural_lint(
    const Netlist& nl, const StructuralLintOptions& opt = {});

}  // namespace stt
