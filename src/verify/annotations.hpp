// Defense construct annotations consumed by the lint layers.
//
// Netlist formats carry no sideband metadata, so a defense declares the
// constructs it inserted by *net name* — names survive strip_dead_logic,
// serialization round-trips and CellId renumbering. The structural layer
// validates each declared construct (HYB004-006) and both layers suppress
// the findings such a construct triggers *by design*:
//
//   key gate        -> HYB001 (single-input LUT is the point)
//   decoy latch     -> SEC003 (the transparent mux ignores its state input)
//   locked constant -> HYB001 + SEC002 (a constant LUT is the point)
//
// Only the emitted diagnostics are suppressed. The audited security
// arithmetic (verify/audit.cpp) is unchanged: an inferable locked constant
// still leaves M, so `sttlock lint`'s attack-cost figures stay honest about
// what static analysis recovers — the defense is told apart from a defect,
// not given credit it has not earned.
#pragma once

#include <string>
#include <unordered_set>

namespace stt {

struct DefenseAnnotations {
  /// XOR/XNOR-style key gates (defense "xor"): single-input LUTs whose
  /// BUF/NOT polarity is the key bit.
  std::unordered_set<std::string> key_gates;
  /// Decoy-latch muxes (defense "latch"): two-input LUTs selecting between
  /// a data net and a decoy flip-flop of that same net; the configured key
  /// makes them transparent.
  std::unordered_set<std::string> decoy_latches;
  /// Key-fed constants (defense "const"): LUTs whose configured function is
  /// constant by design.
  std::unordered_set<std::string> locked_constants;

  bool empty() const {
    return key_gates.empty() && decoy_latches.empty() &&
           locked_constants.empty();
  }
  std::size_t size() const {
    return key_gates.size() + decoy_latches.size() + locked_constants.size();
  }

  /// Merge another annotation set into this one (defenses composed on the
  /// same netlist).
  void merge(const DefenseAnnotations& other);
};

/// Serialize as "keygate|latch|const <name>" lines (sorted, deterministic)
/// so `sttlock defend` can hand annotations to a later `sttlock lint` run.
std::string annotations_to_string(const DefenseAnnotations& a);
DefenseAnnotations annotations_from_string(const std::string& text);

}  // namespace stt
