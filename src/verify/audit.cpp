#include "verify/audit.hpp"

#include <stdexcept>
#include <unordered_set>

#include "sim/partial_eval.hpp"
#include "graph/analysis.hpp"
#include "sim/scoap.hpp"
#include "util/strings.hpp"

namespace stt {

namespace {

bool definite(Tri t) { return t != Tri::kX; }

// Does the mask, restricted to the reachable rows, change when input `bit`
// flips? Only row pairs that are both reachable count.
bool depends_on(std::uint64_t mask, std::uint64_t reachable, int fanin,
                int bit) {
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    if (row & (1u << bit)) continue;
    const std::uint32_t partner = row | (1u << bit);
    if (!((reachable >> row) & 1ull) || !((reachable >> partner) & 1ull)) {
      continue;
    }
    if (((mask >> row) & 1ull) != ((mask >> partner) & 1ull)) return true;
  }
  return false;
}

}  // namespace

StaticAuditResult run_static_audit(const Netlist& nl,
                                   const StaticAuditOptions& opt) {
  // The pass simulates and topologically orders the netlist, so it needs
  // the structural layer's "evaluable" bar: resolved fan-ins and legal
  // arities everywhere (topo_order itself rejects cycles).
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    const FaninRange range = fanin_range(c.kind);
    if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
      throw std::runtime_error("static audit: illegal arity on '" +
                               std::string(c.name) + "'");
    }
    for (const CellId f : c.fanins) {
      if (f == kNullCell || f >= nl.size()) {
        throw std::runtime_error("static audit: unresolved fan-in on '" +
                                 std::string(c.name) + "'");
      }
    }
  }

  StaticAuditResult result;
  result.optimistic = security_report(nl, opt.model);

  std::vector<CellId> luts;
  for (CellId id = 0; id < nl.size(); ++id) {
    if (nl.cell(id).kind == CellKind::kLut) luts.push_back(id);
  }

  // Attacker-view constant propagation: every primary input and state bit
  // is X, every missing gate's output is X (zero LUT knowledge), so a
  // definite wave value is a static constant no key and no stimulus can
  // change.
  LutKnowledgeMap knowledge;
  for (const CellId id : luts) {
    LutKnowledge k;
    k.rows = num_rows(nl.cell(id).fanin_count());
    knowledge.emplace(id, k);
  }
  const PartialEvaluator evaluator(nl, knowledge);
  const std::vector<Tri> all_x(nl.inputs().size() + nl.dffs().size(),
                               Tri::kX);
  const std::vector<Tri> wave = evaluator.eval(all_x, kNullCell, Tri::kX);

  const ScoapResult scoap = [&] {
    if (!opt.scoap || luts.empty()) return ScoapResult{};
    ScoapOptions sopt;
    sopt.attacker_view = true;
    return compute_scoap(nl, sopt);
  }();

  std::unordered_set<CellId> excluded;  // inferable or masked: drop from M
  for (const CellId id : luts) {
    const Cell& c = nl.cell(id);
    const int k = c.fanin_count();
    LutAudit audit;
    audit.cell = id;
    audit.fanin = k;

    // Constant-fed inputs and the reachable-row set they leave behind.
    std::string const_slots;
    for (int i = 0; i < k; ++i) {
      const Tri v = wave[c.fanins[i]];
      audit.input_values.push_back(v);
      if (definite(v)) {
        ++audit.constant_inputs;
        if (!const_slots.empty()) const_slots += ", ";
        const_slots += strformat("'%s'=%c", std::string(nl.cell(c.fanins[i]).name).c_str(),
                                 tri_char(v));
      }
    }
    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      bool reachable = true;
      for (int i = 0; i < k; ++i) {
        const bool bit = row & (1u << i);
        if ((audit.input_values[i] == Tri::kOne && !bit) ||
            (audit.input_values[i] == Tri::kZero && bit)) {
          reachable = false;
          break;
        }
      }
      if (reachable) audit.reachable_rows |= (1ull << row);
    }

    // Effective support and inferability over the reachable restriction.
    for (int i = 0; i < k; ++i) {
      if (definite(audit.input_values[i])) continue;
      if (depends_on(c.lut_mask, audit.reachable_rows, k, i)) {
        ++audit.effective_support;
      }
    }
    audit.inferable = audit.effective_support == 0;

    if (audit.constant_inputs > 0) {
      result.findings.push_back(make_finding(
          nl, LintRule::kConstantFedLut, id,
          strformat("missing gate '%s' has %d of %d input(s) tied to static "
                    "constants (%s): only %d of %u truth-table rows are "
                    "reachable",
                    std::string(c.name).c_str(), audit.constant_inputs, k,
                    const_slots.c_str(),
                    __builtin_popcountll(audit.reachable_rows),
                    num_rows(k))));
    }
    // By-design suppressions (diagnostics only; every audited quantity
    // below still sees the gate exactly as an attacker would).
    const std::string cname(c.name);
    const bool declared_constant =
        opt.defense.locked_constants.count(cname) != 0;
    const bool declared_latch = opt.defense.decoy_latches.count(cname) != 0;

    if (audit.inferable) {
      if (!declared_constant) {
        const std::uint32_t first_row =
            static_cast<std::uint32_t>(__builtin_ctzll(audit.reachable_rows));
        result.findings.push_back(make_finding(
            nl, LintRule::kInferableLut, id,
            strformat("missing gate '%s' is statically inferable: every "
                      "reachable row yields %c (P collapses to 1)",
                      std::string(c.name).c_str(),
                      ((c.lut_mask >> first_row) & 1ull) ? '1' : '0')));
      }
    } else if (audit.constant_inputs == 0 && audit.effective_support < k &&
               !declared_latch) {
      std::string vacuous;
      for (int i = 0; i < k; ++i) {
        if (depends_on(c.lut_mask, audit.reachable_rows, k, i)) continue;
        if (!vacuous.empty()) vacuous += ", ";
        vacuous += "'";
        vacuous += nl.cell(c.fanins[i]).name;
        vacuous += "'";
      }
      result.findings.push_back(make_finding(
          nl, LintRule::kVacuousLutInput, id,
          strformat("missing gate '%s' ignores input(s) %s: effective "
                    "support is %d of %d",
                    std::string(c.name).c_str(), vacuous.c_str(), audit.effective_support,
                    k)));
    }

    // Masked output: forcing the gate to 0 vs 1 leaves every observation
    // point (primary outputs and flip-flop D pins) at the same *definite*
    // value — sound proof that the secret never reaches the interface.
    if (!nl.outputs().empty() || !nl.dffs().empty()) {
      const std::vector<Tri> wave0 = evaluator.eval(all_x, id, Tri::kZero);
      const std::vector<Tri> wave1 = evaluator.eval(all_x, id, Tri::kOne);
      bool masked = true;
      for (const CellId po : nl.outputs()) {
        if (!definite(wave0[po]) || wave0[po] != wave1[po]) {
          masked = false;
          break;
        }
      }
      if (masked) {
        for (const CellId ff : nl.dffs()) {
          const CellId d = nl.cell(ff).fanins.at(0);
          if (!definite(wave0[d]) || wave0[d] != wave1[d]) {
            masked = false;
            break;
          }
        }
      }
      audit.masked = masked;
      if (masked) {
        result.findings.push_back(make_finding(
            nl, LintRule::kMaskedLut, id,
            strformat("missing gate '%s' is statically blocked from every "
                      "observation point: it contributes to M but its secret "
                      "never reaches the interface",
                      std::string(c.name).c_str())));
      }
    }

    if (opt.scoap && !scoap.co.empty()) {
      audit.resolvability = scoap.resolvability(nl, id);
      if (audit.resolvability <= opt.resolvability_threshold) {
        result.findings.push_back(make_finding(
            nl, LintRule::kResolvableLut, id,
            strformat("missing gate '%s' is trivially resolvable "
                      "(SCOAP justify+observe cost %.1f <= %.1f): "
                      "PI-adjacent rows, flip-flop-free observation",
                      std::string(c.name).c_str(), audit.resolvability,
                      opt.resolvability_threshold)));
      }
    }

    if (audit.inferable || audit.masked) excluded.insert(id);
    result.luts.push_back(std::move(audit));
  }

  // ---- audited Eqs. (1)-(3) -----------------------------------------------
  // Mirrors core/security.cpp term for term; the only deviations are the
  // audited quantities: inferable/masked gates leave M, effective support
  // replaces declared fan-in in alpha/P lookups, and the accessible-input
  // walk does not descend through statically constant cells.
  SecurityReport& audited = result.audited;
  audited.circuit_depth = circuit_seq_depth(nl);

  std::vector<CellId> included;
  for (const CellId id : luts) {
    if (!excluded.count(id)) included.push_back(id);
  }
  audited.missing_gates = static_cast<int>(included.size());
  if (!included.empty()) {
    std::unordered_set<CellId> accessible;
    {
      std::vector<bool> seen(nl.size(), false);
      std::vector<CellId> work;
      for (const CellId id : included) {
        for (const CellId f : nl.cell(id).fanins) {
          if (!definite(wave[f])) work.push_back(f);
        }
      }
      while (!work.empty()) {
        const CellId u = work.back();
        work.pop_back();
        if (seen[u]) continue;
        seen[u] = true;
        const Cell& c = nl.cell(u);
        if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) {
          accessible.insert(u);
          continue;
        }
        for (const CellId f : c.fanins) {
          if (!definite(wave[f])) work.push_back(f);
        }
      }
    }
    audited.accessible_inputs = static_cast<int>(accessible.size());

    const std::vector<int> depth_to_po = seq_depth_to_po(nl);

    BigNum sum;
    BigNum product = BigNum::from_double(1.0);
    BigNum bf_candidates = BigNum::from_double(1.0);
    double alpha_total = 0;
    double cand_total = 0;
    std::size_t audit_index = 0;
    for (const CellId id : included) {
      while (result.luts[audit_index].cell != id) ++audit_index;
      const LutAudit& a = result.luts[audit_index];
      const double alpha = opt.model.alpha_for(a.effective_support);
      const double cand = opt.model.candidates_for(a.effective_support);
      const int d = depth_to_po[id] == kUnreachable
                        ? audited.circuit_depth
                        : depth_to_po[id] + 1;
      alpha_total += alpha;
      cand_total += cand;
      sum += BigNum::from_double(alpha * static_cast<double>(d));
      product *= BigNum::from_double(alpha * cand * static_cast<double>(d));
      bf_candidates *= BigNum::from_double(cand);
    }
    audited.mean_alpha = alpha_total / static_cast<double>(included.size());
    audited.mean_candidates =
        cand_total / static_cast<double>(included.size());
    audited.n_indep = sum;
    audited.n_dep = product;
    audited.n_bf =
        BigNum::pow2(static_cast<double>(audited.accessible_inputs)) *
        bf_candidates *
        BigNum::from_double(static_cast<double>(audited.circuit_depth));
  }

  auto drop = [](const BigNum& optimistic, const BigNum& audited_value) {
    if (optimistic.is_zero() && audited_value.is_zero()) return 0.0;
    return optimistic.log10() - audited_value.log10();
  };
  result.log10_drop_indep = drop(result.optimistic.n_indep, audited.n_indep);
  result.log10_drop_dep = drop(result.optimistic.n_dep, audited.n_dep);
  result.log10_drop_bf = drop(result.optimistic.n_bf, audited.n_bf);
  return result;
}

}  // namespace stt
