// `sttlock lint` driver: both analysis layers plus report rendering.
//
// The JSON report schema (stable, machine-readable; documented in
// EXPERIMENTS.md):
//   {
//     "netlist": "<name>",
//     "verdict": "clean" | "info" | "warnings" | "errors",
//     "counts": {"errors": N, "warnings": N, "infos": N},
//     "findings": [
//       {"rule": "STR001", "severity": "error", "cell": "<net>",
//        "message": "..."}, ...
//     ],
//     "audit": {                       // present when layer 2 ran
//       "missing_gates": M, "audited_missing_gates": M',
//       "accessible_inputs": I, "audited_accessible_inputs": I',
//       "circuit_depth": D,
//       "n_indep": "...", "n_dep": "...", "n_bf": "...",
//       "audited_n_indep": "...", "audited_n_dep": "...",
//       "audited_n_bf": "...",
//       "log10_drop": {"indep": x, "dep": x, "bf": x}
//     }
//   }
#pragma once

#include <string>

#include "verify/audit.hpp"
#include "verify/keydep.hpp"
#include "verify/structural.hpp"

namespace stt {

struct LintOptions {
  StructuralLintOptions structural;
  StaticAuditOptions audit;
  KeydepOptions keydep;
  /// Run the layer 2 security audit (skipped automatically, with an SEC000
  /// info finding, when structural errors make the netlist unevaluable).
  bool run_audit = true;
  /// Run the key-dependency analysis (KEY rules) next to the audit; it runs
  /// under the same evaluability bar and only when the netlist holds LUTs.
  bool run_keydep = true;
  /// Declared defense constructs, merged into every layer's own `defense`
  /// field (convenience so callers set annotations once).
  DefenseAnnotations defense;
};

struct LintReport {
  std::string netlist;
  /// All layers, grouped structural / audit / keydep, each block sorted by
  /// (rule, cell, message) so the JSON report is byte-stable.
  std::vector<LintFinding> findings;
  LintCounts counts;
  bool audit_ran = false;
  StaticAuditResult audit;  ///< meaningful iff audit_ran
  bool keydep_ran = false;
  KeydepResult keydep;  ///< meaningful iff keydep_ran

  /// "clean" (no findings), "info", "warnings", or "errors" — the highest
  /// severity present.
  std::string verdict() const;

  /// Gate outcome: true when the report should fail a CI job. Errors always
  /// fail; `strict` promotes warnings (info never fails).
  bool failed(bool strict) const;
};

LintReport run_lint(const Netlist& nl, const LintOptions& opt = {});

/// Human-readable rendering, one line per finding plus the audit table.
std::string lint_text(const LintReport& report);

/// The JSON document described above.
std::string lint_json(const LintReport& report);

/// Several reports as one JSON array.
std::string lint_json(const std::vector<LintReport>& reports);

}  // namespace stt
