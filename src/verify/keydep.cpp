#include "verify/keydep.hpp"

#include <algorithm>
#include <stdexcept>
#include <tuple>

#include "util/strings.hpp"
#include "verify/dataflow.hpp"

namespace stt {

namespace {

bool definite(Tri t) { return t != Tri::kX; }

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

// Fixed-width bitset over CellIds for the fanout-cone intersections.
class ConeSet {
 public:
  explicit ConeSet(std::size_t cells) : words_((cells + 63) / 64, 0) {}
  void set(CellId id) { words_[id >> 6] |= (1ull << (id & 63)); }
  bool test(CellId id) const {
    return (words_[id >> 6] >> (id & 63)) & 1ull;
  }
  int popcount() const {
    int n = 0;
    for (const std::uint64_t w : words_) n += __builtin_popcountll(w);
    return n;
  }
  bool intersects(const ConeSet& other) const {
    for (std::size_t i = 0; i < words_.size(); ++i) {
      if (words_[i] & other.words_[i]) return true;
    }
    return false;
  }
  /// Cells present in both sets, ascending CellId.
  std::vector<CellId> intersection(const ConeSet& other) const {
    std::vector<CellId> out;
    for (std::size_t i = 0; i < words_.size(); ++i) {
      std::uint64_t w = words_[i] & other.words_[i];
      while (w) {
        const int bit = __builtin_ctzll(w);
        out.push_back(static_cast<CellId>(i * 64 + bit));
        w &= w - 1;
      }
    }
    return out;
  }

 private:
  std::vector<std::uint64_t> words_;
};

// Combinational fanout cone of `root` (cone includes the root; traversal
// stops at DFF D pins — those are observation points, not cone members).
ConeSet fanout_cone(const Netlist& nl, CellId root) {
  ConeSet cone(nl.size());
  std::vector<CellId> work{root};
  cone.set(root);
  while (!work.empty()) {
    const CellId u = work.back();
    work.pop_back();
    for (const CellId reader : nl.cell(u).fanouts) {
      if (nl.cell(reader).kind == CellKind::kDff) continue;
      if (cone.test(reader)) continue;
      cone.set(reader);
      work.push_back(reader);
    }
  }
  return cone;
}

// The `const` defense's injected-constant template: a 1-input LUT `lc` whose
// sole fanout is an XOR reading both `lc` and lc's own driver. The injection
// is value-preserving by construction (x = d XOR lc(d) must equal d for
// every d), which pins lc to the constant-0 function — the actual key mask,
// unit-propagated from the foundry view with zero oracle queries. The
// detection is purely structural, so the oracle-free `static` attack needs
// no annotations to fire it.
bool injected_constant_template(const Netlist& nl, CellId id) {
  const Cell& c = nl.cell(id);
  if (c.kind != CellKind::kLut || c.fanin_count() != 1) return false;
  if (c.fanouts.size() != 1) return false;
  const Cell& g = nl.cell(c.fanouts[0]);
  if (g.kind != CellKind::kXor || g.fanin_count() != 2) return false;
  const CellId driver = c.fanins[0];
  const CellId other = g.fanins[0] == id ? g.fanins[1] : g.fanins[0];
  return (g.fanins[0] == id || g.fanins[1] == id) && other == driver;
}

struct UnionFind {
  std::vector<int> parent;
  explicit UnionFind(int n) : parent(n) {
    for (int i = 0; i < n; ++i) parent[i] = i;
  }
  int find(int x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(int a, int b) { parent[find(a)] = find(b); }
};

}  // namespace

std::string_view key_verdict_name(KeyVerdict v) {
  switch (v) {
    case KeyVerdict::kConstant: return "constant";
    case KeyVerdict::kRemovable: return "removable";
    case KeyVerdict::kMutable: return "mutable";
    case KeyVerdict::kPairwiseSecure: return "pairwise_secure";
    case KeyVerdict::kHard: return "hard";
  }
  return "?";
}

std::string_view key_construct_name(KeyConstruct c) {
  switch (c) {
    case KeyConstruct::kCamouflaged: return "camouflaged";
    case KeyConstruct::kKeyGate: return "key_gate";
    case KeyConstruct::kDecoyLatch: return "decoy_latch";
    case KeyConstruct::kLockedConstant: return "locked_constant";
    case KeyConstruct::kInjectedConstant: return "injected_constant";
  }
  return "?";
}

std::string KeydepResult::verdict() const {
  if (key_cells == 0) return "empty";
  if (eff_key_bits == 0) return "broken";
  if (eff_key_bits < key_bits) return "degraded";
  return "secure";
}

KeydepResult analyze_keydep(const Netlist& nl, const KeydepOptions& opt) {
  // Same evaluability bar as the audit: the dataflow passes simulate and
  // topologically order the netlist.
  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);
    const FaninRange range = fanin_range(c.kind);
    if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
      throw std::runtime_error("keydep: illegal arity on '" +
                               std::string(c.name) + "'");
    }
    for (const CellId f : c.fanins) {
      if (f == kNullCell || f >= nl.size()) {
        throw std::runtime_error("keydep: unresolved fan-in on '" +
                                 std::string(c.name) + "'");
      }
    }
  }

  KeydepResult result;
  std::vector<CellId> luts;
  for (CellId id = 0; id < nl.size(); ++id) {
    if (nl.cell(id).kind == CellKind::kLut) luts.push_back(id);
  }
  result.key_cells = static_cast<int>(luts.size());
  if (luts.empty()) return result;

  // -- dataflow passes ------------------------------------------------------
  // Forward ternary (attacker view): definite wave values are static
  // constants; they restrict each LUT's reachable truth-table rows.
  ForwardDataflow<TernaryDomain> ternary(nl);
  const std::vector<Tri> wave = ternary.solve();

  // Backward structural observability: a 0 is a sound proof the cell's
  // value never reaches a primary output or flip-flop D pin.
  BackwardDataflow<ObservabilityDomain> observability(nl);
  const std::vector<char> reaches_obs = observability.solve();

  // Forward support functions: exact Boolean functions over a small cut
  // vocabulary; a key variable absent from every observation function (and
  // never absorbed into a cut) is functionally vacuous.
  SupportDomain::CutState cut_state;
  std::vector<SupportFunction> support;
  if (opt.support_analysis) {
    cut_state.cut.assign(nl.size(), 0);
    cut_state.absorbed.assign(nl.size(), 0);
    SupportDomain domain;
    domain.cut_state = &cut_state;
    ForwardDataflow<SupportDomain> solver(nl, domain);
    support = solver.solve();
  }

  const bool have_obs = !nl.outputs().empty() || !nl.dffs().empty();
  std::vector<CellId> obs_points(nl.outputs().begin(), nl.outputs().end());
  for (const CellId ff : nl.dffs()) obs_points.push_back(nl.cell(ff).fanins.at(0));

  const std::vector<CellId> order = nl.topo_order();
  std::vector<std::uint32_t> rank(nl.size(), 0);
  for (std::size_t i = 0; i < order.size(); ++i) {
    rank[order[i]] = static_cast<std::uint32_t>(i);
  }

  // -- per-cell facts -------------------------------------------------------
  std::vector<ConeSet> cones;
  cones.reserve(luts.size());
  for (const CellId id : luts) {
    const Cell& c = nl.cell(id);
    const int k = c.fanin_count();
    KeyCellReport rep;
    rep.cell = id;
    rep.name = c.name;
    rep.fanin = k;
    rep.nominal_bits = static_cast<int>(num_rows(k));

    for (std::uint32_t row = 0; row < num_rows(k); ++row) {
      bool reachable = true;
      for (int i = 0; i < k; ++i) {
        const Tri v = wave[c.fanins[static_cast<std::size_t>(i)]];
        const bool bit = row & (1u << i);
        if ((v == Tri::kOne && !bit) || (v == Tri::kZero && bit)) {
          reachable = false;
          break;
        }
      }
      if (reachable) rep.reachable_rows |= (1ull << row);
    }
    rep.reachable_count = __builtin_popcountll(rep.reachable_rows);

    // Masked: the cheap structural proof first, then the audit's ternary
    // force-probe (forcing the cell to 0 vs 1 leaves every observation
    // point at the same definite value).
    if (have_obs) {
      if (!reaches_obs[id]) {
        rep.masked = true;
      } else {
        ForwardDataflow<TernaryDomain> probe0(
            nl, TernaryDomain{.force_cell = id, .force_value = Tri::kZero});
        ForwardDataflow<TernaryDomain> probe1(
            nl, TernaryDomain{.force_cell = id, .force_value = Tri::kOne});
        const std::vector<Tri>& wave0 = probe0.solve();
        const std::vector<Tri>& wave1 = probe1.solve();
        bool masked = true;
        for (const CellId p : obs_points) {
          if (!definite(wave0[p]) || wave0[p] != wave1[p]) {
            masked = false;
            break;
          }
        }
        rep.masked = masked;
      }
    }
    if (opt.support_analysis && have_obs && !cut_state.absorbed[id]) {
      bool seen = false;
      for (const CellId p : obs_points) {
        if (support[p].depends_on(id)) {
          seen = true;
          break;
        }
      }
      rep.vacuous = !seen;
    }

    if (injected_constant_template(nl, id)) {
      rep.construct = KeyConstruct::kInjectedConstant;
      rep.unit_propagated = true;
      rep.propagated_mask = 0;
    } else if (opt.defense.key_gates.count(std::string(c.name)) != 0) {
      rep.construct = KeyConstruct::kKeyGate;
    } else if (opt.defense.decoy_latches.count(std::string(c.name)) != 0) {
      rep.construct = KeyConstruct::kDecoyLatch;
    } else if (opt.defense.locked_constants.count(std::string(c.name)) != 0) {
      rep.construct = KeyConstruct::kLockedConstant;
    }

    cones.push_back(fanout_cone(nl, id));
    rep.cone_size = cones.back().popcount();
    result.cells.push_back(std::move(rep));
  }

  // -- key-interference graph ----------------------------------------------
  for (std::size_t i = 0; i < luts.size(); ++i) {
    for (std::size_t j = i + 1; j < luts.size(); ++j) {
      if (!cones[i].intersects(cones[j])) continue;
      KeyInterferenceEdge edge;
      edge.a = luts[i];
      edge.b = luts[j];
      edge.series = cones[i].test(luts[j]) || cones[j].test(luts[i]);
      CellId best = kNullCell;
      for (const CellId shared : cones[i].intersection(cones[j])) {
        if (best == kNullCell || rank[shared] < rank[best]) best = shared;
      }
      edge.converge = best;
      ++result.cells[i].interference_degree;
      ++result.cells[j].interference_degree;
      result.edges.push_back(edge);
    }
  }

  // -- series key-gate chains ----------------------------------------------
  // A declared key gate whose output reaches another declared key gate
  // through nothing but single-fanout BUF/NOT cells forms a series chain:
  // each member is BUF or NOT (scheme knowledge), so the composite is BUF
  // or NOT — one bit for the whole chain.
  std::vector<int> lut_index(nl.size(), -1);
  for (std::size_t i = 0; i < luts.size(); ++i) {
    lut_index[luts[i]] = static_cast<int>(i);
  }
  const auto is_declared_key_gate = [&](std::size_t i) {
    return result.cells[i].construct == KeyConstruct::kKeyGate;
  };
  UnionFind chains(static_cast<int>(luts.size()));
  for (std::size_t i = 0; i < luts.size(); ++i) {
    if (!is_declared_key_gate(i)) continue;
    const Cell& c = nl.cell(luts[i]);
    if (c.fanouts.size() != 1) continue;
    CellId w = c.fanouts[0];
    while (true) {
      const Cell& wc = nl.cell(w);
      const int wi = lut_index[w];
      if (wi >= 0 && is_declared_key_gate(static_cast<std::size_t>(wi))) {
        chains.unite(static_cast<int>(i), wi);
        break;
      }
      if ((wc.kind != CellKind::kBuf && wc.kind != CellKind::kNot) ||
          wc.fanouts.size() != 1) {
        break;
      }
      w = wc.fanouts[0];
    }
  }
  std::vector<int> chain_id(luts.size(), -1);
  std::vector<int> chain_head(luts.size(), 0);  // by chain index
  {
    std::vector<int> root_to_chain(luts.size(), -1);
    std::vector<int> members(luts.size(), 0);
    for (std::size_t i = 0; i < luts.size(); ++i) {
      if (!is_declared_key_gate(i)) continue;
      ++members[static_cast<std::size_t>(chains.find(static_cast<int>(i)))];
    }
    int next_chain = 0;
    for (std::size_t i = 0; i < luts.size(); ++i) {
      if (!is_declared_key_gate(i)) continue;
      const int root = chains.find(static_cast<int>(i));
      if (members[static_cast<std::size_t>(root)] < 2) continue;
      if (root_to_chain[static_cast<std::size_t>(root)] < 0) {
        root_to_chain[static_cast<std::size_t>(root)] = next_chain;
        // First member in ascending CellId order is the chain head.
        chain_head[static_cast<std::size_t>(next_chain)] =
            static_cast<int>(i);
        ++next_chain;
      }
      chain_id[i] = root_to_chain[static_cast<std::size_t>(root)];
    }
    for (std::size_t i = 0; i < luts.size(); ++i) {
      result.cells[i].chain = chain_id[i];
    }
  }

  // -- verdicts, entropy, findings ------------------------------------------
  std::vector<LintFinding>& findings = result.findings;
  for (std::size_t i = 0; i < luts.size(); ++i) {
    KeyCellReport& rep = result.cells[i];
    const bool declared_construct =
        rep.construct != KeyConstruct::kCamouflaged;

    if (rep.unit_propagated) {
      rep.verdict = KeyVerdict::kConstant;
      rep.effective_bits = 0;
    } else if (rep.masked || rep.vacuous) {
      rep.verdict = KeyVerdict::kRemovable;
      rep.effective_bits = 0;
    } else if (declared_construct) {
      rep.verdict = rep.interference_degree == 0
                        ? KeyVerdict::kMutable
                        : KeyVerdict::kPairwiseSecure;
      if (rep.chain >= 0) {
        rep.effective_bits =
            chain_head[static_cast<std::size_t>(rep.chain)] ==
                    static_cast<int>(i)
                ? 1
                : 0;
      } else {
        rep.effective_bits = 1;
      }
    } else {
      // A camouflaged LUT whose cone meets no other key cell's is
      // independently resolvable (Rajendran's mutable class); interference
      // is what makes it hard for the static layer.
      rep.verdict = rep.interference_degree == 0 ? KeyVerdict::kMutable
                                                 : KeyVerdict::kHard;
      rep.effective_bits = rep.reachable_count;
    }

    result.key_bits += rep.nominal_bits;
    result.eff_key_bits += rep.effective_bits;
    switch (rep.verdict) {
      case KeyVerdict::kConstant:
        ++result.constant_cells;
        result.key_bits_static += rep.nominal_bits;
        break;
      case KeyVerdict::kRemovable:
        ++result.removable_cells;
        result.key_bits_static += rep.nominal_bits;
        break;
      case KeyVerdict::kMutable: ++result.mutable_cells; break;
      case KeyVerdict::kPairwiseSecure: ++result.pairwise_cells; break;
      case KeyVerdict::kHard: ++result.hard_cells; break;
    }

    // Per-cell findings. KEY001/KEY002 are warnings (statically recovered
    // key material), the classification notes are info.
    if (rep.unit_propagated) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyConstant, rep.cell,
          strformat("key cell '%s' unit-propagates to the constant-0 "
                    "function through its XOR companion '%s': %d key bit(s) "
                    "recovered with zero oracle queries",
                    rep.name.c_str(),
                    std::string(nl.cell(nl.cell(rep.cell).fanouts[0]).name).c_str(),
                    rep.nominal_bits)));
    } else if (rep.masked) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyRemovable, rep.cell,
          strformat("key cell '%s' is statically blocked from every "
                    "observation point: its %d key bit(s) are free "
                    "(any value preserves the interface)",
                    rep.name.c_str(), rep.nominal_bits)));
    } else if (rep.vacuous) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyVacuous, rep.cell,
          strformat("key cell '%s' vanishes from every observation point's "
                    "support function: %d key bit(s) are functionally "
                    "removable",
                    rep.name.c_str(), rep.nominal_bits)));
    } else if (declared_construct && rep.interference_degree == 0) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyMutable, rep.cell,
          strformat("key construct '%s' (%s) interferes with no other key "
                    "cell: resolvable independently (mutable)",
                    rep.name.c_str(),
                    std::string(key_construct_name(rep.construct)).c_str())));
    } else if (declared_construct) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyPairwise, rep.cell,
          strformat("key construct '%s' (%s) interferes with %d other key "
                    "cell(s): pairwise-secure against isolated resolution",
                    rep.name.c_str(),
                    std::string(key_construct_name(rep.construct)).c_str(),
                    rep.interference_degree)));
    }
    if (!rep.unit_propagated && !rep.masked && !rep.vacuous &&
        rep.reachable_count < rep.nominal_bits) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyDeadRows, rep.cell,
          strformat("key cell '%s': only %d of %d truth-table rows are "
                    "reachable — %d key bit(s) carry no entropy",
                    rep.name.c_str(), rep.reachable_count, rep.nominal_bits,
                    rep.nominal_bits - rep.reachable_count)));
    }
  }

  // Chain findings, one per chain, anchored at the head.
  {
    std::vector<std::vector<std::size_t>> by_chain;
    for (std::size_t i = 0; i < luts.size(); ++i) {
      const int ch = result.cells[i].chain;
      if (ch < 0) continue;
      if (static_cast<std::size_t>(ch) >= by_chain.size()) {
        by_chain.resize(static_cast<std::size_t>(ch) + 1);
      }
      by_chain[static_cast<std::size_t>(ch)].push_back(i);
    }
    for (const std::vector<std::size_t>& members : by_chain) {
      if (members.size() < 2) continue;
      std::string names;
      int nominal = 0;
      for (const std::size_t m : members) {
        if (!names.empty()) names += " -> ";
        names += "'" + result.cells[m].name + "'";
        nominal += result.cells[m].nominal_bits;
      }
      findings.push_back(make_finding(
          nl, LintRule::kKeyChain, result.cells[members.front()].cell,
          strformat("series key-gate chain %s collapses to one composite "
                    "key bit (%d nominal bit(s))",
                    names.c_str(), nominal)));
    }
  }

  if (result.eff_key_bits < result.key_bits) {
    findings.push_back(make_finding(
        nl, LintRule::kKeySpace, kNullCell,
        strformat("effective key space is %d bit(s) against %d nominal: %d "
                  "recovered statically, the rest collapsed by construct "
                  "templates, dead rows or series chains",
                  result.eff_key_bits, result.key_bits,
                  result.key_bits_static)));
  }

  std::stable_sort(findings.begin(), findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return std::tie(a.rule, a.cell_name, a.message) <
                            std::tie(b.rule, b.cell_name, b.message);
                   });
  return result;
}

std::string keydep_json(const Netlist& nl, const KeydepResult& r) {
  std::string out = "{\n";
  out += "  \"netlist\": \"" + json_escape(nl.name()) + "\",\n";
  out += "  \"verdict\": \"" + r.verdict() + "\",\n";
  out += strformat("  \"key_cells\": %d,\n", r.key_cells);
  out += strformat("  \"key_bits\": %d,\n", r.key_bits);
  out += strformat("  \"key_bits_static\": %d,\n", r.key_bits_static);
  out += strformat("  \"eff_key_bits\": %d,\n", r.eff_key_bits);
  out += strformat(
      "  \"cells_by_verdict\": {\"constant\": %d, \"removable\": %d, "
      "\"mutable\": %d, \"pairwise_secure\": %d, \"hard\": %d},\n",
      r.constant_cells, r.removable_cells, r.mutable_cells, r.pairwise_cells,
      r.hard_cells);
  out += "  \"cells\": [\n";
  for (std::size_t i = 0; i < r.cells.size(); ++i) {
    const KeyCellReport& c = r.cells[i];
    out += "    {\"cell\": \"" + json_escape(c.name) + "\", ";
    out += strformat("\"fanin\": %d, \"nominal_bits\": %d, ", c.fanin,
                     c.nominal_bits);
    out += strformat("\"reachable_rows\": %d, ", c.reachable_count);
    out += "\"construct\": \"" + std::string(key_construct_name(c.construct)) +
           "\", ";
    out += "\"verdict\": \"" + std::string(key_verdict_name(c.verdict)) +
           "\", ";
    out += strformat(
        "\"masked\": %s, \"vacuous\": %s, \"unit_propagated\": %s, ",
        c.masked ? "true" : "false", c.vacuous ? "true" : "false",
        c.unit_propagated ? "true" : "false");
    if (c.unit_propagated) {
      out += strformat("\"propagated_mask\": %llu, ",
                       static_cast<unsigned long long>(c.propagated_mask));
    }
    out += strformat(
        "\"interference_degree\": %d, \"cone_size\": %d, \"chain\": %d, "
        "\"effective_bits\": %d}",
        c.interference_degree, c.cone_size, c.chain, c.effective_bits);
    if (i + 1 < r.cells.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"interference\": [\n";
  for (std::size_t i = 0; i < r.edges.size(); ++i) {
    const KeyInterferenceEdge& e = r.edges[i];
    out += "    {\"a\": \"" + json_escape(nl.cell(e.a).name) + "\", ";
    out += "\"b\": \"" + json_escape(nl.cell(e.b).name) + "\", ";
    out += "\"converge\": \"" +
           (e.converge == kNullCell ? std::string()
                                    : json_escape(nl.cell(e.converge).name)) +
           "\", ";
    out += strformat("\"series\": %s}", e.series ? "true" : "false");
    if (i + 1 < r.edges.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < r.findings.size(); ++i) {
    const LintFinding& f = r.findings[i];
    out += "    {\"rule\": \"" + std::string(rule_id(f.rule)) + "\", ";
    out += "\"severity\": \"" + std::string(severity_name(f.severity)) +
           "\", ";
    out += "\"cell\": \"" + json_escape(f.cell_name) + "\", ";
    out += "\"message\": \"" + json_escape(f.message) + "\"}";
    if (i + 1 < r.findings.size()) out += ",";
    out += "\n";
  }
  out += "  ]\n}\n";
  return out;
}

}  // namespace stt
