#include "verify/structural.hpp"

#include <algorithm>

#include "core/camouflage.hpp"
#include "graph/analysis.hpp"
#include "util/strings.hpp"

namespace stt {

namespace {

bool valid_id(const Netlist& nl, CellId id) {
  return id != kNullCell && id < nl.size();
}

// STR001: report each combinational strongly-connected component once,
// anchored at its lowest-id member, naming up to four participants. The
// driver->reader adjacency arrives as the full-edge CSR built once by
// run_structural_lint; the combinational view drops edges read by
// flip-flops (D-pin edges are sequential) in one sequential filter pass —
// no per-node heap vectors, so the scan stays allocation-light at
// million-gate scale.
void find_cycles(const Netlist& nl, std::span<const std::uint32_t> all_offsets,
                 std::span<const std::uint32_t> all_targets,
                 std::vector<LintFinding>& findings) {
  const std::size_t n = nl.size();
  std::vector<std::uint8_t> is_dff(n, 0);
  for (const CellId d : nl.dffs()) is_dff[d] = 1;
  std::vector<std::uint32_t> offsets(n + 1, 0);
  std::vector<std::uint32_t> targets;
  targets.reserve(all_targets.size());
  for (std::size_t f = 0; f < n; ++f) {
    for (std::uint32_t e = all_offsets[f]; e < all_offsets[f + 1]; ++e) {
      const std::uint32_t reader = all_targets[e];
      if (!is_dff[reader]) targets.push_back(reader);
    }
    offsets[f + 1] = static_cast<std::uint32_t>(targets.size());
  }
  int num_components = 0;
  const std::vector<int> comp = tarjan_scc_csr(offsets, targets,
                                               num_components);

  // A component is reported when it has >= 2 members or its single member
  // carries a self-loop.
  std::vector<std::uint32_t> comp_size(
      static_cast<std::size_t>(num_components), 0);
  for (CellId id = 0; id < n; ++id) {
    ++comp_size[static_cast<std::size_t>(comp[id])];
  }
  std::vector<std::uint8_t> report(static_cast<std::size_t>(num_components),
                                   0);
  bool any = false;
  for (std::size_t c = 0; c < comp_size.size(); ++c) {
    if (comp_size[c] >= 2) {
      report[c] = 1;
      any = true;
    }
  }
  for (CellId id = 0; id < n; ++id) {
    if (comp_size[static_cast<std::size_t>(comp[id])] != 1) continue;
    for (std::uint32_t e = offsets[id]; e < offsets[id + 1]; ++e) {
      if (targets[e] == id) {
        report[static_cast<std::size_t>(comp[id])] = 1;
        any = true;
        break;
      }
    }
  }
  if (!any) return;

  // Materialize members only for reported components, in component-index
  // order with ascending ids — the emission order of the historical
  // all-components scan.
  std::vector<int> slot(static_cast<std::size_t>(num_components), -1);
  std::vector<std::vector<CellId>> members;
  for (std::size_t c = 0; c < report.size(); ++c) {
    if (report[c]) {
      slot[c] = static_cast<int>(members.size());
      members.emplace_back();
    }
  }
  for (CellId id = 0; id < n; ++id) {
    const int s = slot[static_cast<std::size_t>(comp[id])];
    if (s >= 0) members[static_cast<std::size_t>(s)].push_back(id);
  }
  for (const auto& scc : members) {
    std::string names;
    for (std::size_t i = 0; i < scc.size() && i < 4; ++i) {
      if (i) names += " -> ";
      names += nl.cell(scc[i]).name;
    }
    if (scc.size() > 4) names += " -> ...";
    const CellId anchor = *std::min_element(scc.begin(), scc.end());
    findings.push_back(make_finding(
        nl, LintRule::kCombinationalCycle, anchor,
        strformat("combinational cycle through %zu cell(s): %s", scc.size(),
                  names.c_str())));
  }
}

// HYB004-006: each declared defense construct must actually have the
// declared shape, otherwise the by-design suppressions would mask real
// findings. Names (not CellIds) identify constructs because annotations
// must survive strip_dead_logic and serialization round-trips.
void check_defense_annotations(const Netlist& nl,
                               const DefenseAnnotations& defense,
                               std::vector<LintFinding>& findings) {
  const auto sorted = [](const std::unordered_set<std::string>& names) {
    std::vector<std::string> out(names.begin(), names.end());
    std::sort(out.begin(), out.end());
    return out;
  };

  // HYB004 — key gate: 1-input LUT configured as BUF (0b10) or NOT (0b01).
  for (const std::string& name : sorted(defense.key_gates)) {
    const CellId id = nl.find(name);
    if (id == kNullCell) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyGate, kNullCell,
          strformat("declared key gate '%s' does not exist", name.c_str())));
      continue;
    }
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kLut || c.fanin_count() != 1) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyGate, id,
          strformat("declared key gate '%s' is a %d-input %s, not a 1-input "
                    "LUT",
                    name.c_str(), c.fanin_count(),
                    std::string(kind_name(c.kind)).c_str())));
    } else if (c.lut_mask != 0b01 && c.lut_mask != 0b10) {
      findings.push_back(make_finding(
          nl, LintRule::kKeyGate, id,
          strformat("key gate '%s' configured with mask 0x%llx; a key bit is "
                    "BUF (0x2) or NOT (0x1)",
                    name.c_str(),
                    static_cast<unsigned long long>(c.lut_mask))));
    }
  }

  // HYB005 — decoy latch: LUT2 mux where one input is a flip-flop latching
  // the *other* input, configured to select the data input (transparent).
  for (const std::string& name : sorted(defense.decoy_latches)) {
    const CellId id = nl.find(name);
    if (id == kNullCell) {
      findings.push_back(make_finding(
          nl, LintRule::kDecoyLatch, kNullCell,
          strformat("declared decoy latch '%s' does not exist",
                    name.c_str())));
      continue;
    }
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kLut || c.fanin_count() != 2) {
      findings.push_back(make_finding(
          nl, LintRule::kDecoyLatch, id,
          strformat("declared decoy latch '%s' is a %d-input %s, not a "
                    "2-input LUT mux",
                    name.c_str(), c.fanin_count(),
                    std::string(kind_name(c.kind)).c_str())));
      continue;
    }
    // Which slot holds the decoy flip-flop? Transparency selects the other
    // slot: data in slot 0 -> mask 0xA, data in slot 1 -> mask 0xC.
    bool shaped = false;
    bool transparent = false;
    for (int decoy_slot = 0; decoy_slot < 2; ++decoy_slot) {
      const CellId ff = c.fanins[static_cast<std::size_t>(decoy_slot)];
      const CellId data = c.fanins[static_cast<std::size_t>(1 - decoy_slot)];
      if (!valid_id(nl, ff) || !valid_id(nl, data)) continue;
      const Cell& fc = nl.cell(ff);
      if (fc.kind != CellKind::kDff || fc.fanins.empty() ||
          fc.fanins[0] != data) {
        continue;
      }
      shaped = true;
      const std::uint64_t want = decoy_slot == 1 ? 0xAull : 0xCull;
      if ((c.lut_mask & full_mask(2)) == want) transparent = true;
    }
    if (!shaped) {
      findings.push_back(make_finding(
          nl, LintRule::kDecoyLatch, id,
          strformat("declared decoy latch '%s' has no fan-in pair (data, "
                    "flip-flop latching that data)",
                    name.c_str())));
    } else if (!transparent) {
      findings.push_back(make_finding(
          nl, LintRule::kDecoyLatch, id,
          strformat("decoy latch '%s' configured with mask 0x%llx, not "
                    "transparent: the locked design would lag the original "
                    "by a cycle",
                    name.c_str(),
                    static_cast<unsigned long long>(c.lut_mask))));
    }
  }

  // HYB006 — locked constant: LUT configured to a constant function.
  for (const std::string& name : sorted(defense.locked_constants)) {
    const CellId id = nl.find(name);
    if (id == kNullCell) {
      findings.push_back(make_finding(
          nl, LintRule::kLockedConstant, kNullCell,
          strformat("declared locked constant '%s' does not exist",
                    name.c_str())));
      continue;
    }
    const Cell& c = nl.cell(id);
    if (c.kind != CellKind::kLut) {
      findings.push_back(make_finding(
          nl, LintRule::kLockedConstant, id,
          strformat("declared locked constant '%s' is a plain %s gate, not "
                    "a LUT",
                    name.c_str(), std::string(kind_name(c.kind)).c_str())));
    } else if (const std::uint64_t mask = c.lut_mask & full_mask(c.fanin_count());
               mask != 0 && mask != full_mask(c.fanin_count())) {
      findings.push_back(make_finding(
          nl, LintRule::kLockedConstant, id,
          strformat("locked constant '%s' configured with non-constant mask "
                    "0x%llx",
                    name.c_str(),
                    static_cast<unsigned long long>(c.lut_mask))));
    }
  }
}

}  // namespace

StructuralLintResult run_structural_lint(const Netlist& nl,
                                         const StructuralLintOptions& opt) {
  StructuralLintResult result;
  auto& findings = result.findings;

  // Reader counts recomputed from fan-in lists: the authoritative edge set
  // when fanout lists may be stale.
  const std::size_t n = nl.size();
  std::vector<std::uint32_t> readers(n, 0);
  for (CellId id = 0; id < n; ++id) {
    for (const CellId f : nl.cell(id).fanins) {
      if (valid_id(nl, f)) ++readers[f];
    }
  }

  // Full driver->reader CSR over the valid fan-in edge set, built once and
  // shared by the STR004 fast path and the STR001 cycle scan. Per-driver
  // slices come out sorted by reader id because readers are visited in
  // ascending order.
  std::vector<std::uint32_t> edge_offsets(n + 1, 0);
  for (std::size_t f = 0; f < n; ++f) {
    edge_offsets[f + 1] = edge_offsets[f] + readers[f];
  }
  std::vector<std::uint32_t> edge_targets(edge_offsets[n]);
  {
    std::vector<std::uint32_t> cursor(edge_offsets.begin(),
                                      edge_offsets.end() - 1);
    for (CellId id = 0; id < n; ++id) {
      for (const CellId f : nl.cell(id).fanins) {
        if (valid_id(nl, f)) edge_targets[cursor[f]++] = id;
      }
    }
  }

  // STR004 fast path: walk drivers in order comparing each fanout list
  // against its CSR slice as a multiset. On a synchronized netlist (every
  // netlist finalize() has touched) this replaces the per-edge random scans
  // of the exact check below with one sequential pass; any mismatch falls
  // back to that exact check, so the findings are identical either way.
  bool fanouts_synced = true;
  {
    std::vector<CellId> big;
    for (CellId f = 0; f < n && fanouts_synced; ++f) {
      const auto& outs = nl.cell(f).fanouts;
      const std::uint32_t want = edge_offsets[f + 1] - edge_offsets[f];
      if (outs.size() != want) {
        fanouts_synced = false;
        break;
      }
      if (want == 0) continue;
      CellId small[64];
      std::span<CellId> actual;
      if (want <= 64) {
        std::copy(outs.begin(), outs.end(), small);
        actual = {small, want};
      } else {
        big.assign(outs.begin(), outs.end());
        actual = {big};
      }
      std::sort(actual.begin(), actual.end());
      fanouts_synced = std::equal(actual.begin(), actual.end(),
                                  edge_targets.begin() + edge_offsets[f]);
    }
  }

  for (CellId id = 0; id < nl.size(); ++id) {
    const Cell& c = nl.cell(id);

    // STR002 — unresolved / out-of-range fan-in slots.
    for (std::size_t slot = 0; slot < c.fanins.size(); ++slot) {
      if (!valid_id(nl, c.fanins[slot])) {
        findings.push_back(make_finding(
            nl, LintRule::kUnresolvedFanin, id,
            strformat("fan-in slot %zu of '%s' references no cell", slot,
                      std::string(c.name).c_str())));
      }
    }

    // STR003 — arity outside the legal range for the kind.
    const FaninRange range = fanin_range(c.kind);
    if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
      findings.push_back(make_finding(
          nl, LintRule::kArityMismatch, id,
          strformat("%s '%s' has %d fan-in(s); legal range is [%d, %d]",
                    std::string(kind_name(c.kind)).c_str(), std::string(c.name).c_str(),
                    c.fanin_count(), range.min, range.max)));
    }

    // STR004 — fanout lists out of sync with the fan-in edge set. Skipped
    // wholesale when the fast path above proved every list synchronized.
    if (!fanouts_synced) {
      for (const CellId f : c.fanins) {
        if (!valid_id(nl, f)) continue;
        const auto& outs = nl.cell(f).fanouts;
        const auto expect = std::count(c.fanins.begin(), c.fanins.end(), f);
        const auto have = std::count(outs.begin(), outs.end(), id);
        if (have != expect) {
          findings.push_back(make_finding(
              nl, LintRule::kFanoutDesync, id,
              strformat("'%s' reads '%s' %zd time(s) but appears %zd time(s) "
                        "in its fanout list",
                        std::string(c.name).c_str(), std::string(nl.cell(f).name).c_str(),
                        static_cast<std::ptrdiff_t>(expect),
                        static_cast<std::ptrdiff_t>(have))));
          break;  // one desync finding per cell is enough to localize it
        }
      }
    }

    // STR008 — duplicate driver across fan-in slots (collapses the
    // function: AND(a,a) = a; for a LUT it halves the reachable rows).
    // Legal arities sort in a stack buffer; a heap copy per cell would
    // dominate the lint wall at million-gate scale.
    if (c.fanin_count() >= 2) {
      CellId small[kMaxGateInputs];
      std::vector<CellId> big;
      std::span<CellId> sorted;
      if (c.fanin_count() <= kMaxGateInputs) {
        std::copy(c.fanins.begin(), c.fanins.end(), small);
        sorted = {small, static_cast<std::size_t>(c.fanin_count())};
      } else {
        big.assign(c.fanins.begin(), c.fanins.end());
        sorted = {big};
      }
      std::sort(sorted.begin(), sorted.end());
      const auto dup = std::adjacent_find(sorted.begin(), sorted.end());
      if (dup != sorted.end() && valid_id(nl, *dup)) {
        findings.push_back(make_finding(
            nl, LintRule::kDuplicateFanin, id,
            strformat("'%s' wires driver '%s' to multiple fan-in slots",
                      std::string(c.name).c_str(), std::string(nl.cell(*dup).name).c_str())));
      }
    }

    // STR009 — LUT mask bits beyond the truth table.
    if (c.kind == CellKind::kLut &&
        (c.lut_mask & ~full_mask(c.fanin_count())) != 0) {
      findings.push_back(make_finding(
          nl, LintRule::kLutMaskWidth, id,
          strformat("LUT '%s' mask 0x%llx has bits beyond its %u rows",
                    std::string(c.name).c_str(),
                    static_cast<unsigned long long>(c.lut_mask),
                    num_rows(c.fanin_count()))));
    }

    // HYB001 — one-input missing gate: the candidate space is just
    // {BUF, NOT}, the weakest hiding the model supports. Declared key gates
    // and locked constants are that weak *by design*; their declaration is
    // validated by HYB004/HYB006 instead.
    if (c.kind == CellKind::kLut && c.fanin_count() == 1) {
      const std::string cname(c.name);
      const bool declared_one_input_construct =
          opt.defense.key_gates.count(cname) != 0 ||
          opt.defense.locked_constants.count(cname) != 0;
      if (!declared_one_input_construct) {
        findings.push_back(make_finding(
            nl, LintRule::kSingleInputLut, id,
            strformat("missing gate '%s' has one input; candidate set is only "
                      "BUF/NOT (P = 2)",
                      std::string(c.name).c_str())));
      }
    }

    // STR007 — dead gate: a combinational cell nothing reads and that is
    // not a primary output. A dead *missing* gate is an error: it inflates
    // M (and every Eq. 1-3 figure) while hiding nothing reachable.
    const bool is_logic = is_combinational(c.kind) &&
                          c.kind != CellKind::kConst0 &&
                          c.kind != CellKind::kConst1;
    if (is_logic && readers[id] == 0 && !c.is_output) {
      const bool lut = c.kind == CellKind::kLut;
      findings.push_back(make_finding(
          nl, LintRule::kDeadGate, id,
          lut ? strformat("missing gate '%s' drives nothing: it contributes "
                          "to M but hides no reachable logic",
                          std::string(c.name).c_str())
              : strformat("gate '%s' drives nothing and is not an output",
                          std::string(c.name).c_str()),
          lut ? LintSeverity::kError : LintSeverity::kWarning));
    }
  }

  // STR005 / STR006 — output sanity.
  if (nl.outputs().empty()) {
    findings.push_back(make_finding(
        nl, LintRule::kNoPrimaryOutputs, kNullCell,
        "netlist declares no primary outputs; nothing is observable"));
  }
  for (const CellId id : nl.outputs()) {
    const CellKind kind = nl.cell(id).kind;
    if (kind == CellKind::kConst0 || kind == CellKind::kConst1) {
      findings.push_back(make_finding(
          nl, LintRule::kConstantOutput, id,
          strformat("primary output '%s' is the constant %c",
                    std::string(nl.cell(id).name).c_str(),
                    kind == CellKind::kConst1 ? '1' : '0')));
    }
  }

  // HYB002 / HYB003 — declared-camouflaged cells must be LUTs configured
  // within the camouflage candidate set.
  if (!opt.camouflaged.empty()) {
    const std::vector<std::uint64_t> camo_masks = camouflage_candidate_masks();
    for (const CellId id : opt.camouflaged) {
      if (!valid_id(nl, id)) continue;
      const Cell& c = nl.cell(id);
      if (c.kind != CellKind::kLut) {
        findings.push_back(make_finding(
            nl, LintRule::kCamouflagedCmos, id,
            strformat("cell '%s' is declared camouflaged but is a plain %s "
                      "gate",
                      std::string(c.name).c_str(),
                      std::string(kind_name(c.kind)).c_str())));
        continue;
      }
      if (c.fanin_count() == 2 &&
          std::find(camo_masks.begin(), camo_masks.end(),
                    c.lut_mask & full_mask(2)) == camo_masks.end()) {
        findings.push_back(make_finding(
            nl, LintRule::kCamouflageMask, id,
            strformat("camouflaged cell '%s' configured with mask 0x%llx, "
                      "outside the NAND/NOR/XNOR camouflage set",
                      std::string(c.name).c_str(),
                      static_cast<unsigned long long>(c.lut_mask))));
      }
    }
  }

  // HYB004/HYB005/HYB006 — validate declared defense constructs. A stale
  // declaration (name gone, or the cell no longer shaped like the construct)
  // is an error: it means annotations and netlist drifted apart, and the
  // suppressions above would be hiding genuine findings.
  check_defense_annotations(nl, opt.defense, findings);

  find_cycles(nl, edge_offsets, edge_targets, findings);

  for (const LintFinding& f : findings) {
    if (f.rule == LintRule::kCombinationalCycle ||
        f.rule == LintRule::kUnresolvedFanin ||
        f.rule == LintRule::kArityMismatch) {
      result.evaluable = false;
      break;
    }
  }
  return result;
}

}  // namespace stt
