// Lint finding vocabulary: stable rule IDs, severities, and the report
// container shared by both analysis layers.
//
// Rule IDs are part of the tool's public contract (they appear in the JSON
// report, in CI gates and in suppression lists), so they are never renumbered
// or reused. Three families:
//   STRxxx — structural well-formedness of the netlist graph;
//   HYBxxx — hybrid-specific invariants of the STT-CMOS flow;
//   SECxxx — static-deobfuscation audit: missing gates whose secret is
//            (partially) recoverable without a single oracle query;
//   KEYxxx — key-dependency analysis (verify/keydep): per-key-cell
//            attack-resilience verdicts from the dataflow engine.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"

namespace stt {

enum class LintSeverity { kInfo, kWarning, kError };

std::string_view severity_name(LintSeverity severity);

enum class LintRule {
  // -- layer 1: structural -------------------------------------------------
  kCombinationalCycle,   ///< STR001
  kUnresolvedFanin,      ///< STR002
  kArityMismatch,        ///< STR003
  kFanoutDesync,         ///< STR004
  kNoPrimaryOutputs,     ///< STR005
  kConstantOutput,       ///< STR006
  kDeadGate,             ///< STR007
  kDuplicateFanin,       ///< STR008
  kLutMaskWidth,         ///< STR009
  // -- layer 1: hybrid invariants ------------------------------------------
  kSingleInputLut,       ///< HYB001
  kCamouflagedCmos,      ///< HYB002
  kCamouflageMask,       ///< HYB003
  kKeyGate,              ///< HYB004
  kDecoyLatch,           ///< HYB005
  kLockedConstant,       ///< HYB006
  // -- layer 2: security static audit --------------------------------------
  kConstantFedLut,       ///< SEC001
  kInferableLut,         ///< SEC002
  kVacuousLutInput,      ///< SEC003
  kResolvableLut,        ///< SEC004
  kMaskedLut,            ///< SEC005
  kAuditSkipped,         ///< SEC000
  // -- layer 2: key-dependency analysis (verify/keydep) ---------------------
  kKeyConstant,          ///< KEY001
  kKeyRemovable,         ///< KEY002
  kKeyMutable,           ///< KEY003
  kKeyChain,             ///< KEY004
  kKeyPairwise,          ///< KEY005
  kKeyDeadRows,          ///< KEY006
  kKeySpace,             ///< KEY007
  kKeyVacuous,           ///< KEY008
};

/// Stable identifier, e.g. "STR001".
std::string_view rule_id(LintRule rule);

/// One-line rule description (rule catalogue text, not per-finding).
std::string_view rule_summary(LintRule rule);

/// Default severity of a rule. A few findings are emitted one notch above
/// their default (documented at the emission site, e.g. a *dead* missing
/// gate is an error while a dead CMOS gate is a warning).
LintSeverity rule_severity(LintRule rule);

struct LintFinding {
  LintRule rule = LintRule::kAuditSkipped;
  LintSeverity severity = LintSeverity::kInfo;
  CellId cell = kNullCell;  ///< offending cell; kNullCell for netlist-level
  std::string cell_name;    ///< empty for netlist-level findings
  std::string message;      ///< specific diagnostic, net names inline
};

struct LintCounts {
  int errors = 0;
  int warnings = 0;
  int infos = 0;
  int total() const { return errors + warnings + infos; }
};

LintCounts count_findings(const std::vector<LintFinding>& findings);

/// Convenience constructor used by both layers.
LintFinding make_finding(const Netlist& nl, LintRule rule, CellId cell,
                         std::string message);
LintFinding make_finding(const Netlist& nl, LintRule rule, CellId cell,
                         std::string message, LintSeverity severity);

}  // namespace stt
