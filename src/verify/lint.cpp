#include "verify/lint.hpp"

#include <algorithm>
#include <tuple>

#include "util/strings.hpp"

namespace stt {

namespace {

// Byte-stable report order: each layer's block is sorted by (rule, cell,
// message). Structural and audit emission is already deterministic, but the
// sort makes the JSON independent of any future hash-ordered emission site.
void sort_findings(std::vector<LintFinding>& findings, std::size_t from) {
  std::stable_sort(findings.begin() + static_cast<std::ptrdiff_t>(from),
                   findings.end(),
                   [](const LintFinding& a, const LintFinding& b) {
                     return std::tie(a.rule, a.cell_name, a.message) <
                            std::tie(b.rule, b.cell_name, b.message);
                   });
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string LintReport::verdict() const {
  if (counts.errors) return "errors";
  if (counts.warnings) return "warnings";
  if (counts.infos) return "info";
  return "clean";
}

bool LintReport::failed(bool strict) const {
  return counts.errors > 0 || (strict && counts.warnings > 0);
}

LintReport run_lint(const Netlist& nl, const LintOptions& opt) {
  LintReport report;
  report.netlist = nl.name();

  StructuralLintOptions structural_opt = opt.structural;
  structural_opt.defense.merge(opt.defense);
  const StructuralLintResult structural =
      run_structural_lint(nl, structural_opt);
  report.findings = structural.findings;
  sort_findings(report.findings, 0);

  if (opt.run_audit || opt.run_keydep) {
    if (!structural.evaluable) {
      report.findings.push_back(make_finding(
          nl, LintRule::kAuditSkipped, kNullCell,
          "security audit skipped: structural errors make the netlist "
          "unevaluable"));
    } else {
      if (opt.run_audit) {
        StaticAuditOptions audit_opt = opt.audit;
        audit_opt.defense.merge(opt.defense);
        report.audit = run_static_audit(nl, audit_opt);
        report.audit_ran = true;
        const std::size_t from = report.findings.size();
        report.findings.insert(report.findings.end(),
                               report.audit.findings.begin(),
                               report.audit.findings.end());
        sort_findings(report.findings, from);
      }
      if (opt.run_keydep && nl.stats().luts > 0) {
        KeydepOptions keydep_opt = opt.keydep;
        keydep_opt.defense.merge(opt.defense);
        report.keydep = analyze_keydep(nl, keydep_opt);
        report.keydep_ran = true;
        // analyze_keydep already sorts its findings.
        report.findings.insert(report.findings.end(),
                               report.keydep.findings.begin(),
                               report.keydep.findings.end());
      }
    }
  }
  report.counts = count_findings(report.findings);
  return report;
}

std::string lint_text(const LintReport& report) {
  std::string out;
  out += strformat("lint %s: %s (%d error(s), %d warning(s), %d info)\n",
                   report.netlist.c_str(), report.verdict().c_str(),
                   report.counts.errors, report.counts.warnings,
                   report.counts.infos);
  for (const LintFinding& f : report.findings) {
    out += strformat("  %s %-7s %-12s %s\n",
                     std::string(rule_id(f.rule)).c_str(),
                     std::string(severity_name(f.severity)).c_str(),
                     f.cell_name.empty() ? "<netlist>" : f.cell_name.c_str(),
                     f.message.c_str());
  }
  if (report.audit_ran) {
    const StaticAuditResult& a = report.audit;
    out += strformat(
        "  audit: M %d -> %d | I %d -> %d | D %d\n",
        a.optimistic.missing_gates, a.audited.missing_gates,
        a.optimistic.accessible_inputs, a.audited.accessible_inputs,
        a.audited.circuit_depth);
    out += strformat(
        "  audit: N_indep %s -> %s | N_dep %s -> %s | N_bf %s -> %s\n",
        a.optimistic.n_indep.to_string().c_str(),
        a.audited.n_indep.to_string().c_str(),
        a.optimistic.n_dep.to_string().c_str(),
        a.audited.n_dep.to_string().c_str(),
        a.optimistic.n_bf.to_string().c_str(),
        a.audited.n_bf.to_string().c_str());
    if (a.log10_drop_indep > 0 || a.log10_drop_dep > 0 ||
        a.log10_drop_bf > 0) {
      out += strformat(
          "  audit: optimism (log10 clocks) indep %.2f dep %.2f bf %.2f\n",
          a.log10_drop_indep, a.log10_drop_dep, a.log10_drop_bf);
    }
  }
  if (report.keydep_ran) {
    const KeydepResult& k = report.keydep;
    out += strformat(
        "  keydep: %s | key bits %d nominal, %d static, %d effective | "
        "cells const %d removable %d mutable %d pairwise %d hard %d\n",
        k.verdict().c_str(), k.key_bits, k.key_bits_static, k.eff_key_bits,
        k.constant_cells, k.removable_cells, k.mutable_cells,
        k.pairwise_cells, k.hard_cells);
  }
  return out;
}

std::string lint_json(const LintReport& report) {
  std::string out = "{\n";
  out += "  \"netlist\": \"" + json_escape(report.netlist) + "\",\n";
  out += "  \"verdict\": \"" + report.verdict() + "\",\n";
  out += strformat(
      "  \"counts\": {\"errors\": %d, \"warnings\": %d, \"infos\": %d},\n",
      report.counts.errors, report.counts.warnings, report.counts.infos);
  out += "  \"findings\": [\n";
  for (std::size_t i = 0; i < report.findings.size(); ++i) {
    const LintFinding& f = report.findings[i];
    out += "    {\"rule\": \"" + std::string(rule_id(f.rule)) + "\", ";
    out += "\"severity\": \"" + std::string(severity_name(f.severity)) +
           "\", ";
    out += "\"cell\": \"" + json_escape(f.cell_name) + "\", ";
    out += "\"message\": \"" + json_escape(f.message) + "\"}";
    if (i + 1 < report.findings.size()) out += ",";
    out += "\n";
  }
  out += "  ]";
  if (report.audit_ran) {
    const StaticAuditResult& a = report.audit;
    out += ",\n  \"audit\": {";
    out += strformat("\"missing_gates\": %d, ", a.optimistic.missing_gates);
    out += strformat("\"audited_missing_gates\": %d, ",
                     a.audited.missing_gates);
    out += strformat("\"accessible_inputs\": %d, ",
                     a.optimistic.accessible_inputs);
    out += strformat("\"audited_accessible_inputs\": %d, ",
                     a.audited.accessible_inputs);
    out += strformat("\"circuit_depth\": %d, ", a.audited.circuit_depth);
    out += "\"n_indep\": \"" + a.optimistic.n_indep.to_string() + "\", ";
    out += "\"n_dep\": \"" + a.optimistic.n_dep.to_string() + "\", ";
    out += "\"n_bf\": \"" + a.optimistic.n_bf.to_string() + "\", ";
    out += "\"audited_n_indep\": \"" + a.audited.n_indep.to_string() +
           "\", ";
    out += "\"audited_n_dep\": \"" + a.audited.n_dep.to_string() + "\", ";
    out += "\"audited_n_bf\": \"" + a.audited.n_bf.to_string() + "\", ";
    out += strformat(
        "\"log10_drop\": {\"indep\": %.4f, \"dep\": %.4f, \"bf\": %.4f}",
        a.log10_drop_indep, a.log10_drop_dep, a.log10_drop_bf);
    out += "}";
  }
  if (report.keydep_ran) {
    const KeydepResult& k = report.keydep;
    out += ",\n  \"keydep\": {";
    out += "\"verdict\": \"" + k.verdict() + "\", ";
    out += strformat("\"key_cells\": %d, ", k.key_cells);
    out += strformat("\"key_bits\": %d, ", k.key_bits);
    out += strformat("\"key_bits_static\": %d, ", k.key_bits_static);
    out += strformat("\"eff_key_bits\": %d, ", k.eff_key_bits);
    out += strformat(
        "\"cells_by_verdict\": {\"constant\": %d, \"removable\": %d, "
        "\"mutable\": %d, \"pairwise_secure\": %d, \"hard\": %d}",
        k.constant_cells, k.removable_cells, k.mutable_cells,
        k.pairwise_cells, k.hard_cells);
    out += "}";
  }
  out += "\n}\n";
  return out;
}

std::string lint_json(const std::vector<LintReport>& reports) {
  std::string out = "[\n";
  for (std::size_t i = 0; i < reports.size(); ++i) {
    out += lint_json(reports[i]);
    // lint_json ends with "}\n"; splice the array separator in.
    if (i + 1 < reports.size()) {
      out.erase(out.size() - 1);
      out += ",\n";
    }
  }
  out += "]\n";
  return out;
}

}  // namespace stt
