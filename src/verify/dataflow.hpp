// Generic dataflow framework over the netlist graph.
//
// Two worklist solvers (forward along fan-in edges, backward along fanout
// edges) parameterized by an abstract domain, plus the concrete domains the
// key-dependency analyzer (verify/keydep) is built from. The domains form a
// refinement chain
//
//   ternary constant  ⊑  bit interval  ⊑  small-support function
//
// in the usual abstract-interpretation sense: every fact the coarser domain
// proves is provable in the finer one (the conformance is pinned by
// tests/dataflow_test.cpp). All transfer functions model the *attacker view*
// of a hybrid netlist — a reconfigurable LUT's mask is secret, so its output
// is unknown (`lut_unknown`, on by default) — and reuse the same per-cell
// ternary evaluation as the lint audit (sim/ternary's eval_cell_tri).
//
// The combinational subgraph is a DAG (DFF outputs are sources, DFF D pins
// are sinks), so a single pass in topo order converges; the worklist keeps
// the solvers correct when a client re-solves after refining source values,
// and evaluation order is fixed by topo rank so results are deterministic
// regardless of fanout-list or hash-map iteration order.
#pragma once

#include <cassert>
#include <cstdint>
#include <queue>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"

namespace stt {

// ---------------------------------------------------------------------------
// Solvers
// ---------------------------------------------------------------------------

/// Forward analysis: values flow from sources (primary inputs, constants,
/// flip-flop outputs) to sinks. Domain concept:
///
///   struct Domain {
///     using Value = ...;                 // default-constructible
///     Value source(const Netlist&, CellId) const;
///     Value transfer(const Netlist&, CellId, std::span<const Value>) const;
///     static bool equal(const Value&, const Value&);
///   };
template <class Domain>
class ForwardDataflow {
 public:
  using Value = typename Domain::Value;

  ForwardDataflow(const Netlist& nl, Domain domain = {})
      : nl_(&nl), domain_(std::move(domain)) {}

  const std::vector<Value>& solve() {
    const Netlist& nl = *nl_;
    const std::vector<CellId> order = nl.topo_order();
    rank_.assign(nl.size(), 0);
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank_[order[i]] = static_cast<std::uint32_t>(i);
    }
    values_.assign(nl.size(), Value{});
    in_list_.assign(nl.size(), true);
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        work;
    for (const CellId id : order) work.push(keyed(id));

    std::vector<Value> fin;
    while (!work.empty()) {
      const CellId id = static_cast<CellId>(work.top() & 0xffffffffull);
      work.pop();
      if (!in_list_[id]) continue;  // stale duplicate entry
      in_list_[id] = false;

      const Cell& c = nl.cell(id);
      Value next;
      if (is_source(c.kind)) {
        next = domain_.source(nl, id);
      } else {
        fin.clear();
        for (const CellId f : c.fanins) fin.push_back(values_[f]);
        next = domain_.transfer(nl, id, std::span<const Value>(fin));
      }
      if (Domain::equal(values_[id], next)) continue;
      values_[id] = std::move(next);
      for (const CellId reader : c.fanouts) {
        // Edges into a DFF D pin are sequential sinks, not forward edges;
        // the DFF output is re-seeded by source(), never by its driver.
        if (nl.cell(reader).kind == CellKind::kDff) continue;
        if (!in_list_[reader]) {
          in_list_[reader] = true;
          work.push(keyed(reader));
        }
      }
    }
    return values_;
  }

  const std::vector<Value>& values() const { return values_; }
  const Value& value(CellId id) const {
    assert(id < values_.size());
    return values_[id];
  }
  const Domain& domain() const { return domain_; }
  Domain& domain() { return domain_; }

 private:
  static bool is_source(CellKind k) {
    return k == CellKind::kInput || k == CellKind::kDff;
  }
  std::uint64_t keyed(CellId id) const {
    return (static_cast<std::uint64_t>(rank_[id]) << 32) | id;
  }

  const Netlist* nl_;
  Domain domain_;
  std::vector<Value> values_;
  std::vector<std::uint32_t> rank_;
  std::vector<char> in_list_;
};

/// Backward analysis: values flow from observation points (primary outputs,
/// flip-flop D pins) back toward sources. A cell's value is the join of its
/// own initial value and one contribution per reader edge. Domain concept:
///
///   struct Domain {
///     using Value = ...;
///     Value init(const Netlist&, CellId) const;      // e.g. observed at POs
///     Value transfer(const Netlist&, CellId reader, int slot,
///                    const Value& reader_value) const;
///     Value join(const Value&, const Value&) const;
///     static bool equal(const Value&, const Value&);
///   };
template <class Domain>
class BackwardDataflow {
 public:
  using Value = typename Domain::Value;

  BackwardDataflow(const Netlist& nl, Domain domain = {})
      : nl_(&nl), domain_(std::move(domain)) {}

  const std::vector<Value>& solve() {
    const Netlist& nl = *nl_;
    const std::vector<CellId> order = nl.topo_order();
    rank_.assign(nl.size(), 0);
    // Reverse topo rank: sinks first.
    for (std::size_t i = 0; i < order.size(); ++i) {
      rank_[order[i]] = static_cast<std::uint32_t>(order.size() - 1 - i);
    }
    values_.assign(nl.size(), Value{});
    in_list_.assign(nl.size(), true);
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>,
                        std::greater<>>
        work;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      work.push(keyed(*it));
    }

    while (!work.empty()) {
      const CellId id = static_cast<CellId>(work.top() & 0xffffffffull);
      work.pop();
      if (!in_list_[id]) continue;
      in_list_[id] = false;

      const Cell& c = nl.cell(id);
      Value next = domain_.init(nl, id);
      for (const CellId reader : c.fanouts) {
        const Cell& rc = nl.cell(reader);
        for (int slot = 0; slot < rc.fanin_count(); ++slot) {
          if (rc.fanins[static_cast<std::size_t>(slot)] != id) continue;
          next = domain_.join(
              next, domain_.transfer(nl, reader, slot, values_[reader]));
        }
      }
      if (Domain::equal(values_[id], next)) continue;
      values_[id] = std::move(next);
      for (const CellId f : c.fanins) {
        // A DFF's driver feeds a sequential sink; the backward edge stops
        // there (the domain's transfer models the D pin as an observation
        // point instead).
        if (c.kind == CellKind::kDff) break;
        if (!in_list_[f]) {
          in_list_[f] = true;
          work.push(keyed(f));
        }
      }
    }
    return values_;
  }

  const std::vector<Value>& values() const { return values_; }
  const Value& value(CellId id) const {
    assert(id < values_.size());
    return values_[id];
  }
  const Domain& domain() const { return domain_; }

 private:
  std::uint64_t keyed(CellId id) const {
    return (static_cast<std::uint64_t>(rank_[id]) << 32) | id;
  }

  const Netlist* nl_;
  Domain domain_;
  std::vector<Value> values_;
  std::vector<std::uint32_t> rank_;
  std::vector<char> in_list_;
};

// ---------------------------------------------------------------------------
// Forward domain 1: ternary constants (coarsest layer)
// ---------------------------------------------------------------------------

/// Attacker-view Kleene constant propagation: PIs and state bits are X,
/// every LUT output is X (`lut_unknown`), definite values are static
/// constants no key and no stimulus can change. One optional forced cell
/// implements the audit's sensitivity probe (is an observation point's value
/// different when this cell is 0 vs 1?).
struct TernaryDomain {
  using Value = Tri;

  bool lut_unknown = true;
  CellId force_cell = kNullCell;
  Tri force_value = Tri::kX;

  Value source(const Netlist& nl, CellId id) const;
  Value transfer(const Netlist& nl, CellId id,
                 std::span<const Value> fanins) const;
  static bool equal(Value a, Value b) { return a == b; }
};

// ---------------------------------------------------------------------------
// Forward domain 2: bit intervals (middle layer)
// ---------------------------------------------------------------------------

/// [lo, hi] over the value of a net. {0,0} and {1,1} are the constants,
/// {0,1} is unknown; lo > hi encodes "unreached" (the solver's initial
/// bottom). Transfer enumerates corner assignments of the non-constant
/// inputs, so on single-bit logic the domain proves exactly the ternary
/// facts — the refinement step the conformance test pins.
struct BitInterval {
  std::uint8_t lo = 1;
  std::uint8_t hi = 0;

  static BitInterval constant(bool v) {
    return {static_cast<std::uint8_t>(v), static_cast<std::uint8_t>(v)};
  }
  static BitInterval top() { return {0, 1}; }
  bool is_bottom() const { return lo > hi; }
  bool is_constant() const { return lo == hi; }
  Tri to_tri() const {
    if (is_bottom() || lo != hi) return Tri::kX;
    return lo ? Tri::kOne : Tri::kZero;
  }
  friend bool operator==(const BitInterval& a, const BitInterval& b) {
    return a.lo == b.lo && a.hi == b.hi;
  }
};

struct IntervalDomain {
  using Value = BitInterval;

  bool lut_unknown = true;

  Value source(const Netlist& nl, CellId id) const;
  Value transfer(const Netlist& nl, CellId id,
                 std::span<const Value> fanins) const;
  static bool equal(const Value& a, const Value& b) { return a == b; }
};

// ---------------------------------------------------------------------------
// Forward domain 3: small-support functions (finest layer)
// ---------------------------------------------------------------------------

/// Exact Boolean function of a net over at most kMaxLutInputs cut variables
/// (a truth-table mask — a BDD in disguise at this width). Cut variables are
/// primary inputs, state bits, unknown-LUT outputs, and cells whose support
/// outgrew the bound. Functions are normalized (vacuous variables dropped,
/// variables sorted by CellId), so `is_constant` and `depends_on` are exact
/// over the cut vocabulary.
struct SupportFunction {
  std::vector<CellId> vars;  ///< sorted ascending; empty for constants
  std::uint64_t mask = 0;    ///< truth table; row bit i = value of vars[i]

  static SupportFunction constant(bool v);
  static SupportFunction variable(CellId id);
  bool is_constant() const { return vars.empty(); }
  bool constant_value() const { return (mask & 1ull) != 0; }
  bool depends_on(CellId v) const;
  /// Drop variables the mask does not depend on; keeps the form canonical.
  void normalize();

  friend bool operator==(const SupportFunction& a, const SupportFunction& b) {
    return a.vars == b.vars && a.mask == b.mask;
  }
};

struct SupportDomain {
  using Value = SupportFunction;

  bool lut_unknown = true;

  /// Cells re-introduced as fresh cut variables because their support
  /// outgrew kMaxLutInputs, and every variable such a cut absorbed. A
  /// client must not conclude a variable is unobservable while it sits
  /// inside an absorbed cut (keydep's KEY008 check). Unknown-LUT cuts
  /// absorb their fan-in variables for the same reason.
  struct CutState {
    std::vector<char> cut;       ///< by CellId
    std::vector<char> absorbed;  ///< by CellId
  };
  /// Owned by the caller so the domain stays copyable; sized to nl.size().
  CutState* cut_state = nullptr;

  Value source(const Netlist& nl, CellId id) const;
  Value transfer(const Netlist& nl, CellId id,
                 std::span<const Value> fanins) const;
  static bool equal(const Value& a, const Value& b) { return a == b; }
};

// ---------------------------------------------------------------------------
// Backward domain: structural observability
// ---------------------------------------------------------------------------

/// Can a change at this net reach any observation point (primary output or
/// flip-flop D pin) along some path? Purely structural (no sensitization),
/// so `false` is a sound proof of unobservability, the same bar as the
/// audit's masked test but O(V+E) for all cells at once.
struct ObservabilityDomain {
  using Value = char;  ///< 0 = unobservable, 1 = may reach an obs point

  Value init(const Netlist& nl, CellId id) const {
    return nl.cell(id).is_output ? 1 : 0;
  }
  Value transfer(const Netlist& nl, CellId reader, int /*slot*/,
                 const Value& reader_value) const {
    // An edge into a DFF D pin is itself an observation point.
    return nl.cell(reader).kind == CellKind::kDff ? 1 : reader_value;
  }
  Value join(const Value& a, const Value& b) const { return a | b; }
  static bool equal(const Value& a, const Value& b) { return a == b; }
};

}  // namespace stt
