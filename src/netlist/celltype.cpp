#include "netlist/celltype.hpp"

#include <bit>
#include <stdexcept>

#include "util/strings.hpp"

namespace stt {

bool is_replaceable_gate(CellKind kind) {
  switch (kind) {
    case CellKind::kBuf:
    case CellKind::kNot:
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
      return true;
    default:
      return false;
  }
}

bool is_combinational(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kDff:
      return false;
    default:
      return true;
  }
}

bool is_standard_gate(CellKind kind) {
  switch (kind) {
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor:
      return true;
    default:
      return false;
  }
}

std::string_view kind_name(CellKind kind) {
  switch (kind) {
    case CellKind::kInput: return "INPUT";
    case CellKind::kConst0: return "CONST0";
    case CellKind::kConst1: return "CONST1";
    case CellKind::kBuf: return "BUF";
    case CellKind::kNot: return "NOT";
    case CellKind::kAnd: return "AND";
    case CellKind::kNand: return "NAND";
    case CellKind::kOr: return "OR";
    case CellKind::kNor: return "NOR";
    case CellKind::kXor: return "XOR";
    case CellKind::kXnor: return "XNOR";
    case CellKind::kDff: return "DFF";
    case CellKind::kLut: return "LUT";
  }
  return "?";
}

std::optional<CellKind> kind_from_name(std::string_view name) {
  // Upper-case into a stack buffer: the parsers call this once per cell
  // line, and every recognized spelling is at most 6 characters.
  if (name.empty() || name.size() > 6) return std::nullopt;
  char buf[6];
  for (std::size_t i = 0; i < name.size(); ++i) {
    const char c = name[i];
    buf[i] = (c >= 'a' && c <= 'z') ? static_cast<char>(c - 'a' + 'A') : c;
  }
  const std::string_view up(buf, name.size());
  if (up == "INPUT") return CellKind::kInput;
  if (up == "CONST0" || up == "GND" || up == "ZERO") return CellKind::kConst0;
  if (up == "CONST1" || up == "VDD" || up == "ONE") return CellKind::kConst1;
  if (up == "BUF" || up == "BUFF") return CellKind::kBuf;
  if (up == "NOT" || up == "INV") return CellKind::kNot;
  if (up == "AND") return CellKind::kAnd;
  if (up == "NAND") return CellKind::kNand;
  if (up == "OR") return CellKind::kOr;
  if (up == "NOR") return CellKind::kNor;
  if (up == "XOR") return CellKind::kXor;
  if (up == "XNOR") return CellKind::kXnor;
  if (up == "DFF" || up == "FF") return CellKind::kDff;
  if (up == "LUT") return CellKind::kLut;
  return std::nullopt;
}

bool eval_gate(CellKind kind, std::uint32_t inputs, int fanin) {
  const std::uint32_t mask = (fanin >= 32) ? ~0u : ((1u << fanin) - 1u);
  const std::uint32_t in = inputs & mask;
  switch (kind) {
    case CellKind::kConst0: return false;
    case CellKind::kConst1: return true;
    case CellKind::kBuf: return in & 1u;
    case CellKind::kNot: return !(in & 1u);
    case CellKind::kAnd: return in == mask;
    case CellKind::kNand: return in != mask;
    case CellKind::kOr: return in != 0;
    case CellKind::kNor: return in == 0;
    case CellKind::kXor: return (std::popcount(in) & 1) != 0;
    case CellKind::kXnor: return (std::popcount(in) & 1) == 0;
    default:
      throw std::invalid_argument("eval_gate: kind has no gate semantics");
  }
}

std::uint64_t gate_truth_mask(CellKind kind, int fanin) {
  const auto range = fanin_range(kind);
  if (fanin < range.min || fanin > range.max || fanin > kMaxLutInputs) {
    // The 64-bit mask representation covers at most kMaxLutInputs inputs;
    // wider gates are evaluated arity-generically instead.
    throw std::invalid_argument("gate_truth_mask: illegal fan-in");
  }
  std::uint64_t mask = 0;
  for (std::uint32_t row = 0; row < num_rows(fanin); ++row) {
    if (eval_gate(kind, row, fanin)) mask |= (1ull << row);
  }
  return mask;
}

FaninRange fanin_range(CellKind kind) {
  switch (kind) {
    case CellKind::kInput:
    case CellKind::kConst0:
    case CellKind::kConst1:
      return {0, 0};
    case CellKind::kBuf:
    case CellKind::kNot:
    case CellKind::kDff:
      return {1, 1};
    case CellKind::kLut:
      return {1, kMaxLutInputs};
    default:
      return {2, kMaxGateInputs};
  }
}

}  // namespace stt
