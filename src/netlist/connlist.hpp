// Pooled small-inline connectivity lists.
//
// Per-cell `std::vector<CellId>` fan-in/fan-out lists cost one heap block
// per cell per direction — the dominant allocation source when loading a
// million-gate netlist. A `ConnList` stores up to `kInline` ids in place
// (covering >95% of fan-ins in ISCAS/ITC-class netlists, where 2-input
// gates dominate) and spills longer lists into a `ConnPool`: a chunked
// bump allocator owned by the `Netlist`.
//
// Pool slices are stable (chunks never move), so a ConnList is trivially
// copyable and `std::vector<Cell>` growth is a plain memcpy. A ConnList
// copied *between* netlists would alias the source pool — `Netlist`'s copy
// constructor re-houses every spilled list into the destination pool.
//
// Mutation that can grow a list takes the pool explicitly; growth
// abandons the old slice (bump pools don't free). The fan-out pool is
// rewound wholesale on every `rebuild_fanouts()` CSR pass, so abandoned
// fan-out slices never accumulate across finalizes; fan-in churn between
// parses is bounded by the editing passes that cause it.
#pragma once

#include <cassert>
#include <cstdint>
#include <cstring>
#include <memory>
#include <stdexcept>
#include <vector>

namespace stt {

using CellId = std::uint32_t;

class ConnPool {
 public:
  ConnPool() = default;
  ConnPool(ConnPool&&) noexcept = default;
  ConnPool& operator=(ConnPool&&) noexcept = default;
  ConnPool(const ConnPool&) = delete;
  ConnPool& operator=(const ConnPool&) = delete;

  CellId* alloc(std::uint32_t n) {
    while (cursor_ < chunks_.size() &&
           chunks_[cursor_].used + n > chunks_[cursor_].cap) {
      ++cursor_;
    }
    if (cursor_ == chunks_.size()) {
      const std::size_t cap = n > kChunkIds ? n : kChunkIds;
      chunks_.push_back({std::make_unique<CellId[]>(cap), 0, cap});
    }
    Chunk& c = chunks_[cursor_];
    CellId* p = c.data.get() + c.used;
    c.used += n;
    return p;
  }

  /// Rewind to empty, keeping the chunks for reuse. Every slice handed out
  /// becomes invalid; callers must rebuild all lists that used this pool.
  void reset() {
    for (Chunk& c : chunks_) c.used = 0;
    cursor_ = 0;
  }

  /// Pre-size for a bulk build of ~`ids` total list entries.
  void reserve(std::size_t ids) {
    if (ids > kChunkIds && chunks_.empty()) {
      chunks_.push_back({std::make_unique<CellId[]>(ids), 0, ids});
    }
  }

  std::size_t capacity_ids() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.cap;
    return total;
  }

 private:
  static constexpr std::size_t kChunkIds = std::size_t{1} << 16;
  struct Chunk {
    std::unique_ptr<CellId[]> data;
    std::size_t used = 0;
    std::size_t cap = 0;
  };
  std::vector<Chunk> chunks_;
  std::size_t cursor_ = 0;  ///< first chunk with free space
};

class ConnList {
 public:
  using value_type = CellId;
  using const_iterator = const CellId*;
  using iterator = CellId*;
  static constexpr std::uint32_t kInline = 4;

  ConnList() = default;

  std::uint32_t size() const { return size_; }
  bool empty() const { return size_ == 0; }
  const CellId* data() const { return cap_ <= kInline ? rep_.inl : rep_.ptr; }
  CellId* data() { return cap_ <= kInline ? rep_.inl : rep_.ptr; }
  const CellId* begin() const { return data(); }
  const CellId* end() const { return data() + size_; }
  CellId* begin() { return data(); }
  CellId* end() { return data() + size_; }

  CellId operator[](std::size_t i) const {
    assert(i < size_);
    return data()[i];
  }
  CellId& operator[](std::size_t i) {
    assert(i < size_);
    return data()[i];
  }
  CellId at(std::size_t i) const {
    if (i >= size_) throw std::out_of_range("ConnList::at");
    return data()[i];
  }
  CellId front() const { return (*this)[0]; }
  CellId back() const { return (*this)[size_ - 1]; }

  /// Drop all entries; keeps the current storage for reuse.
  void clear() { size_ = 0; }

  void push_back(CellId v, ConnPool& pool) {
    if (size_ == cap_) grow(size_ + 1, pool);
    data()[size_++] = v;
  }

  /// Replace the contents with `[first, first + n)`. `first` must not
  /// point into this list's own storage.
  void assign(const CellId* first, std::size_t n, ConnPool& pool) {
    if (n > cap_) grow(n, pool);
    if (n > 0) std::memcpy(data(), first, n * sizeof(CellId));
    size_ = static_cast<std::uint32_t>(n);
  }

  /// Size to exactly `n` uninitialized-then-filled slots for CSR builds:
  /// resets length to zero with capacity >= n so `push_back` cannot spill
  /// mid-build. The exact capacity keeps pool usage at sum(degree).
  void rebuild_exact(std::uint32_t n, ConnPool& pool) {
    size_ = 0;
    if (n <= kInline) {
      cap_ = kInline;
      return;
    }
    rep_.ptr = pool.alloc(n);
    cap_ = n;
  }

  /// Append without a pool: legal only below the reserved capacity
  /// (CSR fill after `rebuild_exact`).
  void push_back_reserved(CellId v) {
    assert(size_ < cap_);
    data()[size_++] = v;
  }

  /// Erase the first occurrence of `v`, preserving the order of the rest
  /// (matches the seed's std::find + erase semantics byte for byte).
  void remove_first(CellId v) {
    CellId* p = data();
    for (std::uint32_t i = 0; i < size_; ++i) {
      if (p[i] == v) {
        std::memmove(p + i, p + i + 1, (size_ - i - 1) * sizeof(CellId));
        --size_;
        return;
      }
    }
  }

  bool operator==(const ConnList& o) const {
    if (size_ != o.size_) return false;
    return size_ == 0 ||
           std::memcmp(data(), o.data(), size_ * sizeof(CellId)) == 0;
  }
  bool operator!=(const ConnList& o) const { return !(*this == o); }

  bool spilled() const { return cap_ > kInline; }

  /// Copy contents from `src` (possibly housed in another netlist's pool)
  /// into storage owned by `pool`. Used by Netlist's copy constructor.
  void rehouse_from(const ConnList& src, ConnPool& pool) {
    size_ = src.size_;
    if (src.size_ <= kInline) {
      cap_ = kInline;
      if (src.size_ > 0) {
        std::memcpy(rep_.inl, src.data(), src.size_ * sizeof(CellId));
      }
      return;
    }
    rep_.ptr = pool.alloc(src.size_);
    cap_ = src.size_;
    std::memcpy(rep_.ptr, src.data(), src.size_ * sizeof(CellId));
  }

 private:
  void grow(std::uint32_t need, ConnPool& pool) {
    std::uint32_t cap = cap_ * 2;
    if (cap < need) cap = need;
    CellId* p = pool.alloc(cap);
    if (size_ > 0) std::memcpy(p, data(), size_ * sizeof(CellId));
    rep_.ptr = p;
    cap_ = cap;
  }

  union Rep {
    CellId inl[kInline];
    CellId* ptr;
  } rep_{};
  std::uint32_t size_ = 0;
  std::uint32_t cap_ = kInline;
};

}  // namespace stt
