// Cell-type algebra: the gate vocabulary of the hybrid STT-CMOS flow.
//
// The flow operates on synthesized gate-level netlists in the ISCAS'89
// vocabulary (AND/NAND/OR/NOR/XOR/XNOR/NOT/BUF/DFF) plus the reconfigurable
// STT-based LUT that the selection algorithms insert. Every cell type has an
// exact Boolean semantics, expressible as a truth-table mask over up to
// kMaxLutInputs inputs; that single representation backs the simulator, the
// SAT encoder, the similarity metric (the paper's alpha), and the LUT
// replacement step.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

namespace stt {

/// Maximum LUT fan-in supported by the truth-mask representation. Six inputs
/// fit a 64-bit mask; the paper only uses 2-4 input LUTs but complex-function
/// packing (Section IV-A.3) benefits from headroom.
inline constexpr int kMaxLutInputs = 6;

/// Maximum fan-in of a standard CMOS gate. Wider than the LUT cap because
/// externally synthesized netlists contain wide AND/OR trees; such gates
/// are simulated, timed and encoded arity-generically, they just cannot be
/// replaced by a single LUT (selection skips them, as the paper's flow
/// implicitly does).
inline constexpr int kMaxGateInputs = 16;

enum class CellKind : std::uint8_t {
  kInput,   ///< primary input (no fan-in)
  kConst0,  ///< constant logic 0
  kConst1,  ///< constant logic 1
  kBuf,     ///< buffer (1 fan-in)
  kNot,     ///< inverter (1 fan-in)
  kAnd,
  kNand,
  kOr,
  kNor,
  kXor,
  kXnor,
  kDff,  ///< D flip-flop (1 fan-in); output is the state bit
  kLut,  ///< reconfigurable STT-based LUT; semantics carried by a mask
};

/// True for the logic cells a selection algorithm may replace with an
/// STT-based LUT (excludes PIs, constants and flip-flops; includes BUF/NOT,
/// although the algorithms themselves may further restrict to fan-in >= 2).
bool is_replaceable_gate(CellKind kind);

/// True for any combinational cell (gate, buffer, inverter, constant, LUT).
bool is_combinational(CellKind kind);

/// True for the standard multi-input gates AND/NAND/OR/NOR/XOR/XNOR.
bool is_standard_gate(CellKind kind);

/// Canonical upper-case mnemonic ("NAND", "DFF", ...).
std::string_view kind_name(CellKind kind);

/// Parse a mnemonic as used by ISCAS'89 .bench files (case-insensitive).
/// Returns nullopt for unknown operators.
std::optional<CellKind> kind_from_name(std::string_view name);

/// Evaluate a gate over an input assignment packed into the low bits of
/// `inputs` (fan-in 0 is bit 0). Not valid for kInput/kDff/kLut.
bool eval_gate(CellKind kind, std::uint32_t inputs, int fanin);

/// The truth-table mask of a gate at the given fan-in: bit `i` of the result
/// is the gate output for input assignment `i`. Valid for combinational
/// kinds except kLut; fanin must be within [min_fanin, kMaxLutInputs].
std::uint64_t gate_truth_mask(CellKind kind, int fanin);

/// Mask covering all 2^fanin truth-table rows.
constexpr std::uint64_t full_mask(int fanin) {
  return fanin >= 6 ? ~0ull : ((1ull << (1u << fanin)) - 1ull);
}

/// Number of distinct input assignments for a fan-in.
constexpr std::uint32_t num_rows(int fanin) { return 1u << fanin; }

/// Legal fan-in range for a cell kind; returns {min, max}. DFF/BUF/NOT are
/// exactly 1, standard gates are [2, kMaxGateInputs] (XOR/XNOR included —
/// multi-input forms are parity/its complement, matching .bench semantics),
/// LUT is [1, kMaxLutInputs].
struct FaninRange {
  int min;
  int max;
};
FaninRange fanin_range(CellKind kind);

}  // namespace stt
