#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace stt {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("netlist: " + msg);
}

[[noreturn]] void fail_at(std::string_view cell_name, const char* before,
                          const std::string& after = "") {
  fail(std::string(before) + "'" + std::string(cell_name) + "'" + after);
}

// Scratch for the allocation-free finalize/topo passes. Thread-local so
// concurrent topo_order() calls on a shared const netlist stay race-free;
// capacity is retained across calls, so steady-state traversals allocate
// nothing.
struct TopoScratch {
  std::vector<std::uint32_t> counts;
  std::vector<CellId> ready;
};

TopoScratch& topo_scratch() {
  thread_local TopoScratch scratch;
  return scratch;
}

}  // namespace

std::string_view Netlist::register_name(std::string_view net_name,
                                        CellId id) {
  if (net_name.empty()) fail("empty net name");
  bool inserted = false;
  const StringInterner::Sym sym = names_.intern(net_name, inserted);
  if (!inserted) {
    fail("duplicate net name '" + std::string(net_name) + "'");
  }
  // One interned name per cell, in cell order: the symbol IS the cell id,
  // which is what makes find() a bare interner lookup.
  assert(sym == id);
  (void)id;
  return names_.view(sym);
}

void Netlist::reserve(std::size_t cells, std::size_t edges,
                      std::size_t name_bytes) {
  cells_.reserve(cells);
  names_.reserve(cells, name_bytes ? name_bytes : cells * 8);
  fanin_pool_.reserve(edges / 4);  // only lists spilling past inline storage
  fanout_pool_.reserve(edges / 2);
}

CellId Netlist::add_cell(CellKind kind, std::string_view net_name) {
  const auto id = static_cast<CellId>(cells_.size());
  const std::string_view stable = register_name(net_name, id);
  Cell c;
  c.kind = kind;
  c.name = stable;
  cells_.push_back(c);
  if (kind == CellKind::kInput) inputs_.push_back(id);
  if (kind == CellKind::kDff) dffs_.push_back(id);
  return id;
}

CellId Netlist::add_input(std::string_view net_name) {
  return add_cell(CellKind::kInput, net_name);
}

CellId Netlist::add_const(bool value, std::string_view net_name) {
  return add_cell(value ? CellKind::kConst1 : CellKind::kConst0, net_name);
}

CellId Netlist::add_dff(std::string_view net_name, CellId d) {
  const CellId id = add_cell(CellKind::kDff, net_name);
  if (d != kNullCell) connect(id, {d});
  return id;
}

CellId Netlist::add_gate(CellKind kind, std::string_view net_name,
                         std::span<const CellId> fanins) {
  const auto range = fanin_range(kind);
  if (static_cast<int>(fanins.size()) < range.min ||
      static_cast<int>(fanins.size()) > range.max) {
    fail("illegal fan-in count for " + std::string(kind_name(kind)) +
         " '" + std::string(net_name) + "'");
  }
  const CellId id = add_cell(kind, net_name);
  connect(id, fanins);
  return id;
}

CellId Netlist::add_lut(std::string_view net_name,
                        std::span<const CellId> fanins, std::uint64_t mask) {
  const CellId id = add_gate(CellKind::kLut, net_name, fanins);
  cells_[id].lut_mask = mask & full_mask(cells_[id].fanin_count());
  return id;
}

void Netlist::connect(CellId cell_id, std::span<const CellId> fanins) {
  Cell& c = cell(cell_id);
  // Withdraw previous fanout registrations.
  for (const CellId old : c.fanins) {
    if (old == kNullCell) continue;
    cell(old).fanouts.remove_first(cell_id);
  }
  c.fanins.assign(fanins.data(), fanins.size(), fanin_pool_);
  for (const CellId driver : c.fanins) {
    if (driver == kNullCell) continue;  // resolved later by a parser pass
    cell(driver).fanouts.push_back(cell_id, fanout_pool_);
  }
}

void Netlist::append_fanin(CellId cell_id, CellId driver) {
  cell(cell_id).fanins.push_back(driver, fanin_pool_);
}

void Netlist::replace_fanin(CellId cell_id, std::size_t slot,
                            CellId new_driver) {
  Cell& c = cell(cell_id);
  if (slot >= c.fanins.size()) fail("replace_fanin: slot out of range");
  const CellId old = c.fanins[slot];
  if (old != kNullCell) {
    cell(old).fanouts.remove_first(cell_id);
  }
  c.fanins[slot] = new_driver;
  if (new_driver != kNullCell) {
    cell(new_driver).fanouts.push_back(cell_id, fanout_pool_);
  }
}

void Netlist::mark_output(CellId cell_id) {
  Cell& c = cell(cell_id);
  if (!c.is_output) {
    c.is_output = true;
    outputs_.push_back(cell_id);
  }
}

void Netlist::rebuild_fanouts() {
  // CSR counting pass: exact-size every fan-out list, then fill in the
  // same (reader id, fan-in slot) order the seed's push_back loop used, so
  // fan-out list contents are byte-identical to the incremental path.
  const std::size_t n = cells_.size();
  std::vector<std::uint32_t>& counts = topo_scratch().counts;
  counts.assign(n, 0);
  for (CellId id = 0; id < n; ++id) {
    for (const CellId driver : cells_[id].fanins) {
      if (driver == kNullCell) {
        fail_at(cells_[id].name, "unresolved fan-in on ");
      }
      if (driver >= n) fail_at(cells_[id].name, "cell ", " has a dangling fan-in");
      ++counts[driver];
    }
  }
  fanout_pool_.reset();
  for (CellId id = 0; id < n; ++id) {
    cells_[id].fanouts.rebuild_exact(counts[id], fanout_pool_);
  }
  for (CellId id = 0; id < n; ++id) {
    for (const CellId driver : cells_[id].fanins) {
      cells_[driver].fanouts.push_back_reserved(id);
    }
  }
}

void Netlist::finalize() {
  rebuild_fanouts();
  // Fan-out sync holds by construction after the CSR pass; verifying it
  // again would be the quadratic hot spot the seed paid on every load.
  check_impl(false);
}

CellId Netlist::find(std::string_view net_name) const {
  const StringInterner::Sym sym = names_.lookup(net_name);
  return sym == StringInterner::kNoSym ? kNullCell : sym;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.inputs = inputs_.size();
  s.outputs = outputs_.size();
  s.dffs = dffs_.size();
  for (const Cell& c : cells_) {
    s.max_fanin = std::max(s.max_fanin, c.fanin_count());
    switch (c.kind) {
      case CellKind::kInput:
      case CellKind::kDff:
        break;
      case CellKind::kConst0:
      case CellKind::kConst1:
        ++s.constants;
        break;
      case CellKind::kLut:
        ++s.gates;
        ++s.luts;
        break;
      default:
        ++s.gates;
    }
  }
  return s;
}

void Netlist::topo_order_into(std::vector<CellId>& order) const {
  const std::size_t n = cells_.size();
  // Kahn over preallocated rank arrays; the explicit stack preserves the
  // seed's scheduling sequence exactly (sources pushed in id order, LIFO).
  TopoScratch& scratch = topo_scratch();
  std::vector<std::uint32_t>& pending = scratch.counts;
  std::vector<CellId>& ready = scratch.ready;
  pending.assign(n, 0);
  order.clear();
  order.reserve(n);
  ready.clear();
  ready.reserve(n);

  for (CellId id = 0; id < n; ++id) {
    const Cell& c = cells_[id];
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff ||
        c.fanins.empty()) {
      // Sources of the combinational graph: PIs, DFF outputs, constants.
      ready.push_back(id);
    } else {
      pending[id] = c.fanins.size();
    }
  }

  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    for (const CellId reader : cells_[id].fanouts) {
      if (cells_[reader].kind == CellKind::kDff) continue;  // sequential edge
      if (--pending[reader] == 0) ready.push_back(reader);
    }
  }

  // DFF D-pin edges were skipped above, so DFF cells appeared as sources and
  // combinational cells must all be scheduled; anything left is a cycle.
  if (order.size() != n) {
    fail("combinational cycle detected in '" + name_ + "'");
  }
}

std::vector<CellId> Netlist::topo_order() const {
  std::vector<CellId> order;
  topo_order_into(order);
  return order;
}

std::vector<CellId> Netlist::logic_cells() const {
  std::vector<CellId> out;
  for (const CellId id : topo_order()) {
    const Cell& c = cells_[id];
    if (is_combinational(c.kind) && c.kind != CellKind::kConst0 &&
        c.kind != CellKind::kConst1) {
      out.push_back(id);
    }
  }
  return out;
}

std::uint64_t Netlist::replace_with_lut(CellId id) {
  const Cell& c = cell(id);
  if (!is_replaceable_gate(c.kind)) {
    fail("replace_with_lut: cell '" + std::string(c.name) + "' (" +
         std::string(kind_name(c.kind)) + ") is not replaceable");
  }
  if (c.fanin_count() > kMaxLutInputs) {
    fail_at(c.name, "replace_with_lut: fan-in of ", " exceeds LUT capacity");
  }
  const std::uint64_t mask = gate_truth_mask(c.kind, c.fanin_count());
  replace_with_lut(id, mask);
  return mask;
}

void Netlist::replace_with_lut(CellId id, std::uint64_t mask) {
  Cell& c = cell(id);
  if (!is_replaceable_gate(c.kind) && c.kind != CellKind::kLut) {
    fail_at(c.name, "replace_with_lut: cell ", " is not replaceable");
  }
  if (c.fanin_count() > kMaxLutInputs) {
    fail_at(c.name, "replace_with_lut: fan-in of ", " exceeds LUT capacity");
  }
  c.kind = CellKind::kLut;
  c.lut_mask = mask & full_mask(c.fanin_count());
}

void Netlist::check() const { check_impl(true); }

void Netlist::check_impl(bool verify_fanout_sync) const {
  if (names_.size() != cells_.size()) fail("name map out of sync");
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    const auto range = fanin_range(c.kind);
    if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
      fail("cell '" + std::string(c.name) + "' has illegal fan-in count " +
           std::to_string(c.fanin_count()));
    }
    for (const CellId driver : c.fanins) {
      if (driver == kNullCell || driver >= cells_.size()) {
        fail_at(c.name, "cell ", " has a dangling fan-in");
      }
    }
  }
  if (verify_fanout_sync) {
    // Multiset equality of (driver, reader) edges seen from both sides, in
    // O(E log E) instead of the seed's per-pair counting scans.
    std::vector<std::uint64_t> from_fanins;
    std::vector<std::uint64_t> from_fanouts;
    for (CellId id = 0; id < cells_.size(); ++id) {
      for (const CellId driver : cells_[id].fanins) {
        from_fanins.push_back((std::uint64_t{driver} << 32) | id);
      }
      for (const CellId reader : cells_[id].fanouts) {
        from_fanouts.push_back((std::uint64_t{id} << 32) | reader);
      }
    }
    std::sort(from_fanins.begin(), from_fanins.end());
    std::sort(from_fanouts.begin(), from_fanouts.end());
    if (from_fanins != from_fanouts) {
      // Rare path: recover a culprit cell name for the diagnostic.
      for (CellId id = 0; id < cells_.size(); ++id) {
        const Cell& c = cells_[id];
        for (const CellId driver : c.fanins) {
          const auto expect = static_cast<std::size_t>(
              std::count(c.fanins.begin(), c.fanins.end(), driver));
          const auto& outs = cells_[driver].fanouts;
          const auto have = static_cast<std::size_t>(
              std::count(outs.begin(), outs.end(), id));
          if (have != expect) {
            fail_at(c.name, "fanout list out of sync at ");
          }
        }
      }
      fail("fanout list out of sync");
    }
  }
  (void)topo_order();  // throws on combinational cycles
}

bool Netlist::structurally_equal(const Netlist& other) const {
  if (cells_.size() != other.cells_.size()) return false;
  if (outputs_.size() != other.outputs_.size()) return false;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& a = cells_[id];
    const Cell& b = other.cells_[id];
    if (a.kind != b.kind || a.name != b.name || a.fanins != b.fanins ||
        a.is_output != b.is_output) {
      return false;
    }
    if (a.kind == CellKind::kLut && a.lut_mask != b.lut_mask) return false;
  }
  return true;
}

void Netlist::copy_from(const Netlist& other) {
  name_ = other.name_;
  names_ = other.names_;  // deep arena copy; symbols preserved
  cells_ = other.cells_;  // conn lists still alias other's pools here
  inputs_ = other.inputs_;
  outputs_ = other.outputs_;
  dffs_ = other.dffs_;
  // Re-point names into our arena and re-house spilled lists into our
  // pools; inline lists were copied by value already.
  for (CellId id = 0; id < cells_.size(); ++id) {
    Cell& c = cells_[id];
    c.name = names_.view(id);
    if (c.fanins.spilled()) {
      ConnList housed;
      housed.rehouse_from(other.cells_[id].fanins, fanin_pool_);
      c.fanins = housed;
    }
    if (c.fanouts.spilled()) {
      ConnList housed;
      housed.rehouse_from(other.cells_[id].fanouts, fanout_pool_);
      c.fanouts = housed;
    }
  }
}

}  // namespace stt
