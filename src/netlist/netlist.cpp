#include "netlist/netlist.hpp"

#include <algorithm>
#include <stdexcept>

#include "util/strings.hpp"

namespace stt {

namespace {

[[noreturn]] void fail(const std::string& msg) {
  throw std::runtime_error("netlist: " + msg);
}

}  // namespace

void Netlist::register_name(const std::string& net_name, CellId id) {
  if (net_name.empty()) fail("empty net name");
  const auto [it, inserted] = by_name_.emplace(net_name, id);
  if (!inserted) fail("duplicate net name '" + net_name + "'");
}

CellId Netlist::add_cell(CellKind kind, std::string net_name) {
  const auto id = static_cast<CellId>(cells_.size());
  register_name(net_name, id);
  Cell c;
  c.kind = kind;
  c.name = std::move(net_name);
  cells_.push_back(std::move(c));
  if (kind == CellKind::kInput) inputs_.push_back(id);
  if (kind == CellKind::kDff) dffs_.push_back(id);
  return id;
}

CellId Netlist::add_input(std::string net_name) {
  return add_cell(CellKind::kInput, std::move(net_name));
}

CellId Netlist::add_const(bool value, std::string net_name) {
  return add_cell(value ? CellKind::kConst1 : CellKind::kConst0,
                  std::move(net_name));
}

CellId Netlist::add_dff(std::string net_name, CellId d) {
  const CellId id = add_cell(CellKind::kDff, std::move(net_name));
  if (d != kNullCell) connect(id, {d});
  return id;
}

CellId Netlist::add_gate(CellKind kind, std::string net_name,
                         std::vector<CellId> fanins) {
  const auto range = fanin_range(kind);
  if (static_cast<int>(fanins.size()) < range.min ||
      static_cast<int>(fanins.size()) > range.max) {
    fail("illegal fan-in count for " + std::string(kind_name(kind)) +
         " '" + net_name + "'");
  }
  const CellId id = add_cell(kind, std::move(net_name));
  connect(id, std::move(fanins));
  return id;
}

CellId Netlist::add_lut(std::string net_name, std::vector<CellId> fanins,
                        std::uint64_t mask) {
  const CellId id = add_gate(CellKind::kLut, std::move(net_name),
                             std::move(fanins));
  cells_[id].lut_mask = mask & full_mask(cells_[id].fanin_count());
  return id;
}

void Netlist::connect(CellId cell_id, std::vector<CellId> fanins) {
  Cell& c = cells_.at(cell_id);
  // Withdraw previous fanout registrations.
  for (const CellId old : c.fanins) {
    auto& outs = cells_.at(old).fanouts;
    const auto it = std::find(outs.begin(), outs.end(), cell_id);
    if (it != outs.end()) outs.erase(it);
  }
  c.fanins = std::move(fanins);
  for (const CellId driver : c.fanins) {
    if (driver == kNullCell) continue;  // resolved later by a parser pass
    cells_.at(driver).fanouts.push_back(cell_id);
  }
}

void Netlist::replace_fanin(CellId cell_id, std::size_t slot,
                            CellId new_driver) {
  Cell& c = cells_.at(cell_id);
  if (slot >= c.fanins.size()) fail("replace_fanin: slot out of range");
  const CellId old = c.fanins[slot];
  if (old != kNullCell) {
    auto& outs = cells_.at(old).fanouts;
    const auto it = std::find(outs.begin(), outs.end(), cell_id);
    if (it != outs.end()) outs.erase(it);
  }
  c.fanins[slot] = new_driver;
  if (new_driver != kNullCell) cells_.at(new_driver).fanouts.push_back(cell_id);
}

void Netlist::mark_output(CellId cell_id) {
  Cell& c = cells_.at(cell_id);
  if (!c.is_output) {
    c.is_output = true;
    outputs_.push_back(cell_id);
  }
}

void Netlist::rebuild_fanouts() {
  for (Cell& c : cells_) c.fanouts.clear();
  for (CellId id = 0; id < cells_.size(); ++id) {
    for (const CellId driver : cells_[id].fanins) {
      if (driver == kNullCell) fail("unresolved fan-in on '" +
                                    cells_[id].name + "'");
      cells_.at(driver).fanouts.push_back(id);
    }
  }
}

void Netlist::finalize() {
  rebuild_fanouts();
  check();
}

CellId Netlist::find(std::string_view net_name) const {
  const auto it = by_name_.find(std::string(net_name));
  return it == by_name_.end() ? kNullCell : it->second;
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.inputs = inputs_.size();
  s.outputs = outputs_.size();
  s.dffs = dffs_.size();
  for (const Cell& c : cells_) {
    s.max_fanin = std::max(s.max_fanin, c.fanin_count());
    switch (c.kind) {
      case CellKind::kInput:
      case CellKind::kDff:
        break;
      case CellKind::kConst0:
      case CellKind::kConst1:
        ++s.constants;
        break;
      case CellKind::kLut:
        ++s.gates;
        ++s.luts;
        break;
      default:
        ++s.gates;
    }
  }
  return s;
}

std::vector<CellId> Netlist::topo_order() const {
  std::vector<std::uint32_t> pending(cells_.size(), 0);
  std::vector<CellId> order;
  order.reserve(cells_.size());
  std::vector<CellId> ready;

  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff ||
        c.fanins.empty()) {
      // Sources of the combinational graph: PIs, DFF outputs, constants.
      ready.push_back(id);
    } else {
      pending[id] = static_cast<std::uint32_t>(c.fanins.size());
    }
  }

  while (!ready.empty()) {
    const CellId id = ready.back();
    ready.pop_back();
    order.push_back(id);
    if (cells_[id].kind == CellKind::kDff && !order.empty()) {
      // A DFF output is a source; its D input is consumed elsewhere. Nothing
      // special to do: the DFF was scheduled as a source already.
    }
    for (const CellId reader : cells_[id].fanouts) {
      if (cells_[reader].kind == CellKind::kDff) continue;  // sequential edge
      if (--pending[reader] == 0) ready.push_back(reader);
    }
  }

  // DFF D-pin edges were skipped above, so DFF cells appeared as sources and
  // combinational cells must all be scheduled; anything left is a cycle.
  if (order.size() != cells_.size()) {
    fail("combinational cycle detected in '" + name_ + "'");
  }
  return order;
}

std::vector<CellId> Netlist::logic_cells() const {
  std::vector<CellId> out;
  for (const CellId id : topo_order()) {
    const Cell& c = cells_[id];
    if (is_combinational(c.kind) && c.kind != CellKind::kConst0 &&
        c.kind != CellKind::kConst1) {
      out.push_back(id);
    }
  }
  return out;
}

std::uint64_t Netlist::replace_with_lut(CellId id) {
  const Cell& c = cells_.at(id);
  if (!is_replaceable_gate(c.kind)) {
    fail("replace_with_lut: cell '" + c.name + "' (" +
         std::string(kind_name(c.kind)) + ") is not replaceable");
  }
  if (c.fanin_count() > kMaxLutInputs) {
    fail("replace_with_lut: fan-in of '" + c.name + "' exceeds LUT capacity");
  }
  const std::uint64_t mask = gate_truth_mask(c.kind, c.fanin_count());
  replace_with_lut(id, mask);
  return mask;
}

void Netlist::replace_with_lut(CellId id, std::uint64_t mask) {
  Cell& c = cells_.at(id);
  if (!is_replaceable_gate(c.kind) && c.kind != CellKind::kLut) {
    fail("replace_with_lut: cell '" + c.name + "' is not replaceable");
  }
  if (c.fanin_count() > kMaxLutInputs) {
    fail("replace_with_lut: fan-in of '" + c.name + "' exceeds LUT capacity");
  }
  c.kind = CellKind::kLut;
  c.lut_mask = mask & full_mask(c.fanin_count());
}

void Netlist::check() const {
  if (by_name_.size() != cells_.size()) fail("name map out of sync");
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& c = cells_[id];
    const auto range = fanin_range(c.kind);
    if (c.fanin_count() < range.min || c.fanin_count() > range.max) {
      fail("cell '" + c.name + "' has illegal fan-in count " +
           std::to_string(c.fanin_count()));
    }
    for (const CellId driver : c.fanins) {
      if (driver == kNullCell || driver >= cells_.size()) {
        fail("cell '" + c.name + "' has a dangling fan-in");
      }
      const auto& outs = cells_[driver].fanouts;
      const auto expect = static_cast<std::size_t>(
          std::count(c.fanins.begin(), c.fanins.end(), driver));
      const auto have = static_cast<std::size_t>(
          std::count(outs.begin(), outs.end(), id));
      if (have != expect) fail("fanout list out of sync at '" + c.name + "'");
    }
  }
  (void)topo_order();  // throws on combinational cycles
}

bool Netlist::structurally_equal(const Netlist& other) const {
  if (cells_.size() != other.cells_.size()) return false;
  if (outputs_.size() != other.outputs_.size()) return false;
  for (CellId id = 0; id < cells_.size(); ++id) {
    const Cell& a = cells_[id];
    const Cell& b = other.cells_[id];
    if (a.kind != b.kind || a.name != b.name || a.fanins != b.fanins ||
        a.is_output != b.is_output) {
      return false;
    }
    if (a.kind == CellKind::kLut && a.lut_mask != b.lut_mask) return false;
  }
  return true;
}

}  // namespace stt
