// Dead-logic removal: rebuild a netlist without cells that cannot reach a
// primary output. Used by the optimization passes and after LUT absorption.
#pragma once

#include "netlist/netlist.hpp"

namespace stt {

/// Returns a compacted copy: cells not backward-reachable from any primary
/// output are dropped (including unread flip-flops). Primary inputs are
/// always kept (interface stability) and live flip-flops keep their
/// interface order, so scan-view positional equivalence is preserved.
/// Names survive; CellIds do not.
Netlist strip_dead_logic(const Netlist& nl);

}  // namespace stt
