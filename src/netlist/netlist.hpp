// Gate-level sequential netlist: the central data structure of the flow.
//
// A Netlist is a flat multigraph of cells. Primary inputs and D flip-flops
// are the combinational sources; primary outputs (a marking on driver cells)
// and flip-flop D pins are the sinks. The selection-and-replacement stage
// (src/core) edits a Netlist in place by converting CMOS gates to
// reconfigurable LUT cells whose truth-table mask is the configuration
// secret.
//
// Invariants (checked by `finalize()` / `check()`):
//  * cell names are unique and non-empty;
//  * every fan-in refers to an existing cell, with cardinality legal for the
//    cell kind (see fanin_range);
//  * the combinational subgraph (all edges except those entering a DFF D
//    pin... i.e. edges out of DFF outputs are sources) is acyclic;
//  * fanout lists exactly mirror fan-in lists.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/celltype.hpp"

namespace stt {

using CellId = std::uint32_t;
inline constexpr CellId kNullCell = static_cast<CellId>(-1);

struct Cell {
  CellKind kind = CellKind::kBuf;
  std::string name;               ///< name of the net this cell drives
  std::vector<CellId> fanins;     ///< driver cells, position-significant
  std::vector<CellId> fanouts;    ///< reader cells (duplicates allowed)
  std::uint64_t lut_mask = 0;     ///< truth table; meaningful iff kind==kLut
  bool is_output = false;         ///< drives a primary output

  int fanin_count() const { return static_cast<int>(fanins.size()); }
};

/// Aggregate size statistics, aligned with the paper's Table I "size" column
/// (logic gates excluding flip-flops).
struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t gates = 0;  ///< combinational logic cells incl. BUF/NOT/LUT
  std::size_t luts = 0;   ///< of which reconfigurable LUTs
  std::size_t constants = 0;
  int max_fanin = 0;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction ---------------------------------------------------------

  CellId add_input(std::string net_name);
  CellId add_const(bool value, std::string net_name);
  CellId add_dff(std::string net_name, CellId d = kNullCell);
  CellId add_gate(CellKind kind, std::string net_name,
                  std::vector<CellId> fanins);
  CellId add_lut(std::string net_name, std::vector<CellId> fanins,
                 std::uint64_t mask);

  /// Low-level: create a cell with no fan-ins yet (two-pass parsers).
  CellId add_cell(CellKind kind, std::string net_name);

  /// Low-level: set the full fan-in list of a cell. Fanouts are rebuilt by
  /// `finalize()`; callers that edit incrementally use `replace_fanin`.
  void connect(CellId cell, std::vector<CellId> fanins);

  /// Replace one fan-in slot, updating both fanout lists.
  void replace_fanin(CellId cell, std::size_t slot, CellId new_driver);

  /// Mark a cell as driving a primary output.
  void mark_output(CellId cell);

  /// Rebuild fanout lists and run `check()`. Must be called after any batch
  /// of `add_cell`/`connect` edits.
  void finalize();

  // -- queries --------------------------------------------------------------

  std::size_t size() const { return cells_.size(); }
  const Cell& cell(CellId id) const { return cells_.at(id); }
  Cell& cell(CellId id) { return cells_.at(id); }

  std::span<const CellId> inputs() const { return inputs_; }
  std::span<const CellId> outputs() const { return outputs_; }
  std::span<const CellId> dffs() const { return dffs_; }

  /// Find a cell by net name; kNullCell if absent.
  CellId find(std::string_view net_name) const;

  NetlistStats stats() const;

  /// All cell ids in a combinational topological order: PIs, constants and
  /// DFF outputs first, then gates such that every gate follows its drivers.
  /// Throws std::runtime_error on a combinational cycle.
  std::vector<CellId> topo_order() const;

  /// Ids of all combinational logic cells (gates + LUTs + BUF/NOT), in topo
  /// order.
  std::vector<CellId> logic_cells() const;

  // -- editing --------------------------------------------------------------

  /// Convert a CMOS gate to a reconfigurable LUT. With no explicit mask the
  /// LUT is configured to the gate's original function (functionality-
  /// preserving replacement, as in the paper's flow). Returns the mask that
  /// was installed (the configuration secret for this LUT).
  std::uint64_t replace_with_lut(CellId id);
  void replace_with_lut(CellId id, std::uint64_t mask);

  /// Validate all invariants; throws std::runtime_error with a diagnostic.
  void check() const;

  /// Structural equality (same cells, kinds, names, connectivity, masks).
  bool structurally_equal(const Netlist& other) const;

 private:
  void register_name(const std::string& net_name, CellId id);
  void rebuild_fanouts();

  std::string name_;
  std::vector<Cell> cells_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::vector<CellId> dffs_;
  std::unordered_map<std::string, CellId> by_name_;
};

}  // namespace stt
