// Gate-level sequential netlist: the central data structure of the flow.
//
// A Netlist is a flat multigraph of cells. Primary inputs and D flip-flops
// are the combinational sources; primary outputs (a marking on driver cells)
// and flip-flop D pins are the sinks. The selection-and-replacement stage
// (src/core) edits a Netlist in place by converting CMOS gates to
// reconfigurable LUT cells whose truth-table mask is the configuration
// secret.
//
// Memory layout (million-gate scale): cell names are interned into an
// arena owned by the netlist (`Cell::name` is a stable `std::string_view`,
// and the interner's open-addressing table doubles as the name index, so
// `find()` is an allocation-free lookup); fan-in/fan-out lists are
// `ConnList`s — up to four ids inline, longer lists in pooled storage —
// so constructing a cell performs no heap allocation in the common case
// and `finalize()` rebuilds all fan-outs in one CSR counting pass.
//
// Invariants (checked by `finalize()` / `check()`):
//  * cell names are unique and non-empty;
//  * every fan-in refers to an existing cell, with cardinality legal for the
//    cell kind (see fanin_range);
//  * the combinational subgraph (all edges except those entering a DFF D
//    pin... i.e. edges out of DFF outputs are sources) is acyclic;
//  * fanout lists exactly mirror fan-in lists.
#pragma once

#include <cassert>
#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/celltype.hpp"
#include "netlist/connlist.hpp"
#include "util/interner.hpp"

namespace stt {

inline constexpr CellId kNullCell = static_cast<CellId>(-1);

struct Cell {
  CellKind kind = CellKind::kBuf;
  bool is_output = false;         ///< drives a primary output
  std::string_view name;          ///< interned; stable for the netlist's life
  ConnList fanins;                ///< driver cells, position-significant
  ConnList fanouts;               ///< reader cells (duplicates allowed)
  std::uint64_t lut_mask = 0;     ///< truth table; meaningful iff kind==kLut

  int fanin_count() const { return static_cast<int>(fanins.size()); }
};

/// Aggregate size statistics, aligned with the paper's Table I "size" column
/// (logic gates excluding flip-flops).
struct NetlistStats {
  std::size_t inputs = 0;
  std::size_t outputs = 0;
  std::size_t dffs = 0;
  std::size_t gates = 0;  ///< combinational logic cells incl. BUF/NOT/LUT
  std::size_t luts = 0;   ///< of which reconfigurable LUTs
  std::size_t constants = 0;
  int max_fanin = 0;
};

class Netlist {
 public:
  Netlist() = default;
  explicit Netlist(std::string name) : name_(std::move(name)) {}

  Netlist(const Netlist& other) { copy_from(other); }
  Netlist& operator=(const Netlist& other) {
    if (this != &other) {
      Netlist tmp(other);
      *this = std::move(tmp);
    }
    return *this;
  }
  Netlist(Netlist&&) noexcept = default;
  Netlist& operator=(Netlist&&) noexcept = default;

  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  // -- construction ---------------------------------------------------------

  /// Pre-size every store for a bulk build: `cells` cells, ~`edges` total
  /// fan-in entries, ~`name_bytes` of name text (0 = estimate). Parsers and
  /// generators call this once up front so the build never rehashes or
  /// reallocates.
  void reserve(std::size_t cells, std::size_t edges,
               std::size_t name_bytes = 0);

  CellId add_input(std::string_view net_name);
  CellId add_const(bool value, std::string_view net_name);
  CellId add_dff(std::string_view net_name, CellId d = kNullCell);
  CellId add_gate(CellKind kind, std::string_view net_name,
                  std::span<const CellId> fanins);
  CellId add_gate(CellKind kind, std::string_view net_name,
                  std::initializer_list<CellId> fanins) {
    return add_gate(kind, net_name, std::span<const CellId>(fanins));
  }
  CellId add_lut(std::string_view net_name, std::span<const CellId> fanins,
                 std::uint64_t mask);
  CellId add_lut(std::string_view net_name,
                 std::initializer_list<CellId> fanins, std::uint64_t mask) {
    return add_lut(net_name, std::span<const CellId>(fanins), mask);
  }

  /// Low-level: create a cell with no fan-ins yet (two-pass parsers).
  CellId add_cell(CellKind kind, std::string_view net_name);

  /// Low-level: set the full fan-in list of a cell. Fanouts are rebuilt by
  /// `finalize()`; callers that edit incrementally use `replace_fanin`.
  void connect(CellId cell, std::span<const CellId> fanins);
  void connect(CellId cell, std::initializer_list<CellId> fanins) {
    connect(cell, std::span<const CellId>(fanins));
  }

  /// Low-level: append one fan-in slot without touching fan-out lists
  /// (parsers resolving forward references; `finalize()` restores sync).
  void append_fanin(CellId cell, CellId driver);

  /// Replace one fan-in slot, updating both fanout lists.
  void replace_fanin(CellId cell, std::size_t slot, CellId new_driver);

  /// Mark a cell as driving a primary output.
  void mark_output(CellId cell);

  /// Rebuild fanout lists (single CSR counting pass) and validate. Must be
  /// called after any batch of `add_cell`/`connect` edits.
  void finalize();

  // -- queries --------------------------------------------------------------

  std::size_t size() const { return cells_.size(); }
  const Cell& cell(CellId id) const {
    assert(id < cells_.size());
    return cells_[id];
  }
  Cell& cell(CellId id) {
    assert(id < cells_.size());
    return cells_[id];
  }

  std::span<const CellId> inputs() const { return inputs_; }
  std::span<const CellId> outputs() const { return outputs_; }
  std::span<const CellId> dffs() const { return dffs_; }

  /// Find a cell by net name; kNullCell if absent. Allocation-free.
  CellId find(std::string_view net_name) const;

  NetlistStats stats() const;

  /// All cell ids in a combinational topological order: PIs, constants and
  /// DFF outputs first, then gates such that every gate follows its drivers.
  /// Throws std::runtime_error on a combinational cycle.
  std::vector<CellId> topo_order() const;

  /// Zero-allocation variant for hot callers: fills `out` (capacity is
  /// reused across calls) with the same order `topo_order()` returns.
  void topo_order_into(std::vector<CellId>& out) const;

  /// Ids of all combinational logic cells (gates + LUTs + BUF/NOT), in topo
  /// order.
  std::vector<CellId> logic_cells() const;

  // -- editing --------------------------------------------------------------

  /// Convert a CMOS gate to a reconfigurable LUT. With no explicit mask the
  /// LUT is configured to the gate's original function (functionality-
  /// preserving replacement, as in the paper's flow). Returns the mask that
  /// was installed (the configuration secret for this LUT).
  std::uint64_t replace_with_lut(CellId id);
  void replace_with_lut(CellId id, std::uint64_t mask);

  /// Validate all invariants; throws std::runtime_error with a diagnostic.
  void check() const;

  /// Structural equality (same cells, kinds, names, connectivity, masks).
  bool structurally_equal(const Netlist& other) const;

 private:
  std::string_view register_name(std::string_view net_name, CellId id);
  void rebuild_fanouts();
  void check_impl(bool verify_fanout_sync) const;
  void copy_from(const Netlist& other);

  std::string name_;
  StringInterner names_;     ///< sym i is cell i's name
  ConnPool fanin_pool_;      ///< spilled fan-in lists
  ConnPool fanout_pool_;     ///< spilled fan-out lists; rewound per rebuild
  std::vector<Cell> cells_;
  std::vector<CellId> inputs_;
  std::vector<CellId> outputs_;
  std::vector<CellId> dffs_;
};

}  // namespace stt
