#include "netlist/cleanup.hpp"

#include <cassert>
#include <vector>

namespace stt {

Netlist strip_dead_logic(const Netlist& nl) {
  // Live = backward-reachable from the primary outputs (crossing DFFs).
  std::vector<bool> live(nl.size(), false);
  std::vector<CellId> work(nl.outputs().begin(), nl.outputs().end());
  for (const CellId id : work) live[id] = true;
  while (!work.empty()) {
    const CellId u = work.back();
    work.pop_back();
    for (const CellId f : nl.cell(u).fanins) {
      if (!live[f]) {
        live[f] = true;
        work.push_back(f);
      }
    }
  }

  Netlist out(nl.name());
  // Old id -> new id, flat: every lookup below is for a live cell (liveness
  // is closed over fan-ins), so a hash map here would only add a hash per
  // edge on million-gate netlists.
  std::vector<CellId> remap(nl.size(), kNullCell);
  // Interface stability: keep every primary input, live or not, and create
  // live flip-flops in interface order so scan-view positional equivalence
  // survives the rebuild.
  for (const CellId id : nl.inputs()) {
    remap[id] = out.add_input(nl.cell(id).name);
  }
  std::vector<CellId> ordered;
  for (const CellId id : nl.dffs()) {
    if (!live[id]) continue;
    ordered.push_back(id);
    remap[id] = out.add_cell(CellKind::kDff, nl.cell(id).name);
  }
  // Remaining live cells in topological order, two-pass for the sequential
  // back-edges.
  for (const CellId id : nl.topo_order()) {
    const CellKind kind = nl.cell(id).kind;
    if (!live[id] || kind == CellKind::kInput || kind == CellKind::kDff) {
      continue;
    }
    ordered.push_back(id);
    const Cell& c = nl.cell(id);
    const CellId nid = out.add_cell(c.kind, c.name);
    out.cell(nid).lut_mask = c.lut_mask;
    remap[id] = nid;
  }
  for (const CellId id : ordered) {
    std::vector<CellId> fanins;
    for (const CellId f : nl.cell(id).fanins) {
      assert(remap[f] != kNullCell);
      fanins.push_back(remap[f]);
    }
    out.connect(remap[id], std::move(fanins));
  }
  for (const CellId id : nl.outputs()) out.mark_output(remap[id]);
  out.finalize();
  return out;
}

}  // namespace stt
