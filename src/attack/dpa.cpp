#include "attack/dpa.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "core/similarity.hpp"
#include "sim/simulator.hpp"

namespace stt {

namespace {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

DpaResult run_dpa_attack(const Netlist& nl, CellId target,
                         std::uint64_t truth_mask,
                         const PowerTraceResult& measurement,
                         const DpaOptions& opt) {
  const Cell& tc = nl.cell(target);
  const int k = tc.fanin_count();
  std::vector<std::uint64_t> candidates = opt.candidates;
  if (candidates.empty()) {
    candidates = k >= 2 ? standard_candidate_masks(k)
                        : std::vector<std::uint64_t>{0b10ull, 0b01ull};
  }
  if (measurement.trace_fj.size() < 3) {
    throw std::invalid_argument("run_dpa_attack: trace too short");
  }

  // Measured samples, skipping cycle 0 (no toggle information yet).
  std::vector<double> measured(measurement.trace_fj.begin() + 1,
                               measurement.trace_fj.end());

  DpaResult result;
  result.best_correlation = -2;
  result.runner_up_correlation = -2;

  Netlist model = nl;
  // A standard-gate target is remasked through LUT semantics.
  if (model.cell(target).kind != CellKind::kLut) {
    model.replace_with_lut(target);
  }

  for (const std::uint64_t candidate : candidates) {
    model.cell(target).lut_mask = candidate & full_mask(k);
    const Simulator sim(model);

    // Predict the target's output-toggle indicator per cycle from the
    // recorded stimulus and state.
    std::vector<double> prediction;
    prediction.reserve(measured.size());
    bool prev_out = false;
    for (std::size_t t = 0; t < measurement.pi_bits.size(); ++t) {
      std::vector<std::uint64_t> pi(measurement.pi_bits[t].size());
      std::vector<std::uint64_t> ff(measurement.state_bits[t].size());
      for (std::size_t i = 0; i < pi.size(); ++i) {
        pi[i] = measurement.pi_bits[t][i] ? ~0ull : 0ull;
      }
      for (std::size_t j = 0; j < ff.size(); ++j) {
        ff[j] = measurement.state_bits[t][j] ? ~0ull : 0ull;
      }
      const auto wave = sim.eval_comb(pi, ff);
      const bool out = wave[target] & 1ull;
      if (t >= 1) prediction.push_back(out != prev_out ? 1.0 : 0.0);
      prev_out = out;
    }

    const double corr = pearson(prediction, measured);
    result.ranking.emplace_back(candidate, corr);
  }

  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  result.best_mask = result.ranking.front().first;
  result.best_correlation = result.ranking.front().second;
  const std::uint64_t complement = (~result.best_mask) & full_mask(k);
  result.runner_up_correlation = result.best_correlation;
  for (const auto& [mask, corr] : result.ranking) {
    if (mask != result.best_mask && mask != complement) {
      result.runner_up_correlation = corr;
      break;
    }
  }
  const std::uint64_t truth = truth_mask & full_mask(k);
  result.identified_true_mask = (result.best_mask == truth);
  result.identified_up_to_complement =
      result.identified_true_mask || (complement == truth);
  return result;
}

}  // namespace stt
