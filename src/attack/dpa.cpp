#include "attack/dpa.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <stdexcept>

#include "core/similarity.hpp"
#include "obs/obs.hpp"
#include "sim/compiled.hpp"
#include "util/timer.hpp"

namespace stt {

namespace {

double pearson(const std::vector<double>& x, const std::vector<double>& y) {
  const std::size_t n = std::min(x.size(), y.size());
  if (n < 2) return 0;
  double sx = 0, sy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0, sxx = 0, syy = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) return 0;
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace

DpaResult run_dpa_attack(const Netlist& nl, CellId target,
                         std::uint64_t truth_mask,
                         const PowerTraceResult& measurement,
                         const DpaOptions& opt) {
  const Cell& tc = nl.cell(target);
  const int k = tc.fanin_count();
  std::vector<std::uint64_t> candidates = opt.candidates;
  if (candidates.empty()) {
    candidates = k >= 2 ? standard_candidate_masks(k)
                        : std::vector<std::uint64_t>{0b10ull, 0b01ull};
  }
  if (measurement.trace_fj.size() < 3) {
    throw std::invalid_argument("run_dpa_attack: trace too short");
  }

  // Measured samples, skipping cycle 0 (no toggle information yet).
  std::vector<double> measured(measurement.trace_fj.begin() + 1,
                               measurement.trace_fj.end());

  DpaResult result;
  const Timer timer;
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "dpa");
  result.span_id = root ? root->id() : 0;
  result.best_correlation = -2;
  result.runner_up_correlation = -2;

  Netlist model = nl;
  // A standard-gate target is remasked through LUT semantics.
  if (model.cell(target).kind != CellKind::kLut) {
    model.replace_with_lut(target);
  }

  // Pack the recorded stimulus into word lanes once (lane b of word w is
  // cycle w*64+b), so every candidate replays 64 cycles per evaluation.
  const std::size_t n_cycles = measurement.pi_bits.size();
  const std::size_t n_words = (n_cycles + 63) / 64;
  const std::size_t n_pi = model.inputs().size();
  const std::size_t n_ff = model.dffs().size();
  std::vector<std::vector<std::uint64_t>> pi_words(
      n_words, std::vector<std::uint64_t>(n_pi, 0));
  std::vector<std::vector<std::uint64_t>> ff_words(
      n_words, std::vector<std::uint64_t>(n_ff, 0));
  for (std::size_t t = 0; t < n_cycles; ++t) {
    const std::size_t w = t / 64;
    const std::uint64_t bit = 1ull << (t % 64);
    for (std::size_t i = 0; i < n_pi; ++i) {
      if (measurement.pi_bits[t][i]) pi_words[w][i] |= bit;
    }
    for (std::size_t j = 0; j < n_ff; ++j) {
      if (measurement.state_bits[t][j]) ff_words[w][j] |= bit;
    }
  }

  // Compile the model once; each candidate is an O(1) mask patch plus one
  // eval_batch over the whole recorded stimulus in the blocked layout (the
  // engine runs whole SIMD lanes and finishes any misaligned tail with the
  // scalar kernel). The target's row of the blocked wave is then walked
  // serially to chain the toggle indicator.
  CompiledSim sim(model);
  const std::size_t W = n_words;
  std::vector<std::uint64_t> pi_blk(n_pi * W), ff_blk(n_ff * W);
  for (std::size_t w = 0; w < W; ++w) {
    for (std::size_t i = 0; i < n_pi; ++i) pi_blk[i * W + w] = pi_words[w][i];
    for (std::size_t j = 0; j < n_ff; ++j) ff_blk[j * W + w] = ff_words[w][j];
  }
  std::vector<std::uint64_t> wave(sim.wave_size() * W);
  std::vector<double> prediction;
  for (const std::uint64_t candidate : candidates) {
    sim.set_lut_mask(target, candidate & full_mask(k));

    // Predict the target's output-toggle indicator per cycle from the
    // recorded stimulus and state.
    prediction.clear();
    prediction.reserve(measured.size());
    bool prev_out = false;
    if (W != 0) sim.eval_batch(W, pi_blk, ff_blk, wave);
    for (std::size_t w = 0; w < n_words; ++w) {
      const std::uint64_t target_word = wave[target * W + w];
      const std::size_t lanes = std::min<std::size_t>(64, n_cycles - w * 64);
      for (std::size_t b = 0; b < lanes; ++b) {
        const bool out = (target_word >> b) & 1ull;
        if (w * 64 + b >= 1) prediction.push_back(out != prev_out ? 1.0 : 0.0);
        prev_out = out;
      }
    }

    const double corr = pearson(prediction, measured);
    result.ranking.emplace_back(candidate, corr);
  }

  std::sort(result.ranking.begin(), result.ranking.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  result.best_mask = result.ranking.front().first;
  result.best_correlation = result.ranking.front().second;
  const std::uint64_t complement = (~result.best_mask) & full_mask(k);
  result.runner_up_correlation = result.best_correlation;
  for (const auto& [mask, corr] : result.ranking) {
    if (mask != result.best_mask && mask != complement) {
      result.runner_up_correlation = corr;
      break;
    }
  }
  const std::uint64_t truth = truth_mask & full_mask(k);
  result.identified_true_mask = (result.best_mask == truth);
  result.identified_up_to_complement =
      result.identified_true_mask || (complement == truth);
  result.outcome = result.identified_true_mask ? attack::Outcome::kSolved
                                               : attack::Outcome::kAbandoned;
  result.key[std::string(tc.name)] = result.best_mask;
  result.queries = measurement.trace_fj.size();  // measured cycles consumed
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace stt
