// Cone-pruned constant-folded encoding of oracle I/O pairs.
//
// The naive SAT-attack loop re-encodes two complete circuit copies per DIP
// (O(gates) clauses per iteration) even though every pinned input is a
// known constant. Under a concrete input pattern the attacker can constant-
// fold the whole netlist except where unresolved LUT rows feed the logic: a
// LUT whose inputs all fold to constants *is* its (unknown) selected key
// row, a gate with one unknown fan-in is an alias of it, and only gates
// with two or more irreducible unknown fan-ins need fresh variables and
// clauses. Per-pair CNF growth therefore tracks the unresolved key fan-out
// cone, not the circuit.
//
// Folding also resolves key bits outright: an output that collapses to a
// single key-row literal pins that row to the oracle's response bit — a
// free unit constraint, recorded in a `LutKnowledge` map (partial_eval.hpp)
// and treated as a constant by every later fold, so cones keep shrinking as
// the attack learns. The simulation-guided warm-up exploits exactly this
// with `units_only` sweeps of cheap random patterns.
//
// One encoder instance serves N key copies (the two miter copies of the
// attack, or the single copy of the final key-extraction solve): the fold
// is shared, clause emission is replicated per copy against that copy's key
// variables.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "sim/partial_eval.hpp"
#include "attack/sat.hpp"
#include "netlist/netlist.hpp"

namespace stt {

/// Per-call accounting of one cone-pruned I/O-pair encoding (all key
/// copies combined).
struct DipEncodeStats {
  int vars_added = 0;
  int clauses_added = 0;      ///< add_clause submissions (incl. units)
  int cells_encoded = 0;      ///< complex cells that emitted clauses
  int key_rows_resolved = 0;  ///< rows newly pinned by this pair
  int complex_outputs = 0;    ///< response bits needing cone encoding
};

class DipEncoder {
 public:
  using KeyVars = std::map<std::string, std::vector<sat::Var>>;

  /// `key_copies` holds one symbolic key-variable map per encoded circuit
  /// copy (as produced by encode_comb with symbolic_keys); every copy must
  /// cover all LUTs of `nl`. The netlist and the solver must outlive the
  /// encoder.
  DipEncoder(sat::Solver& solver, const Netlist& nl,
             std::vector<const KeyVars*> key_copies);

  /// Constrain every key copy with one oracle pair: `inputs` is PI bits
  /// then FF state bits, `response` PO bits then next-state bits. With
  /// `units_only`, only outputs that fold to key-row literals are pinned
  /// (no clause emission for complex cones — the cheap warm-up mode).
  /// Throws std::logic_error if the response contradicts a folded constant
  /// (the oracle does not match the netlist).
  DipEncodeStats add_io_pair(const std::vector<bool>& inputs,
                             const std::vector<bool>& response,
                             bool units_only = false);

  /// Key rows resolved to constants so far (by any pair).
  const LutKnowledgeMap& known_rows() const { return known_; }
  int resolved_row_bits() const { return resolved_bits_; }

 private:
  /// Folded value of a cell under the current pattern: a constant, a
  /// (possibly complemented) key-row literal, or a (possibly complemented)
  /// reference to a complex cell that needs encoding.
  struct EncVal {
    enum Kind : std::uint8_t { kConst, kKey, kCell };
    Kind kind = kConst;
    bool neg = false;  ///< kConst: the value; otherwise: complemented
    CellId node = 0;   ///< kKey: the LUT; kCell: the defining cell
    std::uint32_t row = 0;  ///< kKey only

    bool same_node(const EncVal& o) const {
      return kind == o.kind && node == o.node && row == o.row;
    }
    bool operator==(const EncVal& o) const {
      return same_node(o) && neg == o.neg;
    }
  };

  static EncVal make_const(bool v) { return {EncVal::kConst, v, 0, 0}; }

  void fold_pattern(const std::vector<bool>& inputs);
  EncVal fold_cell(CellId id);
  /// AND-normal form of a standard gate: fills `lits` (deduplicated), sets
  /// `invert`; returns true with `folded` set when the gate collapses.
  bool normalize_gate(const Cell& c, std::vector<EncVal>& lits, bool& invert,
                      EncVal& folded) const;
  /// Unknown-input positions and the constant base row of a LUT.
  void lut_unknowns(const Cell& c, std::vector<EncVal>& unknowns,
                    std::vector<int>& positions, std::uint32_t& base) const;

  void resolve_row(CellId lut, std::uint32_t row, bool value,
                   DipEncodeStats& stats);
  void mark_needed(CellId id);
  void emit_cell(CellId id, DipEncodeStats& stats);
  sat::Var copy_out_var(std::size_t copy, CellId id, DipEncodeStats& stats);
  sat::Lit lit_of(std::size_t copy, const EncVal& v) const;

  sat::Solver* solver_;
  const Netlist* nl_;
  /// Per copy, per LUT cell: that copy's key variables (resolved from the
  /// name-keyed maps once, at construction).
  std::vector<std::vector<std::vector<sat::Var>>> key_by_cell_;

  LutKnowledgeMap known_;
  int resolved_bits_ = 0;

  // Per-pattern scratch, epoch-stamped to avoid O(cells) clears.
  std::vector<EncVal> vals_;
  std::vector<std::vector<sat::Var>> copy_var_;  ///< [copy][cell]
  std::vector<std::uint32_t> var_stamp_;
  std::vector<std::uint32_t> needed_stamp_;
  std::uint32_t epoch_ = 0;
  std::vector<CellId> dfs_stack_;
  std::vector<EncVal> lit_scratch_;
  std::vector<int> pos_scratch_;
};

}  // namespace stt
