// The attacker's oracle: a configured, working chip bought on the market
// (the paper's threat model), accessed through its scan chain.
//
// Scan view: controllable bits are the PIs plus the flip-flop states,
// observable bits the POs plus the next-state (D-pin) values — one scan
// load / capture / unload per query.
#pragma once

#include <cstdint>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace stt {

class ScanOracle {
 public:
  /// `configured` must be fully configured (no unknown LUTs); it is the
  /// ground-truth chip. The netlist must outlive the oracle.
  explicit ScanOracle(const Netlist& configured);

  std::size_t num_inputs() const;   ///< PIs + FFs
  std::size_t num_outputs() const;  ///< POs + FFs

  /// One scan query. `inputs` is PI bits followed by FF state bits.
  std::vector<bool> query(const std::vector<bool>& inputs);

  /// Number of queries made so far (the attack-cost metric: each query is
  /// one test-clock pattern application in the paper's terms).
  std::uint64_t queries() const { return queries_; }

 private:
  const Netlist* nl_;
  Simulator sim_;
  std::uint64_t queries_ = 0;
};

}  // namespace stt
