// The attacker's oracle: a configured, working chip bought on the market
// (the paper's threat model), accessed through its scan chain.
//
// Scan view: controllable bits are the PIs plus the flip-flop states,
// observable bits the POs plus the next-state (D-pin) values — one scan
// load / capture / unload per query.
//
// Three query granularities, all drawing from the same compiled engine and
// the same attack-cost metric (`queries()` counts *patterns applied*, so a
// word of 64 packed patterns costs exactly 64 queries — batching changes
// CPU time, never the reported attack cost):
//  * `query`       — one pattern, bool in / bool out (seed-compatible);
//  * `query_word`  — 64 packed patterns per call;
//  * `query_batch` — W words (64*W patterns), optionally fanned out across
//    threads via a `ParallelFor`.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"

namespace stt {

class ScanOracle {
 public:
  /// `configured` must be fully configured (no unknown LUTs); it is the
  /// ground-truth chip. The netlist must outlive the oracle.
  explicit ScanOracle(const Netlist& configured);

  /// Borrow a pre-built lowering of `configured` instead of compiling one:
  /// the campaign's dedup cache lowers each locked netlist once and every
  /// oracle-backed attack of the group shares it. `prelowered` must have
  /// been built from exactly `configured` and must outlive the oracle; its
  /// eval paths are const and thread-safe, and each oracle keeps private
  /// wave scratch, so concurrent attacks may share one lowering.
  ScanOracle(const Netlist& configured, const CompiledSim& prelowered);

  std::size_t num_inputs() const;   ///< PIs + FFs
  std::size_t num_outputs() const;  ///< POs + FFs

  /// One scan query. `inputs` is PI bits followed by FF state bits.
  std::vector<bool> query(const std::vector<bool>& inputs);

  /// 64 packed scan queries. `inputs` is num_inputs() words (PI words then
  /// FF words; bit b of each word belongs to pattern b); `outputs` receives
  /// num_outputs() words (PO words then next-state words). Counts 64
  /// queries. No allocation.
  void query_word(std::span<const std::uint64_t> inputs,
                  std::span<std::uint64_t> outputs);

  /// W-word batch (64*W packed queries) in the blocked layout: bit position
  /// i's words occupy inputs[i*W .. i*W+W). `outputs` uses the same layout
  /// (num_outputs()*W words). Counts 64*W queries. With `par`, word blocks
  /// evaluate concurrently; results are bit-identical regardless.
  void query_batch(std::size_t W, std::span<const std::uint64_t> inputs,
                   std::span<std::uint64_t> outputs,
                   ParallelFor* par = nullptr);

  /// Number of queries made so far (the attack-cost metric: each query is
  /// one test-clock pattern application in the paper's terms).
  std::uint64_t queries() const { return queries_; }

 private:
  void grow_wave(std::size_t W);

  const Netlist* nl_;
  // Either an owned lowering (one-arg ctor) or a borrowed shared one
  // (two-arg ctor); `sim_` always points at the one in use. CompiledSim is
  // not copyable/movable-safe (it holds internal views), so the owned case
  // constructs in place.
  std::optional<CompiledSim> owned_sim_;
  const CompiledSim* sim_;
  std::vector<std::uint64_t> wave_;  ///< scratch, grown in whole SIMD lanes
  std::uint64_t queries_ = 0;
};

}  // namespace stt
