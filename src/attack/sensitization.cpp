#include "attack/sensitization.hpp"

#include <optional>

#include "sim/partial_eval.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace stt {

SensitizationResult run_sensitization_attack(const Netlist& hybrid,
                                             ScanOracle& oracle,
                                             const SensitizationOptions& opt) {
  SensitizationResult result;
  const Timer timer;
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "sensitization");
  result.span_id = root ? root->id() : 0;
  Rng rng(opt.seed);

  LutKnowledgeMap luts;
  std::vector<CellId> lut_ids;
  for (CellId id = 0; id < hybrid.size(); ++id) {
    const Cell& c = hybrid.cell(id);
    if (c.kind != CellKind::kLut) continue;
    LutKnowledge st;
    st.rows = num_rows(c.fanin_count());
    luts.emplace(id, st);
    lut_ids.push_back(id);
    result.rows_total += static_cast<int>(st.rows);
  }
  result.luts_total = static_cast<int>(lut_ids.size());
  if (lut_ids.empty()) {
    result.outcome = attack::Outcome::kSolved;
    result.elapsed_s = timer.seconds();
    return result;
  }

  PartialEvaluator evaluator(hybrid, luts);
  const std::size_t n_in = oracle.num_inputs();
  const std::size_t n_po = hybrid.outputs().size();
  const std::uint64_t start_queries = oracle.queries();

  int resolved_rows = 0;
  int resolved_luts = 0;
  std::uint64_t stale = 0;  // patterns since last progress

  bool hit_time_limit = false;
  while (resolved_rows < result.rows_total &&
         oracle.queries() - start_queries < opt.query_budget &&
         stale < opt.query_budget / 4 + 512) {
    if ((stale & 255u) == 0 && timer.seconds() >= opt.time_limit_s) {
      hit_time_limit = true;
      break;
    }
    std::vector<bool> pattern(n_in);
    for (std::size_t i = 0; i < n_in; ++i) pattern[i] = rng.chance(0.5);
    const std::vector<bool> response = oracle.query(pattern);
    ++stale;

    std::vector<Tri> tri_in(n_in);
    for (std::size_t i = 0; i < n_in; ++i) tri_in[i] = tri_from_bool(pattern[i]);
    const std::vector<Tri> base = evaluator.eval(tri_in, kNullCell, Tri::kX);

    for (const CellId lut : lut_ids) {
      LutKnowledge& st = luts[lut];
      if (st.complete()) continue;
      // Inputs justified to a definite row?
      const Cell& c = hybrid.cell(lut);
      std::uint32_t row = 0;
      bool definite = true;
      for (int i = 0; i < c.fanin_count(); ++i) {
        const Tri v = base[c.fanins[i]];
        if (v == Tri::kX) {
          definite = false;
          break;
        }
        if (v == Tri::kOne) row |= (1u << i);
      }
      if (!definite || (st.known_mask & (1ull << row))) continue;

      // Propagate: does forcing the LUT output provably reach an
      // observable bit (PO or next-state) that the oracle reveals?
      const auto w0 = evaluator.eval(tri_in, lut, Tri::kZero);
      const auto w1 = evaluator.eval(tri_in, lut, Tri::kOne);
      auto observable = [&](std::size_t idx) -> CellId {
        if (idx < n_po) return hybrid.outputs()[idx];
        return hybrid.cell(hybrid.dffs()[idx - n_po]).fanins.at(0);
      };
      for (std::size_t o = 0; o < response.size(); ++o) {
        const CellId cell = observable(o);
        const Tri v0 = w0[cell];
        const Tri v1 = w1[cell];
        if (v0 == Tri::kX || v1 == Tri::kX || v0 == v1) continue;
        const bool row_value = (tri_from_bool(response[o]) == v1);
        st.known_mask |= (1ull << row);
        if (row_value) st.value_mask |= (1ull << row);
        ++resolved_rows;
        stale = 0;
        if (st.complete()) ++resolved_luts;
        break;
      }
    }
  }

  result.rows_resolved = resolved_rows;
  result.luts_resolved = resolved_luts;
  result.queries = oracle.queries() - start_queries;
  if (resolved_rows == result.rows_total) {
    result.outcome = attack::Outcome::kSolved;
  } else if (hit_time_limit) {
    result.outcome = attack::Outcome::kTimedOut;
  } else if (result.queries >= opt.query_budget) {
    result.outcome = attack::Outcome::kBudgetExhausted;
  } else {
    result.outcome = attack::Outcome::kAbandoned;  // stale: no progress
  }
  for (const CellId lut : lut_ids) {
    result.key[std::string(hybrid.cell(lut).name)] = luts[lut].value_mask;
  }
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace stt
