#include "attack/ml_attack.hpp"

#include <bit>
#include <cmath>
#include <optional>

#include "core/similarity.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace stt {

MlAttackResult run_ml_attack(const Netlist& hybrid, ScanOracle& oracle,
                             const MlAttackOptions& opt) {
  MlAttackResult result;
  const Timer timer;
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "ml");
  result.span_id = root ? root->id() : 0;
  Rng rng(opt.seed);

  Netlist work = hybrid;
  std::vector<CellId> luts;
  std::vector<std::vector<std::uint64_t>> candidates;
  for (CellId id = 0; id < work.size(); ++id) {
    const Cell& c = work.cell(id);
    if (c.kind != CellKind::kLut) continue;
    luts.push_back(id);
    if (opt.standard_candidates_only && c.fanin_count() >= 2) {
      candidates.push_back(standard_candidate_masks(c.fanin_count()));
    } else if (opt.standard_candidates_only) {
      candidates.push_back({0b10ull, 0b01ull});
    } else {
      candidates.push_back({});  // bit-flip moves instead
    }
  }
  if (luts.empty()) {
    result.outcome = attack::Outcome::kSolved;
    result.elapsed_s = timer.seconds();
    return result;
  }

  // Training signature: random scan patterns and oracle responses, packed
  // 64 per word.
  const std::size_t n_pi = work.inputs().size();
  const std::size_t n_ff = work.dffs().size();
  const int n_words = (opt.training_patterns + 63) / 64;
  std::vector<std::vector<std::uint64_t>> pi_words(
      n_words, std::vector<std::uint64_t>(n_pi, 0));
  std::vector<std::vector<std::uint64_t>> ff_words(
      n_words, std::vector<std::uint64_t>(n_ff, 0));
  const std::size_t n_out = oracle.num_outputs();
  std::vector<std::vector<std::uint64_t>> expected(
      n_words, std::vector<std::uint64_t>(n_out, 0));
  // One word-batched oracle call per 64 training patterns (bit draw order
  // matches the seed's pattern-at-a-time loop for reproducibility).
  const std::uint64_t start_queries = oracle.queries();
  std::vector<std::uint64_t> scan_in(n_pi + n_ff);
  for (int w = 0; w < n_words; ++w) {
    for (auto& word : scan_in) word = 0;
    for (int b = 0; b < 64; ++b) {
      for (std::size_t i = 0; i < scan_in.size(); ++i) {
        if (rng.chance(0.5)) scan_in[i] |= (1ull << b);
      }
    }
    for (std::size_t i = 0; i < n_pi; ++i) pi_words[w][i] = scan_in[i];
    for (std::size_t j = 0; j < n_ff; ++j) {
      ff_words[w][j] = scan_in[n_pi + j];
    }
    oracle.query_word(scan_in, expected[w]);
  }

  // Scoring runs on the compiled engine with in-place mask patches and a
  // reused scratch wave: zero allocations per annealing step. The whole
  // training signature is scored in one eval_batch over the blocked
  // layout; the engine runs whole SIMD lanes and finishes any misaligned
  // tail with the scalar kernel, so the score — and the sim.words
  // accounting — stay identical to the seed's word-at-a-time loop under
  // every ISA.
  CompiledSim sim(work);
  const std::size_t n_w = static_cast<std::size_t>(n_words);
  const std::size_t W = n_w;
  std::vector<std::uint64_t> pi_blk(n_pi * W), ff_blk(n_ff * W);
  for (std::size_t w = 0; w < W; ++w) {
    for (std::size_t i = 0; i < n_pi; ++i) pi_blk[i * W + w] = pi_words[w][i];
    for (std::size_t j = 0; j < n_ff; ++j) ff_blk[j * W + w] = ff_words[w][j];
  }
  std::vector<std::uint64_t> wave(sim.wave_size() * W);
  const auto po_cells = sim.output_cells();
  const auto ns_cells = sim.next_state_cells();
  const auto set_mask = [&](CellId id, std::uint64_t mask) {
    work.cell(id).lut_mask = mask;
    sim.set_lut_mask(id, mask);
  };
  const auto total_bits =
      static_cast<double>(n_words) * 64.0 * static_cast<double>(n_out);
  auto score = [&]() -> long long {
    if (W == 0) return 0;
    sim.eval_batch(W, pi_blk, ff_blk, wave);
    long long mismatches = 0;
    for (std::size_t w = 0; w < n_w; ++w) {
      for (std::size_t o = 0; o < po_cells.size(); ++o) {
        mismatches += std::popcount(wave[po_cells[o] * W + w] ^ expected[w][o]);
      }
      for (std::size_t j = 0; j < ns_cells.size(); ++j) {
        mismatches += std::popcount(wave[ns_cells[j] * W + w] ^
                                    expected[w][po_cells.size() + j]);
      }
    }
    return mismatches;
  };

  // Random initial guess.
  for (std::size_t i = 0; i < luts.size(); ++i) {
    const int k = work.cell(luts[i]).fanin_count();
    if (!candidates[i].empty()) {
      set_mask(luts[i], rng.pick(candidates[i]));
    } else {
      set_mask(luts[i], rng() & full_mask(k));
    }
  }

  long long current = score();
  long long best = current;
  LutKey best_key = extract_key(work);
  double temperature = opt.initial_temperature;

  bool hit_time_limit = false;
  for (std::int64_t step = 0; step < opt.work_budget && best > 0; ++step) {
    if ((step & 255) == 0 && timer.seconds() >= opt.time_limit_s) {
      hit_time_limit = true;
      break;
    }
    ++result.steps;
    const std::size_t pick = rng.below(luts.size());
    const Cell& c = work.cell(luts[pick]);
    const std::uint64_t old_mask = c.lut_mask;
    if (!candidates[pick].empty()) {
      set_mask(luts[pick], rng.pick(candidates[pick]));
    } else {
      set_mask(luts[pick],
               old_mask ^ (1ull << rng.below(num_rows(c.fanin_count()))));
    }
    const long long trial = score();
    const long long delta = trial - current;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-static_cast<double>(delta) /
                                 std::max(1e-9, temperature))) {
      current = trial;
      if (current < best) {
        best = current;
        best_key = extract_key(work);
      }
    } else {
      set_mask(luts[pick], old_mask);  // reject
    }
    temperature *= opt.cooling;
  }

  result.key = std::move(best_key);
  result.final_accuracy = 1.0 - static_cast<double>(best) / total_bits;
  if (best == 0) {
    result.outcome = attack::Outcome::kSolved;
  } else if (hit_time_limit) {
    result.outcome = attack::Outcome::kTimedOut;
  } else {
    result.outcome = attack::Outcome::kBudgetExhausted;  // steps exhausted
  }
  result.queries = oracle.queries() - start_queries;
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace stt
