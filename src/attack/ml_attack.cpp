#include "attack/ml_attack.hpp"

#include <bit>
#include <cmath>

#include "core/similarity.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace stt {

MlAttackResult run_ml_attack(const Netlist& hybrid, ScanOracle& oracle,
                             const MlAttackOptions& opt) {
  MlAttackResult result;
  Rng rng(opt.seed);

  Netlist work = hybrid;
  std::vector<CellId> luts;
  std::vector<std::vector<std::uint64_t>> candidates;
  for (CellId id = 0; id < work.size(); ++id) {
    const Cell& c = work.cell(id);
    if (c.kind != CellKind::kLut) continue;
    luts.push_back(id);
    if (opt.standard_candidates_only && c.fanin_count() >= 2) {
      candidates.push_back(standard_candidate_masks(c.fanin_count()));
    } else if (opt.standard_candidates_only) {
      candidates.push_back({0b10ull, 0b01ull});
    } else {
      candidates.push_back({});  // bit-flip moves instead
    }
  }
  if (luts.empty()) {
    result.success = true;
    return result;
  }

  // Training signature: random scan patterns and oracle responses, packed
  // 64 per word.
  const std::size_t n_pi = work.inputs().size();
  const std::size_t n_ff = work.dffs().size();
  const int n_words = (opt.training_patterns + 63) / 64;
  std::vector<std::vector<std::uint64_t>> pi_words(
      n_words, std::vector<std::uint64_t>(n_pi, 0));
  std::vector<std::vector<std::uint64_t>> ff_words(
      n_words, std::vector<std::uint64_t>(n_ff, 0));
  const std::size_t n_out = oracle.num_outputs();
  std::vector<std::vector<std::uint64_t>> expected(
      n_words, std::vector<std::uint64_t>(n_out, 0));
  const std::uint64_t start_queries = oracle.queries();
  for (int p = 0; p < n_words * 64; ++p) {
    std::vector<bool> pattern(n_pi + n_ff);
    for (auto&& b : pattern) b = rng.chance(0.5);
    const auto response = oracle.query(pattern);
    const int w = p / 64;
    const int b = p % 64;
    for (std::size_t i = 0; i < n_pi; ++i) {
      if (pattern[i]) pi_words[w][i] |= (1ull << b);
    }
    for (std::size_t j = 0; j < n_ff; ++j) {
      if (pattern[n_pi + j]) ff_words[w][j] |= (1ull << b);
    }
    for (std::size_t o = 0; o < n_out; ++o) {
      if (response[o]) expected[w][o] |= (1ull << b);
    }
  }

  Simulator sim(work);
  const auto total_bits =
      static_cast<double>(n_words) * 64.0 * static_cast<double>(n_out);
  auto score = [&]() -> long long {
    long long mismatches = 0;
    for (int w = 0; w < n_words; ++w) {
      const auto wave = sim.eval_comb(pi_words[w], ff_words[w]);
      const auto po = sim.outputs_of(wave);
      const auto ns = sim.next_state_of(wave);
      for (std::size_t o = 0; o < po.size(); ++o) {
        mismatches += std::popcount(po[o] ^ expected[w][o]);
      }
      for (std::size_t j = 0; j < ns.size(); ++j) {
        mismatches += std::popcount(ns[j] ^ expected[w][po.size() + j]);
      }
    }
    return mismatches;
  };

  // Random initial guess.
  for (std::size_t i = 0; i < luts.size(); ++i) {
    Cell& c = work.cell(luts[i]);
    if (!candidates[i].empty()) {
      c.lut_mask = rng.pick(candidates[i]);
    } else {
      c.lut_mask = rng() & full_mask(c.fanin_count());
    }
  }

  long long current = score();
  long long best = current;
  LutKey best_key = extract_key(work);
  double temperature = opt.initial_temperature;

  for (int step = 0; step < opt.max_steps && best > 0; ++step) {
    ++result.steps;
    const std::size_t pick = rng.below(luts.size());
    Cell& c = work.cell(luts[pick]);
    const std::uint64_t old_mask = c.lut_mask;
    if (!candidates[pick].empty()) {
      c.lut_mask = rng.pick(candidates[pick]);
    } else {
      c.lut_mask = old_mask ^ (1ull << rng.below(num_rows(c.fanin_count())));
    }
    const long long trial = score();
    const long long delta = trial - current;
    if (delta <= 0 ||
        rng.uniform() < std::exp(-static_cast<double>(delta) /
                                 std::max(1e-9, temperature))) {
      current = trial;
      if (current < best) {
        best = current;
        best_key = extract_key(work);
      }
    } else {
      c.lut_mask = old_mask;  // reject
    }
    temperature *= opt.cooling;
  }

  result.key = std::move(best_key);
  result.final_accuracy = 1.0 - static_cast<double>(best) / total_bits;
  result.success = (best == 0);
  result.oracle_queries = oracle.queries() - start_queries;
  return result;
}

}  // namespace stt
