#include "attack/oracle.hpp"

#include <stdexcept>
#include <utility>

#include "obs/obs.hpp"

namespace stt {

namespace {

obs::Counter& oracle_queries_counter() {
  static obs::Counter& c = obs::Metrics::global().counter("oracle.queries");
  return c;
}

}  // namespace

ScanOracle::ScanOracle(const Netlist& configured)
    : nl_(&configured),
      owned_sim_(std::in_place, configured),
      sim_(&*owned_sim_),
      // Scratch capacity is reserved in whole SIMD lanes of the active
      // kernel (not the seed's hardcoded one-64-bit-word-per-row), so
      // single-word queries and lane-sized batches share one allocation
      // and a wide kernel may always round a row span up to a full lane.
      wave_(sim_->wave_size() * CompiledSim::padded_words(1), 0) {}

ScanOracle::ScanOracle(const Netlist& configured,
                       const CompiledSim& prelowered)
    : nl_(&configured),
      sim_(&prelowered),
      wave_(sim_->wave_size() * CompiledSim::padded_words(1), 0) {}

/// Grow the wave scratch to hold `W` words per row, rounded up to whole
/// lanes of the active kernel. The padding words are never part of the
/// span handed to the engine; they only guarantee the allocation is
/// lane-granular, so alternating query widths under a wide ISA never
/// reallocates per call.
void ScanOracle::grow_wave(std::size_t W) {
  const std::size_t need = sim_->wave_size() * CompiledSim::padded_words(W);
  if (wave_.size() < need) wave_.resize(need);
}

std::size_t ScanOracle::num_inputs() const {
  return nl_->inputs().size() + nl_->dffs().size();
}

std::size_t ScanOracle::num_outputs() const {
  return nl_->outputs().size() + nl_->dffs().size();
}

std::vector<bool> ScanOracle::query(const std::vector<bool>& inputs) {
  if (inputs.size() != num_inputs()) {
    throw std::invalid_argument("ScanOracle::query: input size mismatch");
  }
  ++queries_;
  oracle_queries_counter().add(1);
  const std::size_t n_pi = nl_->inputs().size();
  std::vector<std::uint64_t> pi(n_pi);
  std::vector<std::uint64_t> ff(nl_->dffs().size());
  for (std::size_t i = 0; i < n_pi; ++i) pi[i] = inputs[i] ? ~0ull : 0;
  for (std::size_t j = 0; j < ff.size(); ++j) {
    ff[j] = inputs[n_pi + j] ? ~0ull : 0;
  }
  grow_wave(1);
  const std::span<std::uint64_t> wave(wave_.data(), sim_->wave_size());
  sim_->eval_word(pi, ff, wave);
  std::vector<bool> out;
  out.reserve(num_outputs());
  for (const CellId id : sim_->output_cells()) out.push_back(wave_[id] & 1ull);
  for (const CellId id : sim_->next_state_cells()) {
    out.push_back(wave_[id] & 1ull);
  }
  return out;
}

void ScanOracle::query_word(std::span<const std::uint64_t> inputs,
                            std::span<std::uint64_t> outputs) {
  if (inputs.size() != num_inputs()) {
    throw std::invalid_argument("ScanOracle::query_word: input size mismatch");
  }
  if (outputs.size() != num_outputs()) {
    throw std::invalid_argument("ScanOracle::query_word: output size mismatch");
  }
  queries_ += 64;
  oracle_queries_counter().add(64);
  const std::size_t n_pi = nl_->inputs().size();
  const std::size_t n_ff = nl_->dffs().size();
  grow_wave(1);
  sim_->eval_word(inputs.first(n_pi), inputs.subspan(n_pi, n_ff),
                 std::span<std::uint64_t>(wave_.data(), sim_->wave_size()));
  const std::size_t n_po = sim_->num_outputs();
  for (std::size_t o = 0; o < n_po; ++o) {
    outputs[o] = wave_[sim_->output_cells()[o]];
  }
  for (std::size_t j = 0; j < n_ff; ++j) {
    outputs[n_po + j] = wave_[sim_->next_state_cells()[j]];
  }
}

void ScanOracle::query_batch(std::size_t W,
                             std::span<const std::uint64_t> inputs,
                             std::span<std::uint64_t> outputs,
                             ParallelFor* par) {
  if (inputs.size() != num_inputs() * W) {
    throw std::invalid_argument("ScanOracle::query_batch: input size mismatch");
  }
  if (outputs.size() != num_outputs() * W) {
    throw std::invalid_argument(
        "ScanOracle::query_batch: output size mismatch");
  }
  if (W == 0) return;
  queries_ += 64 * static_cast<std::uint64_t>(W);
  oracle_queries_counter().add(64 * static_cast<std::uint64_t>(W));
  const std::size_t n_pi = nl_->inputs().size();
  const std::size_t n_ff = nl_->dffs().size();
  grow_wave(W);
  const std::span<std::uint64_t> wave(wave_.data(), sim_->wave_size() * W);
  sim_->eval_batch(W, inputs.first(n_pi * W), inputs.subspan(n_pi * W, n_ff * W),
                  wave, par);
  const std::size_t n_po = sim_->num_outputs();
  sim_->gather_outputs(W, wave, outputs.first(n_po * W));
  sim_->gather_next_state(W, wave, outputs.subspan(n_po * W, n_ff * W));
}

}  // namespace stt
