#include "attack/oracle.hpp"

#include <stdexcept>

namespace stt {

ScanOracle::ScanOracle(const Netlist& configured)
    : nl_(&configured), sim_(configured) {}

std::size_t ScanOracle::num_inputs() const {
  return nl_->inputs().size() + nl_->dffs().size();
}

std::size_t ScanOracle::num_outputs() const {
  return nl_->outputs().size() + nl_->dffs().size();
}

std::vector<bool> ScanOracle::query(const std::vector<bool>& inputs) {
  if (inputs.size() != num_inputs()) {
    throw std::invalid_argument("ScanOracle::query: input size mismatch");
  }
  ++queries_;
  const std::size_t n_pi = nl_->inputs().size();
  std::vector<std::uint64_t> pi(n_pi);
  std::vector<std::uint64_t> ff(nl_->dffs().size());
  for (std::size_t i = 0; i < n_pi; ++i) pi[i] = inputs[i] ? ~0ull : 0;
  for (std::size_t j = 0; j < ff.size(); ++j) {
    ff[j] = inputs[n_pi + j] ? ~0ull : 0;
  }
  const auto wave = sim_.eval_comb(pi, ff);
  std::vector<bool> out;
  out.reserve(num_outputs());
  for (const auto w : sim_.outputs_of(wave)) out.push_back(w & 1ull);
  for (const auto w : sim_.next_state_of(wave)) out.push_back(w & 1ull);
  return out;
}

}  // namespace stt
