// A from-scratch CDCL SAT solver (MiniSat-style).
//
// The oracle-guided SAT attack (attack/sat_attack.*) and the equivalence
// checker need incremental SAT over Tseitin-encoded netlists. The solver
// implements the standard toolkit: two-literal watching, first-UIP conflict
// analysis with clause learning, VSIDS decision heuristic with exponential
// decay, phase saving, Luby restarts, and learnt-clause database reduction.
// `solve()` accepts assumption literals and a conflict budget so attacks can
// run under a resource cap and report "undecided" rather than hanging.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stt::sat {

/// Variables are dense 0-based indices created by `Solver::new_var`.
using Var = std::int32_t;

/// A literal packs (var << 1) | negated.
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_((v << 1) | (negated ? 1 : 0)) {}

  Var var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  Lit operator~() const { return from_code(code_ ^ 1); }
  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }

  std::int32_t code() const { return code_; }
  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }
  static Lit undef() { return {}; }

 private:
  std::int32_t code_;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result { kSat, kUnsat, kUnknown };

class Solver {
 public:
  Solver();

  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Add a clause over existing variables. Returns false if the formula is
  /// already unsatisfiable at level 0.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits);
  bool add_unit(Lit l) { return add_clause({l}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under optional assumptions. kUnknown when the conflict budget
  /// (if set) is exhausted.
  Result solve(std::span<const Lit> assumptions = {});

  /// Model access after kSat.
  bool value(Var v) const;

  /// Limit the number of conflicts for the next solve() calls; <0 disables.
  void set_conflict_budget(std::int64_t budget) { conflict_budget_ = budget; }

  // Statistics (cumulative).
  std::int64_t conflicts() const { return stats_conflicts_; }
  std::int64_t decisions() const { return stats_decisions_; }
  std::int64_t propagations() const { return stats_propagations_; }

 private:
  enum LBool : std::uint8_t { kTrue, kFalse, kUndef };

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoClause = -1;

  LBool lit_value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == kUndef) return kUndef;
    return (v == kTrue) != l.negated() ? kTrue : kFalse;
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level);
  Lit pick_branch();
  void bump_var(Var v);
  void bump_clause(Clause& c);
  void decay_activities();
  void reduce_db();
  void rebuild_watches();
  void attach(ClauseRef cr);
  bool lit_redundant(Lit l, std::uint32_t levels_mask);

  // Heap with positions for VSIDS.
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  bool heap_contains(Var v) const { return heap_pos_[v] >= 0; }

  std::vector<Clause> clauses_;
  std::vector<std::vector<ClauseRef>> watches_;  // indexed by lit code
  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heap_pos_;

  std::vector<std::uint8_t> seen_;

  std::int64_t conflict_budget_ = -1;
  std::int64_t stats_conflicts_ = 0;
  std::int64_t stats_decisions_ = 0;
  std::int64_t stats_propagations_ = 0;
  std::int64_t learnt_count_ = 0;
  bool ok_ = true;
};

}  // namespace stt::sat
