// A from-scratch CDCL SAT solver (MiniSat-style).
//
// The oracle-guided SAT attack (attack/sat_attack.*) and the equivalence
// checker need incremental SAT over Tseitin-encoded netlists. The solver
// implements the standard toolkit: two-literal watching with blocker
// literals, dedicated binary-clause watch lists, first-UIP conflict
// analysis with recursive learnt-clause minimization, VSIDS decision
// heuristic with exponential decay, phase saving across incremental calls,
// Luby restarts, and learnt-clause database reduction.
// `solve()` accepts assumption literals plus two resource caps — a conflict
// budget and a wall-clock deadline — so attacks can run under a resource
// cap and report "undecided" (with the cause) rather than hanging.
//
// `SolverConfig` diversifies restart cadence, decision randomization and
// default polarity; the attack portfolio races differently-configured
// solvers over the same clause set.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace stt::sat {

/// Variables are dense 0-based indices created by `Solver::new_var`.
using Var = std::int32_t;

/// A literal packs (var << 1) | negated.
class Lit {
 public:
  Lit() : code_(-2) {}
  Lit(Var v, bool negated) : code_((v << 1) | (negated ? 1 : 0)) {}

  Var var() const { return code_ >> 1; }
  bool negated() const { return code_ & 1; }
  Lit operator~() const { return from_code(code_ ^ 1); }
  bool operator==(const Lit& o) const { return code_ == o.code_; }
  bool operator!=(const Lit& o) const { return code_ != o.code_; }

  std::int32_t code() const { return code_; }
  static Lit from_code(std::int32_t code) {
    Lit l;
    l.code_ = code;
    return l;
  }
  static Lit undef() { return {}; }

 private:
  std::int32_t code_;
};

inline Lit pos(Var v) { return Lit(v, false); }
inline Lit neg(Var v) { return Lit(v, true); }

enum class Result { kSat, kUnsat, kUnknown };

/// Why the last solve() returned kUnknown.
enum class StopCause : std::uint8_t { kNone, kConflictBudget, kDeadline };

/// The Luby restart sequence (0-indexed): 1,1,2,1,1,2,4,1,1,2,...
/// Exposed for tests and for callers sizing conflict slices.
std::int64_t luby_sequence(std::int64_t i);

/// Heuristic knobs that diversify solver behaviour without affecting
/// soundness. All defaults reproduce the classic deterministic solver; a
/// nonzero seed enables randomized decision tie-breaking.
struct SolverConfig {
  std::uint64_t seed = 0;            ///< PRNG seed (0 keeps decisions pure VSIDS)
  double random_branch_freq = 0.0;   ///< probability of a random decision var
  int restart_unit = 100;            ///< conflicts per Luby restart unit
  bool default_phase = false;        ///< initial saved polarity of variables
};

class Solver {
 public:
  Solver();

  Var new_var();
  int num_vars() const { return static_cast<int>(activity_.size()); }

  /// Install heuristic knobs. Resets saved phases of existing variables to
  /// the configured default; call before solving for reproducible runs.
  void set_config(const SolverConfig& config);

  /// Add a clause over existing variables. Returns false if the formula is
  /// already unsatisfiable at level 0.
  bool add_clause(std::span<const Lit> lits);
  bool add_clause(std::initializer_list<Lit> lits);
  bool add_unit(Lit l) { return add_clause({l}); }
  bool add_binary(Lit a, Lit b) { return add_clause({a, b}); }
  bool add_ternary(Lit a, Lit b, Lit c) { return add_clause({a, b, c}); }

  /// Solve under optional assumptions. kUnknown when the conflict budget or
  /// the deadline (if set) is exhausted; `last_stop()` tells which.
  Result solve(std::span<const Lit> assumptions = {});

  /// Model access after kSat.
  bool value(Var v) const;

  /// Override the saved phase of a variable (warm-start hint).
  void set_phase(Var v, bool phase) { phase_[v] = phase; }

  /// Limit the number of conflicts for the next solve() calls; <0 disables.
  void set_conflict_budget(std::int64_t budget) { conflict_budget_ = budget; }

  /// Abort solve() (returning kUnknown) once `seconds_from_now` of wall
  /// clock have elapsed. Checked every 256 conflicts, so overshoot is
  /// bounded by one conflict batch; a conflict-free solve is never
  /// interrupted (it terminates quickly by construction). Negative
  /// disables. The deadline persists across solve() calls until reset.
  void set_deadline(double seconds_from_now);

  /// Why the most recent solve() stopped without an answer.
  StopCause last_stop() const { return last_stop_; }

  // Statistics (cumulative).
  std::int64_t conflicts() const { return stats_conflicts_; }
  std::int64_t decisions() const { return stats_decisions_; }
  std::int64_t propagations() const { return stats_propagations_; }
  /// Clauses ever learnt from conflicts (monotone; deletion does not undo).
  std::int64_t learned() const { return stats_learned_; }
  /// Problem clauses submitted through add_clause (before simplification).
  std::int64_t clauses_added() const { return stats_clauses_added_; }
  /// Stored, non-deleted clauses right now (problem + learnt).
  std::int64_t live_clauses() const { return live_clauses_; }
  /// High-water mark of live_clauses().
  std::int64_t peak_clauses() const { return peak_clauses_; }
  /// Times the learnt database was halved.
  std::int64_t db_reductions() const { return stats_db_reductions_; }

 private:
  enum LBool : std::uint8_t { kTrue, kFalse, kUndef };

  struct Clause {
    std::vector<Lit> lits;
    double activity = 0.0;
    bool learnt = false;
    bool deleted = false;
  };

  using ClauseRef = std::int32_t;
  static constexpr ClauseRef kNoClause = -1;

  /// Watcher for clauses of size >= 3: `blocker` is some other literal of
  /// the clause; when it is already true the clause is satisfied and the
  /// watch list entry is skipped without touching the clause memory.
  struct Watch {
    ClauseRef cr;
    Lit blocker;
  };

  /// Watcher for binary clauses: the clause is implicit in the list entry
  /// (the other literal + the backing clause for conflict analysis), so
  /// propagation over binaries never dereferences clause storage and the
  /// entry never migrates between lists.
  struct BinWatch {
    Lit other;
    ClauseRef cr;
  };

  LBool lit_value(Lit l) const {
    const LBool v = assigns_[l.var()];
    if (v == kUndef) return kUndef;
    return (v == kTrue) != l.negated() ? kTrue : kFalse;
  }

  void enqueue(Lit l, ClauseRef reason);
  ClauseRef propagate();
  void analyze(ClauseRef confl, std::vector<Lit>& learnt, int& bt_level);
  void backtrack(int level, bool save_phases = true);
  Lit pick_branch();
  void bump_var(Var v);
  void bump_clause(Clause& c);
  void decay_activities();
  void reduce_db();
  void rebuild_watches();
  void attach(ClauseRef cr);
  bool lit_redundant(Lit l, std::uint32_t levels_mask);
  std::uint32_t abstract_level(Var v) const {
    return 1u << (level_[v] & 31);
  }
  std::uint64_t next_random();
  bool deadline_expired() const;
  void note_clause_stored();

  // Heap with positions for VSIDS.
  void heap_insert(Var v);
  Var heap_pop();
  void heap_up(int i);
  void heap_down(int i);
  bool heap_contains(Var v) const { return heap_pos_[v] >= 0; }

  std::vector<Clause> clauses_;
  std::vector<std::vector<Watch>> watches_;        // indexed by lit code
  std::vector<std::vector<BinWatch>> bin_watches_;  // indexed by lit code
  std::vector<LBool> assigns_;
  std::vector<bool> phase_;
  std::vector<int> level_;
  std::vector<ClauseRef> reason_;
  std::vector<Lit> trail_;
  std::vector<int> trail_lim_;
  std::size_t qhead_ = 0;

  std::vector<double> activity_;
  double var_inc_ = 1.0;
  double clause_inc_ = 1.0;
  std::vector<Var> heap_;
  std::vector<int> heap_pos_;

  std::vector<std::uint8_t> seen_;
  std::vector<Var> analyze_clear_;
  std::vector<Lit> analyze_stack_;

  SolverConfig config_;
  std::uint64_t rng_state_ = 0;

  bool has_deadline_ = false;
  std::int64_t deadline_ns_ = 0;  ///< steady_clock epoch nanoseconds

  std::int64_t conflict_budget_ = -1;
  StopCause last_stop_ = StopCause::kNone;
  std::int64_t stats_conflicts_ = 0;
  std::int64_t stats_decisions_ = 0;
  std::int64_t stats_propagations_ = 0;
  std::int64_t stats_learned_ = 0;
  std::int64_t stats_clauses_added_ = 0;
  std::int64_t stats_db_reductions_ = 0;
  std::int64_t live_clauses_ = 0;
  std::int64_t peak_clauses_ = 0;
  std::int64_t learnt_count_ = 0;  ///< live learnt clauses (reduction policy)
  bool ok_ = true;
};

}  // namespace stt::sat
