// Machine-learning-style attack: stochastic key search guided by oracle
// agreement (the attack family the paper cites via El Massad's
// de-camouflaging work and argues Section IV-A.3's measures defeat).
//
// The attacker scores a candidate configuration by how many oracle
// responses it reproduces on a fixed random scan-pattern set, and hill
// climbs with simulated annealing over per-LUT candidate functions. It
// needs no SAT machinery and no sensitization reasoning — just a signature
// of queries — so it is the "cheap adversary" baseline: effective exactly
// when the candidate space per LUT is small and gradients exist, which is
// what complex-function packing and dummy inputs destroy.
#pragma once

#include "attack/common.hpp"
#include "attack/oracle.hpp"
#include "core/hybrid.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct MlAttackOptions : attack::CommonAttackOptions {
  /// Historical defaults; `work_budget` caps annealing steps.
  MlAttackOptions() {
    seed = 3;
    time_limit_s = kNoTimeLimit;
    work_budget = 20'000;
  }

  /// Scan patterns queried once up front; the fitness signature.
  int training_patterns = 256;
  /// Annealing schedule.
  double initial_temperature = 2.0;
  double cooling = 0.9995;
  /// Restrict moves to the meaningful-gate candidate sets (true) or flip
  /// raw truth-table bits (false — needed after packing, where the planted
  /// function is no longer a standard gate).
  bool standard_candidates_only = true;
};

struct MlAttackResult : attack::AttackBase {
  /// `success()` = perfect score on the training signature.
  int steps = 0;
  double final_accuracy = 0;  ///< fraction of output bits matched
};

MlAttackResult run_ml_attack(const Netlist& hybrid, ScanOracle& oracle,
                             const MlAttackOptions& opt = {});

}  // namespace stt
