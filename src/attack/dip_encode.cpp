#include "attack/dip_encode.hpp"

#include <stdexcept>

namespace stt {

namespace {

using sat::Lit;
using sat::Var;

void encode_xor2_lits(sat::Solver& s, Var t, Lit a, Lit b) {
  s.add_ternary(sat::neg(t), a, b);
  s.add_ternary(sat::neg(t), ~a, ~b);
  s.add_ternary(sat::pos(t), ~a, b);
  s.add_ternary(sat::pos(t), a, ~b);
}

}  // namespace

DipEncoder::DipEncoder(sat::Solver& solver, const Netlist& nl,
                       std::vector<const KeyVars*> key_copies)
    : solver_(&solver), nl_(&nl) {
  if (key_copies.empty()) {
    throw std::invalid_argument("DipEncoder: no key copies");
  }
  const std::size_t n = nl.size();
  key_by_cell_.resize(key_copies.size());
  for (std::size_t copy = 0; copy < key_copies.size(); ++copy) {
    key_by_cell_[copy].resize(n);
    for (CellId id = 0; id < static_cast<CellId>(n); ++id) {
      const Cell& c = nl.cell(id);
      if (c.kind != CellKind::kLut) continue;
      const std::string cname(c.name);
      const auto it = key_copies[copy]->find(cname);
      if (it == key_copies[copy]->end()) {
        throw std::invalid_argument("DipEncoder: key copy missing LUT '" +
                                    cname + "'");
      }
      if (it->second.size() != num_rows(c.fanin_count())) {
        throw std::invalid_argument("DipEncoder: key row count mismatch '" +
                                    cname + "'");
      }
      key_by_cell_[copy][id] = it->second;
    }
  }
  vals_.resize(n);
  copy_var_.assign(key_copies.size(), std::vector<Var>(n, -1));
  var_stamp_.assign(n, 0);
  needed_stamp_.assign(n, 0);
}

bool DipEncoder::normalize_gate(const Cell& c, std::vector<EncVal>& lits,
                                bool& invert, EncVal& folded) const {
  lits.clear();
  const CellKind kind = c.kind;
  const bool is_xor = (kind == CellKind::kXor || kind == CellKind::kXnor);
  // AND-normal form: OR(x) = ~AND(~x), so OR-family fan-ins enter negated.
  const bool negate_in = (kind == CellKind::kOr || kind == CellKind::kNor);
  invert = (kind == CellKind::kNand || kind == CellKind::kOr ||
            kind == CellKind::kXnor);

  for (const CellId f : c.fanins) {
    EncVal v = vals_[f];
    if (negate_in) v.neg = !v.neg;
    if (v.kind == EncVal::kConst) {
      if (is_xor) {
        invert ^= v.neg;
        continue;
      }
      if (!v.neg) {  // AND absorbs on constant 0
        folded = make_const(invert);
        return true;
      }
      continue;  // neutral constant 1
    }
    bool merged = false;
    for (std::size_t i = 0; i < lits.size(); ++i) {
      if (!lits[i].same_node(v)) continue;
      if (is_xor) {
        // x ^ x = 0, x ^ ~x = 1: the pair cancels either way.
        invert ^= (lits[i].neg != v.neg);
        lits.erase(lits.begin() + static_cast<std::ptrdiff_t>(i));
      } else if (lits[i].neg != v.neg) {
        folded = make_const(invert);  // x & ~x = 0
        return true;
      }
      merged = true;
      break;
    }
    if (!merged) lits.push_back(v);
  }

  if (lits.empty()) {
    // Empty AND is 1, empty XOR is 0 — both then xor'ed with `invert`.
    folded = make_const(is_xor ? invert : !invert);
    return true;
  }
  if (lits.size() == 1) {
    folded = lits[0];
    folded.neg ^= invert;
    return true;
  }
  return false;
}

void DipEncoder::lut_unknowns(const Cell& c, std::vector<EncVal>& unknowns,
                              std::vector<int>& positions,
                              std::uint32_t& base) const {
  unknowns.clear();
  positions.clear();
  base = 0;
  for (std::size_t i = 0; i < c.fanins.size(); ++i) {
    const EncVal v = vals_[c.fanins[i]];
    if (v.kind == EncVal::kConst) {
      if (v.neg) base |= (1u << i);
    } else {
      unknowns.push_back(v);
      positions.push_back(static_cast<int>(i));
    }
  }
}

DipEncoder::EncVal DipEncoder::fold_cell(CellId id) {
  const Cell& c = nl_->cell(id);
  switch (c.kind) {
    case CellKind::kConst0:
      return make_const(false);
    case CellKind::kConst1:
      return make_const(true);
    case CellKind::kBuf:
      return vals_[c.fanins[0]];
    case CellKind::kNot: {
      EncVal v = vals_[c.fanins[0]];
      v.neg = !v.neg;
      return v;
    }
    case CellKind::kAnd:
    case CellKind::kNand:
    case CellKind::kOr:
    case CellKind::kNor:
    case CellKind::kXor:
    case CellKind::kXnor: {
      bool invert = false;
      EncVal folded;
      if (normalize_gate(c, lit_scratch_, invert, folded)) return folded;
      return {EncVal::kCell, false, id, 0};
    }
    case CellKind::kLut: {
      std::uint32_t base = 0;
      lut_unknowns(c, lit_scratch_, pos_scratch_, base);
      const auto it = known_.find(id);
      const auto row_known = [&](std::uint32_t row) {
        return it != known_.end() && (it->second.known_mask >> row) & 1ull;
      };
      const auto row_value = [&](std::uint32_t row) {
        return ((it->second.value_mask >> row) & 1ull) != 0;
      };
      if (lit_scratch_.empty()) {
        if (row_known(base)) return make_const(row_value(base));
        return {EncVal::kKey, false, id, base};
      }
      // The selected rows range over the unknown-input combinations; when
      // every candidate row is already resolved the LUT is a plain function
      // of its unknown inputs — constant if they agree, an alias if a
      // single unknown input decides.
      const std::uint32_t combos = 1u << lit_scratch_.size();
      bool all_known = true;
      bool all_equal = true;
      bool first_val = false;
      for (std::uint32_t m = 0; m < combos && all_known; ++m) {
        std::uint32_t row = base;
        for (std::size_t j = 0; j < pos_scratch_.size(); ++j) {
          if ((m >> j) & 1u) row |= (1u << pos_scratch_[j]);
        }
        if (!row_known(row)) {
          all_known = false;
          break;
        }
        const bool v = row_value(row);
        if (m == 0) {
          first_val = v;
        } else if (v != first_val) {
          all_equal = false;
        }
      }
      if (all_known) {
        if (all_equal) return make_const(first_val);
        if (lit_scratch_.size() == 1) {
          // Two resolved rows that differ: out follows (or inverts) the
          // single unknown input.
          EncVal v = lit_scratch_[0];
          v.neg ^= first_val;  // first_val is the row with input = 0
          return v;
        }
      }
      return {EncVal::kCell, false, id, 0};
    }
    default:
      throw std::logic_error("DipEncoder: unexpected cell kind in fold");
  }
}

void DipEncoder::fold_pattern(const std::vector<bool>& inputs) {
  std::size_t slot = 0;
  for (const CellId id : nl_->inputs()) vals_[id] = make_const(inputs[slot++]);
  for (const CellId id : nl_->dffs()) vals_[id] = make_const(inputs[slot++]);
  for (const CellId id : nl_->topo_order()) {
    const Cell& c = nl_->cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    vals_[id] = fold_cell(id);
  }
}

void DipEncoder::resolve_row(CellId lut, std::uint32_t row, bool value,
                             DipEncodeStats& stats) {
  LutKnowledge& k = known_[lut];
  if (k.rows == 0) k.rows = num_rows(nl_->cell(lut).fanin_count());
  const std::uint64_t bit = 1ull << row;
  if (k.known_mask & bit) {
    if ((((k.value_mask >> row) & 1ull) != 0) != value) {
      throw std::logic_error(
          "DipEncoder: oracle response contradicts a resolved key row");
    }
    return;
  }
  k.known_mask |= bit;
  if (value) k.value_mask |= bit;
  ++resolved_bits_;
  ++stats.key_rows_resolved;
  for (std::size_t copy = 0; copy < key_by_cell_.size(); ++copy) {
    const Var kv = key_by_cell_[copy][lut][row];
    solver_->add_unit(value ? sat::pos(kv) : sat::neg(kv));
    ++stats.clauses_added;
  }
}

void DipEncoder::mark_needed(CellId id) {
  dfs_stack_.clear();
  dfs_stack_.push_back(id);
  while (!dfs_stack_.empty()) {
    const CellId cur = dfs_stack_.back();
    dfs_stack_.pop_back();
    if (needed_stamp_[cur] == epoch_) continue;
    needed_stamp_[cur] = epoch_;
    const Cell& c = nl_->cell(cur);
    // Follow only the literals that survive normalization — a cancelled
    // fan-in contributes nothing to the emitted clauses.
    if (c.kind == CellKind::kLut) {
      std::uint32_t base = 0;
      lut_unknowns(c, lit_scratch_, pos_scratch_, base);
      for (const EncVal& v : lit_scratch_) {
        if (v.kind == EncVal::kCell) dfs_stack_.push_back(v.node);
      }
    } else {
      bool invert = false;
      EncVal folded;
      normalize_gate(c, lit_scratch_, invert, folded);
      for (const EncVal& v : lit_scratch_) {
        if (v.kind == EncVal::kCell) dfs_stack_.push_back(v.node);
      }
    }
  }
}

sat::Var DipEncoder::copy_out_var(std::size_t copy, CellId id,
                                  DipEncodeStats& stats) {
  if (var_stamp_[id] != epoch_) {
    var_stamp_[id] = epoch_;
    for (std::size_t k = 0; k < copy_var_.size(); ++k) {
      copy_var_[k][id] = solver_->new_var();
      ++stats.vars_added;
    }
  }
  return copy_var_[copy][id];
}

sat::Lit DipEncoder::lit_of(std::size_t copy, const EncVal& v) const {
  if (v.kind == EncVal::kKey) {
    return Lit(key_by_cell_[copy][v.node][v.row], v.neg);
  }
  if (v.kind == EncVal::kCell) {
    return Lit(copy_var_[copy][v.node], v.neg);
  }
  throw std::logic_error("DipEncoder: constant has no literal");
}

void DipEncoder::emit_cell(CellId id, DipEncodeStats& stats) {
  const Cell& c = nl_->cell(id);
  ++stats.cells_encoded;

  if (c.kind == CellKind::kLut) {
    std::uint32_t base = 0;
    lut_unknowns(c, lit_scratch_, pos_scratch_, base);
    const std::vector<EncVal> unknowns = lit_scratch_;
    const std::vector<int> positions = pos_scratch_;
    const auto it = known_.find(id);
    const std::uint32_t combos = 1u << unknowns.size();
    for (std::size_t copy = 0; copy < copy_var_.size(); ++copy) {
      const Var out = copy_out_var(copy, id, stats);
      std::vector<Lit> premise(unknowns.size());
      for (std::uint32_t m = 0; m < combos; ++m) {
        std::uint32_t row = base;
        for (std::size_t j = 0; j < unknowns.size(); ++j) {
          const Lit l = lit_of(copy, unknowns[j]);
          if ((m >> j) & 1u) {
            row |= (1u << positions[j]);
            premise[j] = ~l;
          } else {
            premise[j] = l;
          }
        }
        const bool known =
            it != known_.end() && ((it->second.known_mask >> row) & 1ull);
        std::vector<Lit> clause = premise;
        if (known) {
          const bool v = ((it->second.value_mask >> row) & 1ull) != 0;
          clause.push_back(v ? sat::pos(out) : sat::neg(out));
          solver_->add_clause(clause);
          ++stats.clauses_added;
        } else {
          const Var kv = key_by_cell_[copy][id][row];
          clause.push_back(sat::neg(kv));
          clause.push_back(sat::pos(out));
          solver_->add_clause(clause);
          clause = premise;
          clause.push_back(sat::pos(kv));
          clause.push_back(sat::neg(out));
          solver_->add_clause(clause);
          stats.clauses_added += 2;
        }
      }
    }
    return;
  }

  bool invert = false;
  EncVal folded;
  if (normalize_gate(c, lit_scratch_, invert, folded)) {
    throw std::logic_error("DipEncoder: folded cell reached emission");
  }
  const std::vector<EncVal> lits = lit_scratch_;
  const bool is_xor = (c.kind == CellKind::kXor || c.kind == CellKind::kXnor);
  for (std::size_t copy = 0; copy < copy_var_.size(); ++copy) {
    const Var out = copy_out_var(copy, id, stats);
    if (is_xor) {
      // XNOR folds into the chain by complementing the first literal.
      Lit acc = lit_of(copy, lits[0]);
      if (invert) acc = ~acc;
      for (std::size_t i = 1; i < lits.size(); ++i) {
        Var t = out;
        if (i + 1 < lits.size()) {
          t = solver_->new_var();
          ++stats.vars_added;
        }
        encode_xor2_lits(*solver_, t, acc, lit_of(copy, lits[i]));
        stats.clauses_added += 4;
        acc = sat::pos(t);
      }
    } else {
      const Lit o = invert ? sat::neg(out) : sat::pos(out);
      std::vector<Lit> big;
      big.reserve(lits.size() + 1);
      for (const EncVal& v : lits) {
        const Lit l = lit_of(copy, v);
        solver_->add_binary(~o, l);
        ++stats.clauses_added;
        big.push_back(~l);
      }
      big.push_back(o);
      solver_->add_clause(big);
      ++stats.clauses_added;
    }
  }
}

DipEncodeStats DipEncoder::add_io_pair(const std::vector<bool>& inputs,
                                       const std::vector<bool>& response,
                                       bool units_only) {
  const std::size_t n_in = nl_->inputs().size() + nl_->dffs().size();
  const std::size_t n_out = nl_->outputs().size() + nl_->dffs().size();
  if (inputs.size() != n_in || response.size() != n_out) {
    throw std::invalid_argument("DipEncoder: I/O arity mismatch");
  }
  DipEncodeStats stats;
  ++epoch_;
  fold_pattern(inputs);

  // Gather the folded output values: POs, then flip-flop D pins.
  std::vector<std::pair<EncVal, bool>> pinned;  // complex outputs only
  std::size_t slot = 0;
  const auto consume = [&](CellId driver) {
    const EncVal v = vals_[driver];
    const bool bit = response[slot++];
    switch (v.kind) {
      case EncVal::kConst:
        if (v.neg != bit) {
          throw std::logic_error(
              "DipEncoder: oracle response contradicts a folded constant");
        }
        break;
      case EncVal::kKey:
        resolve_row(v.node, v.row, bit != v.neg, stats);
        break;
      case EncVal::kCell:
        ++stats.complex_outputs;
        if (!units_only) pinned.emplace_back(v, bit);
        break;
    }
  };
  for (const CellId id : nl_->outputs()) consume(id);
  for (const CellId id : nl_->dffs()) consume(nl_->cell(id).fanins.at(0));
  if (units_only || pinned.empty()) return stats;

  for (const auto& [v, bit] : pinned) mark_needed(v.node);
  for (const CellId id : nl_->topo_order()) {
    if (needed_stamp_[id] != epoch_) continue;
    const EncVal v = vals_[id];
    if (v.kind == EncVal::kCell && v.node == id) emit_cell(id, stats);
  }
  for (const auto& [v, bit] : pinned) {
    for (std::size_t copy = 0; copy < copy_var_.size(); ++copy) {
      const Lit l = lit_of(copy, v);
      solver_->add_unit(bit ? l : ~l);
      ++stats.clauses_added;
    }
  }
  return stats;
}

}  // namespace stt
