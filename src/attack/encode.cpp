#include "attack/encode.hpp"

#include <stdexcept>

namespace stt {

namespace {

using sat::Lit;
using sat::Solver;
using sat::Var;

void encode_and(Solver& s, Var out, const std::vector<Var>& in, bool invert) {
  // out(^invert) <-> AND(in)
  const Lit o = invert ? sat::neg(out) : sat::pos(out);
  std::vector<Lit> big;
  for (const Var x : in) {
    s.add_binary(~o, sat::pos(x));
    big.push_back(sat::neg(x));
  }
  big.push_back(o);
  s.add_clause(big);
}

void encode_or(Solver& s, Var out, const std::vector<Var>& in, bool invert) {
  const Lit o = invert ? sat::neg(out) : sat::pos(out);
  std::vector<Lit> big;
  for (const Var x : in) {
    s.add_binary(o, sat::neg(x));
    big.push_back(sat::pos(x));
  }
  big.push_back(~o);
  s.add_clause(big);
}

void encode_xor2(Solver& s, Var t, Var a, Var b) {
  s.add_ternary(sat::neg(t), sat::pos(a), sat::pos(b));
  s.add_ternary(sat::neg(t), sat::neg(a), sat::neg(b));
  s.add_ternary(sat::pos(t), sat::neg(a), sat::pos(b));
  s.add_ternary(sat::pos(t), sat::pos(a), sat::neg(b));
}

void encode_xor(Solver& s, Var out, const std::vector<Var>& in, bool invert) {
  // Chain: t_1 = in0 ^ in1, t_i = t_{i-1} ^ in_{i+1}; final equals out
  // (or its inverse for XNOR, via an auxiliary inverter variable).
  Var acc = in[0];
  for (std::size_t i = 1; i < in.size(); ++i) {
    const bool last = (i + 1 == in.size());
    Var t;
    if (last && !invert) {
      t = out;
    } else {
      t = s.new_var();
    }
    encode_xor2(s, t, acc, in[i]);
    acc = t;
  }
  if (in.size() == 1) {
    // Degenerate single-input XOR: buffer semantics.
    s.add_binary(sat::neg(out), invert ? sat::neg(acc) : sat::pos(acc));
    s.add_binary(sat::pos(out), invert ? sat::pos(acc) : sat::neg(acc));
    return;
  }
  if (invert) {
    s.add_binary(sat::neg(out), sat::neg(acc));
    s.add_binary(sat::pos(out), sat::pos(acc));
  }
}

// One clause per truth-table row: (inputs == row) -> out == mask[row].
void encode_lut_const(Solver& s, Var out, const std::vector<Var>& in,
                      std::uint64_t mask) {
  const int k = static_cast<int>(in.size());
  for (std::uint32_t row = 0; row < num_rows(k); ++row) {
    std::vector<Lit> clause;
    clause.reserve(in.size() + 1);
    for (int i = 0; i < k; ++i) {
      // Negation of "input i takes its row value".
      clause.push_back((row & (1u << i)) ? sat::neg(in[i]) : sat::pos(in[i]));
    }
    clause.push_back(((mask >> row) & 1ull) ? sat::pos(out) : sat::neg(out));
    s.add_clause(clause);
  }
}

// Row multiplexer with key variables: (inputs == row) -> out == key[row].
void encode_lut_symbolic(Solver& s, Var out, const std::vector<Var>& in,
                         const std::vector<Var>& key) {
  const int k = static_cast<int>(in.size());
  for (std::uint32_t row = 0; row < num_rows(k); ++row) {
    std::vector<Lit> base;
    base.reserve(in.size() + 2);
    for (int i = 0; i < k; ++i) {
      base.push_back((row & (1u << i)) ? sat::neg(in[i]) : sat::pos(in[i]));
    }
    auto c1 = base;
    c1.push_back(sat::neg(key[row]));
    c1.push_back(sat::pos(out));
    s.add_clause(c1);
    auto c2 = base;
    c2.push_back(sat::pos(key[row]));
    c2.push_back(sat::neg(out));
    s.add_clause(c2);
  }
}

}  // namespace

EncodedCircuit encode_comb(sat::Solver& solver, const Netlist& nl,
                           const EncodeOptions& opt) {
  EncodedCircuit enc;
  enc.cell_var.assign(nl.size(), -1);

  const std::size_t n_in = nl.inputs().size() + nl.dffs().size();
  if (opt.share_inputs) {
    if (opt.share_inputs->size() != n_in) {
      throw std::invalid_argument("encode_comb: shared input count mismatch");
    }
    enc.input_vars = *opt.share_inputs;
  } else {
    enc.input_vars.reserve(n_in);
    for (std::size_t i = 0; i < n_in; ++i) {
      enc.input_vars.push_back(solver.new_var());
    }
  }
  {
    std::size_t slot = 0;
    for (const CellId id : nl.inputs()) enc.cell_var[id] = enc.input_vars[slot++];
    for (const CellId id : nl.dffs()) enc.cell_var[id] = enc.input_vars[slot++];
  }

  // Key taint: a cell depends on the key iff it is a LUT or any fanin does.
  // With share_key_free_cells, untainted cells reuse the prior copy's
  // variables instead of being re-encoded.
  std::vector<char> tainted;
  if (opt.share_key_free_cells) {
    if (!opt.share_inputs) {
      throw std::invalid_argument(
          "encode_comb: share_key_free_cells requires share_inputs");
    }
    if (opt.share_key_free_cells->size() != nl.size()) {
      throw std::invalid_argument(
          "encode_comb: shared cell count mismatch");
    }
    tainted.assign(nl.size(), 0);
    for (const CellId id : nl.topo_order()) {
      const Cell& c = nl.cell(id);
      if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
      char t = (c.kind == CellKind::kLut) ? 1 : 0;
      for (const CellId f : c.fanins) t |= tainted[f];
      tainted[id] = t;
    }
  }

  for (const CellId id : nl.topo_order()) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    if (opt.share_key_free_cells && !tainted[id]) {
      enc.cell_var[id] = (*opt.share_key_free_cells)[id];
      continue;
    }
    const Var out = solver.new_var();
    enc.cell_var[id] = out;
    std::vector<Var> in;
    in.reserve(c.fanins.size());
    for (const CellId f : c.fanins) in.push_back(enc.cell_var[f]);

    switch (c.kind) {
      case CellKind::kConst0:
        solver.add_unit(sat::neg(out));
        break;
      case CellKind::kConst1:
        solver.add_unit(sat::pos(out));
        break;
      case CellKind::kBuf:
        solver.add_binary(sat::neg(out), sat::pos(in[0]));
        solver.add_binary(sat::pos(out), sat::neg(in[0]));
        break;
      case CellKind::kNot:
        solver.add_binary(sat::neg(out), sat::neg(in[0]));
        solver.add_binary(sat::pos(out), sat::pos(in[0]));
        break;
      case CellKind::kAnd:
        encode_and(solver, out, in, false);
        break;
      case CellKind::kNand:
        encode_and(solver, out, in, true);
        break;
      case CellKind::kOr:
        encode_or(solver, out, in, false);
        break;
      case CellKind::kNor:
        encode_or(solver, out, in, true);
        break;
      case CellKind::kXor:
        encode_xor(solver, out, in, false);
        break;
      case CellKind::kXnor:
        encode_xor(solver, out, in, true);
        break;
      case CellKind::kLut: {
        if (!opt.symbolic_keys) {
          encode_lut_const(solver, out, in, c.lut_mask);
          break;
        }
        std::vector<Var> key;
        const std::string cname(c.name);
        if (opt.share_keys) {
          const auto it = opt.share_keys->find(cname);
          if (it == opt.share_keys->end()) {
            throw std::invalid_argument("encode_comb: shared key missing '" +
                                        cname + "'");
          }
          key = it->second;
        } else {
          for (std::uint32_t r = 0; r < num_rows(c.fanin_count()); ++r) {
            key.push_back(solver.new_var());
          }
        }
        enc.key_vars[cname] = key;
        encode_lut_symbolic(solver, out, in, key);
        break;
      }
      default:
        throw std::logic_error("encode_comb: unexpected cell kind");
    }
  }

  for (const CellId id : nl.outputs()) {
    enc.output_vars.push_back(enc.cell_var[id]);
  }
  for (const CellId id : nl.dffs()) {
    enc.output_vars.push_back(enc.cell_var[nl.cell(id).fanins.at(0)]);
  }
  return enc;
}

sat::Var add_miter(sat::Solver& solver, const EncodedCircuit& a,
                   const EncodedCircuit& b) {
  if (a.output_vars.size() != b.output_vars.size()) {
    throw std::invalid_argument("add_miter: output arity mismatch");
  }
  std::vector<sat::Lit> any_diff;
  const sat::Var m = solver.new_var();
  any_diff.push_back(sat::neg(m));
  for (std::size_t i = 0; i < a.output_vars.size(); ++i) {
    const sat::Var x = a.output_vars[i];
    const sat::Var y = b.output_vars[i];
    // Cone-shared output (key-free logic encoded once): can never differ.
    if (x == y) continue;
    const sat::Var d = solver.new_var();
    // d <-> (a_i XOR b_i)
    solver.add_ternary(sat::neg(d), sat::pos(x), sat::pos(y));
    solver.add_ternary(sat::neg(d), sat::neg(x), sat::neg(y));
    solver.add_ternary(sat::pos(d), sat::neg(x), sat::pos(y));
    solver.add_ternary(sat::pos(d), sat::pos(x), sat::neg(y));
    any_diff.push_back(sat::pos(d));
    // d -> m, so a model with m=false has equal outputs.
    solver.add_binary(sat::neg(d), sat::pos(m));
  }
  solver.add_clause(any_diff);  // m -> some output differs
  return m;
}

bool comb_equivalent(const Netlist& a, const Netlist& b,
                     std::int64_t conflict_budget, bool* proven) {
  if (a.inputs().size() != b.inputs().size() ||
      a.dffs().size() != b.dffs().size() ||
      a.outputs().size() != b.outputs().size()) {
    if (proven) *proven = true;
    return false;
  }
  sat::Solver solver;
  const EncodedCircuit ea = encode_comb(solver, a);
  EncodeOptions opt_b;
  opt_b.share_inputs = &ea.input_vars;
  const EncodedCircuit eb = encode_comb(solver, b, opt_b);
  const sat::Var m = add_miter(solver, ea, eb);
  solver.set_conflict_budget(conflict_budget);
  const sat::Lit assume[] = {sat::pos(m)};
  const sat::Result r = solver.solve(assume);
  if (proven) *proven = (r != sat::Result::kUnknown);
  return r == sat::Result::kUnsat;
}

}  // namespace stt
