// Correlation power analysis (CPA/DPA) against one secret cell.
//
// Threat model: the attacker holds the netlist structure, can drive inputs
// and record per-cycle power traces, and wants to learn one cell's hidden
// function (a camouflaged gate or an STT LUT's configuration). For each
// candidate function the attacker predicts the cell's output-toggle
// sequence (everything else in the circuit is known) and ranks candidates
// by Pearson correlation between prediction and measured trace.
//
// Expected outcome (the paper's Section II claim, executable):
//  * against a CMOS/camouflaged cell — whose energy is drawn per *output
//    toggle* — the correct function correlates visibly above the rest;
//  * against an STT LUT — whose read energy is drawn per *input event*,
//    identical for all configurations — every candidate correlates
//    equally and the attack degenerates to guessing.
#pragma once

#include <cstdint>
#include <vector>

#include "attack/common.hpp"
#include "netlist/netlist.hpp"
#include "power/trace.hpp"

namespace stt {

struct DpaOptions : attack::CommonAttackOptions {
  DpaOptions() {
    // The ranking itself is deterministic given the traces; the seed only
    // drives the registry's trace simulation (matching TraceOptions).
    seed = 1;
    time_limit_s = kNoTimeLimit;
  }

  /// Candidate masks for the target cell; empty = the six standard gates
  /// at the target's fan-in.
  std::vector<std::uint64_t> candidates;
};

struct DpaResult : attack::AttackBase {
  /// `success()` mirrors `identified_true_mask`; `key` maps the target
  /// cell's name to `best_mask`; `queries` counts measured trace cycles.
  std::uint64_t best_mask = 0;
  double best_correlation = 0;
  /// Best correlation among candidates outside {best, ~best}. Complementary
  /// functions toggle identically, so output-toggle CPA can only resolve a
  /// function up to complement — the classical CPA equivalence class.
  double runner_up_correlation = 0;
  /// Discrimination margin: best minus best-non-complement. Near zero =
  /// the attack learned nothing.
  double margin() const { return best_correlation - runner_up_correlation; }
  bool identified_true_mask = false;        ///< exact hit
  bool identified_up_to_complement = false; ///< the CPA-resolvable class
  std::vector<std::pair<std::uint64_t, double>> ranking;
};

/// `target` names the secret cell inside `nl` (the netlist the traces were
/// recorded from); the attacker re-simulates `nl` with candidate masks to
/// build predictions. `truth_mask` is used only to fill
/// `identified_true_mask` for reporting.
DpaResult run_dpa_attack(const Netlist& nl, CellId target,
                         std::uint64_t truth_mask,
                         const PowerTraceResult& measurement,
                         const DpaOptions& opt = {});

}  // namespace stt
