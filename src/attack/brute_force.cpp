#include "attack/brute_force.hpp"

#include <optional>
#include <span>
#include <stdexcept>

#include "core/similarity.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace stt {

BruteForceResult run_brute_force(const Netlist& hybrid, ScanOracle& oracle,
                                 const BruteForceOptions& opt) {
  BruteForceResult result;
  const Timer timer;
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "brute_force");
  result.span_id = root ? root->id() : 0;
  Rng rng(opt.seed);

  Netlist work = hybrid;
  std::vector<CellId> lut_ids;
  std::vector<std::vector<std::uint64_t>> candidates;
  result.search_space = BigNum::from_double(1.0);
  for (CellId id = 0; id < work.size(); ++id) {
    const Cell& c = work.cell(id);
    if (c.kind != CellKind::kLut) continue;
    lut_ids.push_back(id);
    std::vector<std::uint64_t> cand;
    const int k = c.fanin_count();
    if (k == 2 && opt.candidates_2in) {
      cand = *opt.candidates_2in;
    } else if (!opt.standard_candidates_only) {
      if (k > 4) {
        // 2^32+ candidate functions per LUT: enumeration is meaningless
        // (and 1 << 2^k would overflow). The caller wanted the impossible.
        throw std::invalid_argument(
            "run_brute_force: full function space limited to fan-in <= 4");
      }
      const std::uint64_t n = 1ull << num_rows(k);
      for (std::uint64_t m = 0; m < n; ++m) cand.push_back(m);
    } else if (k == 1) {
      cand = {0b10ull /* BUF */, 0b01ull /* NOT */};
    } else {
      cand = standard_candidate_masks(k);
    }
    result.search_space *=
        BigNum::from_double(static_cast<double>(cand.size()));
    candidates.push_back(std::move(cand));
  }
  if (lut_ids.empty()) {
    result.outcome = attack::Outcome::kSolved;
    result.elapsed_s = timer.seconds();
    return result;
  }

  // Screening set: random scan patterns and the chip's responses, packed
  // 64 per word for parallel candidate evaluation.
  const std::size_t n_pi = work.inputs().size();
  const std::size_t n_ff = work.dffs().size();
  const int n_words = (opt.screening_patterns + 63) / 64;
  std::vector<std::vector<std::uint64_t>> pi_words(
      static_cast<std::size_t>(n_words),
      std::vector<std::uint64_t>(n_pi, 0));
  std::vector<std::vector<std::uint64_t>> ff_words(
      static_cast<std::size_t>(n_words),
      std::vector<std::uint64_t>(n_ff, 0));
  const std::size_t n_out = oracle.num_outputs();
  std::vector<std::vector<std::uint64_t>> expected(
      static_cast<std::size_t>(n_words),
      std::vector<std::uint64_t>(n_out, 0));

  // One word-batched oracle call per 64 patterns (bit draw order matches the
  // seed's pattern-at-a-time loop, so results are reproducible across PRs).
  const std::uint64_t start_queries = oracle.queries();
  std::vector<std::uint64_t> scan_in(n_pi + n_ff);
  for (int w = 0; w < n_words; ++w) {
    for (auto& word : scan_in) word = 0;
    for (int b = 0; b < 64; ++b) {
      for (std::size_t i = 0; i < scan_in.size(); ++i) {
        if (rng.chance(0.5)) scan_in[i] |= (1ull << b);
      }
    }
    for (std::size_t i = 0; i < n_pi; ++i) pi_words[w][i] = scan_in[i];
    for (std::size_t j = 0; j < n_ff; ++j) {
      ff_words[w][j] = scan_in[n_pi + j];
    }
    oracle.query_word(scan_in, expected[w]);
  }

  // Candidate screening runs on the compiled engine: lower once, patch the
  // candidate masks in place, evaluate into a reused scratch wave. Words
  // are screened one SIMD lane per pass (chunked eval_batch with the
  // blocked layout), so a wrong candidate still fails fast — at lane
  // granularity — while every evaluated lane is full-width. The last
  // chunk keeps its true width (the engine finishes misaligned tails with
  // the scalar kernel), so the verdict and the sim.words accounting are
  // identical to the seed's word-at-a-time loop under every ISA.
  CompiledSim sim(work);
  const std::size_t chunk =
      std::max<std::size_t>(std::size_t{1}, CompiledSim::lane_words());
  const std::size_t n_chunks =
      n_words > 0 ? (static_cast<std::size_t>(n_words) + chunk - 1) / chunk
                  : 0;
  const auto chunk_width = [&](std::size_t c) {
    return std::min(chunk, static_cast<std::size_t>(n_words) - c * chunk);
  };
  std::vector<std::vector<std::uint64_t>> pi_blk(n_chunks);
  std::vector<std::vector<std::uint64_t>> ff_blk(n_chunks);
  for (std::size_t c = 0; c < n_chunks; ++c) {
    const std::size_t cw = chunk_width(c);
    pi_blk[c].resize(n_pi * cw);
    ff_blk[c].resize(n_ff * cw);
    for (std::size_t w = 0; w < cw; ++w) {
      const std::size_t src = c * chunk + w;
      for (std::size_t i = 0; i < n_pi; ++i) {
        pi_blk[c][i * cw + w] = pi_words[src][i];
      }
      for (std::size_t j = 0; j < n_ff; ++j) {
        ff_blk[c][j * cw + w] = ff_words[src][j];
      }
    }
  }
  std::vector<std::uint64_t> wave(sim.wave_size() * chunk);
  std::vector<std::size_t> odometer(lut_ids.size(), 0);
  auto install = [&] {
    for (std::size_t i = 0; i < lut_ids.size(); ++i) {
      work.cell(lut_ids[i]).lut_mask = candidates[i][odometer[i]];
      sim.set_lut_mask(lut_ids[i], candidates[i][odometer[i]]);
    }
  };
  const auto po_cells = sim.output_cells();
  const auto ns_cells = sim.next_state_cells();
  auto matches = [&] {
    for (std::size_t c = 0; c < n_chunks; ++c) {
      const std::size_t cw = chunk_width(c);
      sim.eval_batch(cw, pi_blk[c], ff_blk[c],
                     std::span(wave.data(), sim.wave_size() * cw));
      const std::size_t base = c * chunk;
      for (std::size_t w = 0; w < cw; ++w) {
        const auto& exp = expected[base + w];
        for (std::size_t o = 0; o < po_cells.size(); ++o) {
          if (wave[po_cells[o] * cw + w] != exp[o]) return false;
        }
        for (std::size_t j = 0; j < ns_cells.size(); ++j) {
          if (wave[ns_cells[j] * cw + w] != exp[po_cells.size() + j]) {
            return false;
          }
        }
      }
    }
    return true;
  };

  while (true) {
    if (result.combinations_tried >=
        static_cast<std::uint64_t>(opt.work_budget)) {
      result.outcome = attack::Outcome::kBudgetExhausted;
      break;
    }
    // Wall-clock check every 1024 combinations: cheap relative to an
    // evaluation, tight enough that overshoot is bounded.
    if ((result.combinations_tried & 1023u) == 0 &&
        timer.seconds() >= opt.time_limit_s) {
      result.outcome = attack::Outcome::kTimedOut;
      break;
    }
    install();
    ++result.combinations_tried;
    if (matches()) {
      result.outcome = attack::Outcome::kSolved;
      for (const CellId id : lut_ids) {
        result.key[std::string(work.cell(id).name)] = work.cell(id).lut_mask;
      }
      break;
    }
    // Advance the odometer.
    std::size_t pos = 0;
    while (pos < odometer.size()) {
      if (++odometer[pos] < candidates[pos].size()) break;
      odometer[pos] = 0;
      ++pos;
    }
    if (pos == odometer.size()) {
      result.outcome = attack::Outcome::kAbandoned;  // space exhausted
      break;
    }
  }

  result.queries = oracle.queries() - start_queries;
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace stt
