// Unified attack API: one entry point for all eight attacks.
//
//   attack::UnifiedResult r = attack::registry().run(
//       "sat", foundry_view(hybrid), configured, common);
//
// Each registered attack is an adapter over its direct `run_*` entry point:
// the adapter applies `CommonAttackOptions` on top of the attack's own
// defaults (sentinel fields keep the default — see common.hpp), builds the
// oracle the attack needs from the configured chip (`ScanOracle`,
// `SequenceOracle`, or a simulated power trace for DPA), runs, and folds
// the attack-specific result into a `UnifiedResult`. With a
// default-constructed request the adapter is a pure pass-through, so the
// registry result is bit-identical to calling `run_*` directly (pinned by
// tests/attack_api_test.cpp).
//
// Registered names: "sat", "seq", "sens", "gsens", "bf", "ml", "dpa",
// "static". The last one is oracle-free: it runs the key-dependency
// analysis (verify/keydep) on the attacker's netlist and claims every
// unit-propagated or removable key cell with zero oracle queries.
// `sttlock attack --kind=<name>` and campaign attack stages both route
// through here, so adding an attack means adding one adapter — no CLI or
// campaign switch to extend.
#pragma once

#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "attack/common.hpp"
#include "attack/sat_attack.hpp"
#include "netlist/netlist.hpp"

namespace stt {
class CompiledSim;
}

namespace stt::attack {

/// Common projection of every attack's result. `attack` echoes the registry
/// name; `detail` is a one-line human summary of the attack-specific fields
/// (rows resolved, final accuracy, correlation margin, ...); `iterations`
/// is the attack's dominant progress count (DIPs, annealing steps, key
/// combinations, resolved rows); `sat` is populated for "sat" only.
struct UnifiedResult : AttackBase {
  std::string attack;
  std::string detail;
  std::uint64_t iterations = 0;
  std::int64_t conflicts = 0;
  SatAttackStats sat;
};

/// Attack-specific knobs passed as (key, value) strings, e.g.
/// {{"portfolio", "4"}, {"frames", "12"}}. Adapters reject unknown keys
/// with std::invalid_argument so CLI typos surface instead of silently
/// running defaults. An empty tuning plus a default request reproduces the
/// direct call exactly.
using Tuning = std::vector<std::pair<std::string, std::string>>;

/// One accepted Tuning key of an attack, for `sttlock attack --list`.
struct AttackKnob {
  std::string key;
  std::string default_value;  ///< rendered default (may be a sentinel note)
  std::string help;
};

/// Catalogue entry: everything the CLI listing needs about one attack.
struct AttackInfo {
  std::string name;
  std::string description;  ///< one line
  std::vector<AttackKnob> knobs;
};

class Registry {
 public:
  /// Run attack `name` against the attacker's netlist `hybrid` (LUT masks
  /// unknown/ignored) with oracle access to the `configured` chip.
  /// `parallel` optionally fans SAT portfolio slices / warm-up batches
  /// across threads (results stay bit-identical; see SatAttackOptions).
  /// `oracle_sim`, when set, must be a CompiledSim lowering of exactly
  /// `configured`; the scan-oracle attacks then borrow it instead of
  /// compiling their own (the campaign's dedup cache shares one lowering
  /// across a grid group — results are bit-identical either way). Attacks
  /// that use no ScanOracle ignore it. Throws std::invalid_argument for an
  /// unknown name or tuning key.
  UnifiedResult run(std::string_view name, const Netlist& hybrid,
                    const Netlist& configured,
                    const CommonAttackOptions& common = {},
                    const Tuning& tuning = {},
                    ParallelFor* parallel = nullptr,
                    const CompiledSim* oracle_sim = nullptr) const;

  bool contains(std::string_view name) const;
  /// Registered names, sorted.
  std::vector<std::string> names() const;
  /// Catalogue entry for one attack; throws std::invalid_argument for an
  /// unknown name.
  AttackInfo info(std::string_view name) const;
  /// All catalogue entries, sorted by name (the `--list` payload).
  std::vector<AttackInfo> catalogue() const;
};

/// The process-wide registry (stateless; the type exists so call sites read
/// `attack::registry().run(...)`).
const Registry& registry();

}  // namespace stt::attack
