#include "attack/registry.hpp"

#include <chrono>
#include <map>
#include <sstream>
#include <stdexcept>

#include "attack/brute_force.hpp"
#include "attack/dpa.hpp"
#include "attack/guided_sens.hpp"
#include "attack/ml_attack.hpp"
#include "attack/oracle.hpp"
#include "attack/sensitization.hpp"
#include "attack/seq_attack.hpp"
#include "obs/obs.hpp"
#include "power/trace.hpp"
#include "tech/tech_library.hpp"
#include "verify/keydep.hpp"

namespace stt::attack {

namespace {

struct Ctx {
  const Netlist& hybrid;
  const Netlist& configured;
  const CommonAttackOptions& common;
  const Tuning& tuning;
  ParallelFor* parallel;
  const CompiledSim* oracle_sim;  ///< optional shared lowering of configured
};

/// Build the scan oracle for an adapter: borrow the caller's shared
/// lowering when one was supplied, otherwise compile our own.
ScanOracle make_oracle(const Ctx& c) {
  return c.oracle_sim != nullptr ? ScanOracle(c.configured, *c.oracle_sim)
                                 : ScanOracle(c.configured);
}

[[noreturn]] void bad_tuning(const std::string& attack,
                             const std::string& key) {
  throw std::invalid_argument("attack registry: unknown tuning key \"" + key +
                              "\" for attack \"" + attack + "\"");
}

bool truthy(const std::string& v) { return v == "1" || v == "true"; }

void fold_base(UnifiedResult& u, const AttackBase& b) {
  static_cast<AttackBase&>(u) = b;
}

UnifiedResult run_sat(const Ctx& c) {
  SatAttackOptions opt;
  opt.overlay(c.common);
  opt.parallel = c.parallel;
  for (const auto& [k, v] : c.tuning) {
    if (k == "portfolio") {
      opt.portfolio = std::stoi(v);
    } else if (k == "naive") {
      opt.cone_pruning = !truthy(v);
    } else if (k == "max_iterations") {
      opt.max_iterations = std::stoi(v);
    } else if (k == "warmup_words") {
      opt.warmup_words = std::stoi(v);
    } else if (k == "slice_conflicts") {
      opt.slice_conflicts = std::stoll(v);
    } else {
      bad_tuning("sat", k);
    }
  }
  ScanOracle oracle = make_oracle(c);
  const SatAttackResult r = run_sat_attack(c.hybrid, oracle, opt);
  UnifiedResult u;
  fold_base(u, r);
  u.iterations = static_cast<std::uint64_t>(r.iterations);
  u.conflicts = r.conflicts;
  u.sat = r.stats;
  std::ostringstream d;
  d << "dips=" << r.iterations << " conflicts=" << r.conflicts
    << " warm_rows=" << r.stats.key_rows_resolved;
  u.detail = d.str();
  return u;
}

UnifiedResult run_seq(const Ctx& c) {
  SeqAttackOptions opt;
  opt.overlay(c.common);
  for (const auto& [k, v] : c.tuning) {
    if (k == "frames") {
      opt.frames = std::stoi(v);
    } else if (k == "max_iterations") {
      opt.max_iterations = std::stoi(v);
    } else {
      bad_tuning("seq", k);
    }
  }
  const SeqAttackResult r =
      run_sequential_sat_attack(c.hybrid, c.configured, opt);
  UnifiedResult u;
  fold_base(u, r);
  u.iterations = static_cast<std::uint64_t>(r.iterations);
  std::ostringstream d;
  d << "sequences=" << r.iterations << " frames=" << opt.frames
    << " cycles=" << r.queries;
  u.detail = d.str();
  return u;
}

UnifiedResult run_bf(const Ctx& c) {
  BruteForceOptions opt;
  opt.overlay(c.common);
  for (const auto& [k, v] : c.tuning) {
    if (k == "screening_patterns") {
      opt.screening_patterns = std::stoi(v);
    } else if (k == "all_masks") {
      opt.standard_candidates_only = !truthy(v);
    } else {
      bad_tuning("bf", k);
    }
  }
  ScanOracle oracle = make_oracle(c);
  const BruteForceResult r = run_brute_force(c.hybrid, oracle, opt);
  UnifiedResult u;
  fold_base(u, r);
  u.iterations = r.combinations_tried;
  std::ostringstream d;
  d << "combinations=" << r.combinations_tried
    << " space=" << r.search_space.to_string();
  u.detail = d.str();
  return u;
}

UnifiedResult run_ml(const Ctx& c) {
  MlAttackOptions opt;
  opt.overlay(c.common);
  for (const auto& [k, v] : c.tuning) {
    if (k == "training_patterns") {
      opt.training_patterns = std::stoi(v);
    } else if (k == "bitflip") {
      opt.standard_candidates_only = !truthy(v);
    } else {
      bad_tuning("ml", k);
    }
  }
  ScanOracle oracle = make_oracle(c);
  const MlAttackResult r = run_ml_attack(c.hybrid, oracle, opt);
  UnifiedResult u;
  fold_base(u, r);
  u.iterations = static_cast<std::uint64_t>(r.steps);
  std::ostringstream d;
  d << "steps=" << r.steps << " accuracy=" << r.final_accuracy;
  u.detail = d.str();
  return u;
}

UnifiedResult run_sens(const Ctx& c) {
  SensitizationOptions opt;
  opt.overlay(c.common);
  if (!c.tuning.empty()) bad_tuning("sens", c.tuning.front().first);
  ScanOracle oracle = make_oracle(c);
  const SensitizationResult r =
      run_sensitization_attack(c.hybrid, oracle, opt);
  UnifiedResult u;
  fold_base(u, r);
  u.iterations = static_cast<std::uint64_t>(r.rows_resolved);
  std::ostringstream d;
  d << "rows=" << r.rows_resolved << "/" << r.rows_total
    << " luts=" << r.luts_resolved << "/" << r.luts_total;
  u.detail = d.str();
  return u;
}

UnifiedResult run_gsens(const Ctx& c) {
  GuidedSensOptions opt;
  opt.overlay(c.common);
  for (const auto& [k, v] : c.tuning) {
    if (k == "max_witnesses_per_row") {
      opt.max_witnesses_per_row = std::stoi(v);
    } else {
      bad_tuning("gsens", k);
    }
  }
  ScanOracle oracle = make_oracle(c);
  const GuidedSensResult r = run_guided_sensitization(c.hybrid, oracle, opt);
  UnifiedResult u;
  fold_base(u, r);
  u.iterations = static_cast<std::uint64_t>(r.rows_resolved);
  std::ostringstream d;
  d << "rows=" << r.rows_resolved << "/" << r.rows_total
    << " unreachable=" << r.rows_proven_unreachable;
  u.detail = d.str();
  return u;
}

UnifiedResult run_dpa(const Ctx& c) {
  DpaOptions opt;
  opt.overlay(c.common);
  TraceOptions trace;
  std::string target_name;
  for (const auto& [k, v] : c.tuning) {
    if (k == "cycles") {
      trace.cycles = std::stoi(v);
    } else if (k == "noise_fj") {
      trace.noise_sigma_fj = std::stod(v);
    } else if (k == "target") {
      target_name = v;
    } else {
      bad_tuning("dpa", k);
    }
  }
  trace.seed = opt.seed;

  CellId target = kNullCell;
  if (!target_name.empty()) {
    target = c.configured.find(target_name);
    if (target == kNullCell || c.configured.cell(target).kind != CellKind::kLut) {
      throw std::invalid_argument(
          "attack registry: dpa target must name a LUT cell");
    }
  } else {
    for (CellId id = 0; id < c.configured.size(); ++id) {
      if (c.configured.cell(id).kind == CellKind::kLut) {
        target = id;
        break;
      }
    }
  }
  UnifiedResult u;
  if (target == kNullCell) {
    u.outcome = Outcome::kAbandoned;
    u.detail = "no LUT target cell";
    return u;
  }
  const std::uint64_t truth = c.configured.cell(target).lut_mask;
  const PowerTraceResult measurement =
      simulate_power_trace(c.configured, TechLibrary::cmos90_stt(), trace);
  const DpaResult r =
      run_dpa_attack(c.configured, target, truth, measurement, opt);
  fold_base(u, r);
  u.iterations = r.ranking.size();
  std::ostringstream d;
  d << "target=" << c.configured.cell(target).name << " best=0x" << std::hex
    << r.best_mask << std::dec << " margin=" << r.margin();
  u.detail = d.str();
  return u;
}

// Oracle-free static attack: the key-dependency analysis (verify/keydep)
// runs on the attacker's netlist alone — it never reads a LUT mask and
// never touches the configured chip, so `queries` is zero by construction.
// Every `constant` cell (the const defense's injected XOR-companion
// template unit-propagates to the constant-0 function) is claimed with its
// propagated mask; every `removable` cell (statically blocked from all
// observation points) is claimed with mask 0, which is interface-preserving
// by the removability proof. Solved when nothing else holds key material.
UnifiedResult run_static(const Ctx& c) {
  if (!c.tuning.empty()) bad_tuning("static", c.tuning.front().first);
  const auto start = std::chrono::steady_clock::now();
  const KeydepResult r = analyze_keydep(c.hybrid);
  UnifiedResult u;
  int resolved_cells = 0;
  int constant_bits = 0;
  int free_bits = 0;
  for (const KeyCellReport& cell : r.cells) {
    if (cell.verdict == KeyVerdict::kConstant) {
      u.key[cell.name] = cell.propagated_mask;
      ++resolved_cells;
      constant_bits += cell.nominal_bits;
    } else if (cell.verdict == KeyVerdict::kRemovable) {
      u.key[cell.name] = 0;
      ++resolved_cells;
      free_bits += cell.nominal_bits;
    }
  }
  u.outcome = resolved_cells == r.key_cells ? Outcome::kSolved
                                            : Outcome::kAbandoned;
  u.queries = 0;
  u.iterations = static_cast<std::uint64_t>(resolved_cells);
  u.elapsed_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  std::ostringstream d;
  d << "cells=" << resolved_cells << "/" << r.key_cells
    << " const_bits=" << constant_bits << " free_bits=" << free_bits
    << " eff_bits=" << r.eff_key_bits << "/" << r.key_bits
    << " verdict=" << r.verdict();
  u.detail = d.str();
  return u;
}

using Runner = UnifiedResult (*)(const Ctx&);

const std::map<std::string, Runner, std::less<>>& runners() {
  static const std::map<std::string, Runner, std::less<>> m = {
      {"bf", &run_bf},     {"dpa", &run_dpa},       {"gsens", &run_gsens},
      {"ml", &run_ml},     {"sat", &run_sat},       {"sens", &run_sens},
      {"seq", &run_seq},   {"static", &run_static},
  };
  return m;
}

// Catalogue text for `sttlock attack --list`. The knob keys must stay in
// lock-step with the adapters above (attack_api_test pins the coverage).
const std::map<std::string, AttackInfo, std::less<>>& catalogue_entries() {
  static const std::map<std::string, AttackInfo, std::less<>> m = {
      {"bf",
       {"bf",
        "exhaustive key search over the Eq. (3) candidate space, "
        "screening-pattern pre-filtered",
        {{"screening_patterns", "4", "oracle patterns per candidate screen"},
         {"all_masks", "0", "search all 2^2^k masks, not just standard "
                            "gate candidates"}}}},
      {"dpa",
       {"dpa",
        "differential power analysis of one STT LUT from a simulated "
        "power trace",
        {{"cycles", "256", "measured trace length in clock cycles"},
         {"noise_fj", "0", "gaussian measurement noise sigma (fJ)"},
         {"target", "<first LUT>", "name of the LUT cell to attack"}}}},
      {"gsens",
       {"gsens",
        "SAT-guided sensitization: prove or refute a propagation witness "
        "per truth-table row",
        {{"max_witnesses_per_row", "8",
          "witness attempts before a row is abandoned"}}}},
      {"ml",
       {"ml",
        "simulated-annealing model fit of the key against oracle responses",
        {{"training_patterns", "256", "oracle patterns in the training set"},
         {"bitflip", "0", "anneal over raw mask bits instead of standard "
                          "gate candidates"}}}},
      {"sat",
       {"sat",
        "oracle-guided SAT attack (DIP refinement, cone-pruned encoding, "
        "optional solver portfolio)",
        {{"portfolio", "1", "parallel solver portfolio size"},
         {"naive", "0", "legacy full-copy DIP encoding"},
         {"max_iterations", "0", "DIP cap (0 = unlimited)"},
         {"warmup_words", "16", "64-pattern simulation words seeding the "
                                "learned-row warm-up"},
         {"slice_conflicts", "0", "conflict budget per portfolio slice"}}}},
      {"sens",
       {"sens",
        "classic input-sensitization attack: justify each row, observe "
        "through a sensitized path",
        {}}},
      {"seq",
       {"seq",
        "sequential SAT attack: time-frame unrolling against a "
        "scan-locked chip",
        {{"frames", "8", "unrolled time frames per query"},
         {"max_iterations", "0", "distinguishing-sequence cap "
                                 "(0 = unlimited)"}}}},
      {"static",
       {"static",
        "oracle-free key-dependency analysis: unit-propagates injected "
        "constants and claims removable key cells with zero queries",
        {}}},
  };
  return m;
}

}  // namespace

UnifiedResult Registry::run(std::string_view name, const Netlist& hybrid,
                            const Netlist& configured,
                            const CommonAttackOptions& common,
                            const Tuning& tuning, ParallelFor* parallel,
                            const CompiledSim* oracle_sim) const {
  const auto it = runners().find(name);
  if (it == runners().end()) {
    std::string known;
    for (const auto& [n, fn] : runners()) {
      known += known.empty() ? n : ", " + n;
    }
    throw std::invalid_argument("attack registry: unknown attack \"" +
                                std::string(name) + "\" (known: " + known +
                                ")");
  }
  static obs::Counter& runs = obs::Metrics::global().counter("attack.runs");
  runs.add(1);
  const Ctx ctx{hybrid, configured, common, tuning, parallel, oracle_sim};
  UnifiedResult u = it->second(ctx);
  u.attack = std::string(name);
  return u;
}

bool Registry::contains(std::string_view name) const {
  return runners().count(name) != 0;
}

std::vector<std::string> Registry::names() const {
  std::vector<std::string> out;
  for (const auto& [n, fn] : runners()) out.push_back(n);
  return out;
}

AttackInfo Registry::info(std::string_view name) const {
  const auto it = catalogue_entries().find(name);
  if (it == catalogue_entries().end()) {
    throw std::invalid_argument("attack registry: unknown attack \"" +
                                std::string(name) + "\"");
  }
  return it->second;
}

std::vector<AttackInfo> Registry::catalogue() const {
  std::vector<AttackInfo> out;
  for (const auto& [n, info] : catalogue_entries()) out.push_back(info);
  return out;
}

const Registry& registry() {
  static const Registry r;
  return r;
}

}  // namespace stt::attack
