#include "attack/sat.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>

namespace stt::sat {

namespace {

constexpr double kVarDecay = 1.0 / 0.95;
constexpr double kClauseDecay = 1.0 / 0.999;
constexpr double kRescale = 1e100;

// Deadline polling period: one wall-clock read per this many conflicts.
constexpr std::int64_t kDeadlineCheckMask = 255;

std::int64_t steady_now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

std::int64_t luby_sequence(std::int64_t i) {
  // Find the smallest complete binary sequence (size 2^seq - 1) holding i.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ll << seq;
}

Solver::Solver() = default;

void Solver::set_config(const SolverConfig& config) {
  config_ = config;
  if (config_.restart_unit < 1) config_.restart_unit = 1;
  rng_state_ = config.seed | 1ull;  // xorshift must not start at zero
  for (std::size_t v = 0; v < phase_.size(); ++v) {
    phase_[v] = config_.default_phase;
  }
}

std::uint64_t Solver::next_random() {
  std::uint64_t x = rng_state_;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  return rng_state_ = x;
}

void Solver::set_deadline(double seconds_from_now) {
  if (seconds_from_now < 0) {
    has_deadline_ = false;
    return;
  }
  // Saturate: a huge limit (e.g. a campaign's "effectively unbounded")
  // must not overflow the nanosecond epoch into an already-expired one.
  const double ns = seconds_from_now * 1e9;
  if (ns >= 9.0e18 - static_cast<double>(steady_now_ns())) {
    has_deadline_ = false;
    return;
  }
  has_deadline_ = true;
  deadline_ns_ = steady_now_ns() + static_cast<std::int64_t>(ns);
}

bool Solver::deadline_expired() const {
  return has_deadline_ && steady_now_ns() >= deadline_ns_;
}

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assigns_.push_back(kUndef);
  phase_.push_back(config_.default_phase);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  bin_watches_.emplace_back();
  bin_watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_pos_[v]);
}

void Solver::heap_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kRescale) {
    for (double& a : activity_) a /= kRescale;
    var_inc_ /= kRescale;
  }
  if (heap_pos_[v] >= 0) heap_up(heap_pos_[v]);
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > kRescale) {
    for (Clause& cl : clauses_) {
      if (cl.learnt) cl.activity /= kRescale;
    }
    clause_inc_ /= kRescale;
  }
}

void Solver::decay_activities() {
  var_inc_ *= kVarDecay;
  clause_inc_ *= kClauseDecay;
}

void Solver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  if (c.lits.size() == 2) {
    bin_watches_[(~c.lits[0]).code()].push_back({c.lits[1], cr});
    bin_watches_[(~c.lits[1]).code()].push_back({c.lits[0], cr});
    return;
  }
  watches_[(~c.lits[0]).code()].push_back({cr, c.lits[1]});
  watches_[(~c.lits[1]).code()].push_back({cr, c.lits[0]});
}

void Solver::note_clause_stored() {
  ++live_clauses_;
  if (live_clauses_ > peak_clauses_) peak_clauses_ = live_clauses_;
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = l.var();
  assigns_[v] = l.negated() ? kFalse : kTrue;
  level_[v] = static_cast<int>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

bool Solver::add_clause(std::initializer_list<Lit> lits) {
  return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
}

bool Solver::add_clause(std::span<const Lit> lits_in) {
  if (!ok_) return false;
  ++stats_clauses_added_;
  backtrack(0);

  // Simplify at level 0: sort, dedupe, drop false literals, detect
  // tautologies and already-satisfied clauses.
  std::vector<Lit> lits(lits_in.begin(), lits_in.end());
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i] == lits[i + 1]) continue;
    if (i + 1 < lits.size() && lits[i] == ~lits[i + 1]) return true;  // taut
    const LBool v = lit_value(lits[i]);
    if (v == kTrue) return true;  // satisfied at level 0
    if (v == kFalse) continue;    // falsified at level 0: drop
    out.push_back(lits[i]);
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoClause);
    if (propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  clauses_.push_back({std::move(out), 0.0, false, false});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  note_clause_stored();
  return true;
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_propagations_;

    // Binary clauses first: no watch migration, no clause dereference on
    // the satisfied path.
    for (const BinWatch& bw : bin_watches_[p.code()]) {
      const LBool v = lit_value(bw.other);
      if (v == kTrue) continue;
      if (v == kFalse) {
        qhead_ = trail_.size();
        return bw.cr;
      }
      enqueue(bw.other, bw.cr);
    }

    auto& ws = watches_[p.code()];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      // Blocker check: if some other literal of the clause is already true
      // the clause is satisfied; keep the watch and move on.
      if (lit_value(ws[i].blocker) == kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      const ClauseRef cr = ws[i].cr;
      Clause& c = clauses_[cr];
      if (c.deleted) {
        ++i;
        continue;
      }
      // Normalize: the falsified watcher (~p) sits at index 1.
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      const Lit first = c.lits[0];
      if (lit_value(first) == kTrue) {
        ws[j++] = {cr, first};
        ++i;
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_value(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back({cr, first});
          found = true;
          break;
        }
      }
      if (found) {
        ++i;  // moved to another watch list
        continue;
      }
      // Unit or conflicting.
      ws[j++] = {cr, first};
      ++i;
      if (lit_value(first) == kFalse) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(first, cr);
    }
    ws.resize(j);
  }
  return kNoClause;
}

void Solver::backtrack(int target_level, bool save_phases) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    if (save_phases) phase_[v] = (assigns_[v] == kTrue);
    assigns_[v] = kUndef;
    reason_[v] = kNoClause;
    heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

// Recursive (MiniSat-style) redundancy test: a non-asserting learnt literal
// can be dropped when its reason-side ancestry stays inside literals already
// marked `seen_` (i.e. already in the learnt clause). `levels_mask` is the
// abstraction of the decision levels present in the clause; any ancestor on
// a level outside it cannot be dominated, so the walk fails fast.
bool Solver::lit_redundant(Lit l, std::uint32_t levels_mask) {
  analyze_stack_.clear();
  analyze_stack_.push_back(l);
  const std::size_t top = analyze_clear_.size();
  while (!analyze_stack_.empty()) {
    const Lit q = analyze_stack_.back();
    analyze_stack_.pop_back();
    const Clause& c = clauses_[reason_[q.var()]];
    for (const Lit p : c.lits) {
      const Var v = p.var();
      if (v == q.var() || seen_[v] || level_[v] == 0) continue;
      if (reason_[v] == kNoClause || (abstract_level(v) & levels_mask) == 0) {
        // Hit a decision or an unreachable level: not redundant. Unwind the
        // speculative marks added during this walk.
        for (std::size_t k = top; k < analyze_clear_.size(); ++k) {
          seen_[analyze_clear_[k]] = 0;
        }
        analyze_clear_.resize(top);
        return false;
      }
      seen_[v] = 1;
      analyze_clear_.push_back(v);
      analyze_stack_.push_back(p);
    }
  }
  return true;
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                     int& bt_level) {
  learnt.clear();
  learnt.push_back(Lit::undef());  // placeholder for the asserting literal

  const int current = static_cast<int>(trail_lim_.size());
  int counter = 0;
  Lit p = Lit::undef();
  std::size_t index = trail_.size();
  analyze_clear_.clear();

  do {
    Clause& c = clauses_[confl];
    if (c.learnt) bump_clause(c);
    for (const Lit q : c.lits) {
      if (p != Lit::undef() && q == p) continue;
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        analyze_clear_.push_back(v);
        bump_var(v);
        if (level_[v] >= current) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk back to the next marked literal on the trail.
    while (!seen_[trail_[index - 1].var()]) --index;
    --index;
    p = trail_[index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;
  seen_[p.var()] = 1;  // keep the UIP marked for the redundancy walks
  analyze_clear_.push_back(p.var());

  // Recursive clause minimization: drop literals whose reason ancestry is
  // dominated by the rest of the clause.
  std::uint32_t levels_mask = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    levels_mask |= abstract_level(learnt[i].var());
  }
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Var v = learnt[i].var();
    if (reason_[v] == kNoClause || !lit_redundant(learnt[i], levels_mask)) {
      learnt[keep++] = learnt[i];
    }
  }
  learnt.resize(keep);

  // Backtrack level: highest level among the non-asserting literals; put
  // that literal at index 1 so it is watched.
  bt_level = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level_[learnt[i].var()] > bt_level) {
      bt_level = level_[learnt[i].var()];
      std::swap(learnt[1], learnt[i]);
    }
  }

  for (const Var v : analyze_clear_) seen_[v] = 0;
}

Lit Solver::pick_branch() {
  if (config_.random_branch_freq > 0.0 &&
      static_cast<double>(next_random() >> 11) * 0x1.0p-53 <
          config_.random_branch_freq &&
      num_vars() > 0) {
    const Var v = static_cast<Var>(next_random() % num_vars());
    if (assigns_[v] == kUndef) return Lit(v, !phase_[v]);
  }
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == kUndef) return Lit(v, !phase_[v]);
  }
  return Lit::undef();
}

void Solver::reduce_db() {
  // Only called at decision level 0 (right after a restart), so rebuilding
  // watches is safe.
  std::vector<ClauseRef> learnts;
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    const Clause& c = clauses_[cr];
    if (c.learnt && !c.deleted && c.lits.size() > 2) learnts.push_back(cr);
  }
  std::sort(learnts.begin(), learnts.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const std::size_t drop = learnts.size() / 2;
  for (std::size_t i = 0; i < drop; ++i) {
    clauses_[learnts[i]].deleted = true;
    --learnt_count_;
    --live_clauses_;
  }
  ++stats_db_reductions_;
  rebuild_watches();
}

void Solver::rebuild_watches() {
  for (auto& w : watches_) w.clear();
  for (auto& w : bin_watches_) w.clear();
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    if (!clauses_[cr].deleted) attach(cr);
  }
}

bool Solver::value(Var v) const { return assigns_[v] == kTrue; }

Result Solver::solve(std::span<const Lit> assumptions) {
  last_stop_ = StopCause::kNone;
  if (!ok_) return Result::kUnsat;
  // The unwound assignments are the previous call's model, whose phases
  // were saved on the way out — re-saving here would clobber any
  // set_phase() hints given between calls.
  backtrack(0, /*save_phases=*/false);
  if (propagate() != kNoClause) {
    ok_ = false;
    return Result::kUnsat;
  }

  const std::int64_t budget_end =
      conflict_budget_ < 0 ? -1 : stats_conflicts_ + conflict_budget_;
  std::int64_t max_learnts =
      static_cast<std::int64_t>(clauses_.size()) / 3 + 2000;
  std::int64_t restart_index = 0;
  std::int64_t restart_limit =
      luby_sequence(restart_index) * config_.restart_unit;
  std::int64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++stats_conflicts_;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        return Result::kUnsat;
      }
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoClause);
      } else {
        clauses_.push_back({learnt, 0.0, true, false});
        const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
        bump_clause(clauses_[cr]);
        attach(cr);
        note_clause_stored();
        enqueue(learnt[0], cr);
        ++learnt_count_;
      }
      ++stats_learned_;
      decay_activities();
      if (budget_end >= 0 && stats_conflicts_ >= budget_end) {
        backtrack(0);
        last_stop_ = StopCause::kConflictBudget;
        return Result::kUnknown;
      }
      if ((stats_conflicts_ & kDeadlineCheckMask) == 0 && deadline_expired()) {
        backtrack(0);
        last_stop_ = StopCause::kDeadline;
        return Result::kUnknown;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_limit) {
      backtrack(0);
      ++restart_index;
      restart_limit = luby_sequence(restart_index) * config_.restart_unit;
      conflicts_since_restart = 0;
      if (learnt_count_ > max_learnts) {
        reduce_db();
        max_learnts = max_learnts + max_learnts / 10;
      }
      continue;
    }

    // Assumptions are replayed as forced decisions below the search.
    Lit next = Lit::undef();
    bool unsat_assumption = false;
    while (static_cast<std::size_t>(trail_lim_.size()) < assumptions.size()) {
      const Lit p = assumptions[trail_lim_.size()];
      const LBool v = lit_value(p);
      if (v == kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (v == kFalse) {
        unsat_assumption = true;
        break;
      } else {
        next = p;
        break;
      }
    }
    if (unsat_assumption) {
      backtrack(0);
      return Result::kUnsat;
    }
    if (next == Lit::undef()) {
      next = pick_branch();
      if (next == Lit::undef()) {
        // Save the model's phases now: the next solve() unwinds the trail
        // without saving (see the entry backtrack).
        for (const Lit p : trail_) phase_[p.var()] = !p.negated();
        return Result::kSat;  // model in assigns_
      }
      ++stats_decisions_;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNoClause);
  }
}

}  // namespace stt::sat
