#include "attack/sat.hpp"

#include <algorithm>
#include <cmath>

namespace stt::sat {

namespace {

// Luby restart sequence (0-indexed): 1,1,2,1,1,2,4,...
std::int64_t luby(std::int64_t i) {
  // Find the smallest complete binary sequence (size 2^seq - 1) holding i.
  std::int64_t size = 1;
  std::int64_t seq = 0;
  while (size < i + 1) {
    ++seq;
    size = 2 * size + 1;
  }
  while (size - 1 != i) {
    size = (size - 1) / 2;
    --seq;
    i %= size;
  }
  return 1ll << seq;
}

constexpr double kVarDecay = 1.0 / 0.95;
constexpr double kClauseDecay = 1.0 / 0.999;
constexpr double kRescale = 1e100;

}  // namespace

Solver::Solver() = default;

Var Solver::new_var() {
  const Var v = static_cast<Var>(activity_.size());
  activity_.push_back(0.0);
  assigns_.push_back(kUndef);
  phase_.push_back(false);
  level_.push_back(0);
  reason_.push_back(kNoClause);
  seen_.push_back(0);
  watches_.emplace_back();
  watches_.emplace_back();
  heap_pos_.push_back(-1);
  heap_insert(v);
  return v;
}

void Solver::heap_insert(Var v) {
  if (heap_pos_[v] >= 0) return;
  heap_pos_[v] = static_cast<int>(heap_.size());
  heap_.push_back(v);
  heap_up(heap_pos_[v]);
}

void Solver::heap_up(int i) {
  const Var v = heap_[i];
  while (i > 0) {
    const int parent = (i - 1) / 2;
    if (activity_[heap_[parent]] >= activity_[v]) break;
    heap_[i] = heap_[parent];
    heap_pos_[heap_[i]] = i;
    i = parent;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

void Solver::heap_down(int i) {
  const Var v = heap_[i];
  const int n = static_cast<int>(heap_.size());
  while (true) {
    int child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && activity_[heap_[child + 1]] > activity_[heap_[child]]) {
      ++child;
    }
    if (activity_[heap_[child]] <= activity_[v]) break;
    heap_[i] = heap_[child];
    heap_pos_[heap_[i]] = i;
    i = child;
  }
  heap_[i] = v;
  heap_pos_[v] = i;
}

Var Solver::heap_pop() {
  const Var top = heap_[0];
  heap_pos_[top] = -1;
  heap_[0] = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    heap_pos_[heap_[0]] = 0;
    heap_down(0);
  }
  return top;
}

void Solver::bump_var(Var v) {
  activity_[v] += var_inc_;
  if (activity_[v] > kRescale) {
    for (double& a : activity_) a /= kRescale;
    var_inc_ /= kRescale;
  }
  if (heap_pos_[v] >= 0) heap_up(heap_pos_[v]);
}

void Solver::bump_clause(Clause& c) {
  c.activity += clause_inc_;
  if (c.activity > kRescale) {
    for (Clause& cl : clauses_) {
      if (cl.learnt) cl.activity /= kRescale;
    }
    clause_inc_ /= kRescale;
  }
}

void Solver::decay_activities() {
  var_inc_ *= kVarDecay;
  clause_inc_ *= kClauseDecay;
}

void Solver::attach(ClauseRef cr) {
  const Clause& c = clauses_[cr];
  watches_[(~c.lits[0]).code()].push_back(cr);
  watches_[(~c.lits[1]).code()].push_back(cr);
}

void Solver::enqueue(Lit l, ClauseRef reason) {
  const Var v = l.var();
  assigns_[v] = l.negated() ? kFalse : kTrue;
  level_[v] = static_cast<int>(trail_lim_.size());
  reason_[v] = reason;
  trail_.push_back(l);
}

bool Solver::add_clause(std::initializer_list<Lit> lits) {
  return add_clause(std::span<const Lit>(lits.begin(), lits.size()));
}

bool Solver::add_clause(std::span<const Lit> lits_in) {
  if (!ok_) return false;
  backtrack(0);

  // Simplify at level 0: sort, dedupe, drop false literals, detect
  // tautologies and already-satisfied clauses.
  std::vector<Lit> lits(lits_in.begin(), lits_in.end());
  std::sort(lits.begin(), lits.end(),
            [](Lit a, Lit b) { return a.code() < b.code(); });
  std::vector<Lit> out;
  for (std::size_t i = 0; i < lits.size(); ++i) {
    if (i + 1 < lits.size() && lits[i] == lits[i + 1]) continue;
    if (i + 1 < lits.size() && lits[i] == ~lits[i + 1]) return true;  // taut
    const LBool v = lit_value(lits[i]);
    if (v == kTrue) return true;  // satisfied at level 0
    if (v == kFalse) continue;    // falsified at level 0: drop
    out.push_back(lits[i]);
  }

  if (out.empty()) {
    ok_ = false;
    return false;
  }
  if (out.size() == 1) {
    enqueue(out[0], kNoClause);
    if (propagate() != kNoClause) ok_ = false;
    return ok_;
  }
  clauses_.push_back({std::move(out), 0.0, false, false});
  attach(static_cast<ClauseRef>(clauses_.size() - 1));
  return true;
}

Solver::ClauseRef Solver::propagate() {
  while (qhead_ < trail_.size()) {
    const Lit p = trail_[qhead_++];
    ++stats_propagations_;
    auto& ws = watches_[p.code()];
    std::size_t i = 0;
    std::size_t j = 0;
    while (i < ws.size()) {
      const ClauseRef cr = ws[i];
      Clause& c = clauses_[cr];
      if (c.deleted) {
        ++i;
        continue;
      }
      // Normalize: the falsified watcher (~p) sits at index 1.
      const Lit false_lit = ~p;
      if (c.lits[0] == false_lit) std::swap(c.lits[0], c.lits[1]);
      if (lit_value(c.lits[0]) == kTrue) {
        ws[j++] = ws[i++];
        continue;
      }
      // Look for a replacement watch.
      bool found = false;
      for (std::size_t k = 2; k < c.lits.size(); ++k) {
        if (lit_value(c.lits[k]) != kFalse) {
          std::swap(c.lits[1], c.lits[k]);
          watches_[(~c.lits[1]).code()].push_back(cr);
          found = true;
          break;
        }
      }
      if (found) {
        ++i;  // moved to another watch list
        continue;
      }
      // Unit or conflicting.
      ws[j++] = ws[i++];
      if (lit_value(c.lits[0]) == kFalse) {
        while (i < ws.size()) ws[j++] = ws[i++];
        ws.resize(j);
        qhead_ = trail_.size();
        return cr;
      }
      enqueue(c.lits[0], cr);
    }
    ws.resize(j);
  }
  return kNoClause;
}

void Solver::backtrack(int target_level) {
  if (static_cast<int>(trail_lim_.size()) <= target_level) return;
  const std::size_t bound = trail_lim_[target_level];
  for (std::size_t i = trail_.size(); i > bound; --i) {
    const Var v = trail_[i - 1].var();
    phase_[v] = (assigns_[v] == kTrue);
    assigns_[v] = kUndef;
    reason_[v] = kNoClause;
    heap_insert(v);
  }
  trail_.resize(bound);
  trail_lim_.resize(target_level);
  qhead_ = trail_.size();
}

void Solver::analyze(ClauseRef confl, std::vector<Lit>& learnt,
                     int& bt_level) {
  learnt.clear();
  learnt.push_back(Lit::undef());  // placeholder for the asserting literal

  const int current = static_cast<int>(trail_lim_.size());
  int counter = 0;
  Lit p = Lit::undef();
  std::size_t index = trail_.size();
  std::vector<Var> to_clear;

  do {
    Clause& c = clauses_[confl];
    if (c.learnt) bump_clause(c);
    for (const Lit q : c.lits) {
      if (p != Lit::undef() && q == p) continue;
      const Var v = q.var();
      if (!seen_[v] && level_[v] > 0) {
        seen_[v] = 1;
        to_clear.push_back(v);
        bump_var(v);
        if (level_[v] >= current) {
          ++counter;
        } else {
          learnt.push_back(q);
        }
      }
    }
    // Walk back to the next marked literal on the trail.
    while (!seen_[trail_[index - 1].var()]) --index;
    --index;
    p = trail_[index];
    confl = reason_[p.var()];
    seen_[p.var()] = 0;
    --counter;
  } while (counter > 0);
  learnt[0] = ~p;

  // Local clause minimization: drop literals implied by the rest.
  std::size_t keep = 1;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    const Var v = learnt[i].var();
    const ClauseRef r = reason_[v];
    bool redundant = r != kNoClause;
    if (redundant) {
      for (const Lit q : clauses_[r].lits) {
        if (q.var() == v) continue;
        if (!seen_[q.var()] && level_[q.var()] > 0) {
          redundant = false;
          break;
        }
      }
    }
    if (!redundant) learnt[keep++] = learnt[i];
  }
  learnt.resize(keep);

  // Backtrack level: highest level among the non-asserting literals; put
  // that literal at index 1 so it is watched.
  bt_level = 0;
  for (std::size_t i = 1; i < learnt.size(); ++i) {
    if (level_[learnt[i].var()] > bt_level) {
      bt_level = level_[learnt[i].var()];
      std::swap(learnt[1], learnt[i]);
    }
  }

  for (const Var v : to_clear) seen_[v] = 0;
}

Lit Solver::pick_branch() {
  while (!heap_.empty()) {
    const Var v = heap_pop();
    if (assigns_[v] == kUndef) return Lit(v, !phase_[v]);
  }
  return Lit::undef();
}

void Solver::reduce_db() {
  // Only called at decision level 0 (right after a restart), so rebuilding
  // watches is safe.
  std::vector<ClauseRef> learnts;
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    const Clause& c = clauses_[cr];
    if (c.learnt && !c.deleted && c.lits.size() > 2) learnts.push_back(cr);
  }
  std::sort(learnts.begin(), learnts.end(), [this](ClauseRef a, ClauseRef b) {
    return clauses_[a].activity < clauses_[b].activity;
  });
  const std::size_t drop = learnts.size() / 2;
  for (std::size_t i = 0; i < drop; ++i) {
    clauses_[learnts[i]].deleted = true;
    --learnt_count_;
  }
  rebuild_watches();
}

void Solver::rebuild_watches() {
  for (auto& w : watches_) w.clear();
  for (ClauseRef cr = 0; cr < static_cast<ClauseRef>(clauses_.size()); ++cr) {
    if (!clauses_[cr].deleted) attach(cr);
  }
}

bool Solver::value(Var v) const { return assigns_[v] == kTrue; }

Result Solver::solve(std::span<const Lit> assumptions) {
  if (!ok_) return Result::kUnsat;
  backtrack(0);
  if (propagate() != kNoClause) {
    ok_ = false;
    return Result::kUnsat;
  }

  const std::int64_t budget_end =
      conflict_budget_ < 0 ? -1 : stats_conflicts_ + conflict_budget_;
  std::int64_t max_learnts =
      static_cast<std::int64_t>(clauses_.size()) / 3 + 2000;
  std::int64_t restart_index = 0;
  std::int64_t restart_limit = luby(restart_index) * 100;
  std::int64_t conflicts_since_restart = 0;
  std::vector<Lit> learnt;

  while (true) {
    const ClauseRef confl = propagate();
    if (confl != kNoClause) {
      ++stats_conflicts_;
      ++conflicts_since_restart;
      if (trail_lim_.empty()) {
        ok_ = false;
        return Result::kUnsat;
      }
      int bt_level = 0;
      analyze(confl, learnt, bt_level);
      backtrack(bt_level);
      if (learnt.size() == 1) {
        enqueue(learnt[0], kNoClause);
      } else {
        clauses_.push_back({learnt, 0.0, true, false});
        const auto cr = static_cast<ClauseRef>(clauses_.size() - 1);
        bump_clause(clauses_[cr]);
        attach(cr);
        enqueue(learnt[0], cr);
        ++learnt_count_;
      }
      decay_activities();
      if (budget_end >= 0 && stats_conflicts_ >= budget_end) {
        backtrack(0);
        return Result::kUnknown;
      }
      continue;
    }

    if (conflicts_since_restart >= restart_limit) {
      backtrack(0);
      ++restart_index;
      restart_limit = luby(restart_index) * 100;
      conflicts_since_restart = 0;
      if (learnt_count_ > max_learnts) {
        reduce_db();
        max_learnts = max_learnts + max_learnts / 10;
      }
      continue;
    }

    // Assumptions are replayed as forced decisions below the search.
    Lit next = Lit::undef();
    bool unsat_assumption = false;
    while (static_cast<std::size_t>(trail_lim_.size()) < assumptions.size()) {
      const Lit p = assumptions[trail_lim_.size()];
      const LBool v = lit_value(p);
      if (v == kTrue) {
        trail_lim_.push_back(static_cast<int>(trail_.size()));
      } else if (v == kFalse) {
        unsat_assumption = true;
        break;
      } else {
        next = p;
        break;
      }
    }
    if (unsat_assumption) {
      backtrack(0);
      return Result::kUnsat;
    }
    if (next == Lit::undef()) {
      next = pick_branch();
      if (next == Lit::undef()) return Result::kSat;  // model in assigns_
      ++stats_decisions_;
    }
    trail_lim_.push_back(static_cast<int>(trail_.size()));
    enqueue(next, kNoClause);
  }
}

}  // namespace stt::sat
