// SAT-guided sensitization attack: the paper's "testing technique to
// justify and propagate" with a real ATPG engine behind it.
//
// The plain sensitization attack (attack/sensitization.*) waits for random
// patterns to justify a LUT input row; this version *derives* patterns.
// For an unresolved row r of LUT L it asks the SAT solver for a scan
// pattern such that
//   (a) L's inputs evaluate to r (justification), and
//   (b) flipping L's output flips some observable bit even when every
//       other unresolved LUT's output is an unknown shared by both halves
//       of the miter (propagation around, never through, missing gates).
// Because a SAT witness fixes the unknowns existentially, each candidate
// pattern is re-validated with the conservative ternary evaluator before
// the oracle is queried; invalid witnesses are blocked and re-derived.
//
// On independent locks this resolves rows in a handful of oracle queries —
// the alpha*D cost of Eq. (1). On dependent/parametric locks the SAT query
// itself comes back UNSAT: there is provably no justify-and-propagate
// pattern, the formal core of the paper's security argument.
#pragma once

#include "attack/common.hpp"
#include "attack/oracle.hpp"
#include "attack/sensitization.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct GuidedSensOptions : attack::CommonAttackOptions {
  /// Historical defaults; `work_budget` is the SAT conflict budget shared
  /// across all row derivations.
  GuidedSensOptions() {
    seed = 5;
    time_limit_s = kNoTimeLimit;
    work_budget = 500'000;
  }

  /// Re-derivation attempts per row after ternary-validation failures.
  int max_witnesses_per_row = 16;
};

struct GuidedSensResult : attack::AttackBase {
  /// `success()` = all rows resolved; `queries` counts oracle patterns.
  int luts_total = 0;
  int luts_resolved = 0;
  int rows_total = 0;
  int rows_resolved = 0;
  int rows_proven_unreachable = 0;  ///< SAT says no justify+propagate pattern
};

GuidedSensResult run_guided_sensitization(const Netlist& hybrid,
                                          ScanOracle& oracle,
                                          const GuidedSensOptions& opt = {});

}  // namespace stt
