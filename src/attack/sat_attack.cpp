#include "attack/sat_attack.hpp"

#include <algorithm>
#include <memory>
#include <optional>
#include <stdexcept>

#include "attack/dip_encode.hpp"
#include "attack/encode.hpp"
#include "obs/obs.hpp"
#include "util/rng.hpp"
#include "util/timer.hpp"

namespace stt {

namespace {

obs::Counter& dip_counter() {
  static obs::Counter& c = obs::Metrics::global().counter("sat.dips");
  return c;
}

// Pin an encoded copy's inputs to a concrete pattern and its outputs to the
// oracle's response (legacy full-copy encoding).
void constrain_io(sat::Solver& solver, const EncodedCircuit& enc,
                  const std::vector<bool>& in, const std::vector<bool>& out) {
  for (std::size_t i = 0; i < enc.input_vars.size(); ++i) {
    solver.add_unit(in[i] ? sat::pos(enc.input_vars[i])
                          : sat::neg(enc.input_vars[i]));
  }
  for (std::size_t i = 0; i < enc.output_vars.size(); ++i) {
    solver.add_unit(out[i] ? sat::pos(enc.output_vars[i])
                           : sat::neg(enc.output_vars[i]));
  }
}

double remaining_deadline(const Timer& timer, const SatAttackOptions& opt) {
  return std::max(0.0, opt.time_limit_s - timer.seconds());
}

void extract_key(const sat::Solver& solver,
                 const std::map<std::string, std::vector<sat::Var>>& key_vars,
                 LutKey& key) {
  for (const auto& [name, vars] : key_vars) {
    std::uint64_t mask = 0;
    for (std::size_t row = 0; row < vars.size(); ++row) {
      if (solver.value(vars[row])) mask |= (1ull << row);
    }
    key[name] = mask;
  }
}

// The legacy engine (PR 3 baseline): two full symbolic copies re-encoded
// per DIP, one solver. Kept selectable for benchmarking the cone-pruned
// path against it; the only change is that the wall-clock limit is now
// threaded into the solver as a deadline.
SatAttackResult run_naive(const Netlist& hybrid, ScanOracle& oracle,
                          const SatAttackOptions& opt) {
  SatAttackResult result;
  const Timer timer;
  const std::uint64_t queries_before = oracle.queries();

  sat::Solver solver;
  EncodeOptions symbolic;
  symbolic.symbolic_keys = true;
  const EncodedCircuit copy_a = encode_comb(solver, hybrid, symbolic);
  EncodeOptions opt_b = symbolic;
  opt_b.share_inputs = &copy_a.input_vars;
  const EncodedCircuit copy_b = encode_comb(solver, hybrid, opt_b);
  const sat::Var miter = add_miter(solver, copy_a, copy_b);

  if (copy_a.key_vars.empty()) {
    throw std::invalid_argument("run_sat_attack: netlist has no LUTs");
  }
  result.stats.cnf_initial_clauses = solver.clauses_added();

  const auto note_unknown = [&]() {
    result.outcome = solver.last_stop() == sat::StopCause::kDeadline
                         ? attack::Outcome::kTimedOut
                         : attack::Outcome::kBudgetExhausted;
  };

  const sat::Lit assume_diff[] = {sat::pos(miter)};
  while (true) {
    if (timer.seconds() > opt.time_limit_s) {
      result.outcome = attack::Outcome::kTimedOut;
      break;
    }
    if (result.iterations >= opt.max_iterations) {
      result.outcome = attack::Outcome::kBudgetExhausted;
      break;
    }
    STTLOCK_SPAN("sat-dip", "dip");
    solver.set_conflict_budget(opt.work_budget);
    solver.set_deadline(remaining_deadline(timer, opt));
    const sat::Result r = solver.solve(assume_diff);
    if (r == sat::Result::kUnknown) {
      note_unknown();
      break;
    }
    if (r == sat::Result::kUnsat) {
      // No distinguishing input remains: extract any consistent key.
      solver.set_conflict_budget(opt.work_budget);
      const sat::Result final_r = solver.solve();
      if (final_r != sat::Result::kSat) {
        if (final_r == sat::Result::kUnknown) note_unknown();
        break;
      }
      extract_key(solver, copy_a.key_vars, result.key);
      result.outcome = attack::Outcome::kSolved;
      break;
    }

    // SAT: read the DIP, query the chip, constrain both key sets.
    ++result.iterations;
    dip_counter().add(1);
    std::vector<bool> dip(copy_a.input_vars.size());
    for (std::size_t i = 0; i < dip.size(); ++i) {
      dip[i] = solver.value(copy_a.input_vars[i]);
    }
    const std::vector<bool> response = oracle.query(dip);

    EncodeOptions io_a;
    io_a.symbolic_keys = true;
    io_a.share_keys = &copy_a.key_vars;
    constrain_io(solver, encode_comb(solver, hybrid, io_a), dip, response);
    EncodeOptions io_b;
    io_b.symbolic_keys = true;
    io_b.share_keys = &copy_b.key_vars;
    constrain_io(solver, encode_comb(solver, hybrid, io_b), dip, response);
  }

  result.queries = oracle.queries() - queries_before;
  result.conflicts = solver.conflicts();
  result.stats.decisions = solver.decisions();
  result.stats.propagations = solver.propagations();
  result.stats.learned = solver.learned();
  result.stats.peak_clauses = solver.peak_clauses();
  result.stats.cnf_dip_clauses =
      solver.clauses_added() - result.stats.cnf_initial_clauses;
  result.stats.cnf_clauses_per_iter =
      result.iterations > 0 ? static_cast<double>(result.stats.cnf_dip_clauses) /
                                  result.iterations
                            : 0.0;
  result.elapsed_s = timer.seconds();
  return result;
}

/// One portfolio member: a full miter encoding plus its cone-pruned
/// incremental pair encoder. Members differ only in SolverConfig.
struct Member {
  int index = 0;
  sat::Solver solver;
  EncodedCircuit copy_a;
  EncodedCircuit copy_b;
  sat::Var miter = -1;
  std::unique_ptr<DipEncoder> enc;
  sat::Result verdict = sat::Result::kUnknown;
  bool parked = false;  ///< returned a (discarded) SAT model this call
};

sat::SolverConfig member_config(int index, std::uint64_t seed) {
  sat::SolverConfig cfg;
  if (index == 0) return cfg;  // canonical member: pure deterministic VSIDS
  Rng rng(seed ^ (0x9e3779b97f4a7c15ull * static_cast<std::uint64_t>(index)));
  cfg.seed = rng();
  static constexpr int kUnits[] = {50, 150, 300, 75};
  cfg.restart_unit = kUnits[(index - 1) % 4];
  cfg.random_branch_freq = 0.02;
  cfg.default_phase = (index % 2) == 1;
  return cfg;
}

/// An oracle pair fed to every member, recorded so the final key solve can
/// replay the exact same constraint set into a fresh solver.
struct RecordedPair {
  std::vector<bool> in;
  std::vector<bool> out;
  bool units_only = false;
};

// The cone-pruned engine with simulation-guided warm-up and the
// deterministic lockstep portfolio (see sat_attack.hpp for the contract).
SatAttackResult run_pruned(const Netlist& hybrid, ScanOracle& oracle,
                           const SatAttackOptions& opt) {
  SatAttackResult result;
  const Timer timer;
  const std::uint64_t queries_before = oracle.queries();
  const int S = std::max(1, opt.portfolio);
  result.stats.portfolio = S;

  std::vector<std::unique_ptr<Member>> members;
  for (int m = 0; m < S; ++m) {
    auto mem = std::make_unique<Member>();
    mem->index = m;
    mem->solver.set_config(member_config(m, opt.seed));
    EncodeOptions symbolic;
    symbolic.symbolic_keys = true;
    mem->copy_a = encode_comb(mem->solver, hybrid, symbolic);
    EncodeOptions opt_b = symbolic;
    opt_b.share_inputs = &mem->copy_a.input_vars;
    // Cone-of-influence sharing: only the key-tainted cone is duplicated
    // in the second copy; key-free logic is encoded once and the miter
    // skips outputs that cannot differ.
    opt_b.share_key_free_cells = &mem->copy_a.cell_var;
    mem->copy_b = encode_comb(mem->solver, hybrid, opt_b);
    mem->miter = add_miter(mem->solver, mem->copy_a, mem->copy_b);
    if (mem->copy_a.key_vars.empty()) {
      throw std::invalid_argument("run_sat_attack: netlist has no LUTs");
    }
    mem->enc = std::make_unique<DipEncoder>(
        mem->solver, hybrid,
        std::vector<const DipEncoder::KeyVars*>{&mem->copy_a.key_vars,
                                                &mem->copy_b.key_vars});
    members.push_back(std::move(mem));
  }
  Member& canon = *members[0];
  std::vector<RecordedPair> recorded;

  // Simulation-guided warm-up: flood the oracle with word-parallel random
  // patterns; outputs that fold to single key-row literals become free unit
  // constraints, and a bounded number of still-complex patterns are cone-
  // encoded to seed the CNF.
  if (opt.warmup_words > 0) {
    STTLOCK_SPAN("attack", "sat_warmup");
    const std::size_t W = static_cast<std::size_t>(opt.warmup_words);
    const std::size_t n_in = oracle.num_inputs();
    const std::size_t n_out = oracle.num_outputs();
    Rng rng(opt.seed ^ 0x57a57a11u);
    std::vector<std::uint64_t> stim(n_in * W);
    std::vector<std::uint64_t> resp(n_out * W);
    for (std::uint64_t& w : stim) w = rng();
    oracle.query_batch(W, stim, resp, opt.parallel);

    int encoded_pairs = 0;
    std::vector<bool> in(n_in);
    std::vector<bool> out(n_out);
    for (std::size_t w = 0; w < W; ++w) {
      for (int b = 0; b < 64; ++b) {
        for (std::size_t i = 0; i < n_in; ++i) {
          in[i] = (stim[i * W + w] >> b) & 1ull;
        }
        for (std::size_t o = 0; o < n_out; ++o) {
          out[o] = (resp[o * W + w] >> b) & 1ull;
        }
        const DipEncodeStats st = canon.enc->add_io_pair(in, out, true);
        for (int h = 1; h < S; ++h) members[h]->enc->add_io_pair(in, out, true);
        recorded.push_back({in, out, true});
        result.stats.key_rows_resolved += st.key_rows_resolved;
        if (st.complex_outputs > 0 && encoded_pairs < opt.warmup_pair_limit) {
          const DipEncodeStats full = canon.enc->add_io_pair(in, out, false);
          for (int h = 1; h < S; ++h) {
            members[h]->enc->add_io_pair(in, out, false);
          }
          recorded.push_back({in, out, false});
          result.stats.key_rows_resolved += full.key_rows_resolved;
          ++encoded_pairs;
        }
      }
    }
    result.stats.warmup_pairs_encoded = encoded_pairs;
  }
  result.stats.cnf_initial_clauses = canon.solver.clauses_added();

  const auto run_slice = [&](Member& m) {
    m.solver.set_conflict_budget(opt.slice_conflicts);
    m.solver.set_deadline(remaining_deadline(timer, opt));
    const sat::Lit assume[] = {sat::pos(m.miter)};
    m.verdict = m.solver.solve(assume);
  };

  // One miter solve in deterministic lockstep rounds. Every SAT verdict is
  // canonical (member 0); helpers join from round 2 and may only land the
  // terminal, model-free UNSAT verdict early.
  const auto solve_portfolio = [&]() -> sat::Result {
    for (auto& m : members) {
      m->verdict = sat::Result::kUnknown;
      m->parked = false;
    }
    const std::int64_t call_start = canon.solver.conflicts();
    bool first_round = true;
    std::vector<Member*> active;
    while (true) {
      active.clear();
      active.push_back(&canon);
      if (!first_round) {
        for (int h = 1; h < S; ++h) {
          if (!members[h]->parked) active.push_back(members[h].get());
        }
      }
      if (opt.parallel && active.size() > 1) {
        opt.parallel->run(active.size(),
                          [&](std::size_t i) { run_slice(*active[i]); });
      } else {
        for (Member* m : active) run_slice(*m);
      }
      // Adoption in member-index order keeps the winner deterministic for a
      // fixed portfolio size regardless of thread interleaving.
      for (const Member* m : active) {
        if (m->verdict == sat::Result::kUnsat) {
          result.stats.unsat_winner = m->index;
          return sat::Result::kUnsat;
        }
      }
      if (canon.verdict == sat::Result::kSat) return sat::Result::kSat;
      for (Member* m : active) {
        if (m->index > 0 && m->verdict == sat::Result::kSat) m->parked = true;
      }
      // The canonical member is still undecided: check its stop cause.
      if (canon.solver.last_stop() == sat::StopCause::kDeadline ||
          timer.seconds() > opt.time_limit_s) {
        result.outcome = attack::Outcome::kTimedOut;
        return sat::Result::kUnknown;
      }
      if (canon.solver.conflicts() - call_start >= opt.work_budget) {
        result.outcome = attack::Outcome::kBudgetExhausted;
        return sat::Result::kUnknown;
      }
      first_round = false;
    }
  };

  bool no_dip_left = false;
  while (true) {
    if (timer.seconds() > opt.time_limit_s) {
      result.outcome = attack::Outcome::kTimedOut;
      break;
    }
    if (result.iterations >= opt.max_iterations) {
      result.outcome = attack::Outcome::kBudgetExhausted;
      break;
    }
    STTLOCK_SPAN("sat-dip", "dip");
    sat::Result r;
    {
      STTLOCK_SPAN("sat-dip", "solve");
      r = solve_portfolio();
    }
    if (r == sat::Result::kUnknown) break;  // outcome set inside
    if (r == sat::Result::kUnsat) {
      no_dip_left = true;
      break;
    }

    // SAT: read the canonical DIP, query the chip, constrain every member.
    ++result.iterations;
    dip_counter().add(1);
    std::vector<bool> dip(canon.copy_a.input_vars.size());
    for (std::size_t i = 0; i < dip.size(); ++i) {
      dip[i] = canon.solver.value(canon.copy_a.input_vars[i]);
    }
    const std::vector<bool> response = oracle.query(dip);
    STTLOCK_SPAN("sat-dip", "encode");
    const DipEncodeStats st = canon.enc->add_io_pair(dip, response, false);
    for (int h = 1; h < S; ++h) {
      members[h]->enc->add_io_pair(dip, response, false);
    }
    recorded.push_back({dip, response, false});
    result.stats.key_rows_resolved += st.key_rows_resolved;
  }

  // Canonical telemetry (identical across thread counts).
  result.conflicts = canon.solver.conflicts();
  result.stats.decisions = canon.solver.decisions();
  result.stats.propagations = canon.solver.propagations();
  result.stats.learned = canon.solver.learned();
  result.stats.peak_clauses = canon.solver.peak_clauses();
  result.stats.cnf_dip_clauses =
      canon.solver.clauses_added() - result.stats.cnf_initial_clauses;
  result.stats.cnf_clauses_per_iter =
      result.iterations > 0 ? static_cast<double>(result.stats.cnf_dip_clauses) /
                                  result.iterations
                            : 0.0;

  if (no_dip_left) {
    // No distinguishing input remains: any key consistent with the observed
    // pairs is correct. Extract it from a fresh deterministic solver that
    // replays the recorded pairs against one symbolic copy, so the key
    // depends only on the (portfolio-independent) DIP set, never on the
    // helper members' internal state.
    sat::Solver fs;
    EncodeOptions symbolic;
    symbolic.symbolic_keys = true;
    const EncodedCircuit single = encode_comb(fs, hybrid, symbolic);
    DipEncoder fenc(fs, hybrid,
                    std::vector<const DipEncoder::KeyVars*>{&single.key_vars});
    for (const RecordedPair& p : recorded) {
      fenc.add_io_pair(p.in, p.out, p.units_only);
    }
    fs.set_conflict_budget(opt.work_budget);
    const sat::Result fr = fs.solve();
    result.conflicts += fs.conflicts();
    result.stats.decisions += fs.decisions();
    result.stats.propagations += fs.propagations();
    result.stats.learned += fs.learned();
    result.stats.peak_clauses =
        std::max(result.stats.peak_clauses, fs.peak_clauses());
    if (fr == sat::Result::kSat) {
      extract_key(fs, single.key_vars, result.key);
      result.outcome = attack::Outcome::kSolved;
    } else if (fr == sat::Result::kUnknown) {
      result.outcome = attack::Outcome::kBudgetExhausted;
    }
  }

  result.queries = oracle.queries() - queries_before;
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace

SatAttackResult run_sat_attack(const Netlist& hybrid, ScanOracle& oracle,
                               const SatAttackOptions& opt) {
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "sat");
  SatAttackResult result = opt.cone_pruning ? run_pruned(hybrid, oracle, opt)
                                            : run_naive(hybrid, oracle, opt);
  result.span_id = root ? root->id() : 0;
  return result;
}

SatAttackResult run_sat_attack(const Netlist& hybrid,
                               const Netlist& configured,
                               const SatAttackOptions& opt) {
  ScanOracle oracle(configured);
  return run_sat_attack(hybrid, oracle, opt);
}

}  // namespace stt
