#include "attack/sat_attack.hpp"

#include <stdexcept>

#include "attack/encode.hpp"
#include "util/timer.hpp"

namespace stt {

namespace {

// Pin an encoded copy's inputs to a concrete pattern and its outputs to the
// oracle's response.
void constrain_io(sat::Solver& solver, const EncodedCircuit& enc,
                  const std::vector<bool>& in, const std::vector<bool>& out) {
  for (std::size_t i = 0; i < enc.input_vars.size(); ++i) {
    solver.add_unit(in[i] ? sat::pos(enc.input_vars[i])
                          : sat::neg(enc.input_vars[i]));
  }
  for (std::size_t i = 0; i < enc.output_vars.size(); ++i) {
    solver.add_unit(out[i] ? sat::pos(enc.output_vars[i])
                           : sat::neg(enc.output_vars[i]));
  }
}

}  // namespace

SatAttackResult run_sat_attack(const Netlist& hybrid, ScanOracle& oracle,
                               const SatAttackOptions& opt) {
  SatAttackResult result;
  const Timer timer;
  const std::uint64_t queries_before = oracle.queries();

  sat::Solver solver;
  EncodeOptions symbolic;
  symbolic.symbolic_keys = true;
  const EncodedCircuit copy_a = encode_comb(solver, hybrid, symbolic);
  EncodeOptions opt_b = symbolic;
  opt_b.share_inputs = &copy_a.input_vars;
  const EncodedCircuit copy_b = encode_comb(solver, hybrid, opt_b);
  const sat::Var miter = add_miter(solver, copy_a, copy_b);

  if (copy_a.key_vars.empty()) {
    throw std::invalid_argument("run_sat_attack: netlist has no LUTs");
  }

  const sat::Lit assume_diff[] = {sat::pos(miter)};
  while (true) {
    if (timer.seconds() > opt.time_limit_s) {
      result.timed_out = true;
      break;
    }
    if (result.iterations >= opt.max_iterations) {
      result.budget_exhausted = true;
      break;
    }
    solver.set_conflict_budget(opt.conflict_budget);
    const sat::Result r = solver.solve(assume_diff);
    if (r == sat::Result::kUnknown) {
      result.budget_exhausted = true;
      break;
    }
    if (r == sat::Result::kUnsat) {
      // No distinguishing input remains: extract any consistent key.
      solver.set_conflict_budget(opt.conflict_budget);
      const sat::Result final_r = solver.solve();
      if (final_r != sat::Result::kSat) {
        result.budget_exhausted = (final_r == sat::Result::kUnknown);
        break;
      }
      for (const auto& [name, vars] : copy_a.key_vars) {
        std::uint64_t mask = 0;
        for (std::size_t row = 0; row < vars.size(); ++row) {
          if (solver.value(vars[row])) mask |= (1ull << row);
        }
        result.key[name] = mask;
      }
      result.success = true;
      break;
    }

    // SAT: read the DIP, query the chip, constrain both key sets.
    ++result.iterations;
    std::vector<bool> dip(copy_a.input_vars.size());
    for (std::size_t i = 0; i < dip.size(); ++i) {
      dip[i] = solver.value(copy_a.input_vars[i]);
    }
    const std::vector<bool> response = oracle.query(dip);

    EncodeOptions io_a;
    io_a.symbolic_keys = true;
    io_a.share_keys = &copy_a.key_vars;
    constrain_io(solver, encode_comb(solver, hybrid, io_a), dip, response);
    EncodeOptions io_b;
    io_b.symbolic_keys = true;
    io_b.share_keys = &copy_b.key_vars;
    constrain_io(solver, encode_comb(solver, hybrid, io_b), dip, response);
  }

  result.oracle_queries = oracle.queries() - queries_before;
  result.conflicts = solver.conflicts();
  result.seconds = timer.seconds();
  return result;
}

SatAttackResult run_sat_attack(const Netlist& hybrid,
                               const Netlist& configured,
                               const SatAttackOptions& opt) {
  ScanOracle oracle(configured);
  return run_sat_attack(hybrid, oracle, opt);
}

}  // namespace stt
