// Shared result core and options for every attack entry point.
//
// The seven attacks (`run_brute_force`, `run_ml_attack`, `run_sat_attack`,
// `run_sequential_sat_attack`, `run_sensitization_attack`,
// `run_guided_sensitization`, `run_dpa_attack`) historically grew their
// own drifting copies of seed / budget / time-limit options and
// success / timeout flags. This header is the convergence point:
//
//  * every `*Result` embeds `attack::AttackBase` — recovered key, oracle
//    query count, elapsed wall-clock, a four-way `Outcome`, and the obs
//    root-span id of the run;
//  * every `*Options` embeds `attack::CommonAttackOptions` — seed,
//    time limit, query/work budgets, and the trace toggle — with
//    per-attack constructors restoring each attack's historical defaults.
//
// `CommonAttackOptions` doubles as the request type of the registry
// (attack/registry.hpp): default-constructed fields are sentinels meaning
// "keep the attack's own default", applied via `overlay`.
#pragma once

#include <cstdint>
#include <string>

#include "core/hybrid.hpp"

namespace stt::attack {

/// How an attack run ended. Exactly one holds; `kAbandoned` covers every
/// in-model give-up that is neither a timeout nor a budget exhaustion
/// (stale random search, proven-unreachable rows, no target cell, ...).
enum class Outcome {
  kSolved,
  kTimedOut,
  kBudgetExhausted,
  kAbandoned,
};

constexpr const char* outcome_name(Outcome o) {
  switch (o) {
    case Outcome::kSolved: return "solved";
    case Outcome::kTimedOut: return "timed_out";
    case Outcome::kBudgetExhausted: return "budget_exhausted";
    case Outcome::kAbandoned: return "abandoned";
  }
  return "?";
}

/// Options shared by every attack. Attacks inherit this and their
/// constructors replace the sentinels below with the attack's historical
/// defaults, so `SatAttackOptions{}` still means what it always meant.
///
/// Semantics of the resolved fields inside an attack:
///  * `seed` — drives every random draw of the attack;
///  * `time_limit_s` — wall-clock cap; 0 expires immediately (pinned by
///    test), `kNoTimeLimit` never expires;
///  * `query_budget` — cap on oracle queries (patterns / cycles), for the
///    attacks whose cost model is query-bounded;
///  * `work_budget` — cap on the attack's dominant work unit: SAT
///    conflicts (sat/seq/guided-sens), key combinations (brute force),
///    annealing steps (ml).
struct CommonAttackOptions {
  static constexpr std::uint64_t kInheritSeed = ~0ull;
  static constexpr double kNoTimeLimit = 1e18;

  std::uint64_t seed = kInheritSeed;
  double time_limit_s = -1.0;      ///< < 0 = keep the attack's default
  std::uint64_t query_budget = 0;  ///< 0 = keep the attack's default
  std::int64_t work_budget = 0;    ///< 0 = keep the attack's default
  /// Open an obs root span ("attack" category) for the run. Spans are
  /// recorded only while the global TraceRecorder is active, so this stays
  /// true by default at zero cost.
  bool trace = true;

  /// Apply a registry request on top of this attack's defaults: sentinel
  /// fields in `req` leave the defaults untouched.
  void overlay(const CommonAttackOptions& req) {
    if (req.seed != kInheritSeed) seed = req.seed;
    if (req.time_limit_s >= 0) time_limit_s = req.time_limit_s;
    if (req.query_budget != 0) query_budget = req.query_budget;
    if (req.work_budget != 0) work_budget = req.work_budget;
    trace = req.trace;
  }
};

/// Result core embedded in every `*Result`. The attack implementations
/// set `outcome` exactly once at the end of the run; the boolean views
/// below are derived, so success/timeout can never disagree with it.
struct AttackBase {
  Outcome outcome = Outcome::kAbandoned;
  std::uint64_t queries = 0;  ///< oracle cost: scan patterns or cycles
  double elapsed_s = 0;
  LutKey key;  ///< recovered (possibly partial) configuration
  std::uint64_t span_id = 0;  ///< obs root span, 0 when not traced

  bool success() const { return outcome == Outcome::kSolved; }
  bool timed_out() const { return outcome == Outcome::kTimedOut; }
  bool budget_exhausted() const {
    return outcome == Outcome::kBudgetExhausted;
  }
};

}  // namespace stt::attack
