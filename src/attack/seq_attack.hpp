// Oracle-guided SAT attack WITHOUT scan access (bounded unrolling).
//
// Section IV-A.3: "it is a common practice that the scan architecture is
// disabled or locked before releasing the design to raise bar against
// different attacks". With no scan chain the attacker can only reset the
// chip, apply primary-input sequences and watch primary outputs, so the
// SAT attack must reason over F unrolled time frames. The unrolling
// multiplies formula size by F, and LUT outputs buried D flip-flops deep
// need F > D frames before they influence any observable output — this is
// precisely the D factor of Eqs. (1)-(3) made executable.
//
// The implementation unrolls inside the solver: frame f's flip-flop inputs
// are frame f-1's D-pin variables (frame 0 starts from the all-zero reset
// state), all frames of one copy share one key-variable set, and the miter
// spans every frame's primary outputs.
#pragma once

#include "attack/sat_attack.hpp"
#include "netlist/netlist.hpp"
#include "sim/simulator.hpp"

namespace stt {

/// Sequential oracle: reset to all-zero state, apply a PI sequence, return
/// the PO vector of every cycle. This is all a scan-locked chip reveals.
class SequenceOracle {
 public:
  explicit SequenceOracle(const Netlist& configured);

  /// `pi_seq[t]` is the PI vector at cycle t; result[t] the PO vector.
  std::vector<std::vector<bool>> query(
      const std::vector<std::vector<bool>>& pi_seq);

  /// Total cycles applied across all queries (the test-clock cost that
  /// Eqs. (1)-(3) bound).
  std::uint64_t cycles() const { return cycles_; }

 private:
  const Netlist* nl_;
  SequentialSimulator sim_;            ///< compiled once, reset per query
  std::vector<std::uint64_t> pi_buf_;  ///< reused per-cycle scratch
  std::vector<std::uint64_t> po_buf_;
  std::uint64_t cycles_ = 0;
};

struct SeqAttackOptions : attack::CommonAttackOptions {
  /// Historical defaults; `work_budget` is the SAT conflict cap per call.
  SeqAttackOptions() {
    seed = 0;
    time_limit_s = 60.0;
    work_budget = 4'000'000;
  }

  int frames = 8;  ///< unrolling depth (must exceed the circuit's D to win)
  int max_iterations = 256;
};

struct SeqAttackResult : attack::AttackBase {
  /// `success()` = no distinguishing sequence within `frames`; `key` is
  /// consistent with all observed sequences (when solved); `queries`
  /// counts oracle *cycles* — the test-clock cost Eqs. (1)-(3) bound.
  int iterations = 0;
};

/// Attack the hybrid netlist through a reset-and-run oracle. On success the
/// key reproduces the oracle on *every* input sequence of length <= frames;
/// longer-horizon behaviour should be validated separately (see tests).
SeqAttackResult run_sequential_sat_attack(const Netlist& hybrid,
                                          SequenceOracle& oracle,
                                          const SeqAttackOptions& opt = {});

SeqAttackResult run_sequential_sat_attack(const Netlist& hybrid,
                                          const Netlist& configured,
                                          const SeqAttackOptions& opt = {});

}  // namespace stt
