// Tseitin CNF encoding of netlists, with optional symbolic LUT keys.
//
// Attacks operate on the *scan view* of a sequential circuit: flip-flop
// outputs are controllable pseudo-inputs and flip-flop D pins observable
// pseudo-outputs, the standard assumption of oracle-guided attacks (the
// paper's Section IV-A.3 discusses exactly this scan dependence). The
// encoder therefore models the combinational fabric; inputs are PIs
// followed by flip-flop outputs, outputs are POs followed by D pins.
//
// LUT cells encode two ways:
//  * constant keys (configured netlist): one clause per truth-table row;
//  * symbolic keys (the foundry's view): one fresh variable per row, with
//    row-multiplexer clauses — these variables are what the SAT attack
//    solves for.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "attack/sat.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct EncodedCircuit {
  std::vector<sat::Var> input_vars;   ///< PIs then FF outputs
  std::vector<sat::Var> output_vars;  ///< POs then FF D pins
  /// Per-LUT key variables, one per truth-table row (symbolic mode only).
  std::map<std::string, std::vector<sat::Var>> key_vars;
  std::vector<sat::Var> cell_var;  ///< per cell, indexed by CellId
};

struct EncodeOptions {
  /// Encode LUT contents as free variables instead of constants.
  bool symbolic_keys = false;
  /// Reuse these input variables (miter construction). Must match the
  /// netlist's PI+FF count.
  const std::vector<sat::Var>* share_inputs = nullptr;
  /// Reuse these key variables (tying a fresh copy to an existing key).
  const std::map<std::string, std::vector<sat::Var>>* share_keys = nullptr;
  /// Cone-of-influence sharing for miters: reuse these cell variables (the
  /// `cell_var` of a prior encoding of the *same* netlist in the *same*
  /// solver) for every cell whose fanin cone contains no LUT. Key-free
  /// logic computes the same value in both miter copies, so it only needs
  /// one CNF encoding; only the key-tainted cone is duplicated. Requires
  /// share_inputs (the shared cells are functions of those input vars).
  const std::vector<sat::Var>* share_key_free_cells = nullptr;
};

EncodedCircuit encode_comb(sat::Solver& solver, const Netlist& nl,
                           const EncodeOptions& opt = {});

/// Adds a miter over the two encodings: returns a variable m with
/// m -> (outputs differ somewhere). Solving under assumption m searches for
/// a distinguishing input; the reverse implication is also added so a model
/// with m=false has all outputs equal.
sat::Var add_miter(sat::Solver& solver, const EncodedCircuit& a,
                   const EncodedCircuit& b);

/// Combinational (scan-view) equivalence of two configured netlists with
/// identical interfaces. `proven` is set false if the conflict budget ran
/// out (result then meaningless).
bool comb_equivalent(const Netlist& a, const Netlist& b,
                     std::int64_t conflict_budget = -1,
                     bool* proven = nullptr);

}  // namespace stt
