// Brute-force attack (Section IV-A.3): enumerate candidate functions per
// missing gate, test each joint assignment against oracle responses.
//
// The candidate set per LUT is the "meaningful gate" space the paper
// describes (the six standard gates at the LUT's fan-in; BUF/NOT at fan-in
// 1), optionally the full 2^2^k function space. The enumeration cost is the
// executable counterpart of Eq. (3)'s P^M term; the measured combination
// count is compared against the estimator in the validation bench.
#pragma once

#include "attack/common.hpp"
#include "attack/oracle.hpp"
#include "core/hybrid.hpp"
#include "netlist/netlist.hpp"
#include "util/bignum.hpp"

namespace stt {

struct BruteForceOptions : attack::CommonAttackOptions {
  /// Historical defaults; `work_budget` caps joint key combinations tried.
  BruteForceOptions() {
    seed = 11;
    time_limit_s = kNoTimeLimit;
    work_budget = 2'000'000;
  }

  /// Candidate space: true = standard-gate candidates; false = all masks.
  bool standard_candidates_only = true;
  /// Optional explicit candidate set for 2-input LUTs (e.g. the camouflage
  /// set {NAND, NOR, XNOR}); overrides the flags above at fan-in 2.
  const std::vector<std::uint64_t>* candidates_2in = nullptr;
  /// Random scan patterns pre-queried from the oracle for screening.
  int screening_patterns = 192;
};

struct BruteForceResult : attack::AttackBase {
  std::uint64_t combinations_tried = 0;
  BigNum search_space;  ///< product of per-LUT candidate counts
};

BruteForceResult run_brute_force(const Netlist& hybrid, ScanOracle& oracle,
                                 const BruteForceOptions& opt = {});

}  // namespace stt
