#include "attack/seq_attack.hpp"

#include <optional>
#include <stdexcept>

#include "attack/encode.hpp"
#include "obs/obs.hpp"
#include "sim/simulator.hpp"
#include "util/timer.hpp"

namespace stt {

SequenceOracle::SequenceOracle(const Netlist& configured)
    : nl_(&configured),
      sim_(configured),
      pi_buf_(configured.inputs().size(), 0),
      po_buf_(configured.outputs().size(), 0) {}

std::vector<std::vector<bool>> SequenceOracle::query(
    const std::vector<std::vector<bool>>& pi_seq) {
  sim_.reset(false);
  std::vector<std::vector<bool>> result;
  result.reserve(pi_seq.size());
  const std::size_t n_pi = nl_->inputs().size();
  for (const auto& pi : pi_seq) {
    if (pi.size() != n_pi) {
      throw std::invalid_argument("SequenceOracle: PI vector size mismatch");
    }
    for (std::size_t i = 0; i < n_pi; ++i) pi_buf_[i] = pi[i] ? ~0ull : 0ull;
    sim_.step_into(pi_buf_, po_buf_);
    std::vector<bool> bits(po_buf_.size());
    for (std::size_t o = 0; o < po_buf_.size(); ++o) bits[o] = po_buf_[o] & 1ull;
    result.push_back(std::move(bits));
    ++cycles_;
  }
  return result;
}

namespace {

struct UnrolledCopy {
  std::vector<std::vector<sat::Var>> pi_vars;  ///< [frame][pi]
  std::vector<std::vector<sat::Var>> po_vars;  ///< [frame][po]
  std::map<std::string, std::vector<sat::Var>> key_vars;
};

// Unroll `frames` copies of the combinational fabric inside the solver.
// Frame 0 starts from the all-zero state; frame f's state variables are
// frame f-1's D-pin variables. All frames share one key-variable set.
UnrolledCopy encode_unrolled(
    sat::Solver& solver, const Netlist& nl, int frames, bool symbolic_keys,
    const std::vector<std::vector<sat::Var>>* share_pis,
    const std::map<std::string, std::vector<sat::Var>>* share_keys) {
  UnrolledCopy copy;
  const std::size_t n_pi = nl.inputs().size();
  const std::size_t n_po = nl.outputs().size();
  const std::size_t n_ff = nl.dffs().size();

  std::vector<sat::Var> state(n_ff);
  for (std::size_t j = 0; j < n_ff; ++j) {
    state[j] = solver.new_var();
    solver.add_unit(sat::neg(state[j]));  // reset state
  }

  for (int f = 0; f < frames; ++f) {
    std::vector<sat::Var> inputs;
    inputs.reserve(n_pi + n_ff);
    std::vector<sat::Var> pis;
    if (share_pis) {
      pis = (*share_pis)[f];
    } else {
      for (std::size_t i = 0; i < n_pi; ++i) pis.push_back(solver.new_var());
    }
    inputs.insert(inputs.end(), pis.begin(), pis.end());
    inputs.insert(inputs.end(), state.begin(), state.end());

    EncodeOptions opt;
    opt.symbolic_keys = symbolic_keys;
    opt.share_inputs = &inputs;
    if (symbolic_keys) {
      if (f == 0) {
        opt.share_keys = share_keys;  // may be null: fresh keys
      } else {
        opt.share_keys = &copy.key_vars;
      }
    }
    const EncodedCircuit enc = encode_comb(solver, nl, opt);
    if (f == 0 && symbolic_keys) copy.key_vars = enc.key_vars;

    copy.pi_vars.push_back(std::move(pis));
    copy.po_vars.emplace_back(enc.output_vars.begin(),
                              enc.output_vars.begin() + n_po);
    state.assign(enc.output_vars.begin() + n_po, enc.output_vars.end());
  }
  return copy;
}

}  // namespace

SeqAttackResult run_sequential_sat_attack(const Netlist& hybrid,
                                          SequenceOracle& oracle,
                                          const SeqAttackOptions& opt) {
  SeqAttackResult result;
  const Timer timer;
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "seq_sat");
  result.span_id = root ? root->id() : 0;

  sat::Solver solver;
  const UnrolledCopy a =
      encode_unrolled(solver, hybrid, opt.frames, true, nullptr, nullptr);
  const UnrolledCopy b =
      encode_unrolled(solver, hybrid, opt.frames, true, &a.pi_vars, nullptr);
  if (a.key_vars.empty()) {
    throw std::invalid_argument("run_sequential_sat_attack: no LUTs");
  }

  // Miter over every frame's primary outputs.
  const sat::Var m = solver.new_var();
  std::vector<sat::Lit> any_diff{sat::neg(m)};
  for (int f = 0; f < opt.frames; ++f) {
    for (std::size_t o = 0; o < a.po_vars[f].size(); ++o) {
      const sat::Var d = solver.new_var();
      const sat::Var x = a.po_vars[f][o];
      const sat::Var y = b.po_vars[f][o];
      solver.add_ternary(sat::neg(d), sat::pos(x), sat::pos(y));
      solver.add_ternary(sat::neg(d), sat::neg(x), sat::neg(y));
      solver.add_ternary(sat::pos(d), sat::neg(x), sat::pos(y));
      solver.add_ternary(sat::pos(d), sat::pos(x), sat::neg(y));
      any_diff.push_back(sat::pos(d));
    }
  }
  solver.add_clause(any_diff);

  const sat::Lit assume_diff[] = {sat::pos(m)};
  const std::size_t n_pi = hybrid.inputs().size();

  while (true) {
    if (timer.seconds() > opt.time_limit_s) {
      result.outcome = attack::Outcome::kTimedOut;
      break;
    }
    if (result.iterations >= opt.max_iterations) {
      result.outcome = attack::Outcome::kBudgetExhausted;
      break;
    }
    solver.set_conflict_budget(opt.work_budget);
    const sat::Result r = solver.solve(assume_diff);
    if (r == sat::Result::kUnknown) {
      result.outcome = attack::Outcome::kBudgetExhausted;
      break;
    }
    if (r == sat::Result::kUnsat) {
      solver.set_conflict_budget(opt.work_budget);
      const sat::Result final_r = solver.solve();
      if (final_r != sat::Result::kSat) {
        result.outcome = final_r == sat::Result::kUnknown
                             ? attack::Outcome::kBudgetExhausted
                             : attack::Outcome::kAbandoned;
        break;
      }
      for (const auto& [name, vars] : a.key_vars) {
        std::uint64_t mask = 0;
        for (std::size_t row = 0; row < vars.size(); ++row) {
          if (solver.value(vars[row])) mask |= (1ull << row);
        }
        result.key[name] = mask;
      }
      result.outcome = attack::Outcome::kSolved;
      break;
    }

    // Distinguishing input *sequence*.
    ++result.iterations;
    STTLOCK_SPAN("sat-dip", "seq_dip");
    std::vector<std::vector<bool>> dis(opt.frames,
                                       std::vector<bool>(n_pi, false));
    for (int f = 0; f < opt.frames; ++f) {
      for (std::size_t i = 0; i < n_pi; ++i) {
        dis[f][i] = solver.value(a.pi_vars[f][i]);
      }
    }
    const auto responses = oracle.query(dis);

    // Constrain both key sets with the observed trace.
    for (const auto* copy : {&a, &b}) {
      const UnrolledCopy io = encode_unrolled(solver, hybrid, opt.frames,
                                              true, nullptr, &copy->key_vars);
      for (int f = 0; f < opt.frames; ++f) {
        for (std::size_t i = 0; i < n_pi; ++i) {
          solver.add_unit(dis[f][i] ? sat::pos(io.pi_vars[f][i])
                                    : sat::neg(io.pi_vars[f][i]));
        }
        for (std::size_t o = 0; o < io.po_vars[f].size(); ++o) {
          solver.add_unit(responses[f][o] ? sat::pos(io.po_vars[f][o])
                                          : sat::neg(io.po_vars[f][o]));
        }
      }
    }
  }

  result.queries = oracle.cycles();
  result.elapsed_s = timer.seconds();
  return result;
}

SeqAttackResult run_sequential_sat_attack(const Netlist& hybrid,
                                          const Netlist& configured,
                                          const SeqAttackOptions& opt) {
  SequenceOracle oracle(configured);
  return run_sequential_sat_attack(hybrid, oracle, opt);
}

}  // namespace stt
