#include "attack/guided_sens.hpp"

#include <algorithm>
#include <optional>
#include <set>

#include "attack/encode.hpp"
#include "sim/partial_eval.hpp"
#include "attack/sat.hpp"
#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace stt {

namespace {

// Abstract view for pattern derivation: every unresolved LUT becomes a
// buffer driven by a fresh "free" primary input (its value is an unknown
// the attacker can neither control nor rely on); resolved LUTs keep their
// recovered masks. Returns the abstract netlist plus, per original LUT id,
// the name of its free input.
struct AbstractView {
  Netlist nl;
  std::unordered_map<CellId, std::string> free_input_of;  ///< by original id
};

AbstractView make_abstract(const Netlist& hybrid, const LutKnowledgeMap& luts) {
  AbstractView view;
  view.nl = hybrid;
  int counter = 0;
  for (const auto& [id, st] : luts) {
    if (st.complete()) {
      Cell& c = view.nl.cell(id);
      c.lut_mask = st.value_mask & full_mask(c.fanin_count());
      continue;
    }
    const std::string free_name = "__free" + std::to_string(counter++) +
                                  "_" + std::string(hybrid.cell(id).name);
    const CellId free_pi = view.nl.add_input(free_name);
    // Sever the LUT from its drivers; it now buffers the free unknown.
    view.nl.connect(id, {free_pi});
    Cell& c = view.nl.cell(id);
    c.kind = CellKind::kBuf;
    c.lut_mask = 0;
    view.free_input_of[id] = free_name;
  }
  view.nl.finalize();
  return view;
}

}  // namespace

GuidedSensResult run_guided_sensitization(const Netlist& hybrid,
                                          ScanOracle& oracle,
                                          const GuidedSensOptions& opt) {
  GuidedSensResult result;
  const Timer timer;
  std::optional<obs::Span> root;
  if (opt.trace) root.emplace("attack", "guided_sens");
  result.span_id = root ? root->id() : 0;

  LutKnowledgeMap luts;
  std::vector<CellId> lut_ids;
  for (CellId id = 0; id < hybrid.size(); ++id) {
    const Cell& c = hybrid.cell(id);
    if (c.kind != CellKind::kLut) continue;
    LutKnowledge st;
    st.rows = num_rows(c.fanin_count());
    luts.emplace(id, st);
    lut_ids.push_back(id);
    result.rows_total += static_cast<int>(st.rows);
  }
  result.luts_total = static_cast<int>(lut_ids.size());
  if (lut_ids.empty()) {
    result.outcome = attack::Outcome::kSolved;
    result.elapsed_s = timer.seconds();
    return result;
  }

  const std::size_t n_real_in = oracle.num_inputs();
  const std::size_t n_po = hybrid.outputs().size();
  const std::uint64_t start_queries = oracle.queries();

  // A row becomes permanently dead when the SAT query proves no
  // justify-and-propagate pattern exists *under the current knowledge*;
  // rows are retried whenever knowledge grows, so deadness is tracked per
  // pass.
  bool progress = true;
  bool hit_time_limit = false;
  std::set<std::pair<CellId, std::uint32_t>> proven_unreachable;
  while (progress && result.rows_resolved < result.rows_total &&
         !hit_time_limit) {
    progress = false;
    const AbstractView view = make_abstract(hybrid, luts);
    const PartialEvaluator evaluator(hybrid, luts);

    for (const CellId lut : lut_ids) {
      LutKnowledge& st = luts[lut];
      if (st.complete()) continue;
      const Cell& target = hybrid.cell(lut);

      // Justification through another unresolved LUT is hopeless; postpone
      // this LUT until its drivers resolve.
      bool driver_unknown = false;
      for (const CellId f : target.fanins) {
        const auto it = luts.find(f);
        if (it != luts.end() && !it->second.complete()) driver_unknown = true;
      }
      if (driver_unknown) continue;

      for (std::uint32_t row = 0; row < st.rows; ++row) {
        if (st.known_mask & (1ull << row)) continue;
        if (timer.seconds() >= opt.time_limit_s) {
          hit_time_limit = true;
          break;
        }

        // Fresh solver per row: two copies of the abstract view, sharing
        // every input except the target's own free variable.
        sat::Solver solver;
        const EncodedCircuit c0 = encode_comb(solver, view.nl);
        std::vector<sat::Var> inputs1 = c0.input_vars;
        // Locate the target's free-input slot.
        const CellId free_cell =
            view.nl.find(view.free_input_of.at(lut));
        std::size_t free_slot = 0;
        {
          const auto ins = view.nl.inputs();
          free_slot = static_cast<std::size_t>(
              std::find(ins.begin(), ins.end(), free_cell) - ins.begin());
        }
        inputs1[free_slot] = solver.new_var();
        EncodeOptions share;
        share.share_inputs = &inputs1;
        const EncodedCircuit c1 = encode_comb(solver, view.nl, share);
        solver.add_unit(sat::neg(c0.input_vars[free_slot]));  // z = 0
        solver.add_unit(sat::pos(inputs1[free_slot]));        // z = 1

        // Justify the row on the target's original drivers (copy 0; the
        // two copies agree upstream by construction).
        for (int i = 0; i < target.fanin_count(); ++i) {
          const CellId driver = target.fanins[i];
          // Driver cells exist identically in the abstract view.
          const sat::Var v = c0.cell_var[driver];
          solver.add_unit((row & (1u << i)) ? sat::pos(v) : sat::neg(v));
        }

        // Some observable must differ between z=0 and z=1.
        std::vector<sat::Lit> any_diff;
        for (std::size_t o = 0; o < c0.output_vars.size(); ++o) {
          const sat::Var d = solver.new_var();
          const sat::Var x = c0.output_vars[o];
          const sat::Var y = c1.output_vars[o];
          solver.add_ternary(sat::neg(d), sat::pos(x), sat::pos(y));
          solver.add_ternary(sat::neg(d), sat::neg(x), sat::neg(y));
          solver.add_ternary(sat::pos(d), sat::neg(x), sat::pos(y));
          solver.add_ternary(sat::pos(d), sat::pos(x), sat::neg(y));
          any_diff.push_back(sat::pos(d));
        }
        solver.add_clause(any_diff);

        bool row_done = false;
        for (int witness = 0;
             witness < opt.max_witnesses_per_row && !row_done; ++witness) {
          solver.set_conflict_budget(opt.work_budget);
          const sat::Result sat_result = solver.solve();
          if (sat_result == sat::Result::kUnsat) {
            if (witness == 0) proven_unreachable.insert({lut, row});
            break;
          }
          if (sat_result == sat::Result::kUnknown) break;

          // Candidate scan pattern: the real inputs of copy 0. In the
          // abstract view the encoder's input order is [original PIs,
          // free PIs, FFs]; the free block must be skipped.
          const std::size_t n_pi = hybrid.inputs().size();
          const std::size_t n_free = view.nl.inputs().size() - n_pi;
          std::vector<bool> pattern(n_real_in);
          for (std::size_t i = 0; i < n_pi; ++i) {
            pattern[i] = solver.value(c0.input_vars[i]);
          }
          for (std::size_t j = n_pi; j < n_real_in; ++j) {
            pattern[j] = solver.value(c0.input_vars[j + n_free]);
          }
          // Conservative validation: justification and propagation must
          // hold for *every* value of the other unknowns, not just the
          // SAT witness's choice.
          std::vector<Tri> tri_in(n_real_in);
          for (std::size_t i = 0; i < n_real_in; ++i) {
            tri_in[i] = tri_from_bool(pattern[i]);
          }
          const auto base = evaluator.eval(tri_in, kNullCell, Tri::kX);
          bool valid = true;
          for (int i = 0; i < target.fanin_count() && valid; ++i) {
            const Tri v = base[target.fanins[i]];
            valid = (v != Tri::kX) &&
                    ((v == Tri::kOne) == ((row & (1u << i)) != 0));
          }
          int observable_index = -1;
          Tri v1_at_obs = Tri::kX;
          if (valid) {
            const auto w0 = evaluator.eval(tri_in, lut, Tri::kZero);
            const auto w1 = evaluator.eval(tri_in, lut, Tri::kOne);
            for (std::size_t o = 0; o < oracle.num_outputs(); ++o) {
              const CellId cell =
                  o < n_po ? hybrid.outputs()[o]
                           : hybrid.cell(hybrid.dffs()[o - n_po]).fanins.at(0);
              if (w0[cell] != Tri::kX && w1[cell] != Tri::kX &&
                  w0[cell] != w1[cell]) {
                observable_index = static_cast<int>(o);
                v1_at_obs = w1[cell];
                break;
              }
            }
            valid = observable_index >= 0;
          }
          if (!valid) {
            // Block this witness's real-input assignment and re-derive.
            std::vector<sat::Lit> block;
            for (std::size_t i = 0; i < n_real_in; ++i) {
              const std::size_t slot = i < n_pi ? i : i + n_free;
              block.push_back(pattern[i] ? sat::neg(c0.input_vars[slot])
                                         : sat::pos(c0.input_vars[slot]));
            }
            solver.add_clause(block);
            continue;
          }

          const auto response = oracle.query(pattern);
          const bool row_value =
              tri_from_bool(response[observable_index]) == v1_at_obs;
          st.known_mask |= (1ull << row);
          if (row_value) st.value_mask |= (1ull << row);
          ++result.rows_resolved;
          progress = true;
          row_done = true;
        }
      }
      if (st.complete()) ++result.luts_resolved;
    }
  }

  result.rows_proven_unreachable =
      static_cast<int>(proven_unreachable.size());
  result.queries = oracle.queries() - start_queries;
  if (result.rows_resolved == result.rows_total) {
    result.outcome = attack::Outcome::kSolved;
  } else if (hit_time_limit) {
    result.outcome = attack::Outcome::kTimedOut;
  } else {
    result.outcome = attack::Outcome::kAbandoned;  // no derivable row left
  }
  for (const CellId lut : lut_ids) {
    result.key[std::string(hybrid.cell(lut).name)] = luts[lut].value_mask;
  }
  result.elapsed_s = timer.seconds();
  return result;
}

}  // namespace stt
