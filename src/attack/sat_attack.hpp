// Oracle-guided SAT attack (Subramanyan et al. style) against hybrid
// STT-CMOS netlists.
//
// The attacker holds the foundry view (structure known, LUT contents
// unknown) and a configured chip with scan access. Each iteration solves a
// miter of two key-differentiated copies for a distinguishing input
// pattern (DIP), queries the oracle, and constrains both key sets with the
// observed I/O pair; when no DIP remains, any satisfying key is
// functionally correct on the scan view.
//
// Engine (fast path, `cone_pruning`): the miter is encoded once; every
// queried (dip, response) pair is then constant-folded in the attacker's
// view and only the unresolved key cones emit clauses (attack/dip_encode.*),
// so per-iteration CNF growth tracks the key cone instead of the circuit.
// Before the DIP loop a simulation-guided warm-up floods the oracle with
// cheap word-parallel random patterns (CompiledSim under ScanOracle::
// query_batch) and harvests the key rows that fold to single literals as
// unit constraints. An optional portfolio of `portfolio` differently-
// configured solvers races the hard UNSAT proofs in deterministic lockstep
// conflict slices:
//  * every SAT verdict (each DIP) comes from member 0 only, so the DIP
//    sequence — and with it iterations, queries, and the recovered key —
//    is identical for any portfolio size and any thread count;
//  * helper members join from the second slice of a call onward and can
//    only contribute a (model-free) UNSAT verdict earlier than member 0;
//  * the final key is extracted by a fresh deterministic solver replaying
//    the recorded I/O pairs against a single symbolic copy.
// The only S-dependent corner is a conflict-budget exhaustion that a larger
// portfolio turns into a completed UNSAT proof — a strictly stronger
// attacker, reported via `stats.unsat_winner`.
//
// This is the strongest practical attack the paper argues against; the
// reproduction uses it to *validate* the paper's security ordering:
// independent selection falls in a handful of iterations, while dependent
// and parametric-aware selections blow up the iteration count / conflict
// budget (see bench/bench_attack_validation, bench/bench_sat_perf).
#pragma once

#include "attack/common.hpp"
#include "attack/oracle.hpp"
#include "core/hybrid.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct SatAttackOptions : attack::CommonAttackOptions {
  /// Historical defaults: `time_limit_s` is a wall-clock cap honored
  /// *inside* solver calls via the solver deadline (checked every 256
  /// conflicts); `work_budget` is the SAT conflict cap per solver call —
  /// exceeding it aborts the attack with budget_exhausted (the defender
  /// "wins on resources"), counted on the canonical member only so the cap
  /// is portfolio-size independent; `seed` drives warm-up stimulus and
  /// helper-member diversification.
  SatAttackOptions() {
    seed = 0x5a7a11cull;
    time_limit_s = 60.0;
    work_budget = 4'000'000;
  }

  int max_iterations = 512;

  /// Cone-pruned constant-folded DIP encoding (the fast engine). Off =
  /// the legacy two-full-copies-per-DIP encoding, kept as the benchmark
  /// baseline; the legacy path ignores warm-up and portfolio.
  bool cone_pruning = true;
  /// Simulation-guided warm-up: 64*warmup_words random oracle patterns are
  /// folded for free key bits before the DIP loop. 0 disables.
  int warmup_words = 4;
  /// Of the warm-up patterns, at most this many with unresolved complex
  /// outputs are fully cone-encoded into the CNF (the rest only contribute
  /// their unit constraints).
  int warmup_pair_limit = 8;
  /// Solver configurations racing the UNSAT proofs (>=1).
  int portfolio = 1;
  /// Lockstep slice granularity (conflicts per member per round).
  std::int64_t slice_conflicts = 20'000;
  /// Fans portfolio slices and the warm-up batch across threads; results
  /// are bit-identical with or without it. Must not be a pool the caller
  /// is itself running inside.
  ParallelFor* parallel = nullptr;
};

/// Deterministic solver telemetry: canonical member (member 0) plus the
/// final key-extraction solve. Identical across thread counts; identical
/// across portfolio sizes up to the terminal UNSAT race (see unsat_winner).
struct SatAttackStats {
  std::int64_t decisions = 0;
  std::int64_t propagations = 0;
  std::int64_t learned = 0;       ///< clauses learnt from conflicts
  std::int64_t peak_clauses = 0;  ///< live-clause high-water mark
  /// Clauses submitted to the canonical solver: at miter construction +
  /// warm-up, and added by the DIP loop (the per-iteration CNF delta).
  std::int64_t cnf_initial_clauses = 0;
  std::int64_t cnf_dip_clauses = 0;
  double cnf_clauses_per_iter = 0;  ///< cnf_dip_clauses / iterations
  int key_rows_resolved = 0;        ///< unit key bits from folding
  int warmup_pairs_encoded = 0;     ///< complex warm-up pairs in the CNF
  int portfolio = 1;
  int unsat_winner = -1;  ///< member that proved UNSAT (-1: none needed)
};

struct SatAttackResult : attack::AttackBase {
  int iterations = 0;          ///< DIPs generated
  std::int64_t conflicts = 0;  ///< canonical member + key extraction
  SatAttackStats stats;
};

/// `hybrid` is the attacker's netlist (LUT masks ignored / treated unknown);
/// `oracle` wraps the configured chip.
SatAttackResult run_sat_attack(const Netlist& hybrid, ScanOracle& oracle,
                               const SatAttackOptions& opt = {});

/// Convenience: build the oracle from the configured netlist.
SatAttackResult run_sat_attack(const Netlist& hybrid,
                               const Netlist& configured,
                               const SatAttackOptions& opt = {});

}  // namespace stt
