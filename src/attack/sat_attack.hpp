// Oracle-guided SAT attack (Subramanyan et al. style) against hybrid
// STT-CMOS netlists.
//
// The attacker holds the foundry view (structure known, LUT contents
// unknown) and a configured chip with scan access. Each iteration solves a
// miter of two key-differentiated copies for a distinguishing input
// pattern (DIP), queries the oracle, and constrains both key sets with the
// observed I/O pair; when no DIP remains, any satisfying key is
// functionally correct on the scan view.
//
// This is the strongest practical attack the paper argues against; the
// reproduction uses it to *validate* the paper's security ordering:
// independent selection falls in a handful of iterations, while dependent
// and parametric-aware selections blow up the iteration count / conflict
// budget (see bench/bench_attack_validation).
#pragma once

#include "attack/oracle.hpp"
#include "core/hybrid.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct SatAttackOptions {
  int max_iterations = 512;
  double time_limit_s = 60.0;
  /// SAT conflict cap per solver call; exceeding it aborts the attack with
  /// budget_exhausted (the defender "wins on resources").
  std::int64_t conflict_budget = 4'000'000;
};

struct SatAttackResult {
  bool success = false;
  bool timed_out = false;
  bool budget_exhausted = false;
  int iterations = 0;  ///< DIPs generated
  std::uint64_t oracle_queries = 0;
  std::int64_t conflicts = 0;
  double seconds = 0;
  LutKey key;  ///< recovered configuration (valid when success)
};

/// `hybrid` is the attacker's netlist (LUT masks ignored / treated unknown);
/// `oracle` wraps the configured chip.
SatAttackResult run_sat_attack(const Netlist& hybrid, ScanOracle& oracle,
                               const SatAttackOptions& opt = {});

/// Convenience: build the oracle from the configured netlist.
SatAttackResult run_sat_attack(const Netlist& hybrid,
                               const Netlist& configured,
                               const SatAttackOptions& opt = {});

}  // namespace stt
