// Sensitization (testing) attack — the paper's Section IV-A.1 adversary.
//
// "an attacker can use a testing technique to justify and propagate the
//  output of missing gates to some observation points. With this effort,
//  the attacker can develop a partial or complete truth table for each
//  missing gate and then guess the functionality."
//
// Implementation: random scan patterns justify LUT input rows; a row value
// is deduced when forcing the LUT output to 0 vs 1 provably changes some
// observable bit (three-valued propagation through the still-unknown LUTs,
// which conservatively block observation — exactly why dependent selection
// defeats this attack). Fully resolved LUTs become known logic, helping to
// resolve the rest. The pattern counter is the attack cost to compare with
// Eq. (1).
#pragma once

#include "attack/common.hpp"
#include "attack/oracle.hpp"
#include "core/hybrid.hpp"
#include "netlist/netlist.hpp"

namespace stt {

struct SensitizationOptions : attack::CommonAttackOptions {
  /// Historical defaults; `query_budget` caps oracle scan patterns.
  SensitizationOptions() {
    seed = 7;
    time_limit_s = kNoTimeLimit;
    query_budget = 50'000;
  }
};

struct SensitizationResult : attack::AttackBase {
  /// `success()` = every LUT fully resolved; `key` holds resolved rows
  /// (unresolved rows left 0); `queries` counts scan patterns applied.
  int luts_total = 0;
  int luts_resolved = 0;
  int rows_total = 0;
  int rows_resolved = 0;
};

SensitizationResult run_sensitization_attack(
    const Netlist& hybrid, ScanOracle& oracle,
    const SensitizationOptions& opt = {});

}  // namespace stt
