// Shared CLI options layer for the sttlock subcommands.
//
// Every subcommand used to re-declare the cross-cutting options (--jobs,
// --trace, --metrics, --sim-isa, --quiet, --json) with drifting help text.
// `CommonOptions` registers a chosen subset once with one canonical wording
// per option, and `load` applies the cross-cutting side effects (eager
// --sim-isa resolution) and snapshots the parsed values:
//
//   ArgParser p;
//   cli::CommonOptions common(p, cli::kJobs | cli::kObs | cli::kSimIsa);
//   p.add_option("--in", "input netlist");   // subcommand-specific options
//   p.parse(args);
//   common.load(p);
//   ThreadPool pool(common.jobs() == 0 ? 0u : common.jobs());
//
// Behavior (names, defaults, parsing) is identical to the per-subcommand
// declarations it replaces — only the --help wording is unified.
#pragma once

#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "util/args.hpp"

namespace stt::cli {

/// Option groups a subcommand can compose. `kObs` is the usual
/// --trace/--metrics pair.
enum CommonGroup : unsigned {
  kJobs = 1u << 0,     ///< --jobs N (0 = all hardware threads), default 1
  kTrace = 1u << 1,    ///< --trace <chrome-trace.json>
  kMetrics = 1u << 2,  ///< --metrics <metrics-delta.json>
  kSimIsa = 1u << 3,   ///< --sim-isa scalar|avx2|avx512|auto, eager resolve
  kQuiet = 1u << 4,    ///< --quiet: suppress the text summary on stdout
  kJson = 1u << 5,     ///< --json: print the JSON report on stdout
  kObs = kTrace | kMetrics,
};

class CommonOptions {
 public:
  /// Registers the selected groups' options into `parser` (canonical names,
  /// docs and defaults). Register subcommand-specific options before or
  /// after — ArgParser help output is sorted by name either way.
  CommonOptions(ArgParser& parser, unsigned groups);

  /// Call once after `parser.parse(...)`: applies --sim-isa eagerly (bad
  /// spellings fail before any work starts) and snapshots the values below.
  void load(const ArgParser& parser);

  unsigned jobs() const { return jobs_; }
  const std::string& trace_path() const { return trace_; }
  const std::string& metrics_path() const { return metrics_; }
  bool quiet() const { return quiet_; }
  bool json() const { return json_; }

 private:
  unsigned groups_;
  unsigned jobs_ = 1;
  std::string trace_;
  std::string metrics_;
  bool quiet_ = false;
  bool json_ = false;
};

/// Write `content` to `path`, throwing std::runtime_error on failure.
void write_text_file(const std::string& path, const std::string& content);

/// Scoped --trace/--metrics capture: starts the global TraceRecorder and
/// baselines the metrics registry on construction; finish() writes the
/// Chrome trace and the metrics delta. Either path may be empty.
class ObsCapture {
 public:
  ObsCapture(std::string trace_path, std::string metrics_path);
  /// Capture whatever the subcommand's CommonOptions selected (paths are
  /// empty when the kTrace/kMetrics groups were not composed in).
  explicit ObsCapture(const CommonOptions& common)
      : ObsCapture(common.trace_path(), common.metrics_path()) {}

  void finish();

 private:
  std::string trace_path_;
  std::string metrics_path_;
  obs::MetricsSnapshot before_;
};

}  // namespace stt::cli
