#include "cli/options.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "sim/isa.hpp"

namespace stt::cli {

CommonOptions::CommonOptions(ArgParser& parser, unsigned groups)
    : groups_(groups) {
  if (groups_ & kJobs) {
    parser.add_option("--jobs", "worker threads (0 = all hardware threads)",
                      "1");
  }
  if (groups_ & kTrace) {
    parser.add_option("--trace",
                      "write a Chrome trace (chrome://tracing JSON) here", "");
  }
  if (groups_ & kMetrics) {
    parser.add_option("--metrics",
                      "write the run's metrics delta (JSON) here", "");
  }
  if (groups_ & kSimIsa) {
    // Empty leaves the engine's lazy resolution (STTLOCK_SIM_ISA env, then
    // CPUID) in charge; any other value — including "auto" — resolves
    // eagerly so bad spellings fail before work starts.
    parser.add_option("--sim-isa",
                      "simulation kernel: scalar|avx2|avx512|auto "
                      "(default: STTLOCK_SIM_ISA env, then CPUID probe)",
                      "");
  }
  if (groups_ & kQuiet) {
    parser.add_flag("--quiet", "suppress the text summary on stdout");
  }
  if (groups_ & kJson) {
    parser.add_flag("--json", "print the JSON report on stdout");
  }
}

void CommonOptions::load(const ArgParser& parser) {
  if (groups_ & kJobs) {
    jobs_ = static_cast<unsigned>(parser.get_int("--jobs"));
  }
  if (groups_ & kTrace) trace_ = parser.get("--trace");
  if (groups_ & kMetrics) metrics_ = parser.get("--metrics");
  if (groups_ & kSimIsa) {
    const std::string isa = parser.get("--sim-isa");
    if (!isa.empty()) set_sim_isa(isa);
  }
  if (groups_ & kQuiet) quiet_ = parser.flag("--quiet");
  if (groups_ & kJson) json_ = parser.flag("--json");
}

void write_text_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) throw std::runtime_error("cannot write " + path);
  out << content;
}

ObsCapture::ObsCapture(std::string trace_path, std::string metrics_path)
    : trace_path_(std::move(trace_path)),
      metrics_path_(std::move(metrics_path)) {
  if (!metrics_path_.empty()) {
    before_ = obs::Metrics::global().snapshot(/*include_runtime=*/true);
  }
  if (!trace_path_.empty()) obs::TraceRecorder::global().start();
}

void ObsCapture::finish() {
  if (!trace_path_.empty()) {
    obs::TraceRecorder::global().stop();
    write_text_file(trace_path_, obs::TraceRecorder::global().chrome_json());
    std::fprintf(stderr, "wrote %s (%zu trace events)\n", trace_path_.c_str(),
                 obs::TraceRecorder::global().event_count());
    trace_path_.clear();
  }
  if (!metrics_path_.empty()) {
    write_text_file(
        metrics_path_,
        obs::metrics_json(obs::snapshot_diff(
            obs::Metrics::global().snapshot(/*include_runtime=*/true),
            before_)) +
            "\n");
    std::fprintf(stderr, "wrote %s\n", metrics_path_.c_str());
    metrics_path_.clear();
  }
}

}  // namespace stt::cli
