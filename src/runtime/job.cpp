#include "runtime/job.hpp"

#include <optional>
#include <stdexcept>

#include "obs/obs.hpp"
#include "util/timer.hpp"

namespace stt {

std::string job_state_name(JobState state) {
  switch (state) {
    case JobState::kPending:
      return "pending";
    case JobState::kReady:
      return "ready";
    case JobState::kRunning:
      return "running";
    case JobState::kSucceeded:
      return "succeeded";
    case JobState::kFailed:
      return "failed";
    case JobState::kCancelled:
      return "cancelled";
  }
  return "?";
}

bool JobContext::cancelled() const { return graph_->is_cancel_requested(id_); }

JobId JobGraph::add(std::string name, Body body,
                    const std::vector<JobId>& deps) {
  if (!body) throw std::invalid_argument("JobGraph::add: empty body");
  std::lock_guard lock(nodes_mutex_);
  if (running_) {
    throw std::logic_error("JobGraph::add: graph is already running");
  }
  const JobId id = nodes_.size();
  Node node;
  node.record.name = std::move(name);
  node.body = std::move(body);
  node.deps_remaining = deps.size();
  nodes_.push_back(std::move(node));
  for (const JobId dep : deps) {
    if (dep >= id) throw std::out_of_range("JobGraph::add: bad dependency id");
    nodes_[dep].dependents.push_back(id);
  }
  return id;
}

void JobGraph::cancel(JobId id) {
  std::lock_guard lock(nodes_mutex_);
  if (id >= nodes_.size()) throw std::out_of_range("JobGraph::cancel");
  nodes_[id].cancel_requested = true;
  // Before run() there is no pool to notify; readiness handling in run()
  // turns the request into a kCancelled settle. During a run, a pending or
  // queued job must settle now so the graph can terminate.
  if (running_) {
    const JobState state = nodes_[id].record.state;
    if (state == JobState::kPending || state == JobState::kReady) {
      cancel_locked(id, "cancelled", *run_pool_);
    }
  }
}

void JobGraph::run(ThreadPool& pool) {
  std::unique_lock lock(nodes_mutex_);
  if (running_) throw std::logic_error("JobGraph::run: already running");
  if (settled_ != 0) throw std::logic_error("JobGraph::run: graph already ran");
  running_ = true;
  run_pool_ = &pool;
  for (JobId id = 0; id < nodes_.size(); ++id) {
    if (nodes_[id].deps_remaining != 0) continue;
    if (nodes_[id].cancel_requested) {
      settle(id, JobState::kCancelled, "cancelled", pool);
    } else {
      make_ready(id, pool);
    }
  }
  settled_cv_.wait(lock, [this] { return settled_ == nodes_.size(); });
  running_ = false;
  run_pool_ = nullptr;
}

std::size_t JobGraph::size() const {
  std::lock_guard lock(nodes_mutex_);
  return nodes_.size();
}

JobState JobGraph::state(JobId id) const {
  std::lock_guard lock(nodes_mutex_);
  return nodes_.at(id).record.state;
}

JobRecord JobGraph::record(JobId id) const {
  std::lock_guard lock(nodes_mutex_);
  return nodes_.at(id).record;
}

std::size_t JobGraph::count(JobState state) const {
  std::lock_guard lock(nodes_mutex_);
  std::size_t n = 0;
  for (const Node& node : nodes_) {
    if (node.record.state == state) ++n;
  }
  return n;
}

void JobGraph::make_ready(JobId id, ThreadPool& pool) {
  Node& node = nodes_[id];
  node.record.state = JobState::kReady;
  node.ready_stamp = Timer::now_seconds();
  pool.submit([this, id, &pool] { execute(id, pool); });
}

void JobGraph::settle(JobId id, JobState state, const std::string& error,
                      ThreadPool& pool) {
  Node& node = nodes_[id];
  node.record.state = state;
  node.record.error = error;
  ++settled_;
  if (settled_ == nodes_.size()) settled_cv_.notify_all();
  for (const JobId dep_id : node.dependents) {
    Node& dependent = nodes_[dep_id];
    if (dependent.record.state != JobState::kPending) continue;
    if (state == JobState::kSucceeded) {
      if (--dependent.deps_remaining == 0) {
        if (dependent.cancel_requested) {
          settle(dep_id, JobState::kCancelled, "cancelled", pool);
        } else {
          make_ready(dep_id, pool);
        }
      }
    } else {
      cancel_locked(dep_id,
                    "dependency '" + node.record.name + "' " +
                        (state == JobState::kFailed ? "failed" : "cancelled"),
                    pool);
    }
  }
}

void JobGraph::cancel_locked(JobId id, const std::string& cause,
                             ThreadPool& pool) {
  Node& node = nodes_[id];
  node.cancel_requested = true;
  switch (node.record.state) {
    case JobState::kPending:
    case JobState::kReady:
      // A kReady job may already sit in a pool queue; execute() observes
      // the settled state and becomes a no-op.
      settle(id, JobState::kCancelled, cause, pool);
      break;
    case JobState::kRunning:
      // Cooperative only: the body may poll JobContext::cancelled().
      break;
    default:
      break;  // already settled
  }
}

void JobGraph::execute(JobId id, ThreadPool& pool) {
  std::optional<obs::Span> span;
  {
    std::lock_guard lock(nodes_mutex_);
    Node& node = nodes_[id];
    if (node.record.state != JobState::kReady) return;  // cancelled in queue
    node.record.state = JobState::kRunning;
    node.record.queue_ms = (Timer::now_seconds() - node.ready_stamp) * 1e3;
    span.emplace("job", node.record.name);
    // Queue wait is wall-clock and thus run-dependent: runtime-only.
    static obs::Histogram& queue_wait =
        obs::Metrics::global().histogram("jobs.queue_wait_us", /*stable=*/false);
    queue_wait.record(
        static_cast<std::uint64_t>(node.record.queue_ms * 1e3));
  }
  // Jobs executed per process depends on resume/shard state (skipped grid
  // points never become jobs), so this is runtime accounting, not part of
  // the deterministic stable-metrics block.
  static obs::Counter& executed =
      obs::Metrics::global().counter("jobs.executed", /*stable=*/false);
  executed.add(1);
  JobContext ctx(this, id);
  Timer timer;
  bool failed = false;
  std::string error;
  try {
    nodes_[id].body(ctx);  // body is immutable while the graph runs
  } catch (const std::exception& e) {
    failed = true;
    error = e.what();
  } catch (...) {
    failed = true;
    error = "unknown exception";
  }
  std::lock_guard lock(nodes_mutex_);
  Node& node = nodes_[id];
  node.record.run_ms = timer.millis();
  if (failed) {
    settle(id, JobState::kFailed, error, pool);
  } else if (node.cancel_requested) {
    settle(id, JobState::kCancelled, "cancelled while running", pool);
  } else {
    settle(id, JobState::kSucceeded, "", pool);
  }
}

bool JobGraph::is_cancel_requested(JobId id) const {
  std::lock_guard lock(nodes_mutex_);
  return nodes_.at(id).cancel_requested;
}

}  // namespace stt
