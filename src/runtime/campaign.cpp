#include "runtime/campaign.hpp"

#include <algorithm>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "attack/registry.hpp"
#include "core/hybrid.hpp"
#include "obs/obs.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "verify/lint.hpp"

namespace stt {

namespace {

// Distinct stream tags for the independent RNG streams of one grid point.
constexpr int kStageCircuit = 0;
constexpr int kStageSelection = 1;
constexpr int kStageAttack = 2;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint64_t campaign_seed(std::uint64_t master_seed,
                            std::string_view benchmark, int stage,
                            int algorithm_index, int trial, int attempt) {
  // Feed every coordinate through two SplitMix64 rounds so neighbouring
  // grid points (trial k vs k+1, attempt 0 vs 1) get uncorrelated streams.
  std::uint64_t h = splitmix64(master_seed ^ fnv1a(benchmark));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(stage) << 48) ^
                 (static_cast<std::uint64_t>(algorithm_index + 1) << 32) ^
                 (static_cast<std::uint64_t>(trial) << 8) ^
                 static_cast<std::uint64_t>(attempt));
  return h;
}

RetryOutcome run_with_seed_backoff(
    int max_attempts, const std::function<std::uint64_t(int)>& seed_for,
    const std::function<void(std::uint64_t seed, int attempt)>& body) {
  RetryOutcome outcome;
  if (max_attempts < 1) max_attempts = 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++outcome.attempts;
    try {
      body(seed_for(attempt), attempt);
      outcome.ok = true;
      return outcome;
    } catch (const std::exception& e) {
      outcome.error = e.what();
    } catch (...) {
      outcome.error = "unknown exception";
    }
  }
  return outcome;
}

namespace {

using ProgressFn = std::function<void(std::size_t, std::size_t,
                                      const std::string&)>;

/// Serialized progress fan-in for the worker threads.
class ProgressSink {
 public:
  ProgressSink(ProgressFn fn, std::size_t total)
      : fn_(std::move(fn)), total_(total) {}

  void tick(const std::string& label) {
    if (!fn_) return;
    std::lock_guard lock(mutex_);
    fn_(++done_, total_, label);
  }

 private:
  ProgressFn fn_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::mutex mutex_;
};

void run_attack_stage(CampaignRow& row, const Netlist& hybrid,
                      const std::string& attack, std::uint64_t attack_seed) {
  if (attack == "none") return;
  // Wall-clock limits are disabled and the dominant-work budgets are
  // fixed, so the outcome and every telemetry column are machine- and
  // --jobs-independent. (The stage already runs on a pool worker, so no
  // ParallelFor is passed — the SAT attack stays portfolio=1, serial.)
  attack::CommonAttackOptions common;
  common.seed = attack_seed;
  common.time_limit_s = attack::CommonAttackOptions::kNoTimeLimit;
  if (attack == "sat") common.work_budget = 2'000'000;
  const attack::UnifiedResult r =
      attack::registry().run(attack, foundry_view(hybrid), hybrid, common);
  row.attack_ran = true;
  row.attack_success = r.success();
  row.attack_outcome = attack::outcome_name(r.outcome);
  row.attack_detail = r.detail;
  row.attack_queries = r.queries;
  row.attack_iterations = r.iterations;
  row.attack_conflicts = r.conflicts;
  row.attack_decisions = r.sat.decisions;
  row.attack_propagations = r.sat.propagations;
  row.attack_learned = r.sat.learned;
  row.attack_peak_clauses = r.sat.peak_clauses;
  row.attack_cnf_per_iter = r.sat.cnf_clauses_per_iter;
}

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec) {
  CampaignReport report;
  report.benchmarks = spec.benchmarks;
  if (report.benchmarks.empty()) {
    for (const CircuitProfile& profile : iscas89_profiles()) {
      report.benchmarks.push_back(profile.name);
    }
  }
  std::vector<CircuitProfile> profiles;
  for (const std::string& name : report.benchmarks) {
    const auto profile = find_profile(name);
    if (!profile) {
      throw std::invalid_argument("unknown benchmark '" + name + "'");
    }
    profiles.push_back(*profile);
  }
  report.algorithms = spec.algorithms;
  report.trials = spec.trials;
  report.master_seed = spec.master_seed;
  report.attack = spec.attack;
  if (spec.attack != "none" && !attack::registry().contains(spec.attack)) {
    std::string known = "none";
    for (const std::string& name : attack::registry().names()) {
      known += "|" + name;
    }
    throw std::invalid_argument("unknown campaign attack '" + spec.attack +
                                "' (expected " + known + ")");
  }
  if (profiles.empty() || report.algorithms.empty() || spec.trials < 1) {
    throw std::invalid_argument("campaign grid is empty");
  }

  const std::size_t n_bench = profiles.size();
  const std::size_t n_alg = report.algorithms.size();
  const std::size_t n_trial = static_cast<std::size_t>(spec.trials);
  report.rows.resize(n_bench * n_alg * n_trial);

  const TechLibrary lib = TechLibrary::cmos90_stt();

  // Per-(benchmark, trial) shared circuit, produced by a generation job and
  // consumed read-only by the per-algorithm flow jobs hanging off it.
  std::vector<std::shared_ptr<const Netlist>> circuits(n_bench * n_trial);

  ProgressSink progress(spec.on_progress, report.rows.size());

  // Delta-snapshot the global metrics around the run so the report's obs
  // blocks are per-campaign even when several campaigns share a process.
  const obs::MetricsSnapshot obs_before_stable =
      obs::Metrics::global().snapshot(/*include_runtime=*/false);
  const obs::MetricsSnapshot obs_before_full =
      obs::Metrics::global().snapshot(/*include_runtime=*/true);

  ThreadPool pool(spec.jobs == 0 ? 0 : spec.jobs);
  JobGraph graph;
  Timer campaign_timer;

  std::vector<JobId> flow_jobs(report.rows.size());
  for (std::size_t b = 0; b < n_bench; ++b) {
    for (std::size_t t = 0; t < n_trial; ++t) {
      const CircuitProfile& profile = profiles[b];
      const std::size_t circuit_index = b * n_trial + t;
      const std::uint64_t circuit_seed =
          campaign_seed(spec.master_seed, profile.name, kStageCircuit, -1,
                        static_cast<int>(t), 0);
      const JobId gen_job = graph.add(
          "gen/" + profile.name + "/t" + std::to_string(t),
          [&circuits, circuit_index, profile, circuit_seed](JobContext&) {
            circuits[circuit_index] = std::make_shared<const Netlist>(
                generate_circuit(profile, circuit_seed));
          });
      for (std::size_t a = 0; a < n_alg; ++a) {
        const SelectionAlgorithm alg = report.algorithms[a];
        const std::size_t row_index = (b * n_alg + a) * n_trial + t;
        CampaignRow& row = report.rows[row_index];
        row.benchmark = profile.name;
        row.algorithm = alg;
        row.trial = static_cast<int>(t);
        row.circuit_seed = circuit_seed;
        const std::string label =
            profile.name + "/" + algorithm_name(alg) + "/t" + std::to_string(t);
        flow_jobs[row_index] = graph.add(
            "flow/" + label,
            [&spec, &lib, &circuits, &progress, &row, circuit_index, alg,
             label, a, t](JobContext&) {
              const Netlist& original = *circuits[circuit_index];
              const auto seed_for = [&spec, &row, a, t](int attempt) {
                return campaign_seed(spec.master_seed, row.benchmark,
                                     kStageSelection, static_cast<int>(a),
                                     static_cast<int>(t), attempt);
              };
              const Timer flow_timer;
              const RetryOutcome outcome = run_with_seed_backoff(
                  spec.max_attempts, seed_for,
                  [&](std::uint64_t seed, int /*attempt*/) {
                    FlowOptions opt;
                    opt.algorithm = alg;
                    opt.selection.seed = seed;
                    opt.selection.timing_margin = spec.timing_margin;
                    opt.activity = spec.activity;
                    const FlowResult flow =
                        run_secure_flow(original, lib, opt);
                    row.selection_seed = seed;
                    row.num_luts = flow.overhead.num_stt_luts;
                    row.perf_pct = flow.overhead.perf_degradation_pct();
                    row.power_pct = flow.overhead.power_overhead_pct();
                    row.area_pct = flow.overhead.area_overhead_pct();
                    row.original_delay_ps = flow.overhead.original_delay_ps;
                    row.hybrid_delay_ps = flow.overhead.hybrid_delay_ps;
                    row.n_indep = flow.security.n_indep.to_string();
                    row.n_dep = flow.security.n_dep.to_string();
                    row.n_bf = flow.security.n_bf.to_string();
                    row.paths_considered = flow.selection.paths_considered;
                    row.timing_retries = flow.selection.timing_retries;
                    row.usl_replacements = flow.selection.usl_replacements;
                    row.selection_ms = flow.selection.selection_seconds * 1e3;
                    if (spec.lint) {
                      LintOptions lint_opt;
                      lint_opt.audit.model = opt.similarity;
                      const LintReport lint = run_lint(flow.hybrid, lint_opt);
                      row.lint_ran = true;
                      row.lint_verdict = lint.verdict();
                      row.lint_errors = lint.counts.errors;
                      row.lint_warnings = lint.counts.warnings;
                      row.lint_infos = lint.counts.infos;
                      row.audit_log10_drop =
                          std::max({lint.audit.log10_drop_indep,
                                    lint.audit.log10_drop_dep,
                                    lint.audit.log10_drop_bf});
                    }
                    run_attack_stage(
                        row, flow.hybrid, spec.attack,
                        campaign_seed(spec.master_seed, row.benchmark,
                                      kStageAttack, static_cast<int>(a),
                                      static_cast<int>(t), 0));
                  });
              row.attempts = outcome.attempts;
              row.ok = outcome.ok;
              row.error = outcome.error;
              row.flow_ms = flow_timer.millis();
              progress.tick(label);
              if (!outcome.ok) {
                throw std::runtime_error(outcome.error);
              }
            },
            {gen_job});
      }
    }
  }

  graph.run(pool);

  // Jobs that never ran (generation failed upstream) still need their rows
  // closed out, and queue latency only the graph knows.
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    CampaignRow& row = report.rows[i];
    const JobRecord record = graph.record(flow_jobs[i]);
    row.queue_ms = record.queue_ms;
    if (record.state == JobState::kCancelled && row.error.empty()) {
      row.error = record.error;
    }
    report.profile.job_cpu_seconds += record.run_ms / 1e3;
    if (!row.ok) ++report.profile.failed_rows;
  }

  pool.wait_idle();
  report.profile.threads = pool.size();
  report.profile.wall_seconds = campaign_timer.seconds();
  const ThreadPool::Stats stats = pool.stats();
  report.profile.executed = stats.executed;
  report.profile.stolen = stats.stolen;
  report.obs = obs::snapshot_diff(
      obs::Metrics::global().snapshot(/*include_runtime=*/false),
      obs_before_stable);
  report.profile.obs = obs::snapshot_diff(
      obs::Metrics::global().snapshot(/*include_runtime=*/true),
      obs_before_full);
  return report;
}

}  // namespace stt
