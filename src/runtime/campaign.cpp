#include "runtime/campaign.hpp"

#include <algorithm>
#include <atomic>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <stdexcept>

#include "attack/registry.hpp"
#include "core/hybrid.hpp"
#include "defense/registry.hpp"
#include "obs/obs.hpp"
#include "runtime/shard.hpp"
#include "runtime/store.hpp"
#include "sim/compiled.hpp"
#include "synth/generator.hpp"
#include "util/strings.hpp"
#include "util/timer.hpp"
#include "verify/lint.hpp"

namespace stt {

namespace {

// Distinct stream tags for the independent RNG streams of one grid point.
constexpr int kStageCircuit = 0;
constexpr int kStageSelection = 1;
constexpr int kStageAttack = 2;

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

std::uint64_t fnv1a(std::string_view s) {
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (const char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ull;
  }
  return h;
}

}  // namespace

std::uint64_t campaign_seed(std::uint64_t master_seed,
                            std::string_view benchmark, int stage,
                            int algorithm_index, int trial, int attempt) {
  // Feed every coordinate through two SplitMix64 rounds so neighbouring
  // grid points (trial k vs k+1, attempt 0 vs 1) get uncorrelated streams.
  std::uint64_t h = splitmix64(master_seed ^ fnv1a(benchmark));
  h = splitmix64(h ^ (static_cast<std::uint64_t>(stage) << 48) ^
                 (static_cast<std::uint64_t>(algorithm_index + 1) << 32) ^
                 (static_cast<std::uint64_t>(trial) << 8) ^
                 static_cast<std::uint64_t>(attempt));
  return h;
}

std::string tuning_to_string(const defense::Tuning& tuning) {
  std::string out;
  for (const auto& [k, v] : tuning) {
    if (!out.empty()) out += ";";
    out += k + "=" + v;
  }
  return out;
}

RetryOutcome run_with_seed_backoff(
    int max_attempts, const std::function<std::uint64_t(int)>& seed_for,
    const std::function<void(std::uint64_t seed, int attempt)>& body) {
  RetryOutcome outcome;
  if (max_attempts < 1) max_attempts = 1;
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    ++outcome.attempts;
    try {
      body(seed_for(attempt), attempt);
      outcome.ok = true;
      return outcome;
    } catch (const std::exception& e) {
      outcome.error = e.what();
    } catch (...) {
      outcome.error = "unknown exception";
    }
  }
  return outcome;
}

namespace {

using ProgressFn = std::function<void(std::size_t, std::size_t,
                                      const std::string&)>;

/// Serialized progress fan-in for the worker threads.
class ProgressSink {
 public:
  ProgressSink(ProgressFn fn, std::size_t total)
      : fn_(std::move(fn)), total_(total) {}

  void tick(const std::string& label) {
    if (!fn_) return;
    std::lock_guard lock(mutex_);
    fn_(++done_, total_, label);
  }

 private:
  ProgressFn fn_;
  std::size_t total_;
  std::size_t done_ = 0;
  std::mutex mutex_;
};

/// Paper-adapter kinds mirror a SelectionAlgorithm into the legacy
/// `CampaignRow::algorithm` field; other kinds leave it at the default.
bool algorithm_for_kind(const std::string& kind, SelectionAlgorithm* alg) {
  if (kind == "independent") {
    *alg = SelectionAlgorithm::kIndependent;
  } else if (kind == "dependent") {
    *alg = SelectionAlgorithm::kDependent;
  } else if (kind == "parametric") {
    *alg = SelectionAlgorithm::kParametric;
  } else {
    return false;
  }
  return true;
}

/// Scan-oracle attacks can borrow the group's shared CompiledSim lowering
/// of the configured chip (the campaign dedup cache); the others ignore it.
bool attack_uses_scan_oracle(const std::string& attack) {
  return attack == "sat" || attack == "bf" || attack == "ml" ||
         attack == "sens" || attack == "gsens";
}

void run_attack_stage(CampaignRow& row, const Netlist& hybrid,
                      const Netlist& attacker_view,
                      const CompiledSim* oracle_sim, const std::string& attack,
                      std::uint64_t attack_seed) {
  if (attack == "none") return;
  // Wall-clock limits are disabled and the dominant-work budgets are
  // fixed, so the outcome and every telemetry column are machine- and
  // --jobs-independent. (The stage already runs on a pool worker, so no
  // ParallelFor is passed — the SAT attack stays portfolio=1, serial.)
  attack::CommonAttackOptions common;
  common.seed = attack_seed;
  common.time_limit_s = attack::CommonAttackOptions::kNoTimeLimit;
  if (attack == "sat") common.work_budget = 2'000'000;
  const attack::UnifiedResult r = attack::registry().run(
      attack, attacker_view, hybrid, common, {}, nullptr, oracle_sim);
  row.attack_ran = true;
  row.attack_success = r.success();
  row.attack_outcome = attack::outcome_name(r.outcome);
  row.attack_detail = r.detail;
  row.attack_queries = r.queries;
  row.attack_iterations = r.iterations;
  row.attack_conflicts = r.conflicts;
  row.attack_decisions = r.sat.decisions;
  row.attack_propagations = r.sat.propagations;
  row.attack_learned = r.sat.learned;
  row.attack_peak_clauses = r.sat.peak_clauses;
  row.attack_cnf_per_iter = r.sat.cnf_clauses_per_iter;
}

/// Dedup cache slot for one (benchmark, defense, trial) group: the
/// attacker's foundry view of the locked netlist and (when the attack axis
/// has scan-oracle attacks) one CompiledSim lowering of the configured
/// chip. Built once by the group's defense job, shared read-only by all of
/// its attack rows; `uses` counts consumers for the savings estimate.
struct GroupAssets {
  std::shared_ptr<const Netlist> view;
  std::shared_ptr<const CompiledSim> oracle_sim;
  double build_ms = 0;
  mutable std::atomic<std::uint64_t> uses{0};
};

}  // namespace

CampaignReport run_campaign(const CampaignSpec& spec) {
  CampaignReport report;
  report.benchmarks = spec.benchmarks;
  if (report.benchmarks.empty()) {
    for (const CircuitProfile& profile : iscas89_profiles()) {
      report.benchmarks.push_back(profile.name);
    }
  }
  std::vector<CircuitProfile> profiles;
  for (const std::string& name : report.benchmarks) {
    const auto profile = find_profile(name);
    if (!profile) {
      throw std::invalid_argument("unknown benchmark '" + name + "'");
    }
    profiles.push_back(*profile);
  }
  report.algorithms = spec.algorithms;
  report.trials = spec.trials;
  report.master_seed = spec.master_seed;

  // Resolve the defense axis; an explicit list overrides the legacy
  // algorithm sweep. Kinds and tuning keys are validated up front so a typo
  // fails the whole campaign before any job starts.
  report.defenses = spec.defenses;
  if (report.defenses.empty()) {
    for (const SelectionAlgorithm alg : spec.algorithms) {
      report.defenses.push_back({algorithm_name(alg), {}});
    }
  }
  for (const DefenseAxis& axis : report.defenses) {
    if (!defense::registry().contains(axis.kind)) {
      std::string known;
      for (const std::string& name : defense::registry().names()) {
        known += known.empty() ? name : "|" + name;
      }
      throw std::invalid_argument("unknown campaign defense '" + axis.kind +
                                  "' (expected " + known + ")");
    }
    const defense::DefenseBase& d = defense::registry().at(axis.kind);
    for (const auto& [key, value] : axis.tuning) {
      bool known_key = false;
      for (const defense::TuningKnob& knob : d.knobs()) {
        if (knob.key == key) known_key = true;
      }
      if (!known_key) {
        throw std::invalid_argument("unknown tuning key '" + key +
                                    "' for campaign defense '" + axis.kind +
                                    "'");
      }
    }
  }

  // Resolve the attack axis the same way.
  report.attacks = spec.attacks;
  if (report.attacks.empty()) report.attacks.push_back(spec.attack);
  for (const std::string& attack : report.attacks) {
    if (attack != "none" && !attack::registry().contains(attack)) {
      std::string known = "none";
      for (const std::string& name : attack::registry().names()) {
        known += "|" + name;
      }
      throw std::invalid_argument("unknown campaign attack '" + attack +
                                  "' (expected " + known + ")");
    }
  }
  report.attack.clear();
  for (const std::string& attack : report.attacks) {
    report.attack += report.attack.empty() ? attack : "," + attack;
  }
  if (profiles.empty() || report.defenses.empty() || spec.trials < 1) {
    throw std::invalid_argument("campaign grid is empty");
  }
  if (spec.shard_count < 1 || spec.shard_index < 1 ||
      spec.shard_index > spec.shard_count) {
    throw std::invalid_argument(
        "campaign shard must satisfy 1 <= index <= count");
  }
  if (spec.resume && spec.store_path.empty()) {
    throw std::invalid_argument("campaign resume requires a store path");
  }

  const std::size_t n_bench = profiles.size();
  const std::size_t n_def = report.defenses.size();
  const std::size_t n_att = report.attacks.size();
  const std::size_t n_trial = static_cast<std::size_t>(spec.trials);
  report.rows.resize(n_bench * n_def * n_att * n_trial);

  // Spec fingerprint (store.hpp): the resolved grid, canonically encoded.
  // Opening/creating the store happens before any job starts, so a spec
  // mismatch or unwritable path fails the campaign cleanly.
  CampaignGrid grid;
  grid.master_seed = spec.master_seed;
  grid.trials = spec.trials;
  grid.max_attempts = spec.max_attempts;
  grid.lint = spec.lint;
  grid.activity = spec.activity;
  grid.timing_margin = spec.timing_margin;
  grid.benchmarks = report.benchmarks;
  grid.defenses = report.defenses;
  grid.attacks = report.attacks;
  std::unique_ptr<ResultStore> store;
  if (!spec.store_path.empty()) {
    const std::string spec_bytes = campaign_grid_bytes(grid);
    store = spec.resume ? ResultStore::open(spec.store_path, spec_bytes)
                        : ResultStore::create(spec.store_path, spec_bytes);
    report.profile.store_note = store->open_stats().note;
  }

  const ShardSpec shard{spec.shard_index, spec.shard_count};
  report.profile.shard_index = spec.shard_index;
  report.profile.shard_count = spec.shard_count;

  const TechLibrary lib = TechLibrary::cmos90_stt();

  // Per-(benchmark, trial) shared circuit, produced by a generation job and
  // consumed read-only by the per-defense jobs hanging off it; per-
  // (benchmark, defense, trial) locked result, produced by a defense job
  // and consumed read-only by the per-attack jobs hanging off it. The
  // GroupAssets slot beside each locked result is the dedup cache: the
  // attacker's foundry view and (for scan-oracle attacks) one CompiledSim
  // lowering, built once per group and shared by every attack row of it.
  std::vector<std::shared_ptr<const Netlist>> circuits(n_bench * n_trial);
  std::vector<std::shared_ptr<const defense::DefenseResult>> locked(
      n_bench * n_def * n_trial);
  std::vector<GroupAssets> assets(n_bench * n_def * n_trial);

  const auto flat = [n_def, n_att, n_trial](std::size_t b, std::size_t d,
                                            std::size_t a, std::size_t t) {
    return ((b * n_def + d) * n_att + a) * n_trial + t;
  };
  std::vector<std::string> tuning_strs(n_def);
  for (std::size_t d = 0; d < n_def; ++d) {
    tuning_strs[d] = tuning_to_string(report.defenses[d].tuning);
  }
  const auto key_of = [&](std::size_t b, std::size_t d, std::size_t a,
                          std::size_t t) {
    return TrialKey{report.benchmarks[b], report.defenses[d].kind,
                    tuning_strs[d], report.attacks[a], static_cast<int>(t)};
  };

  // Ownership and resume state per flat row: this process runs exactly the
  // owned-and-not-yet-recorded subset; resumed rows are replayed from the
  // store after the graph finishes, unowned rows are compacted away.
  const std::size_t total_rows = report.rows.size();
  std::vector<char> owned(total_rows, 0);
  std::vector<char> resumed(total_rows, 0);
  std::size_t pending_rows = 0;
  for (std::size_t b = 0; b < n_bench; ++b) {
    for (std::size_t d = 0; d < n_def; ++d) {
      for (std::size_t a = 0; a < n_att; ++a) {
        for (std::size_t t = 0; t < n_trial; ++t) {
          const std::size_t i = flat(b, d, a, t);
          owned[i] = shard_owns(shard, i) ? 1 : 0;
          if (owned[i] && store != nullptr &&
              store->contains_trial(key_of(b, d, a, t))) {
            resumed[i] = 1;
          }
          if (owned[i] && !resumed[i]) ++pending_rows;
        }
      }
    }
  }

  // Per-stage stable-metrics deltas (the report.obs contract): seeded from
  // the store so skipped stages still contribute, extended by ScopedCapture
  // around every stage body that runs. Trial deltas live per flat row.
  std::map<std::string, obs::MetricsSnapshot> stage_deltas;
  std::mutex stage_mu;
  if (store != nullptr) {
    for (const auto& [key, delta] : store->stages()) {
      stage_deltas.emplace(key, delta);
    }
  }
  std::vector<obs::MetricsSnapshot> trial_deltas(total_rows);
  const auto record_stage = [&stage_deltas, &stage_mu,
                             &store](const std::string& key,
                                     obs::MetricsSnapshot delta) {
    {
      std::lock_guard lock(stage_mu);
      // Insert-if-absent: a stored delta wins, and re-running a stage on
      // resume reproduces it byte-for-byte anyway (stages are seeded and
      // single-threaded).
      stage_deltas.emplace(key, delta);
    }
    if (store != nullptr) store->append_stage(key, delta);
  };

  // Whether defense jobs build dedup-cache assets is a property of the
  // grid's attack axis, never of which rows are pending — so a defense
  // stage re-run on resume captures exactly the delta of the original run.
  bool axis_has_attack = false;
  bool axis_has_oracle = false;
  for (const std::string& attack : report.attacks) {
    if (attack != "none") axis_has_attack = true;
    if (attack_uses_scan_oracle(attack)) axis_has_oracle = true;
  }

  ProgressSink progress(spec.on_progress, pending_rows);

  // Snapshot the full (runtime-inclusive) metrics around the run for the
  // profile's obs block; the deterministic report.obs is assembled from the
  // captured per-stage deltas instead.
  const obs::MetricsSnapshot obs_before_full =
      obs::Metrics::global().snapshot(/*include_runtime=*/true);

  ThreadPool pool(spec.jobs == 0 ? 0 : spec.jobs);
  JobGraph graph;
  Timer campaign_timer;

  constexpr JobId kNoJob = std::numeric_limits<JobId>::max();
  std::vector<JobId> row_jobs(total_rows, kNoJob);
  for (std::size_t b = 0; b < n_bench; ++b) {
    for (std::size_t t = 0; t < n_trial; ++t) {
      const CircuitProfile& profile = profiles[b];
      const std::size_t circuit_index = b * n_trial + t;
      const std::uint64_t circuit_seed =
          campaign_seed(spec.master_seed, profile.name, kStageCircuit, -1,
                        static_cast<int>(t), 0);
      // A defense group needs its job (and transitively the circuit) only
      // when it still has pending rows; fully-resumed or unowned groups are
      // replayed from the store or dropped, never recomputed.
      std::vector<char> def_needed(n_def, 0);
      bool gen_needed = false;
      for (std::size_t d = 0; d < n_def; ++d) {
        for (std::size_t a = 0; a < n_att; ++a) {
          if (owned[flat(b, d, a, t)] && !resumed[flat(b, d, a, t)]) {
            def_needed[d] = 1;
            gen_needed = true;
          }
        }
      }
      JobId gen_job = kNoJob;
      if (gen_needed) {
        const std::string gen_key =
            "gen/" + profile.name + "/t" + std::to_string(t);
        gen_job = graph.add(
            gen_key, [&circuits, &record_stage, circuit_index, profile,
                      circuit_seed, gen_key](JobContext&) {
              obs::ScopedCapture capture;
              circuits[circuit_index] = std::make_shared<const Netlist>(
                  generate_circuit(profile, circuit_seed));
              record_stage(gen_key, capture.stable_delta());
            });
      }
      for (std::size_t d = 0; d < n_def; ++d) {
        const DefenseAxis& axis = report.defenses[d];
        // Row (b, d, a, t) lives at ((b*n_def + d)*n_att + a)*n_trial + t;
        // `row0` is the a=0 slot, filled by the defense job as the group's
        // template and fanned out to the other attack rows.
        const std::size_t row0 = ((b * n_def + d) * n_att) * n_trial + t;
        const std::size_t def_index = (b * n_def + d) * n_trial + t;
        const std::string& tuning_str = tuning_strs[d];
        for (std::size_t a = 0; a < n_att; ++a) {
          CampaignRow& row = report.rows[row0 + a * n_trial];
          row.benchmark = profile.name;
          row.defense = axis.kind;
          row.defense_tuning = tuning_str;
          algorithm_for_kind(axis.kind, &row.algorithm);
          row.attack = report.attacks[a];
          row.trial = static_cast<int>(t);
          row.circuit_seed = circuit_seed;
        }
        if (!def_needed[d]) continue;
        const std::string defense_label =
            profile.name + "/" + axis.kind + "/t" + std::to_string(t);
        const std::string def_key =
            "def/" + profile.name + "/" + axis.kind +
            (tuning_str.empty() ? "" : "(" + tuning_str + ")") + "/t" +
            std::to_string(t);
        const JobId defense_job = graph.add(
            "flow/" + defense_label,
            [&spec, &lib, &circuits, &report, &locked, &assets, &record_stage,
             circuit_index, def_index, row0, n_att, n_trial, axis, d, t,
             def_key, axis_has_attack, axis_has_oracle](JobContext&) {
              const Netlist& original = *circuits[circuit_index];
              CampaignRow& first = report.rows[row0];
              const auto seed_for = [&spec, &first, d, t](int attempt) {
                return campaign_seed(spec.master_seed, first.benchmark,
                                     kStageSelection, static_cast<int>(d),
                                     static_cast<int>(t), attempt);
              };
              const Timer flow_timer;
              auto result = std::make_shared<defense::DefenseResult>();
              obs::ScopedCapture capture;
              const RetryOutcome outcome = run_with_seed_backoff(
                  spec.max_attempts, seed_for,
                  [&](std::uint64_t seed, int /*attempt*/) {
                    *result = defense::registry().apply(
                        axis.kind, original, lib,
                        {seed, spec.timing_margin, spec.activity},
                        axis.tuning);
                    first.selection_seed = seed;
                    first.num_luts = result->overhead.num_stt_luts;
                    first.key_cells = result->key_cells;
                    first.key_bits = result->key_bits;
                    first.cells_added = result->cells_added;
                    first.cells_replaced = result->cells_replaced;
                    first.perf_pct = result->overhead.perf_degradation_pct();
                    first.power_pct = result->overhead.power_overhead_pct();
                    first.area_pct = result->overhead.area_overhead_pct();
                    first.original_delay_ps =
                        result->overhead.original_delay_ps;
                    first.hybrid_delay_ps = result->overhead.hybrid_delay_ps;
                    first.n_indep = result->security.n_indep.to_string();
                    first.n_dep = result->security.n_dep.to_string();
                    first.n_bf = result->security.n_bf.to_string();
                    first.paths_considered =
                        result->selection.paths_considered;
                    first.timing_retries = result->selection.timing_retries;
                    first.usl_replacements =
                        result->selection.usl_replacements;
                    first.selection_ms =
                        result->selection.selection_seconds * 1e3;
                    if (spec.lint) {
                      LintOptions lint_opt;
                      lint_opt.defense = result->annotations;
                      const LintReport lint =
                          run_lint(result->locked, lint_opt);
                      first.lint_ran = true;
                      first.lint_verdict = lint.verdict();
                      first.lint_errors = lint.counts.errors;
                      first.lint_warnings = lint.counts.warnings;
                      first.lint_infos = lint.counts.infos;
                      first.audit_log10_drop =
                          std::max({lint.audit.log10_drop_indep,
                                    lint.audit.log10_drop_dep,
                                    lint.audit.log10_drop_bf});
                      if (lint.keydep_ran) {
                        first.key_bits_static = lint.keydep.key_bits_static;
                        first.eff_key_bits = lint.keydep.eff_key_bits;
                        first.analyze_verdict = lint.keydep.verdict();
                      }
                    }
                  });
              record_stage(def_key, capture.stable_delta());
              first.attempts = outcome.attempts;
              first.ok = outcome.ok;
              first.error = outcome.error;
              first.flow_ms = flow_timer.millis();
              if (outcome.ok) {
                locked[def_index] = std::move(result);
                if (axis_has_attack) {
                  // Dedup cache: build the attacker view (and the oracle
                  // lowering) once, outside the capture, so the defense
                  // delta never depends on the attack axis contents.
                  GroupAssets& cache = assets[def_index];
                  const Timer build_timer;
                  cache.view = std::make_shared<const Netlist>(
                      foundry_view(locked[def_index]->locked));
                  if (axis_has_oracle) {
                    cache.oracle_sim = std::make_shared<const CompiledSim>(
                        locked[def_index]->locked);
                  }
                  cache.build_ms = build_timer.millis();
                }
              }
              // Fan the shared defense/lint columns out to the group's
              // other attack rows; only `attack` differs at this point.
              for (std::size_t a = 1; a < n_att; ++a) {
                CampaignRow& row = report.rows[row0 + a * n_trial];
                const std::string attack = row.attack;
                row = first;
                row.attack = attack;
              }
              // Deliberately never throws: the attack jobs below must run
              // (and tick progress) even for a failed defense.
            },
            {gen_job});
        for (std::size_t a = 0; a < n_att; ++a) {
          const std::size_t row_index = row0 + a * n_trial;
          if (!owned[row_index] || resumed[row_index]) continue;
          std::string label = profile.name + "/" + axis.kind;
          if (n_att > 1) label += "/" + report.attacks[a];
          label += "/t" + std::to_string(t);
          row_jobs[row_index] = graph.add(
              "atk/" + label,
              [&spec, &report, &locked, &assets, &progress, &store,
               &trial_deltas, &key_of, row_index, def_index, b, d, t, a,
               label](JobContext&) {
                CampaignRow& row = report.rows[row_index];
                const Timer attack_timer;
                obs::ScopedCapture capture;
                if (row.ok && row.attack != "none") {
                  // The first attack axis point keeps the pre-defense-axis
                  // seed stream; later points fold the attack name into the
                  // stream tag for an independent stream.
                  const std::string stream =
                      a == 0 ? row.benchmark
                             : row.benchmark + "#" + row.attack;
                  const std::uint64_t attack_seed =
                      campaign_seed(spec.master_seed, stream, kStageAttack,
                                    static_cast<int>(d), static_cast<int>(t),
                                    0);
                  try {
                    const GroupAssets& cache = assets[def_index];
                    cache.uses.fetch_add(1, std::memory_order_relaxed);
                    run_attack_stage(
                        row, locked[def_index]->locked, *cache.view,
                        attack_uses_scan_oracle(row.attack)
                            ? cache.oracle_sim.get()
                            : nullptr,
                        row.attack, attack_seed);
                  } catch (const std::exception& e) {
                    row.ok = false;
                    row.error = "attack: " + std::string(e.what());
                  }
                }
                trial_deltas[row_index] = capture.stable_delta();
                row.flow_ms += attack_timer.millis();
                // Record before the failure throw below: failed rows are
                // results too, and resume must not re-run them.
                if (store != nullptr) {
                  store->append_trial(key_of(b, d, a, t), row,
                                      trial_deltas[row_index]);
                }
                progress.tick(label);
                if (!row.ok) throw std::runtime_error(row.error);
              },
              {defense_job});
        }
      }
    }
  }

  graph.run(pool);

  // Jobs that never ran (generation failed upstream) still need their rows
  // closed out, and queue latency only the graph knows. Rows without a job
  // (resumed or unowned) have nothing to collect here.
  for (std::size_t i = 0; i < total_rows; ++i) {
    if (row_jobs[i] == kNoJob) continue;
    CampaignRow& row = report.rows[i];
    const JobRecord record = graph.record(row_jobs[i]);
    row.queue_ms = record.queue_ms;
    if (record.state == JobState::kCancelled && row.error.empty()) {
      row.error = record.error;
    }
    report.profile.job_cpu_seconds += record.run_ms / 1e3;
  }

  // Replay resumed rows from the store — after the graph, because a
  // re-running defense job fans its (recomputed, byte-identical) template
  // over the whole group, including rows this process did not own.
  if (store != nullptr) {
    for (std::size_t b = 0; b < n_bench; ++b) {
      for (std::size_t d = 0; d < n_def; ++d) {
        for (std::size_t a = 0; a < n_att; ++a) {
          for (std::size_t t = 0; t < n_trial; ++t) {
            const std::size_t i = flat(b, d, a, t);
            if (!resumed[i]) continue;
            const StoredTrial& stored =
                store->trials().at(key_of(b, d, a, t));
            report.rows[i] = stored.record;
            trial_deltas[i] = stored.obs_delta;
          }
        }
      }
    }
  }

  pool.wait_idle();
  report.profile.threads = pool.size();
  report.profile.wall_seconds = campaign_timer.seconds();
  const ThreadPool::Stats stats = pool.stats();
  report.profile.executed = stats.executed;
  report.profile.stolen = stats.stolen;
  report.profile.rows_executed = pending_rows;
  for (std::size_t i = 0; i < total_rows; ++i) {
    if (resumed[i]) ++report.profile.rows_resumed;
  }

  // Dedup-cache accounting: one build per group that materialized assets;
  // every use past the first reused a ~`build_ms` setup the old per-row
  // path would have repeated.
  for (const GroupAssets& cache : assets) {
    if (!cache.view) continue;
    ++report.profile.cache_builds;
    const std::uint64_t uses = cache.uses.load(std::memory_order_relaxed);
    if (uses > 1) {
      report.profile.cache_reuses += uses - 1;
      report.profile.cache_saved_ms +=
          cache.build_ms * static_cast<double>(uses - 1);
    }
  }
  // Runtime-tagged observability (process-dependent by design: resume and
  // shard state change them, so they stay out of the stable obs block).
  obs::Metrics::global()
      .counter("campaign.rows.resumed", /*stable=*/false)
      .add(report.profile.rows_resumed);
  obs::Metrics::global()
      .counter("campaign.rows.executed", /*stable=*/false)
      .add(report.profile.rows_executed);
  obs::Metrics::global()
      .counter("campaign.cache.builds", /*stable=*/false)
      .add(report.profile.cache_builds);
  obs::Metrics::global()
      .counter("campaign.cache.reuses", /*stable=*/false)
      .add(report.profile.cache_reuses);

  // The deterministic obs block: every stage delta exactly once (captured
  // here or replayed from the store), plus the owned rows' attack deltas.
  {
    std::lock_guard lock(stage_mu);
    for (const auto& [key, delta] : stage_deltas) {
      obs::snapshot_merge(report.obs, delta);
    }
  }
  for (std::size_t i = 0; i < total_rows; ++i) {
    if (owned[i]) obs::snapshot_merge(report.obs, trial_deltas[i]);
  }

  // A sharded run reports only its owned subset, in grid order.
  if (spec.shard_count > 1) {
    std::vector<CampaignRow> kept;
    kept.reserve(pending_rows + report.profile.rows_resumed);
    for (std::size_t i = 0; i < total_rows; ++i) {
      if (owned[i]) kept.push_back(std::move(report.rows[i]));
    }
    report.rows = std::move(kept);
  }
  for (const CampaignRow& row : report.rows) {
    if (!row.ok) ++report.profile.failed_rows;
  }

  report.profile.obs = obs::snapshot_diff(
      obs::Metrics::global().snapshot(/*include_runtime=*/true),
      obs_before_full);
  return report;
}

}  // namespace stt
