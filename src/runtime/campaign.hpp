// Experiment-campaign driver: expands a benchmark x defense x attack x
// trial grid into a dependency graph of jobs (one circuit-generation job
// per (benchmark, trial), one defense job per (benchmark, defense, trial)
// hanging off it, one attack job per grid point hanging off the defense)
// and executes it on a work-stealing ThreadPool.
//
// Determinism contract: every stochastic stage of a grid point derives its
// RNG stream from (master_seed, benchmark, defense, trial, attempt) via
// `campaign_seed`, and results land in a preallocated slot addressed by the
// grid index — so an N-thread campaign produces byte-identical result rows
// to a single-thread one regardless of execution interleaving. Measured
// durations (selection/flow/queue time) are inherently non-deterministic
// and are segregated by the report layer (report.hpp) into the timing
// views, never into the deterministic result CSV.
//
// Failure policy: a grid point whose defense throws (e.g. a timing-
// infeasible parametric selection) is retried with the *next attempt's*
// seed — a bounded "backoff in seed space" — and only after `max_attempts`
// tries is the row recorded as failed; the rest of the campaign always
// completes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/flow.hpp"
#include "defense/defense.hpp"
#include "obs/obs.hpp"
#include "runtime/job.hpp"
#include "runtime/record.hpp"

namespace stt {

/// One point on the campaign's defense axis: a `defense::registry()` kind
/// plus its tuning knobs. The paper's three selection algorithms are
/// registered defenses ("independent", "dependent", "parametric"), so the
/// legacy algorithm sweep is the special case of a defense sweep over those
/// kinds with default tuning.
struct DefenseAxis {
  std::string kind;
  defense::Tuning tuning;
};

/// Canonical "k=v;k=v" rendering of a tuning list (insertion order, no
/// escaping — knob keys/values are identifier-like). This string is the
/// `defense_tuning` result column and the tuning part of store trial keys.
std::string tuning_to_string(const defense::Tuning& tuning);

struct CampaignSpec {
  /// ISCAS'89 profile names; empty = all twelve Table I benchmarks.
  std::vector<std::string> benchmarks;
  std::vector<SelectionAlgorithm> algorithms = {
      SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
      SelectionAlgorithm::kParametric};
  /// Defense axis of the grid. Empty = derived from `algorithms` (one
  /// default-tuned paper-adapter axis point per algorithm), which keeps
  /// legacy benchmark x algorithm x trial campaigns and their seed
  /// derivation bit-for-bit unchanged.
  std::vector<DefenseAxis> defenses;
  /// Attack axis of the grid. Empty = {`attack`}. "none" entries record a
  /// row without an attack stage; every other entry must be an
  /// `attack::registry()` name.
  std::vector<std::string> attacks;
  int trials = 1;
  std::uint64_t master_seed = 20160605;  ///< the repo's Table I/II seed
  unsigned jobs = 1;                     ///< worker threads (0 = hardware)
  int max_attempts = 3;                  ///< seed-backoff retry bound
  /// Optional oracle-based attack stage appended to every grid point:
  /// "none" or any `attack::registry()` name ("sat", "seq", "sens",
  /// "gsens", "bf", "ml", "dpa"). Every attack is deterministic for a
  /// fixed seed — the campaign disables wall-clock limits and caps the SAT
  /// attack by conflict budget instead, so attack columns stay inside the
  /// byte-identical result rows regardless of machine load or --jobs.
  std::string attack = "none";
  double activity = 0.10;       ///< power sign-off switching activity
  double timing_margin = 0.05;  ///< parametric timing margin
  /// Run `sttlock lint` (structural + static security audit, src/verify)
  /// over every grid point's hybrid netlist; the verdict and the audited-
  /// vs-optimistic security delta land in the deterministic result rows.
  bool lint = true;
  /// Progress callback, invoked once per settled grid point from worker
  /// threads (serialized by the driver). May be empty.
  std::function<void(std::size_t done, std::size_t total,
                     const std::string& label)>
      on_progress;

  // -- result store / resume / sharding (store.hpp, shard.hpp) ------------
  /// Append-only result store path ("" = no store). With `resume` false
  /// the store is created fresh (refusing to clobber an existing file);
  /// with `resume` true an existing store is opened — its recorded spec
  /// must match this campaign byte-for-byte — already-recorded grid points
  /// are skipped, and their rows/obs deltas are replayed from disk so the
  /// emitted CSV/JSON stay byte-identical to an uninterrupted run. A
  /// missing file under `resume` is created, making kill/resume loops
  /// idempotent to start.
  std::string store_path;
  bool resume = false;
  /// Static 1-based shard `shard_index` of `shard_count`: this process owns
  /// exactly the grid points whose flat row index i satisfies
  /// i % shard_count == shard_index - 1. Rows (and progress, and the obs
  /// block) cover only the owned subset; `sttlock merge` recombines shard
  /// stores into the full grid deterministically.
  unsigned shard_index = 1;
  unsigned shard_count = 1;
};

/// One grid point's outcome — the typed TrialRecord (record.hpp), which the
/// CSV/JSON writers, the summary, and the result store all consume. The
/// legacy name survives as an alias so existing consumers compile
/// unchanged.
using CampaignRow = TrialRecord;

struct CampaignReport {
  std::vector<std::string> benchmarks;  ///< resolved benchmark list
  std::vector<SelectionAlgorithm> algorithms;
  std::vector<DefenseAxis> defenses;  ///< resolved defense axis
  std::vector<std::string> attacks;   ///< resolved attack axis
  int trials = 1;
  std::uint64_t master_seed = 0;
  std::string attack = "none";  ///< attack axis joined with ","

  /// Grid order: benchmark-major, then defense, then attack, then trial —
  /// independent of execution interleaving.
  std::vector<CampaignRow> rows;

  /// Stable-metrics block: the sum of the per-stage deltas captured by
  /// `obs::ScopedCapture` around every circuit-generation, defense, and
  /// attack stage body, each stage counted exactly once. Per-stage deltas
  /// are deterministic (each stage body is single-threaded and seeded),
  /// and summation is commutative — so the block is byte-identical across
  /// --jobs values, and a resumed or shard-merged campaign reproduces it
  /// exactly by replaying stored deltas for stages it did not re-run.
  /// Lands in the deterministic part of `campaign_json`.
  obs::MetricsSnapshot obs;

  struct Profile {
    unsigned threads = 0;
    double wall_seconds = 0;
    double job_cpu_seconds = 0;  ///< sum of per-job run times
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::size_t failed_rows = 0;
    // Resume/shard accounting (store.hpp): grid points replayed from the
    // result store vs executed in this process, and the shard coordinates.
    std::size_t rows_resumed = 0;
    std::size_t rows_executed = 0;
    unsigned shard_index = 1;
    unsigned shard_count = 1;
    /// Store recovery diagnostic from open (torn tail truncated, bytes
    /// dropped); empty for a clean open or when no store is attached.
    std::string store_note;
    // Dedup cache: per (benchmark, defense, tuning, trial) group the
    // foundry view and the oracle's CompiledSim lowering are built once in
    // the defense job and reused by every oracle-backed attack row of the
    // group; `cache_saved_ms` estimates the per-trial setup time those
    // reuses avoided (build time x extra uses).
    std::uint64_t cache_builds = 0;
    std::uint64_t cache_reuses = 0;
    double cache_saved_ms = 0;
    /// Full metrics delta including runtime-tagged instruments (queue
    /// waits, steal counts); varies run to run like the rest of Profile.
    obs::MetricsSnapshot obs;
  } profile;
};

/// Seed derivation for every stochastic stage of a grid point. `stage`
/// namespaces independent streams of the same grid point (circuit
/// generation vs selection vs attack); `attempt` implements the retry
/// backoff-in-seed policy.
std::uint64_t campaign_seed(std::uint64_t master_seed,
                            std::string_view benchmark, int stage,
                            int algorithm_index, int trial, int attempt);

/// Retry helper: calls `body(seed_for(attempt), attempt)` until it returns
/// without throwing or `max_attempts` is exhausted.
struct RetryOutcome {
  int attempts = 0;
  bool ok = false;
  std::string error;  ///< last exception message when !ok
};
RetryOutcome run_with_seed_backoff(
    int max_attempts, const std::function<std::uint64_t(int)>& seed_for,
    const std::function<void(std::uint64_t seed, int attempt)>& body);

/// Expand the grid, run it, aggregate. Throws std::invalid_argument before
/// any job starts on an unknown benchmark name, an unknown defense kind or
/// tuning key, an unknown attack name, or an empty grid — the message lists
/// the valid kinds.
CampaignReport run_campaign(const CampaignSpec& spec);

}  // namespace stt
