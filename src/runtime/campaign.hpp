// Experiment-campaign driver: expands a benchmark x defense x attack x
// trial grid into a dependency graph of jobs (one circuit-generation job
// per (benchmark, trial), one defense job per (benchmark, defense, trial)
// hanging off it, one attack job per grid point hanging off the defense)
// and executes it on a work-stealing ThreadPool.
//
// Determinism contract: every stochastic stage of a grid point derives its
// RNG stream from (master_seed, benchmark, defense, trial, attempt) via
// `campaign_seed`, and results land in a preallocated slot addressed by the
// grid index — so an N-thread campaign produces byte-identical result rows
// to a single-thread one regardless of execution interleaving. Measured
// durations (selection/flow/queue time) are inherently non-deterministic
// and are segregated by the report layer (report.hpp) into the timing
// views, never into the deterministic result CSV.
//
// Failure policy: a grid point whose defense throws (e.g. a timing-
// infeasible parametric selection) is retried with the *next attempt's*
// seed — a bounded "backoff in seed space" — and only after `max_attempts`
// tries is the row recorded as failed; the rest of the campaign always
// completes.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "core/flow.hpp"
#include "defense/defense.hpp"
#include "obs/obs.hpp"
#include "runtime/job.hpp"

namespace stt {

/// One point on the campaign's defense axis: a `defense::registry()` kind
/// plus its tuning knobs. The paper's three selection algorithms are
/// registered defenses ("independent", "dependent", "parametric"), so the
/// legacy algorithm sweep is the special case of a defense sweep over those
/// kinds with default tuning.
struct DefenseAxis {
  std::string kind;
  defense::Tuning tuning;
};

struct CampaignSpec {
  /// ISCAS'89 profile names; empty = all twelve Table I benchmarks.
  std::vector<std::string> benchmarks;
  std::vector<SelectionAlgorithm> algorithms = {
      SelectionAlgorithm::kIndependent, SelectionAlgorithm::kDependent,
      SelectionAlgorithm::kParametric};
  /// Defense axis of the grid. Empty = derived from `algorithms` (one
  /// default-tuned paper-adapter axis point per algorithm), which keeps
  /// legacy benchmark x algorithm x trial campaigns and their seed
  /// derivation bit-for-bit unchanged.
  std::vector<DefenseAxis> defenses;
  /// Attack axis of the grid. Empty = {`attack`}. "none" entries record a
  /// row without an attack stage; every other entry must be an
  /// `attack::registry()` name.
  std::vector<std::string> attacks;
  int trials = 1;
  std::uint64_t master_seed = 20160605;  ///< the repo's Table I/II seed
  unsigned jobs = 1;                     ///< worker threads (0 = hardware)
  int max_attempts = 3;                  ///< seed-backoff retry bound
  /// Optional oracle-based attack stage appended to every grid point:
  /// "none" or any `attack::registry()` name ("sat", "seq", "sens",
  /// "gsens", "bf", "ml", "dpa"). Every attack is deterministic for a
  /// fixed seed — the campaign disables wall-clock limits and caps the SAT
  /// attack by conflict budget instead, so attack columns stay inside the
  /// byte-identical result rows regardless of machine load or --jobs.
  std::string attack = "none";
  double activity = 0.10;       ///< power sign-off switching activity
  double timing_margin = 0.05;  ///< parametric timing margin
  /// Run `sttlock lint` (structural + static security audit, src/verify)
  /// over every grid point's hybrid netlist; the verdict and the audited-
  /// vs-optimistic security delta land in the deterministic result rows.
  bool lint = true;
  /// Progress callback, invoked once per settled grid point from worker
  /// threads (serialized by the driver). May be empty.
  std::function<void(std::size_t done, std::size_t total,
                     const std::string& label)>
      on_progress;
};

/// One grid point's outcome. Fields above the "measured" marker are
/// deterministic; the measured block varies run to run.
struct CampaignRow {
  std::string benchmark;
  /// Defense axis point: registry kind and its "k=v;k=v" tuning rendering
  /// (empty = defaults). For paper adapters `algorithm` mirrors the kind so
  /// legacy consumers keep working; for other defenses it is meaningless.
  std::string defense;
  std::string defense_tuning;
  SelectionAlgorithm algorithm = SelectionAlgorithm::kIndependent;
  /// Attack axis point ("none" = no attack stage on this row).
  std::string attack = "none";
  int trial = 0;
  std::uint64_t circuit_seed = 0;
  std::uint64_t selection_seed = 0;  ///< seed of the successful attempt
  int attempts = 1;
  bool ok = false;
  std::string error;  ///< last failure message when !ok

  // Flow metrics (Table I + security sign-off).
  int num_luts = 0;
  // Key-material accounting from the defense's DefenseResult.
  int key_cells = 0;
  int key_bits = 0;
  int cells_added = 0;
  int cells_replaced = 0;
  double perf_pct = 0;
  double power_pct = 0;
  double area_pct = 0;
  double original_delay_ps = 0;
  double hybrid_delay_ps = 0;
  std::string n_indep;
  std::string n_dep;
  std::string n_bf;
  int paths_considered = 0;
  int timing_retries = 0;
  int usl_replacements = 0;

  // Lint stage (when spec.lint): verdict of the static analysis over the
  // hybrid netlist, plus the largest log10 gap between the optimistic and
  // audited Eq. (1)-(3) figures (0 when no candidate set collapsed).
  bool lint_ran = false;
  std::string lint_verdict;  ///< clean | info | warnings | errors
  int lint_errors = 0;
  int lint_warnings = 0;
  int lint_infos = 0;
  double audit_log10_drop = 0;
  // Key-dependency analysis (verify/keydep, part of the lint stage):
  // statically recoverable key bits, the predicted effective key space in
  // bits, and the analyzer's one-word verdict for the netlist.
  int key_bits_static = 0;
  int eff_key_bits = 0;
  std::string analyze_verdict;  ///< empty | broken | degraded | secure

  // Attack stage (when spec.attack != "none"), filled from the registry's
  // UnifiedResult. The solver-telemetry block below is zero for the
  // non-SAT attacks; for "sat" it mirrors SatAttackStats
  // (canonical-member counts, deterministic across --jobs).
  bool attack_ran = false;
  bool attack_success = false;
  std::string attack_outcome;  ///< solved | timed_out | budget_exhausted | ...
  std::string attack_detail;   ///< registry one-liner (dips, rows, ...)
  std::uint64_t attack_queries = 0;
  std::uint64_t attack_iterations = 0;
  std::int64_t attack_conflicts = 0;
  std::int64_t attack_decisions = 0;
  std::int64_t attack_propagations = 0;
  std::int64_t attack_learned = 0;
  std::int64_t attack_peak_clauses = 0;
  double attack_cnf_per_iter = 0;

  // -- measured (non-deterministic; reported separately) ------------------
  double selection_ms = 0;  ///< Table II metric, from the selector's timer
  double flow_ms = 0;       ///< whole-job run time
  double queue_ms = 0;      ///< ready -> running scheduling latency
};

struct CampaignReport {
  std::vector<std::string> benchmarks;  ///< resolved benchmark list
  std::vector<SelectionAlgorithm> algorithms;
  std::vector<DefenseAxis> defenses;  ///< resolved defense axis
  std::vector<std::string> attacks;   ///< resolved attack axis
  int trials = 1;
  std::uint64_t master_seed = 0;
  std::string attack = "none";  ///< attack axis joined with ","

  /// Grid order: benchmark-major, then defense, then attack, then trial —
  /// independent of execution interleaving.
  std::vector<CampaignRow> rows;

  /// Stable-metrics delta over this campaign (global metrics sampled
  /// before and after, runtime-tagged instruments excluded), so the block
  /// is byte-identical across --jobs values and across campaigns sharing a
  /// process. Lands in the deterministic part of `campaign_json`.
  obs::MetricsSnapshot obs;

  struct Profile {
    unsigned threads = 0;
    double wall_seconds = 0;
    double job_cpu_seconds = 0;  ///< sum of per-job run times
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    std::size_t failed_rows = 0;
    /// Full metrics delta including runtime-tagged instruments (queue
    /// waits, steal counts); varies run to run like the rest of Profile.
    obs::MetricsSnapshot obs;
  } profile;
};

/// Seed derivation for every stochastic stage of a grid point. `stage`
/// namespaces independent streams of the same grid point (circuit
/// generation vs selection vs attack); `attempt` implements the retry
/// backoff-in-seed policy.
std::uint64_t campaign_seed(std::uint64_t master_seed,
                            std::string_view benchmark, int stage,
                            int algorithm_index, int trial, int attempt);

/// Retry helper: calls `body(seed_for(attempt), attempt)` until it returns
/// without throwing or `max_attempts` is exhausted.
struct RetryOutcome {
  int attempts = 0;
  bool ok = false;
  std::string error;  ///< last exception message when !ok
};
RetryOutcome run_with_seed_backoff(
    int max_attempts, const std::function<std::uint64_t(int)>& seed_for,
    const std::function<void(std::uint64_t seed, int attempt)>& body);

/// Expand the grid, run it, aggregate. Throws std::invalid_argument before
/// any job starts on an unknown benchmark name, an unknown defense kind or
/// tuning key, an unknown attack name, or an empty grid — the message lists
/// the valid kinds.
CampaignReport run_campaign(const CampaignSpec& spec);

}  // namespace stt
