// Dependency-aware job graph executed on a ThreadPool.
//
// A Job is a named unit of work with an arbitrary set of prerequisite
// jobs. The graph tracks, per job, the scheduling timeline the campaign
// reports care about (time spent ready-but-queued vs running) and a
// terminal state:
//
//   kPending --(deps met)--> kReady --(worker picks up)--> kRunning
//     kRunning --> kSucceeded | kFailed (body threw)
//     any pre-running state --> kCancelled (explicit cancel(), or a
//                               dependency failed / was cancelled)
//
// Failure containment is the point: one failed job cancels exactly its
// transitive dependents, never its siblings, and run() always returns
// with every job settled — a campaign with one infeasible grid point
// still completes the other rows.
//
// Cooperative cancellation: a running job is never interrupted, but its
// body can poll JobContext::cancelled() at convenient boundaries.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/thread_pool.hpp"

namespace stt {

using JobId = std::size_t;

enum class JobState {
  kPending,    ///< waiting on dependencies
  kReady,      ///< queued on the pool
  kRunning,    ///< body executing
  kSucceeded,  ///< body returned
  kFailed,     ///< body threw; error() holds the message
  kCancelled,  ///< cancelled before running
};

std::string job_state_name(JobState state);

class JobGraph;

/// Handed to every job body; exposes the cooperative cancellation flag.
class JobContext {
 public:
  bool cancelled() const;
  JobId id() const { return id_; }

 private:
  friend class JobGraph;
  JobContext(const JobGraph* graph, JobId id) : graph_(graph), id_(id) {}
  const JobGraph* graph_;
  JobId id_;
};

struct JobRecord {
  std::string name;
  JobState state = JobState::kPending;
  std::string error;      ///< exception message when kFailed; cancel cause
  double queue_ms = 0;    ///< kReady -> kRunning latency
  double run_ms = 0;      ///< kRunning -> settled
  std::size_t attempt = 0;  ///< set by callers that resubmit (campaign retry)
};

class JobGraph {
 public:
  using Body = std::function<void(JobContext&)>;

  /// Add a job; `deps` must all be ids returned by earlier add() calls.
  /// Must not be called while run() is in flight.
  JobId add(std::string name, Body body, const std::vector<JobId>& deps = {});

  /// Cancel a job (and, transitively, its dependents). Jobs already
  /// running are flagged for cooperative cancellation but not interrupted;
  /// jobs already settled are left untouched.
  void cancel(JobId id);

  /// Execute the whole graph on `pool`, blocking until every job settles.
  /// Reentrant-safe for *distinct* graphs sharing one pool.
  void run(ThreadPool& pool);

  std::size_t size() const;
  JobState state(JobId id) const;
  JobRecord record(JobId id) const;

  /// Count of jobs per terminal state, for summaries.
  std::size_t count(JobState state) const;

 private:
  friend class JobContext;

  struct Node {
    JobRecord record;
    Body body;
    std::vector<JobId> dependents;
    std::size_t deps_remaining = 0;
    bool cancel_requested = false;
    double ready_stamp = 0;  ///< Timer seconds when the job became ready
  };

  // All require nodes_mutex_ held.
  void make_ready(JobId id, ThreadPool& pool);
  void settle(JobId id, JobState state, const std::string& error,
              ThreadPool& pool);
  void cancel_locked(JobId id, const std::string& cause, ThreadPool& pool);

  void execute(JobId id, ThreadPool& pool);
  bool is_cancel_requested(JobId id) const;

  mutable std::mutex nodes_mutex_;
  std::condition_variable settled_cv_;
  std::vector<Node> nodes_;
  std::size_t settled_ = 0;
  bool running_ = false;
  ThreadPool* run_pool_ = nullptr;  ///< valid only while run() is in flight
};

}  // namespace stt
