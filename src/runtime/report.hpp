// Structured reporting for campaign runs.
//
// Two classes of output, deliberately kept apart:
//  * deterministic views — `campaign_results_csv` (one row per grid point)
//    and the "results"/"summary" sections of `campaign_json`. Byte-identical
//    across runs and across --jobs values; the determinism test and any
//    diff-based regression tracking key off these.
//  * measured views — `campaign_timing_csv` (Table II-style selection CPU
//    times plus scheduling latency) and the "runtime" JSON section. These
//    report what actually happened on this machine and vary run to run.
#pragma once

#include <cstdio>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/campaign.hpp"
#include "util/stats.hpp"
#include "util/timer.hpp"

namespace stt {

/// Deterministic per-grid-point result rows (RFC 4180 CSV, header first).
std::string campaign_results_csv(const CampaignReport& report);

/// Measured per-grid-point timings: selection CPU time in the paper's
/// MM:SS.t style and milliseconds, whole-flow and queue latency.
std::string campaign_timing_csv(const CampaignReport& report);

/// Per-defense-axis-point aggregates over the successful rows, in first-
/// appearance (grid) order. For legacy algorithm sweeps the axis points are
/// the paper adapters, so this is the old per-algorithm summary.
struct DefenseSummary {
  std::string defense;
  std::string tuning;  ///< "k=v;k=v" rendering, empty = defaults
  Accumulator perf_pct, power_pct, area_pct, luts, key_bits;
  std::size_t rows = 0;
  std::size_t failed = 0;
  std::size_t attacked = 0;        ///< rows with an attack stage
  std::size_t attack_breaks = 0;   ///< attacked rows where the key fell
};
std::vector<DefenseSummary> summarize_by_defense(const CampaignReport& report);

/// Human-readable aggregate table (TextTable-rendered).
std::string campaign_summary_text(const CampaignReport& report);

/// Full JSON document: results + summary (+ runtime profile unless
/// `include_profile` is false, which callers comparing documents across
/// runs should use).
std::string campaign_json(const CampaignReport& report,
                          bool include_profile = true);

/// Thread-safe single-line progress meter ("\r[done/total] label  t=..s"),
/// written to `out` only when `enabled` (pass isatty() or a --progress
/// flag). When the obs layer is enabled and attacks/simulation are
/// running, the line also carries live global rates (SAT DIPs/s and
/// simulated patterns/s) derived from `obs::Metrics`.
///
/// finish() terminates the line; the destructor calls it too, so an
/// exception unwinding past the meter can never leave a dangling "\r"
/// line on the terminal.
class ProgressMeter {
 public:
  ProgressMeter(std::size_t total, bool enabled, std::FILE* out = stderr);
  ~ProgressMeter();
  ProgressMeter(const ProgressMeter&) = delete;
  ProgressMeter& operator=(const ProgressMeter&) = delete;

  void tick(std::size_t done, const std::string& label);
  void finish();

 private:
  std::mutex mutex_;
  std::size_t total_;
  bool enabled_;
  std::FILE* out_;
  Timer timer_;
  bool dirty_ = false;  ///< a progress line is pending termination
  std::uint64_t base_dips_ = 0;   ///< "sat.dips" at construction
  std::uint64_t base_words_ = 0;  ///< "sim.words" at construction
};

}  // namespace stt
