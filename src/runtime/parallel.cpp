#include "runtime/parallel.hpp"

#include <condition_variable>
#include <mutex>

namespace stt {

void ThreadPoolParallelFor::run(std::size_t n,
                                const std::function<void(std::size_t)>& fn) {
  if (n == 0) return;
  if (n == 1) {
    fn(0);
    return;
  }
  // Private latch rather than pool.wait_idle(): the pool may be shared with
  // unrelated campaign jobs whose completion this batch must not wait on.
  std::mutex mutex;
  std::condition_variable done_cv;
  std::size_t remaining = n;
  for (std::size_t i = 0; i < n; ++i) {
    pool_->submit([&, i] {
      fn(i);
      std::lock_guard<std::mutex> lock(mutex);
      if (--remaining == 0) done_cv.notify_all();
    });
  }
  std::unique_lock<std::mutex> lock(mutex);
  done_cv.wait(lock, [&] { return remaining == 0; });
}

}  // namespace stt
