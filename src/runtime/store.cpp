#include "runtime/store.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <stdexcept>

#include "core/bitstream.hpp"
#include "runtime/wire.hpp"
#include "util/strings.hpp"

namespace stt {

namespace {

// 8-byte file magic; the trailing digit is the format version.
constexpr char kMagic[] = "STTSTOR1";
constexpr std::size_t kMagicLen = 8;

constexpr std::uint8_t kRecSpec = 0;
constexpr std::uint8_t kRecTrial = 1;
constexpr std::uint8_t kRecStage = 2;

// type + u32 len + u32 crc
constexpr std::size_t kFrameHeader = 1 + 4 + 4;

// Refuse to decode absurd frames: no record in a sane campaign comes close,
// and a bogus length from a corrupt header must not drive a huge read.
constexpr std::uint32_t kMaxPayload = 64u << 20;

[[noreturn]] void throw_errno(const std::string& what,
                              const std::string& path) {
  throw std::runtime_error(what + " '" + path +
                           "': " + std::strerror(errno));
}

void write_all(int fd, const char* data, std::size_t n,
               const std::string& path) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw_errno("store: write failed on", path);
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

std::uint32_t read_u32le(const char* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(static_cast<unsigned char>(p[i]))
         << (8 * i);
  }
  return v;
}

void put_u32le(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void encode_trial_key(WireWriter& w, const TrialKey& key) {
  w.str(key.benchmark);
  w.str(key.defense);
  w.str(key.defense_tuning);
  w.str(key.attack);
  w.i32(key.trial);
}

TrialKey decode_trial_key(WireReader& r) {
  TrialKey key;
  key.benchmark = r.str();
  key.defense = r.str();
  key.defense_tuning = r.str();
  key.attack = r.str();
  key.trial = r.i32();
  return key;
}

}  // namespace

void encode_campaign_grid(WireWriter& w, const CampaignGrid& grid) {
  w.u64(grid.master_seed);
  w.i32(grid.trials);
  w.i32(grid.max_attempts);
  w.b(grid.lint);
  w.f64(grid.activity);
  w.f64(grid.timing_margin);
  w.u32(static_cast<std::uint32_t>(grid.benchmarks.size()));
  for (const std::string& b : grid.benchmarks) w.str(b);
  w.u32(static_cast<std::uint32_t>(grid.defenses.size()));
  for (const DefenseAxis& d : grid.defenses) {
    w.str(d.kind);
    w.u32(static_cast<std::uint32_t>(d.tuning.size()));
    for (const auto& [k, v] : d.tuning) {
      w.str(k);
      w.str(v);
    }
  }
  w.u32(static_cast<std::uint32_t>(grid.attacks.size()));
  for (const std::string& a : grid.attacks) w.str(a);
}

CampaignGrid decode_campaign_grid(WireReader& r) {
  CampaignGrid grid;
  grid.master_seed = r.u64();
  grid.trials = r.i32();
  grid.max_attempts = r.i32();
  grid.lint = r.b();
  grid.activity = r.f64();
  grid.timing_margin = r.f64();
  for (std::uint32_t n = r.u32(); n > 0; --n) grid.benchmarks.push_back(r.str());
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    DefenseAxis axis;
    axis.kind = r.str();
    for (std::uint32_t m = r.u32(); m > 0; --m) {
      std::string k = r.str();
      std::string v = r.str();
      axis.tuning.emplace_back(std::move(k), std::move(v));
    }
    grid.defenses.push_back(std::move(axis));
  }
  for (std::uint32_t n = r.u32(); n > 0; --n) grid.attacks.push_back(r.str());
  return grid;
}

std::string campaign_grid_bytes(const CampaignGrid& grid) {
  WireWriter w;
  encode_campaign_grid(w, grid);
  return w.take();
}

void encode_metrics_snapshot(WireWriter& w, const obs::MetricsSnapshot& snap) {
  w.u32(static_cast<std::uint32_t>(snap.counters.size()));
  for (const auto& [name, v] : snap.counters) {
    w.str(name);
    w.u64(v);
  }
  w.u32(static_cast<std::uint32_t>(snap.gauges.size()));
  for (const auto& [name, v] : snap.gauges) {
    w.str(name);
    w.i64(v);
  }
  w.u32(static_cast<std::uint32_t>(snap.histograms.size()));
  for (const auto& [name, h] : snap.histograms) {
    w.str(name);
    w.u64(h.count);
    w.u64(h.sum);
    // Trim trailing zero buckets; the bucket count bounds the loop below.
    int last = -1;
    for (int b = 0; b < obs::HistogramSnapshot::kBuckets; ++b) {
      if (h.buckets[b] != 0) last = b;
    }
    w.u32(static_cast<std::uint32_t>(last + 1));
    for (int b = 0; b <= last; ++b) w.u64(h.buckets[b]);
  }
}

obs::MetricsSnapshot decode_metrics_snapshot(WireReader& r) {
  obs::MetricsSnapshot snap;
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    std::string name = r.str();
    snap.counters[std::move(name)] = r.u64();
  }
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    std::string name = r.str();
    snap.gauges[std::move(name)] = r.i64();
  }
  for (std::uint32_t n = r.u32(); n > 0; --n) {
    std::string name = r.str();
    obs::HistogramSnapshot h;
    h.count = r.u64();
    h.sum = r.u64();
    const std::uint32_t buckets = r.u32();
    if (buckets > obs::HistogramSnapshot::kBuckets) {
      throw std::runtime_error("store: histogram bucket count out of range");
    }
    for (std::uint32_t b = 0; b < buckets; ++b) h.buckets[b] = r.u64();
    snap.histograms[std::move(name)] = h;
  }
  return snap;
}

std::unique_ptr<ResultStore> ResultStore::create(
    const std::string& path, const std::string& spec_bytes) {
  return open_impl(path, &spec_bytes, /*create_only=*/true,
                   /*read_only=*/false);
}

std::unique_ptr<ResultStore> ResultStore::open(const std::string& path,
                                               const std::string& spec_bytes) {
  return open_impl(path, &spec_bytes, /*create_only=*/false,
                   /*read_only=*/false);
}

std::unique_ptr<ResultStore> ResultStore::open_existing(
    const std::string& path) {
  return open_impl(path, nullptr, /*create_only=*/false, /*read_only=*/true);
}

std::unique_ptr<ResultStore> ResultStore::open_impl(
    const std::string& path, const std::string* spec_bytes, bool create_only,
    bool read_only) {
  std::unique_ptr<ResultStore> store(new ResultStore);
  store->path_ = path;

  int flags = read_only ? O_RDONLY : O_RDWR;
  bool fresh = false;
  if (create_only) {
    // O_EXCL makes "refuse to clobber" atomic: an existing store (from an
    // earlier run) requires an explicit --resume.
    const int fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
      if (errno == EEXIST) {
        throw std::runtime_error("store: '" + path +
                                 "' already exists; pass --resume to append "
                                 "to it or choose a new path");
      }
      throw_errno("store: cannot create", path);
    }
    store->fd_ = fd;
    fresh = true;
  } else {
    int fd = ::open(path.c_str(), flags);
    if (fd < 0 && errno == ENOENT && !read_only) {
      // --resume against a not-yet-existing store starts one, so the first
      // run of a kill/resume loop needs no special-case flag.
      fd = ::open(path.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
      fresh = true;
    }
    if (fd < 0) throw_errno("store: cannot open", path);
    store->fd_ = fd;
  }

  if (fresh) {
    write_all(store->fd_, kMagic, kMagicLen, path);
    store->spec_bytes_ = *spec_bytes;
    store->append_frame(kRecSpec, store->spec_bytes_);
  } else {
    // Slurp and scan: whole records accumulate into the maps; the first
    // malformed frame ends the scan and (when writable) is truncated away
    // together with everything after it.
    std::string data;
    {
      struct stat st{};
      if (::fstat(store->fd_, &st) != 0) throw_errno("store: stat", path);
      data.resize(static_cast<std::size_t>(st.st_size));
      std::size_t got = 0;
      while (got < data.size()) {
        const ssize_t r =
            ::read(store->fd_, data.data() + got, data.size() - got);
        if (r < 0) {
          if (errno == EINTR) continue;
          throw_errno("store: read failed on", path);
        }
        if (r == 0) break;
        got += static_cast<std::size_t>(r);
      }
      data.resize(got);
    }
    if (data.size() < kMagicLen ||
        std::memcmp(data.data(), kMagic, kMagicLen) != 0) {
      throw std::runtime_error("store: '" + path +
                               "' is not a campaign result store (bad magic)");
    }
    std::size_t pos = kMagicLen;
    bool have_spec = false;
    std::string note;
    while (pos < data.size()) {
      if (data.size() - pos < kFrameHeader) {
        note = strformat("torn frame header at byte %zu", pos);
        break;
      }
      const std::uint8_t type = static_cast<std::uint8_t>(data[pos]);
      const std::uint32_t len = read_u32le(data.data() + pos + 1);
      const std::uint32_t crc = read_u32le(data.data() + pos + 5);
      if (len > kMaxPayload) {
        note = strformat("implausible frame length %u at byte %zu",
                         static_cast<unsigned>(len), pos);
        break;
      }
      if (data.size() - pos - kFrameHeader < len) {
        note = strformat("torn frame payload at byte %zu", pos);
        break;
      }
      const std::string_view payload(data.data() + pos + kFrameHeader, len);
      if (crc32(payload) != crc) {
        note = strformat("checksum mismatch at byte %zu", pos);
        break;
      }
      try {
        WireReader r(payload);
        if (type == kRecSpec) {
          if (have_spec) throw std::runtime_error("duplicate spec record");
          store->spec_bytes_ = std::string(payload);
          have_spec = true;
        } else if (type == kRecTrial) {
          if (!have_spec) throw std::runtime_error("trial before spec");
          TrialKey key = decode_trial_key(r);
          StoredTrial t;
          t.record = decode_trial_record(r);
          t.obs_delta = decode_metrics_snapshot(r);
          if (!r.done()) throw std::runtime_error("trailing payload bytes");
          // Keep-first: a duplicate can only be a byte-identical re-append
          // from an interrupted resume (appends are key-deduplicated).
          store->trials_.emplace(std::move(key), std::move(t));
        } else if (type == kRecStage) {
          if (!have_spec) throw std::runtime_error("stage before spec");
          std::string key = r.str();
          obs::MetricsSnapshot delta = decode_metrics_snapshot(r);
          if (!r.done()) throw std::runtime_error("trailing payload bytes");
          store->stages_.emplace(std::move(key), std::move(delta));
        } else {
          throw std::runtime_error(
              strformat("unknown record type %u", static_cast<unsigned>(type)));
        }
      } catch (const std::exception& e) {
        note = strformat("undecodable frame at byte %zu (%s)", pos, e.what());
        break;
      }
      pos += kFrameHeader + len;
    }
    store->open_stats_.trials = store->trials_.size();
    store->open_stats_.stages = store->stages_.size();
    if (pos < data.size()) {
      store->open_stats_.dropped_bytes = data.size() - pos;
      store->open_stats_.note =
          note + strformat("; dropped %zu trailing byte(s)",
                           data.size() - pos);
      if (!read_only) {
        if (::ftruncate(store->fd_, static_cast<off_t>(pos)) != 0) {
          throw_errno("store: cannot truncate torn tail of", path);
        }
        if (::fsync(store->fd_) != 0) throw_errno("store: fsync", path);
      }
    }
    if (!read_only) {
      if (::lseek(store->fd_, 0, SEEK_END) < 0) throw_errno("store: seek", path);
    }
    if (!have_spec) {
      if (read_only) {
        throw std::runtime_error("store: '" + path +
                                 "' holds no spec record (empty or torn "
                                 "before the first frame completed)");
      }
      // The crash landed inside the very first frame: restart the file.
      store->spec_bytes_ = *spec_bytes;
      store->append_frame(kRecSpec, store->spec_bytes_);
    }
    if (spec_bytes != nullptr && store->spec_bytes_ != *spec_bytes) {
      throw std::runtime_error(
          "store: '" + path +
          "' was recorded by a different campaign (benchmarks, defenses, "
          "attacks, trials, seed, and flow knobs must all match to resume)");
    }
  }

  if (read_only) {
    ::close(store->fd_);
    store->fd_ = -1;
  } else if (const char* knob = std::getenv("STTLOCK_STORE_CRASH_AFTER")) {
    store->crash_after_ = std::strtol(knob, nullptr, 10);
  }
  return store;
}

ResultStore::~ResultStore() {
  if (fd_ >= 0) ::close(fd_);
}

void ResultStore::append_frame(std::uint8_t type, const std::string& payload) {
  if (fd_ < 0) {
    throw std::logic_error("store: append on a read-only store");
  }
  std::string frame;
  frame.reserve(kFrameHeader + payload.size());
  frame.push_back(static_cast<char>(type));
  put_u32le(frame, static_cast<std::uint32_t>(payload.size()));
  put_u32le(frame, crc32(payload));
  frame += payload;
  write_all(fd_, frame.data(), frame.size(), path_);
  // One fsync per record is the crash-safety contract: once an append
  // returns, a kill at any later instant leaves the record recoverable.
  if (::fsync(fd_) != 0) throw_errno("store: fsync", path_);
}

void ResultStore::maybe_crash_after_trial() {
  if (crash_after_ < 0) return;
  if (--crash_after_ > 0) return;
  // Simulate a kill mid-append: half a frame header, durably on disk, then
  // an abrupt exit (no destructors, no atexit) with a kill-like status.
  const char torn[] = {static_cast<char>(kRecTrial), 0x40, 0x00};
  write_all(fd_, torn, sizeof torn, path_);
  ::fsync(fd_);
  ::_exit(137);
}

bool ResultStore::append_trial(const TrialKey& key, const TrialRecord& record,
                               const obs::MetricsSnapshot& obs_delta) {
  std::lock_guard lock(mu_);
  if (trials_.count(key) != 0) return false;
  WireWriter w;
  encode_trial_key(w, key);
  encode_trial_record(w, record);
  encode_metrics_snapshot(w, obs_delta);
  append_frame(kRecTrial, w.bytes());
  trials_.emplace(key, StoredTrial{record, obs_delta});
  maybe_crash_after_trial();
  return true;
}

bool ResultStore::append_stage(const std::string& key,
                               const obs::MetricsSnapshot& obs_delta) {
  std::lock_guard lock(mu_);
  if (stages_.count(key) != 0) return false;
  WireWriter w;
  w.str(key);
  encode_metrics_snapshot(w, obs_delta);
  append_frame(kRecStage, w.bytes());
  stages_.emplace(key, obs_delta);
  return true;
}

}  // namespace stt
