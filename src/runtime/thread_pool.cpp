#include "runtime/thread_pool.hpp"

#include <stdexcept>

#include "obs/obs.hpp"

namespace stt {

ThreadPool::ThreadPool(unsigned num_threads) {
  if (num_threads == 0) {
    num_threads = std::thread::hardware_concurrency();
    if (num_threads == 0) num_threads = 1;
  }
  queues_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    queues_.push_back(std::make_unique<WorkerQueue>());
  }
  workers_.reserve(num_threads);
  for (unsigned i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

ThreadPool::~ThreadPool() { shutdown(Shutdown::kDrain); }

void ThreadPool::submit(Task task) {
  if (!task) throw std::invalid_argument("ThreadPool::submit: empty task");
  unsigned target;
  {
    std::lock_guard lock(coord_mutex_);
    if (!accepting_) {
      throw std::runtime_error("ThreadPool::submit: pool is shut down");
    }
    ++pending_;
    target = next_queue_;
    next_queue_ = (next_queue_ + 1) % static_cast<unsigned>(queues_.size());
  }
  {
    std::lock_guard lock(queues_[target]->mutex);
    queues_[target]->tasks.push_back(std::move(task));
  }
  // Lock-then-notify so a worker between its predicate check and its wait
  // cannot miss the signal.
  { std::lock_guard lock(coord_mutex_); }
  work_cv_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(coord_mutex_);
  idle_cv_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::shutdown(Shutdown mode) {
  {
    std::lock_guard lock(coord_mutex_);
    accepting_ = false;
    stopping_ = true;
  }
  if (mode == Shutdown::kDiscard) {
    std::size_t dropped = 0;
    for (auto& queue : queues_) {
      std::lock_guard lock(queue->mutex);
      dropped += queue->tasks.size();
      queue->tasks.clear();
    }
    if (dropped) {
      std::lock_guard lock(coord_mutex_);
      discarded_ += dropped;
      pending_ -= dropped;
      if (pending_ == 0) idle_cv_.notify_all();
    }
  }
  work_cv_.notify_all();
  for (auto& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lock(coord_mutex_);
  return {executed_, stolen_, discarded_};
}

bool ThreadPool::try_pop_local(unsigned index, Task& out) {
  auto& queue = *queues_[index];
  std::lock_guard lock(queue.mutex);
  if (queue.tasks.empty()) return false;
  out = std::move(queue.tasks.back());
  queue.tasks.pop_back();
  return true;
}

bool ThreadPool::try_steal(unsigned index, Task& out) {
  const auto n = queues_.size();
  for (std::size_t hop = 1; hop < n; ++hop) {
    auto& victim = *queues_[(index + hop) % n];
    std::lock_guard lock(victim.mutex);
    if (victim.tasks.empty()) continue;
    out = std::move(victim.tasks.front());
    victim.tasks.pop_front();
    return true;
  }
  return false;
}

bool ThreadPool::any_queued() {
  for (auto& queue : queues_) {
    std::lock_guard lock(queue->mutex);
    if (!queue->tasks.empty()) return true;
  }
  return false;
}

void ThreadPool::worker_loop(unsigned index) {
  for (;;) {
    Task task;
    const bool got_local = try_pop_local(index, task);
    const bool got = got_local || try_steal(index, task);
    if (got) {
      task();
      // Scheduling is timing-dependent, so these are runtime-only metrics.
      static obs::Counter& tasks =
          obs::Metrics::global().counter("pool.tasks", /*stable=*/false);
      static obs::Counter& steals =
          obs::Metrics::global().counter("pool.steals", /*stable=*/false);
      tasks.add(1);
      if (!got_local) steals.add(1);
      std::lock_guard lock(coord_mutex_);
      ++executed_;
      if (!got_local) ++stolen_;
      if (--pending_ == 0) idle_cv_.notify_all();
      continue;
    }
    std::unique_lock lock(coord_mutex_);
    work_cv_.wait(lock, [this] { return stopping_ || any_queued(); });
    if (stopping_ && !any_queued()) return;
  }
}

}  // namespace stt
