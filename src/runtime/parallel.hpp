// Adapter between the sim layer's ParallelFor interface and the campaign
// engine's work-stealing ThreadPool.
//
// The sim layer cannot link stt_runtime (the dependency runs the other way:
// runtime -> attack -> sim), so CompiledSim::eval_batch accepts the abstract
// `ParallelFor`; this adapter is how callers that own a ThreadPool (benches,
// the campaign driver) plug it in.
#pragma once

#include "runtime/thread_pool.hpp"
#include "sim/compiled.hpp"

namespace stt {

/// Runs the n index tasks of one batch on the wrapped pool and blocks until
/// all complete. Must not be invoked from inside a pool worker (the caller
/// blocks on a latch; a 1-thread pool would deadlock).
class ThreadPoolParallelFor : public ParallelFor {
 public:
  explicit ThreadPoolParallelFor(ThreadPool& pool) : pool_(&pool) {}

  void run(std::size_t n,
           const std::function<void(std::size_t)>& fn) override;

  /// Pool width, so eval_batch can size its word blocks to the worker
  /// count instead of assuming a fixed grain.
  std::size_t concurrency() const override { return pool_->size(); }

 private:
  ThreadPool* pool_;
};

}  // namespace stt
