#include "runtime/shard.hpp"

#include <map>
#include <stdexcept>
#include <utility>

#include "runtime/wire.hpp"
#include "util/strings.hpp"

namespace stt {

ShardSpec parse_shard(const std::string& text) {
  const std::size_t slash = text.find('/');
  ShardSpec spec;
  try {
    if (slash == std::string::npos || slash == 0 ||
        slash + 1 >= text.size()) {
      throw std::invalid_argument("");
    }
    std::size_t used_i = 0;
    std::size_t used_n = 0;
    const std::string i_text = text.substr(0, slash);
    const std::string n_text = text.substr(slash + 1);
    spec.index = static_cast<unsigned>(std::stoul(i_text, &used_i));
    spec.count = static_cast<unsigned>(std::stoul(n_text, &used_n));
    if (used_i != i_text.size() || used_n != n_text.size()) {
      throw std::invalid_argument("");
    }
  } catch (const std::exception&) {
    throw std::invalid_argument("bad shard '" + text +
                                "' (expected i/N, e.g. 2/4)");
  }
  if (spec.count < 1 || spec.index < 1 || spec.index > spec.count) {
    throw std::invalid_argument("bad shard '" + text +
                                "': index must satisfy 1 <= i <= N");
  }
  return spec;
}

namespace {

std::string trial_bytes(const StoredTrial& t) {
  WireWriter w;
  encode_trial_record(w, t.record);
  encode_metrics_snapshot(w, t.obs_delta);
  return w.take();
}

std::string snapshot_bytes(const obs::MetricsSnapshot& snap) {
  WireWriter w;
  encode_metrics_snapshot(w, snap);
  return w.take();
}

std::string key_label(const TrialKey& key) {
  std::string label =
      key.benchmark + "/" + key.defense;
  if (!key.defense_tuning.empty()) label += "(" + key.defense_tuning + ")";
  label += "/" + key.attack + "/t" + std::to_string(key.trial);
  return label;
}

}  // namespace

CampaignReport merge_stores(const std::vector<std::string>& paths,
                            MergeStats* stats) {
  if (paths.empty()) {
    throw std::runtime_error("merge: no input stores");
  }

  std::map<TrialKey, StoredTrial> trials;
  std::map<std::string, obs::MetricsSnapshot> stages;
  std::string spec_bytes;
  std::size_t duplicates = 0;

  for (const std::string& path : paths) {
    const auto store = ResultStore::open_existing(path);
    if (spec_bytes.empty()) {
      spec_bytes = store->spec_bytes();
    } else if (store->spec_bytes() != spec_bytes) {
      throw std::runtime_error(
          "merge: '" + path + "' and '" + paths.front() +
          "' were recorded by different campaigns (spec fingerprints "
          "differ); only shards of one grid can be merged");
    }
    for (const auto& [key, t] : store->trials()) {
      auto [it, inserted] = trials.emplace(key, t);
      if (inserted) continue;
      if (trial_bytes(it->second) != trial_bytes(t)) {
        throw std::runtime_error("merge: conflicting records for grid point " +
                                 key_label(key) + " in '" + path + "'");
      }
      ++duplicates;
    }
    for (const auto& [key, delta] : store->stages()) {
      auto [it, inserted] = stages.emplace(key, delta);
      if (inserted) continue;
      if (snapshot_bytes(it->second) != snapshot_bytes(delta)) {
        throw std::runtime_error("merge: conflicting stage delta '" + key +
                                 "' in '" + path + "'");
      }
      ++duplicates;
    }
  }

  WireReader reader(spec_bytes);
  const CampaignGrid grid = decode_campaign_grid(reader);

  CampaignReport report;
  report.benchmarks = grid.benchmarks;
  report.defenses = grid.defenses;
  report.attacks = grid.attacks;
  report.trials = grid.trials;
  report.master_seed = grid.master_seed;
  report.attack.clear();
  for (const std::string& attack : grid.attacks) {
    report.attack += report.attack.empty() ? attack : "," + attack;
  }

  // Rows in grid order, independent of which store held which shard.
  report.rows.reserve(grid.rows());
  std::size_t missing = 0;
  std::string first_missing;
  for (const std::string& bench : grid.benchmarks) {
    for (const DefenseAxis& axis : grid.defenses) {
      const std::string tuning = tuning_to_string(axis.tuning);
      for (const std::string& attack : grid.attacks) {
        for (int t = 0; t < grid.trials; ++t) {
          const TrialKey key{bench, axis.kind, tuning, attack, t};
          const auto it = trials.find(key);
          if (it == trials.end()) {
            if (missing++ == 0) first_missing = key_label(key);
            continue;
          }
          report.rows.push_back(it->second.record);
        }
      }
    }
  }
  if (missing != 0) {
    throw std::runtime_error(strformat(
        "merge: %zu of %zu grid points missing from the union (first: %s); "
        "run or resume the missing shards before merging",
        missing, grid.rows(), first_missing.c_str()));
  }

  // The obs contract (campaign.hpp): sum every stage delta exactly once.
  for (const auto& [key, delta] : stages) obs::snapshot_merge(report.obs, delta);
  for (const auto& [key, t] : trials) obs::snapshot_merge(report.obs, t.obs_delta);

  report.profile.rows_resumed = report.rows.size();
  for (const CampaignRow& row : report.rows) {
    if (!row.ok) ++report.profile.failed_rows;
  }

  if (stats != nullptr) {
    stats->stores = paths.size();
    stats->trials = trials.size();
    stats->stages = stages.size();
    stats->duplicates = duplicates;
  }
  return report;
}

}  // namespace stt
