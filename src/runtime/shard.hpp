// Static campaign sharding and deterministic shard-store merging.
//
// A shard "i/N" owns exactly the grid points whose flat row index
// (((b*n_def + d)*n_att + a)*n_trial + t, the campaign driver's layout)
// satisfies index % N == i-1. Striding by the innermost coordinates spreads
// every benchmark and defense across all shards, so shard wall-times stay
// balanced even when one benchmark dominates.
//
// `merge_stores` recombines shard stores (or an interrupted store plus its
// resumed continuation) into the full-grid CampaignReport: every store must
// carry the same spec fingerprint, duplicate records must be byte-identical
// (the codec is canonical, so equality of bytes is equality of values), the
// union must cover the grid, and rows come out in grid order with the obs
// block re-summed from the stored per-stage deltas — byte-identical CSV and
// stable JSON to a single uninterrupted run.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "runtime/campaign.hpp"
#include "runtime/store.hpp"

namespace stt {

struct ShardSpec {
  unsigned index = 1;  ///< 1-based
  unsigned count = 1;
};

/// Parse "i/N" (e.g. "2/4"). Throws std::invalid_argument unless
/// 1 <= i <= N.
ShardSpec parse_shard(const std::string& text);

/// Does shard `spec` own flat grid row `flat_index`?
inline bool shard_owns(const ShardSpec& spec, std::size_t flat_index) {
  return flat_index % spec.count == spec.index - 1;
}

struct MergeStats {
  std::size_t stores = 0;
  std::size_t trials = 0;      ///< unique grid points in the union
  std::size_t stages = 0;      ///< unique shared-stage deltas
  std::size_t duplicates = 0;  ///< byte-identical records seen twice
};

/// Merge the stores at `paths` into a full-grid report. Throws
/// std::runtime_error on spec-fingerprint mismatch, on conflicting
/// duplicates (same key, different bytes — the stores are not shards of
/// one campaign), and on an incomplete union (some grid points never ran;
/// the message says how many and names the first).
CampaignReport merge_stores(const std::vector<std::string>& paths,
                            MergeStats* stats = nullptr);

}  // namespace stt
