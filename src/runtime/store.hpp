// Crash-safe append-only campaign result store.
//
// One file per campaign (or per shard of one). The file is a magic header
// followed by length+CRC32-framed records, each fsync'd before the append
// call returns — so after a crash at any byte the file contains a prefix of
// whole records plus at most one torn tail, which `open` detects and
// truncates away with a diagnostic. Record types:
//
//   type 0  spec   — the wire-encoded resolved CampaignGrid, always the
//                    first record; resuming requires byte-equality with the
//                    resuming campaign's own grid encoding.
//   type 1  trial  — TrialKey + TrialRecord + the attack stage's captured
//                    stable-metrics delta.
//   type 2  stage  — a shared stage (circuit generation, defense flow)
//                    keyed by its job label, with its captured delta.
//
// Stage deltas are stored separately from trials because the obs contract
// (campaign.hpp) sums every stage exactly once: a resumed campaign replays
// stored deltas for stages it skips, and `merge_stores` (shard.hpp)
// deduplicates them across shard stores by key.
//
// Appends are serialized by one mutex and deduplicated against the
// in-memory key maps, so re-recording an already-stored key is a cheap
// no-op — this is what makes resume idempotent under repeated kills.
//
// Deterministic crash injection for tests/CI: when the environment variable
// STTLOCK_STORE_CRASH_AFTER=N is set, the Nth successful trial append
// writes half of the *next* frame's header and `_exit(137)`s, simulating a
// kill mid-write with a real torn tail.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "obs/obs.hpp"
#include "runtime/campaign.hpp"
#include "runtime/record.hpp"

namespace stt {

class WireWriter;
class WireReader;

/// The resolved campaign grid: every axis written out post-resolution
/// (benchmarks expanded, defense axis derived from the algorithm list when
/// empty, attack axis defaulted) plus the knobs that alter per-row results.
/// Its canonical wire encoding is the store's spec fingerprint: two
/// campaigns may share a store (resume) or have their stores merged only if
/// the encodings are byte-identical. Scheduling knobs (--jobs, shard
/// coordinates, store paths) are deliberately absent — a campaign may be
/// resumed at a different thread count and shards of one grid share one
/// fingerprint.
struct CampaignGrid {
  std::uint64_t master_seed = 0;
  int trials = 1;
  int max_attempts = 3;
  bool lint = true;
  double activity = 0.10;
  double timing_margin = 0.05;
  std::vector<std::string> benchmarks;
  std::vector<DefenseAxis> defenses;
  std::vector<std::string> attacks;

  /// Grid size and the flat row index shared with the campaign driver:
  /// ((b*n_def + d)*n_att + a)*n_trial + t.
  std::size_t rows() const {
    return benchmarks.size() * defenses.size() * attacks.size() *
           static_cast<std::size_t>(trials);
  }
};

void encode_campaign_grid(WireWriter& w, const CampaignGrid& grid);
CampaignGrid decode_campaign_grid(WireReader& r);

/// Convenience: the canonical fingerprint bytes of a grid.
std::string campaign_grid_bytes(const CampaignGrid& grid);

/// Canonical codec for a metrics snapshot (sorted maps, trimmed histogram
/// buckets): same value -> same bytes, so stored deltas can be compared for
/// merge-conflict detection by byte equality.
void encode_metrics_snapshot(WireWriter& w, const obs::MetricsSnapshot& snap);
obs::MetricsSnapshot decode_metrics_snapshot(WireReader& r);

/// Identity of one grid point, independent of grid dimensions — stores from
/// different shards of the same grid key their trials identically.
struct TrialKey {
  std::string benchmark;
  std::string defense;
  std::string defense_tuning;
  std::string attack;
  int trial = 0;

  auto operator<=>(const TrialKey&) const = default;
};

/// One recorded grid point: the full typed record plus the attack stage's
/// captured stable-metrics delta (empty when no attack ran).
struct StoredTrial {
  TrialRecord record;
  obs::MetricsSnapshot obs_delta;
};

/// What `open` found: how much was recovered and whether a torn or corrupt
/// tail was dropped (note is empty for a clean file).
struct StoreOpenStats {
  std::size_t trials = 0;
  std::size_t stages = 0;
  std::size_t dropped_bytes = 0;
  std::string note;
};

class ResultStore {
 public:
  /// Create a fresh store at `path` with the given spec fingerprint.
  /// Refuses to clobber an existing file (throws std::runtime_error telling
  /// the caller to pass --resume instead).
  static std::unique_ptr<ResultStore> create(const std::string& path,
                                             const std::string& spec_bytes);

  /// Open `path` for resuming: recover every whole record, truncate a torn
  /// tail, and require the recorded spec to equal `spec_bytes` byte-for-
  /// byte (throws std::runtime_error on mismatch — the store belongs to a
  /// different campaign). A missing file is created fresh, so kill/resume
  /// loops can start with --resume from the first run.
  static std::unique_ptr<ResultStore> open(const std::string& path,
                                           const std::string& spec_bytes);

  /// Read-only open for `sttlock merge` and inspection: recovers records
  /// (truncating a torn tail if the file is writable) but accepts any spec.
  static std::unique_ptr<ResultStore> open_existing(const std::string& path);

  ~ResultStore();
  ResultStore(const ResultStore&) = delete;
  ResultStore& operator=(const ResultStore&) = delete;

  const std::string& path() const { return path_; }
  const std::string& spec_bytes() const { return spec_bytes_; }
  const StoreOpenStats& open_stats() const { return open_stats_; }
  const std::map<TrialKey, StoredTrial>& trials() const { return trials_; }
  const std::map<std::string, obs::MetricsSnapshot>& stages() const {
    return stages_;
  }
  bool contains_trial(const TrialKey& key) const {
    return trials_.count(key) != 0;
  }

  /// Append one record, fsync'd before returning. Returns false (writing
  /// nothing) when the key is already recorded. Thread-safe.
  bool append_trial(const TrialKey& key, const TrialRecord& record,
                    const obs::MetricsSnapshot& obs_delta);
  bool append_stage(const std::string& key,
                    const obs::MetricsSnapshot& obs_delta);

 private:
  ResultStore() = default;
  static std::unique_ptr<ResultStore> open_impl(const std::string& path,
                                                const std::string* spec_bytes,
                                                bool create_only,
                                                bool read_only);
  void append_frame(std::uint8_t type, const std::string& payload);
  void maybe_crash_after_trial();

  std::string path_;
  std::string spec_bytes_;
  StoreOpenStats open_stats_;
  std::map<TrialKey, StoredTrial> trials_;
  std::map<std::string, obs::MetricsSnapshot> stages_;

  std::mutex mu_;
  int fd_ = -1;  ///< -1 = read-only open
  // Crash injection (STTLOCK_STORE_CRASH_AFTER): remaining successful trial
  // appends before the store tears its own tail and exits. -1 = disabled.
  long crash_after_ = -1;
};

}  // namespace stt
