#include "runtime/record.hpp"

#include <array>

#include "runtime/wire.hpp"
#include "util/strings.hpp"

namespace stt {

namespace {

std::string fmt4(double v) { return strformat("%.4f", v); }

// Cell formatter shorthands for the table below. Lint/attack columns are
// blank unless their stage ran — the blank string is part of the pinned
// CSV byte format, not a rendering default.
using R = const TrialRecord&;

}  // namespace

std::string trial_status(const TrialRecord& record) {
  return record.ok ? "ok" : "failed";
}

std::span<const TrialCsvField> trial_csv_fields() {
  // "algorithm" is the defense kind: the paper's three selection algorithms
  // are registered defenses of the same name, so legacy campaigns render
  // unchanged while the column covers the whole defense axis.
  static const std::array<TrialCsvField, 43> kFields = {{
      {"benchmark", [](R r) { return r.benchmark; }},
      {"algorithm", [](R r) { return r.defense; }},
      {"trial", [](R r) { return std::to_string(r.trial); }},
      {"circuit_seed", [](R r) { return std::to_string(r.circuit_seed); }},
      {"selection_seed",
       [](R r) { return std::to_string(r.selection_seed); }},
      {"status", [](R r) { return trial_status(r); }},
      {"attempts", [](R r) { return std::to_string(r.attempts); }},
      {"luts", [](R r) { return std::to_string(r.num_luts); }},
      {"perf_pct", [](R r) { return fmt4(r.perf_pct); }},
      {"power_pct", [](R r) { return fmt4(r.power_pct); }},
      {"area_pct", [](R r) { return fmt4(r.area_pct); }},
      {"orig_delay_ps", [](R r) { return fmt4(r.original_delay_ps); }},
      {"hybrid_delay_ps", [](R r) { return fmt4(r.hybrid_delay_ps); }},
      {"n_indep", [](R r) { return r.n_indep; }},
      {"n_dep", [](R r) { return r.n_dep; }},
      {"n_bf", [](R r) { return r.n_bf; }},
      {"paths", [](R r) { return std::to_string(r.paths_considered); }},
      {"timing_retries",
       [](R r) { return std::to_string(r.timing_retries); }},
      {"usl", [](R r) { return std::to_string(r.usl_replacements); }},
      {"defense_tuning", [](R r) { return r.defense_tuning; }},
      {"key_cells", [](R r) { return std::to_string(r.key_cells); }},
      {"key_bits", [](R r) { return std::to_string(r.key_bits); }},
      {"cells_added", [](R r) { return std::to_string(r.cells_added); }},
      {"cells_replaced",
       [](R r) { return std::to_string(r.cells_replaced); }},
      {"lint", [](R r) { return r.lint_ran ? r.lint_verdict : ""; }},
      {"lint_errors",
       [](R r) {
         return r.lint_ran ? std::to_string(r.lint_errors) : std::string();
       }},
      {"lint_warnings",
       [](R r) {
         return r.lint_ran ? std::to_string(r.lint_warnings) : std::string();
       }},
      {"audit_log10_drop",
       [](R r) { return r.lint_ran ? fmt4(r.audit_log10_drop) : std::string(); }},
      {"key_bits_static",
       [](R r) {
         return r.lint_ran ? std::to_string(r.key_bits_static)
                           : std::string();
       }},
      {"eff_key_bits",
       [](R r) {
         return r.lint_ran ? std::to_string(r.eff_key_bits) : std::string();
       }},
      {"analyze_verdict",
       [](R r) { return r.lint_ran ? r.analyze_verdict : std::string(); }},
      {"attack", [](R r) { return r.attack_ran ? r.attack : "none"; }},
      {"attack_success",
       [](R r) {
         return r.attack_ran ? (r.attack_success ? "1" : "0")
                             : std::string();
       }},
      {"attack_outcome",
       [](R r) { return r.attack_ran ? r.attack_outcome : std::string(); }},
      {"attack_queries",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_queries)
                             : std::string();
       }},
      {"attack_iters",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_iterations)
                             : std::string();
       }},
      {"attack_conflicts",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_conflicts)
                             : std::string();
       }},
      {"attack_decisions",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_decisions)
                             : std::string();
       }},
      {"attack_propagations",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_propagations)
                             : std::string();
       }},
      {"attack_learned",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_learned)
                             : std::string();
       }},
      {"attack_peak_clauses",
       [](R r) {
         return r.attack_ran ? std::to_string(r.attack_peak_clauses)
                             : std::string();
       }},
      {"attack_cnf_per_iter",
       [](R r) {
         return r.attack_ran ? fmt4(r.attack_cnf_per_iter) : std::string();
       }},
      {"error", [](R r) { return r.error; }},
  }};
  return kFields;
}

void encode_trial_record(WireWriter& w, const TrialRecord& r) {
  w.str(r.benchmark);
  w.str(r.defense);
  w.str(r.defense_tuning);
  w.u8(static_cast<std::uint8_t>(r.algorithm));
  w.str(r.attack);
  w.i32(r.trial);
  w.u64(r.circuit_seed);
  w.u64(r.selection_seed);
  w.i32(r.attempts);
  w.b(r.ok);
  w.str(r.error);
  w.i32(r.num_luts);
  w.i32(r.key_cells);
  w.i32(r.key_bits);
  w.i32(r.cells_added);
  w.i32(r.cells_replaced);
  w.f64(r.perf_pct);
  w.f64(r.power_pct);
  w.f64(r.area_pct);
  w.f64(r.original_delay_ps);
  w.f64(r.hybrid_delay_ps);
  w.str(r.n_indep);
  w.str(r.n_dep);
  w.str(r.n_bf);
  w.i32(r.paths_considered);
  w.i32(r.timing_retries);
  w.i32(r.usl_replacements);
  w.b(r.lint_ran);
  w.str(r.lint_verdict);
  w.i32(r.lint_errors);
  w.i32(r.lint_warnings);
  w.i32(r.lint_infos);
  w.f64(r.audit_log10_drop);
  w.i32(r.key_bits_static);
  w.i32(r.eff_key_bits);
  w.str(r.analyze_verdict);
  w.b(r.attack_ran);
  w.b(r.attack_success);
  w.str(r.attack_outcome);
  w.str(r.attack_detail);
  w.u64(r.attack_queries);
  w.u64(r.attack_iterations);
  w.i64(r.attack_conflicts);
  w.i64(r.attack_decisions);
  w.i64(r.attack_propagations);
  w.i64(r.attack_learned);
  w.i64(r.attack_peak_clauses);
  w.f64(r.attack_cnf_per_iter);
  w.f64(r.selection_ms);
  w.f64(r.flow_ms);
  w.f64(r.queue_ms);
}

TrialRecord decode_trial_record(WireReader& r) {
  TrialRecord t;
  t.benchmark = r.str();
  t.defense = r.str();
  t.defense_tuning = r.str();
  t.algorithm = static_cast<SelectionAlgorithm>(r.u8());
  t.attack = r.str();
  t.trial = r.i32();
  t.circuit_seed = r.u64();
  t.selection_seed = r.u64();
  t.attempts = r.i32();
  t.ok = r.b();
  t.error = r.str();
  t.num_luts = r.i32();
  t.key_cells = r.i32();
  t.key_bits = r.i32();
  t.cells_added = r.i32();
  t.cells_replaced = r.i32();
  t.perf_pct = r.f64();
  t.power_pct = r.f64();
  t.area_pct = r.f64();
  t.original_delay_ps = r.f64();
  t.hybrid_delay_ps = r.f64();
  t.n_indep = r.str();
  t.n_dep = r.str();
  t.n_bf = r.str();
  t.paths_considered = r.i32();
  t.timing_retries = r.i32();
  t.usl_replacements = r.i32();
  t.lint_ran = r.b();
  t.lint_verdict = r.str();
  t.lint_errors = r.i32();
  t.lint_warnings = r.i32();
  t.lint_infos = r.i32();
  t.audit_log10_drop = r.f64();
  t.key_bits_static = r.i32();
  t.eff_key_bits = r.i32();
  t.analyze_verdict = r.str();
  t.attack_ran = r.b();
  t.attack_success = r.b();
  t.attack_outcome = r.str();
  t.attack_detail = r.str();
  t.attack_queries = r.u64();
  t.attack_iterations = r.u64();
  t.attack_conflicts = r.i64();
  t.attack_decisions = r.i64();
  t.attack_propagations = r.i64();
  t.attack_learned = r.i64();
  t.attack_peak_clauses = r.i64();
  t.attack_cnf_per_iter = r.f64();
  t.selection_ms = r.f64();
  t.flow_ms = r.f64();
  t.queue_ms = r.f64();
  return t;
}

}  // namespace stt
