// Tiny deterministic binary codec for the campaign result store.
//
// Fixed-width little-endian integers, IEEE-754 bit-pattern doubles, and
// length-prefixed strings — no varints, no endianness surprises, no
// allocation on the read path beyond the strings themselves. The encoding
// is canonical: encoding the same value always produces the same bytes,
// which is what lets the store and the merge tool detect conflicting
// duplicate records by comparing payloads.
//
// WireReader throws std::runtime_error on any underflow so a truncated or
// corrupted payload that slipped past the store's CRC framing still fails
// loudly instead of yielding garbage records.
#pragma once

#include <bit>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <string_view>

namespace stt {

class WireWriter {
 public:
  void u8(std::uint8_t v) { buf_.push_back(static_cast<char>(v)); }

  void u32(std::uint32_t v) {
    for (int i = 0; i < 4; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void u64(std::uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      buf_.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
    }
  }

  void i32(std::int32_t v) { u32(static_cast<std::uint32_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { u8(v ? 1 : 0); }
  void f64(double v) { u64(std::bit_cast<std::uint64_t>(v)); }

  void str(std::string_view s) {
    u32(static_cast<std::uint32_t>(s.size()));
    buf_.append(s.data(), s.size());
  }

  const std::string& bytes() const { return buf_; }
  std::string take() { return std::move(buf_); }

 private:
  std::string buf_;
};

class WireReader {
 public:
  explicit WireReader(std::string_view bytes) : in_(bytes) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }

  std::uint32_t u32() {
    need(4);
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(
               static_cast<unsigned char>(in_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 4;
    return v;
  }

  std::uint64_t u64() {
    need(8);
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(
               static_cast<unsigned char>(in_[pos_ + i]))
           << (8 * i);
    }
    pos_ += 8;
    return v;
  }

  std::int32_t i32() { return static_cast<std::int32_t>(u32()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }
  bool b() { return u8() != 0; }
  double f64() { return std::bit_cast<double>(u64()); }

  std::string str() {
    const std::uint32_t n = u32();
    need(n);
    std::string s(in_.substr(pos_, n));
    pos_ += n;
    return s;
  }

  bool done() const { return pos_ == in_.size(); }

 private:
  void need(std::size_t n) const {
    if (in_.size() - pos_ < n) {
      throw std::runtime_error("wire: truncated payload");
    }
  }

  std::string_view in_;
  std::size_t pos_ = 0;
};

}  // namespace stt
