#include "runtime/report.hpp"

#include <map>

#include "util/strings.hpp"
#include "util/table.hpp"

namespace stt {

namespace {

std::string fmt(double v) { return strformat("%.4f", v); }

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += strformat("\\u%04x", c);
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string campaign_results_csv(const CampaignReport& report) {
  // Column names, order, and cell formatting all come from the TrialRecord
  // field table (record.cpp) — the one place the results schema is
  // declared — so this writer, the store, and schema checks cannot drift.
  const std::span<const TrialCsvField> fields = trial_csv_fields();
  std::vector<std::string> header;
  header.reserve(fields.size());
  for (const TrialCsvField& field : fields) header.emplace_back(field.name);
  TextTable table(std::move(header));
  for (const TrialRecord& row : report.rows) {
    std::vector<std::string> cells;
    cells.reserve(fields.size());
    for (const TrialCsvField& field : fields) {
      cells.push_back(field.cell(row));
    }
    table.add_row(std::move(cells));
  }
  return table.to_csv();
}

std::string campaign_timing_csv(const CampaignReport& report) {
  TextTable table({"benchmark", "algorithm", "trial", "selection_mmss",
                   "selection_ms", "flow_ms", "queue_ms"});
  for (const CampaignRow& row : report.rows) {
    table.add_row({row.benchmark, row.defense,
                   std::to_string(row.trial),
                   Timer::format_mmss(row.selection_ms / 1e3),
                   strformat("%.1f", row.selection_ms),
                   strformat("%.1f", row.flow_ms),
                   strformat("%.2f", row.queue_ms)});
  }
  return table.to_csv();
}

std::vector<DefenseSummary> summarize_by_defense(
    const CampaignReport& report) {
  std::vector<DefenseSummary> summaries;
  for (const CampaignRow& row : report.rows) {
    DefenseSummary* summary = nullptr;
    for (DefenseSummary& s : summaries) {
      if (s.defense == row.defense && s.tuning == row.defense_tuning) {
        summary = &s;
        break;
      }
    }
    if (!summary) {
      summaries.emplace_back();
      summary = &summaries.back();
      summary->defense = row.defense;
      summary->tuning = row.defense_tuning;
    }
    ++summary->rows;
    if (!row.ok) {
      ++summary->failed;
      continue;
    }
    summary->perf_pct.add(row.perf_pct);
    summary->power_pct.add(row.power_pct);
    summary->area_pct.add(row.area_pct);
    summary->luts.add(row.num_luts);
    summary->key_bits.add(row.key_bits);
    if (row.attack_ran) {
      ++summary->attacked;
      if (row.attack_success) ++summary->attack_breaks;
    }
  }
  return summaries;
}

std::string campaign_summary_text(const CampaignReport& report) {
  TextTable table({"Defense", "Rows", "Failed", "Perf% mean", "Pwr% mean",
                   "Area% mean", "#STT mean", "Key bits", "Broken"});
  for (const DefenseSummary& s : summarize_by_defense(report)) {
    const std::string label =
        s.tuning.empty() ? s.defense : s.defense + "(" + s.tuning + ")";
    table.add_row({label, std::to_string(s.rows), std::to_string(s.failed),
                   strformat("%.2f", s.perf_pct.mean()),
                   strformat("%.2f", s.power_pct.mean()),
                   strformat("%.2f", s.area_pct.mean()),
                   strformat("%.1f", s.luts.mean()),
                   strformat("%.1f", s.key_bits.mean()),
                   s.attacked ? strformat("%zu/%zu", s.attack_breaks,
                                          s.attacked)
                              : "-"});
  }
  return table.render();
}

std::string campaign_json(const CampaignReport& report, bool include_profile) {
  std::string out = "{\n";
  out += strformat("  \"master_seed\": %llu,\n",
                   static_cast<unsigned long long>(report.master_seed));
  out += strformat("  \"trials\": %d,\n", report.trials);
  out += "  \"attack\": \"" + json_escape(report.attack) + "\",\n";
  out += "  \"results\": [\n";
  for (std::size_t i = 0; i < report.rows.size(); ++i) {
    const CampaignRow& row = report.rows[i];
    out += "    {";
    out += "\"benchmark\": \"" + json_escape(row.benchmark) + "\", ";
    out += "\"algorithm\": \"" + json_escape(row.defense) + "\", ";
    out += "\"defense\": \"" + json_escape(row.defense) + "\", ";
    out += "\"defense_tuning\": \"" + json_escape(row.defense_tuning) + "\", ";
    out += strformat("\"trial\": %d, ", row.trial);
    out += strformat("\"circuit_seed\": %llu, ",
                     static_cast<unsigned long long>(row.circuit_seed));
    out += strformat("\"selection_seed\": %llu, ",
                     static_cast<unsigned long long>(row.selection_seed));
    out += "\"status\": \"" + trial_status(row) + "\", ";
    out += strformat("\"attempts\": %d, ", row.attempts);
    out += strformat("\"luts\": %d, ", row.num_luts);
    out += "\"perf_pct\": " + fmt(row.perf_pct) + ", ";
    out += "\"power_pct\": " + fmt(row.power_pct) + ", ";
    out += "\"area_pct\": " + fmt(row.area_pct) + ", ";
    out += "\"n_indep\": \"" + json_escape(row.n_indep) + "\", ";
    out += "\"n_dep\": \"" + json_escape(row.n_dep) + "\", ";
    out += "\"n_bf\": \"" + json_escape(row.n_bf) + "\", ";
    out += strformat("\"timing_retries\": %d, ", row.timing_retries);
    out += strformat("\"usl\": %d, ", row.usl_replacements);
    out += strformat(
        "\"key_cells\": %d, \"key_bits\": %d, \"cells_added\": %d, "
        "\"cells_replaced\": %d",
        row.key_cells, row.key_bits, row.cells_added, row.cells_replaced);
    if (row.lint_ran) {
      out += ", \"lint\": \"" + json_escape(row.lint_verdict) + "\", ";
      out += strformat(
          "\"lint_errors\": %d, \"lint_warnings\": %d, \"lint_infos\": %d, ",
          row.lint_errors, row.lint_warnings, row.lint_infos);
      out += "\"audit_log10_drop\": " + fmt(row.audit_log10_drop) + ", ";
      out += strformat("\"key_bits_static\": %d, \"eff_key_bits\": %d, ",
                       row.key_bits_static, row.eff_key_bits);
      out += "\"analyze_verdict\": \"" + json_escape(row.analyze_verdict) +
             "\"";
    }
    if (row.attack_ran) {
      out += ", \"attack\": \"" + json_escape(row.attack) + "\"";
      out += strformat(", \"attack_success\": %s, \"attack_queries\": %llu",
                       row.attack_success ? "true" : "false",
                       static_cast<unsigned long long>(row.attack_queries));
      out += ", \"attack_outcome\": \"" + json_escape(row.attack_outcome) +
             "\", \"attack_detail\": \"" + json_escape(row.attack_detail) +
             "\"";
      out += strformat(
          ", \"attack_iters\": %llu, \"attack_conflicts\": %lld"
          ", \"attack_decisions\": %lld, \"attack_propagations\": %lld"
          ", \"attack_learned\": %lld, \"attack_peak_clauses\": %lld",
          static_cast<unsigned long long>(row.attack_iterations),
          static_cast<long long>(row.attack_conflicts),
          static_cast<long long>(row.attack_decisions),
          static_cast<long long>(row.attack_propagations),
          static_cast<long long>(row.attack_learned),
          static_cast<long long>(row.attack_peak_clauses));
      out += ", \"attack_cnf_per_iter\": " + fmt(row.attack_cnf_per_iter);
    }
    if (!row.ok) {
      out += ", \"error\": \"" + json_escape(row.error) + "\"";
    }
    out += "}";
    if (i + 1 < report.rows.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  out += "  \"summary\": [\n";
  const auto summaries = summarize_by_defense(report);
  for (std::size_t i = 0; i < summaries.size(); ++i) {
    const DefenseSummary& s = summaries[i];
    out += "    {\"defense\": \"" + json_escape(s.defense) + "\", ";
    out += "\"defense_tuning\": \"" + json_escape(s.tuning) + "\", ";
    out += strformat("\"rows\": %zu, \"failed\": %zu, ", s.rows, s.failed);
    out += "\"perf_pct_mean\": " + fmt(s.perf_pct.mean()) + ", ";
    out += "\"power_pct_mean\": " + fmt(s.power_pct.mean()) + ", ";
    out += "\"area_pct_mean\": " + fmt(s.area_pct.mean()) + ", ";
    out += "\"luts_mean\": " + fmt(s.luts.mean()) + ", ";
    out += "\"key_bits_mean\": " + fmt(s.key_bits.mean()) + ", ";
    out += strformat("\"attacked\": %zu, \"attack_breaks\": %zu}", s.attacked,
                     s.attack_breaks);
    if (i + 1 < summaries.size()) out += ",";
    out += "\n";
  }
  out += "  ],\n";
  // Stable metrics delta: deterministic across runs and --jobs values,
  // so it belongs with "results"/"summary" rather than "runtime".
  out += "  \"obs\": " + obs::metrics_json(report.obs, 2).substr(2);
  if (include_profile) {
    const auto& p = report.profile;
    out += ",\n  \"runtime\": {";
    out += strformat("\"threads\": %u, ", p.threads);
    out += strformat("\"wall_seconds\": %.3f, ", p.wall_seconds);
    out += strformat("\"job_cpu_seconds\": %.3f, ", p.job_cpu_seconds);
    out += strformat("\"executed\": %llu, ",
                     static_cast<unsigned long long>(p.executed));
    out += strformat("\"stolen\": %llu, ",
                     static_cast<unsigned long long>(p.stolen));
    out += strformat("\"failed_rows\": %zu,\n", p.failed_rows);
    out += strformat("    \"rows_resumed\": %zu, \"rows_executed\": %zu, ",
                     p.rows_resumed, p.rows_executed);
    out += strformat("\"shard_index\": %u, \"shard_count\": %u,\n",
                     p.shard_index, p.shard_count);
    out += strformat(
        "    \"cache_builds\": %llu, \"cache_reuses\": %llu, ",
        static_cast<unsigned long long>(p.cache_builds),
        static_cast<unsigned long long>(p.cache_reuses));
    out += "\"cache_saved_ms\": " + fmt(p.cache_saved_ms) + ",\n";
    out += "    \"store_note\": \"" + json_escape(p.store_note) + "\",\n";
    out += "    \"obs\": " + obs::metrics_json(p.obs, 4).substr(4);
    out += "}";
  }
  out += "\n}\n";
  return out;
}

ProgressMeter::ProgressMeter(std::size_t total, bool enabled, std::FILE* out)
    : total_(total),
      enabled_(enabled),
      out_(out),
      base_dips_(obs::Metrics::global().counter_value("sat.dips")),
      base_words_(obs::Metrics::global().counter_value("sim.words")) {}

ProgressMeter::~ProgressMeter() { finish(); }

void ProgressMeter::tick(std::size_t done, const std::string& label) {
  if (!enabled_) return;
  std::lock_guard lock(mutex_);
  const double elapsed = timer_.seconds();
  std::string rates;
  if (elapsed > 0) {
    const std::uint64_t dips =
        obs::Metrics::global().counter_value("sat.dips") - base_dips_;
    const std::uint64_t words =
        obs::Metrics::global().counter_value("sim.words") - base_words_;
    if (dips != 0) {
      rates += strformat(" %.1f dips/s", static_cast<double>(dips) / elapsed);
    }
    if (words != 0) {
      // One sim word is 64 bit-parallel patterns.
      rates += strformat(" %.2fM evals/s",
                         static_cast<double>(words) * 64.0 / elapsed / 1e6);
    }
  }
  std::fprintf(out_, "\r[%zu/%zu] %-40s t=%.1fs%s", done, total_,
               label.c_str(), elapsed, rates.c_str());
  std::fflush(out_);
  dirty_ = true;
}

void ProgressMeter::finish() {
  if (!enabled_) return;
  std::lock_guard lock(mutex_);
  if (dirty_) {
    std::fputc('\n', out_);
    std::fflush(out_);
    dirty_ = false;
  }
}

}  // namespace stt
