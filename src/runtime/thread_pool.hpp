// Work-stealing thread pool: the execution backbone of the experiment
// campaign engine.
//
// Each worker owns a deque; `submit` distributes tasks round-robin across
// the worker deques. A worker pops from the back of its own deque (LIFO,
// cache-friendly) and, when empty, steals from the front of a sibling's
// deque (FIFO, oldest-first, which keeps stolen work coarse). Campaign
// jobs are heavyweight (a full secure-flow run is milliseconds to seconds),
// so queues are mutex-protected — contention is negligible at this
// granularity and the implementation stays ThreadSanitizer-clean.
//
// Shutdown semantics are explicit because the campaign driver needs both:
//  * shutdown(kDrain)   — finish every pending task, then join (default,
//                         also what the destructor does);
//  * shutdown(kDiscard) — drop tasks that have not started, finish only
//                         the ones already running, then join. Pending
//                         tasks are counted in stats().discarded.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace stt {

class ThreadPool {
 public:
  using Task = std::function<void()>;

  enum class Shutdown { kDrain, kDiscard };

  struct Stats {
    std::uint64_t executed = 0;   ///< tasks run to completion
    std::uint64_t stolen = 0;     ///< tasks taken from a sibling's deque
    std::uint64_t discarded = 0;  ///< tasks dropped by shutdown(kDiscard)
  };

  /// `num_threads == 0` means std::thread::hardware_concurrency() (min 1).
  explicit ThreadPool(unsigned num_threads = 0);

  /// Drains pending work and joins (equivalent to shutdown(kDrain)).
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task. Throws std::runtime_error after shutdown().
  void submit(Task task);

  /// Block until every submitted task has finished (or been discarded).
  /// The pool remains usable afterwards.
  void wait_idle();

  /// Stop the pool and join all workers. Idempotent; `mode` of the first
  /// call wins.
  void shutdown(Shutdown mode = Shutdown::kDrain);

  unsigned size() const { return static_cast<unsigned>(workers_.size()); }

  Stats stats() const;

 private:
  struct WorkerQueue {
    std::mutex mutex;
    std::deque<Task> tasks;
  };

  void worker_loop(unsigned index);
  bool try_pop_local(unsigned index, Task& out);
  bool try_steal(unsigned index, Task& out);
  bool any_queued();

  std::vector<std::unique_ptr<WorkerQueue>> queues_;
  std::vector<std::thread> workers_;

  // One coordination mutex guards the condition variables and the
  // stop/pending transitions observed by their predicates.
  mutable std::mutex coord_mutex_;
  std::condition_variable work_cv_;  ///< workers sleep here
  std::condition_variable idle_cv_;  ///< wait_idle() sleeps here
  bool stopping_ = false;
  bool accepting_ = true;
  std::size_t pending_ = 0;  ///< submitted, not yet finished or discarded

  unsigned next_queue_ = 0;  ///< round-robin submit cursor (under coord_mutex_)

  std::uint64_t executed_ = 0;
  std::uint64_t stolen_ = 0;
  std::uint64_t discarded_ = 0;
};

}  // namespace stt
