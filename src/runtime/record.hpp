// TrialRecord: the typed result of one campaign grid point, and the single
// source of truth for every view of it.
//
// The CSV writer (report.cpp), the JSON writer, the per-defense summary,
// and the crash-safe result store (store.hpp) all consume this struct —
// the store serializes records with the binary codec below instead of
// re-parsing formatted rows, and the CSV writer walks `trial_csv_fields()`
// so the column set, order, and formatting are declared exactly once.
//
// `CampaignRow` (campaign.hpp) is an alias of this type: the campaign
// driver fills TrialRecords in place, so legacy consumers compile
// unchanged while the store/merge machinery gets a real record type.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "core/flow.hpp"

namespace stt {

class WireWriter;
class WireReader;

/// One grid point's outcome. Fields above the "measured" marker are
/// deterministic; the measured block varies run to run.
struct TrialRecord {
  std::string benchmark;
  /// Defense axis point: registry kind and its "k=v;k=v" tuning rendering
  /// (empty = defaults). For paper adapters `algorithm` mirrors the kind so
  /// legacy consumers keep working; for other defenses it is meaningless.
  std::string defense;
  std::string defense_tuning;
  SelectionAlgorithm algorithm = SelectionAlgorithm::kIndependent;
  /// Attack axis point ("none" = no attack stage on this row).
  std::string attack = "none";
  int trial = 0;
  std::uint64_t circuit_seed = 0;
  std::uint64_t selection_seed = 0;  ///< seed of the successful attempt
  int attempts = 1;
  bool ok = false;
  std::string error;  ///< last failure message when !ok

  // Flow metrics (Table I + security sign-off).
  int num_luts = 0;
  // Key-material accounting from the defense's DefenseResult.
  int key_cells = 0;
  int key_bits = 0;
  int cells_added = 0;
  int cells_replaced = 0;
  double perf_pct = 0;
  double power_pct = 0;
  double area_pct = 0;
  double original_delay_ps = 0;
  double hybrid_delay_ps = 0;
  std::string n_indep;
  std::string n_dep;
  std::string n_bf;
  int paths_considered = 0;
  int timing_retries = 0;
  int usl_replacements = 0;

  // Lint stage (when spec.lint): verdict of the static analysis over the
  // hybrid netlist, plus the largest log10 gap between the optimistic and
  // audited Eq. (1)-(3) figures (0 when no candidate set collapsed).
  bool lint_ran = false;
  std::string lint_verdict;  ///< clean | info | warnings | errors
  int lint_errors = 0;
  int lint_warnings = 0;
  int lint_infos = 0;
  double audit_log10_drop = 0;
  // Key-dependency analysis (verify/keydep, part of the lint stage):
  // statically recoverable key bits, the predicted effective key space in
  // bits, and the analyzer's one-word verdict for the netlist.
  int key_bits_static = 0;
  int eff_key_bits = 0;
  std::string analyze_verdict;  ///< empty | broken | degraded | secure

  // Attack stage (when spec.attack != "none"), filled from the registry's
  // UnifiedResult. The solver-telemetry block below is zero for the
  // non-SAT attacks; for "sat" it mirrors SatAttackStats
  // (canonical-member counts, deterministic across --jobs).
  bool attack_ran = false;
  bool attack_success = false;
  std::string attack_outcome;  ///< solved | timed_out | budget_exhausted | ...
  std::string attack_detail;   ///< registry one-liner (dips, rows, ...)
  std::uint64_t attack_queries = 0;
  std::uint64_t attack_iterations = 0;
  std::int64_t attack_conflicts = 0;
  std::int64_t attack_decisions = 0;
  std::int64_t attack_propagations = 0;
  std::int64_t attack_learned = 0;
  std::int64_t attack_peak_clauses = 0;
  double attack_cnf_per_iter = 0;

  // -- measured (non-deterministic; reported separately) ------------------
  double selection_ms = 0;  ///< Table II metric, from the selector's timer
  double flow_ms = 0;       ///< whole-job run time
  double queue_ms = 0;      ///< ready -> running scheduling latency
};

/// "ok" | "failed" — the status cell/JSON value shared by every view.
std::string trial_status(const TrialRecord& record);

/// One column of the deterministic results CSV: header name plus the
/// formatter producing the (possibly blank) cell for a record. Blank cells
/// encode "this stage did not run" for the lint/attack column blocks.
struct TrialCsvField {
  const char* name;
  std::string (*cell)(const TrialRecord&);
};

/// The results-CSV column table, in emission order. Shared by
/// `campaign_results_csv` and anything else that needs the canonical
/// column set (the store's self-description, schema checks).
std::span<const TrialCsvField> trial_csv_fields();

/// Canonical binary codec for the result store. Every field is written —
/// including the measured block, so a resumed campaign can reproduce the
/// timing view of the recorded rows — in fixed little-endian wire format.
/// `decode_trial_record` throws std::runtime_error on truncation.
void encode_trial_record(WireWriter& w, const TrialRecord& record);
TrialRecord decode_trial_record(WireReader& r);

}  // namespace stt
