// Compiled batch simulation engine: the hot path of every expensive loop.
//
// `CompiledSim` lowers a `Netlist` once into a flat instruction stream —
// topologically ordered opcodes specialized by (kind, fan-in), fan-in wave
// indices packed into one contiguous CSR array, LUT truth-table masks inline
// in the instruction (the IR lives in sim/kernels.hpp) — and evaluates into
// caller-provided scratch buffers, so the hot path performs zero heap
// allocations. Three entry points:
//
//  * `eval_word`  — one 64-pattern word per net, the classic lane layout;
//  * `eval_batch` — W words per net in a *blocked* wave layout (the value of
//    net r, word w lives at `wave[r * W + w]`), which amortizes instruction
//    decode and fan-in index loads across a block of words per instruction;
//  * `eval_batch` with a `ParallelFor` — fans word blocks out across worker
//    threads; lanes are independent, so results are bit-identical for every
//    batch width and thread count.
//
// Execution is SIMD-wide: every entry point dispatches to the widest kernel
// the host supports (scalar 64-bit words, AVX2 4-word lanes, AVX-512 8-word
// lanes — see sim/isa.hpp for the one-time CPUID probe and the
// --sim-isa / STTLOCK_SIM_ISA override). The kernels instantiate one shared
// interpreter template, so results are bit-identical across ISAs; the batch
// block size is lane-width-aware (`words_per_block`) so wide lanes amortize
// instruction decode over several vector iterations.
//
// LUT masks can be re-patched in place (`set_lut_mask`) without re-lowering,
// which is what the key-guessing attack loops (brute force, ML, DPA) need:
// compile once, mutate the candidate key, re-evaluate.
//
// The engine snapshots the netlist *structure* at construction. Function
// changes that keep every cell's fan-in list intact (LUT mask edits,
// gate -> LUT conversion via `replace_with_lut`) can be absorbed with
// `resync_functions`; anything structural requires a fresh `CompiledSim`.
#pragma once

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/isa.hpp"
#include "sim/kernels.hpp"

namespace stt {

/// Minimal parallel-execution interface so the sim layer can fan work out
/// across the runtime ThreadPool without linking against it (stt_runtime
/// already depends on stt_attack -> stt_sim). `run` must invoke fn(i) for
/// every i in [0, n) and return only when all invocations finished.
/// `ThreadPoolParallelFor` (src/runtime/parallel.hpp) is the adapter.
class ParallelFor {
 public:
  virtual ~ParallelFor() = default;
  virtual void run(std::size_t n,
                   const std::function<void(std::size_t)>& fn) = 0;
  /// Worker count hint used to size work blocks; 1 when unknown (a serial
  /// fallback is always a correct interpretation).
  virtual std::size_t concurrency() const { return 1; }
};

class CompiledSim {
 public:
  /// Words per instruction-stream pass of the scalar kernel; the historical
  /// block size. Wide kernels use `words_per_block()` instead, which scales
  /// with the lane width so each instruction still amortizes its decode
  /// over several vector iterations.
  static constexpr std::size_t kWordsPerBlock = 8;

  /// 64-bit words per SIMD lane of the currently active kernel (1 scalar,
  /// 4 AVX2, 8 AVX-512). May change when set_sim_isa intervenes.
  static std::size_t lane_words() { return sim_lane_words(active_sim_isa()); }

  /// `w` rounded up to a whole number of active-ISA lanes: the unit in
  /// which lane-aware callers (ScanOracle) reserve wave scratch.
  static std::size_t padded_words(std::size_t w) {
    const std::size_t lane = lane_words();
    return (w + lane - 1) / lane * lane;
  }

  /// Minimum words per instruction-stream pass when `eval_batch` fans
  /// blocks out across a `ParallelFor`: the load-balancing grain.
  /// Lane-width-aware — four lanes per block for the wide kernels, the
  /// historical 8-word block for the scalar one — so a wide lane never
  /// straddles a block boundary. Serial `eval_batch` calls ignore the
  /// grain and run one pass over the whole batch: streaming each wave row
  /// end to end is markedly faster than revisiting rows block by block
  /// (sequential prefetch, one row-address computation per instruction).
  static std::size_t words_per_block(SimIsa isa) {
    const std::size_t lane = sim_lane_words(isa);
    return lane == 1 ? kWordsPerBlock : 4 * lane;
  }

  /// Pin the `eval_batch` block size to `words` for benchmarking and
  /// tuning (0 restores the automatic policy above). Results are
  /// bit-identical for every block size; only the memory-access schedule
  /// changes. Also settable via the STTLOCK_SIM_BLOCK environment
  /// variable, read once at first use.
  static void set_batch_block_override(std::size_t words);
  static std::size_t batch_block_override();

  /// Lower `nl` into the instruction stream. The netlist must outlive the
  /// engine (it is re-read by `resync_functions` only).
  explicit CompiledSim(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Rows in a wave buffer: one per netlist cell, indexed by CellId, so
  /// existing per-cell consumers (activity counting, DPA's wave[target])
  /// keep their indexing.
  std::size_t wave_size() const { return n_cells_; }

  std::size_t num_inputs() const { return inputs_.size(); }
  std::size_t num_dffs() const { return dffs_.size(); }
  std::size_t num_outputs() const { return outputs_.size(); }

  /// Combinational-source / sink id lists (same order as the netlist's).
  std::span<const CellId> input_cells() const { return inputs_; }
  std::span<const CellId> dff_cells() const { return dffs_; }
  std::span<const CellId> output_cells() const { return outputs_; }
  /// D-pin drivers, ordered as dff_cells(): wave[next_state_cells()[j]] is
  /// flip-flop j's next state.
  std::span<const CellId> next_state_cells() const { return ns_cells_; }

  /// Patch the truth table of a compiled LUT in place (O(1), no re-lower).
  /// Throws std::invalid_argument if `id` is not a LUT instruction.
  void set_lut_mask(CellId id, std::uint64_t mask);
  std::uint64_t lut_mask(CellId id) const;

  /// Re-read every cell's kind and LUT mask from the netlist, re-deriving
  /// opcodes. Absorbs mask edits and in-place gate<->LUT conversions; the
  /// fan-in structure must be unchanged (unchecked in release builds).
  void resync_functions();

  /// Evaluate one word of 64 patterns into `wave` (size wave_size()); no
  /// allocation. `pi[i]` feeds input_cells()[i], `ff[j]` dff_cells()[j].
  void eval_word(std::span<const std::uint64_t> pi,
                 std::span<const std::uint64_t> ff,
                 std::span<std::uint64_t> wave) const;

  /// Evaluate W words in the blocked layout: element (row r, word w) of
  /// `wave` (size wave_size()*W) is wave[r*W + w]; `pi` (num_inputs()*W)
  /// and `ff` (num_dffs()*W) use the same layout. With `par`, word blocks
  /// run concurrently; results are bit-identical regardless of batch
  /// width, thread count, and active SIMD ISA (misaligned widths are
  /// finished by the scalar tail of the same kernel).
  void eval_batch(std::size_t W, std::span<const std::uint64_t> pi,
                  std::span<const std::uint64_t> ff,
                  std::span<std::uint64_t> wave,
                  ParallelFor* par = nullptr) const;

  /// Gather primary-output rows of a blocked wave into `out`
  /// (num_outputs()*W, blocked layout).
  void gather_outputs(std::size_t W, std::span<const std::uint64_t> wave,
                      std::span<std::uint64_t> out) const;
  /// Gather next-state rows of a blocked wave into `out` (num_dffs()*W).
  void gather_next_state(std::size_t W, std::span<const std::uint64_t> wave,
                         std::span<std::uint64_t> out) const;

 private:
  static simk::Op opcode_for(const Cell& cell);

  const Netlist* nl_;
  std::size_t n_cells_ = 0;
  std::vector<simk::Instr> instrs_;      ///< topological order
  std::vector<std::uint32_t> fanins_;    ///< CSR fan-in wave rows
  std::vector<std::uint32_t> instr_of_;  ///< CellId -> instr index or -1
  std::vector<CellId> inputs_, dffs_, outputs_, ns_cells_;
  simk::Stream stream_;  ///< borrowed view over the vectors above
};

}  // namespace stt
