#include "sim/scoap.hpp"

#include <algorithm>

namespace stt {

namespace {

constexpr double kInfCost = 1e17;

double cap(double v) { return std::min(v, kInfCost); }

// Truth mask of a combinational cell (configured view).
std::uint64_t func_mask(const Cell& c) {
  switch (c.kind) {
    case CellKind::kConst0:
      return 0;
    case CellKind::kConst1:
      return full_mask(0);
    case CellKind::kLut:
      return c.lut_mask;
    default:
      return gate_truth_mask(c.kind, c.fanin_count());
  }
}

}  // namespace

double ScoapResult::resolvability(const Netlist& nl, CellId id) const {
  const Cell& c = nl.cell(id);
  double justify = 0;
  for (const CellId f : c.fanins) {
    justify += std::min(cc0[f], cc1[f]);
  }
  return cap(justify + co[id]);
}

ScoapResult compute_scoap(const Netlist& nl, const ScoapOptions& opt) {
  ScoapResult r;
  r.cc0.assign(nl.size(), kInfCost);
  r.cc1.assign(nl.size(), kInfCost);
  r.co.assign(nl.size(), kInfCost);

  const auto order = nl.topo_order();

  // ---- controllability: forward relaxation --------------------------------
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    bool changed = false;
    for (const CellId id : order) {
      const Cell& c = nl.cell(id);
      double new0 = r.cc0[id];
      double new1 = r.cc1[id];
      switch (c.kind) {
        case CellKind::kInput:
          new0 = new1 = 1;
          break;
        case CellKind::kConst0:
          new0 = 0;
          break;
        case CellKind::kConst1:
          new1 = 0;
          break;
        case CellKind::kDff:
          if (!c.fanins.empty()) {
            new0 = cap(r.cc0[c.fanins[0]] + opt.sequential_increment);
            new1 = cap(r.cc1[c.fanins[0]] + opt.sequential_increment);
          }
          break;
        default: {
          if (opt.attacker_view && c.kind == CellKind::kLut) {
            new0 = new1 = opt.unknown_lut_cost;
            break;
          }
          if (c.fanin_count() > kMaxLutInputs) {
            // Wide standard gates: closed-form SCOAP rules.
            double sum0 = 0, sum1 = 0, min0 = kInfCost, min1 = kInfCost,
                   summin = 0;
            for (const CellId f : c.fanins) {
              sum0 += r.cc0[f];
              sum1 += r.cc1[f];
              min0 = std::min(min0, r.cc0[f]);
              min1 = std::min(min1, r.cc1[f]);
              summin += std::min(r.cc0[f], r.cc1[f]);
            }
            switch (c.kind) {
              case CellKind::kAnd:
                new1 = cap(sum1 + 1);
                new0 = cap(min0 + 1);
                break;
              case CellKind::kNand:
                new0 = cap(sum1 + 1);
                new1 = cap(min0 + 1);
                break;
              case CellKind::kOr:
                new0 = cap(sum0 + 1);
                new1 = cap(min1 + 1);
                break;
              case CellKind::kNor:
                new1 = cap(sum0 + 1);
                new0 = cap(min1 + 1);
                break;
              default:  // XOR/XNOR: parity, both values cost every input
                new0 = new1 = cap(summin + 1);
                break;
            }
            break;
          }
          const std::uint64_t mask = func_mask(c);
          const int k = c.fanin_count();
          // Minimize over *cubes* (each input 0/1/don't-care): a cube is a
          // valid justification of value v when every completion produces
          // v, and only the assigned inputs are charged. This yields the
          // textbook values (e.g. CC0(AND2) = min(CC0 inputs) + 1).
          double best0 = kInfCost;
          double best1 = kInfCost;
          std::uint32_t ternary[kMaxLutInputs] = {};  // 0,1,2=dc per input
          std::uint32_t cubes = 1;
          for (int i = 0; i < k; ++i) cubes *= 3;
          for (std::uint32_t code = 0; code < cubes; ++code) {
            std::uint32_t t = code;
            double cost = 1;
            std::uint32_t fixed_mask = 0;
            std::uint32_t fixed_val = 0;
            for (int i = 0; i < k; ++i) {
              ternary[i] = t % 3;
              t /= 3;
              if (ternary[i] == 0) {
                fixed_mask |= (1u << i);
                cost += r.cc0[c.fanins[i]];
              } else if (ternary[i] == 1) {
                fixed_mask |= (1u << i);
                fixed_val |= (1u << i);
                cost += r.cc1[c.fanins[i]];
              }
            }
            cost = cap(cost);
            // Skip only when neither polarity can improve.
            if (cost >= best0 && cost >= best1) continue;
            bool all0 = true;
            bool all1 = true;
            for (std::uint32_t row = 0; row < num_rows(k); ++row) {
              if ((row & fixed_mask) != fixed_val) continue;
              ((mask >> row) & 1ull) ? all0 = false : all1 = false;
              if (!all0 && !all1) break;
            }
            if (all1) best1 = std::min(best1, cost);
            if (all0) best0 = std::min(best0, cost);
          }
          new0 = best0;
          new1 = best1;
          break;
        }
      }
      if (new0 < r.cc0[id] || new1 < r.cc1[id]) {
        r.cc0[id] = std::min(r.cc0[id], new0);
        r.cc1[id] = std::min(r.cc1[id], new1);
        changed = true;
      }
    }
    if (!changed) break;
  }

  // ---- observability: backward relaxation ---------------------------------
  for (const CellId id : nl.outputs()) r.co[id] = 0;
  for (int iter = 0; iter < opt.max_iterations; ++iter) {
    bool changed = false;
    for (auto it = order.rbegin(); it != order.rend(); ++it) {
      const CellId id = *it;
      const Cell& c = nl.cell(id);
      // Observability of this cell's *inputs* through this cell.
      if (c.kind == CellKind::kDff) {
        if (!c.fanins.empty()) {
          const CellId d = c.fanins[0];
          const double v = cap(r.co[id] + opt.sequential_increment);
          if (v < r.co[d]) {
            r.co[d] = v;
            changed = true;
          }
        }
        continue;
      }
      if (!is_combinational(c.kind) || c.fanins.empty()) continue;
      if (opt.attacker_view && c.kind == CellKind::kLut) {
        // Propagation through an unknown function is blocked for a testing
        // attacker: charge the unknown-LUT penalty.
        for (const CellId f : c.fanins) {
          const double v = cap(r.co[id] + opt.unknown_lut_cost);
          if (v < r.co[f]) {
            r.co[f] = v;
            changed = true;
          }
        }
        continue;
      }
      if (c.fanin_count() > kMaxLutInputs) {
        // Wide standard gates: sensitize by fixing the side inputs to the
        // gate's non-controlling value (AND/NAND: 1, OR/NOR: 0, XOR: any).
        for (int i = 0; i < c.fanin_count(); ++i) {
          double side = 1;
          for (int j = 0; j < c.fanin_count(); ++j) {
            if (j == i) continue;
            const CellId f = c.fanins[j];
            switch (c.kind) {
              case CellKind::kAnd:
              case CellKind::kNand:
                side += r.cc1[f];
                break;
              case CellKind::kOr:
              case CellKind::kNor:
                side += r.cc0[f];
                break;
              default:
                side += std::min(r.cc0[f], r.cc1[f]);
                break;
            }
          }
          const double v = cap(r.co[id] + side);
          if (v < r.co[c.fanins[i]]) {
            r.co[c.fanins[i]] = v;
            changed = true;
          }
        }
        continue;
      }
      const std::uint64_t mask = func_mask(c);
      const int k = c.fanin_count();
      for (int i = 0; i < k; ++i) {
        // Cheapest side-input *cube* under which the output is sensitive
        // to input i for every completion of the unassigned inputs.
        double best = kInfCost;
        std::uint32_t cubes = 1;
        for (int j = 0; j < k - 1; ++j) cubes *= 3;
        for (std::uint32_t code = 0; code < cubes; ++code) {
          std::uint32_t t = code;
          double cost = 1;
          std::uint32_t fixed_mask = 0;
          std::uint32_t fixed_val = 0;
          for (int j = 0; j < k; ++j) {
            if (j == i) continue;
            const std::uint32_t tv = t % 3;
            t /= 3;
            if (tv == 0) {
              fixed_mask |= (1u << j);
              cost += r.cc0[c.fanins[j]];
            } else if (tv == 1) {
              fixed_mask |= (1u << j);
              fixed_val |= (1u << j);
              cost += r.cc1[c.fanins[j]];
            }
          }
          cost = cap(cost);
          if (cost >= best) continue;
          bool sensitive = true;
          for (std::uint32_t row = 0; row < num_rows(k) && sensitive; ++row) {
            if (row & (1u << i)) continue;
            if ((row & fixed_mask) != fixed_val) continue;
            const bool lo = (mask >> row) & 1ull;
            const bool hi = (mask >> (row | (1u << i))) & 1ull;
            sensitive = (lo != hi);
          }
          if (sensitive) best = cost;
        }
        const double v = cap(r.co[id] + best);
        if (v < r.co[c.fanins[i]]) {
          r.co[c.fanins[i]] = v;
          changed = true;
        }
      }
    }
    if (!changed) break;
  }
  return r;
}

}  // namespace stt
