// 4-word (256-bit) lane kernel. This translation unit is compiled with
// -mavx2 (see src/sim/CMakeLists.txt), so the Lane<4> vector-extension
// algebra lowers to single ymm operations. It must only be *called* after
// the runtime CPUID probe (sim/isa.hpp) confirms AVX2; nothing here runs
// at static-initialization time.
#if defined(STT_SIM_ENABLE_AVX2)

#define STT_SIMK_NS lanes_avx2
#define STT_SIMK_LANE 4
#include "sim/kernels_impl.h"

namespace stt::simk {

KernelFn avx2_kernel() { return &lanes_avx2::run; }

}  // namespace stt::simk

#else  // compiler cannot target AVX2: runtime dispatch never offers it

#include "sim/kernels.hpp"

namespace stt::simk {

KernelFn avx2_kernel() { return nullptr; }

}  // namespace stt::simk

#endif
