#include "sim/isa.hpp"

#include <atomic>
#include <cstdlib>
#include <stdexcept>
#include <string>

#include "sim/kernels.hpp"

namespace stt {

namespace {

constexpr int kUnresolved = -1;

/// Active ISA as its int code, or kUnresolved before first use.
std::atomic<int>& active_slot() {
  static std::atomic<int> slot{kUnresolved};
  return slot;
}

bool cpu_supports(SimIsa isa) {
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__))
  switch (isa) {
    case SimIsa::kScalar:
      return true;
    case SimIsa::kAvx2:
      return __builtin_cpu_supports("avx2");
    case SimIsa::kAvx512:
      return __builtin_cpu_supports("avx512f");
  }
  return false;
#else
  return isa == SimIsa::kScalar;
#endif
}

bool kernel_compiled(SimIsa isa) {
  switch (isa) {
    case SimIsa::kScalar:
      return simk::scalar_kernel() != nullptr;
    case SimIsa::kAvx2:
      return simk::avx2_kernel() != nullptr;
    case SimIsa::kAvx512:
      return simk::avx512_kernel() != nullptr;
  }
  return false;
}

/// Env override + CPUID probe; the slow path behind active_sim_isa().
SimIsa resolve() {
  if (const char* env = std::getenv("STTLOCK_SIM_ISA");
      env != nullptr && *env != '\0' && std::string_view(env) != "auto") {
    const auto parsed = parse_sim_isa(env);
    if (!parsed) {
      throw std::runtime_error(std::string("STTLOCK_SIM_ISA: unknown ISA '") +
                               env + "' (scalar|avx2|avx512|auto)");
    }
    if (!sim_isa_supported(*parsed)) {
      throw std::runtime_error(std::string("STTLOCK_SIM_ISA: ISA '") + env +
                               "' is not supported on this build/host");
    }
    return *parsed;
  }
  return detected_sim_isa();
}

}  // namespace

const char* sim_isa_name(SimIsa isa) {
  switch (isa) {
    case SimIsa::kScalar:
      return "scalar";
    case SimIsa::kAvx2:
      return "avx2";
    case SimIsa::kAvx512:
      return "avx512";
  }
  return "?";
}

std::optional<SimIsa> parse_sim_isa(std::string_view name) {
  if (name == "scalar") return SimIsa::kScalar;
  if (name == "avx2") return SimIsa::kAvx2;
  if (name == "avx512") return SimIsa::kAvx512;
  return std::nullopt;
}

std::size_t sim_lane_words(SimIsa isa) {
  switch (isa) {
    case SimIsa::kScalar:
      return 1;
    case SimIsa::kAvx2:
      return 4;
    case SimIsa::kAvx512:
      return 8;
  }
  return 1;
}

bool sim_isa_supported(SimIsa isa) {
  return kernel_compiled(isa) && cpu_supports(isa);
}

SimIsa detected_sim_isa() {
  if (sim_isa_supported(SimIsa::kAvx512)) return SimIsa::kAvx512;
  if (sim_isa_supported(SimIsa::kAvx2)) return SimIsa::kAvx2;
  return SimIsa::kScalar;
}

SimIsa active_sim_isa() {
  int code = active_slot().load(std::memory_order_acquire);
  if (code == kUnresolved) {
    const SimIsa resolved = resolve();
    // First resolver wins; a concurrent set_sim_isa is equally valid.
    int expected = kUnresolved;
    active_slot().compare_exchange_strong(expected, static_cast<int>(resolved),
                                          std::memory_order_acq_rel);
    code = active_slot().load(std::memory_order_acquire);
  }
  return static_cast<SimIsa>(code);
}

void set_sim_isa(SimIsa isa) {
  if (!sim_isa_supported(isa)) {
    throw std::runtime_error(
        std::string("set_sim_isa: ISA '") + sim_isa_name(isa) +
        "' is not supported on this build/host");
  }
  active_slot().store(static_cast<int>(isa), std::memory_order_release);
}

SimIsa set_sim_isa(std::string_view name) {
  if (name == "auto") {
    active_slot().store(kUnresolved, std::memory_order_release);
    return active_sim_isa();
  }
  const auto parsed = parse_sim_isa(name);
  if (!parsed) {
    throw std::runtime_error(std::string("--sim-isa: unknown ISA '") +
                             std::string(name) + "' (scalar|avx2|avx512|auto)");
  }
  set_sim_isa(*parsed);
  return *parsed;
}

}  // namespace stt
