// Partially-resolved LUT state and conservative three-valued evaluation
// around it. Shared by the testing attacks (sensitization, guided-sens,
// DIP encoding) and by the verify layer's audit — it lives in sim so that
// verify does not depend on attack (the attack registry's oracle-free
// `static` kind depends on verify/keydep the other way around).
#pragma once

#include <unordered_map>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/ternary.hpp"

namespace stt {

/// What the attacker knows about one LUT's truth table so far.
struct LutKnowledge {
  std::uint32_t rows = 0;        ///< 2^fanin
  std::uint64_t known_mask = 0;  ///< rows whose value is resolved
  std::uint64_t value_mask = 0;  ///< resolved values

  bool complete() const {
    const std::uint64_t all =
        (rows >= 64) ? ~0ull : ((1ull << rows) - 1ull);
    return known_mask == all;
  }
};

using LutKnowledgeMap = std::unordered_map<CellId, LutKnowledge>;

/// Three-valued evaluation with partially known LUTs and one optional
/// forced cell value (used to test output sensitivity).
class PartialEvaluator {
 public:
  PartialEvaluator(const Netlist& nl, const LutKnowledgeMap& luts);

  /// `inputs` = PI values followed by FF state values.
  std::vector<Tri> eval(const std::vector<Tri>& inputs, CellId force_cell,
                        Tri force_value) const;

  /// Evaluate one partially-known LUT from definite/unknown inputs.
  Tri eval_partial_lut(CellId id, std::span<const Tri> fin) const;

 private:
  const Netlist* nl_;
  const LutKnowledgeMap* luts_;
  std::vector<CellId> order_;
};

}  // namespace stt
