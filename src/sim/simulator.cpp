#include "sim/simulator.hpp"

#include <stdexcept>

namespace stt {

std::uint64_t eval_cell_word(const Cell& cell,
                             std::span<const std::uint64_t> fanin_words) {
  const auto n = fanin_words.size();
  switch (cell.kind) {
    case CellKind::kConst0:
      return 0;
    case CellKind::kConst1:
      return ~0ull;
    case CellKind::kBuf:
      return fanin_words[0];
    case CellKind::kNot:
      return ~fanin_words[0];
    case CellKind::kAnd: {
      std::uint64_t v = ~0ull;
      for (std::size_t i = 0; i < n; ++i) v &= fanin_words[i];
      return v;
    }
    case CellKind::kNand: {
      std::uint64_t v = ~0ull;
      for (std::size_t i = 0; i < n; ++i) v &= fanin_words[i];
      return ~v;
    }
    case CellKind::kOr: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v |= fanin_words[i];
      return v;
    }
    case CellKind::kNor: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v |= fanin_words[i];
      return ~v;
    }
    case CellKind::kXor: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v ^= fanin_words[i];
      return v;
    }
    case CellKind::kXnor: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v ^= fanin_words[i];
      return ~v;
    }
    case CellKind::kLut: {
      // Word-parallel LUT: OR over asserted truth-table rows of the AND of
      // per-input (dis)agreement words.
      std::uint64_t out = 0;
      const auto rows = num_rows(static_cast<int>(n));
      for (std::uint32_t row = 0; row < rows; ++row) {
        if (!(cell.lut_mask & (1ull << row))) continue;
        std::uint64_t match = ~0ull;
        for (std::size_t i = 0; i < n; ++i) {
          match &= (row & (1u << i)) ? fanin_words[i] : ~fanin_words[i];
        }
        out |= match;
      }
      return out;
    }
    default:
      throw std::invalid_argument("eval_cell_word: not a combinational cell");
  }
}

Simulator::Simulator(const Netlist& nl) : nl_(&nl), order_(nl.topo_order()) {}

std::vector<std::uint64_t> Simulator::eval_comb(
    std::span<const std::uint64_t> pi_values,
    std::span<const std::uint64_t> ff_values) const {
  const Netlist& nl = *nl_;
  if (pi_values.size() != nl.inputs().size() ||
      ff_values.size() != nl.dffs().size()) {
    throw std::invalid_argument("Simulator::eval_comb: stimulus size mismatch");
  }
  std::vector<std::uint64_t> wave(nl.size(), 0);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    wave[nl.inputs()[i]] = pi_values[i];
  }
  for (std::size_t j = 0; j < ff_values.size(); ++j) {
    wave[nl.dffs()[j]] = ff_values[j];
  }

  std::uint64_t fin[kMaxGateInputs];
  for (const CellId id : order_) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    const int n = c.fanin_count();
    for (int i = 0; i < n; ++i) fin[i] = wave[c.fanins[i]];
    wave[id] = eval_cell_word(c, std::span<const std::uint64_t>(fin, n));
  }
  return wave;
}

std::vector<std::uint64_t> Simulator::outputs_of(
    std::span<const std::uint64_t> wave) const {
  std::vector<std::uint64_t> out;
  out.reserve(nl_->outputs().size());
  for (const CellId id : nl_->outputs()) out.push_back(wave[id]);
  return out;
}

std::vector<std::uint64_t> Simulator::next_state_of(
    std::span<const std::uint64_t> wave) const {
  std::vector<std::uint64_t> out;
  out.reserve(nl_->dffs().size());
  for (const CellId id : nl_->dffs()) {
    out.push_back(wave[nl_->cell(id).fanins.at(0)]);
  }
  return out;
}

std::vector<bool> Simulator::eval_single(const std::vector<bool>& pi_values,
                                         const std::vector<bool>& ff_values) const {
  std::vector<std::uint64_t> pis(pi_values.size());
  std::vector<std::uint64_t> ffs(ff_values.size());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    pis[i] = pi_values[i] ? ~0ull : 0ull;
  }
  for (std::size_t j = 0; j < ff_values.size(); ++j) {
    ffs[j] = ff_values[j] ? ~0ull : 0ull;
  }
  const auto wave = eval_comb(pis, ffs);
  const auto po = outputs_of(wave);
  std::vector<bool> out(po.size());
  for (std::size_t i = 0; i < po.size(); ++i) out[i] = (po[i] & 1ull) != 0;
  return out;
}

SequentialSimulator::SequentialSimulator(const Netlist& nl)
    : sim_(nl), state_(nl.dffs().size(), 0) {}

void SequentialSimulator::reset(bool bit) {
  for (auto& word : state_) word = bit ? ~0ull : 0ull;
}

void SequentialSimulator::set_state(std::span<const std::uint64_t> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("SequentialSimulator::set_state: size mismatch");
  }
  state_.assign(state.begin(), state.end());
}

std::vector<std::uint64_t> SequentialSimulator::step(
    std::span<const std::uint64_t> pi_values) {
  wave_ = sim_.eval_comb(pi_values, state_);
  auto outputs = sim_.outputs_of(wave_);
  state_ = sim_.next_state_of(wave_);
  return outputs;
}

}  // namespace stt
