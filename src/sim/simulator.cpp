#include "sim/simulator.hpp"

#include <bit>
#include <stdexcept>

namespace stt {

std::uint64_t eval_cell_word(const Cell& cell,
                             std::span<const std::uint64_t> fanin_words) {
  const auto n = fanin_words.size();
  switch (cell.kind) {
    case CellKind::kConst0:
      return 0;
    case CellKind::kConst1:
      return ~0ull;
    case CellKind::kBuf:
      return fanin_words[0];
    case CellKind::kNot:
      return ~fanin_words[0];
    case CellKind::kAnd: {
      std::uint64_t v = ~0ull;
      for (std::size_t i = 0; i < n; ++i) v &= fanin_words[i];
      return v;
    }
    case CellKind::kNand: {
      std::uint64_t v = ~0ull;
      for (std::size_t i = 0; i < n; ++i) v &= fanin_words[i];
      return ~v;
    }
    case CellKind::kOr: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v |= fanin_words[i];
      return v;
    }
    case CellKind::kNor: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v |= fanin_words[i];
      return ~v;
    }
    case CellKind::kXor: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v ^= fanin_words[i];
      return v;
    }
    case CellKind::kXnor: {
      std::uint64_t v = 0;
      for (std::size_t i = 0; i < n; ++i) v ^= fanin_words[i];
      return ~v;
    }
    case CellKind::kLut: {
      // Word-parallel LUT: OR over asserted truth-table rows of the AND of
      // per-input (dis)agreement words. 1- and 2-input LUTs (the common
      // cases after selection) evaluate closed-form; wider LUTs visit only
      // the asserted rows, taking the complement when more than half the
      // rows are asserted so at most rows/2 iterations remain.
      if (n == 1) {
        const std::uint64_t a = fanin_words[0];
        return ((cell.lut_mask & 2u) ? a : 0ull) |
               ((cell.lut_mask & 1u) ? ~a : 0ull);
      }
      if (n == 2) {
        const std::uint64_t a = fanin_words[0], b = fanin_words[1];
        std::uint64_t out = 0;
        if (cell.lut_mask & 1u) out |= ~a & ~b;
        if (cell.lut_mask & 2u) out |= a & ~b;
        if (cell.lut_mask & 4u) out |= ~a & b;
        if (cell.lut_mask & 8u) out |= a & b;
        return out;
      }
      const std::uint64_t full = full_mask(static_cast<int>(n));
      std::uint64_t mask = cell.lut_mask & full;
      const bool inv =
          2 * std::popcount(mask) > static_cast<int>(num_rows(static_cast<int>(n)));
      if (inv) mask = ~mask & full;
      std::uint64_t out = 0;
      while (mask) {
        const unsigned row = static_cast<unsigned>(std::countr_zero(mask));
        mask &= mask - 1;
        std::uint64_t match = ~0ull;
        for (std::size_t i = 0; i < n; ++i) {
          match &= (row & (1u << i)) ? fanin_words[i] : ~fanin_words[i];
        }
        out |= match;
      }
      return inv ? ~out : out;
    }
    default:
      throw std::invalid_argument("eval_cell_word: not a combinational cell");
  }
}

Simulator::Simulator(const Netlist& nl) : csim_(nl) {}

void Simulator::eval_comb_into(std::span<const std::uint64_t> pi_values,
                               std::span<const std::uint64_t> ff_values,
                               std::span<std::uint64_t> wave) const {
  if (pi_values.size() != csim_.num_inputs() ||
      ff_values.size() != csim_.num_dffs()) {
    throw std::invalid_argument("Simulator::eval_comb: stimulus size mismatch");
  }
  // Historical contract: the simulator reads cell functions live, so LUT
  // mask edits (and gate->LUT conversions) made after construction are
  // visible. Structure edits still require a fresh Simulator, as before.
  csim_.resync_functions();
  csim_.eval_word(pi_values, ff_values, wave);
}

std::vector<std::uint64_t> Simulator::eval_comb(
    std::span<const std::uint64_t> pi_values,
    std::span<const std::uint64_t> ff_values) const {
  std::vector<std::uint64_t> wave(csim_.wave_size());
  eval_comb_into(pi_values, ff_values, wave);
  return wave;
}

std::vector<std::uint64_t> Simulator::outputs_of(
    std::span<const std::uint64_t> wave) const {
  std::vector<std::uint64_t> out;
  out.reserve(csim_.num_outputs());
  for (const CellId id : csim_.output_cells()) out.push_back(wave[id]);
  return out;
}

std::vector<std::uint64_t> Simulator::next_state_of(
    std::span<const std::uint64_t> wave) const {
  std::vector<std::uint64_t> out;
  out.reserve(csim_.num_dffs());
  for (const CellId id : csim_.next_state_cells()) out.push_back(wave[id]);
  return out;
}

std::vector<bool> Simulator::eval_single(const std::vector<bool>& pi_values,
                                         const std::vector<bool>& ff_values) const {
  std::vector<std::uint64_t> pis(pi_values.size());
  std::vector<std::uint64_t> ffs(ff_values.size());
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    pis[i] = pi_values[i] ? ~0ull : 0ull;
  }
  for (std::size_t j = 0; j < ff_values.size(); ++j) {
    ffs[j] = ff_values[j] ? ~0ull : 0ull;
  }
  const auto wave = eval_comb(pis, ffs);
  std::vector<bool> out;
  out.reserve(csim_.num_outputs());
  for (const CellId id : csim_.output_cells()) {
    out.push_back((wave[id] & 1ull) != 0);
  }
  return out;
}

SequentialSimulator::SequentialSimulator(const Netlist& nl)
    : sim_(nl), state_(nl.dffs().size(), 0), wave_(nl.size(), 0) {}

void SequentialSimulator::reset(bool bit) {
  for (auto& word : state_) word = bit ? ~0ull : 0ull;
}

void SequentialSimulator::set_state(std::span<const std::uint64_t> state) {
  if (state.size() != state_.size()) {
    throw std::invalid_argument("SequentialSimulator::set_state: size mismatch");
  }
  state_.assign(state.begin(), state.end());
}

void SequentialSimulator::step_into(std::span<const std::uint64_t> pi_values,
                                    std::span<std::uint64_t> po_out) {
  const CompiledSim& csim = sim_.compiled();
  if (po_out.size() != csim.num_outputs()) {
    throw std::invalid_argument("SequentialSimulator::step_into: PO size mismatch");
  }
  sim_.eval_comb_into(pi_values, state_, wave_);
  for (std::size_t o = 0; o < po_out.size(); ++o) {
    po_out[o] = wave_[csim.output_cells()[o]];
  }
  // Latch next state in place: wave_ already holds every D-pin value.
  for (std::size_t j = 0; j < state_.size(); ++j) {
    state_[j] = wave_[csim.next_state_cells()[j]];
  }
}

std::vector<std::uint64_t> SequentialSimulator::step(
    std::span<const std::uint64_t> pi_values) {
  std::vector<std::uint64_t> outputs(sim_.compiled().num_outputs());
  step_into(pi_values, outputs);
  return outputs;
}

}  // namespace stt
