#include "sim/partial_eval.hpp"

namespace stt {

PartialEvaluator::PartialEvaluator(const Netlist& nl,
                                   const LutKnowledgeMap& luts)
    : nl_(&nl), luts_(&luts), order_(nl.topo_order()) {}

Tri PartialEvaluator::eval_partial_lut(CellId id,
                                       std::span<const Tri> fin) const {
  const auto it = luts_->find(id);
  if (it == luts_->end()) {
    // Not tracked: treat as configured.
    return eval_cell_tri(nl_->cell(id), fin, false);
  }
  const LutKnowledge& st = it->second;
  // The output is known only when every input-consistent row is resolved
  // and all resolved rows agree.
  bool saw0 = false;
  bool saw1 = false;
  for (std::uint32_t row = 0; row < st.rows; ++row) {
    bool consistent = true;
    for (std::size_t i = 0; i < fin.size(); ++i) {
      const bool bit = row & (1u << i);
      if ((fin[i] == Tri::kOne && !bit) || (fin[i] == Tri::kZero && bit)) {
        consistent = false;
        break;
      }
    }
    if (!consistent) continue;
    if (!(st.known_mask & (1ull << row))) return Tri::kX;
    ((st.value_mask >> row) & 1ull) ? saw1 = true : saw0 = true;
    if (saw0 && saw1) return Tri::kX;
  }
  return saw1 ? Tri::kOne : Tri::kZero;
}

std::vector<Tri> PartialEvaluator::eval(const std::vector<Tri>& inputs,
                                        CellId force_cell,
                                        Tri force_value) const {
  const Netlist& nl = *nl_;
  std::vector<Tri> wave(nl.size(), Tri::kX);
  std::size_t slot = 0;
  for (const CellId id : nl.inputs()) wave[id] = inputs[slot++];
  for (const CellId id : nl.dffs()) wave[id] = inputs[slot++];

  Tri fin[kMaxGateInputs];
  for (const CellId id : order_) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    if (id == force_cell) {
      wave[id] = force_value;
      continue;
    }
    const int n = c.fanin_count();
    for (int i = 0; i < n; ++i) fin[i] = wave[c.fanins[i]];
    if (c.kind == CellKind::kLut) {
      wave[id] = eval_partial_lut(id, std::span<const Tri>(fin, n));
    } else {
      wave[id] = eval_cell_tri(c, std::span<const Tri>(fin, n), false);
    }
  }
  return wave;
}

}  // namespace stt
