#include "sim/compiled.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <stdexcept>

#include "obs/obs.hpp"

namespace stt {

namespace {

constexpr std::uint32_t kNoInstr = static_cast<std::uint32_t>(-1);

/// Per-ISA word accounting: `sim.words` is the true pattern-word count
/// (one word = 64 patterns regardless of lane width — ProgressMeter's
/// Mevals/s and campaign obs read it), while `sim.isa.<name>` and
/// `sim.lane_words.<K>` attribute the same words to the kernel that
/// evaluated them, so metrics snapshots show which ISA ran.
struct WordCounters {
  obs::Counter* words;
  obs::Counter* isa_words;
  obs::Counter* lane_words;
};

WordCounters counters_for(SimIsa isa) {
  static obs::Counter& words = obs::Metrics::global().counter("sim.words");
  static const auto per_isa = [] {
    std::array<std::pair<obs::Counter*, obs::Counter*>, 3> c{};
    for (const SimIsa i :
         {SimIsa::kScalar, SimIsa::kAvx2, SimIsa::kAvx512}) {
      auto& m = obs::Metrics::global();
      c[static_cast<int>(i)] = {
          &m.counter(std::string("sim.isa.") + sim_isa_name(i)),
          &m.counter("sim.lane_words." +
                     std::to_string(sim_lane_words(i)))};
    }
    return c;
  }();
  const auto& [isa_words, lane_words] = per_isa[static_cast<int>(isa)];
  return {&words, isa_words, lane_words};
}

/// Block-size pin (0 = automatic policy). Seeded once from the
/// STTLOCK_SIM_BLOCK environment variable; set_batch_block_override takes
/// precedence afterwards.
std::atomic<std::size_t>& block_override_slot() {
  static std::atomic<std::size_t> slot{[] {
    const char* e = std::getenv("STTLOCK_SIM_BLOCK");
    return e != nullptr && *e != '\0'
               ? static_cast<std::size_t>(std::strtoull(e, nullptr, 10))
               : std::size_t{0};
  }()};
  return slot;
}

simk::KernelFn kernel_for(SimIsa isa) {
  switch (isa) {
    case SimIsa::kAvx2:
      if (simk::KernelFn k = simk::avx2_kernel()) return k;
      break;
    case SimIsa::kAvx512:
      if (simk::KernelFn k = simk::avx512_kernel()) return k;
      break;
    case SimIsa::kScalar:
      break;
  }
  return simk::scalar_kernel();
}

}  // namespace

void CompiledSim::set_batch_block_override(std::size_t words) {
  block_override_slot().store(words, std::memory_order_relaxed);
}

std::size_t CompiledSim::batch_block_override() {
  return block_override_slot().load(std::memory_order_relaxed);
}

simk::Op CompiledSim::opcode_for(const Cell& cell) {
  using simk::Op;
  const int n = cell.fanin_count();
  switch (cell.kind) {
    case CellKind::kConst0:
      return Op::kConst0;
    case CellKind::kConst1:
      return Op::kConst1;
    case CellKind::kBuf:
      return Op::kBuf;
    case CellKind::kNot:
      return Op::kNot;
    case CellKind::kAnd:
      return n == 2 ? Op::kAnd2 : Op::kAndN;
    case CellKind::kNand:
      return n == 2 ? Op::kNand2 : Op::kNandN;
    case CellKind::kOr:
      return n == 2 ? Op::kOr2 : Op::kOrN;
    case CellKind::kNor:
      return n == 2 ? Op::kNor2 : Op::kNorN;
    case CellKind::kXor:
      return n == 2 ? Op::kXor2 : Op::kXorN;
    case CellKind::kXnor:
      return n == 2 ? Op::kXnor2 : Op::kXnorN;
    case CellKind::kLut:
      return n == 1 ? Op::kLut1 : n == 2 ? Op::kLut2 : Op::kLutN;
    default:
      throw std::invalid_argument("CompiledSim: not a combinational cell");
  }
}

CompiledSim::CompiledSim(const Netlist& nl)
    : nl_(&nl),
      n_cells_(nl.size()),
      inputs_(nl.inputs().begin(), nl.inputs().end()),
      dffs_(nl.dffs().begin(), nl.dffs().end()),
      outputs_(nl.outputs().begin(), nl.outputs().end()) {
  ns_cells_.reserve(dffs_.size());
  for (const CellId id : dffs_) ns_cells_.push_back(nl.cell(id).fanins.at(0));

  instr_of_.assign(n_cells_, kNoInstr);
  const auto order = nl.topo_order();
  instrs_.reserve(order.size());
  for (const CellId id : order) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    simk::Instr ins;
    ins.out = id;
    ins.fanin_begin = static_cast<std::uint32_t>(fanins_.size());
    ins.fanin_count = static_cast<std::uint16_t>(c.fanin_count());
    ins.op = opcode_for(c);
    ins.mask = c.kind == CellKind::kLut
                   ? (c.lut_mask & full_mask(c.fanin_count()))
                   : 0;
    for (const CellId f : c.fanins) fanins_.push_back(f);
    instr_of_[id] = static_cast<std::uint32_t>(instrs_.size());
    instrs_.push_back(ins);
  }
  // The vectors never reallocate after lowering (set_lut_mask and
  // resync_functions mutate elements in place), so this view stays valid
  // for the engine's lifetime.
  stream_.instrs = instrs_.data();
  stream_.n_instrs = instrs_.size();
  stream_.fanins = fanins_.data();
  stream_.inputs = inputs_.data();
  stream_.n_inputs = inputs_.size();
  stream_.dffs = dffs_.data();
  stream_.n_dffs = dffs_.size();
}

void CompiledSim::set_lut_mask(CellId id, std::uint64_t mask) {
  const std::uint32_t idx = id < instr_of_.size() ? instr_of_[id] : kNoInstr;
  if (idx == kNoInstr) {
    throw std::invalid_argument("CompiledSim::set_lut_mask: not an instruction");
  }
  simk::Instr& ins = instrs_[idx];
  if (ins.op != simk::Op::kLut1 && ins.op != simk::Op::kLut2 &&
      ins.op != simk::Op::kLutN) {
    throw std::invalid_argument("CompiledSim::set_lut_mask: cell is not a LUT");
  }
  ins.mask = mask & full_mask(ins.fanin_count);
}

std::uint64_t CompiledSim::lut_mask(CellId id) const {
  const std::uint32_t idx = id < instr_of_.size() ? instr_of_[id] : kNoInstr;
  if (idx == kNoInstr) {
    throw std::invalid_argument("CompiledSim::lut_mask: not an instruction");
  }
  return instrs_[idx].mask;
}

void CompiledSim::resync_functions() {
  for (simk::Instr& ins : instrs_) {
    const Cell& c = nl_->cell(ins.out);
    if (c.fanin_count() != static_cast<int>(ins.fanin_count)) {
      throw std::runtime_error(
          "CompiledSim::resync_functions: netlist structure changed");
    }
    const simk::Op op = opcode_for(c);
    const std::uint64_t mask =
        c.kind == CellKind::kLut ? (c.lut_mask & full_mask(c.fanin_count()))
                                 : 0;
    // Write only on change so read-only concurrent use stays data-race free.
    if (ins.op != op) ins.op = op;
    if (ins.mask != mask) ins.mask = mask;
  }
}

void CompiledSim::eval_word(std::span<const std::uint64_t> pi,
                            std::span<const std::uint64_t> ff,
                            std::span<std::uint64_t> wave) const {
  if (pi.size() != inputs_.size() || ff.size() != dffs_.size()) {
    throw std::invalid_argument("CompiledSim::eval_word: stimulus size mismatch");
  }
  if (wave.size() != n_cells_) {
    throw std::invalid_argument("CompiledSim::eval_word: wave size mismatch");
  }
  const SimIsa isa = active_sim_isa();
  const WordCounters wc = counters_for(isa);
  wc.words->add(1);
  wc.isa_words->add(1);
  wc.lane_words->add(1);
  kernel_for(isa)(stream_, pi.data(), ff.data(), wave.data(), /*stride=*/1,
                  /*w0=*/0, /*nw=*/1);
}

void CompiledSim::eval_batch(std::size_t W, std::span<const std::uint64_t> pi,
                             std::span<const std::uint64_t> ff,
                             std::span<std::uint64_t> wave,
                             ParallelFor* par) const {
  if (W == 0) return;
  if (pi.size() != inputs_.size() * W || ff.size() != dffs_.size() * W) {
    throw std::invalid_argument(
        "CompiledSim::eval_batch: stimulus size mismatch");
  }
  if (wave.size() != n_cells_ * W) {
    throw std::invalid_argument("CompiledSim::eval_batch: wave size mismatch");
  }
  STTLOCK_SPAN("sim-batch", "eval_batch");
  // Resolve the kernel once per batch so every block of this call runs the
  // same ISA even if set_sim_isa intervenes concurrently.
  const SimIsa isa = active_sim_isa();
  const simk::KernelFn kernel = kernel_for(isa);
  // Block-size policy: serial calls stream every wave row end to end in
  // one pass; parallel calls split the batch into about four blocks per
  // worker (never smaller than the lane-aware grain, rounded up to whole
  // lanes so only the final block can have a scalar tail). Any block size
  // yields bit-identical results — lanes are independent.
  std::size_t block = batch_block_override();
  if (block == 0) {
    if (par == nullptr) {
      block = W;
    } else {
      const std::size_t jobs = std::max<std::size_t>(1, par->concurrency());
      const std::size_t targets = jobs == 1 ? 1 : 4 * jobs;
      const std::size_t lane = sim_lane_words(isa);
      block = std::max(words_per_block(isa), (W + targets - 1) / targets);
      block = (block + lane - 1) / lane * lane;
    }
  }
  const WordCounters wc = counters_for(isa);
  wc.words->add(static_cast<std::uint64_t>(W));
  wc.isa_words->add(static_cast<std::uint64_t>(W));
  wc.lane_words->add(static_cast<std::uint64_t>(W));
  const std::size_t n_blocks = (W + block - 1) / block;
  const auto run_block = [&](std::size_t b) {
    const std::size_t w0 = b * block;
    const std::size_t nw = std::min(block, W - w0);
    kernel(stream_, pi.data(), ff.data(), wave.data(), W, w0, nw);
  };
  if (par != nullptr && n_blocks > 1) {
    par->run(n_blocks, run_block);
  } else {
    for (std::size_t b = 0; b < n_blocks; ++b) run_block(b);
  }
}

void CompiledSim::gather_outputs(std::size_t W,
                                 std::span<const std::uint64_t> wave,
                                 std::span<std::uint64_t> out) const {
  if (wave.size() != n_cells_ * W || out.size() != outputs_.size() * W) {
    throw std::invalid_argument("CompiledSim::gather_outputs: size mismatch");
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    const std::uint64_t* src = wave.data() + outputs_[o] * W;
    std::uint64_t* dst = out.data() + o * W;
    for (std::size_t w = 0; w < W; ++w) dst[w] = src[w];
  }
}

void CompiledSim::gather_next_state(std::size_t W,
                                    std::span<const std::uint64_t> wave,
                                    std::span<std::uint64_t> out) const {
  if (wave.size() != n_cells_ * W || out.size() != ns_cells_.size() * W) {
    throw std::invalid_argument(
        "CompiledSim::gather_next_state: size mismatch");
  }
  for (std::size_t j = 0; j < ns_cells_.size(); ++j) {
    const std::uint64_t* src = wave.data() + ns_cells_[j] * W;
    std::uint64_t* dst = out.data() + j * W;
    for (std::size_t w = 0; w < W; ++w) dst[w] = src[w];
  }
}

}  // namespace stt
