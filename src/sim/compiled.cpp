#include "sim/compiled.hpp"

#include <bit>
#include <stdexcept>

#include "obs/obs.hpp"

namespace stt {

namespace {

constexpr std::uint32_t kNoInstr = static_cast<std::uint32_t>(-1);

obs::Counter& sim_words_counter() {
  static obs::Counter& c = obs::Metrics::global().counter("sim.words");
  return c;
}

}  // namespace

CompiledSim::Op CompiledSim::opcode_for(const Cell& cell) {
  const int n = cell.fanin_count();
  switch (cell.kind) {
    case CellKind::kConst0:
      return Op::kConst0;
    case CellKind::kConst1:
      return Op::kConst1;
    case CellKind::kBuf:
      return Op::kBuf;
    case CellKind::kNot:
      return Op::kNot;
    case CellKind::kAnd:
      return n == 2 ? Op::kAnd2 : Op::kAndN;
    case CellKind::kNand:
      return n == 2 ? Op::kNand2 : Op::kNandN;
    case CellKind::kOr:
      return n == 2 ? Op::kOr2 : Op::kOrN;
    case CellKind::kNor:
      return n == 2 ? Op::kNor2 : Op::kNorN;
    case CellKind::kXor:
      return n == 2 ? Op::kXor2 : Op::kXorN;
    case CellKind::kXnor:
      return n == 2 ? Op::kXnor2 : Op::kXnorN;
    case CellKind::kLut:
      return n == 1 ? Op::kLut1 : n == 2 ? Op::kLut2 : Op::kLutN;
    default:
      throw std::invalid_argument("CompiledSim: not a combinational cell");
  }
}

CompiledSim::CompiledSim(const Netlist& nl)
    : nl_(&nl),
      n_cells_(nl.size()),
      inputs_(nl.inputs().begin(), nl.inputs().end()),
      dffs_(nl.dffs().begin(), nl.dffs().end()),
      outputs_(nl.outputs().begin(), nl.outputs().end()) {
  ns_cells_.reserve(dffs_.size());
  for (const CellId id : dffs_) ns_cells_.push_back(nl.cell(id).fanins.at(0));

  instr_of_.assign(n_cells_, kNoInstr);
  const auto order = nl.topo_order();
  instrs_.reserve(order.size());
  for (const CellId id : order) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    Instr ins;
    ins.out = id;
    ins.fanin_begin = static_cast<std::uint32_t>(fanins_.size());
    ins.fanin_count = static_cast<std::uint16_t>(c.fanin_count());
    ins.op = opcode_for(c);
    ins.mask = c.kind == CellKind::kLut
                   ? (c.lut_mask & full_mask(c.fanin_count()))
                   : 0;
    for (const CellId f : c.fanins) fanins_.push_back(f);
    instr_of_[id] = static_cast<std::uint32_t>(instrs_.size());
    instrs_.push_back(ins);
  }
}

void CompiledSim::set_lut_mask(CellId id, std::uint64_t mask) {
  const std::uint32_t idx = id < instr_of_.size() ? instr_of_[id] : kNoInstr;
  if (idx == kNoInstr) {
    throw std::invalid_argument("CompiledSim::set_lut_mask: not an instruction");
  }
  Instr& ins = instrs_[idx];
  if (ins.op != Op::kLut1 && ins.op != Op::kLut2 && ins.op != Op::kLutN) {
    throw std::invalid_argument("CompiledSim::set_lut_mask: cell is not a LUT");
  }
  ins.mask = mask & full_mask(ins.fanin_count);
}

std::uint64_t CompiledSim::lut_mask(CellId id) const {
  const std::uint32_t idx = id < instr_of_.size() ? instr_of_[id] : kNoInstr;
  if (idx == kNoInstr) {
    throw std::invalid_argument("CompiledSim::lut_mask: not an instruction");
  }
  return instrs_[idx].mask;
}

void CompiledSim::resync_functions() {
  for (Instr& ins : instrs_) {
    const Cell& c = nl_->cell(ins.out);
    if (c.fanin_count() != static_cast<int>(ins.fanin_count)) {
      throw std::runtime_error(
          "CompiledSim::resync_functions: netlist structure changed");
    }
    const Op op = opcode_for(c);
    const std::uint64_t mask =
        c.kind == CellKind::kLut ? (c.lut_mask & full_mask(c.fanin_count()))
                                 : 0;
    // Write only on change so read-only concurrent use stays data-race free.
    if (ins.op != op) ins.op = op;
    if (ins.mask != mask) ins.mask = mask;
  }
}

void CompiledSim::run_instrs(std::span<const std::uint64_t> pi,
                             std::span<const std::uint64_t> ff,
                             std::span<std::uint64_t> wave, std::size_t stride,
                             std::size_t w0, std::size_t nw) const {
  std::uint64_t* const wv = wave.data();
  // Seed the combinational sources: PI and flip-flop output rows.
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    const std::uint64_t* src = pi.data() + i * stride + w0;
    std::uint64_t* dst = wv + inputs_[i] * stride + w0;
    for (std::size_t w = 0; w < nw; ++w) dst[w] = src[w];
  }
  for (std::size_t j = 0; j < dffs_.size(); ++j) {
    const std::uint64_t* src = ff.data() + j * stride + w0;
    std::uint64_t* dst = wv + dffs_[j] * stride + w0;
    for (std::size_t w = 0; w < nw; ++w) dst[w] = src[w];
  }

  const std::uint32_t* const fans = fanins_.data();
  for (const Instr& ins : instrs_) {
    std::uint64_t* out = wv + ins.out * stride + w0;
    const std::uint32_t* f = fans + ins.fanin_begin;
    const auto row = [&](std::size_t i) -> const std::uint64_t* {
      return wv + f[i] * stride + w0;
    };
    switch (ins.op) {
      case Op::kConst0:
        for (std::size_t w = 0; w < nw; ++w) out[w] = 0;
        break;
      case Op::kConst1:
        for (std::size_t w = 0; w < nw; ++w) out[w] = ~0ull;
        break;
      case Op::kBuf: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w];
        break;
      }
      case Op::kNot: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; ++w) out[w] = ~a[w];
        break;
      }
      case Op::kAnd2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w] & b[w];
        break;
      }
      case Op::kNand2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; ++w) out[w] = ~(a[w] & b[w]);
        break;
      }
      case Op::kOr2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w] | b[w];
        break;
      }
      case Op::kNor2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; ++w) out[w] = ~(a[w] | b[w]);
        break;
      }
      case Op::kXor2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w] ^ b[w];
        break;
      }
      case Op::kXnor2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; ++w) out[w] = ~(a[w] ^ b[w]);
        break;
      }
      case Op::kAndN:
      case Op::kNandN: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w];
        for (int i = 1; i < static_cast<int>(ins.fanin_count); ++i) {
          const std::uint64_t* b = row(i);
          for (std::size_t w = 0; w < nw; ++w) out[w] &= b[w];
        }
        if (ins.op == Op::kNandN) {
          for (std::size_t w = 0; w < nw; ++w) out[w] = ~out[w];
        }
        break;
      }
      case Op::kOrN:
      case Op::kNorN: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w];
        for (int i = 1; i < static_cast<int>(ins.fanin_count); ++i) {
          const std::uint64_t* b = row(i);
          for (std::size_t w = 0; w < nw; ++w) out[w] |= b[w];
        }
        if (ins.op == Op::kNorN) {
          for (std::size_t w = 0; w < nw; ++w) out[w] = ~out[w];
        }
        break;
      }
      case Op::kXorN:
      case Op::kXnorN: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; ++w) out[w] = a[w];
        for (int i = 1; i < static_cast<int>(ins.fanin_count); ++i) {
          const std::uint64_t* b = row(i);
          for (std::size_t w = 0; w < nw; ++w) out[w] ^= b[w];
        }
        if (ins.op == Op::kXnorN) {
          for (std::size_t w = 0; w < nw; ++w) out[w] = ~out[w];
        }
        break;
      }
      case Op::kLut1: {
        const std::uint64_t* a = row(0);
        const std::uint64_t m0 = ins.mask & 1u ? ~0ull : 0ull;
        const std::uint64_t m1 = ins.mask & 2u ? ~0ull : 0ull;
        for (std::size_t w = 0; w < nw; ++w) {
          out[w] = (m1 & a[w]) | (m0 & ~a[w]);
        }
        break;
      }
      case Op::kLut2: {
        const std::uint64_t *a = row(0), *b = row(1);
        const std::uint64_t m0 = ins.mask & 1u ? ~0ull : 0ull;
        const std::uint64_t m1 = ins.mask & 2u ? ~0ull : 0ull;
        const std::uint64_t m2 = ins.mask & 4u ? ~0ull : 0ull;
        const std::uint64_t m3 = ins.mask & 8u ? ~0ull : 0ull;
        for (std::size_t w = 0; w < nw; ++w) {
          const std::uint64_t av = a[w], bv = b[w];
          out[w] = (m0 & ~av & ~bv) | (m1 & av & ~bv) | (m2 & ~av & bv) |
                   (m3 & av & bv);
        }
        break;
      }
      case Op::kLutN: {
        // Sparse-row OR-of-minterms; when more than half the rows are
        // asserted, evaluate the complement function and invert.
        const int n = static_cast<int>(ins.fanin_count);
        const std::uint64_t full = full_mask(n);
        std::uint64_t m = ins.mask;
        const bool inv =
            2 * std::popcount(m) > static_cast<int>(num_rows(n));
        if (inv) m = ~m & full;
        for (std::size_t w = 0; w < nw; ++w) out[w] = 0;
        while (m) {
          const unsigned r = static_cast<unsigned>(std::countr_zero(m));
          m &= m - 1;
          for (std::size_t w = 0; w < nw; ++w) {
            std::uint64_t match = ~0ull;
            for (int i = 0; i < n; ++i) {
              const std::uint64_t v = row(i)[w];
              match &= (r >> i) & 1u ? v : ~v;
            }
            out[w] |= match;
          }
        }
        if (inv) {
          for (std::size_t w = 0; w < nw; ++w) out[w] = ~out[w];
        }
        break;
      }
    }
  }
}

void CompiledSim::eval_word(std::span<const std::uint64_t> pi,
                            std::span<const std::uint64_t> ff,
                            std::span<std::uint64_t> wave) const {
  if (pi.size() != inputs_.size() || ff.size() != dffs_.size()) {
    throw std::invalid_argument("CompiledSim::eval_word: stimulus size mismatch");
  }
  if (wave.size() != n_cells_) {
    throw std::invalid_argument("CompiledSim::eval_word: wave size mismatch");
  }
  sim_words_counter().add(1);
  run_instrs(pi, ff, wave, /*stride=*/1, /*w0=*/0, /*nw=*/1);
}

void CompiledSim::eval_batch(std::size_t W, std::span<const std::uint64_t> pi,
                             std::span<const std::uint64_t> ff,
                             std::span<std::uint64_t> wave,
                             ParallelFor* par) const {
  if (W == 0) return;
  if (pi.size() != inputs_.size() * W || ff.size() != dffs_.size() * W) {
    throw std::invalid_argument(
        "CompiledSim::eval_batch: stimulus size mismatch");
  }
  if (wave.size() != n_cells_ * W) {
    throw std::invalid_argument("CompiledSim::eval_batch: wave size mismatch");
  }
  STTLOCK_SPAN("sim-batch", "eval_batch");
  sim_words_counter().add(static_cast<std::uint64_t>(W));
  const std::size_t n_blocks = (W + kWordsPerBlock - 1) / kWordsPerBlock;
  const auto run_block = [&](std::size_t b) {
    const std::size_t w0 = b * kWordsPerBlock;
    const std::size_t nw = std::min(kWordsPerBlock, W - w0);
    run_instrs(pi, ff, wave, W, w0, nw);
  };
  if (par != nullptr && n_blocks > 1) {
    par->run(n_blocks, run_block);
  } else {
    for (std::size_t b = 0; b < n_blocks; ++b) run_block(b);
  }
}

void CompiledSim::gather_outputs(std::size_t W,
                                 std::span<const std::uint64_t> wave,
                                 std::span<std::uint64_t> out) const {
  if (wave.size() != n_cells_ * W || out.size() != outputs_.size() * W) {
    throw std::invalid_argument("CompiledSim::gather_outputs: size mismatch");
  }
  for (std::size_t o = 0; o < outputs_.size(); ++o) {
    const std::uint64_t* src = wave.data() + outputs_[o] * W;
    std::uint64_t* dst = out.data() + o * W;
    for (std::size_t w = 0; w < W; ++w) dst[w] = src[w];
  }
}

void CompiledSim::gather_next_state(std::size_t W,
                                    std::span<const std::uint64_t> wave,
                                    std::span<std::uint64_t> out) const {
  if (wave.size() != n_cells_ * W || out.size() != ns_cells_.size() * W) {
    throw std::invalid_argument(
        "CompiledSim::gather_next_state: size mismatch");
  }
  for (std::size_t j = 0; j < ns_cells_.size(); ++j) {
    const std::uint64_t* src = wave.data() + ns_cells_[j] * W;
    std::uint64_t* dst = out.data() + j * W;
    for (std::size_t w = 0; w < W; ++w) dst[w] = src[w];
  }
}

}  // namespace stt
