// Switching-activity estimation by random-stimulus simulation.
//
// The power model (src/power) needs a per-cell output switching activity
// alpha — the probability that a cell's output toggles in a clock cycle.
// The paper's Fig. 1 characterizes the STT-LUT at alpha = 10% and 30%; the
// estimator below measures the actual per-cell alpha of a netlist under
// random primary-input stimulus with a configurable input toggle rate.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"
#include "util/rng.hpp"

namespace stt {

struct ActivityOptions {
  int cycles = 256;          ///< simulated clock cycles (x64 trajectories)
  double input_toggle = 0.5; ///< per-cycle toggle probability of each PI
  int warmup = 16;           ///< cycles discarded before counting
};

struct ActivityResult {
  std::vector<double> alpha;  ///< per-cell toggle rate, indexed by CellId
  double average = 0.0;       ///< mean over combinational logic cells
};

ActivityResult estimate_activity(const Netlist& nl, Rng& rng,
                                 const ActivityOptions& opt = {});

}  // namespace stt
