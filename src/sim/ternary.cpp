#include "sim/ternary.hpp"

#include <stdexcept>

namespace stt {

char tri_char(Tri t) {
  switch (t) {
    case Tri::kZero: return '0';
    case Tri::kOne: return '1';
    case Tri::kX: return 'X';
  }
  return '?';
}

Tri eval_cell_tri(const Cell& cell, std::span<const Tri> fanins,
                  bool lut_unknown) {
  if (cell.kind == CellKind::kLut && lut_unknown) return Tri::kX;
  const int n = static_cast<int>(fanins.size());
  if (n > kMaxLutInputs) {
    // Wide standard gates: direct Kleene evaluation (no mask fits).
    int ones = 0;
    int zeros = 0;
    int unknowns = 0;
    for (const Tri v : fanins) {
      if (v == Tri::kOne) ++ones;
      if (v == Tri::kZero) ++zeros;
      if (v == Tri::kX) ++unknowns;
    }
    switch (cell.kind) {
      case CellKind::kAnd:
        return zeros ? Tri::kZero : (unknowns ? Tri::kX : Tri::kOne);
      case CellKind::kNand:
        return zeros ? Tri::kOne : (unknowns ? Tri::kX : Tri::kZero);
      case CellKind::kOr:
        return ones ? Tri::kOne : (unknowns ? Tri::kX : Tri::kZero);
      case CellKind::kNor:
        return ones ? Tri::kZero : (unknowns ? Tri::kX : Tri::kOne);
      case CellKind::kXor:
        return unknowns ? Tri::kX
                        : ((ones & 1) ? Tri::kOne : Tri::kZero);
      case CellKind::kXnor:
        return unknowns ? Tri::kX
                        : ((ones & 1) ? Tri::kZero : Tri::kOne);
      default:
        throw std::invalid_argument("eval_cell_tri: fan-in too large");
    }
  }

  // Enumerate completions of the unknown inputs; if all agree the output is
  // known. With n <= 6 this costs at most 64 evaluations.
  std::uint32_t known_bits = 0;
  std::uint32_t unknown_positions[kMaxLutInputs];
  int n_unknown = 0;
  for (int i = 0; i < n; ++i) {
    if (fanins[i] == Tri::kX) {
      unknown_positions[n_unknown++] = static_cast<std::uint32_t>(i);
    } else if (fanins[i] == Tri::kOne) {
      known_bits |= (1u << i);
    }
  }

  const std::uint64_t mask = cell.kind == CellKind::kLut
                                 ? cell.lut_mask
                                 : gate_truth_mask(cell.kind, n);
  bool saw0 = false;
  bool saw1 = false;
  for (std::uint32_t combo = 0; combo < (1u << n_unknown); ++combo) {
    std::uint32_t row = known_bits;
    for (int j = 0; j < n_unknown; ++j) {
      if (combo & (1u << j)) row |= (1u << unknown_positions[j]);
    }
    ((mask >> row) & 1ull) ? saw1 = true : saw0 = true;
    if (saw0 && saw1) return Tri::kX;
  }
  return saw1 ? Tri::kOne : Tri::kZero;
}

TernarySimulator::TernarySimulator(const Netlist& nl, bool lut_unknown)
    : nl_(&nl), order_(nl.topo_order()), lut_unknown_(lut_unknown) {}

std::vector<Tri> TernarySimulator::eval_comb(std::span<const Tri> pi_values,
                                             std::span<const Tri> ff_values) const {
  const Netlist& nl = *nl_;
  if (pi_values.size() != nl.inputs().size() ||
      ff_values.size() != nl.dffs().size()) {
    throw std::invalid_argument("TernarySimulator: stimulus size mismatch");
  }
  std::vector<Tri> wave(nl.size(), Tri::kX);
  for (std::size_t i = 0; i < pi_values.size(); ++i) {
    wave[nl.inputs()[i]] = pi_values[i];
  }
  for (std::size_t j = 0; j < ff_values.size(); ++j) {
    wave[nl.dffs()[j]] = ff_values[j];
  }
  Tri fin[kMaxGateInputs];
  for (const CellId id : order_) {
    const Cell& c = nl.cell(id);
    if (c.kind == CellKind::kInput || c.kind == CellKind::kDff) continue;
    if (c.kind == CellKind::kConst0) {
      wave[id] = Tri::kZero;
      continue;
    }
    if (c.kind == CellKind::kConst1) {
      wave[id] = Tri::kOne;
      continue;
    }
    const int n = c.fanin_count();
    for (int i = 0; i < n; ++i) fin[i] = wave[c.fanins[i]];
    wave[id] = eval_cell_tri(c, std::span<const Tri>(fin, n), lut_unknown_);
  }
  return wave;
}

std::vector<Tri> TernarySimulator::outputs_of(std::span<const Tri> wave) const {
  std::vector<Tri> out;
  out.reserve(nl_->outputs().size());
  for (const CellId id : nl_->outputs()) out.push_back(wave[id]);
  return out;
}

std::vector<Tri> TernarySimulator::next_state_of(std::span<const Tri> wave) const {
  std::vector<Tri> out;
  out.reserve(nl_->dffs().size());
  for (const CellId id : nl_->dffs()) out.push_back(wave[nl_->cell(id).fanins.at(0)]);
  return out;
}

}  // namespace stt
