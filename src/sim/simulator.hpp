// Event-free levelized gate-level simulation, 64 patterns per word.
//
// The simulator serves four clients:
//  * functional-equivalence checks (hybrid netlist vs original, tests);
//  * the oracle that attacks query (src/attack) — the attacker's configured
//    chip, per the paper's threat model;
//  * switching-activity extraction feeding the power model (src/power);
//  * random-stimulus property tests.
//
// Representation: one std::uint64_t per cell = 64 independent Boolean
// patterns evaluated simultaneously. Sequential state is carried the same
// way, so 64 independent trajectories advance per step.
//
// Both classes delegate to the compiled engine (sim/compiled.hpp): the
// netlist is lowered once into a flat instruction stream and evaluated into
// reused buffers. `Simulator` re-syncs cell functions (LUT masks, in-place
// gate<->LUT conversions) from the netlist on every evaluation, preserving
// the historical live-read semantics that the attack loops relied on;
// performance-critical callers use `CompiledSim` directly and patch masks
// explicitly. The allocating `eval_comb` API is preserved; `eval_comb_into`
// is the zero-allocation equivalent.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "sim/compiled.hpp"
#include "util/rng.hpp"

namespace stt {

class Simulator {
 public:
  /// The netlist must outlive the simulator. LUT cells evaluate their
  /// configured mask (the simulator always models the *configured* chip).
  explicit Simulator(const Netlist& nl);

  const Netlist& netlist() const { return csim_.netlist(); }

  /// The underlying compiled engine (function snapshot as of the last
  /// evaluation; batch/threaded entry points live here).
  const CompiledSim& compiled() const { return csim_; }

  /// Evaluate the combinational fabric for one word of patterns.
  /// `pi_values[i]` feeds inputs()[i]; `ff_values[j]` feeds dffs()[j]'s
  /// output. Returns the full per-cell wave (indexed by CellId).
  std::vector<std::uint64_t> eval_comb(
      std::span<const std::uint64_t> pi_values,
      std::span<const std::uint64_t> ff_values) const;

  /// Zero-allocation variant: evaluate into `wave` (size netlist().size()).
  void eval_comb_into(std::span<const std::uint64_t> pi_values,
                      std::span<const std::uint64_t> ff_values,
                      std::span<std::uint64_t> wave) const;

  /// Gather primary-output values from a wave, ordered as nl.outputs().
  std::vector<std::uint64_t> outputs_of(
      std::span<const std::uint64_t> wave) const;

  /// Gather the next flip-flop state (the D-pin values), ordered as dffs().
  std::vector<std::uint64_t> next_state_of(
      std::span<const std::uint64_t> wave) const;

  /// Single-pattern convenience: bit 0 of every word.
  std::vector<bool> eval_single(const std::vector<bool>& pi_values,
                                const std::vector<bool>& ff_values) const;

 private:
  // resync_functions mutates opcode/mask fields; logically const evaluation.
  mutable CompiledSim csim_;
};

/// Multi-cycle simulation of 64 parallel trajectories. All per-step buffers
/// (wave, state, output scratch) are allocated once and reused.
class SequentialSimulator {
 public:
  explicit SequentialSimulator(const Netlist& nl);

  /// Set every flip-flop of every trajectory to `bit`.
  void reset(bool bit = false);

  /// Set the state word of flip-flop j directly.
  void set_state(std::span<const std::uint64_t> state);
  std::span<const std::uint64_t> state() const { return state_; }

  /// Apply one clock: evaluate combinationally with the given PI word
  /// values, return PO word values, and latch the next state.
  std::vector<std::uint64_t> step(std::span<const std::uint64_t> pi_values);

  /// Zero-allocation step: PO words are written into `po_out` (size
  /// nl.outputs().size()).
  void step_into(std::span<const std::uint64_t> pi_values,
                 std::span<std::uint64_t> po_out);

  /// The wave of the most recent step (per-cell), for activity accounting.
  std::span<const std::uint64_t> last_wave() const { return wave_; }

 private:
  Simulator sim_;
  std::vector<std::uint64_t> state_;
  std::vector<std::uint64_t> wave_;
};

/// Evaluate one cell from packed fan-in words (shared with the attack
/// encoder's unit tests). `fanin_words[i]` is the word of fan-in i.
std::uint64_t eval_cell_word(const Cell& cell,
                             std::span<const std::uint64_t> fanin_words);

}  // namespace stt
