// Portable one-word-per-step kernel: the baseline every other lane width
// is checksum-verified against, and the only kernel on non-x86 targets.
#define STT_SIMK_NS lanes_scalar
#define STT_SIMK_LANE 1
#include "sim/kernels_impl.h"

namespace stt::simk {

KernelFn scalar_kernel() { return &lanes_scalar::run; }

}  // namespace stt::simk
