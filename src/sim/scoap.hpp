// SCOAP testability measures (Goldstein's controllability/observability).
//
// The testing attack of Section IV-A.1 must justify LUT input rows
// (controllability) and propagate the LUT output to an observation point
// (observability) — exactly what SCOAP quantifies. The analysis feeds a
// per-LUT *resolvability score* used by the ablation bench: the parametric
// selection's USL closure measurably degrades the attacker's
// controllability/observability around missing gates.
//
// Conventions (standard SCOAP):
//   CC0/CC1(signal) — minimum "effort" to set it to 0/1; PIs cost 1.
//   CO(signal)      — effort to propagate its value to a PO; POs cost 0.
//   Crossing a flip-flop adds a sequential increment to all three.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace stt {

struct ScoapResult {
  std::vector<double> cc0;  ///< indexed by CellId (driver net)
  std::vector<double> cc1;
  std::vector<double> co;

  /// Attack effort proxy for one cell: cheapest-row justification cost of
  /// its fan-ins plus observation cost of its output.
  double resolvability(const Netlist& nl, CellId id) const;
};

struct ScoapOptions {
  /// Cost added when crossing a flip-flop (one extra capture cycle).
  double sequential_increment = 5.0;
  /// Fixed-point iterations for sequential loops (values monotonically
  /// decrease and converge quickly on ISCAS-scale circuits).
  int max_iterations = 16;
  /// Controllability assigned to unknown-content LUTs' outputs when
  /// `attacker_view` is set: the attacker cannot justify through a missing
  /// gate, so its output costs this much to control.
  bool attacker_view = false;
  double unknown_lut_cost = 1e6;
};

ScoapResult compute_scoap(const Netlist& nl, const ScoapOptions& opt = {});

}  // namespace stt
