// Three-valued (0/1/X) scalar simulation.
//
// Used where unknowns are semantically meaningful: power-up state before
// reset, and the sensitization attack's justification reasoning, where an
// unconfigured LUT's output is X by definition (the attacker does not know
// the configuration).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "netlist/netlist.hpp"

namespace stt {

enum class Tri : std::uint8_t { kZero = 0, kOne = 1, kX = 2 };

inline Tri tri_from_bool(bool b) { return b ? Tri::kOne : Tri::kZero; }
char tri_char(Tri t);

/// Kleene evaluation of one cell: result is X exactly when both 0 and 1 are
/// achievable over the unknown inputs. `lut_unknown` forces LUT cells to X
/// regardless of inputs (the attacker's view of a hybrid netlist).
Tri eval_cell_tri(const Cell& cell, std::span<const Tri> fanins,
                  bool lut_unknown);

class TernarySimulator {
 public:
  explicit TernarySimulator(const Netlist& nl, bool lut_unknown = false);

  /// Evaluate the combinational fabric. Sizes must match inputs()/dffs().
  std::vector<Tri> eval_comb(std::span<const Tri> pi_values,
                             std::span<const Tri> ff_values) const;

  std::vector<Tri> outputs_of(std::span<const Tri> wave) const;
  std::vector<Tri> next_state_of(std::span<const Tri> wave) const;

 private:
  const Netlist* nl_;
  std::vector<CellId> order_;
  bool lut_unknown_;
};

}  // namespace stt
