// Runtime SIMD-ISA selection for the compiled simulation engine.
//
// The engine ships three bit-identical kernels (sim/kernels.hpp); which
// one runs is a process-wide choice resolved exactly once, on first use:
//
//   1. the STTLOCK_SIM_ISA environment variable, when set
//      ("scalar" | "avx2" | "avx512" — unknown or unsupported values throw
//      so CI overrides can never silently fall back);
//   2. otherwise a CPUID probe picks the widest kernel both the build and
//      the host support.
//
// `set_sim_isa` (backing the --sim-isa CLI flag and the forced-ISA test
// matrix) overrides the choice at any point; evaluations started after the
// call use the new kernel. All selection state is atomic, so concurrent
// evaluators always see a consistent (kernel, lane width) pair.
#pragma once

#include <cstddef>
#include <optional>
#include <string_view>

namespace stt {

enum class SimIsa : int {
  kScalar = 0,  ///< portable uint64 kernel, 1 word per lane
  kAvx2 = 1,    ///< 256-bit kernel, 4 words per lane
  kAvx512 = 2,  ///< 512-bit kernel, 8 words per lane
};

/// Canonical lowercase name ("scalar" / "avx2" / "avx512").
const char* sim_isa_name(SimIsa isa);

/// Inverse of sim_isa_name; nullopt for unknown spellings.
std::optional<SimIsa> parse_sim_isa(std::string_view name);

/// 64-bit words per SIMD lane of the given ISA: 1, 4 or 8.
std::size_t sim_lane_words(SimIsa isa);

/// True when both this build and this CPU can run the ISA's kernel.
/// kScalar is always supported.
bool sim_isa_supported(SimIsa isa);

/// The widest supported ISA on this host (ignores the env override).
SimIsa detected_sim_isa();

/// The ISA evaluations dispatch to right now. First call resolves the
/// env override / CPUID probe; throws std::runtime_error if STTLOCK_SIM_ISA
/// names an unknown or unsupported ISA.
SimIsa active_sim_isa();

/// Force the active ISA (--sim-isa, tests). Throws std::runtime_error if
/// unsupported on this build/host.
void set_sim_isa(SimIsa isa);

/// Parse-and-set for CLI use: "scalar" | "avx2" | "avx512" | "auto"
/// ("auto" re-resolves env + CPUID). Throws std::runtime_error on unknown
/// names or unsupported ISAs. Returns the ISA now active.
SimIsa set_sim_isa(std::string_view name);

/// RAII ISA override for tests and benches: forces `isa` for its lifetime,
/// restores the previously active ISA on destruction.
class ScopedSimIsa {
 public:
  explicit ScopedSimIsa(SimIsa isa) : prev_(active_sim_isa()) {
    set_sim_isa(isa);
  }
  ~ScopedSimIsa() { set_sim_isa(prev_); }
  ScopedSimIsa(const ScopedSimIsa&) = delete;
  ScopedSimIsa& operator=(const ScopedSimIsa&) = delete;

 private:
  SimIsa prev_;
};

}  // namespace stt
