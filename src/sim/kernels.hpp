// The compiled-sim instruction set and its lane-width kernel family.
//
// `CompiledSim` lowers a netlist into this IR once; evaluation is then a
// pure function of (instruction stream, stimulus) executed by one of three
// kernels that differ only in how many 64-bit words they move per step:
//
//   * scalar  — one word per step (the portable baseline, every target);
//   * avx2    — 4-word lanes compiled with -mavx2 (256-bit vectors);
//   * avx512  — 8-word lanes compiled with -mavx512f (512-bit vectors).
//
// All three instantiate the same templated interpreter
// (`kernels_impl.h`), so they are bit-identical by construction: gate
// kernels are pure 64-bit bitwise algebra and widening the lane only
// changes how many words one register operation covers. Each ISA's
// instantiation lives in its own translation unit compiled with that
// ISA's flags *and* in its own namespace, so the linker can never merge a
// wider instantiation into a build that must run on narrower hardware.
//
// Which kernel actually runs is decided at runtime (`sim/isa.hpp`): a
// one-time CPUID probe, overridable via --sim-isa / STTLOCK_SIM_ISA.
#pragma once

#include <cstddef>
#include <cstdint>

namespace stt::simk {

/// Opcodes: cell kinds pre-specialized by fan-in so the dispatch switch
/// does no per-gate arity analysis.
enum class Op : std::uint8_t {
  kConst0, kConst1, kBuf, kNot,
  kAnd2, kNand2, kOr2, kNor2, kXor2, kXnor2,
  kAndN, kNandN, kOrN, kNorN, kXorN, kXnorN,
  kLut1, kLut2, kLutN,
};

struct Instr {
  std::uint32_t out;          ///< wave row written (== CellId)
  std::uint32_t fanin_begin;  ///< first index into the CSR fan-in array
  std::uint16_t fanin_count;
  Op op;
  std::uint64_t mask;  ///< LUT truth table, pre-masked to full_mask(n)
};

/// Borrowed, non-owning view of a lowered netlist: everything a kernel
/// needs to evaluate, with no dependency on the netlist types.
struct Stream {
  const Instr* instrs = nullptr;
  std::size_t n_instrs = 0;
  const std::uint32_t* fanins = nullptr;  ///< CSR fan-in wave rows
  const std::uint32_t* inputs = nullptr;  ///< PI wave rows, seeded from pi[]
  std::size_t n_inputs = 0;
  const std::uint32_t* dffs = nullptr;  ///< FF wave rows, seeded from ff[]
  std::size_t n_dffs = 0;
};

/// Evaluate words [w0, w0+nw) of every wave row. `pi`, `ff` and `wave` are
/// blocked row-major with `stride` words per row. Any nw is accepted: the
/// lane main loop covers whole lanes and a scalar tail finishes the rest,
/// so misaligned batch widths never read or write out of bounds.
using KernelFn = void (*)(const Stream& s, const std::uint64_t* pi,
                          const std::uint64_t* ff, std::uint64_t* wave,
                          std::size_t stride, std::size_t w0, std::size_t nw);

KernelFn scalar_kernel();  ///< always available
KernelFn avx2_kernel();    ///< nullptr when not compiled in
KernelFn avx512_kernel();  ///< nullptr when not compiled in

}  // namespace stt::simk
