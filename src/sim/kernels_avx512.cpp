// 8-word (512-bit) lane kernel. This translation unit is compiled with
// -mavx512f (see src/sim/CMakeLists.txt), so the Lane<8> vector-extension
// algebra lowers to single zmm operations. It must only be *called* after
// the runtime CPUID probe (sim/isa.hpp) confirms AVX-512F; nothing here
// runs at static-initialization time.
#if defined(STT_SIM_ENABLE_AVX512)

#define STT_SIMK_NS lanes_avx512
#define STT_SIMK_LANE 8
#include "sim/kernels_impl.h"

namespace stt::simk {

KernelFn avx512_kernel() { return &lanes_avx512::run; }

}  // namespace stt::simk

#else  // compiler cannot target AVX-512: runtime dispatch never offers it

#include "sim/kernels.hpp"

namespace stt::simk {

KernelFn avx512_kernel() { return nullptr; }

}  // namespace stt::simk

#endif
