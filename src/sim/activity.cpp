#include "sim/activity.hpp"

#include <bit>

#include "sim/simulator.hpp"

namespace stt {

ActivityResult estimate_activity(const Netlist& nl, Rng& rng,
                                 const ActivityOptions& opt) {
  SequentialSimulator sim(nl);
  const auto n_pi = nl.inputs().size();

  std::vector<std::uint64_t> pi(n_pi, 0);
  for (auto& w : pi) w = rng();

  std::vector<std::uint64_t> prev_wave;
  std::vector<std::uint64_t> toggles(nl.size(), 0);
  std::vector<std::uint64_t> po(nl.outputs().size());  // reused scratch

  const int total = opt.warmup + opt.cycles;
  for (int cycle = 0; cycle < total; ++cycle) {
    // Toggle each PI bit-lane independently with the configured probability.
    for (auto& w : pi) {
      std::uint64_t flip = 0;
      for (int b = 0; b < 64; ++b) {
        if (rng.chance(opt.input_toggle)) flip |= (1ull << b);
      }
      w ^= flip;
    }
    sim.step_into(pi, po);
    const auto wave = sim.last_wave();
    if (cycle >= opt.warmup && !prev_wave.empty()) {
      for (std::size_t id = 0; id < wave.size(); ++id) {
        toggles[id] += std::popcount(wave[id] ^ prev_wave[id]);
      }
    }
    prev_wave.assign(wave.begin(), wave.end());
  }

  ActivityResult result;
  result.alpha.resize(nl.size(), 0.0);
  const double denom = 64.0 * std::max(1, opt.cycles - 1);
  double sum = 0.0;
  std::size_t n_logic = 0;
  for (CellId id = 0; id < nl.size(); ++id) {
    result.alpha[id] = static_cast<double>(toggles[id]) / denom;
    const CellKind kind = nl.cell(id).kind;
    if (is_combinational(kind) && kind != CellKind::kConst0 &&
        kind != CellKind::kConst1) {
      sum += result.alpha[id];
      ++n_logic;
    }
  }
  result.average = n_logic ? sum / static_cast<double>(n_logic) : 0.0;
  return result;
}

}  // namespace stt
