// Templated interpreter body shared by every lane-width kernel TU.
//
// Include from a kernel translation unit after defining:
//   STT_SIMK_NS    — a namespace unique to the TU (prevents the linker
//                    from merging instantiations built for different ISAs)
//   STT_SIMK_LANE  — words per lane: 1, 4 (AVX2) or 8 (AVX-512)
//
// The lane type is a GNU vector extension (`vector_size`), so the wide
// bitwise algebra lowers to single ymm/zmm operations under the TU's
// -m<isa> flags without relying on the autovectorizer; on compilers or
// targets without vector extensions everything falls back to plain
// uint64_t loops with identical results.
//
// Evaluation walks the topologically ordered instruction stream once per
// word span. Per instruction, the accumulator of the fan-in reduction
// (AND/OR/XOR trees, LUT minterm matching) lives in one lane register, so
// a gate's intermediate values stay resident in vector registers and only
// the final result is stored to the wave. A span whose width is not a
// whole number of lanes is finished by the width-1 instantiation of the
// same code, which is how misaligned batch widths stay exact.

#include <bit>
#include <cstring>

#include "sim/kernels.hpp"

#if !defined(STT_SIMK_NS) || !defined(STT_SIMK_LANE)
#error "define STT_SIMK_NS and STT_SIMK_LANE before including kernels_impl.h"
#endif

namespace stt::simk {
namespace STT_SIMK_NS {

inline constexpr std::size_t kLaneWords = STT_SIMK_LANE;

template <std::size_t C>
struct LaneOf {
#if defined(__GNUC__) || defined(__clang__)
  typedef std::uint64_t type __attribute__((vector_size(C * 8)));
#else
  struct type {
    std::uint64_t w[C];
    friend type operator&(type a, type b) {
      for (std::size_t k = 0; k < C; ++k) a.w[k] &= b.w[k];
      return a;
    }
    friend type operator|(type a, type b) {
      for (std::size_t k = 0; k < C; ++k) a.w[k] |= b.w[k];
      return a;
    }
    friend type operator^(type a, type b) {
      for (std::size_t k = 0; k < C; ++k) a.w[k] ^= b.w[k];
      return a;
    }
    friend type operator~(type a) {
      for (std::size_t k = 0; k < C; ++k) a.w[k] = ~a.w[k];
      return a;
    }
  };
#endif
};
template <>
struct LaneOf<1> {
  using type = std::uint64_t;
};

template <std::size_t C>
using Lane = typename LaneOf<C>::type;

template <std::size_t C>
static inline Lane<C> lane_load(const std::uint64_t* p) {
  Lane<C> v;
  std::memcpy(&v, p, sizeof(v));  // rows are only 8-byte aligned
  return v;
}

template <std::size_t C>
static inline void lane_store(std::uint64_t* p, Lane<C> v) {
  std::memcpy(p, &v, sizeof(v));
}

/// Broadcast a 64-bit mask into every word of the lane.
template <std::size_t C>
static inline Lane<C> lane_splat(std::uint64_t s) {
  if constexpr (C == 1) {
    return s;
  } else {
    Lane<C> v{};
    for (std::size_t k = 0; k < C; ++k) v[k] = s;
    return v;
  }
}

/// Evaluate words [w0, w0+nw) with nw a multiple of C.
template <std::size_t C>
static void run_span(const Stream& s, const std::uint64_t* pi,
                     const std::uint64_t* ff, std::uint64_t* wave,
                     std::size_t stride, std::size_t w0, std::size_t nw) {
  // Seed the combinational sources: PI and flip-flop output rows.
  for (std::size_t i = 0; i < s.n_inputs; ++i) {
    std::memcpy(wave + s.inputs[i] * stride + w0, pi + i * stride + w0,
                nw * sizeof(std::uint64_t));
  }
  for (std::size_t j = 0; j < s.n_dffs; ++j) {
    std::memcpy(wave + s.dffs[j] * stride + w0, ff + j * stride + w0,
                nw * sizeof(std::uint64_t));
  }

  const Lane<C> zeros = lane_splat<C>(0);
  const Lane<C> ones = lane_splat<C>(~0ull);
  for (const Instr* ins = s.instrs; ins != s.instrs + s.n_instrs; ++ins) {
    std::uint64_t* const out = wave + ins->out * stride + w0;
    const std::uint32_t* const f = s.fanins + ins->fanin_begin;
    const auto row = [&](std::size_t i) -> const std::uint64_t* {
      return wave + f[i] * stride + w0;
    };
    switch (ins->op) {
      case Op::kConst0:
        for (std::size_t w = 0; w < nw; w += C) lane_store<C>(out + w, zeros);
        break;
      case Op::kConst1:
        for (std::size_t w = 0; w < nw; w += C) lane_store<C>(out + w, ones);
        break;
      case Op::kBuf: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, lane_load<C>(a + w));
        }
        break;
      }
      case Op::kNot: {
        const std::uint64_t* a = row(0);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, ~lane_load<C>(a + w));
        }
        break;
      }
      case Op::kAnd2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, lane_load<C>(a + w) & lane_load<C>(b + w));
        }
        break;
      }
      case Op::kNand2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, ~(lane_load<C>(a + w) & lane_load<C>(b + w)));
        }
        break;
      }
      case Op::kOr2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, lane_load<C>(a + w) | lane_load<C>(b + w));
        }
        break;
      }
      case Op::kNor2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, ~(lane_load<C>(a + w) | lane_load<C>(b + w)));
        }
        break;
      }
      case Op::kXor2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, lane_load<C>(a + w) ^ lane_load<C>(b + w));
        }
        break;
      }
      case Op::kXnor2: {
        const std::uint64_t *a = row(0), *b = row(1);
        for (std::size_t w = 0; w < nw; w += C) {
          lane_store<C>(out + w, ~(lane_load<C>(a + w) ^ lane_load<C>(b + w)));
        }
        break;
      }
      case Op::kAndN:
      case Op::kNandN: {
        const int n = static_cast<int>(ins->fanin_count);
        for (std::size_t w = 0; w < nw; w += C) {
          Lane<C> acc = lane_load<C>(row(0) + w);
          for (int i = 1; i < n; ++i) acc = acc & lane_load<C>(row(i) + w);
          lane_store<C>(out + w, ins->op == Op::kNandN ? ~acc : acc);
        }
        break;
      }
      case Op::kOrN:
      case Op::kNorN: {
        const int n = static_cast<int>(ins->fanin_count);
        for (std::size_t w = 0; w < nw; w += C) {
          Lane<C> acc = lane_load<C>(row(0) + w);
          for (int i = 1; i < n; ++i) acc = acc | lane_load<C>(row(i) + w);
          lane_store<C>(out + w, ins->op == Op::kNorN ? ~acc : acc);
        }
        break;
      }
      case Op::kXorN:
      case Op::kXnorN: {
        const int n = static_cast<int>(ins->fanin_count);
        for (std::size_t w = 0; w < nw; w += C) {
          Lane<C> acc = lane_load<C>(row(0) + w);
          for (int i = 1; i < n; ++i) acc = acc ^ lane_load<C>(row(i) + w);
          lane_store<C>(out + w, ins->op == Op::kXnorN ? ~acc : acc);
        }
        break;
      }
      case Op::kLut1: {
        // Closed form: out = (m1 & a) | (m0 & ~a).
        const std::uint64_t* a = row(0);
        const Lane<C> m0 = lane_splat<C>(ins->mask & 1u ? ~0ull : 0ull);
        const Lane<C> m1 = lane_splat<C>(ins->mask & 2u ? ~0ull : 0ull);
        for (std::size_t w = 0; w < nw; w += C) {
          const Lane<C> av = lane_load<C>(a + w);
          lane_store<C>(out + w, (m1 & av) | (m0 & ~av));
        }
        break;
      }
      case Op::kLut2: {
        // Closed form over the four minterm masks.
        const std::uint64_t *a = row(0), *b = row(1);
        const Lane<C> m0 = lane_splat<C>(ins->mask & 1u ? ~0ull : 0ull);
        const Lane<C> m1 = lane_splat<C>(ins->mask & 2u ? ~0ull : 0ull);
        const Lane<C> m2 = lane_splat<C>(ins->mask & 4u ? ~0ull : 0ull);
        const Lane<C> m3 = lane_splat<C>(ins->mask & 8u ? ~0ull : 0ull);
        for (std::size_t w = 0; w < nw; w += C) {
          const Lane<C> av = lane_load<C>(a + w);
          const Lane<C> bv = lane_load<C>(b + w);
          lane_store<C>(out + w, (m0 & ~av & ~bv) | (m1 & av & ~bv) |
                                     (m2 & ~av & bv) | (m3 & av & bv));
        }
        break;
      }
      case Op::kLutN: {
        // Sparse-row OR-of-minterms; when more than half the rows are
        // asserted, evaluate the complement function and invert. The
        // minterm accumulator stays in one lane register per word span.
        const int n = static_cast<int>(ins->fanin_count);
        const std::uint64_t full =
            n >= 6 ? ~0ull : ((1ull << (1u << n)) - 1ull);
        std::uint64_t m = ins->mask;
        const bool inv = 2 * std::popcount(m) > (1 << n);
        if (inv) m = ~m & full;
        for (std::size_t w = 0; w < nw; w += C) {
          Lane<C> acc = zeros;
          std::uint64_t rows = m;
          while (rows) {
            const unsigned r = static_cast<unsigned>(std::countr_zero(rows));
            rows &= rows - 1;
            Lane<C> match = ones;
            for (int i = 0; i < n; ++i) {
              const Lane<C> v = lane_load<C>(row(i) + w);
              match = match & ((r >> i) & 1u ? v : ~v);
            }
            acc = acc | match;
          }
          lane_store<C>(out + w, inv ? ~acc : acc);
        }
        break;
      }
    }
  }
}

static void run(const Stream& s, const std::uint64_t* pi,
                const std::uint64_t* ff, std::uint64_t* wave,
                std::size_t stride, std::size_t w0, std::size_t nw) {
  const std::size_t main_words = nw - nw % kLaneWords;
  if (main_words != 0) run_span<kLaneWords>(s, pi, ff, wave, stride, w0,
                                            main_words);
  if (main_words != nw) {
    run_span<1>(s, pi, ff, wave, stride, w0 + main_words, nw - main_words);
  }
}

}  // namespace STT_SIMK_NS
}  // namespace stt::simk
